(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6.2's XSA analysis, Section 7's Figures 5-6,
   Table 3 and the three micro-benchmarks), the design-matrix Tables 1-2,
   the security matrix, the ablations of DESIGN.md §4, and Bechamel
   wall-clock measurements of the hot primitives.

   Usage: main.exe [fig5|fig6|tab3|micro|xsa|attacks|tab1|tab2|ablate|bechamel|perf|fleet|migrate|all]
          main.exe fleet [--vms N] [--domains 1,2,4,8] [--gc-stats]
          main.exe fleet-scale [--vms N]
          main.exe migrate [--budgets 2.5,10,40] [--fleets 8,16]
   With no argument (or "all"), everything runs in paper order.
   `perf` re-measures the bechamel primitives and prints the speedup of
   this build against the recorded results/bench.json baseline. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module W = Fidelius_workloads
module Attacks = Fidelius_attacks
module Xsa = Fidelius_xsa
module Rng = Fidelius_crypto.Rng

let results_dir = "results"

let write_csv name header rows =
  (try Unix.mkdir results_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat results_dir name in
  let oc = open_out path in
  output_string oc (header ^ "\n");
  List.iter (fun row -> output_string oc (row ^ "\n")) rows;
  close_out oc;
  Printf.printf "  [written: %s]\n" path

let header title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let bar pct =
  let n = max 0 (min 40 (int_of_float (pct *. 2.0))) in
  String.make n '#'

(* ---- protected stack helper ------------------------------------------------ *)

let installed_stack seed =
  let m = Hw.Machine.create ~seed () in
  let hv = Xen.Hypervisor.boot m in
  let fid = Core.Fidelius.install hv in
  (m, hv, fid)

let protected_guest (m, hv, fid) name memory_pages =
  ignore m;
  ignore hv;
  let rng = Rng.create 1234L in
  let kernel = [ Bytes.make Hw.Addr.page_size '\000' ] in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Core.Fidelius.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg ~kernel_pages:kernel
  in
  match Core.Fidelius.boot_protected_vm fid ~name ~memory_pages ~prepared with
  | Ok dom -> dom
  | Error e -> failwith ("bench: protected boot: " ^ e)

(* ---- Figures 5 and 6 -------------------------------------------------------- *)

let figure suite profiles paper_fid_avg paper_enc_avg highlights =
  (* [suite] doubles as the CSV stem, e.g. "Figure 5" -> figure_5.csv *)
  header
    (Printf.sprintf "%s normalized overhead vs stock Xen  [paper: Fidelius avg %s, Fidelius-enc avg %s]"
       suite paper_fid_avg paper_enc_avg);
  Printf.printf "%-15s %13s %17s   %s\n" "benchmark" "Fidelius" "Fidelius-enc" "";
  let rows = W.Engine.run_suite profiles in
  let n = float_of_int (List.length rows) in
  let sum_f, sum_e =
    List.fold_left
      (fun (a, b) (p, f, e) ->
        Printf.printf "%-15s %+12.2f%% %+16.2f%%   %s\n" p.W.Profile.name f e (bar e);
        (a +. f, b +. e))
      (0.0, 0.0) rows
  in
  Printf.printf "%-15s %+12.2f%% %+16.2f%%\n" "AVERAGE" (sum_f /. n) (sum_e /. n);
  List.iter (fun h -> Printf.printf "  paper reference: %s\n" h) highlights;
  write_csv
    (Printf.sprintf "%s.csv" (String.map (fun c -> if c = ' ' || c = ':' then '_' else c)
                                (String.lowercase_ascii (List.hd (String.split_on_char ':' suite)))))
    "benchmark,fidelius_pct,fidelius_enc_pct"
    (List.map (fun (p, f, e) -> Printf.sprintf "%s,%.3f,%.3f" p.W.Profile.name f e) rows)

let fig5 () =
  figure "Figure 5: SPECCPU 2006" W.Spec2006.all "0.88%" "5.38%"
    [ "mcf 17.3%, omnetpp 16.3%; bzip2/hmmer/h264ref nearly free" ]

let fig6 () =
  figure "Figure 6: PARSEC" W.Parsec.all "0.43%" "1.97%"
    [ "canneal 14.27% (unstructured data model); everything else small" ]

(* ---- Table 3 ----------------------------------------------------------------- *)

let tab3 () =
  header "Table 3: fio, Xen vs Fidelius (AES-NI I/O protection)";
  Printf.printf "%-12s %14s %16s %12s   %s\n" "operation" "Xen" "Fidelius AES-NI" "slowdown" "paper";
  let paper = [ ("rand-read", "1.38%"); ("seq-read", "22.91%"); ("rand-write", "0.70%"); ("seq-write", "3.61%") ] in
  let rows = W.Fio.table () in
  List.iter
    (fun r ->
      let name = r.W.Fio.pattern.W.Fio.pat_name in
      Printf.printf "%-12s %10.1f %s %12.1f %s %11.2f%%   %s\n" name r.W.Fio.xen_rate
        r.W.Fio.pattern.W.Fio.unit_name r.W.Fio.fidelius_rate r.W.Fio.pattern.W.Fio.unit_name
        r.W.Fio.slowdown_pct
        (try List.assoc name paper with Not_found -> ""))
    rows;
  write_csv "table_3.csv" "operation,xen_rate,fidelius_rate,unit,slowdown_pct"
    (List.map
       (fun r ->
         Printf.sprintf "%s,%.2f,%.2f,%s,%.3f" r.W.Fio.pattern.W.Fio.pat_name r.W.Fio.xen_rate
           r.W.Fio.fidelius_rate r.W.Fio.pattern.W.Fio.unit_name r.W.Fio.slowdown_pct)
       rows)

(* ---- micro benchmarks (Section 7.2) ------------------------------------------ *)

let measure_gate1 stack iters =
  let m, _, fid = stack in
  let ledger = m.Hw.Machine.ledger in
  let t0 = Hw.Cost.category ledger "gate1" in
  for _ = 1 to iters do
    ignore (Core.Gate.with_type1 fid (fun () -> Ok ()))
  done;
  float_of_int (Hw.Cost.category ledger "gate1" - t0) /. float_of_int iters

let measure_gate2 stack iters =
  let m, hv, _ = stack in
  let ledger = m.Hw.Machine.ledger in
  let t0 = Hw.Cost.category ledger "gate2" in
  let exec_ok = Hw.Mmu.exec_ok m hv.Xen.Hypervisor.host_space in
  for _ = 1 to iters do
    (* A legitimate (policy-passing) pass through the checking loop. *)
    ignore (Hw.Insn.execute m.Hw.Machine.insns ~exec_ok Hw.Insn.Mov_cr4 0x100000L)
  done;
  float_of_int (Hw.Cost.category ledger "gate2" - t0) /. float_of_int iters

let measure_gate3 stack iters =
  let m, _, fid = stack in
  let ledger = m.Hw.Machine.ledger in
  let t0 = Hw.Cost.category ledger "gate3" in
  for _ = 1 to iters do
    ignore
      (Core.Gate.with_type3 fid ~pfns:[ fid.Core.Ctx.vmrun_page ] ~executable:true (fun () ->
           Ok ()))
  done;
  float_of_int (Hw.Cost.category ledger "gate3" - t0) /. float_of_int iters

let measure_shadow stack dom iters =
  let m, hv, _ = stack in
  let ledger = m.Hw.Machine.ledger in
  let t0 = Hw.Cost.category ledger "shadow" in
  for _ = 1 to iters do
    match Xen.Hypervisor.hypercall hv dom Xen.Hypercall.Void with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  float_of_int (Hw.Cost.category ledger "shadow" - t0) /. float_of_int iters

let micro () =
  header "Micro-benchmarks (Section 7.2)";
  let stack = installed_stack 91L in
  let iters = 1000 in
  Printf.printf "gate transition costs (average of %d runs):\n" iters;
  Printf.printf "  type 1 (disable WP)      %7.1f cycles   [paper: 306]\n" (measure_gate1 stack iters);
  Printf.printf "  type 2 (checking loop)   %7.1f cycles   [paper: 16]\n" (measure_gate2 stack iters);
  Printf.printf "  type 3 (add new mapping) %7.1f cycles   [paper: 339, of which TLB flush 128]\n"
    (measure_gate3 stack iters);
  let dom = protected_guest stack "micro" 8 in
  Printf.printf "shadow+check round trip (void hypercall): %7.1f cycles   [paper: 661]\n"
    (measure_shadow stack dom 200);
  (* The 512 MB copy under the three encoders: per-block rates from the
     calibrated cost model, validated against a real 64 KiB run through
     each codec. *)
  let costs = Hw.Cost.default in
  let slowdown rate =
    100.0 *. (float_of_int rate -. float_of_int costs.Hw.Cost.memcpy_block)
    /. float_of_int costs.Hw.Cost.memcpy_block
  in
  Printf.printf "512 MB in-guest copy with encoding (vs plain copy):\n";
  Printf.printf "  AES-NI                   %+7.2f%%        [paper: +11.49%%]\n"
    (slowdown costs.Hw.Cost.aesni_block);
  Printf.printf "  SEV/SME engine           %+7.2f%%        [paper: +8.69%%]\n"
    (slowdown costs.Hw.Cost.sev_engine_block);
  Printf.printf "  software AES             %+7.1fx         [paper: >20x]\n"
    (float_of_int costs.Hw.Cost.sw_aes_block /. float_of_int costs.Hw.Cost.memcpy_block)

(* ---- Tables 1 and 2 ------------------------------------------------------------ *)

let tab1 () =
  header "Table 1: resource permissions under Fidelius (verified live)";
  let _, hv, fid = installed_stack 92L in
  let dom = protected_guest (hv.Xen.Hypervisor.machine, hv, fid) "t1" 8 in
  let host = hv.Xen.Hypervisor.host_space in
  let perm pfn =
    match Hw.Pagetable.lookup host pfn with
    | None -> "no access"
    | Some p -> if p.Hw.Pagetable.writable then "WRITABLE" else "read-only"
  in
  let row name pfns policy =
    let perms = List.sort_uniq compare (List.map perm pfns) in
    Printf.printf "%-28s %-12s %s\n" name (String.concat "/" perms) policy
  in
  Printf.printf "%-28s %-12s %s\n" "resource" "Xen perm" "policy";
  row "Page tables (Xen)" (Hw.Pagetable.backing_frames host) "PIT based policy";
  row "NPT (guest VM)" (Hw.Pagetable.backing_frames dom.Xen.Domain.npt) "PIT based policy";
  row "Grant tables" (Xen.Granttab.backing_frames hv.Xen.Hypervisor.granttab) "GIT based policy";
  row "Page info table" (Core.Pit.tree_frames fid.Core.Ctx.pit) "Xen not accessible";
  row "Grant info table" (Core.Git_table.backing_frames fid.Core.Ctx.git) "Xen not accessible";
  (match Hashtbl.find_opt fid.Core.Ctx.shadows dom.Xen.Domain.domid with
  | Some s -> row "Shadow states" [ Core.Shadow.backing s ] "exit-reason based"
  | None -> ());
  row "Fidelius text" fid.Core.Ctx.fid_text "write-forbidding"

let tab2 () =
  header "Table 2: privileged instructions under Fidelius (verified live)";
  let m, hv, fid = installed_stack 93L in
  Printf.printf "%-10s %-12s %-18s %s\n" "insn" "monopolized" "home" "gate";
  let where op =
    match Hw.Insn.instances m.Hw.Machine.insns op with
    | [ p ] when List.mem p fid.Core.Ctx.fid_text -> ("fidelius-text", "type 2: checking loop")
    | [ p ] when p = fid.Core.Ctx.vmrun_page || p = fid.Core.Ctx.cr3_page ->
        ("unmapped page", "type 3: add mapping")
    | _ -> ("MULTIPLE", "NONE")
  in
  ignore hv;
  List.iter
    (fun op ->
      let home, gate = where op in
      Printf.printf "%-10s %-12b %-18s %s\n" (Hw.Insn.op_to_string op)
        (Hw.Insn.monopolized m.Hw.Machine.insns op)
        home gate)
    Hw.Insn.all_ops

(* ---- security matrix + XSA ------------------------------------------------------ *)

let attacks () =
  header "Security matrix: attack catalogue on plain SEV vs Fidelius (Section 6)";
  Format.printf "%a@." Attacks.Runner.pp_table (Attacks.Runner.run_all ())

let xsa () =
  header "Quantitative XSA analysis (Section 6.2)";
  Format.printf "%a@." Xsa.Report.pp (Xsa.Report.compute ());
  Printf.printf "\nsample thwarted advisories:\n";
  List.iter
    (fun r ->
      Printf.printf "  XSA-%-4d %-22s %s\n" r.Xsa.Db.xsa
        (Xsa.Db.category_to_string r.Xsa.Db.category)
        r.Xsa.Db.title)
    (Xsa.Report.sample_thwarted 6)

(* ---- ablations (DESIGN.md §4) ----------------------------------------------------- *)

let ablate () =
  header "Ablation 1: gate design - WP-toggle vs full address-space switch";
  let stack = installed_stack 94L in
  let m, _, _ = stack in
  let g1 = measure_gate1 stack 500 in
  (* The rejected design: each crossing switches CR3 twice, each switch a
     full TLB flush on AMD. *)
  let ledger = m.Hw.Machine.ledger in
  let t0 = Hw.Cost.total ledger in
  let host_cr3 = Hw.Cpu.cr3 m.Hw.Machine.cpu in
  for _ = 1 to 500 do
    Hw.Cpu.priv_set_cr3 m.Hw.Machine.cpu host_cr3;
    Hw.Tlb.flush_all m.Hw.Machine.tlb;
    Hw.Cpu.priv_set_cr3 m.Hw.Machine.cpu host_cr3;
    Hw.Tlb.flush_all m.Hw.Machine.tlb
  done;
  let cr3_cost = float_of_int (Hw.Cost.total ledger - t0) /. 500.0 in
  Printf.printf "  type-1 gate (chosen):        %8.1f cycles per crossing\n" g1;
  Printf.printf "  CR3 switch (rejected):       %8.1f cycles per crossing (%.1fx)\n" cr3_cost
    (cr3_cost /. g1);
  header "Ablation 2: VMCB shadowing vs strict write-protection";
  let dom = protected_guest stack "ab2" 8 in
  let shadow_cost = measure_shadow stack dom 200 in
  (* Strict write-protection would trap every VMCB access through a type-1
     gate; a typical exit handler touches RIP, RAX, exit fields... ~6. *)
  let strict = 6.0 *. g1 in
  Printf.printf "  shadowing (chosen):          %8.1f cycles per exit\n" shadow_cost;
  Printf.printf "  strict trapping (rejected):  %8.1f cycles per exit (~6 accesses x gate1, %.1fx)\n"
    strict (strict /. shadow_cost);
  header "Ablation 3: I/O encoders on non-AES-NI hardware";
  let costs = Hw.Cost.default in
  Printf.printf "  SEV-API reuse (the paper's novelty): +%.1f%% per block\n"
    (100.0 *. float_of_int (costs.Hw.Cost.sev_engine_block - costs.Hw.Cost.memcpy_block)
     /. float_of_int costs.Hw.Cost.memcpy_block);
  Printf.printf "  software AES (only alternative):     %.0fx per block\n"
    (float_of_int costs.Hw.Cost.sw_aes_block /. float_of_int costs.Hw.Cost.memcpy_block);
  header "Ablation 4: BMT hardware integrity (Section 8 suggestion 1) - what it buys and costs";
  let stack4 = installed_stack 96L in
  let m4, hv4, fid4 = stack4 in
  ignore hv4;
  let dom4 = protected_guest stack4 "ab4" 16 in
  let integ = Core.Integrity.protect fid4 dom4 in
  Core.Integrity.guest_write integ ~addr:0x3000 (Bytes.of_string "row");
  let ledger = m4.Hw.Machine.ledger in
  let t0 = Hw.Cost.total ledger in
  let n = 200 in
  for _ = 1 to n do
    match Core.Integrity.verified_read integ ~addr:0x3000 ~len:64 with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  let verified = float_of_int (Hw.Cost.total ledger - t0) /. float_of_int n in
  let _, hv4b, _ = stack4 in
  let t1 = Hw.Cost.total ledger in
  for _ = 1 to n do
    ignore
      (Xen.Hypervisor.in_guest hv4b dom4 (fun () ->
           Xen.Domain.read m4 dom4 ~addr:0x3000 ~len:64))
  done;
  let plain = float_of_int (Hw.Cost.total ledger - t1) /. float_of_int n in
  Printf.printf "  plain guest read (64B):      %8.1f cycles\n" plain;
  Printf.printf "  BMT-verified read (64B):     %8.1f cycles (%.1fx)\n" verified (verified /. plain);
  Printf.printf "  in exchange: Rowhammer and physical ciphertext replay become *detected*\n";
  Printf.printf "  (see examples/hardware_extensions.exe and test/test_extensions.ml)\n"

(* ---- Bechamel wall-clock measurements ---------------------------------------------- *)

let write_bench_json results =
  (try Unix.mkdir results_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat results_dir "bench.json" in
  let oc = open_out path in
  output_string oc "{\n";
  let n = List.length results in
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  %S: %.1f%s\n" name ns (if i = n - 1 then "" else ","))
    results;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "  [written: %s]\n" path

(* bench.json is written by two sections (bechamel and fleet); each must
   merge into the existing file, not clobber the other's keys. The file
   is our own line-per-entry format, so the "parser" is a line scan. *)
let read_bench_json () =
  let path = Filename.concat results_dir "bench.json" in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec loop acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line -> (
          match String.index_opt line '"' with
          | None -> loop acc
          | Some i -> (
              match String.index_from_opt line (i + 1) '"' with
              | None -> loop acc
              | Some j -> (
                  let name = String.sub line (i + 1) (j - i - 1) in
                  let rest = String.sub line (j + 1) (String.length line - j - 1) in
                  let num =
                    String.trim rest |> String.split_on_char ':' |> List.rev |> List.hd
                    |> String.split_on_char ',' |> List.hd |> String.trim
                  in
                  match float_of_string_opt num with
                  | Some v -> loop ((name, v) :: acc)
                  | None -> loop acc)))
    in
    let entries = loop [] in
    close_in ic;
    entries
  end

let update_bench_json kvs =
  let keep (k, _) = not (List.mem_assoc k kvs) in
  write_bench_json (List.filter keep (read_bench_json ()) @ kvs)

(* [quota] bounds the measurement time per test; the smoke variant uses a
   tiny quota so CI can catch perf-path breakage (a primitive that stops
   running at all, or regresses by an order of magnitude) in seconds.
   Smoke numbers are noisy, so only the full run records results/bench.json
   (the machine-readable perf trajectory future PRs compare against). *)
let bechamel ?(quota = 0.25) ?(record = true) () =
  header "Bechamel: real wall-clock cost of the hot primitives (ns/run)";
  (* Which silicon ran the crypto numbers below — without this a bench.json
     delta between two machines (or a VM masking AES-NI) is uninterpretable. *)
  Printf.printf "  crypto backends: aes=%s sha256=%s (cpu: %s)\n\n"
    (Fidelius_crypto.Aes.backend ()) Fidelius_crypto.Sha256.backend
    (String.concat " " (Fidelius_crypto.Aes.cpu_features ()));
  let open Bechamel in
  let open Toolkit in
  let rng = Rng.create 99L in
  let key = Fidelius_crypto.Aes.expand (Rng.bytes rng 16) in
  let block = Rng.bytes rng 16 in
  let page = Rng.bytes rng 4096 in
  let kilobyte = Rng.bytes rng 1024 in
  let sixty_four = Rng.bytes rng 64 in
  let stack = installed_stack 95L in
  let m, hv, fid = stack in
  let dom = protected_guest stack "bench" 8 in
  let pit = fid.Core.Ctx.pit in
  let exec_ok = Hw.Mmu.exec_ok m hv.Xen.Hypervisor.host_space in
  (* The BMT entries run against their own machine so their tree/ledger
     traffic can't perturb the stack the gate benchmarks measure. The
     fetch-check input is dumped once, outside the staged closure: the
     entry times the O(1) check itself, not a page copy per run. *)
  let bm = Hw.Machine.create ~nr_frames:256 ~seed:97L () in
  let bmt_frames = List.init 256 (fun i -> i) in
  let bmt = Hw.Bmt.create bm ~frames:bmt_frames in
  let fetched = Hw.Physmem.dump bm.Hw.Machine.mem 100 in
  let batch64 = List.init 64 (fun i -> 3 * i) in
  (* xex-span-4KiB writes into this preallocated buffer so the entry times
     the cipher alone; the allocating xex-page-4KiB entry above it keeps
     measuring what callers of the wrapper actually pay. *)
  let span_dst = Bytes.create 4096 in
  (* Built once: the staged closure below would otherwise allocate this
     thunk per run, charging closure construction to the guest-read entry. *)
  let read64 () = Xen.Domain.read m dom ~addr:0x2000 ~len:64 in
  let tests =
    Test.make_grouped ~name:"fidelius"
      [ Test.make ~name:"aes-128-block" (Staged.stage (fun () ->
            ignore (Fidelius_crypto.Aes.encrypt_block key block)));
        Test.make ~name:"xex-page-4KiB" (Staged.stage (fun () ->
            ignore (Fidelius_crypto.Modes.xex_encrypt key ~tweak:0x40L page)));
        Test.make ~name:"xex-span-4KiB" (Staged.stage (fun () ->
            Fidelius_crypto.Modes.xex_encrypt_span key ~tweak0:0x40L ~tweak_step:16L
              ~src:page ~src_off:0 ~dst:span_dst ~dst_off:0 ~len:4096));
        Test.make ~name:"ctr-4KiB" (Staged.stage (fun () ->
            ignore (Fidelius_crypto.Modes.ctr_transform key ~nonce:0x99L page)));
        Test.make ~name:"ecb-4KiB" (Staged.stage (fun () ->
            ignore (Fidelius_crypto.Modes.ecb_encrypt key page)));
        Test.make ~name:"sha256-1KiB" (Staged.stage (fun () ->
            ignore (Fidelius_crypto.Sha256.digest kilobyte)));
        Test.make ~name:"sha256-64B" (Staged.stage (fun () ->
            ignore (Fidelius_crypto.Sha256.digest sixty_four)));
        Test.make ~name:"bmt-fetch-check" (Staged.stage (fun () ->
            ignore (Hw.Bmt.verify_fetched bmt 100 ~data:fetched)));
        Test.make ~name:"bmt-update-batch-64pages" (Staged.stage (fun () ->
            Hw.Bmt.update_many bmt batch64));
        Test.make ~name:"pit-lookup" (Staged.stage (fun () -> ignore (Core.Pit.get pit 100)));
        Test.make ~name:"gate1-crossing" (Staged.stage (fun () ->
            ignore (Core.Gate.with_type1 fid (fun () -> Ok ()))));
        Test.make ~name:"checking-loop" (Staged.stage (fun () ->
            ignore (Hw.Insn.execute m.Hw.Machine.insns ~exec_ok Hw.Insn.Mov_cr4 0x100000L)));
        Test.make ~name:"void-hypercall" (Staged.stage (fun () ->
            ignore (Xen.Hypervisor.hypercall hv dom Xen.Hypercall.Void)));
        Test.make ~name:"guest-read-64B" (Staged.stage (fun () ->
            ignore (Xen.Hypervisor.in_guest hv dom read64))) ]
  in
  let benchmark () =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg instances tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort compare
  in
  let estimates =
    List.filter_map
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] ->
            Printf.printf "  %-28s %12.1f ns/run\n" name est;
            Some (name, est)
        | _ ->
            Printf.printf "  %-28s (no estimate)\n" name;
            None)
      (benchmark ())
  in
  (* Fail loudly (smoke included) if a tracked primitive stops producing a
     number — a silently vanished key would otherwise survive in
     bench.json as a stale measurement forever. *)
  List.iter
    (fun k ->
      if not (List.mem_assoc k estimates) then
        failwith (Printf.sprintf "bechamel: no estimate for required benchmark %S" k))
    [ "fidelius/aes-128-block"; "fidelius/xex-page-4KiB"; "fidelius/xex-span-4KiB";
      "fidelius/ctr-4KiB"; "fidelius/ecb-4KiB"; "fidelius/sha256-1KiB";
      "fidelius/sha256-64B"; "fidelius/bmt-fetch-check"; "fidelius/bmt-update-batch-64pages";
      "fidelius/pit-lookup"; "fidelius/gate1-crossing"; "fidelius/checking-loop";
      "fidelius/void-hypercall"; "fidelius/guest-read-64B" ];
  (* Merge, don't clobber: the fleet section owns the fleet/* keys. *)
  if record then update_bench_json estimates;
  estimates

(* ---- fleet scaling (SCALING.md) ---------------------------------------------------- *)

let results_path name =
  (try Unix.mkdir results_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Filename.concat results_dir name

(* Per-worker GC/alloc report — the reproducible diagnosis behind the
   arena refactor (SCALING.md "Profiling a flat curve"): words allocated
   per VM tell you how often each worker drags every other domain into a
   stop-the-world minor-GC rendezvous. *)
let print_gc_stats gc =
  Printf.printf "  %8s %6s %14s %14s %14s %8s %8s %12s\n" "worker" "jobs" "minor-words"
    "promoted" "major-words" "minorGC" "majorGC" "minor/VM";
  List.iter
    (fun (g : W.Fleetbench.gc_stats) ->
      Printf.printf "  %8d %6d %14.3e %14.3e %14.3e %8d %8d %12.3e\n" g.W.Fleetbench.worker
        g.W.Fleetbench.jobs g.W.Fleetbench.minor_words g.W.Fleetbench.promoted_words
        g.W.Fleetbench.major_words g.W.Fleetbench.minor_collections
        g.W.Fleetbench.major_collections
        (g.W.Fleetbench.minor_words /. float_of_int (max 1 g.W.Fleetbench.jobs)))
    gc

(* The deterministic artifacts (per-VM CSV, merged Chrome trace) are
   streamed to disk by every run — the fleet determinism contract
   (pinned in test/test_fleet.ml) says every run writes identical bytes,
   and the smoke rule re-checks it across two domain counts and against
   the in-memory path. Only the VMs/sec column is wall-clock. *)
let fleet ?(vms = 16) ?(domain_counts = [ 1; 2; 4; 8 ]) ?(gc_stats = false) ?(record = true) ()
    =
  header
    (Printf.sprintf
       "Fleet: %d protected-VM simulations sharded across OCaml domains (see SCALING.md)" vms);
  let csv = results_path "fleet.csv" and trace = results_path "fleet_trace.json" in
  (* Each timed entry must see the same heap: one untimed warmup so
     first-run effects (code paging, lazy init) don't land on the first
     entry, and a compaction before each run so all start from the same
     major-heap state. Since the streaming refactor no entry retains
     anything heavier than its per-VM row list — every shard's trace
     events go to a spill file as the VM finishes — so back-to-back
     entries no longer drift the heap (what once read as a scaling
     inversion). *)
  ignore (W.Fleetbench.run_stream ~domains:1 ~vms:(min vms 4) ~csv ~trace ());
  Printf.printf "%8s %10s %10s %10s\n" "domains" "seconds" "VMs/sec" "speedup";
  let timed =
    List.map
      (fun d ->
        Gc.compact ();
        let t0 = Unix.gettimeofday () in
        let s = W.Fleetbench.run_stream ~domains:d ~vms ~csv ~trace () in
        let dt = Unix.gettimeofday () -. t0 in
        (d, dt, s.W.Fleetbench.gc))
      domain_counts
  in
  let base_dt = match timed with (_, dt, _) :: _ -> dt | [] -> 1.0 in
  let curve =
    List.map
      (fun (d, dt, _) ->
        let rate = float_of_int vms /. dt in
        Printf.printf "%8d %10.3f %10.1f %9.2fx\n" d dt rate (base_dt /. dt);
        (Printf.sprintf "fleet/vms-per-sec-d%d" d, rate))
      timed
  in
  if gc_stats then
    List.iter
      (fun (d, _, gc) ->
        Printf.printf "\n  GC per worker domain at --domains %d:\n" d;
        print_gc_stats gc)
      timed;
  Printf.printf "  [written: %s]\n  [written: %s]\n" csv trace;
  if record then update_bench_json curve

(* CI gate for the scaling curve: d4 must beat d1 by at least 2.0x — a
   soft floor below the 2.5x acceptance target so a noisy shared 4-core
   runner does not flake — and the gate self-skips (exit 0, loud
   message) where the hardware cannot express the property at all. *)
let fleet_scale ?(vms = 32) () =
  header "Fleet scale gate: d4 vs d1 VMs/sec (soft floor 2.0x, target 2.5x)";
  let rec_d = Fidelius_fleet.Pool.recommended_domains () in
  if rec_d < 4 then
    Printf.printf
      "fleet-scale: SKIP — recommended_domains() = %d < 4: the worker-domain cap multiplexes \
       --domains 4 onto %d worker(s) here, so d4/d1 is structurally ~1.0x and asserting on it \
       would only measure noise. Run on a 4+-core host.\n"
      rec_d rec_d
  else begin
    let csv = results_path "fleet.csv" and trace = results_path "fleet_trace.json" in
    let timed d =
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      ignore (W.Fleetbench.run_stream ~domains:d ~vms ~csv ~trace ());
      float_of_int vms /. (Unix.gettimeofday () -. t0)
    in
    ignore (W.Fleetbench.run_stream ~domains:1 ~vms:(min vms 4) ~csv ~trace ());
    let r1 = timed 1 in
    let r4 = timed 4 in
    let ratio = r4 /. r1 in
    Printf.printf "%8s %10s\n%8d %10.1f\n%8d %10.1f\n  d4/d1 = %.2fx\n" "domains" "VMs/sec" 1
      r1 4 r4 ratio;
    if ratio < 2.0 then begin
      Printf.printf
        "fleet-scale: FAIL — d4 ran only %.2fx faster than d1 (floor 2.0x): the curve has gone \
         flat again; profile with `bench fleet --gc-stats` (SCALING.md, \"Profiling a flat \
         curve\").\n"
        ratio;
      exit 1
    end
    else Printf.printf "fleet-scale: OK (%.2fx >= 2.0x)\n" ratio
  end

(* Tiny fleet for CI: checks the sharded run still works, that two domain
   counts produce byte-identical artifacts, that the streaming/arena path
   writes the same bytes the in-memory path returns, that a streamed run
   leaves no per-VM residue on the live heap, and that asking for more
   domains does not make the run slower (the scaling inversion PR 5
   fixed), in a few seconds. *)
let fleet_smoke () =
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("fidelius-" ^ name) in
  (* Scope the determinism check so neither run's results (trace events)
     stay alive during the timed comparison below. *)
  let check_artifacts () =
    let a = W.Fleetbench.run ~domains:1 ~vms:4 () in
    let b = W.Fleetbench.run ~domains:3 ~vms:4 () in
    if W.Fleetbench.csv a <> W.Fleetbench.csv b then
      failwith "fleet-smoke: per-VM CSV differs between domain counts";
    if
      Fidelius_obs.Json.to_string (W.Fleetbench.chrome a)
      <> Fidelius_obs.Json.to_string (W.Fleetbench.chrome b)
    then failwith "fleet-smoke: merged Chrome trace differs between domain counts";
    (* Streaming + arena reuse must be invisible in the bytes. *)
    let csv = tmp "fleet-smoke.csv" and trace = tmp "fleet-smoke-trace.json" in
    ignore (W.Fleetbench.run_stream ~domains:3 ~vms:4 ~csv ~trace ());
    if read_file csv <> W.Fleetbench.csv a then
      failwith "fleet-smoke: streamed CSV differs from the in-memory merge";
    if read_file trace <> Fidelius_obs.Json.to_string (W.Fleetbench.chrome a) ^ "\n" then
      failwith "fleet-smoke: streamed Chrome trace differs from the in-memory merge";
    Sys.remove csv;
    Sys.remove trace
  in
  check_artifacts ();
  Printf.printf
    "fleet-smoke: 4 VMs, domains 1 vs 3, in-memory vs streamed: artifacts byte-identical\n";
  (* Bounded-memory guard for the 1,000-VM story: a streamed 100-VM run
     must not grow the live heap with per-VM state (rows are ~a dozen
     words each; trace events must all have been spilled and collected,
     arenas freed with their worker domains). The 2M-word (~16 MiB)
     ceiling is far above the rows yet far below what one retained trace
     shard population (100 rings' worth of entries) would cost. *)
  let live_words () =
    Gc.full_major ();
    (Gc.stat ()).Gc.live_words
  in
  let csv = tmp "fleet-smoke-100.csv" and trace = tmp "fleet-smoke-100-trace.json" in
  ignore (W.Fleetbench.run_stream ~domains:2 ~vms:8 ~csv ~trace ());
  let before = live_words () in
  ignore (W.Fleetbench.run_stream ~domains:4 ~vms:100 ~csv ~trace ());
  let growth = live_words () - before in
  Sys.remove csv;
  Sys.remove trace;
  if growth > 2_000_000 then
    failwith
      (Printf.sprintf
         "fleet-smoke: streamed 100-VM run grew the live heap by %d words (> 2M): per-VM \
          state is being retained"
         growth);
  Printf.printf "fleet-smoke: 100 streamed VMs grew the live heap by %d words (bounded)\n"
    growth;
  (* The two runs above double as warmup. Generous slack (d2 may be up to
     1/0.7 = 1.43x slower) because a smoke box is noisy; the real curve is
     recorded by the full fleet section. Before the worker-domain cap in
     Fidelius_fleet.Pool, d2 was reliably beyond even this slack on a
     single-core host. *)
  let timed d =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    ignore (W.Fleetbench.run ~domains:d ~vms:8 ());
    Unix.gettimeofday () -. t0
  in
  let t1 = timed 1 in
  let t2 = timed 2 in
  let rate1 = 8.0 /. t1 and rate2 = 8.0 /. t2 in
  if rate2 < 0.7 *. rate1 then
    failwith
      (Printf.sprintf
         "fleet-smoke: scaling inversion: domains=2 ran at %.1f VMs/s vs %.1f VMs/s for \
          domains=1 (below the 0.7x slack)"
         rate2 rate1);
  Printf.printf "fleet-smoke: 8 VMs, d1 %.1f VMs/s vs d2 %.1f VMs/s: no inversion\n" rate1 rate2

(* ---- serve: traffic over the batched PV datapath --------------------------------------- *)

(* Wall-clock requests/second through the shared ring: the same kernel at
   1 and [batch] descriptors per doorbell. Median of three runs — the
   doorbell (a full protected-guest world switch) dominates the synchronous
   path, so the ratio is what the batching actually buys. *)
let ring_rates ?(iters = 4000) ?(runs = 3) batch =
  let kernel = W.Serve.ring_workload ~batch ~iters in
  kernel ();
  (* warmup *)
  let sample () =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    kernel ();
    float_of_int iters /. (Unix.gettimeofday () -. t0)
  in
  let samples = List.sort compare (List.init runs (fun _ -> sample ())) in
  List.nth samples (runs / 2)

let serve ?(requests = 512) ?(batches = [ 1; 2; 4; 8 ]) ?(record = true) () =
  header "Serve: open-loop mixed blk/net traffic over the batched PV datapath";
  let sync_rate = ring_rates 1 in
  let batch_rate = ring_rates 8 in
  Printf.printf
    "ring wall-clock: sync %.0f req/s, batch-8 %.0f req/s  (%.2fx per doorbell amortization)\n\n"
    sync_rate batch_rate (batch_rate /. sync_rate);
  Printf.printf "%6s %10s %10s %10s %10s %12s %10s\n" "batch" "req/s" "p50 us" "p90 us"
    "p99 us" "hypercalls" "blk-doorb";
  let rows =
    List.map
      (fun b -> W.Serve.run { W.Serve.default_config with W.Serve.batch = b; requests })
      batches
  in
  List.iter
    (fun (r : W.Serve.report) ->
      Printf.printf "%6d %10.0f %10.1f %10.1f %10.1f %12d %10d\n" r.W.Serve.batch
        r.W.Serve.rps r.W.Serve.p50_us r.W.Serve.p90_us r.W.Serve.p99_us
        r.W.Serve.hypercalls r.W.Serve.blk_notifications)
    rows;
  let kvs =
    [ ("serve/ring-req-per-sec-sync", sync_rate);
      ("serve/ring-req-per-sec-b8", batch_rate);
      ("serve/ring-speedup-b8", batch_rate /. sync_rate) ]
    @ List.concat_map
        (fun (r : W.Serve.report) ->
          let b = r.W.Serve.batch in
          [ (Printf.sprintf "serve/req-per-sec-b%d" b, r.W.Serve.rps);
            (Printf.sprintf "serve/p50-us-b%d" b, r.W.Serve.p50_us);
            (Printf.sprintf "serve/p99-us-b%d" b, r.W.Serve.p99_us);
            (Printf.sprintf "serve/hypercalls-b%d" b, float_of_int r.W.Serve.hypercalls) ])
        rows
  in
  if record then update_bench_json kvs

(* Serve smoke for CI: the batched datapath must still amortize the
   doorbell, batching must reduce world switches, and the batch-1 report
   must be deterministic for a fixed seed. Seconds, not minutes.

   Floor calibration: the original 3.5x slack (against a 5x full-bench
   ratio) dated from when the doorbell crossing cost ~14.5us of wall
   clock. The zero-alloc fast path cut the crossing roughly 3x, so the
   fixed cost that batching amortizes is a smaller share of each request
   and the honest wall-clock ratio landed at 2.3-3.7x on a 1-core box.
   The amortization claim itself (fewer world switches per request, ratio
   well above 1) is unchanged — the simulated-cycle ledger still shows the
   full doorbell saving — so the smoke floor is now 1.8x. *)
let serve_smoke () =
  let sync_rate = ring_rates ~iters:2000 1 in
  let batch_rate = ring_rates ~iters:2000 8 in
  let ratio = batch_rate /. sync_rate in
  if ratio < 1.8 then
    failwith
      (Printf.sprintf
         "serve-smoke: batch-8 ring throughput only %.2fx the synchronous path (smoke floor \
          1.8x)"
         ratio);
  let run b = W.Serve.run { W.Serve.default_config with W.Serve.batch = b; requests = 64 } in
  let r1 = run 1 and r1' = run 1 and r8 = run 8 in
  if r1 <> r1' then failwith "serve-smoke: batch-1 serve report is not deterministic";
  if r8.W.Serve.hypercalls >= r1.W.Serve.hypercalls then
    failwith
      (Printf.sprintf "serve-smoke: batch-8 took %d world switches vs %d at batch-1"
         r8.W.Serve.hypercalls r1.W.Serve.hypercalls);
  Printf.printf
    "serve-smoke: ring batch-8 %.2fx sync; %d -> %d hypercalls at batch 8; batch-1 \
     deterministic\n"
    ratio r1.W.Serve.hypercalls r8.W.Serve.hypercalls

(* ---- migrate: fleet live migration under a downtime budget ----------------------------- *)

(* The pages-sent vs downtime-budget trade-off across fleet sizes: every
   (budget, fleet) cell is a complete fleet of live migrations — both
   hosts, attesting owner, secret injection — sharded over OCaml domains.
   Pre-copy resends cost wire pages; a looser budget stops the pre-copy
   earlier, so total pages sent decreases monotonically as the budget
   grows (the guest's working set halves every round). All per-VM rows
   land in results/migrate.csv; the artifacts are deterministic at any
   domain count (the SCALING.md contract, re-checked by migrate-smoke). *)
let migrate_bench ?(budgets = [ 2.5; 10.0; 40.0 ]) ?(fleets = [ 8; 16 ]) ?(record = true) () =
  header "Migrate: fleet live migration, pages sent vs downtime budget (attested key release)";
  Printf.printf "%10s %6s %10s %10s %13s %13s\n" "budget-us" "vms" "seconds" "VMs/sec"
    "total-pages" "avg-downtime";
  ignore (W.Migratebench.run ~domains:1 ~vms:2 ~budget_us:10.0 ());
  (* warmup *)
  let cells =
    List.concat_map
      (fun budget_us ->
        List.map
          (fun vms ->
            Gc.compact ();
            let t0 = Unix.gettimeofday () in
            let t = W.Migratebench.run ~vms ~budget_us () in
            let dt = Unix.gettimeofday () -. t0 in
            if not (W.Migratebench.all_keys_delivered t) then
              failwith "bench migrate: a migration finished without its disk key";
            let pages = W.Migratebench.total_pages t in
            let downtime =
              List.fold_left (fun a r -> a +. r.W.Migratebench.downtime_us) 0.0
                t.W.Migratebench.rows
              /. float_of_int (max 1 vms)
            in
            Printf.printf "%10.1f %6d %10.3f %10.1f %13d %11.1fus\n" budget_us vms dt
              (float_of_int vms /. dt) pages downtime;
            (budget_us, vms, dt, pages, t))
          fleets)
      budgets
  in
  write_csv "migrate.csv" "vm,budget_us,rounds,pages_sent,residual_pages,downtime_us,key_delivered"
    (List.concat_map
       (fun (_, _, _, _, t) ->
         List.map
           (fun r ->
             Printf.sprintf "%d,%.1f,%d,%d,%d,%.1f,%b" r.W.Migratebench.vm
               r.W.Migratebench.budget_us r.W.Migratebench.rounds r.W.Migratebench.pages_sent
               r.W.Migratebench.residual_pages r.W.Migratebench.downtime_us
               r.W.Migratebench.key_delivered)
           t.W.Migratebench.rows)
       cells);
  if record then
    update_bench_json
      (List.concat_map
         (fun (budget_us, vms, dt, pages, _) ->
           [ (Printf.sprintf "migrate/vms-per-sec-b%g-f%d" budget_us vms,
              float_of_int vms /. dt);
             (Printf.sprintf "migrate/total-pages-b%g-f%d" budget_us vms, float_of_int pages) ])
         cells)

(* Migrate smoke for CI: real pre-copy rounds must happen, the pages-sent
   vs budget trade-off must be monotone, the per-VM CSV must be
   byte-identical across domain counts, and a firmware-rollback platform
   must be refused with the typed error and the disk key provably never
   released. Seconds, not minutes. *)
let migrate_smoke () =
  let tight = W.Migratebench.run ~domains:1 ~vms:4 ~budget_us:2.5 () in
  let loose = W.Migratebench.run ~domains:1 ~vms:4 ~budget_us:40.0 () in
  if not (List.exists (fun r -> r.W.Migratebench.rounds > 2) tight.W.Migratebench.rows) then
    failwith "migrate-smoke: no migration took multiple pre-copy rounds";
  let pt = W.Migratebench.total_pages tight and pl = W.Migratebench.total_pages loose in
  if pt <= pl then
    failwith
      (Printf.sprintf
         "migrate-smoke: pages-sent not monotone vs downtime budget (%d @2.5us <= %d @40us)" pt
         pl);
  if not (W.Migratebench.all_keys_delivered tight && W.Migratebench.all_keys_delivered loose)
  then failwith "migrate-smoke: a migration finished without its disk key";
  let a = W.Migratebench.csv (W.Migratebench.run ~domains:1 ~vms:4 ~budget_us:10.0 ()) in
  let b = W.Migratebench.csv (W.Migratebench.run ~domains:2 ~vms:4 ~budget_us:10.0 ()) in
  if a <> b then failwith "migrate-smoke: per-VM CSV differs between domain counts";
  (* Rollback: the destination host quotes from a firmware blob older than
     the owner's floor; the owner must refuse with the typed error and the
     release gate must never open. *)
  let stack1 = installed_stack 71L in
  let _, _, fid1 = stack1 in
  let dom = protected_guest stack1 "smoke" 16 in
  let _, _, fid2 = installed_stack 72L in
  let owner = Core.Migrate.Owner.create (Rng.create 73L) in
  Fidelius_inject.Plan.install
    (Fidelius_inject.Plan.make ~seed:1L
       [ Fidelius_inject.Plan.always Fidelius_inject.Site.Stale_firmware ]);
  let result = Core.Migrate.migrate_live ~owner ~src:fid1 ~dst:fid2 dom in
  Fidelius_inject.Plan.uninstall ();
  (match result with
  | Error (Core.Migrate.Stale_firmware _) -> ()
  | Error e ->
      failwith ("migrate-smoke: rollback refused with the wrong error: "
                ^ Core.Migrate.error_to_string e)
  | Ok _ -> failwith "migrate-smoke: rolled-back platform was accepted");
  if Core.Migrate.Owner.released owner || Core.Migrate.Owner.release_count owner <> 0 then
    failwith "migrate-smoke: disk key released to a rolled-back platform";
  Printf.printf
    "migrate-smoke: %d pages @2.5us > %d pages @40us; d1 vs d2 byte-identical; rollback \
     refused, key never released\n"
    pt pl

(* ---- perf delta ------------------------------------------------------------------------ *)

(* Compare the recorded perf trajectory (results/bench.json, written by the
   last full `bechamel`/`fleet` run; results/ is untracked, so the
   baseline is per-checkout)
   against a fresh measurement of the same primitives. *)
let perf () =
  let baseline = read_bench_json () in
  if baseline = [] then
    Printf.printf "perf: no results/bench.json baseline; recording one first.\n";
  let fresh = bechamel ~record:(baseline = []) () in
  header "Perf delta: recorded baseline -> this build";
  Printf.printf "  %-28s %14s %14s %9s\n" "benchmark" "baseline" "now" "speedup";
  List.iter
    (fun (name, now) ->
      match List.assoc_opt name baseline with
      | Some was ->
          Printf.printf "  %-28s %11.1f ns %11.1f ns %8.2fx\n" name was now (was /. now)
      | None -> Printf.printf "  %-28s %14s %11.1f ns\n" name "(new)" now)
    fresh

(* ---- perf gate ------------------------------------------------------------------------ *)

(* CI regression gate over the per-access fast path. The pinned keys are
   the primitives this repo has specifically optimised; anything else in
   bench.json (crypto throughput, fleet numbers) is tracked by `perf` but
   not gated, so an unrelated PR is not blocked by a noisy AES run.

   A key fails when the fresh measurement is more than [threshold] times
   the recorded baseline. 2x is deliberately loose: the 1-core CI
   container jitters by tens of percent run to run, and the gate exists to
   catch structural regressions (a closure reintroduced on the crossing, a
   gate re-copying the VMCB), which cost integer factors, not percents.
   Keys that look regressed are re-measured once and judged on the better
   of the two runs before the gate fails.

   PERF_GATE_SKIP=1 skips the gate (for hosts where wall-clock measurement
   is meaningless, e.g. heavily shared builders). *)
let perf_gate_keys =
  [ "fidelius/void-hypercall"; "fidelius/guest-read-64B";
    "fidelius/gate1-crossing"; "fidelius/checking-loop";
    "fidelius/bmt-update-batch-64pages" ]

let perf_gate () =
  if Sys.getenv_opt "PERF_GATE_SKIP" = Some "1" then
    Printf.printf "perf-gate: SKIPPED (PERF_GATE_SKIP=1)\n"
  else begin
    let threshold = 2.0 in
    (* A fresh checkout has no results/bench.json (results/ is regenerable and
       untracked): nothing to gate against, so SKIP loudly rather than fail.
       A baseline that exists but lacks a pinned key is different — that is a
       key silently falling out of the perf trajectory, and it fails. *)
    if not (Sys.file_exists (Filename.concat results_dir "bench.json")) then begin
      Printf.printf
        "perf-gate: SKIP — no results/bench.json baseline on this checkout; \
         run `make perf` on a quiet host to record one.\n";
      exit 0
    end;
    let baseline = read_bench_json () in
    let missing = List.filter (fun k -> List.assoc_opt k baseline = None) perf_gate_keys in
    if missing <> [] then begin
      Printf.printf
        "perf-gate: FAIL — results/bench.json lacks pinned key(s) %s; run `make perf` \
         on a quiet host to refresh the recorded baseline.\n"
        (String.concat ", " missing);
      exit 1
    end;
    let measure () = bechamel ~record:false () in
    let judge fresh k =
      let was = List.assoc k baseline in
      match List.assoc_opt k fresh with
      | None -> Some (k, was, nan)
      | Some now -> if now > threshold *. was then Some (k, was, now) else None
    in
    let fresh = measure () in
    let regressed = List.filter_map (judge fresh) perf_gate_keys in
    let regressed =
      if regressed = [] then []
      else begin
        Printf.printf "perf-gate: %d key(s) look regressed; re-measuring once...\n"
          (List.length regressed);
        let again = measure () in
        let best =
          List.map
            (fun (k, v) ->
              match List.assoc_opt k again with
              | Some v' when v' < v -> (k, v')
              | _ -> (k, v))
            fresh
        in
        List.filter_map (judge best) perf_gate_keys
      end
    in
    header "Perf gate: pinned fast-path keys vs recorded baseline";
    List.iter
      (fun k ->
        let was = List.assoc k baseline in
        let now = Option.value ~default:nan (List.assoc_opt k fresh) in
        let flag = if List.mem_assoc k (List.map (fun (k, w, n) -> (k, (w, n))) regressed)
          then "FAIL" else "ok" in
        Printf.printf "  %-34s %11.1f ns -> %11.1f ns  %s\n" k was now flag)
      perf_gate_keys;
    if regressed <> [] then begin
      List.iter
        (fun (k, was, now) ->
          Printf.printf
            "perf-gate: FAIL — %s regressed beyond %.1fx (baseline %.1f ns, now %.1f ns)\n"
            k threshold was now)
        regressed;
      exit 1
    end;
    Printf.printf "perf-gate: OK (all pinned keys within %.1fx of baseline)\n" threshold
  end

(* ---- driver --------------------------------------------------------------------------- *)

let all () =
  tab1 ();
  tab2 ();
  attacks ();
  xsa ();
  fig5 ();
  fig6 ();
  tab3 ();
  micro ();
  ablate ();
  serve ();
  migrate_bench ();
  fleet ();
  ignore (bechamel ())

(* [--flag v] scanned from the section's trailing arguments. *)
let flag_arg name =
  let rec go i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 2

(* Bare [--flag] (no value) present in the section's trailing arguments. *)
let has_flag name =
  let rec go i =
    if i >= Array.length Sys.argv then false
    else Sys.argv.(i) = name || go (i + 1)
  in
  go 2

let fleet_cli () =
  let vms = Option.map int_of_string (flag_arg "--vms") in
  let domain_counts =
    Option.map
      (fun s -> List.map int_of_string (String.split_on_char ',' s))
      (flag_arg "--domains")
  in
  fleet ?vms ?domain_counts ~gc_stats:(has_flag "--gc-stats") ()

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "fig5" -> fig5 ()
  | "fig6" -> fig6 ()
  | "tab3" -> tab3 ()
  | "micro" -> micro ()
  | "xsa" -> xsa ()
  | "attacks" -> attacks ()
  | "tab1" -> tab1 ()
  | "tab2" -> tab2 ()
  | "ablate" -> ablate ()
  | "bechamel" -> ignore (bechamel ())
  | "bechamel-smoke" -> ignore (bechamel ~quota:0.01 ~record:false ())
  | "perf" -> perf ()
  | "perf-gate" -> perf_gate ()
  | "fleet" -> fleet_cli ()
  | "fleet-smoke" -> fleet_smoke ()
  | "fleet-scale" ->
      let vms = Option.map int_of_string (flag_arg "--vms") in
      fleet_scale ?vms ()
  | "serve" ->
      let requests = Option.map int_of_string (flag_arg "--requests") in
      let batches =
        Option.map
          (fun s -> List.map int_of_string (String.split_on_char ',' s))
          (flag_arg "--batches")
      in
      serve ?requests ?batches ()
  | "serve-smoke" -> serve_smoke ()
  | "migrate" ->
      let budgets =
        Option.map
          (fun s -> List.map float_of_string (String.split_on_char ',' s))
          (flag_arg "--budgets")
      in
      let fleets =
        Option.map
          (fun s -> List.map int_of_string (String.split_on_char ',' s))
          (flag_arg "--fleets")
      in
      migrate_bench ?budgets ?fleets ()
  | "migrate-smoke" -> migrate_smoke ()
  | "all" -> all ()
  | other ->
      Printf.eprintf
        "unknown section %S; expected \
         fig5|fig6|tab3|micro|xsa|attacks|tab1|tab2|ablate|bechamel|bechamel-smoke|perf|\
         fleet|fleet-smoke|fleet-scale|serve|serve-smoke|migrate|migrate-smoke|all\n"
        other;
      exit 1
