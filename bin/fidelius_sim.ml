(* fidelius-sim: command-line front-end to the simulator.

     fidelius_sim demo              full life-cycle walkthrough
     fidelius_sim attacks [--id X]  security matrix (or one attack)
     fidelius_sim xsa               quantitative XSA analysis
     fidelius_sim bench SUITE       workload overheads (spec|parsec|fio|serve)
     fidelius_sim trace demo        record an event trace of a scenario
     fidelius_sim inject matrix     differential fault-injection matrix
     fidelius_sim inspect           post-install system inventory
     fidelius_sim migrate           live migration + attested key release demo *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Fid = Core.Fidelius
module W = Fidelius_workloads
module Attacks = Fidelius_attacks
module Xsa = Fidelius_xsa
module Obs = Fidelius_obs
module Rng = Fidelius_crypto.Rng
open Cmdliner

let seed_arg =
  let doc = "Deterministic seed for the simulated platform." in
  Arg.(value & opt int64 2026L & info [ "seed" ] ~docv:"SEED" ~doc)

let domains_arg =
  let doc =
    "Worker domains to shard independent runs across (default: the runtime's \
     recommended count). Results are identical for any value — see SCALING.md."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let stack_on machine =
  let hv = Xen.Hypervisor.boot machine in
  let fid = Fid.install hv in
  (machine, hv, fid)

let stack seed = stack_on (Hw.Machine.create ~seed ())

let boot_guest fid name pages =
  let rng = Rng.create 77L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ Bytes.make Hw.Addr.page_size '\000' ]
  in
  match Fid.boot_protected_vm fid ~name ~memory_pages:pages ~prepared with
  | Ok d -> d
  | Error e -> failwith e

(* --- demo ------------------------------------------------------------------ *)

(* The demo scenario doubles as the trace recording workload, so the
   narration is routed through [say] and muted under [quiet]. *)
let run_demo_scenario ?(quiet = false) machine =
  let say fmt = if quiet then Printf.ifprintf stdout fmt else Printf.printf fmt in
  let mark label = if Obs.Trace.enabled () then Obs.Trace.emit (Obs.Trace.Mark label) in
  let machine, hv, fid = stack_on machine in
  say "platform up: %d frames of DRAM, SEV firmware initialized\n"
    (Hw.Physmem.nr_frames machine.Hw.Machine.mem);
  mark "platform-up";
  let dom = boot_guest fid "demo-tenant" 24 in
  say "protected guest dom%d booted from encrypted image\n" dom.Xen.Domain.domid;
  mark "guest-booted";
  Xen.Hypervisor.in_guest hv dom (fun () ->
      Xen.Domain.write machine dom ~addr:0x5000 (Bytes.of_string "demo secret"));
  (match Hw.Pagetable.lookup dom.Xen.Domain.npt 5 with
  | Some npte -> (
      try
        ignore (Xen.Hypervisor.host_read hv npte.Hw.Pagetable.frame ~off:0 ~len:11);
        say "hypervisor read the secret (!!)\n"
      with Hw.Mmu.Fault _ -> say "hypervisor denied access to guest memory\n")
  | None -> ());
  ignore (Xen.Hypervisor.hypercall hv dom (Xen.Hypercall.Console_write "hello from the tenant"));
  say "guest console: %S\n" (Xen.Hypervisor.console hv dom.Xen.Domain.domid);
  say "\n";
  say "%s" (Fid.attestation_report fid);
  let ve, npf = Xen.Hypervisor.stats hv in
  say "vmexits=%d nested-page-faults=%d total-cycles=%d\n" ve npf
    (Hw.Cost.total machine.Hw.Machine.ledger);
  mark "scenario-done"

let demo seed =
  run_demo_scenario (Hw.Machine.create ~seed ());
  `Ok ()

let demo_cmd =
  let term = Term.(ret (const demo $ seed_arg)) in
  Cmd.v (Cmd.info "demo" ~doc:"Boot a protected guest and exercise the life cycle") term

(* --- attacks ---------------------------------------------------------------- *)

let attacks id seed domains =
  match id with
  | None -> (
      let rows = Attacks.Runner.run_all ~seed ?domains () in
      Format.printf "%a@." Attacks.Runner.pp_table rows;
      match Attacks.Runner.errors rows with
      | [] -> `Ok ()
      | errs ->
          List.iter
            (fun (id, stack, msg) ->
              Printf.eprintf "harness error: %s on %s: %s\n" id stack msg)
            errs;
          `Error (false, Printf.sprintf "%d attack run(s) errored" (List.length errs)))
  | Some id -> (
      match Attacks.Suite.find id with
      | None ->
          `Error
            (false,
             Printf.sprintf "unknown attack %S; known: %s" id
               (String.concat ", "
                  (List.map (fun a -> a.Attacks.Surface.id) Attacks.Suite.all)))
      | Some attack ->
          let row = Attacks.Runner.run_one ~seed attack in
          Printf.printf "%s — %s (paper %s)\n" attack.Attacks.Surface.id
            attack.Attacks.Surface.description attack.Attacks.Surface.paper_ref;
          Printf.printf "  plain SEV: %s\n"
            (Attacks.Surface.outcome_to_string row.Attacks.Runner.baseline);
          Printf.printf "  fidelius:  %s\n"
            (Attacks.Surface.outcome_to_string row.Attacks.Runner.fidelius);
          `Ok ())

let attacks_cmd =
  let id =
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ATTACK" ~doc:"Run one attack only.")
  in
  let term = Term.(ret (const attacks $ id $ seed_arg $ domains_arg)) in
  Cmd.v (Cmd.info "attacks" ~doc:"Run the security-analysis attack catalogue") term

(* --- xsa --------------------------------------------------------------------- *)

let xsa verbose =
  Format.printf "%a@." Xsa.Report.pp (Xsa.Report.compute ());
  if verbose then begin
    print_newline ();
    List.iter
      (fun r ->
        Printf.printf "XSA-%-4d %-10s %-22s %s\n    -> %s\n" r.Xsa.Db.xsa
          (Xsa.Db.component_to_string r.Xsa.Db.component)
          (Xsa.Db.category_to_string r.Xsa.Db.category)
          r.Xsa.Db.title (Xsa.Classify.why r))
      Xsa.Db.all
  end;
  `Ok ()

let xsa_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"List every advisory with its rationale.")
  in
  let term = Term.(ret (const xsa $ verbose)) in
  Cmd.v (Cmd.info "xsa" ~doc:"Quantitative XSA analysis (paper Section 6.2)") term

(* --- bench ------------------------------------------------------------------- *)

let pp_counts label counts =
  Printf.printf "    %-12s %s\n" label
    (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counts))

let bench suite breakdown =
  (match suite with
  | "spec" | "parsec" ->
      let profiles = if suite = "spec" then W.Spec2006.all else W.Parsec.all in
      Printf.printf "%-15s %12s %16s\n" "benchmark" "Fidelius" "Fidelius-enc";
      (* Same three runs [Engine.run_suite] performs, kept by hand so the
         per-run ledgers are available for --breakdown. *)
      let rows =
        List.map
          (fun p ->
            let base = W.Engine.run p W.Engine.Xen_baseline in
            let fid = W.Engine.run p W.Engine.Fidelius in
            let enc = W.Engine.run p W.Engine.Fidelius_enc in
            (p, W.Engine.overhead_pct ~base fid, W.Engine.overhead_pct ~base enc, enc))
          profiles
      in
      let n = float_of_int (List.length rows) in
      let sf, se =
        List.fold_left
          (fun (a, b) (p, f, e, enc) ->
            Printf.printf "%-15s %+11.2f%% %+15.2f%%\n" p.W.Profile.name f e;
            if breakdown then begin
              pp_counts "cycles:" enc.W.Engine.breakdown;
              pp_counts "scopes:" enc.W.Engine.attribution
            end;
            (a +. f, b +. e))
          (0.0, 0.0) rows
      in
      Printf.printf "%-15s %+11.2f%% %+15.2f%%\n" "AVERAGE" (sf /. n) (se /. n)
  | "fio" ->
      if breakdown then
        prerr_endline "note: --breakdown applies to the sampled suites (spec|parsec) only";
      Printf.printf "%-12s %14s %16s %10s\n" "operation" "Xen" "Fidelius" "slowdown";
      List.iter
        (fun r ->
          Printf.printf "%-12s %10.1f %s %12.1f %s %8.2f%%\n" r.W.Fio.pattern.W.Fio.pat_name
            r.W.Fio.xen_rate r.W.Fio.pattern.W.Fio.unit_name r.W.Fio.fidelius_rate
            r.W.Fio.pattern.W.Fio.unit_name r.W.Fio.slowdown_pct)
        (W.Fio.table ())
  | "serve" ->
      if breakdown then
        prerr_endline "note: --breakdown applies to the sampled suites (spec|parsec) only";
      (* Simulated-time sweep only; the wall-clock ring-throughput numbers
         (sync vs batched doorbells) come from `bench/main.exe serve`,
         which links a timer. *)
      Printf.printf "%6s %10s %10s %10s %10s %12s %10s\n" "batch" "req/s" "p50 us" "p90 us"
        "p99 us" "hypercalls" "blk-doorb";
      List.iter
        (fun b ->
          let r = W.Serve.run { W.Serve.default_config with W.Serve.batch = b } in
          Printf.printf "%6d %10.0f %10.1f %10.1f %10.1f %12d %10d\n" r.W.Serve.batch
            r.W.Serve.rps r.W.Serve.p50_us r.W.Serve.p90_us r.W.Serve.p99_us
            r.W.Serve.hypercalls r.W.Serve.blk_notifications)
        [ 1; 2; 4; 8 ]
  | other -> Printf.eprintf "unknown suite %S (spec|parsec|fio|serve)\n" other);
  `Ok ()

let bench_cmd =
  let suite =
    Arg.(value & pos 0 string "spec" & info [] ~docv:"SUITE" ~doc:"spec, parsec, fio or serve.")
  in
  let breakdown =
    Arg.(
      value & flag
      & info [ "breakdown" ]
          ~doc:"After each row, print the Fidelius-enc run's ledger categories and per-scope attribution.")
  in
  let term = Term.(ret (const bench $ suite $ breakdown)) in
  Cmd.v (Cmd.info "bench" ~doc:"Workload overheads (Figures 5/6, Table 3)") term

(* --- trace -------------------------------------------------------------------- *)

let sum_counts counts = List.fold_left (fun acc (_, v) -> acc + v) 0 counts

(* Self-check the exported artifact: reparse it with the library's own
   parser and re-verify the attribution invariant from the parsed bytes,
   so a formatting or attribution bug fails the command (and the
   trace-smoke alias) rather than producing a silently broken file. *)
let validate_chrome content ~total =
  match Obs.Json.parse content with
  | exception Obs.Json.Parse_error e -> Error ("output is not valid JSON: " ^ e)
  | json -> (
      match Obs.Json.member "traceEvents" json with
      | Some (Obs.Json.Arr (_ :: _ as events)) -> (
          let other = Obs.Json.member "otherData" json in
          let att =
            Option.bind other (fun o -> Obs.Json.member "attribution" o)
          in
          match att with
          | Some (Obs.Json.Obj fields) ->
              let s =
                List.fold_left
                  (fun acc (_, v) ->
                    match v with Obs.Json.Int n -> acc + n | _ -> acc)
                  0 fields
              in
              if s <> total then
                Error
                  (Printf.sprintf "attribution sums to %d, ledger total is %d" s total)
              else Ok (List.length events)
          | _ -> Error "otherData.attribution missing")
      | _ -> Error "traceEvents missing or empty")

let validate_jsonl content =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' content)
  in
  if lines = [] then Error "no events recorded"
  else
    let rec check n = function
      | [] -> Ok n
      | l :: rest -> (
          match Obs.Json.parse l with
          | exception Obs.Json.Parse_error e ->
              Error (Printf.sprintf "line %d is not valid JSON: %s" (n + 1) e)
          | json ->
              if Obs.Json.member "seq" json = None || Obs.Json.member "name" json = None
              then Error (Printf.sprintf "line %d lacks seq/name" (n + 1))
              else check (n + 1) rest)
    in
    check 0 lines

let trace scenario out format seed =
  match scenario with
  | "demo" -> (
      let machine = Hw.Machine.create ~seed () in
      let ledger = machine.Hw.Machine.ledger in
      Obs.Trace.enable ~clock:(fun () -> Hw.Cost.total ledger) ();
      run_demo_scenario ~quiet:true machine;
      Obs.Trace.disable ();
      let attribution = Hw.Cost.scopes ledger in
      let total = Hw.Cost.total ledger in
      let content, validation =
        match format with
        | "chrome" ->
            let c =
              Obs.Json.to_string (Obs.Trace.to_chrome ~attribution ~total_cycles:total ())
              ^ "\n"
            in
            (c, validate_chrome c ~total)
        | "jsonl" ->
            let c = Obs.Trace.to_jsonl () in
            (c, validate_jsonl c)
        | other -> ("", Error (Printf.sprintf "unknown format %S (chrome|jsonl)" other))
      in
      match validation with
      | Error e -> `Error (false, "trace: " ^ e)
      | Ok events ->
          let dir = Filename.dirname out in
          if dir <> "." && dir <> "" && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          Out_channel.with_open_bin out (fun oc -> output_string oc content);
          Printf.printf
            "trace: %d events recorded (%d dropped), %d cycles attributed across %d scopes -> %s\n"
            events (Obs.Trace.dropped ()) (sum_counts attribution)
            (List.length attribution) out;
          `Ok ())
  | other -> `Error (false, Printf.sprintf "unknown scenario %S (only: demo)" other)

let trace_cmd =
  let scenario =
    Arg.(value & pos 0 string "demo" & info [] ~docv:"SCENARIO" ~doc:"Scenario to record (demo).")
  in
  let out =
    Arg.(
      value
      & opt string (Filename.concat "results" "trace.json")
      & info [ "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let format =
    Arg.(
      value & opt string "chrome"
      & info [ "format" ] ~docv:"FMT"
          ~doc:"chrome (trace_event JSON for about://tracing) or jsonl (one event per line).")
  in
  let term = Term.(ret (const trace $ scenario $ out $ format $ seed_arg)) in
  Cmd.v
    (Cmd.info "trace" ~doc:"Record a structured event trace of a scenario with cycle attribution")
    term

(* --- inspect ------------------------------------------------------------------ *)

let inspect seed =
  let machine, hv, fid = stack seed in
  let dom = boot_guest fid "inspect" 8 in
  Printf.printf "host space id: %d, cr3: %d\n"
    (Hw.Pagetable.id hv.Xen.Hypervisor.host_space)
    (Hw.Cpu.cr3 machine.Hw.Machine.cpu);
  Printf.printf "xen text frames: %s\n"
    (String.concat " " (List.map (Printf.sprintf "0x%x") hv.Xen.Hypervisor.xen_text));
  Printf.printf "fidelius text: %s  vmrun page: 0x%x  cr3 page: 0x%x\n"
    (String.concat " " (List.map (Printf.sprintf "0x%x") fid.Core.Ctx.fid_text))
    fid.Core.Ctx.vmrun_page fid.Core.Ctx.cr3_page;
  Printf.printf "PIT radix pages: %d  GIT frames: %d\n"
    (List.length (Core.Pit.tree_frames fid.Core.Ctx.pit))
    (List.length (Core.Git_table.backing_frames fid.Core.Ctx.git));
  List.iter
    (fun op ->
      Printf.printf "%-10s instances: %s\n" (Hw.Insn.op_to_string op)
        (String.concat " "
           (List.map (Printf.sprintf "0x%x") (Hw.Insn.instances machine.Hw.Machine.insns op))))
    Hw.Insn.all_ops;
  Printf.printf "protected guest dom%d: %d frames, PIT usage counts: guest-page=%d guest-npt=%d\n"
    dom.Xen.Domain.domid
    (List.length dom.Xen.Domain.frames)
    (Core.Pit.count_usage fid.Core.Ctx.pit Core.Pit.Guest_page)
    (Core.Pit.count_usage fid.Core.Ctx.pit Core.Pit.Guest_npt);
  Format.printf "cycle ledger:@.%a@." Hw.Cost.pp machine.Hw.Machine.ledger;
  `Ok ()

let inspect_cmd =
  let term = Term.(ret (const inspect $ seed_arg)) in
  Cmd.v (Cmd.info "inspect" ~doc:"Dump the post-install system inventory") term

(* --- inject ------------------------------------------------------------------- *)

let inject_matrix seed domains sites =
  let module Matrix = Fidelius_inject_matrix.Matrix in
  let module Site = Fidelius_inject.Site in
  match
    List.fold_left
      (fun acc name ->
        match acc with
        | Error _ as e -> e
        | Ok sites -> (
            match Site.of_string name with
            | Some s -> Ok (s :: sites)
            | None -> Error name))
      (Ok []) sites
  with
  | Error name ->
      `Error
        ( false,
          Printf.sprintf "unknown fault site %S (known: %s)" name
            (String.concat " " (List.map Site.to_string Site.all)) )
  | Ok chosen ->
      let sites = if chosen = [] then Site.all else List.rev chosen in
      let report = Matrix.run ~seed ?domains ~sites () in
      Format.printf "%a@." Matrix.pp_table report;
      if Matrix.fidelius_clean report then `Ok ()
      else
        `Error
          ( false,
            "fault matrix: the Fidelius column shows silent corruption or a harness error" )

let inject_cmd =
  let sites =
    Arg.(
      value & opt_all string []
      & info [ "site" ] ~docv:"SITE"
          ~doc:"Fault site to include (repeatable); default is all sites.")
  in
  let matrix =
    let term = Term.(ret (const inject_matrix $ seed_arg $ domains_arg $ sites)) in
    Cmd.v
      (Cmd.info "matrix"
         ~doc:
           "Differential fault matrix: every fault site against plain SEV and Fidelius; exits \
            nonzero if the Fidelius column shows silent corruption or a harness error")
      term
  in
  Cmd.group (Cmd.info "inject" ~doc:"Deterministic fault injection") [ matrix ]

(* --- quote -------------------------------------------------------------------- *)

let quote seed nonce =
  let machine, hv, fid = stack seed in
  ignore machine;
  let dom = boot_guest fid "attested" 8 in
  let q = Core.Attest.quote fid ~guest:dom ~nonce () in
  Printf.printf "platform quote (nonce %Ld):\n" nonce;
  Printf.printf "  hypervisor text: %s\n"
    (Fidelius_crypto.Sha256.hex q.Core.Attest.xen_measurement);
  Printf.printf "  firmware:        %s\n"
    (Sev.Firmware.version_to_string q.Core.Attest.fw_version);
  Printf.printf "  guest domid:     %s\n"
    (match q.Core.Attest.guest_domid with Some d -> string_of_int d | None -> "-");
  Printf.printf "  MAC:             %s\n" (Fidelius_crypto.Sha256.hex q.Core.Attest.mac);
  let akey = Sev.Firmware.attestation_key hv.Xen.Hypervisor.fw in
  (match
     Core.Attest.verify ~attestation_key:akey
       ~expected_xen_measurement:q.Core.Attest.xen_measurement ~nonce q
   with
  | Ok () -> print_endline "  verifier: quote ACCEPTED"
  | Error e -> Printf.printf "  verifier: REJECTED (%s)\n" (Core.Attest.error_to_string e));
  `Ok ()

let quote_cmd =
  let nonce =
    Arg.(value & opt int64 1L & info [ "nonce" ] ~docv:"NONCE" ~doc:"Verifier anti-replay nonce.")
  in
  let term = Term.(ret (const quote $ seed_arg $ nonce)) in
  Cmd.v (Cmd.info "quote" ~doc:"Produce and verify a remote-attestation quote") term

(* --- migrate ------------------------------------------------------------------ *)

(* Live-migration walkthrough: a pre-copy migration between two simulated
   hosts with attested secret injection, then the rollback scenario — the
   destination quoting from a downgraded firmware blob — refused with the
   typed error and the disk key provably withheld. *)
let migrate seed budget_us =
  let machine1, hv1, fid1 = stack seed in
  let dom = boot_guest fid1 "traveller" 16 in
  Xen.Hypervisor.in_guest hv1 dom (fun () ->
      Xen.Domain.write machine1 dom ~addr:0xC000 (Bytes.of_string "runtime state"));
  let _machine2, hv2, fid2 = stack (Int64.add seed 1L) in
  let mutate round =
    let w = max 1 (8 lsr round) in
    for p = 1 to w do
      Xen.Hypervisor.in_guest hv1 dom (fun () ->
          Xen.Domain.write machine1 dom ~addr:(Hw.Addr.addr_of p 0)
            (Bytes.of_string (Printf.sprintf "dirty r%d" round)))
    done
  in
  let owner = Core.Migrate.Owner.create (Rng.create (Int64.add seed 2L)) in
  let config = { Core.Migrate.downtime_budget_us = budget_us; max_rounds = 8 } in
  Printf.printf "live migration, downtime budget %.1fus (%d-page stop-and-copy residual):\n"
    budget_us (Core.Migrate.budget_pages config);
  match Core.Migrate.migrate_live ~config ~owner ~mutate ~src:fid1 ~dst:fid2 dom with
  | Error e -> `Error (false, "migration failed: " ^ Core.Migrate.error_to_string e)
  | Ok (dom', rep) ->
      Printf.printf "  rounds:      %d (%d pages sent, residual %d)\n" rep.Core.Migrate.rounds
        rep.Core.Migrate.pages_sent rep.Core.Migrate.residual_pages;
      Printf.printf "  downtime:    %.1fus\n" rep.Core.Migrate.downtime_us;
      Printf.printf "  attestation: firmware %s accepted, disk key released %d time(s)\n"
        (Sev.Firmware.version_to_string (Sev.Firmware.version hv2.Xen.Hypervisor.fw))
        (Core.Migrate.Owner.release_count owner);
      Printf.printf "  guest dom%d now runs on the destination host (key %s)\n"
        dom'.Xen.Domain.domid
        (if Bytes.equal (Fid.kblk_of_guest fid2 dom') (Core.Migrate.Owner.disk_key owner)
         then "delivered intact"
         else "MISSING");
      (* Rollback: fresh pair, but the destination firmware is downgraded
         to a vulnerable-but-genuine blob before it quotes. *)
      let _, _, fid3 = stack (Int64.add seed 3L) in
      let dom3 = boot_guest fid3 "traveller2" 16 in
      let _, hv4, fid4 = stack (Int64.add seed 4L) in
      Sev.Firmware.load_blob hv4.Xen.Hypervisor.fw Sev.Firmware.vulnerable_version;
      let owner2 = Core.Migrate.Owner.create (Rng.create (Int64.add seed 5L)) in
      Printf.printf "\nrollback scenario: destination firmware downgraded to %s:\n"
        (Sev.Firmware.version_to_string Sev.Firmware.vulnerable_version);
      (match Core.Migrate.migrate_live ~config ~owner:owner2 ~src:fid3 ~dst:fid4 dom3 with
      | Ok _ -> `Error (false, "rollback scenario: vulnerable platform was ACCEPTED")
      | Error e ->
          Printf.printf "  owner refused: %s\n" (Core.Migrate.error_to_string e);
          Printf.printf "  disk key released: %b (release count %d)\n"
            (Core.Migrate.Owner.released owner2)
            (Core.Migrate.Owner.release_count owner2);
          Printf.printf "  source guest still running on the origin host: %b\n"
            (dom3.Xen.Domain.state = Xen.Domain.Runnable);
          `Ok ())

let migrate_cmd =
  let budget =
    Arg.(value & opt float 10.0
         & info [ "budget" ] ~docv:"US"
             ~doc:"Downtime budget in microseconds; decides when pre-copy stops and the \
                   residual is stop-and-copied.")
  in
  let term = Term.(ret (const migrate $ seed_arg $ budget)) in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Live-migrate a protected guest between two simulated hosts with attested secret \
          injection, then show the firmware-rollback refusal")
    term

(* --- cpu-features ------------------------------------------------------------- *)

(* Report which crypto backends CPUID selected (so bench.json deltas are
   interpretable across machines) and self-test them: FIPS-197 KAT and the
   pinned golden XEX page digest against the active backend, then a
   backend-vs-reference sweep over every tier this CPU can run. Any
   mismatch exits nonzero, which is what `make crypto-selftest` relies on. *)
let cpu_features () =
  let module Aes = Fidelius_crypto.Aes in
  let module Modes = Fidelius_crypto.Modes in
  let module Sha256 = Fidelius_crypto.Sha256 in
  Printf.printf "cpu features:   %s\n" (String.concat " " (Aes.cpu_features ()));
  Printf.printf "aes backend:    %s\n" (Aes.backend ());
  Printf.printf "sha256 backend: %s\n" Sha256.backend;
  let of_hex s =
    let nibble c = if c >= 'a' then Char.code c - 87 else Char.code c - 48 in
    Bytes.init (String.length s / 2) (fun i ->
        Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  in
  let failures = ref [] in
  let check name ok = if not ok then failures := name :: !failures in
  (* FIPS-197 Appendix B, against whatever backend is active. *)
  let kat_key = Aes.expand (of_hex "2b7e151628aed2a6abf7158809cf4f3c") in
  check "fips-197 appendix B KAT"
    (Bytes.equal
       (Aes.encrypt_block kat_key (of_hex "3243f6a8885a308d313198a2e0370734"))
       (of_hex "3925841d02dc09fbdc118597196a0b32"));
  (* The golden XEX page digest pinned by the test suite: backend changes
     must never change ciphertext. *)
  let gkey = Aes.expand (Bytes.init 16 Char.chr) in
  let page = Bytes.init 4096 (fun i -> Char.chr ((i * 7 + 3) land 0xff)) in
  check "golden xex page digest"
    (String.equal
       (Sha256.hex (Sha256.digest (Modes.xex_encrypt gkey ~tweak:0x40L page)))
       "1e91d6ec9633bfbe5eeaebdd40436a81156eca32ea8ca50945602ee573f3fb60");
  (* Every tier this CPU can run must agree with the OCaml reference. *)
  let want = Modes.xex_encrypt_span_reference in
  let expect = Bytes.create 4096 in
  want gkey ~tweak0:0x1234L ~tweak_step:16L ~src:page ~src_off:0 ~dst:expect
    ~dst_off:0 ~len:4096;
  List.iter
    (fun (name, tier) ->
      if Aes.set_backend tier then begin
        let got = Bytes.create 4096 in
        Modes.xex_encrypt_span gkey ~tweak0:0x1234L ~tweak_step:16L ~src:page
          ~src_off:0 ~dst:got ~dst_off:0 ~len:4096;
        check (name ^ " vs reference") (Bytes.equal got expect);
        Printf.printf "self-test:      %s ok=%b\n" name (Bytes.equal got expect)
      end)
    [ ("vaes", `Vaes); ("aes-ni", `Aesni); ("c-portable", `Portable) ];
  ignore (Aes.set_backend `Auto);
  match !failures with
  | [] ->
      print_endline "self-test:      PASS";
      `Ok ()
  | fs -> `Error (false, "crypto self-test FAILED: " ^ String.concat ", " fs)

let cpu_features_cmd =
  let term = Term.(ret (const cpu_features $ const ())) in
  Cmd.v
    (Cmd.info "cpu-features"
       ~doc:
         "Report the CPUID-selected AES/SHA crypto backends and self-test them against the \
          executable specification; exits nonzero on any mismatch")
    term

let main_cmd =
  let doc = "Fidelius: comprehensive VM protection against an untrusted hypervisor (HPCA'18), simulated" in
  Cmd.group (Cmd.info "fidelius_sim" ~version:"1.0.0" ~doc)
    [ demo_cmd; attacks_cmd; xsa_cmd; bench_cmd; trace_cmd; inject_cmd; inspect_cmd; quote_cmd;
      migrate_cmd; cpu_features_cmd ]

let () = exit (Cmd.eval main_cmd)
