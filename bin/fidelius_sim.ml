(* fidelius-sim: command-line front-end to the simulator.

     fidelius_sim demo              full life-cycle walkthrough
     fidelius_sim attacks [--id X]  security matrix (or one attack)
     fidelius_sim xsa               quantitative XSA analysis
     fidelius_sim bench SUITE       workload overheads (spec|parsec|fio)
     fidelius_sim inspect           post-install system inventory *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Fid = Core.Fidelius
module W = Fidelius_workloads
module Attacks = Fidelius_attacks
module Xsa = Fidelius_xsa
module Rng = Fidelius_crypto.Rng
open Cmdliner

let seed_arg =
  let doc = "Deterministic seed for the simulated platform." in
  Arg.(value & opt int64 2026L & info [ "seed" ] ~docv:"SEED" ~doc)

let stack seed =
  let machine = Hw.Machine.create ~seed () in
  let hv = Xen.Hypervisor.boot machine in
  let fid = Fid.install hv in
  (machine, hv, fid)

let boot_guest fid name pages =
  let rng = Rng.create 77L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ Bytes.make Hw.Addr.page_size '\000' ]
  in
  match Fid.boot_protected_vm fid ~name ~memory_pages:pages ~prepared with
  | Ok d -> d
  | Error e -> failwith e

(* --- demo ------------------------------------------------------------------ *)

let demo seed =
  let machine, hv, fid = stack seed in
  Printf.printf "platform up: %d frames of DRAM, SEV firmware initialized\n"
    (Hw.Physmem.nr_frames machine.Hw.Machine.mem);
  let dom = boot_guest fid "demo-tenant" 24 in
  Printf.printf "protected guest dom%d booted from encrypted image\n" dom.Xen.Domain.domid;
  Xen.Hypervisor.in_guest hv dom (fun () ->
      Xen.Domain.write machine dom ~addr:0x5000 (Bytes.of_string "demo secret"));
  (match Hw.Pagetable.lookup dom.Xen.Domain.npt 5 with
  | Some npte -> (
      try
        ignore (Xen.Hypervisor.host_read hv npte.Hw.Pagetable.frame ~off:0 ~len:11);
        print_endline "hypervisor read the secret (!!)"
      with Hw.Mmu.Fault _ -> print_endline "hypervisor denied access to guest memory")
  | None -> ());
  ignore (Xen.Hypervisor.hypercall hv dom (Xen.Hypercall.Console_write "hello from the tenant"));
  Printf.printf "guest console: %S\n" (Xen.Hypervisor.console hv dom.Xen.Domain.domid);
  print_newline ();
  print_string (Fid.attestation_report fid);
  let ve, npf = Xen.Hypervisor.stats hv in
  Printf.printf "vmexits=%d nested-page-faults=%d total-cycles=%d\n" ve npf
    (Hw.Cost.total machine.Hw.Machine.ledger);
  `Ok ()

let demo_cmd =
  let term = Term.(ret (const demo $ seed_arg)) in
  Cmd.v (Cmd.info "demo" ~doc:"Boot a protected guest and exercise the life cycle") term

(* --- attacks ---------------------------------------------------------------- *)

let attacks id seed =
  match id with
  | None ->
      Format.printf "%a@." Attacks.Runner.pp_table (Attacks.Runner.run_all ~seed ());
      `Ok ()
  | Some id -> (
      match Attacks.Suite.find id with
      | None ->
          `Error
            (false,
             Printf.sprintf "unknown attack %S; known: %s" id
               (String.concat ", "
                  (List.map (fun a -> a.Attacks.Surface.id) Attacks.Suite.all)))
      | Some attack ->
          let row = Attacks.Runner.run_one ~seed attack in
          Printf.printf "%s — %s (paper %s)\n" attack.Attacks.Surface.id
            attack.Attacks.Surface.description attack.Attacks.Surface.paper_ref;
          Printf.printf "  plain SEV: %s\n"
            (Attacks.Surface.outcome_to_string row.Attacks.Runner.baseline);
          Printf.printf "  fidelius:  %s\n"
            (Attacks.Surface.outcome_to_string row.Attacks.Runner.fidelius);
          `Ok ())

let attacks_cmd =
  let id =
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ATTACK" ~doc:"Run one attack only.")
  in
  let term = Term.(ret (const attacks $ id $ seed_arg)) in
  Cmd.v (Cmd.info "attacks" ~doc:"Run the security-analysis attack catalogue") term

(* --- xsa --------------------------------------------------------------------- *)

let xsa verbose =
  Format.printf "%a@." Xsa.Report.pp (Xsa.Report.compute ());
  if verbose then begin
    print_newline ();
    List.iter
      (fun r ->
        Printf.printf "XSA-%-4d %-10s %-22s %s\n    -> %s\n" r.Xsa.Db.xsa
          (Xsa.Db.component_to_string r.Xsa.Db.component)
          (Xsa.Db.category_to_string r.Xsa.Db.category)
          r.Xsa.Db.title (Xsa.Classify.why r))
      Xsa.Db.all
  end;
  `Ok ()

let xsa_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"List every advisory with its rationale.")
  in
  let term = Term.(ret (const xsa $ verbose)) in
  Cmd.v (Cmd.info "xsa" ~doc:"Quantitative XSA analysis (paper Section 6.2)") term

(* --- bench ------------------------------------------------------------------- *)

let bench suite =
  (match suite with
  | "spec" | "parsec" ->
      let profiles = if suite = "spec" then W.Spec2006.all else W.Parsec.all in
      Printf.printf "%-15s %12s %16s\n" "benchmark" "Fidelius" "Fidelius-enc";
      let rows = W.Engine.run_suite profiles in
      let n = float_of_int (List.length rows) in
      let sf, se =
        List.fold_left
          (fun (a, b) (p, f, e) ->
            Printf.printf "%-15s %+11.2f%% %+15.2f%%\n" p.W.Profile.name f e;
            (a +. f, b +. e))
          (0.0, 0.0) rows
      in
      Printf.printf "%-15s %+11.2f%% %+15.2f%%\n" "AVERAGE" (sf /. n) (se /. n)
  | "fio" ->
      Printf.printf "%-12s %14s %16s %10s\n" "operation" "Xen" "Fidelius" "slowdown";
      List.iter
        (fun r ->
          Printf.printf "%-12s %10.1f %s %12.1f %s %8.2f%%\n" r.W.Fio.pattern.W.Fio.pat_name
            r.W.Fio.xen_rate r.W.Fio.pattern.W.Fio.unit_name r.W.Fio.fidelius_rate
            r.W.Fio.pattern.W.Fio.unit_name r.W.Fio.slowdown_pct)
        (W.Fio.table ())
  | other -> Printf.eprintf "unknown suite %S (spec|parsec|fio)\n" other);
  `Ok ()

let bench_cmd =
  let suite =
    Arg.(value & pos 0 string "spec" & info [] ~docv:"SUITE" ~doc:"spec, parsec or fio.")
  in
  let term = Term.(ret (const bench $ suite)) in
  Cmd.v (Cmd.info "bench" ~doc:"Workload overheads (Figures 5/6, Table 3)") term

(* --- inspect ------------------------------------------------------------------ *)

let inspect seed =
  let machine, hv, fid = stack seed in
  let dom = boot_guest fid "inspect" 8 in
  Printf.printf "host space id: %d, cr3: %d\n"
    (Hw.Pagetable.id hv.Xen.Hypervisor.host_space)
    (Hw.Cpu.cr3 machine.Hw.Machine.cpu);
  Printf.printf "xen text frames: %s\n"
    (String.concat " " (List.map (Printf.sprintf "0x%x") hv.Xen.Hypervisor.xen_text));
  Printf.printf "fidelius text: %s  vmrun page: 0x%x  cr3 page: 0x%x\n"
    (String.concat " " (List.map (Printf.sprintf "0x%x") fid.Core.Ctx.fid_text))
    fid.Core.Ctx.vmrun_page fid.Core.Ctx.cr3_page;
  Printf.printf "PIT radix pages: %d  GIT frames: %d\n"
    (List.length (Core.Pit.tree_frames fid.Core.Ctx.pit))
    (List.length (Core.Git_table.backing_frames fid.Core.Ctx.git));
  List.iter
    (fun op ->
      Printf.printf "%-10s instances: %s\n" (Hw.Insn.op_to_string op)
        (String.concat " "
           (List.map (Printf.sprintf "0x%x") (Hw.Insn.instances machine.Hw.Machine.insns op))))
    Hw.Insn.all_ops;
  Printf.printf "protected guest dom%d: %d frames, PIT usage counts: guest-page=%d guest-npt=%d\n"
    dom.Xen.Domain.domid
    (List.length dom.Xen.Domain.frames)
    (Core.Pit.count_usage fid.Core.Ctx.pit Core.Pit.Guest_page)
    (Core.Pit.count_usage fid.Core.Ctx.pit Core.Pit.Guest_npt);
  Format.printf "cycle ledger:@.%a@." Hw.Cost.pp machine.Hw.Machine.ledger;
  `Ok ()

let inspect_cmd =
  let term = Term.(ret (const inspect $ seed_arg)) in
  Cmd.v (Cmd.info "inspect" ~doc:"Dump the post-install system inventory") term

(* --- quote -------------------------------------------------------------------- *)

let quote seed nonce =
  let machine, hv, fid = stack seed in
  ignore machine;
  let dom = boot_guest fid "attested" 8 in
  let q = Core.Attest.quote fid ~guest:dom ~nonce () in
  Printf.printf "platform quote (nonce %Ld):\n" nonce;
  Printf.printf "  hypervisor text: %s\n"
    (Fidelius_crypto.Sha256.hex q.Core.Attest.xen_measurement);
  Printf.printf "  guest domid:     %s\n"
    (match q.Core.Attest.guest_domid with Some d -> string_of_int d | None -> "-");
  Printf.printf "  MAC:             %s\n" (Fidelius_crypto.Sha256.hex q.Core.Attest.mac);
  let akey = Sev.Firmware.attestation_key hv.Xen.Hypervisor.fw in
  (match
     Core.Attest.verify ~attestation_key:akey
       ~expected_xen_measurement:q.Core.Attest.xen_measurement ~nonce q
   with
  | Ok () -> print_endline "  verifier: quote ACCEPTED"
  | Error e -> Printf.printf "  verifier: REJECTED (%s)\n" e);
  `Ok ()

let quote_cmd =
  let nonce =
    Arg.(value & opt int64 1L & info [ "nonce" ] ~docv:"NONCE" ~doc:"Verifier anti-replay nonce.")
  in
  let term = Term.(ret (const quote $ seed_arg $ nonce)) in
  Cmd.v (Cmd.info "quote" ~doc:"Produce and verify a remote-attestation quote") term

let main_cmd =
  let doc = "Fidelius: comprehensive VM protection against an untrusted hypervisor (HPCA'18), simulated" in
  Cmd.group (Cmd.info "fidelius_sim" ~version:"1.0.0" ~doc)
    [ demo_cmd; attacks_cmd; xsa_cmd; bench_cmd; inspect_cmd; quote_cmd ]

let () = exit (Cmd.eval main_cmd)
