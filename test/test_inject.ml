(* Tests for the fault-injection subsystem: plan determinism and firing
   budgets, the probability-0 no-perturbation property (a disarmed plan is
   byte-identical to no plan at all, ledger and trace included), typed
   fail-closed migration errors under transport faults, and matrix
   determinism on a reduced cell set. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Fid = Core.Fidelius
module Hv = Xen.Hypervisor
module Domain = Xen.Domain
module Rng = Fidelius_crypto.Rng
module Site = Fidelius_inject.Site
module Plan = Fidelius_inject.Plan
module Matrix = Fidelius_inject_matrix.Matrix
module Trace = Fidelius_obs.Trace

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let page c = Bytes.make Hw.Addr.page_size c

let installed ?(seed = 61L) () =
  let m = Hw.Machine.create ~seed () in
  let hv = Hv.boot m in
  let fid = Fid.install hv in
  (m, hv, fid)

let protected_vm ?(memory_pages = 16) fid name =
  let rng = Rng.create 62L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ page 'A'; page 'B'; page 'C' ]
  in
  ok (Fid.boot_protected_vm fid ~name ~memory_pages ~prepared)

(* --- plan mechanics ----------------------------------------------------- *)

let with_installed plan f =
  Plan.install plan;
  Fun.protect ~finally:Plan.uninstall f

let test_single_shot_budget () =
  let plan = Plan.make ~seed:1L [ Plan.always Site.Dram_flip ] in
  with_installed plan (fun () ->
      Alcotest.(check bool) "first occurrence fires" true (Plan.fire Site.Dram_flip);
      Alcotest.(check bool) "budget exhausted" false (Plan.fire Site.Dram_flip);
      Alcotest.(check bool) "other sites never armed" false (Plan.fire Site.Fw_drop));
  Alcotest.(check int) "one firing recorded" 1 (Plan.total_fires plan);
  Alcotest.(check int) "occurrences still counted" 2 (Plan.occurrences plan Site.Dram_flip)

let test_same_seed_same_schedule () =
  let schedule seed =
    let plan =
      Plan.make ~seed [ { Plan.site = Site.Fw_replay; probability = 0.4; max_fires = max_int } ]
    in
    with_installed plan (fun () -> List.init 200 (fun _ -> Plan.fire Site.Fw_replay))
  in
  Alcotest.(check (list bool)) "identical schedule" (schedule 7L) (schedule 7L);
  Alcotest.(check bool) "some occurrences fire" true (List.mem true (schedule 7L));
  Alcotest.(check bool) "some occurrences do not" true (List.mem false (schedule 7L))

let test_sites_independent () =
  (* Arming a second site must not shift the first site's schedule. *)
  let schedule rules =
    let plan = Plan.make ~seed:9L rules in
    with_installed plan (fun () ->
        List.init 100 (fun _ ->
            let a = Plan.fire Site.Tlb_omit_flush in
            ignore (Plan.fire Site.Spurious_npf);
            a))
  in
  let alone =
    schedule [ { Plan.site = Site.Tlb_omit_flush; probability = 0.3; max_fires = max_int } ]
  in
  let paired =
    schedule
      [ { Plan.site = Site.Tlb_omit_flush; probability = 0.3; max_fires = max_int };
        { Plan.site = Site.Spurious_npf; probability = 0.7; max_fires = max_int } ]
  in
  Alcotest.(check (list bool)) "schedule unmoved by other site" alone paired

let test_make_validates () =
  Alcotest.(check bool) "probability > 1 rejected" true
    (try
       ignore (Plan.make [ { Plan.site = Site.Dram_flip; probability = 1.5; max_fires = 1 } ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative budget rejected" true
    (try
       ignore (Plan.make [ { Plan.site = Site.Dram_flip; probability = 0.5; max_fires = -1 } ]);
       false
     with Invalid_argument _ -> true)

(* --- probability 0 perturbs nothing ------------------------------------- *)

(* Drive a representative workload (protected boot, guest writes and reads,
   a TLB-flushing remap cycle) and return every observable the harness
   cares about: final ledger total, per-category ledger, and the full
   trace. Under a probability-0 plan all of it must be byte-identical to a
   run with no plan installed. *)
let observable_run ~machine_seed ~with_plan =
  let m, hv, fid = installed ~seed:machine_seed () in
  Trace.set_clock (fun () -> Hw.Cost.total m.Hw.Machine.ledger);
  Trace.enable ();
  let finishing () =
    let t = Trace.to_jsonl () in
    Trace.disable ();
    Trace.clear ();
    t
  in
  let plan =
    Plan.make ~seed:5L
      (List.map (fun s -> { Plan.site = s; probability = 0.; max_fires = max_int }) Site.all)
  in
  if with_plan then Plan.install plan;
  Fun.protect
    ~finally:(fun () -> if with_plan then Plan.uninstall ())
    (fun () ->
      let dom = protected_vm fid "prob0" in
      Hv.in_guest hv dom (fun () ->
          Domain.write m dom ~addr:0x5000 (Bytes.of_string "observable payload"));
      let b = Hv.in_guest hv dom (fun () -> Domain.read m dom ~addr:0x5000 ~len:18) in
      Alcotest.(check string) "workload readback" "observable payload" (Bytes.to_string b);
      let trace = finishing () in
      (Hw.Cost.total m.Hw.Machine.ledger, Hw.Cost.categories m.Hw.Machine.ledger, trace))

let test_probability_zero_is_inert =
  QCheck.Test.make ~name:"probability-0 plan perturbs nothing" ~count:5
    QCheck.(int_bound 1000)
    (fun seed ->
      let machine_seed = Int64.of_int (seed + 1) in
      let base = observable_run ~machine_seed ~with_plan:false in
      let armed = observable_run ~machine_seed ~with_plan:true in
      base = armed)

(* --- migration under transport faults ----------------------------------- *)

let migration_pair () =
  let _, hv1, fid1 = installed ~seed:81L () in
  let dom = protected_vm fid1 "traveller" in
  Hv.in_guest hv1 dom (fun () ->
      Domain.write hv1.Hv.machine dom ~addr:0x6000 (Bytes.of_string "runtime state"));
  let _, _, fid2 = installed ~seed:82L () in
  (fid1, dom, fid2)

let test_truncated_snapshot_fails_closed () =
  let fid1, dom, fid2 = migration_pair () in
  with_installed
    (Plan.make ~seed:3L [ Plan.always Site.Snapshot_truncate ])
    (fun () ->
      match Core.Migrate.migrate ~src:fid1 ~dst:fid2 dom with
      | Error (Core.Migrate.Truncated { expected; got }) ->
          Alcotest.(check bool) "page deficit reported" true (got < expected)
      | Error e -> Alcotest.fail ("expected Truncated, got " ^ Core.Migrate.error_to_string e)
      | Ok _ -> Alcotest.fail "truncated snapshot was accepted")

let test_flipped_snapshot_fails_closed () =
  let fid1, dom, fid2 = migration_pair () in
  with_installed
    (Plan.make ~seed:3L [ Plan.always Site.Snapshot_flip ])
    (fun () ->
      match Core.Migrate.migrate ~src:fid1 ~dst:fid2 dom with
      | Error (Core.Migrate.Rejected _) -> ()
      | Error e -> Alcotest.fail ("expected Rejected, got " ^ Core.Migrate.error_to_string e)
      | Ok _ -> Alcotest.fail "bit-flipped snapshot was accepted")

(* --- matrix -------------------------------------------------------------- *)

let reduced_attacks () =
  match Fidelius_attacks.Suite.all with
  | a :: b :: _ -> [ a; b ]
  | _ -> Alcotest.fail "attack suite too small"

let test_matrix_deterministic () =
  let run () =
    Matrix.run ~seed:11L
      ~sites:[ Site.Snapshot_truncate; Site.Fw_drop ]
      ~attacks:(reduced_attacks ()) ()
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "same seed, identical report" true (r1 = r2);
  Alcotest.(check int) "2 sites x 2 stacks" 4 (List.length r1.Matrix.cells)

let test_matrix_fidelius_clean_on_transport_faults () =
  let report =
    Matrix.run ~seed:11L
      ~sites:[ Site.Snapshot_truncate; Site.Snapshot_flip ]
      ~attacks:(reduced_attacks ()) ()
  in
  Alcotest.(check bool) "no silent corruption in the Fidelius column" true
    (Matrix.fidelius_clean report);
  List.iter
    (fun (c : Matrix.cell) ->
      if c.Matrix.stack = Matrix.Fidelius then
        Alcotest.(check bool)
          (Site.to_string c.Matrix.site ^ " detected on Fidelius")
          true
          (c.Matrix.verdict = Matrix.Detected))
    report.Matrix.cells

(* The DRAM disturbance sites are the ones the BMT's O(1) inline fetch
   check exists for: a flipped or misrouted fill reaches the Fidelius stack
   through Integrity.verified_read, whose armed fetch check hashes exactly
   the delivered bytes against the stored leaf. Plain SEV has nothing
   watching and garbles state silently — the differential the paper's
   Section 8 extension closes. *)
let test_matrix_dram_faults_detected_by_fetch_check () =
  let report =
    Matrix.run ~seed:11L
      ~sites:[ Site.Dram_flip; Site.Dram_remap ]
      ~attacks:(reduced_attacks ()) ()
  in
  List.iter
    (fun (c : Matrix.cell) ->
      match c.Matrix.stack with
      | Matrix.Fidelius ->
          Alcotest.(check string)
            (Site.to_string c.Matrix.site ^ " detected on Fidelius")
            "detected"
            (Matrix.verdict_to_string c.Matrix.verdict)
      | Matrix.Plain_sev ->
          Alcotest.(check string)
            (Site.to_string c.Matrix.site ^ " silent on plain SEV")
            "SILENT-CORRUPTION"
            (Matrix.verdict_to_string c.Matrix.verdict))
    report.Matrix.cells

let () =
  Alcotest.run "inject"
    [ ( "plan",
        [ Alcotest.test_case "single-shot budget" `Quick test_single_shot_budget;
          Alcotest.test_case "same seed, same schedule" `Quick test_same_seed_same_schedule;
          Alcotest.test_case "sites independent" `Quick test_sites_independent;
          Alcotest.test_case "make validates" `Quick test_make_validates;
          QCheck_alcotest.to_alcotest test_probability_zero_is_inert ] );
      ( "migration-faults",
        [ Alcotest.test_case "truncation fails closed" `Quick
            test_truncated_snapshot_fails_closed;
          Alcotest.test_case "bit flip fails closed" `Quick test_flipped_snapshot_fails_closed ]
      );
      ( "matrix",
        [ Alcotest.test_case "deterministic" `Quick test_matrix_deterministic;
          Alcotest.test_case "fidelius column clean" `Quick
            test_matrix_fidelius_clean_on_transport_faults;
          Alcotest.test_case "dram faults caught by fetch check" `Quick
            test_matrix_dram_faults_detected_by_fetch_check ] )
    ]
