(* Tests for the Fidelius core: installation invariants (the paper's
   Tables 1 and 2), PIT/GIT, gates, shadowing, policies, the protected VM
   life cycle, I/O protection, sharing and migration. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Fid = Core.Fidelius
module Hv = Xen.Hypervisor
module Domain = Xen.Domain
module Pit = Core.Pit
module Git = Core.Git_table
module Gate = Core.Gate
module Shadow = Core.Shadow
module Policy = Core.Policy
module Rng = Fidelius_crypto.Rng

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let page c = Bytes.make Hw.Addr.page_size c

let installed () =
  let m = Hw.Machine.create ~seed:61L () in
  let hv = Hv.boot m in
  let fid = Fid.install hv in
  (m, hv, fid)

let owner_image fid ?(pages = 3) () =
  let rng = Rng.create 62L in
  Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
    ~policy:Sev.Firmware.policy_nodbg
    ~kernel_pages:(List.init pages (fun i -> page (Char.chr (65 + i))))

let protected_vm ?(memory_pages = 16) (m, hv, fid) name =
  ignore m;
  ignore hv;
  let prepared = owner_image fid () in
  (ok (Fid.boot_protected_vm fid ~name ~memory_pages ~prepared), prepared)

(* --- installation invariants (Table 1 / Table 2) ---------------------------- *)

let test_table1_permissions () =
  let _, hv, fid = installed () in
  let host = hv.Hv.host_space in
  let perm_of pfn = Hw.Pagetable.lookup host pfn in
  (* Page tables (Xen): read-only. *)
  List.iter
    (fun pfn ->
      match perm_of pfn with
      | Some pte -> Alcotest.(check bool) "xen PT page read-only" false pte.Hw.Pagetable.writable
      | None -> Alcotest.fail "xen PT page should stay mapped (read-only)")
    (Hw.Pagetable.backing_frames host);
  (* Grant tables: read-only. *)
  List.iter
    (fun pfn ->
      match perm_of pfn with
      | Some pte -> Alcotest.(check bool) "grant table read-only" false pte.Hw.Pagetable.writable
      | None -> Alcotest.fail "grant table should stay mapped")
    (Xen.Granttab.backing_frames hv.Hv.granttab);
  (* PIT/GIT (Fidelius data): unmapped. *)
  List.iter
    (fun pfn -> Alcotest.(check bool) "PIT pages unmapped" true (perm_of pfn = None))
    (Pit.tree_frames fid.Core.Ctx.pit);
  List.iter
    (fun pfn -> Alcotest.(check bool) "GIT pages unmapped" true (perm_of pfn = None))
    (Git.backing_frames fid.Core.Ctx.git);
  (* Fidelius text: executable, not writable; VMRUN/CR3 pages unmapped. *)
  List.iter
    (fun pfn ->
      match perm_of pfn with
      | Some pte ->
          Alcotest.(check bool) "fid text executable" true pte.Hw.Pagetable.executable;
          Alcotest.(check bool) "fid text read-only" false pte.Hw.Pagetable.writable
      | None -> Alcotest.fail "fid text mapped")
    fid.Core.Ctx.fid_text;
  Alcotest.(check bool) "vmrun page unmapped" true (perm_of fid.Core.Ctx.vmrun_page = None);
  Alcotest.(check bool) "cr3 page unmapped" true (perm_of fid.Core.Ctx.cr3_page = None)

let test_table2_instructions () =
  let m, _, fid = installed () in
  let insns = m.Hw.Machine.insns in
  (* Every privileged op is monopolized after the binary scan. *)
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Hw.Insn.op_to_string op ^ " monopolized")
        true (Hw.Insn.monopolized insns op))
    Hw.Insn.all_ops;
  (* Type-2 ops live in Fidelius text; VMRUN/mov-CR3 on their own pages. *)
  let fid_page = List.hd fid.Core.Ctx.fid_text in
  List.iter
    (fun op ->
      Alcotest.(check (list int)) (Hw.Insn.op_to_string op ^ " in fid text") [ fid_page ]
        (Hw.Insn.instances insns op))
    [ Hw.Insn.Mov_cr0; Hw.Insn.Mov_cr4; Hw.Insn.Wrmsr; Hw.Insn.Lgdt; Hw.Insn.Lidt ];
  Alcotest.(check (list int)) "vmrun rehomed" [ fid.Core.Ctx.vmrun_page ]
    (Hw.Insn.instances insns Hw.Insn.Vmrun);
  Alcotest.(check (list int)) "mov-cr3 rehomed" [ fid.Core.Ctx.cr3_page ]
    (Hw.Insn.instances insns Hw.Insn.Mov_cr3)

let test_measurement_recorded () =
  let _, hv, fid = installed () in
  Alcotest.(check bool) "xen text measured" true
    (Bytes.equal fid.Core.Ctx.xen_measurement (Core.Iso.measure_xen_text hv));
  let report = Fid.attestation_report fid in
  Alcotest.(check bool) "report mentions measurement" true
    (String.length report > 64)

(* --- PIT ---------------------------------------------------------------------- *)

let pit_info_gen =
  QCheck.map
    (fun (o, u, asid, valid) ->
      let owner = match o mod 4 with 0 -> Pit.Nobody | 1 -> Pit.Xen | 2 -> Pit.Fidelius | _ -> Pit.Dom (o mod 100) in
      let usage =
        match u mod 10 with
        | 0 -> Pit.Free | 1 -> Pit.Xen_text | 2 -> Pit.Xen_data | 3 -> Pit.Xen_pt
        | 4 -> Pit.Guest_page | 5 -> Pit.Guest_npt | 6 -> Pit.Grant_table
        | 7 -> Pit.Fidelius_text | 8 -> Pit.Fidelius_data | _ -> Pit.Shared_io
      in
      { Pit.owner; usage; asid = asid mod 4096; valid })
    (QCheck.quad QCheck.small_nat QCheck.small_nat QCheck.small_nat QCheck.bool)

let test_pit_roundtrip =
  QCheck.Test.make ~name:"PIT set/get roundtrip" ~count:200
    (QCheck.pair (QCheck.int_bound 8000) pit_info_gen)
    (fun (pfn, info) ->
      let m = Hw.Machine.create ~nr_frames:64 ~seed:1L () in
      let pit = Pit.create m in
      Pit.set pit pfn info;
      Pit.get pit pfn = info)

let test_pit_default_free () =
  let m = Hw.Machine.create ~nr_frames:64 ~seed:1L () in
  let pit = Pit.create m in
  Alcotest.(check bool) "unrecorded frame is free" true (Pit.get pit 42 = Pit.free_info)

let test_pit_multiple_entries () =
  let m = Hw.Machine.create ~nr_frames:64 ~seed:1L () in
  let pit = Pit.create m in
  let info1 = { Pit.owner = Pit.Dom 1; usage = Pit.Guest_page; asid = 1; valid = true } in
  let info2 = { Pit.owner = Pit.Xen; usage = Pit.Xen_pt; asid = 0; valid = true } in
  Pit.set pit 10 info1;
  Pit.set pit 20 info2;
  Pit.set pit 2000 info2;
  Alcotest.(check bool) "entry 10" true (Pit.get pit 10 = info1);
  Alcotest.(check bool) "entry 2000" true (Pit.get pit 2000 = info2);
  (* count_usage scans physical frames, so only the in-range entry counts *)
  Alcotest.(check int) "usage count" 1 (Pit.count_usage pit Pit.Xen_pt)

let test_pit_radix_growth () =
  let m = Hw.Machine.create ~nr_frames:64 ~seed:1L () in
  let pit = Pit.create m in
  let before = List.length (Pit.tree_frames pit) in
  Pit.set pit 5000 { Pit.free_info with Pit.owner = Pit.Xen };
  Alcotest.(check bool) "radix grew" true (List.length (Pit.tree_frames pit) > before)

(* --- GIT ----------------------------------------------------------------------- *)

let git_env () =
  let m = Hw.Machine.create ~nr_frames:64 ~seed:2L () in
  Git.create m

let test_git_record_check () =
  let git = git_env () in
  ok (Git.record git { Git.initiator = 1; target = 2; gfn = 10; nr = 4; writable = false });
  Alcotest.(check bool) "covered gfn ok" true
    (Result.is_ok (Git.check git ~initiator:1 ~target:2 ~gfn:12 ~writable:false));
  Alcotest.(check bool) "outside range denied" true
    (Result.is_error (Git.check git ~initiator:1 ~target:2 ~gfn:14 ~writable:false));
  Alcotest.(check bool) "wrong target denied" true
    (Result.is_error (Git.check git ~initiator:1 ~target:3 ~gfn:10 ~writable:false));
  Alcotest.(check bool) "widening denied" true
    (Result.is_error (Git.check git ~initiator:1 ~target:2 ~gfn:10 ~writable:true))

let test_git_writable_intent () =
  let git = git_env () in
  ok (Git.record git { Git.initiator = 1; target = 2; gfn = 5; nr = 1; writable = true });
  Alcotest.(check bool) "writable ok" true
    (Result.is_ok (Git.check git ~initiator:1 ~target:2 ~gfn:5 ~writable:true));
  Alcotest.(check bool) "narrower read ok" true
    (Result.is_ok (Git.check git ~initiator:1 ~target:2 ~gfn:5 ~writable:false))

let test_git_revoke () =
  let git = git_env () in
  ok (Git.record git { Git.initiator = 1; target = 2; gfn = 5; nr = 1; writable = true });
  ok (Git.record git { Git.initiator = 1; target = 3; gfn = 9; nr = 1; writable = true });
  Git.revoke git ~initiator:1 ~gfn:5;
  Alcotest.(check bool) "revoked" true
    (Result.is_error (Git.check git ~initiator:1 ~target:2 ~gfn:5 ~writable:true));
  Alcotest.(check int) "other intent remains" 1 (List.length (Git.intents git));
  Git.revoke_domain git ~initiator:1;
  Alcotest.(check int) "domain revoked" 0 (List.length (Git.intents git))

let test_git_bad_nr () =
  let git = git_env () in
  Alcotest.(check bool) "nr 0 rejected" true
    (Result.is_error (Git.record git { Git.initiator = 1; target = 2; gfn = 5; nr = 0; writable = false }))

let test_git_property =
  QCheck.Test.make ~name:"GIT check covers exactly the declared range" ~count:100
    (QCheck.quad (QCheck.int_bound 100) (QCheck.int_bound 20) QCheck.small_nat QCheck.bool)
    (fun (gfn, nr, probe, writable) ->
      let nr = max 1 nr in
      let git = git_env () in
      (match Git.record git { Git.initiator = 1; target = 2; gfn; nr; writable } with
      | Ok () -> ()
      | Error _ -> QCheck.assume_fail ());
      let inside = probe >= gfn && probe < gfn + nr in
      Result.is_ok (Git.check git ~initiator:1 ~target:2 ~gfn:probe ~writable) = inside)

(* --- gates ------------------------------------------------------------------------ *)

let test_gate1_cost_and_wp () =
  let m, _, fid = installed () in
  let t0 = Hw.Cost.category m.Hw.Machine.ledger "gate1" in
  let saw_wp_open = ref false in
  ignore
    (ok
       (Gate.with_type1 fid (fun () ->
            saw_wp_open := not (Hw.Cpu.wp m.Hw.Machine.cpu);
            Ok ())));
  Alcotest.(check bool) "WP cleared inside" true !saw_wp_open;
  Alcotest.(check bool) "WP restored" true (Hw.Cpu.wp m.Hw.Machine.cpu);
  Alcotest.(check bool) "not in fidelius after" false (Hw.Cpu.in_fidelius m.Hw.Machine.cpu);
  Alcotest.(check int) "charged 306 cycles"
    (t0 + m.Hw.Machine.costs.Hw.Cost.gate1)
    (Hw.Cost.category m.Hw.Machine.ledger "gate1")

let test_gate1_restores_on_exception () =
  let m, _, fid = installed () in
  (try
     ignore (Gate.with_type1 fid (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check bool) "WP restored after raise" true (Hw.Cpu.wp m.Hw.Machine.cpu);
  Alcotest.(check bool) "fidelius flag cleared" false (Hw.Cpu.in_fidelius m.Hw.Machine.cpu)

let test_gate1_not_reentrant () =
  let _, _, fid = installed () in
  let inner_result = ref (Ok ()) in
  ignore
    (ok
       (Gate.with_type1 fid (fun () ->
            inner_result := Gate.with_type1 fid (fun () -> Ok ());
            Ok ())));
  Alcotest.(check bool) "nested gate rejected" true (Result.is_error !inner_result)

let test_gate3_mapping_window () =
  let m, hv, fid = installed () in
  let target = fid.Core.Ctx.vmrun_page in
  Alcotest.(check bool) "unmapped before" true
    (Hw.Pagetable.lookup hv.Hv.host_space target = None);
  ignore
    (ok
       (Gate.with_type3 fid ~pfns:[ target ] ~executable:true (fun () ->
            Alcotest.(check bool) "mapped inside" true
              (Hw.Mmu.exec_ok m hv.Hv.host_space target);
            Ok ())));
  Alcotest.(check bool) "withdrawn after" true
    (Hw.Pagetable.lookup hv.Hv.host_space target = None)

let test_gate_counts () =
  let _, hv, fid = installed () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:2 in
  let g1a, _, g3a = Gate.counts fid in
  ignore (ok (Hv.hypercall hv dom Xen.Hypercall.Void));
  let g1b, _, g3b = Gate.counts fid in
  Alcotest.(check bool) "vmrun used a type-3 gate" true (g3b > g3a);
  ignore (g1a, g1b)

(* --- shadow ------------------------------------------------------------------------- *)

let shadow_env () =
  let m = Hw.Machine.create ~nr_frames:128 ~seed:3L () in
  let backing = Hw.Machine.alloc_frame m in
  let s = Shadow.create m ~backing in
  let vmcb = Hw.Vmcb.create () in
  Hw.Vmcb.set vmcb Hw.Vmcb.Rip 0x1000L;
  Hw.Vmcb.set vmcb Hw.Vmcb.Rsp 0x8000L;
  Hw.Vmcb.set vmcb Hw.Vmcb.Asid 3L;
  Hw.Vmcb.set vmcb Hw.Vmcb.Cr3 0x55L;
  (m, s, vmcb)

let test_shadow_mask_and_restore () =
  let m, s, vmcb = shadow_env () in
  Hw.Cpu.set_reg m.Hw.Machine.cpu Hw.Cpu.Rbx 0x42L;
  Shadow.capture s m vmcb Hw.Vmcb.Npf;
  Alcotest.(check int64) "rip masked" 0L (Hw.Vmcb.get vmcb Hw.Vmcb.Rip);
  Alcotest.(check int64) "rbx masked" 0L (Hw.Cpu.get_reg m.Hw.Machine.cpu Hw.Cpu.Rbx);
  Alcotest.(check int64) "control area visible" 3L (Hw.Vmcb.get vmcb Hw.Vmcb.Asid);
  ok (Shadow.verify_and_restore s m vmcb);
  Alcotest.(check int64) "rip restored" 0x1000L (Hw.Vmcb.get vmcb Hw.Vmcb.Rip);
  Alcotest.(check int64) "rbx restored" 0x42L (Hw.Cpu.get_reg m.Hw.Machine.cpu Hw.Cpu.Rbx)

let test_shadow_visible_fields_by_reason () =
  let m, s, vmcb = shadow_env () in
  Hw.Vmcb.set vmcb Hw.Vmcb.Rax 0x99L;
  Shadow.capture s m vmcb Hw.Vmcb.Vmmcall;
  Alcotest.(check int64) "rax visible for hypercall" 0x99L (Hw.Vmcb.get vmcb Hw.Vmcb.Rax);
  Alcotest.(check int64) "rsp hidden" 0L (Hw.Vmcb.get vmcb Hw.Vmcb.Rsp);
  ok (Shadow.verify_and_restore s m vmcb)

let test_shadow_allows_legit_updates () =
  let m, s, vmcb = shadow_env () in
  Shadow.capture s m vmcb Hw.Vmcb.Vmmcall;
  (* Hypervisor advances RIP and writes the return value: allowed. *)
  Hw.Vmcb.set vmcb Hw.Vmcb.Rip (Int64.add (Hw.Vmcb.get vmcb Hw.Vmcb.Rip) 3L);
  Hw.Vmcb.set vmcb Hw.Vmcb.Rax 0x77L;
  ok (Shadow.verify_and_restore s m vmcb);
  Alcotest.(check int64) "rax update stands" 0x77L (Hw.Vmcb.get vmcb Hw.Vmcb.Rax)

let test_shadow_detects_every_protected_field () =
  (* For every protected field and a non-updatable exit reason, tampering
     is detected. *)
  List.iter
    (fun field ->
      let m, s, vmcb = shadow_env () in
      Shadow.capture s m vmcb Hw.Vmcb.Npf;
      Hw.Vmcb.set vmcb field (Int64.add (Hw.Vmcb.get vmcb field) 0x1234L);
      match Shadow.verify_and_restore s m vmcb with
      | Error _ -> ()
      | Ok () ->
          Alcotest.fail
            (Printf.sprintf "tampering %s went undetected" (Hw.Vmcb.field_to_string field)))
    Shadow.protected_fields

let test_shadow_rejects_entry_without_capture () =
  let m, s, vmcb = shadow_env () in
  Alcotest.(check bool) "no capture, no entry" true
    (Result.is_error (Shadow.verify_and_restore s m vmcb))

let test_shadow_backing_unreadable_frame () =
  let m, s, vmcb = shadow_env () in
  Shadow.capture s m vmcb Hw.Vmcb.Hlt;
  (* The shadow really lives in its backing frame. *)
  let raw = Hw.Physmem.dump m.Hw.Machine.mem (Shadow.backing s) in
  Alcotest.(check int64) "rip snapshot in frame" 0x1000L (Bytes.get_int64_be raw 0);
  ok (Shadow.verify_and_restore s m vmcb)

(* --- policies ------------------------------------------------------------------------ *)

let test_policy_cr_bits () =
  let m, _, fid = installed () in
  Alcotest.(check bool) "PG clear denied" true
    (Result.is_error (Policy.check_cr0 fid 0x10000L));
  Alcotest.(check bool) "WP clear denied" true
    (Result.is_error (Policy.check_cr0 fid 0x80000000L));
  Alcotest.(check bool) "both set ok" true
    (Result.is_ok (Policy.check_cr0 fid 0x80010000L));
  Alcotest.(check bool) "SMEP clear denied" true (Result.is_error (Policy.check_cr4 fid 0L));
  Alcotest.(check bool) "NXE clear denied" true (Result.is_error (Policy.check_efer fid 0L));
  (* Inside the Fidelius context the same writes are allowed. *)
  Hw.Cpu.enter_fidelius m.Hw.Machine.cpu;
  Alcotest.(check bool) "fidelius may clear WP" true
    (Result.is_ok (Policy.check_cr0 fid 0x80000000L));
  Hw.Cpu.leave_fidelius m.Hw.Machine.cpu

let test_policy_cr3 () =
  let m, hv, fid = installed () in
  Alcotest.(check bool) "host space valid" true
    (Result.is_ok (Policy.check_cr3 fid (Int64.of_int (Hw.Pagetable.id hv.Hv.host_space))));
  let rogue = Hw.Machine.new_table m in
  Alcotest.(check bool) "rogue space invalid" true
    (Result.is_error (Policy.check_cr3 fid (Int64.of_int (Hw.Pagetable.id rogue))))

let test_policy_once () =
  let _, _, fid = installed () in
  Alcotest.(check bool) "first write ok" true (Result.is_ok (Policy.write_once fid ~region:"r1"));
  Alcotest.(check bool) "second denied" true (Result.is_error (Policy.write_once fid ~region:"r1"));
  Alcotest.(check bool) "other region ok" true (Result.is_ok (Policy.write_once fid ~region:"r2"));
  Alcotest.(check bool) "exec once" true (Result.is_ok (Policy.exec_once fid ~what:"lgdt"));
  Alcotest.(check bool) "exec twice denied" true (Result.is_error (Policy.exec_once fid ~what:"lgdt"))

let test_policy_audit_log () =
  let _, _, fid = installed () in
  let before = List.length (Fid.violations fid) in
  ignore (Policy.check_cr0 fid 0L);
  Alcotest.(check int) "denial audited" (before + 1) (List.length (Fid.violations fid))

let test_policy_wx () =
  let _, _, fid = installed () in
  Alcotest.(check bool) "W^X denied" true
    (Result.is_error
       (Policy.check_host_map_update fid 50
          (Some { Hw.Pagetable.frame = 50; writable = true; executable = true; c_bit = false })))

(* --- lifecycle ------------------------------------------------------------------------ *)

let test_protected_boot () =
  let (m, hv, fid) = installed () in
  let dom, prepared = protected_vm (m, hv, fid) "tenant" in
  Alcotest.(check bool) "protected" true (Fid.is_protected fid dom.Domain.domid);
  Alcotest.(check bool) "firmware RUNNING" true
    (match dom.Domain.sev_handle with
    | Some h -> Sev.Firmware.state_of hv.Hv.fw ~handle:h = Some Sev.State.Running
    | None -> false);
  (* Kernel pages decrypt for the guest. *)
  let b = Hv.in_guest hv dom (fun () -> Domain.read m dom ~addr:0x2000 ~len:4) in
  Alcotest.(check string) "page 2 content" "CCCC" (Bytes.to_string b);
  (* The owner's disk key is recoverable only from inside. *)
  Alcotest.(check bool) "kblk matches" true
    (Bytes.equal (Fid.kblk_of_guest fid dom) prepared.Sev.Transport.Owner.kblk);
  (* Guest frames are unmapped from the hypervisor. *)
  (match Hw.Pagetable.lookup dom.Domain.npt 0 with
  | Some npte ->
      Alcotest.(check bool) "frame revoked from host" true
        (Hw.Pagetable.lookup hv.Hv.host_space npte.Hw.Pagetable.frame = None)
  | None -> Alcotest.fail "gfn 0 unbacked")

let test_boot_tampered_image_fails () =
  let (_, hv, fid) = installed () in
  let prepared = owner_image fid () in
  let tampered_pages =
    List.map
      (fun (i, c) ->
        let c = Bytes.copy c in
        if i = 1 then Bytes.set c 0 (Char.chr (Char.code (Bytes.get c 0) lxor 1));
        (i, c))
      prepared.Sev.Transport.Owner.image.Sev.Transport.pages
  in
  let prepared =
    { prepared with
      Sev.Transport.Owner.image =
        { prepared.Sev.Transport.Owner.image with Sev.Transport.pages = tampered_pages } }
  in
  let doms_before = List.length hv.Hv.domains in
  Alcotest.(check bool) "tampered image rejected" true
    (Result.is_error (Fid.boot_protected_vm fid ~name:"evil" ~memory_pages:8 ~prepared));
  Alcotest.(check int) "rollback removed the domain" doms_before (List.length hv.Hv.domains)

let test_nosend_policy () =
  (* A guest whose owner set NOSEND cannot be exported at all. *)
  let _, hv, fid = installed () in
  let rng = Rng.create 64L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
      ~policy:(Sev.Firmware.policy_nodbg lor Sev.Firmware.policy_nosend)
      ~kernel_pages:[ page 'N' ]
  in
  let dom = ok (Fid.boot_protected_vm fid ~name:"sealed" ~memory_pages:8 ~prepared) in
  let handle = Option.get dom.Domain.sev_handle in
  Alcotest.(check bool) "SEND refused" true
    (Result.is_error
       (Sev.Firmware.send_start hv.Hv.fw ~handle
          ~target_public:(Fid.platform_key fid) ~nonce:1L));
  let m2 = Hw.Machine.create ~seed:72L () in
  let fid2 = Fid.install (Hv.boot m2) in
  Alcotest.(check bool) "migration refused" true
    (Result.is_error (Fid.migrate ~src:fid ~dst:fid2 dom))

let test_boot_wrong_platform_fails () =
  let (_, _, fid) = installed () in
  let rng = Rng.create 63L in
  let other_secret, other_public = Fidelius_crypto.Dh.generate rng in
  ignore other_secret;
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:other_public ~policy:1
      ~kernel_pages:[ page 'Z' ]
  in
  Alcotest.(check bool) "image for another platform rejected" true
    (Result.is_error (Fid.boot_protected_vm fid ~name:"misdirected" ~memory_pages:8 ~prepared))

let test_hypercall_roundtrip_protected () =
  let env = installed () in
  let _, hv, _ = env in
  let dom, _ = protected_vm env "tenant" in
  Alcotest.(check int64) "void ok" 0L (ok (Hv.hypercall hv dom Xen.Hypercall.Void));
  ignore (ok (Hv.hypercall hv dom (Xen.Hypercall.Console_write "from protected guest")));
  Alcotest.(check string) "console" "from protected guest" (Hv.console hv dom.Domain.domid)

let test_cpuid_under_masking () =
  (* The CPUID flow works through Fidelius' shadowing: the leaf register is
     visible, the four results are the updatable set, and every other
     register comes back from the shadow. *)
  let ((m, hv, _) as env) = installed () in
  let dom, _ = protected_vm env "cpuid" in
  let cpu = m.Hw.Machine.cpu in
  Hw.Cpu.set_reg cpu Hw.Cpu.R12 0xFEEDL;
  (match Hv.cpuid hv dom ~leaf:0x8000001F with
  | Ok (a, _, _, _) -> Alcotest.(check int64) "SEV leaf under Fidelius" 3L a
  | Error e -> Alcotest.fail e);
  Alcotest.(check int64) "bystander register restored" 0xFEEDL
    (Hw.Cpu.get_reg cpu Hw.Cpu.R12)

let test_msr_under_masking () =
  let ((_, hv, _) as env) = installed () in
  let dom, _ = protected_vm env "msr" in
  ok (Hv.wrmsr_guest hv dom ~msr:0x20 42L);
  Alcotest.(check int64) "msr roundtrip under Fidelius" 42L (ok (Hv.rdmsr hv dom ~msr:0x20))

let test_shutdown_cleans_up () =
  let ((m, hv, fid) as env) = installed () in
  let dom, _ = protected_vm env "tenant" in
  let handle = Option.get dom.Domain.sev_handle in
  let frames = dom.Domain.frames in
  Fid.shutdown_protected_vm fid dom;
  Alcotest.(check bool) "decommissioned" true
    (Sev.Firmware.state_of hv.Hv.fw ~handle = Some Sev.State.Decommissioned);
  Alcotest.(check bool) "no longer protected" false (Fid.is_protected fid dom.Domain.domid);
  (* Frames scrubbed, PIT reset, direct map restored. *)
  List.iter
    (fun pfn ->
      Alcotest.(check bool) "PIT freed" true ((Pit.get fid.Core.Ctx.pit pfn).Pit.usage = Pit.Free);
      Alcotest.(check bool) "host mapping restored" true
        (Hw.Pagetable.lookup hv.Hv.host_space pfn <> None);
      Alcotest.(check string) "scrubbed" "\000\000"
        (Bytes.to_string (Hw.Physmem.read_raw m.Hw.Machine.mem pfn ~off:0 ~len:2)))
    frames

let test_write_start_info_once () =
  let env = installed () in
  let _, _, fid = env in
  let dom, _ = protected_vm env "tenant" in
  Alcotest.(check bool) "first write ok" true
    (Result.is_ok (Fid.write_start_info fid dom (Bytes.of_string "start info")));
  (* Byte-granular bit-vector (paper 5.3): a disjoint range is fine, any
     overlap is denied. *)
  Alcotest.(check bool) "disjoint range ok" true
    (Result.is_ok (Fid.write_start_info ~off:100 fid dom (Bytes.of_string "more fields")));
  Alcotest.(check bool) "overlapping rewrite denied" true
    (Result.is_error (Fid.write_start_info ~off:4 fid dom (Bytes.of_string "again")));
  Alcotest.(check bool) "exact rewrite denied" true
    (Result.is_error (Fid.write_start_info fid dom (Bytes.of_string "start info")));
  Alcotest.(check bool) "out of page denied" true
    (Result.is_error (Fid.write_start_info ~off:4090 fid dom (Bytes.of_string "overflowing")))

(* --- io protection ---------------------------------------------------------------------- *)

let test_aesni_codec_roundtrip () =
  let ((m, hv, fid) as env) = installed () in
  ignore m;
  let dom, prepared = protected_vm env "io" in
  let kblk = prepared.Sev.Transport.Owner.kblk in
  let plain = Bytes.init (8 * 512) (fun i -> Char.chr (i land 0xff)) in
  let disk = Xen.Vdisk.of_bytes (Core.Io_protect.encrypt_disk ~kblk plain) in
  let fe, _ = ok (Xen.Blkif.connect hv dom ~disk ~buffer_gvfn:200) in
  Xen.Blkif.set_codec fe (Fid.aesni_codec fid ~kblk);
  let got = ok (Xen.Blkif.read_sectors fe ~sector:0 ~count:8) in
  Alcotest.(check bool) "owner-encrypted disk mounts" true (Bytes.equal got plain);
  ok (Xen.Blkif.write_sectors fe ~sector:2 (Bytes.make 512 'W'));
  Alcotest.(check bool) "platter stays ciphertext" false
    (Bytes.for_all (fun c -> c = 'W') (Xen.Vdisk.peek disk ~sector:2 ~count:1));
  let back = ok (Xen.Blkif.read_sectors fe ~sector:2 ~count:1) in
  Alcotest.(check bool) "written data reads back" true (Bytes.for_all (fun c -> c = 'W') back)

let test_disk_encrypt_helpers () =
  let kblk = Bytes.make 16 'd' in
  let data = Bytes.of_string "some disk image content" in
  let enc = Core.Io_protect.encrypt_disk ~kblk data in
  let dec = Core.Io_protect.decrypt_disk ~kblk enc in
  Alcotest.(check string) "roundtrip (padded)" "some disk image content"
    (Bytes.to_string (Bytes.sub dec 0 (Bytes.length data)));
  Alcotest.(check int) "padded to sectors" 512 (Bytes.length enc)

let test_sev_codec_roundtrip () =
  let ((_, hv, fid) as env) = installed () in
  let dom, _ = protected_vm env "sevio" in
  let io = ok (Fid.setup_sev_io fid dom ~md_gvfn:300) in
  let s_handle, r_handle = Core.Io_protect.helper_handles io in
  Alcotest.(check bool) "s-dom SENDING" true
    (Sev.Firmware.state_of hv.Hv.fw ~handle:s_handle = Some Sev.State.Sending);
  Alcotest.(check bool) "r-dom RECEIVING" true
    (Sev.Firmware.state_of hv.Hv.fw ~handle:r_handle = Some Sev.State.Receiving);
  let disk = Xen.Vdisk.create ~nr_sectors:32 in
  let fe, _ = ok (Xen.Blkif.connect hv dom ~disk ~buffer_gvfn:301) in
  Xen.Blkif.set_codec fe (Fid.sev_codec io);
  ok (Xen.Blkif.write_sectors fe ~sector:4 (Bytes.make 1024 'S'));
  Alcotest.(check bool) "platter ciphertext" false
    (Bytes.for_all (fun c -> c = 'S') (Xen.Vdisk.peek disk ~sector:4 ~count:1));
  let got = ok (Xen.Blkif.read_sectors fe ~sector:4 ~count:2) in
  Alcotest.(check bool) "roundtrip" true (Bytes.for_all (fun c -> c = 'S') got)

let test_software_codec_roundtrip () =
  (* The ablation baseline: same transformation as AES-NI, charged at the
     software rate. *)
  let ((m, hv, fid) as env) = installed () in
  ignore m;
  let dom, prepared = protected_vm env "sw-io" in
  let kblk = prepared.Sev.Transport.Owner.kblk in
  let disk = Xen.Vdisk.create ~nr_sectors:16 in
  let fe, _ = ok (Xen.Blkif.connect hv dom ~disk ~buffer_gvfn:210) in
  Xen.Blkif.set_codec fe (Fid.software_codec fid ~kblk);
  ok (Xen.Blkif.write_sectors fe ~sector:1 (Bytes.make 512 's'));
  let before = Hw.Cost.category hv.Hv.machine.Hw.Machine.ledger "io-encode-sw" in
  let b = ok (Xen.Blkif.read_sectors fe ~sector:1 ~count:1) in
  Alcotest.(check bool) "roundtrip" true (Bytes.for_all (fun c -> c = 's') b);
  Alcotest.(check bool) "charged at the software rate" true
    (Hw.Cost.category hv.Hv.machine.Hw.Machine.ledger "io-encode-sw" > before);
  (* Software and AES-NI codecs interoperate: same Kblk scheme on disk. *)
  Xen.Blkif.set_codec fe (Fid.aesni_codec fid ~kblk);
  let b2 = ok (Xen.Blkif.read_sectors fe ~sector:1 ~count:1) in
  Alcotest.(check bool) "codecs interoperate" true (Bytes.for_all (fun c -> c = 's') b2)

(* Golden pins captured on the pre-batching synchronous implementation with
   the AES-NI codec on a protected guest: the span-granular codec (one bulk
   XEX call per batch of sectors) must reproduce the per-sector path's
   cycles, categories and ciphertext exactly at batch size 1. *)
let test_aesni_codec_batch1_golden () =
  let pattern n = Bytes.init n (fun i -> Char.chr (((i * 7) + 13) land 0xff)) in
  let hex b =
    String.concat ""
      (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (Bytes.length b) (Bytes.get b))))
  in
  let m = Hw.Machine.create ~seed:31L () in
  let hv = Hv.boot m in
  let fid = Fid.install hv in
  let rng = Rng.create 8L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ Bytes.make Hw.Addr.page_size '\000' ]
  in
  let dom = ok (Fid.boot_protected_vm fid ~name:"io-guest" ~memory_pages:24 ~prepared) in
  let kblk = Fid.kblk_of_guest fid dom in
  let disk = Xen.Vdisk.of_bytes (Core.Io_protect.encrypt_disk ~kblk (pattern (32 * 512))) in
  let fe, _ = ok (Xen.Blkif.connect hv dom ~disk ~buffer_gvfn:200) in
  Xen.Blkif.set_codec fe (Fid.aesni_codec fid ~kblk);
  let ledger = m.Hw.Machine.ledger in
  Alcotest.(check int) "setup cycles unchanged" 1259697 (Hw.Cost.total ledger);
  ok (Xen.Blkif.write_sectors fe ~sector:10 (pattern (8 * 512)));
  Alcotest.(check int) "write cycles unchanged" 1470754 (Hw.Cost.total ledger);
  Alcotest.(check int) "write codec charge unchanged" 29440
    (Hw.Cost.category ledger "io-encode-aesni");
  let rd = ok (Xen.Blkif.read_sectors fe ~sector:4 ~count:16) in
  Alcotest.(check int) "read cycles unchanged" 1892716 (Hw.Cost.total ledger);
  Alcotest.(check int) "read codec charge unchanged" 88320
    (Hw.Cost.category ledger "io-encode-aesni");
  Alcotest.(check string) "platter ciphertext unchanged"
    "336192fb6fd612bb00e8788c2f83ce93d814b1c816654d95a2734f515709b0b5"
    (hex (Fidelius_crypto.Sha256.digest (Xen.Vdisk.peek disk ~sector:0 ~count:32)));
  Alcotest.(check string) "decoded read-back unchanged"
    "6738eee8048c39a92b801d999b4c1811fdf07f1c64925fe360d752715675ccab"
    (hex (Fidelius_crypto.Sha256.digest rd))

let test_sev_io_needs_protection () =
  let _, hv, fid = installed () in
  let plain_dom = Hv.create_domain hv ~name:"plain" ~memory_pages:4 in
  Alcotest.(check bool) "unprotected domain refused" true
    (Result.is_error (Fid.setup_sev_io fid plain_dom ~md_gvfn:10))

(* --- sharing ------------------------------------------------------------------------------ *)

let test_sharing_flow () =
  let ((m, hv, fid) as env) = installed () in
  ignore m;
  ignore hv;
  let a, _ = protected_vm env "alice" in
  let b, _ = protected_vm env "bob" in
  let sh = ok (Fid.share fid ~owner:a ~peer:b ~owner_gvfn:40 ~peer_gvfn:41 ~writable:true) in
  Core.Sharing.owner_write fid a sh ~off:0 (Bytes.of_string "hi bob");
  Alcotest.(check string) "peer reads" "hi bob"
    (Bytes.to_string (Core.Sharing.peer_read fid b sh ~off:0 ~len:6));
  Core.Sharing.peer_write fid b sh ~off:100 (Bytes.of_string "hi alice");
  Alcotest.(check string) "owner reads reply" "hi alice"
    (Bytes.to_string (Core.Sharing.peer_read fid b sh ~off:100 ~len:8));
  ok (Fid.unshare fid ~owner:a sh);
  Alcotest.(check bool) "GIT intent revoked" true
    (Result.is_error
       (Git.check fid.Core.Ctx.git ~initiator:a.Domain.domid ~target:b.Domain.domid
          ~gfn:sh.Core.Sharing.owner_gfn ~writable:true));
  (* The peer's nested mapping died with the grant: a further access
     demand-faults onto a fresh zero page — the owner's data is gone. *)
  let got = Core.Sharing.peer_read fid b sh ~off:0 ~len:6 in
  Alcotest.(check bool) "peer no longer sees owner data" false
    (Bytes.to_string got = "hi bob");
  Alcotest.(check bool) "demand-zero page" true
    (Bytes.for_all (fun c -> c = '\000') got);
  (* The owner keeps its own page. *)
  Core.Sharing.owner_write fid a sh ~off:0 (Bytes.of_string "mine")

let test_share_range () =
  let ((m, _, fid) as env) = installed () in
  ignore m;
  let a, _ = protected_vm env "alice" in
  let b, _ = protected_vm env "bob" in
  let shares =
    ok (Fid.share_range fid ~owner:a ~peer:b ~owner_gvfn:60 ~peer_gvfn:70 ~nr:3 ~writable:true)
  in
  Alcotest.(check int) "three pages" 3 (List.length shares);
  (* Each page is independently usable under the one declared intent. *)
  List.iteri
    (fun i sh ->
      let msg = Printf.sprintf "page-%d" i in
      Core.Sharing.owner_write fid a sh ~off:0 (Bytes.of_string msg);
      Alcotest.(check string) msg msg
        (Bytes.to_string (Core.Sharing.peer_read fid b sh ~off:0 ~len:(String.length msg))))
    shares;
  (* A grant just past the declared range is denied. *)
  let last = List.nth shares 2 in
  let beyond = last.Core.Sharing.owner_gfn + 1 in
  Alcotest.(check bool) "past-range grant denied" true
    (Result.is_error
       (fid.Core.Ctx.hv.Hv.med.Hv.grant_update 14
          (Some
             { Xen.Granttab.owner = a.Domain.domid;
               target = b.Domain.domid;
               gfn = beyond;
               writable = true;
               in_use = true })))

let test_sharing_requires_intent () =
  let ((_, hv, _fid) as env) = installed () in
  let a, _ = protected_vm env "alice" in
  let b, _ = protected_vm env "bob" in
  (* Grant without pre_sharing: the GIT denies it. *)
  let gfn = Domain.alloc_gfn a in
  Domain.guest_map a ~gvfn:45 ~gfn ~writable:true ~executable:false ~c_bit:false;
  Hv.in_guest hv a (fun () ->
      Domain.write hv.Hv.machine a ~addr:(Hw.Addr.addr_of 45 0) (Bytes.make 16 '\000'));
  Alcotest.(check bool) "undeclared grant denied" true
    (Result.is_error
       (Hv.hypercall hv a
          (Xen.Hypercall.Grant_table_op
             (Xen.Hypercall.Grant_access { target = b.Domain.domid; gfn; writable = true }))))

(* --- ballooning --------------------------------------------------------------- *)

let test_balloon_release () =
  let ((m, hv, fid) as env) = installed () in
  let dom, _ = protected_vm env "balloonist" in
  let gfn = 10 in
  let frame =
    match Hw.Pagetable.lookup dom.Domain.npt gfn with
    | Some npte -> npte.Hw.Pagetable.frame
    | None -> Alcotest.fail "gfn unbacked"
  in
  Hv.in_guest hv dom (fun () ->
      Domain.write m dom ~addr:(Hw.Addr.addr_of gfn 0) (Bytes.of_string "residue"));
  let free_before = Hw.Machine.frames_free m in
  (match Hv.hypercall hv dom (Xen.Hypercall.Balloon_release { gfn }) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "frame returned to pool" (free_before + 1) (Hw.Machine.frames_free m);
  Alcotest.(check bool) "mapping gone" true (Hw.Pagetable.lookup dom.Domain.npt gfn = None);
  Alcotest.(check bool) "PIT freed" true
    ((Pit.get fid.Core.Ctx.pit frame).Pit.usage = Pit.Free);
  Alcotest.(check string) "scrubbed" "\000\000\000"
    (Bytes.to_string (Hw.Physmem.read_raw m.Hw.Machine.mem frame ~off:0 ~len:3));
  (* The guest can no longer touch the released page... *)
  Alcotest.(check bool) "double release fails" true
    (Result.is_error (Hv.hypercall hv dom (Xen.Hypercall.Balloon_release { gfn })));
  (* ...while the hypervisor's unilateral reclaim is still denied. *)
  Alcotest.(check bool) "unilateral reclaim still denied" true
    (Result.is_error (hv.Hv.med.Hv.npt_update dom 11 None))

let test_balloon_unbacked () =
  let ((_, hv, _) as env) = installed () in
  let dom, _ = protected_vm env "balloonist" in
  Alcotest.(check bool) "unbacked gfn" true
    (Result.is_error (Hv.hypercall hv dom (Xen.Hypercall.Balloon_release { gfn = 9999 })))

(* --- attestation ---------------------------------------------------------------- *)

let test_attestation_flow () =
  let ((_, hv, fid) as env) = installed () in
  let dom, _ = protected_vm env "attested" in
  let akey = Sev.Firmware.attestation_key hv.Hv.fw in
  let expected = Core.Iso.measure_xen_text hv in
  let q = Core.Attest.quote fid ~guest:dom ~nonce:42L () in
  Alcotest.(check bool) "verifies" true
    (Result.is_ok (Core.Attest.verify ~attestation_key:akey
                     ~expected_xen_measurement:expected ~nonce:42L q));
  (* Serialization roundtrip across the untrusted channel. *)
  (match Core.Attest.deserialize (Core.Attest.serialize q) with
  | Some q' ->
      Alcotest.(check bool) "wire roundtrip verifies" true
        (Result.is_ok (Core.Attest.verify ~attestation_key:akey
                         ~expected_xen_measurement:expected ~nonce:42L q'))
  | None -> Alcotest.fail "deserialize");
  (* Wrong nonce = replay. *)
  Alcotest.(check bool) "replayed quote rejected" true
    (Result.is_error (Core.Attest.verify ~attestation_key:akey
                        ~expected_xen_measurement:expected ~nonce:43L q));
  (* Forged measurement breaks the MAC. *)
  let forged = { q with Core.Attest.xen_measurement = Bytes.make 32 'x' } in
  Alcotest.(check bool) "forged measurement rejected" true
    (Result.is_error (Core.Attest.verify ~attestation_key:akey
                        ~expected_xen_measurement:(Bytes.make 32 'x') ~nonce:42L forged));
  (* A different platform cannot produce quotes under this key. *)
  let m2 = Hw.Machine.create ~seed:71L () in
  let fid2 = Fid.install (Hv.boot m2) in
  let alien = Core.Attest.quote fid2 ~nonce:42L () in
  Alcotest.(check bool) "alien platform rejected" true
    (Result.is_error (Core.Attest.verify ~attestation_key:akey
                        ~expected_xen_measurement:alien.Core.Attest.xen_measurement
                        ~nonce:42L alien))

let test_attestation_detects_modified_hypervisor () =
  (* A platform whose hypervisor text was modified before late launch
     measures differently; a verifier pinning the known-good hash notices. *)
  let m1 = Hw.Machine.create ~seed:61L () in
  let hv1 = Hv.boot m1 in
  let good = Core.Iso.measure_xen_text hv1 in
  let m2 = Hw.Machine.create ~seed:61L () in
  let hv2 = Hv.boot m2 in
  (* "Patch" one byte of hypervisor text before Fidelius is installed. *)
  Hw.Physmem.write_raw m2.Hw.Machine.mem (List.hd hv2.Hv.xen_text) ~off:0
    (Bytes.of_string "\x90");
  let fid2 = Fid.install hv2 in
  let q = Core.Attest.quote fid2 ~nonce:7L () in
  Alcotest.(check bool) "modified build flagged" true
    (Result.is_error
       (Core.Attest.verify ~attestation_key:(Sev.Firmware.attestation_key hv2.Hv.fw)
          ~expected_xen_measurement:good ~nonce:7L q))

(* --- xl toolstack ------------------------------------------------------------- *)

let test_xl_unprotected () =
  let _, hv, _ = installed () in
  let cfg =
    { (Core.Xl.default ~name:"plain") with
      Core.Xl.disk =
        Some { Core.Xl.contents = Bytes.make 2048 'p'; codec = Core.Xl.Plain_io; buffer_gvfn = 100 } }
  in
  let built = ok (Core.Xl.create hv cfg) in
  (match built.Core.Xl.frontend with
  | Some fe ->
      let b = ok (Xen.Blkif.read_sectors fe ~sector:0 ~count:2) in
      Alcotest.(check bool) "plain disk readable" true (Bytes.for_all (fun c -> c = 'p') b)
  | None -> Alcotest.fail "no frontend");
  Core.Xl.destroy hv built;
  Alcotest.(check bool) "destroyed" true
    (Hv.find_domain hv built.Core.Xl.domain.Domain.domid = None)

let test_xl_protected_aesni () =
  let _, hv, fid = installed () in
  let contents = Bytes.init 4096 (fun i -> Char.chr (i land 0xff)) in
  let cfg =
    { (Core.Xl.default ~name:"tenant") with
      Core.Xl.protection = Core.Xl.Protected fid;
      disk = Some { Core.Xl.contents; codec = Core.Xl.Aes_ni_io; buffer_gvfn = 100 } }
  in
  let built = ok (Core.Xl.create hv cfg) in
  Alcotest.(check bool) "protected" true
    (Fid.is_protected fid built.Core.Xl.domain.Domain.domid);
  (match built.Core.Xl.frontend with
  | Some fe ->
      let b = ok (Xen.Blkif.read_sectors fe ~sector:0 ~count:8) in
      Alcotest.(check bool) "owner image mounts" true (Bytes.equal b contents)
  | None -> Alcotest.fail "no frontend");
  Core.Xl.destroy hv built;
  Alcotest.(check bool) "shutdown clears protection" false
    (Fid.is_protected fid built.Core.Xl.domain.Domain.domid)

let test_xl_gek_disk () =
  let _, hv, fid = installed () in
  let contents = Bytes.make 1024 'g' in
  let cfg =
    { (Core.Xl.default ~name:"gek-tenant") with
      Core.Xl.protection = Core.Xl.Protected fid;
      disk = Some { Core.Xl.contents; codec = Core.Xl.Gek_io; buffer_gvfn = 100 } }
  in
  let built = ok (Core.Xl.create hv cfg) in
  (match built.Core.Xl.frontend with
  | Some fe ->
      let b = ok (Xen.Blkif.read_sectors fe ~sector:0 ~count:2) in
      Alcotest.(check bool) "gek disk roundtrip" true (Bytes.for_all (fun c -> c = 'g') b)
  | None -> Alcotest.fail "no frontend");
  Core.Xl.destroy hv built

let test_xl_codec_needs_protection () =
  let _, hv, _ = installed () in
  let cfg =
    { (Core.Xl.default ~name:"bad") with
      Core.Xl.disk =
        Some { Core.Xl.contents = Bytes.create 512; codec = Core.Xl.Aes_ni_io; buffer_gvfn = 100 } }
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Core.Xl.create hv cfg));
  Alcotest.(check bool) "rolled back" true
    (List.for_all (fun (d : Domain.t) -> d.Domain.name <> "bad") hv.Hv.domains)

(* --- stateful isolation property --------------------------------------------- *)

(* Whatever sequence of mediated operations a malicious hypervisor issues,
   the isolation invariants must hold afterwards. *)
let isolation_invariants (m, hv, fid) victim =
  let host = hv.Hv.host_space in
  (* 1. no hypervisor mapping *targets* a protected-guest private frame *)
  List.iter
    (fun pfn ->
      let info = Pit.get fid.Core.Ctx.pit pfn in
      if info.Pit.usage = Pit.Guest_page then
        if Hw.Pagetable.frame_mapped host pfn <> [] then
          Alcotest.fail (Printf.sprintf "host maps protected frame 0x%x" pfn))
    victim.Domain.frames;
  (* 2. W^X everywhere in the host space *)
  List.iter
    (fun (vfn, (p : Hw.Pagetable.proto)) ->
      if p.Hw.Pagetable.writable && p.Hw.Pagetable.executable then
        Alcotest.fail (Printf.sprintf "host W+X mapping at vfn 0x%x" vfn))
    (Hw.Pagetable.mapped_frames host);
  (* 3. no writable host mapping targets a page-table-page or the grant table *)
  List.iter
    (fun pfn ->
      if
        List.exists
          (fun (_, (p : Hw.Pagetable.proto)) -> p.Hw.Pagetable.writable)
          (Hw.Pagetable.frame_mapped host pfn)
      then Alcotest.fail (Printf.sprintf "PT/grant frame 0x%x writable" pfn))
    (Hw.Pagetable.backing_frames host
    @ Hw.Pagetable.backing_frames victim.Domain.npt
    @ Xen.Granttab.backing_frames hv.Hv.granttab);
  (* 4. victim NPT maps only frames the PIT assigns to it *)
  List.iter
    (fun (_, (p : Hw.Pagetable.proto)) ->
      match (Pit.get fid.Core.Ctx.pit p.Hw.Pagetable.frame).Pit.owner with
      | Pit.Dom d when d = victim.Domain.domid -> ()
      | owner ->
          Alcotest.fail
            (Printf.sprintf "victim NPT maps frame 0x%x owned by %s" p.Hw.Pagetable.frame
               (Pit.owner_to_string owner)))
    (Hw.Pagetable.mapped_frames victim.Domain.npt);
  (* 5. CPU protection bits survived *)
  Alcotest.(check bool) "WP" true (Hw.Cpu.wp m.Hw.Machine.cpu);
  Alcotest.(check bool) "SMEP" true (Hw.Cpu.smep m.Hw.Machine.cpu);
  Alcotest.(check bool) "NXE" true (Hw.Cpu.nxe m.Hw.Machine.cpu)

let test_isolation_survives_random_ops =
  QCheck.Test.make ~name:"isolation invariants survive random mediated op sequences" ~count:15
    QCheck.int64
    (fun seed ->
      let env = installed () in
      let m, hv, _ = env in
      let victim, _ = protected_vm env "victim" in
      let evil = Hv.create_domain hv ~name:"evil" ~memory_pages:4 in
      let rng = Fidelius_crypto.Rng.create seed in
      let rand_frame () =
        match Fidelius_crypto.Rng.int rng 3 with
        | 0 -> List.nth victim.Domain.frames (Fidelius_crypto.Rng.int rng (List.length victim.Domain.frames))
        | 1 -> List.hd (Hw.Pagetable.backing_frames hv.Hv.host_space)
        | _ -> 1 + Fidelius_crypto.Rng.int rng 4000
      in
      let rand_proto () =
        Some
          { Hw.Pagetable.frame = rand_frame ();
            writable = Fidelius_crypto.Rng.int rng 2 = 0;
            executable = Fidelius_crypto.Rng.int rng 2 = 0;
            c_bit = Fidelius_crypto.Rng.int rng 2 = 0 }
      in
      for _ = 1 to 40 do
        (* A hypervisor that faults itself (e.g. after unmapping its own
           structures) is a self-DoS, out of the threat model: absorb it. *)
        try
          match Fidelius_crypto.Rng.int rng 7 with
        | 0 ->
            ignore (hv.Hv.med.Hv.host_map_update (rand_frame ())
                      (if Fidelius_crypto.Rng.int rng 4 = 0 then None else rand_proto ()))
        | 1 ->
            let dom = if Fidelius_crypto.Rng.int rng 2 = 0 then victim else evil in
            ignore (hv.Hv.med.Hv.npt_update dom (Fidelius_crypto.Rng.int rng 64)
                      (if Fidelius_crypto.Rng.int rng 4 = 0 then None else rand_proto ()))
        | 2 ->
            let entry =
              { Xen.Granttab.owner = victim.Domain.domid;
                target = Fidelius_crypto.Rng.int rng 4;
                gfn = Fidelius_crypto.Rng.int rng 32;
                writable = Fidelius_crypto.Rng.int rng 2 = 0;
                in_use = true }
            in
            ignore (hv.Hv.med.Hv.grant_update (Fidelius_crypto.Rng.int rng 16)
                      (if Fidelius_crypto.Rng.int rng 3 = 0 then None else Some entry))
        | 3 ->
            let ops = [| Hw.Insn.Mov_cr0; Hw.Insn.Mov_cr4; Hw.Insn.Wrmsr; Hw.Insn.Mov_cr3 |] in
            ignore
              (Hw.Insn.execute m.Hw.Machine.insns
                 ~exec_ok:(Hw.Mmu.exec_ok m hv.Hv.host_space)
                 ops.(Fidelius_crypto.Rng.int rng 4)
                 (Fidelius_crypto.Rng.next64 rng))
        | 4 -> ignore (Hv.hypercall hv evil Xen.Hypercall.Void)
        | 5 ->
            (* vmexit, random VMCB scribble, attempt re-entry, then repair *)
            Hv.vmexit hv victim Hw.Vmcb.Hlt ~info1:0L ~info2:0L;
            let field = List.nth Hw.Vmcb.fields (Fidelius_crypto.Rng.int rng 15) in
            let old = Hw.Vmcb.get victim.Domain.vmcb field in
            Hw.Vmcb.set victim.Domain.vmcb field (Fidelius_crypto.Rng.next64 rng);
            (match Hv.vmrun hv victim with
            | Ok () -> ()
            | Error _ ->
                Hw.Vmcb.set victim.Domain.vmcb field old;
                ignore (Hv.vmrun hv victim))
          | _ ->
              ignore
                (Hw.Machine.dma_write m (rand_frame ()) ~off:0
                   (Bytes.make 8 (Char.chr (Fidelius_crypto.Rng.int rng 256))))
        with Hw.Mmu.Fault _ | Hv.Npf_unresolved _ -> ()
      done;
      isolation_invariants env victim;
      true)

(* --- migration ------------------------------------------------------------------------------ *)

let second_machine ?(seed = 71L) () =
  let m2 = Hw.Machine.create ~seed () in
  let hv2 = Hv.boot m2 in
  let fid2 = Fid.install hv2 in
  (m2, hv2, fid2)

let test_migration_roundtrip () =
  let ((m1, hv1, fid1) as env) = installed () in
  ignore m1;
  let dom, _ = protected_vm env "traveller" in
  (* Put a runtime secret in memory beyond the kernel image. *)
  Hv.in_guest hv1 dom (fun () ->
      Domain.write hv1.Hv.machine dom ~addr:0x6000 (Bytes.of_string "runtime state"));
  let m2, hv2, fid2 = second_machine () in
  let dom' = ok (Fid.migrate ~src:fid1 ~dst:fid2 dom) in
  Alcotest.(check bool) "source destroyed" true (Hv.find_domain hv1 dom.Domain.domid = None);
  let b = Hv.in_guest hv2 dom' (fun () -> Domain.read m2 dom' ~addr:0x6000 ~len:13) in
  Alcotest.(check string) "runtime state survives" "runtime state" (Bytes.to_string b);
  let k = Hv.in_guest hv2 dom' (fun () -> Domain.read m2 dom' ~addr:0x1000 ~len:4) in
  Alcotest.(check string) "kernel survives" "BBBB" (Bytes.to_string k);
  Alcotest.(check bool) "protected on target" true (Fid.is_protected fid2 dom'.Domain.domid)

let test_migration_tampered_snapshot () =
  let ((_, _, fid1) as env) = installed () in
  let dom, _ = protected_vm env "traveller" in
  let _, _, fid2 = second_machine () in
  let target_public = Fid.platform_key fid2 in
  let snap =
    ok (Result.map_error Core.Migrate.error_to_string (Core.Migrate.send fid1 dom ~target_public))
  in
  let tampered =
    { snap with
      Core.Migrate.image =
        { snap.Core.Migrate.image with
          Sev.Transport.pages =
            List.map
              (fun (i, c) ->
                let c = Bytes.copy c in
                Bytes.set c 7 (Char.chr (Char.code (Bytes.get c 7) lxor 2));
                (i, c))
              snap.Core.Migrate.image.Sev.Transport.pages } }
  in
  (* The refusal must carry the platform's verdict, not a generic error:
     the measurement check is what caught the tampering. *)
  Alcotest.(check bool) "tampered snapshot refused as Rejected" true
    (match Core.Migrate.receive fid2 tampered with
    | Error (Core.Migrate.Rejected _) -> true
    | _ -> false)

let test_migration_wrong_target () =
  let ((_, _, fid1) as env) = installed () in
  let dom, _ = protected_vm env "traveller" in
  let _, _, fid2 = second_machine () in
  let _, _, fid3 = second_machine ~seed:72L () in
  (* Snapshot aimed at machine 2 cannot be received by machine 3. *)
  let snap =
    ok
      (Result.map_error Core.Migrate.error_to_string
         (Core.Migrate.send fid1 dom ~target_public:(Fid.platform_key fid2)))
  in
  Alcotest.(check bool) "wrong target refused as Rejected" true
    (match Core.Migrate.receive fid3 snap with
    | Error (Core.Migrate.Rejected _) -> true
    | _ -> false)

let test_migration_preserves_arbitrary_state =
  QCheck.Test.make ~name:"migration preserves arbitrary guest memory" ~count:5
    (QCheck.list_of_size (QCheck.Gen.int_range 1 4)
       (QCheck.pair (QCheck.int_bound 9) (QCheck.string_of_size (QCheck.Gen.int_range 1 64))))
    (fun writes ->
      let ((m1, hv1, fid1) as env) = installed () in
      ignore m1;
      let dom, _ = protected_vm env "prop-traveller" in
      (* Scatter random payloads across the guest's pages (distinct pages to
         avoid self-overwrites confusing the check). *)
      let writes =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) writes
      in
      List.iter
        (fun (page, payload) ->
          Hv.in_guest hv1 dom (fun () ->
              Domain.write hv1.Hv.machine dom
                ~addr:(Hw.Addr.addr_of (4 + page) 0)
                (Bytes.of_string payload)))
        writes;
      let m2, hv2, fid2 = second_machine ~seed:(Int64.of_int (Hashtbl.hash writes)) () in
      ignore m2;
      match Core.Migrate.migrate ~src:fid1 ~dst:fid2 dom with
      | Error _ -> false
      | Ok dom' ->
          List.for_all
            (fun (page, payload) ->
              let got =
                Hv.in_guest hv2 dom' (fun () ->
                    Domain.read hv2.Hv.machine dom'
                      ~addr:(Hw.Addr.addr_of (4 + page) 0)
                      ~len:(String.length payload))
              in
              Bytes.to_string got = payload)
            writes)

let test_migration_requires_protection () =
  let _, hv, fid = installed () in
  let plain = Hv.create_domain hv ~name:"plain" ~memory_pages:4 in
  let _, _, fid2 = second_machine () in
  Alcotest.(check bool) "unprotected refused" true
    (Result.is_error (Fid.migrate ~src:fid ~dst:fid2 plain))

let prop t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "core"
    [ ( "install",
        [ Alcotest.test_case "Table 1 permissions" `Quick test_table1_permissions;
          Alcotest.test_case "Table 2 instructions" `Quick test_table2_instructions;
          Alcotest.test_case "measurement" `Quick test_measurement_recorded ] );
      ( "pit",
        [ prop test_pit_roundtrip;
          Alcotest.test_case "default free" `Quick test_pit_default_free;
          Alcotest.test_case "multiple entries" `Quick test_pit_multiple_entries;
          Alcotest.test_case "radix growth" `Quick test_pit_radix_growth ] );
      ( "git",
        [ Alcotest.test_case "record/check" `Quick test_git_record_check;
          Alcotest.test_case "writable intent" `Quick test_git_writable_intent;
          Alcotest.test_case "revoke" `Quick test_git_revoke;
          Alcotest.test_case "bad nr" `Quick test_git_bad_nr;
          prop test_git_property ] );
      ( "gates",
        [ Alcotest.test_case "type-1 cost and WP" `Quick test_gate1_cost_and_wp;
          Alcotest.test_case "exception safety" `Quick test_gate1_restores_on_exception;
          Alcotest.test_case "no re-entry" `Quick test_gate1_not_reentrant;
          Alcotest.test_case "type-3 window" `Quick test_gate3_mapping_window;
          Alcotest.test_case "counters" `Quick test_gate_counts ] );
      ( "shadow",
        [ Alcotest.test_case "mask and restore" `Quick test_shadow_mask_and_restore;
          Alcotest.test_case "visibility by reason" `Quick test_shadow_visible_fields_by_reason;
          Alcotest.test_case "legit updates" `Quick test_shadow_allows_legit_updates;
          Alcotest.test_case "tamper detection (all fields)" `Quick
            test_shadow_detects_every_protected_field;
          Alcotest.test_case "entry needs capture" `Quick test_shadow_rejects_entry_without_capture;
          Alcotest.test_case "backing frame" `Quick test_shadow_backing_unreadable_frame ] );
      ( "policy",
        [ Alcotest.test_case "CR bits" `Quick test_policy_cr_bits;
          Alcotest.test_case "CR3 validity" `Quick test_policy_cr3;
          Alcotest.test_case "write/exec once" `Quick test_policy_once;
          Alcotest.test_case "audit log" `Quick test_policy_audit_log;
          Alcotest.test_case "W^X" `Quick test_policy_wx ] );
      ( "lifecycle",
        [ Alcotest.test_case "protected boot" `Quick test_protected_boot;
          Alcotest.test_case "tampered image" `Quick test_boot_tampered_image_fails;
          Alcotest.test_case "wrong platform" `Quick test_boot_wrong_platform_fails;
          Alcotest.test_case "NOSEND policy" `Quick test_nosend_policy;
          Alcotest.test_case "hypercalls" `Quick test_hypercall_roundtrip_protected;
          Alcotest.test_case "cpuid under masking" `Quick test_cpuid_under_masking;
          Alcotest.test_case "msr under masking" `Quick test_msr_under_masking;
          Alcotest.test_case "shutdown cleanup" `Quick test_shutdown_cleans_up;
          Alcotest.test_case "start_info write-once" `Quick test_write_start_info_once ] );
      ( "io",
        [ Alcotest.test_case "aes-ni codec" `Quick test_aesni_codec_roundtrip;
          Alcotest.test_case "disk helpers" `Quick test_disk_encrypt_helpers;
          Alcotest.test_case "sev codec" `Quick test_sev_codec_roundtrip;
          Alcotest.test_case "software codec" `Quick test_software_codec_roundtrip;
          Alcotest.test_case "aes-ni batch-1 golden pins" `Quick test_aesni_codec_batch1_golden;
          Alcotest.test_case "needs protection" `Quick test_sev_io_needs_protection ] );
      ( "sharing",
        [ Alcotest.test_case "flow" `Quick test_sharing_flow;
          Alcotest.test_case "requires intent" `Quick test_sharing_requires_intent;
          Alcotest.test_case "multi-frame range" `Quick test_share_range ] );
      ( "balloon",
        [ Alcotest.test_case "guest-initiated release" `Quick test_balloon_release;
          Alcotest.test_case "unbacked gfn" `Quick test_balloon_unbacked ] );
      ( "attestation",
        [ Alcotest.test_case "quote/verify flow" `Quick test_attestation_flow;
          Alcotest.test_case "modified hypervisor detected" `Quick
            test_attestation_detects_modified_hypervisor ] );
      ( "xl",
        [ Alcotest.test_case "unprotected + plain disk" `Quick test_xl_unprotected;
          Alcotest.test_case "protected + aes-ni disk" `Quick test_xl_protected_aesni;
          Alcotest.test_case "gek disk" `Quick test_xl_gek_disk;
          Alcotest.test_case "codec needs protection" `Quick test_xl_codec_needs_protection ] );
      ("isolation-property", [ prop test_isolation_survives_random_ops ]);
      ( "migration",
        [ Alcotest.test_case "roundtrip" `Quick test_migration_roundtrip;
          Alcotest.test_case "tampered snapshot" `Quick test_migration_tampered_snapshot;
          Alcotest.test_case "wrong target" `Quick test_migration_wrong_target;
          Alcotest.test_case "requires protection" `Quick test_migration_requires_protection;
          prop test_migration_preserves_arbitrary_state ] ) ]
