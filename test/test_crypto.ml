(* Unit and property tests for the cryptographic substrate. *)

module Aes = Fidelius_crypto.Aes
module Modes = Fidelius_crypto.Modes
module Sha256 = Fidelius_crypto.Sha256
module Hmac = Fidelius_crypto.Hmac
module Dh = Fidelius_crypto.Dh
module Keywrap = Fidelius_crypto.Keywrap
module Rng = Fidelius_crypto.Rng

let unhex s =
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let hex = Sha256.hex

let check_hex name expected actual = Alcotest.(check string) name expected (hex actual)

(* --- AES (FIPS-197 appendix C.1 and appendix B) ------------------------- *)

let test_aes_fips_c1 () =
  let key = Aes.expand (unhex "000102030405060708090a0b0c0d0e0f") in
  let ct = Aes.encrypt_block key (unhex "00112233445566778899aabbccddeeff") in
  check_hex "FIPS C.1 ciphertext" "69c4e0d86a7b0430d8cdb78070b4c55a" ct;
  let pt = Aes.decrypt_block key ct in
  check_hex "FIPS C.1 decrypt" "00112233445566778899aabbccddeeff" pt

let test_aes_appendix_b () =
  let key = Aes.expand (unhex "2b7e151628aed2a6abf7158809cf4f3c") in
  let ct = Aes.encrypt_block key (unhex "3243f6a8885a308d313198a2e0370734") in
  check_hex "FIPS appendix B" "3925841d02dc09fbdc118597196a0b32" ct

let test_aes_wrong_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes.expand: key must be 16 bytes")
    (fun () -> ignore (Aes.expand (Bytes.create 8)));
  let key = Aes.expand (Bytes.create 16) in
  Alcotest.check_raises "short block" (Invalid_argument "Aes: block must be 16 bytes")
    (fun () -> ignore (Aes.encrypt_block key (Bytes.create 15)))

let test_aes_roundtrip_prop =
  QCheck.Test.make ~name:"aes encrypt/decrypt roundtrip" ~count:200
    (QCheck.pair (QCheck.string_of_size (QCheck.Gen.return 16))
       (QCheck.string_of_size (QCheck.Gen.return 16)))
    (fun (k, p) ->
      let key = Aes.expand (Bytes.of_string k) in
      let pt = Bytes.of_string p in
      Bytes.equal (Aes.decrypt_block key (Aes.encrypt_block key pt)) pt)

let test_aes_key_sensitivity =
  QCheck.Test.make ~name:"different keys give different ciphertext" ~count:100
    (QCheck.pair (QCheck.string_of_size (QCheck.Gen.return 16))
       (QCheck.string_of_size (QCheck.Gen.return 16)))
    (fun (k1, k2) ->
      QCheck.assume (k1 <> k2);
      let pt = Bytes.make 16 'A' in
      let c1 = Aes.encrypt_block (Aes.expand (Bytes.of_string k1)) pt in
      let c2 = Aes.encrypt_block (Aes.expand (Bytes.of_string k2)) pt in
      not (Bytes.equal c1 c2))

let test_aes_into_matches_alloc () =
  let rng = Rng.create 5L in
  let key = Aes.expand (Rng.bytes rng 16) in
  let pt = Rng.bytes rng 16 in
  let dst = Bytes.create 16 in
  Aes.encrypt_block_into key ~src:pt ~src_off:0 ~dst ~dst_off:0;
  Alcotest.(check bool) "into = alloc" true (Bytes.equal dst (Aes.encrypt_block key pt))

(* FIPS-197 Appendix A.1: key-expansion words for 2b7e1516...4f3c. Pins the
   T-table schedule to the standard, not just to ciphertext test vectors. *)
let test_aes_key_expansion_fips_a1 () =
  let key = Aes.expand (unhex "2b7e151628aed2a6abf7158809cf4f3c") in
  let w = Aes.schedule_words key in
  Alcotest.(check int) "44 words" 44 (Array.length w);
  let expect = [ (0, 0x2b7e1516); (1, 0x28aed2a6); (2, 0xabf71588); (3, 0x09cf4f3c);
                 (4, 0xa0fafe17); (5, 0x88542cb1); (6, 0x23a33939); (7, 0x2a6c7605);
                 (8, 0xf2c295f2); (20, 0xd4d1c6f8); (32, 0xead27321); (36, 0xac7766f3);
                 (40, 0xd014f9a8); (41, 0xc9ee2589); (42, 0xe13f0cc8); (43, 0xb6630ca6) ] in
  List.iter
    (fun (i, v) ->
      Alcotest.(check int) (Printf.sprintf "w[%d]" i) v w.(i))
    expect

(* FIPS-197 Appendix C.1 equivalent-inverse-cipher sanity: decrypting at an
   offset inside a larger buffer (the memory-controller usage pattern). *)
let test_aes_into_at_offset =
  QCheck.Test.make ~name:"into variants honour offsets" ~count:200
    (QCheck.triple
       (QCheck.string_of_size (QCheck.Gen.return 16))
       (QCheck.int_bound 40) (QCheck.int_bound 40))
    (fun (k, src_off, dst_off) ->
      let key = Aes.expand (Bytes.of_string k) in
      let rng = Rng.create (Int64.of_int (src_off + (64 * dst_off))) in
      let buf = Rng.bytes rng 64 in
      let enc = Bytes.make 64 '\000' in
      Aes.encrypt_block_into key ~src:buf ~src_off ~dst:enc ~dst_off;
      let dec = Bytes.make 64 '\000' in
      Aes.decrypt_block_into key ~src:enc ~src_off:dst_off ~dst:dec ~dst_off:src_off;
      Bytes.equal (Bytes.sub dec src_off 16) (Bytes.sub buf src_off 16)
      && Bytes.equal (Aes.decrypt_block key (Bytes.sub enc dst_off 16)) (Bytes.sub buf src_off 16))

let test_aes_inplace () =
  let rng = Rng.create 6L in
  let key = Aes.expand (Rng.bytes rng 16) in
  let pt = Rng.bytes rng 16 in
  let buf = Bytes.copy pt in
  Aes.encrypt_block_into key ~src:buf ~src_off:0 ~dst:buf ~dst_off:0;
  Alcotest.(check bool) "in-place = out-of-place" true
    (Bytes.equal buf (Aes.encrypt_block key pt));
  Aes.decrypt_block_into key ~src:buf ~src_off:0 ~dst:buf ~dst_off:0;
  Alcotest.(check bool) "in-place roundtrip" true (Bytes.equal buf pt)

let test_aes_bad_range () =
  let key = Aes.expand (Bytes.create 16) in
  Alcotest.check_raises "src overrun" (Invalid_argument "Aes: src range out of bounds")
    (fun () ->
      Aes.encrypt_block_into key ~src:(Bytes.create 20) ~src_off:8 ~dst:(Bytes.create 16)
        ~dst_off:0);
  Alcotest.check_raises "dst overrun" (Invalid_argument "Aes: dst range out of bounds")
    (fun () ->
      Aes.encrypt_block_into key ~src:(Bytes.create 16) ~src_off:0 ~dst:(Bytes.create 20)
        ~dst_off:8)

(* --- SHA-256 (FIPS 180-4 vectors) --------------------------------------- *)

let test_sha_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_string "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_string "abc");
  check_hex "448-bit" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_string (String.make 1_000_000 'a'))

let test_sha_streaming_equals_oneshot =
  QCheck.Test.make ~name:"streaming = one-shot for arbitrary chunking" ~count:100
    (QCheck.pair QCheck.string (QCheck.small_int))
    (fun (s, cut) ->
      let data = Bytes.of_string s in
      let n = Bytes.length data in
      let cut = if n = 0 then 0 else cut mod (n + 1) in
      let ctx = Sha256.init () in
      Sha256.feed ctx (Bytes.sub data 0 cut);
      Sha256.feed ctx (Bytes.sub data cut (n - cut));
      Bytes.equal (Sha256.finalize ctx) (Sha256.digest data))

let test_sha_backend_known () =
  Alcotest.(check bool)
    (Printf.sprintf "backend %S is a known dispatch target" Sha256.backend)
    true
    (List.mem Sha256.backend [ "sha-ni"; "c-scalar" ])

(* The accelerated backend (SHA-NI or the C scalar core) against the
   pure-OCaml executable specification, under arbitrary multi-way
   chunking across all three feed variants. This is the test that makes
   the C stub trustworthy: any divergence in the schedule recurrence,
   padding, or partial-block handling shows up here. *)
let test_sha_chunked_matches_reference =
  QCheck.Test.make ~name:"accelerated backend = OCaml reference (random chunking)" ~count:200
    (QCheck.pair QCheck.string (QCheck.list QCheck.small_nat))
    (fun (s, cuts) ->
      let data = Bytes.of_string s in
      let n = Bytes.length data in
      let ctx = Sha256.init () in
      let pos = ref 0 in
      List.iter
        (fun c ->
          let len = min c (n - !pos) in
          if len > 0 then begin
            (* Rotate through the feed variants so each sees odd offsets. *)
            (match len mod 3 with
            | 0 -> Sha256.feed ctx (Bytes.sub data !pos len)
            | 1 -> Sha256.feed_sub ctx data ~off:!pos ~len
            | _ -> Sha256.feed_string ctx (Bytes.sub_string data !pos len));
            pos := !pos + len
          end)
        cuts;
      Sha256.feed_sub ctx data ~off:!pos ~len:(n - !pos);
      let ref_digest = Sha256.digest_reference data in
      Bytes.equal (Sha256.finalize ctx) ref_digest
      && Bytes.equal (Sha256.digest data) ref_digest)

let test_sha_into_matches_alloc () =
  let rng = Rng.create 31L in
  let a = Rng.bytes rng 100 and b = Rng.bytes rng 37 in
  let dst = Bytes.make 80 '\xff' in
  Sha256.digest_into a ~dst ~dst_off:5;
  Alcotest.(check bool) "digest_into = digest" true
    (Bytes.equal (Bytes.sub dst 5 32) (Sha256.digest a));
  let ctx = Sha256.init () in
  Sha256.feed ctx a;
  Sha256.feed ctx b;
  Sha256.finalize_into ctx ~dst ~dst_off:48;
  Alcotest.(check bool) "finalize_into = digest (cat)" true
    (Bytes.equal (Bytes.sub dst 48 32) (Sha256.digest (Bytes.cat a b)));
  Alcotest.(check char) "guard byte untouched" '\xff' (Bytes.get dst 4)

let test_sha_pair_matches_cat =
  QCheck.Test.make ~name:"digest_pair a b = digest (cat a b)" ~count:100
    (QCheck.pair QCheck.string QCheck.string)
    (fun (sa, sb) ->
      let a = Bytes.of_string sa and b = Bytes.of_string sb in
      let cat = Sha256.digest (Bytes.cat a b) in
      let dst = Bytes.create 32 in
      Sha256.digest_pair_into a b ~dst ~dst_off:0;
      Bytes.equal (Sha256.digest_pair a b) cat && Bytes.equal dst cat)

let test_sha_pair_into_aliases () =
  (* The BMT verify walk hashes (walk, sibling) back into walk itself. *)
  let rng = Rng.create 33L in
  let a = Rng.bytes rng 32 and b = Rng.bytes rng 32 in
  let expect = Sha256.digest (Bytes.cat a b) in
  let walk = Bytes.copy a in
  Sha256.digest_pair_into walk b ~dst:walk ~dst_off:0;
  Alcotest.(check bool) "dst aliasing left input" true (Bytes.equal walk expect)

let test_sha_feed_u64_be =
  QCheck.Test.make ~name:"feed_u64_be = feeding 8 BE bytes" ~count:200
    (QCheck.pair QCheck.int64 QCheck.string)
    (fun (v, prefix) ->
      let eight = Bytes.create 8 in
      Bytes.set_int64_be eight 0 v;
      let d1 =
        Sha256.digest_build (fun ctx ->
            Sha256.feed_string ctx prefix;
            Sha256.feed_u64_be ctx v)
      in
      let d2 =
        Sha256.digest_build (fun ctx ->
            Sha256.feed_string ctx prefix;
            Sha256.feed ctx eight)
      in
      Bytes.equal d1 d2)

(* --- two-stream hashing -------------------------------------------------- *)

let test_sha_digest2_matches_reference =
  (* Lockstep pair = two independent reference digests, across lengths that
     exercise every staging path: empty, sub-block, the 55/56/63/64 padding
     boundaries (with and without the 8-byte prefix shift), multi-block and
     page-sized. *)
  QCheck.Test.make ~name:"digest2 = (digest_reference, digest_reference)"
    ~count:100
    (QCheck.pair QCheck.small_nat QCheck.small_nat)
    (fun (seed, pick) ->
      let sizes = [| 0; 1; 47; 48; 55; 56; 63; 64; 120; 129; 4096 |] in
      let n = sizes.(pick mod Array.length sizes) in
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let a = Rng.bytes rng n and b = Rng.bytes rng n in
      let d1, d2 = Sha256.digest2 a b in
      Bytes.equal d1 (Sha256.digest_reference a)
      && Bytes.equal d2 (Sha256.digest_reference b))

let test_sha_digest2_prefixed_matches_feed =
  QCheck.Test.make ~name:"digest2_prefixed = feed_u64_be; feed" ~count:100
    (QCheck.triple QCheck.int64 QCheck.int64 QCheck.small_nat)
    (fun (p1, p2, pick) ->
      let sizes = [| 0; 7; 48; 55; 56; 63; 64; 119; 120; 4096 |] in
      let n = sizes.(pick mod Array.length sizes) in
      let rng = Rng.create (Int64.add p1 17L) in
      let a = Rng.bytes rng n and b = Rng.bytes rng n in
      let expect prefix data =
        Sha256.digest_build (fun ctx ->
            Sha256.feed_u64_be ctx prefix;
            Sha256.feed ctx data)
      in
      let d1 = Bytes.create 32 and d2 = Bytes.create 32 in
      Sha256.digest2_prefixed_into ~prefix1:p1 a ~dst1:d1 ~dst1_off:0
        ~prefix2:p2 b ~dst2:d2 ~dst2_off:0;
      Bytes.equal d1 (expect p1 a) && Bytes.equal d2 (expect p2 b))

let test_sha_pair2_matches_pair () =
  let rng = Rng.create 37L in
  for _ = 1 to 20 do
    let a1 = Rng.bytes rng 32 and b1 = Rng.bytes rng 32 in
    let a2 = Rng.bytes rng 32 and b2 = Rng.bytes rng 32 in
    let d1 = Bytes.create 32 and d2 = Bytes.create 32 in
    Sha256.digest_pair2_into a1 b1 ~dst1:d1 ~dst1_off:0 a2 b2 ~dst2:d2
      ~dst2_off:0;
    Alcotest.(check bool) "stream 1 = digest_pair" true
      (Bytes.equal d1 (Sha256.digest_pair a1 b1));
    Alcotest.(check bool) "stream 2 = digest_pair" true
      (Bytes.equal d2 (Sha256.digest_pair a2 b2))
  done;
  (* Unequal part lengths take the sequential fallback — same digests. *)
  let a1 = Rng.bytes rng 16 and b1 = Rng.bytes rng 48 in
  let a2 = Rng.bytes rng 32 and b2 = Rng.bytes rng 32 in
  let d1 = Bytes.create 32 and d2 = Bytes.create 32 in
  Sha256.digest_pair2_into a1 b1 ~dst1:d1 ~dst1_off:0 a2 b2 ~dst2:d2
    ~dst2_off:0;
  Alcotest.(check bool) "fallback stream 1" true
    (Bytes.equal d1 (Sha256.digest_pair a1 b1));
  Alcotest.(check bool) "fallback stream 2" true
    (Bytes.equal d2 (Sha256.digest_pair a2 b2))

let test_sha_digest2_unequal_fallback () =
  let rng = Rng.create 39L in
  let a = Rng.bytes rng 100 and b = Rng.bytes rng 33 in
  let d1, d2 = Sha256.digest2 a b in
  Alcotest.(check bool) "unequal lengths stream 1" true
    (Bytes.equal d1 (Sha256.digest a));
  Alcotest.(check bool) "unequal lengths stream 2" true
    (Bytes.equal d2 (Sha256.digest b))

let test_sha_reset_reuse () =
  let rng = Rng.create 35L in
  let msgs = List.init 5 (fun i -> Rng.bytes rng (17 * (i + 1))) in
  let ctx = Sha256.init () in
  List.iter
    (fun m ->
      Sha256.reset ctx;
      Sha256.feed ctx m;
      Alcotest.(check bool) "reset context rehashes cleanly" true
        (Bytes.equal (Sha256.finalize ctx) (Sha256.digest m)))
    msgs

(* --- HMAC (RFC 4231) ----------------------------------------------------- *)

let test_hmac_rfc4231 () =
  let tag1 =
    Hmac.mac ~key:(Bytes.make 20 '\x0b') (Bytes.of_string "Hi There")
  in
  check_hex "case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" tag1;
  let tag2 =
    Hmac.mac ~key:(Bytes.of_string "Jefe") (Bytes.of_string "what do ya want for nothing?")
  in
  check_hex "case 2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" tag2;
  let tag3 = Hmac.mac ~key:(Bytes.make 20 '\xaa') (Bytes.make 50 '\xdd') in
  check_hex "case 3" "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" tag3

let test_hmac_long_key () =
  (* Keys longer than the block size are hashed down (RFC 4231 case 6). *)
  let key = Bytes.make 131 '\xaa' in
  let tag = Hmac.mac ~key (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First") in
  check_hex "case 6" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" tag

let test_hmac_verify () =
  let key = Bytes.of_string "k" in
  let data = Bytes.of_string "payload" in
  let tag = Hmac.mac ~key data in
  Alcotest.(check bool) "verifies" true (Hmac.verify ~key ~tag data);
  let bad = Bytes.copy tag in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
  Alcotest.(check bool) "tampered tag rejected" false (Hmac.verify ~key ~tag:bad data);
  Alcotest.(check bool) "wrong length rejected" false
    (Hmac.verify ~key ~tag:(Bytes.create 4) data)

(* The prepared-key fast path against the legacy one-shot entry points:
   same tags, same verdicts, for keys of every length class (short,
   block-size, longer-than-block). *)
let test_hmac_prepared_matches_oneshot =
  QCheck.Test.make ~name:"prepared key = one-shot mac/verify" ~count:200
    (QCheck.pair QCheck.string QCheck.string)
    (fun (k, d) ->
      let raw = Bytes.of_string k and data = Bytes.of_string d in
      let prepared = Hmac.key raw in
      let tag = Hmac.mac ~key:raw data in
      Bytes.equal (Hmac.mac_with prepared data) tag
      && Bytes.equal (Hmac.mac_build prepared (fun ctx -> Sha256.feed ctx data)) tag
      && Hmac.verify_with prepared ~tag data
      && Hmac.verify_build prepared (fun ctx -> Sha256.feed ctx data) ~tag ~tag_off:0)

let test_hmac_build_into_in_place () =
  (* The secure-channel record shape: message and tag share one buffer. *)
  let key = Hmac.key (Bytes.of_string "record key") in
  let record = Bytes.make 52 '\000' in
  Bytes.blit_string "some sealed payload!" 0 record 0 20;
  Hmac.mac_build_into key (fun ctx -> Sha256.feed_sub ctx record ~off:0 ~len:20)
    ~dst:record ~dst_off:20;
  let expect = Hmac.mac_with key (Bytes.sub record 0 20) in
  Alcotest.(check bool) "in-place tag = sliced mac" true
    (Bytes.equal (Bytes.sub record 20 32) expect);
  Alcotest.(check bool) "verify_build in place" true
    (Hmac.verify_build key (fun ctx -> Sha256.feed_sub ctx record ~off:0 ~len:20)
       ~tag:record ~tag_off:20);
  Bytes.set record 3 'X';
  Alcotest.(check bool) "tampered message rejected" false
    (Hmac.verify_build key (fun ctx -> Sha256.feed_sub ctx record ~off:0 ~len:20)
       ~tag:record ~tag_off:20);
  Alcotest.(check bool) "tag range off the end rejected" false
    (Hmac.verify_build key (fun ctx -> Sha256.feed_sub ctx record ~off:0 ~len:20)
       ~tag:record ~tag_off:40)

let test_hmac_distinct_keys =
  QCheck.Test.make ~name:"hmac differs under different keys" ~count:100
    (QCheck.pair QCheck.string QCheck.string)
    (fun (k1, k2) ->
      QCheck.assume (k1 <> k2);
      let d = Bytes.of_string "same data" in
      not (Bytes.equal (Hmac.mac ~key:(Bytes.of_string k1) d) (Hmac.mac ~key:(Bytes.of_string k2) d)))

(* --- Modes --------------------------------------------------------------- *)

let sized_string n = QCheck.string_of_size (QCheck.Gen.return n)

let test_ecb_roundtrip =
  QCheck.Test.make ~name:"ECB roundtrip (multiple of 16)" ~count:100
    (QCheck.pair (sized_string 16) (sized_string 64))
    (fun (k, p) ->
      let key = Aes.expand (Bytes.of_string k) in
      let pt = Bytes.of_string p in
      Bytes.equal (Modes.ecb_decrypt key (Modes.ecb_encrypt key pt)) pt)

let test_ctr_involution =
  QCheck.Test.make ~name:"CTR transform is an involution (any length)" ~count:100
    (QCheck.pair (sized_string 16) QCheck.string)
    (fun (k, p) ->
      let key = Aes.expand (Bytes.of_string k) in
      let pt = Bytes.of_string p in
      Bytes.equal (Modes.ctr_transform key ~nonce:42L (Modes.ctr_transform key ~nonce:42L pt)) pt)

let test_ctr_nonce_matters () =
  let key = Aes.expand (Bytes.make 16 'k') in
  let pt = Bytes.make 32 'p' in
  let c1 = Modes.ctr_transform key ~nonce:1L pt in
  let c2 = Modes.ctr_transform key ~nonce:2L pt in
  Alcotest.(check bool) "different nonces differ" false (Bytes.equal c1 c2)

let test_xex_roundtrip =
  QCheck.Test.make ~name:"XEX roundtrip" ~count:100
    (QCheck.triple (sized_string 16) (sized_string 48) QCheck.int64)
    (fun (k, p, tweak) ->
      let key = Aes.expand (Bytes.of_string k) in
      let pt = Bytes.of_string p in
      Bytes.equal (Modes.xex_decrypt key ~tweak (Modes.xex_encrypt key ~tweak pt)) pt)

let test_xex_relocation_garbles () =
  let key = Aes.expand (Bytes.make 16 'x') in
  let pt = Bytes.of_string "sixteen byte msg" in
  let ct = Modes.xex_encrypt key ~tweak:0x1000L pt in
  let moved = Modes.xex_decrypt key ~tweak:0x2000L ct in
  Alcotest.(check bool) "moved ciphertext decrypts to garbage" false (Bytes.equal moved pt)

let test_xex_bad_length () =
  let key = Aes.expand (Bytes.make 16 'x') in
  Alcotest.check_raises "odd length rejected"
    (Invalid_argument "Modes.xex_encrypt: length must be a multiple of 16") (fun () ->
      ignore (Modes.xex_encrypt key ~tweak:0L (Bytes.create 17)))

let test_cbc_mac () =
  let key = Aes.expand (Bytes.make 16 'm') in
  let t1 = Modes.cbc_mac key (Bytes.of_string "hello") in
  let t2 = Modes.cbc_mac key (Bytes.of_string "hello") in
  let t3 = Modes.cbc_mac key (Bytes.of_string "hellp") in
  Alcotest.(check bool) "deterministic" true (Bytes.equal t1 t2);
  Alcotest.(check bool) "input-sensitive" false (Bytes.equal t1 t3);
  Alcotest.(check int) "tag is one block" 16 (Bytes.length (Modes.cbc_mac key (Bytes.create 0)))

let test_cbc_mac_zero_pad_equiv =
  QCheck.Test.make ~name:"CBC-MAC of data = MAC of zero-padded data" ~count:100
    QCheck.string
    (fun s ->
      QCheck.assume (String.length s > 0);
      let key = Aes.expand (Bytes.make 16 'm') in
      let data = Bytes.of_string s in
      let n = Bytes.length data in
      let padded = Bytes.make ((n + 15) / 16 * 16) '\000' in
      Bytes.blit data 0 padded 0 n;
      Bytes.equal (Modes.cbc_mac key data) (Modes.cbc_mac key padded))

(* Span calls must be bit-identical to a loop of per-block xex_*_into calls
   with tweak_i = tweak0 + i * tweak_step -- this is the equivalence the
   memory controller relies on when it hands whole spans to the crypto layer. *)
let test_xex_span_equals_blocks =
  QCheck.Test.make ~name:"XEX span = per-block loop (random len/offset/step)" ~count:200
    (QCheck.quad
       (QCheck.string_of_size (QCheck.Gen.return 16))
       (QCheck.int_bound 15) (QCheck.int_bound 31) QCheck.int64)
    (fun (k, nblocks, off, tweak0) ->
      let nblocks = nblocks + 1 in
      let len = nblocks * 16 in
      let key = Aes.expand (Bytes.of_string k) in
      let tweak_step = 16L in
      let rng = Rng.create (Int64.add tweak0 (Int64.of_int off)) in
      let src = Rng.bytes rng (off + len + 7) in
      let span = Bytes.make (Bytes.length src) '\000' in
      Modes.xex_encrypt_span key ~tweak0 ~tweak_step ~src ~src_off:off ~dst:span ~dst_off:off
        ~len;
      let manual = Bytes.copy src in
      for b = 0 to nblocks - 1 do
        let tweak = Int64.add tweak0 (Int64.mul tweak_step (Int64.of_int b)) in
        Modes.xex_encrypt_into key ~tweak ~src ~src_off:(off + (16 * b)) ~dst:manual
          ~dst_off:(off + (16 * b)) ~len:16
      done;
      Bytes.equal (Bytes.sub span off len) (Bytes.sub manual off len)
      &&
      (* and the decrypt span inverts it in place *)
      let back = Bytes.copy span in
      Modes.xex_decrypt_span key ~tweak0 ~tweak_step ~src:back ~src_off:off ~dst:back
        ~dst_off:off ~len;
      Bytes.equal (Bytes.sub back off len) (Bytes.sub src off len))

let test_xex_span_step_one_matches_into =
  QCheck.Test.make ~name:"XEX span with step 1 = xex_*_into" ~count:100
    (QCheck.pair (QCheck.string_of_size (QCheck.Gen.return 16)) QCheck.int64)
    (fun (k, tweak) ->
      let key = Aes.expand (Bytes.of_string k) in
      let rng = Rng.create tweak in
      let src = Rng.bytes rng 64 in
      let a = Bytes.make 64 '\000' and b = Bytes.make 64 '\000' in
      Modes.xex_encrypt_span key ~tweak0:tweak ~tweak_step:1L ~src ~src_off:0 ~dst:a
        ~dst_off:0 ~len:64;
      Modes.xex_encrypt_into key ~tweak ~src ~src_off:0 ~dst:b ~dst_off:0 ~len:64;
      Bytes.equal a b)

let test_ctr_random_lengths =
  QCheck.Test.make ~name:"CTR roundtrip over random lengths" ~count:100
    (QCheck.pair (QCheck.string_of_size QCheck.Gen.small_nat) QCheck.int64)
    (fun (p, nonce) ->
      let key = Aes.expand (Bytes.make 16 'c') in
      let pt = Bytes.of_string p in
      Bytes.equal (Modes.ctr_transform key ~nonce (Modes.ctr_transform key ~nonce pt)) pt)

let golden_key () = Aes.expand (unhex "000102030405060708090a0b0c0d0e0f")

let golden_page () = Bytes.init 4096 (fun i -> Char.chr ((i * 7 + 3) land 0xff))

(* --- AES backend dispatch ------------------------------------------------ *)

(* The C backends (VAES / AES-NI / portable C) against the OCaml executable
   specification. Every tier this CPU can run is forced in turn and checked
   for byte-identical output; the selection is restored to auto afterwards.
   This is what makes the hardware path trustworthy: tweak-stride
   arithmetic, pipelining tails, partial CTR blocks and the equivalent
   inverse cipher all diverge here if the stubs are wrong. *)

let backend_tiers =
  let tiers =
    List.filter
      (fun (_, t) -> Aes.set_backend t)
      [ ("vaes", `Vaes); ("aes-ni", `Aesni); ("c-portable", `Portable) ]
  in
  ignore (Aes.set_backend `Auto);
  tiers

let with_tier tier f =
  ignore (Aes.set_backend tier);
  Fun.protect ~finally:(fun () -> ignore (Aes.set_backend `Auto)) f

let for_all_tiers f =
  List.for_all (fun (name, tier) -> with_tier tier (fun () -> f name)) backend_tiers

let test_aes_backend_known () =
  Alcotest.(check bool)
    (Printf.sprintf "backend %S is a known dispatch target" (Aes.backend ()))
    true
    (List.mem (Aes.backend ()) [ "vaes"; "aes-ni"; "c-portable" ]);
  (* The portable tier exists everywhere, so the sweep below is never empty. *)
  Alcotest.(check bool) "portable tier always available" true
    (List.mem_assoc "c-portable" backend_tiers)

(* The C key expansion (aeskeygenassist on hardware tiers) must serialize to
   exactly the OCaml ek schedule; the dk half is exercised by every decrypt
   equivalence test below. *)
let test_schedule_bytes_match_reference =
  QCheck.Test.make ~name:"C key schedule = OCaml ek words" ~count:100
    (sized_string 16)
    (fun k ->
      let key = Aes.expand (Bytes.of_string k) in
      let rk = Aes.schedule_bytes key in
      let w = Aes.schedule_words key in
      Bytes.length rk = 352
      && Array.for_all
           (fun i -> Int32.to_int (Bytes.get_int32_be rk (4 * i)) land 0xFFFFFFFF = w.(i))
           (Array.init 44 Fun.id))

let test_backend_fips_kats () =
  List.iter
    (fun (name, tier) ->
      with_tier tier (fun () ->
          let key = Aes.expand (unhex "000102030405060708090a0b0c0d0e0f") in
          let ct = Aes.encrypt_block key (unhex "00112233445566778899aabbccddeeff") in
          check_hex (name ^ ": FIPS C.1") "69c4e0d86a7b0430d8cdb78070b4c55a" ct;
          Alcotest.(check bool) (name ^ ": FIPS C.1 decrypt") true
            (Bytes.equal (Aes.decrypt_block key ct)
               (unhex "00112233445566778899aabbccddeeff"));
          let key = Aes.expand (unhex "2b7e151628aed2a6abf7158809cf4f3c") in
          check_hex (name ^ ": FIPS appendix B") "3925841d02dc09fbdc118597196a0b32"
            (Aes.encrypt_block key (unhex "3243f6a8885a308d313198a2e0370734"))))
    backend_tiers

let test_backend_block_equivalence =
  QCheck.Test.make ~name:"every backend: block = reference" ~count:200
    (QCheck.pair (sized_string 16) (sized_string 16))
    (fun (k, p) ->
      let key = Aes.expand (Bytes.of_string k) in
      let pt = Bytes.of_string p in
      let ect = Aes.encrypt_block_reference key pt in
      let dct = Aes.decrypt_block_reference key pt in
      for_all_tiers (fun _ ->
          Bytes.equal (Aes.encrypt_block key pt) ect
          && Bytes.equal (Aes.decrypt_block key pt) dct))

let test_backend_ecb_equivalence =
  QCheck.Test.make ~name:"every backend: ECB = reference (random nblocks)" ~count:100
    (QCheck.pair (sized_string 16) (QCheck.int_bound 20))
    (fun (k, nblocks) ->
      let key = Aes.expand (Bytes.of_string k) in
      let rng = Rng.create (Int64.of_int (nblocks + 1)) in
      let pt = Rng.bytes rng (nblocks * 16) in
      let ect = Modes.ecb_encrypt_reference key pt in
      let dct = Modes.ecb_decrypt_reference key pt in
      for_all_tiers (fun _ ->
          Bytes.equal (Modes.ecb_encrypt key pt) ect
          && Bytes.equal (Modes.ecb_decrypt key pt) dct))

let test_backend_ctr_equivalence =
  QCheck.Test.make ~name:"every backend: CTR = reference (random length/nonce)" ~count:100
    (QCheck.triple (sized_string 16) (QCheck.int_bound 300) QCheck.int64)
    (fun (k, n, nonce) ->
      let key = Aes.expand (Bytes.of_string k) in
      let rng = Rng.create (Int64.add nonce (Int64.of_int n)) in
      let pt = Rng.bytes rng n in
      let expect = Modes.ctr_transform_reference key ~nonce pt in
      for_all_tiers (fun _ -> Bytes.equal (Modes.ctr_transform key ~nonce pt) expect))

let test_backend_xex_span_equivalence =
  QCheck.Test.make
    ~name:"every backend: XEX span = reference (random tweak/stride/offset/len)" ~count:100
    (QCheck.quad (sized_string 16) (QCheck.pair QCheck.int64 QCheck.int64)
       (QCheck.pair (QCheck.int_bound 31) (QCheck.int_bound 31))
       (QCheck.int_bound 20))
    (fun (k, (tweak0, tweak_step), (src_off, dst_off), nblocks) ->
      let nblocks = nblocks + 1 in
      let len = nblocks * 16 in
      let key = Aes.expand (Bytes.of_string k) in
      let rng = Rng.create (Int64.logxor tweak0 tweak_step) in
      let src = Rng.bytes rng (src_off + len + 5) in
      let expect = Bytes.make (dst_off + len + 3) '\000' in
      Modes.xex_encrypt_span_reference key ~tweak0 ~tweak_step ~src ~src_off ~dst:expect
        ~dst_off ~len;
      for_all_tiers (fun _ ->
          let dst = Bytes.make (dst_off + len + 3) '\000' in
          Modes.xex_encrypt_span key ~tweak0 ~tweak_step ~src ~src_off ~dst ~dst_off ~len;
          let back = Bytes.make (src_off + len + 5) '\000' in
          Modes.xex_decrypt_span key ~tweak0 ~tweak_step ~src:dst ~src_off:dst_off
            ~dst:back ~dst_off:src_off ~len;
          Bytes.equal (Bytes.sub dst dst_off len) (Bytes.sub expect dst_off len)
          && Bytes.equal (Bytes.sub back src_off len) (Bytes.sub src src_off len)))

(* The disk-codec tweak layout: per-sector tweak lanes (stride between
   sectors, step 1 inside) in one bulk call. Reference is the per-sector
   span loop, so this also pins sectors = N independent span calls. *)
let test_backend_xex_sectors_equivalence =
  QCheck.Test.make
    ~name:"every backend: XEX sectors = per-sector span loop (random stride/offsets)"
    ~count:100
    (QCheck.quad (sized_string 16) (QCheck.pair QCheck.int64 QCheck.int64)
       (QCheck.pair (QCheck.int_bound 31) (QCheck.int_bound 31))
       (QCheck.pair (QCheck.int_bound 7) (QCheck.int_bound 5)))
    (fun (k, (tweak0, sector_stride), (src_off, dst_off), (nsectors, sblocks)) ->
      let sector_bytes = (sblocks + 1) * 16 in
      let len = nsectors * sector_bytes in
      let key = Aes.expand (Bytes.of_string k) in
      let rng = Rng.create (Int64.logxor tweak0 sector_stride) in
      let src = Rng.bytes rng (src_off + len + 5) in
      let expect = Bytes.make (dst_off + len + 3) '\000' in
      Modes.xex_encrypt_sectors_reference key ~tweak0 ~sector_stride ~sector_bytes ~src
        ~src_off ~dst:expect ~dst_off ~nsectors;
      for_all_tiers (fun _ ->
          let dst = Bytes.make (dst_off + len + 3) '\000' in
          Modes.xex_encrypt_sectors key ~tweak0 ~sector_stride ~sector_bytes ~src ~src_off
            ~dst ~dst_off ~nsectors;
          let back = Bytes.make (src_off + len + 5) '\000' in
          Modes.xex_decrypt_sectors key ~tweak0 ~sector_stride ~sector_bytes ~src:dst
            ~src_off:dst_off ~dst:back ~dst_off:src_off ~nsectors;
          Bytes.equal (Bytes.sub dst dst_off len) (Bytes.sub expect dst_off len)
          && Bytes.equal (Bytes.sub back src_off len) (Bytes.sub src src_off len)))

(* The mli permits src == dst at the same offset; the SIMD cores load a
   whole 8-block group before storing it, so this pins that contract. *)
let test_backend_inplace_aliasing =
  QCheck.Test.make ~name:"every backend: in-place (src == dst) = out-of-place" ~count:100
    (QCheck.triple (sized_string 16) QCheck.int64 (QCheck.int_bound 20))
    (fun (k, tweak0, nblocks) ->
      let nblocks = nblocks + 1 in
      let len = nblocks * 16 in
      let key = Aes.expand (Bytes.of_string k) in
      let rng = Rng.create tweak0 in
      let pt = Rng.bytes rng len in
      for_all_tiers (fun _ ->
          let out = Bytes.make len '\000' in
          Modes.xex_encrypt_span key ~tweak0 ~tweak_step:16L ~src:pt ~src_off:0 ~dst:out
            ~dst_off:0 ~len;
          let buf = Bytes.copy pt in
          Modes.xex_encrypt_span key ~tweak0 ~tweak_step:16L ~src:buf ~src_off:0 ~dst:buf
            ~dst_off:0 ~len;
          let ecb = Modes.ecb_encrypt key pt in
          let ebuf = Bytes.copy pt in
          Aes.blocks_into key ~encrypt:true ~src:ebuf ~src_off:0 ~dst:ebuf ~dst_off:0
            ~nblocks;
          Bytes.equal buf out && Bytes.equal ebuf ecb))

let test_backend_golden_sweep () =
  (* The DESIGN.md 4c invariant, per backend: ciphertext bits never depend
     on which core computed them. *)
  List.iter
    (fun (name, tier) ->
      with_tier tier (fun () ->
          let ct = Modes.xex_encrypt (golden_key ()) ~tweak:0x40L (golden_page ()) in
          check_hex (name ^ ": XEX page digest")
            "1e91d6ec9633bfbe5eeaebdd40436a81156eca32ea8ca50945602ee573f3fb60"
            (Sha256.digest ct)))
    backend_tiers

let test_bulk_validation () =
  let key = Aes.expand (Bytes.create 16) in
  Alcotest.check_raises "blocks_into src overrun"
    (Invalid_argument "Aes: src range out of bounds") (fun () ->
      Aes.blocks_into key ~encrypt:true ~src:(Bytes.create 31) ~src_off:0
        ~dst:(Bytes.create 32) ~dst_off:0 ~nblocks:2);
  Alcotest.check_raises "blocks_into negative offset"
    (Invalid_argument "Aes: dst range out of bounds") (fun () ->
      Aes.blocks_into key ~encrypt:false ~src:(Bytes.create 32) ~src_off:0
        ~dst:(Bytes.create 32) ~dst_off:(-1) ~nblocks:2);
  Alcotest.check_raises "xex_span_into ragged len"
    (Invalid_argument "Aes.xex_span_into: len must be a multiple of 16") (fun () ->
      Aes.xex_span_into key ~encrypt:true ~tweak0:0L ~tweak_step:1L
        ~src:(Bytes.create 32) ~src_off:0 ~dst:(Bytes.create 32) ~dst_off:0 ~len:24);
  Alcotest.check_raises "ctr_into short dst"
    (Invalid_argument "Aes: dst range out of bounds") (fun () ->
      Aes.ctr_into key ~nonce:0L ~src:(Bytes.create 32) ~dst:(Bytes.create 16) ~len:32)

(* Golden digests captured from the seed (pre-T-table) implementation: any
   drift in ciphertext bits across the rewrite fails these. *)
let test_golden_xex_page () =
  let ct = Modes.xex_encrypt (golden_key ()) ~tweak:0x40L (golden_page ()) in
  check_hex "XEX page digest" "1e91d6ec9633bfbe5eeaebdd40436a81156eca32ea8ca50945602ee573f3fb60"
    (Sha256.digest ct)

let test_golden_ctr () =
  let ct =
    Modes.ctr_transform (golden_key ()) ~nonce:0x1234L (Bytes.sub (golden_page ()) 0 1000)
  in
  check_hex "CTR digest" "06e7cd77daad655e9ea415a5ba08e0621f7829ce9befd92c8a046dc0b8cbe277"
    (Sha256.digest ct)

let test_golden_cbc_mac () =
  check_hex "CBC-MAC short" "a3a5fcf64804dbb99b2781aebfe338c9"
    (Modes.cbc_mac (golden_key ()) (Bytes.of_string "hello"));
  check_hex "CBC-MAC long" "a06c7d531922c5e423e09b141aa9abbf"
    (Modes.cbc_mac (golden_key ()) (Bytes.sub (golden_page ()) 0 1000))

(* --- DH ------------------------------------------------------------------ *)

let test_dh_agreement =
  QCheck.Test.make ~name:"both sides derive the same secret" ~count:100 QCheck.int64
    (fun seed ->
      let rng = Rng.create seed in
      let sa, pa = Dh.generate rng in
      let sb, pb = Dh.generate rng in
      Bytes.equal (Dh.shared_secret sa pb) (Dh.shared_secret sb pa))

let test_dh_public_in_group =
  QCheck.Test.make ~name:"public values lie in the group" ~count:100 QCheck.int64
    (fun seed ->
      let rng = Rng.create seed in
      let _, pub = Dh.generate rng in
      Int64.compare pub 1L > 0 && Int64.compare pub Dh.p < 0)

let test_dh_third_party_differs () =
  let rng = Rng.create 9L in
  let sa, _pa = Dh.generate rng in
  let _sb, pb = Dh.generate rng in
  let sm, _pm = Dh.generate rng in
  (* The man in the middle with its own secret does not derive the pair's key. *)
  Alcotest.(check bool) "mitm differs" false
    (Bytes.equal (Dh.shared_secret sa pb) (Dh.shared_secret sm pb))

let test_dh_rejects_out_of_group () =
  let rng = Rng.create 10L in
  let s, _ = Dh.generate rng in
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Dh.shared_secret: public value out of group") (fun () ->
      ignore (Dh.shared_secret s 0L))

let test_dh_serialization () =
  let rng = Rng.create 11L in
  let _, pub = Dh.generate rng in
  Alcotest.(check int64) "roundtrip" pub (Dh.public_of_bytes (Dh.public_to_bytes pub))

(* --- Keywrap ------------------------------------------------------------- *)

let test_wrap_roundtrip =
  QCheck.Test.make ~name:"wrap/unwrap roundtrip" ~count:100 QCheck.string
    (fun s ->
      let kek = Sha256.digest_string "kek" in
      let w = Keywrap.wrap ~kek (Bytes.of_string s) in
      match Keywrap.unwrap ~kek w with
      | Some k -> Bytes.to_string k = s
      | None -> false)

let test_wrap_wrong_kek () =
  let w = Keywrap.wrap ~kek:(Sha256.digest_string "a") (Bytes.of_string "key material") in
  Alcotest.(check bool) "wrong kek fails" true
    (Keywrap.unwrap ~kek:(Sha256.digest_string "b") w = None)

let test_wrap_tamper () =
  let kek = Sha256.digest_string "kek" in
  let w = Keywrap.wrap ~kek (Bytes.of_string "key material") in
  let b = Keywrap.to_bytes w in
  Bytes.set b 13 (Char.chr (Char.code (Bytes.get b 13) lxor 0x40));
  match Keywrap.of_bytes b with
  | None -> Alcotest.(check bool) "parse may fail" true true
  | Some w' -> Alcotest.(check bool) "tampered unwrap fails" true (Keywrap.unwrap ~kek w' = None)

let test_wrap_serialization =
  QCheck.Test.make ~name:"serialized wrap parses back and unwraps" ~count:100 QCheck.string
    (fun s ->
      let kek = Sha256.digest_string "serialize" in
      let w = Keywrap.wrap ~kek (Bytes.of_string s) in
      match Keywrap.of_bytes (Keywrap.to_bytes w) with
      | None -> false
      | Some w' -> (
          match Keywrap.unwrap ~kek w' with
          | Some k -> Bytes.to_string k = s
          | None -> false))

let test_wrap_nonces_differ () =
  let kek = Sha256.digest_string "kek" in
  let w1 = Keywrap.wrap ~kek (Bytes.of_string "same") in
  let w2 = Keywrap.wrap ~kek (Bytes.of_string "same") in
  Alcotest.(check bool) "two wraps of same key differ" false
    (Bytes.equal (Keywrap.to_bytes w1) (Keywrap.to_bytes w2))

(* --- RNG ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 123L and b = Rng.create 123L in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    (QCheck.pair QCheck.int64 QCheck.small_int)
    (fun (seed, bound) ->
      let bound = max 1 bound in
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs" false
    (Int64.equal (Rng.next64 a) (Rng.next64 b))

let prop t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "crypto"
    [ ( "aes",
        [ Alcotest.test_case "FIPS C.1" `Quick test_aes_fips_c1;
          Alcotest.test_case "FIPS appendix B" `Quick test_aes_appendix_b;
          Alcotest.test_case "size validation" `Quick test_aes_wrong_sizes;
          Alcotest.test_case "into variant" `Quick test_aes_into_matches_alloc;
          Alcotest.test_case "FIPS A.1 key expansion" `Quick test_aes_key_expansion_fips_a1;
          Alcotest.test_case "in-place block ops" `Quick test_aes_inplace;
          Alcotest.test_case "range validation" `Quick test_aes_bad_range;
          prop test_aes_into_at_offset;
          prop test_aes_roundtrip_prop;
          prop test_aes_key_sensitivity ] );
      ( "sha256",
        [ Alcotest.test_case "FIPS vectors" `Quick test_sha_vectors;
          Alcotest.test_case "backend dispatch" `Quick test_sha_backend_known;
          Alcotest.test_case "into variants" `Quick test_sha_into_matches_alloc;
          Alcotest.test_case "pair_into dst aliasing" `Quick test_sha_pair_into_aliases;
          Alcotest.test_case "reset reuse" `Quick test_sha_reset_reuse;
          Alcotest.test_case "pair2 = two digest_pairs" `Quick
            test_sha_pair2_matches_pair;
          Alcotest.test_case "digest2 unequal-length fallback" `Quick
            test_sha_digest2_unequal_fallback;
          prop test_sha_streaming_equals_oneshot;
          prop test_sha_chunked_matches_reference;
          prop test_sha_pair_matches_cat;
          prop test_sha_feed_u64_be;
          prop test_sha_digest2_matches_reference;
          prop test_sha_digest2_prefixed_matches_feed ] );
      ( "hmac",
        [ Alcotest.test_case "RFC 4231 cases 1-3" `Quick test_hmac_rfc4231;
          Alcotest.test_case "RFC 4231 long key" `Quick test_hmac_long_key;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
          Alcotest.test_case "build_into in place" `Quick test_hmac_build_into_in_place;
          prop test_hmac_prepared_matches_oneshot;
          prop test_hmac_distinct_keys ] );
      ( "modes",
        [ prop test_ecb_roundtrip;
          prop test_ctr_involution;
          Alcotest.test_case "CTR nonce sensitivity" `Quick test_ctr_nonce_matters;
          prop test_xex_roundtrip;
          Alcotest.test_case "XEX relocation garbles" `Quick test_xex_relocation_garbles;
          Alcotest.test_case "XEX length check" `Quick test_xex_bad_length;
          Alcotest.test_case "CBC-MAC" `Quick test_cbc_mac;
          prop test_cbc_mac_zero_pad_equiv;
          prop test_xex_span_equals_blocks;
          prop test_xex_span_step_one_matches_into;
          prop test_ctr_random_lengths ] );
      ( "aes-backend",
        [ Alcotest.test_case "backend dispatch" `Quick test_aes_backend_known;
          Alcotest.test_case "FIPS KATs per tier" `Quick test_backend_fips_kats;
          Alcotest.test_case "golden digest per tier" `Quick test_backend_golden_sweep;
          Alcotest.test_case "bulk bounds validation" `Quick test_bulk_validation;
          prop test_schedule_bytes_match_reference;
          prop test_backend_block_equivalence;
          prop test_backend_ecb_equivalence;
          prop test_backend_ctr_equivalence;
          prop test_backend_xex_span_equivalence;
          prop test_backend_xex_sectors_equivalence;
          prop test_backend_inplace_aliasing ] );
      ( "golden",
        [ Alcotest.test_case "XEX page ciphertext" `Quick test_golden_xex_page;
          Alcotest.test_case "CTR keystream" `Quick test_golden_ctr;
          Alcotest.test_case "CBC-MAC tags" `Quick test_golden_cbc_mac ] );
      ( "dh",
        [ prop test_dh_agreement;
          prop test_dh_public_in_group;
          Alcotest.test_case "man-in-the-middle differs" `Quick test_dh_third_party_differs;
          Alcotest.test_case "out-of-group rejected" `Quick test_dh_rejects_out_of_group;
          Alcotest.test_case "serialization" `Quick test_dh_serialization ] );
      ( "keywrap",
        [ prop test_wrap_roundtrip;
          Alcotest.test_case "wrong kek" `Quick test_wrap_wrong_kek;
          Alcotest.test_case "tamper detection" `Quick test_wrap_tamper;
          prop test_wrap_serialization;
          Alcotest.test_case "nonce freshness" `Quick test_wrap_nonces_differ ] );
      ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          prop test_rng_int_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent ] ) ]
