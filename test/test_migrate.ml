(* Live migration with attested secret injection: pre-copy convergence
   under a downtime budget, the pages-sent/downtime trade-off, the wire
   format's typed refusals, and — the load-bearing one — the firmware
   rollback ("Insecure Until Proven Updated") being refused with a typed
   error on both the Fidelius and the plain-SEV stack, with the owner's
   disk key provably never released. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Fid = Core.Fidelius
module Hv = Xen.Hypervisor
module Domain = Xen.Domain
module Rng = Fidelius_crypto.Rng
module Keywrap = Fidelius_crypto.Keywrap
module Site = Fidelius_inject.Site
module Plan = Fidelius_inject.Plan
module Migrate = Core.Migrate
module Attest = Core.Attest
module Migratebench = Fidelius_workloads.Migratebench

let ok = function Ok v -> v | Error e -> Alcotest.fail e
let page c = Bytes.make Hw.Addr.page_size c

let installed ?(seed = 91L) () =
  let m = Hw.Machine.create ~seed () in
  let hv = Hv.boot m in
  let fid = Fid.install hv in
  (m, hv, fid)

let memory_pages = 16

let protected_vm fid name =
  let rng = Rng.create 92L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ page 'A'; page 'B'; page 'C' ]
  in
  ok (Fid.boot_protected_vm fid ~name ~memory_pages ~prepared)

let with_installed plan f =
  Plan.install plan;
  Fun.protect ~finally:Plan.uninstall f

(* Both hosts plus a running guest with a runtime secret beyond the kernel
   image, and a halving-working-set mutator for the pre-copy loop. *)
let live_pair () =
  let m1, hv1, fid1 = installed ~seed:91L () in
  let dom = protected_vm fid1 "traveller" in
  Hv.in_guest hv1 dom (fun () ->
      Domain.write m1 dom ~addr:0xC000 (Bytes.of_string "runtime state"));
  let m2, hv2, fid2 =
    let m = Hw.Machine.create ~seed:92L () in
    let hv = Hv.boot m in
    (m, hv, Fid.install hv)
  in
  let mutate round =
    let w = min (max 1 ((memory_pages / 2) lsr round)) (memory_pages - 1) in
    for p = 1 to w do
      Hv.in_guest hv1 dom (fun () ->
          Domain.write m1 dom ~addr:(Hw.Addr.addr_of p 0)
            (Bytes.of_string (Printf.sprintf "dirty r%d" round)))
    done
  in
  let owner = Migrate.Owner.create (Rng.create 93L) in
  (m1, hv1, fid1, dom, m2, hv2, fid2, mutate, owner)

(* --- live round trip ----------------------------------------------------- *)

let test_live_roundtrip () =
  let _, hv1, fid1, dom, m2, hv2, fid2, mutate, owner = live_pair () in
  let config = { Migrate.downtime_budget_us = 10.; max_rounds = 8 } in
  let dom', rep = ok (Result.map_error Migrate.error_to_string
    (Migrate.migrate_live ~config ~owner ~mutate ~src:fid1 ~dst:fid2 dom)) in
  Alcotest.(check bool) "several dirty rounds ran" true (rep.Migrate.rounds > 2);
  Alcotest.(check bool) "resends happened" true
    (rep.Migrate.pages_sent > memory_pages + 3);
  Alcotest.(check bool) "downtime within budget" true
    (rep.Migrate.downtime_us <= config.Migrate.downtime_budget_us);
  Alcotest.(check bool) "source destroyed" true (Hv.find_domain hv1 dom.Domain.domid = None);
  let b = Hv.in_guest hv2 dom' (fun () -> Domain.read m2 dom' ~addr:0xC000 ~len:13) in
  Alcotest.(check string) "runtime state survives" "runtime state" (Bytes.to_string b);
  let k = Hv.in_guest hv2 dom' (fun () -> Domain.read m2 dom' ~addr:0x2100 ~len:4) in
  Alcotest.(check string) "kernel survives" "CCCC" (Bytes.to_string k);
  Alcotest.(check bool) "secret released" true rep.Migrate.secret_released;
  Alcotest.(check int) "released exactly once" 1 (Migrate.Owner.release_count owner);
  Alcotest.(check bytes) "disk key delivered to the guest's kblk slot"
    (Migrate.Owner.disk_key owner)
    (Fid.kblk_of_guest fid2 dom')

let test_monotone_budget_tradeoff () =
  let run budget =
    let _, _, fid1, dom, _, _, fid2, mutate, owner = live_pair () in
    let config = { Migrate.downtime_budget_us = budget; max_rounds = 8 } in
    let _, rep = ok (Result.map_error Migrate.error_to_string
      (Migrate.migrate_live ~config ~owner ~mutate ~src:fid1 ~dst:fid2 dom)) in
    rep
  in
  let tight = run 2.5 and mid = run 10. and loose = run 40. in
  (* Tighter budget → more pre-copy rounds → more total pages on the wire,
     but less downtime. Strictly monotone for the halving working set. *)
  Alcotest.(check bool) "pages: tight > mid" true
    (tight.Migrate.pages_sent > mid.Migrate.pages_sent);
  Alcotest.(check bool) "pages: mid > loose" true
    (mid.Migrate.pages_sent > loose.Migrate.pages_sent);
  Alcotest.(check bool) "downtime: tight <= mid" true
    (tight.Migrate.downtime_us <= mid.Migrate.downtime_us);
  Alcotest.(check bool) "downtime: mid <= loose" true
    (mid.Migrate.downtime_us <= loose.Migrate.downtime_us)

(* --- rollback refusal ---------------------------------------------------- *)

let test_rollback_refused_fidelius () =
  let _, hv1, fid1, dom, _, hv2, fid2, mutate, owner = live_pair () in
  with_installed
    (Plan.make ~seed:5L [ Plan.always Site.Stale_firmware ])
    (fun () ->
      match Migrate.migrate_live ~owner ~mutate ~src:fid1 ~dst:fid2 dom with
      | Error (Migrate.Stale_firmware { got; minimum }) ->
          Alcotest.(check bool) "reported version is below the floor" true
            (Sev.Firmware.version_compare got minimum < 0)
      | Error e -> Alcotest.fail ("expected Stale_firmware, got " ^ Migrate.error_to_string e)
      | Ok _ -> Alcotest.fail "rolled-back platform was accepted");
  Alcotest.(check bool) "disk key never released" false (Migrate.Owner.released owner);
  Alcotest.(check int) "release count is zero" 0 (Migrate.Owner.release_count owner);
  (* The cut-over was cancelled: the source keeps running, the target
     instance is gone. *)
  Alcotest.(check bool) "source still alive" true (Hv.find_domain hv1 dom.Domain.domid <> None);
  Alcotest.(check bool) "source resumed" true (dom.Domain.state = Domain.Runnable);
  Alcotest.(check bool) "target instance destroyed" true
    (Hv.find_domain hv2 1 = None || not (Fid.is_protected fid2 1))

let test_rollback_refused_plain_sev () =
  (* Stock SEV, no Fidelius layer: the hypervisor reloads a vulnerable
     blob, then quotes. The platform identity survives the downgrade, so
     the MAC is genuine — only the version policy check can refuse. *)
  let m = Hw.Machine.create ~seed:95L () in
  let hv = Hv.boot m in
  let fw = hv.Hv.fw in
  let owner = Migrate.Owner.create (Rng.create 96L) in
  Sev.Firmware.load_blob fw Sev.Firmware.vulnerable_version;
  let xen_measurement = Bytes.make 32 '\000' in
  let q = Attest.quote_fw fw ~xen_measurement ~nonce:17L () in
  (match
     Attest.verify
       ~attestation_key:(Sev.Firmware.attestation_key fw)
       ~expected_xen_measurement:xen_measurement ~nonce:17L q
   with
  | Error (Attest.Stale_firmware { got; minimum }) ->
      Alcotest.(check bool) "typed refusal names the downgrade" true
        (Sev.Firmware.version_compare got minimum < 0)
  | Error e -> Alcotest.fail ("expected Stale_firmware, got " ^ Attest.error_to_string e)
  | Ok () -> Alcotest.fail "rolled-back plain-SEV platform was accepted");
  (* The owner's release gate never opened. *)
  Alcotest.(check bool) "disk key never released" false (Migrate.Owner.released owner)

let test_current_firmware_quote_accepted () =
  let m = Hw.Machine.create ~seed:97L () in
  let hv = Hv.boot m in
  let fw = hv.Hv.fw in
  let xen_measurement = Bytes.make 32 '\000' in
  let q = Attest.quote_fw fw ~xen_measurement ~nonce:18L () in
  Alcotest.(check bool) "current firmware verifies" true
    (Result.is_ok
       (Attest.verify
          ~attestation_key:(Sev.Firmware.attestation_key fw)
          ~expected_xen_measurement:xen_measurement ~nonce:18L q))

(* --- wire-format refusals ------------------------------------------------ *)

let test_unknown_wire_version () =
  let wrapped_keys = Keywrap.wrap ~kek:(Bytes.make 32 'k') (Bytes.make 48 's') in
  let frame =
    Migrate.Wire.encode
      (Migrate.Wire.Start
         { name = "v"; memory_pages = 4; policy = 0; nonce = 1L; wrapped_keys;
           origin_public = 2L })
  in
  Bytes.set_uint16_be frame 4 (Migrate.Wire.version + 1);
  (match Migrate.Wire.decode frame with
  | Error (Migrate.Unknown_version { got; expected }) ->
      Alcotest.(check int) "reports the foreign version" (Migrate.Wire.version + 1) got;
      Alcotest.(check int) "reports its own version" Migrate.Wire.version expected
  | Error e -> Alcotest.fail ("expected Unknown_version, got " ^ Migrate.error_to_string e)
  | Ok _ -> Alcotest.fail "foreign wire version was accepted")

let test_wire_roundtrip () =
  let wrapped_keys = Keywrap.wrap ~kek:(Bytes.make 32 'k') (Bytes.make 48 's') in
  let frame =
    Migrate.Wire.Start
      { name = "traveller"; memory_pages = 16; policy = 1; nonce = 99L; wrapped_keys;
        origin_public = 7L }
  in
  (match Migrate.Wire.decode (Migrate.Wire.encode frame) with
  | Ok (Migrate.Wire.Start s) ->
      Alcotest.(check string) "name" "traveller" s.name;
      Alcotest.(check int) "memory_pages" 16 s.memory_pages;
      Alcotest.(check int64) "nonce" 99L s.nonce
  | _ -> Alcotest.fail "START did not round-trip");
  let update =
    Migrate.Wire.Update
      { round = 3;
        pages = [ (Migrate.index_of ~round:3 ~gfn:5, page 'x'); (Migrate.index_of ~round:3 ~gfn:9, page 'y') ] }
  in
  match Migrate.Wire.decode (Migrate.Wire.encode update) with
  | Ok (Migrate.Wire.Update u) ->
      Alcotest.(check int) "round" 3 u.round;
      Alcotest.(check (list int)) "gfns derived from measured indices" [ 5; 9 ]
        (List.map (fun (i, _) -> Migrate.gfn_of_index i) u.pages)
  | _ -> Alcotest.fail "UPDATE did not round-trip"

let test_secret_before_attest_refused () =
  let _, _, fid1, dom, _, _, fid2, mutate, owner = live_pair () in
  with_installed
    (Plan.make ~seed:6L [ Plan.always Site.Secret_before_attest ])
    (fun () ->
      match Migrate.migrate_live ~owner ~mutate ~src:fid1 ~dst:fid2 dom with
      | Error (Migrate.Protocol_violation _) -> ()
      | Error e ->
          Alcotest.fail ("expected Protocol_violation, got " ^ Migrate.error_to_string e)
      | Ok _ -> Alcotest.fail "secret-before-attest was accepted");
  Alcotest.(check bool) "disk key never released" false (Migrate.Owner.released owner)

let test_round_truncate_rejected () =
  let _, _, fid1, dom, _, _, fid2, mutate, owner = live_pair () in
  with_installed
    (Plan.make ~seed:7L [ Plan.always Site.Round_truncate ])
    (fun () ->
      (* The frame is re-framed consistently after the drop, so no length
         check can notice — only the keyed measurement at RECEIVE_FINISH. *)
      match Migrate.migrate_live ~owner ~mutate ~src:fid1 ~dst:fid2 dom with
      | Error (Migrate.Rejected _) -> ()
      | Error e -> Alcotest.fail ("expected Rejected, got " ^ Migrate.error_to_string e)
      | Ok _ -> Alcotest.fail "surgically truncated round was accepted");
  Alcotest.(check bool) "disk key never released" false (Migrate.Owner.released owner)

let test_out_of_order_frame_refused () =
  let _, _, _fid1, _dom, _, _, fid2, _mutate, _owner = live_pair () in
  let rx = Migrate.rx_create fid2 in
  let update = Migrate.Wire.encode (Migrate.Wire.Update { round = 0; pages = [] }) in
  match Migrate.rx_deliver rx update with
  | Error (Migrate.Protocol_violation _) -> ()
  | Error e -> Alcotest.fail ("expected Protocol_violation, got " ^ Migrate.error_to_string e)
  | Ok _ -> Alcotest.fail "UPDATE before START was accepted"

(* --- fleet determinism --------------------------------------------------- *)

let test_fleet_determinism () =
  let csv domains = Migratebench.csv (Migratebench.run ~domains ~vms:4 ~budget_us:10. ()) in
  Alcotest.(check string) "d1 and d2 byte-identical" (csv 1) (csv 2)

let test_fleet_keys_delivered () =
  let t = Migratebench.run ~domains:2 ~vms:4 ~budget_us:10. () in
  Alcotest.(check bool) "every migration delivered its disk key" true
    (Migratebench.all_keys_delivered t)

let () =
  Alcotest.run "migrate"
    [ ( "live",
        [ Alcotest.test_case "round trip with dirty rounds" `Quick test_live_roundtrip;
          Alcotest.test_case "pages-vs-downtime monotone" `Quick test_monotone_budget_tradeoff
        ] );
      ( "rollback",
        [ Alcotest.test_case "fidelius refusal, key withheld" `Quick
            test_rollback_refused_fidelius;
          Alcotest.test_case "plain-SEV refusal, key withheld" `Quick
            test_rollback_refused_plain_sev;
          Alcotest.test_case "current firmware accepted" `Quick
            test_current_firmware_quote_accepted
        ] );
      ( "wire",
        [ Alcotest.test_case "unknown version refused" `Quick test_unknown_wire_version;
          Alcotest.test_case "frame round-trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "secret before attest refused" `Quick
            test_secret_before_attest_refused;
          Alcotest.test_case "surgical round truncation rejected" `Quick
            test_round_truncate_rejected;
          Alcotest.test_case "out-of-order frame refused" `Quick
            test_out_of_order_frame_refused
        ] );
      ( "fleet",
        [ Alcotest.test_case "deterministic at any domain count" `Quick
            test_fleet_determinism;
          Alcotest.test_case "all keys delivered" `Quick test_fleet_keys_delivered
        ] )
    ]
