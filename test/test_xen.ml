(* Tests for the Xen substrate: boot, domains, hypercalls, grants, events,
   XenStore, PV block I/O and world-switch machinery. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Hv = Xen.Hypervisor
module Domain = Xen.Domain
module Granttab = Xen.Granttab
module Event = Xen.Event
module Xenstore = Xen.Xenstore
module Ring = Xen.Ring
module Vdisk = Xen.Vdisk
module Blkif = Xen.Blkif
module Sched = Xen.Sched
module Hypercall = Xen.Hypercall

let boot () =
  let m = Hw.Machine.create ~seed:41L () in
  (m, Hv.boot m)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* --- boot invariants ------------------------------------------------------- *)

let test_boot_invariants () =
  let m, hv = boot () in
  Alcotest.(check bool) "paging enforced" true m.Hw.Machine.enforce_paging;
  Alcotest.(check int) "cr3 = host space" (Hw.Pagetable.id hv.Hv.host_space)
    (Hw.Cpu.cr3 m.Hw.Machine.cpu);
  Alcotest.(check bool) "dom0 present" true (Hv.find_domain hv 0 <> None);
  Alcotest.(check bool) "firmware initialized" true (Fidelius_sev.Firmware.initialized hv.Hv.fw);
  (* Stock Xen carries multiple stray copies of the privileged ops. *)
  Alcotest.(check bool) "mov-cr0 not monopolized at boot" false
    (Hw.Insn.monopolized m.Hw.Machine.insns Hw.Insn.Mov_cr0);
  (* Text frames are identity-mapped executable and read-only. *)
  List.iter
    (fun pfn ->
      match Hw.Pagetable.lookup hv.Hv.host_space pfn with
      | Some pte ->
          Alcotest.(check bool) "text exec" true pte.Hw.Pagetable.executable;
          Alcotest.(check bool) "text ro" false pte.Hw.Pagetable.writable
      | None -> Alcotest.fail "text unmapped")
    hv.Hv.xen_text

let test_direct_map_covers_ram () =
  let m, hv = boot () in
  let nr = Hw.Physmem.nr_frames m.Hw.Machine.mem in
  let missing = ref 0 in
  for pfn = 1 to nr - 1 do
    if Hw.Pagetable.lookup hv.Hv.host_space pfn = None then incr missing
  done;
  Alcotest.(check int) "all frames direct-mapped" 0 !missing

(* --- domains ---------------------------------------------------------------- *)

let test_create_domain () =
  let _, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:8 in
  Alcotest.(check int) "8 frames" 8 (List.length dom.Domain.frames);
  Alcotest.(check int) "npt populated" 8 (Hw.Pagetable.entry_count dom.Domain.npt);
  Alcotest.(check bool) "runnable" true (dom.Domain.state = Domain.Runnable);
  Alcotest.(check bool) "distinct asids" true
    (let d2 = Hv.create_domain hv ~name:"g2" ~memory_pages:4 in
     d2.Domain.asid <> dom.Domain.asid)

let test_guest_rw () =
  let m, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:8 in
  Hv.in_guest hv dom (fun () ->
      Domain.write m dom ~addr:0x3000 (Bytes.of_string "guest"));
  let b = Hv.in_guest hv dom (fun () -> Domain.read m dom ~addr:0x3000 ~len:5) in
  Alcotest.(check string) "rw" "guest" (Bytes.to_string b)

let test_npf_demand_alloc () =
  let m, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:4 in
  (* Map a guest virtual page at a gfn beyond the populated range. *)
  let gfn = Domain.alloc_gfn dom in
  Domain.guest_map dom ~gvfn:50 ~gfn ~writable:true ~executable:false ~c_bit:false;
  let _, npf0 = Hv.stats hv in
  Hv.in_guest hv dom (fun () -> Domain.write m dom ~addr:(Hw.Addr.addr_of 50 0) (Bytes.of_string "x"));
  let _, npf1 = Hv.stats hv in
  Alcotest.(check int) "one NPF served" 1 (npf1 - npf0);
  Alcotest.(check bool) "gfn now backed" true (Hw.Pagetable.lookup dom.Domain.npt gfn <> None)

let test_destroy_domain () =
  let m, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:8 in
  let frames = dom.Domain.frames in
  let free_before = Hw.Machine.frames_free m in
  Hv.destroy_domain hv dom;
  Alcotest.(check int) "frames returned" (free_before + 8) (Hw.Machine.frames_free m);
  Alcotest.(check bool) "gone from list" true (Hv.find_domain hv dom.Domain.domid = None);
  (* Freed frames were scrubbed. *)
  List.iter
    (fun pfn ->
      Alcotest.(check string) "scrubbed" "\000\000"
        (Bytes.to_string (Hw.Physmem.read_raw m.Hw.Machine.mem pfn ~off:0 ~len:2)))
    frames

let test_sev_domain () =
  let m, hv = boot () in
  let kernel = [ Bytes.make Hw.Addr.page_size 'K' ] in
  let dom = ok (Hv.create_sev_domain hv ~name:"s" ~memory_pages:8 ~kernel) in
  Alcotest.(check bool) "protected flag" true dom.Domain.sev_protected;
  Alcotest.(check bool) "sev_enabled in VMCB" true
    (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Sev_enabled = 1L);
  let b = Hv.in_guest hv dom (fun () -> Domain.read m dom ~addr:0 ~len:4) in
  Alcotest.(check string) "kernel decrypts for guest" "KKKK" (Bytes.to_string b);
  (* DRAM is ciphertext. *)
  match Hw.Pagetable.lookup dom.Domain.npt 0 with
  | Some npte ->
      let raw = Hw.Physmem.read_raw m.Hw.Machine.mem npte.Hw.Pagetable.frame ~off:0 ~len:4 in
      Alcotest.(check bool) "DRAM ciphertext" false (Bytes.to_string raw = "KKKK")
  | None -> Alcotest.fail "gfn 0 unbacked"

let test_sev_kernel_too_big () =
  let _, hv = boot () in
  let kernel = List.init 5 (fun _ -> Bytes.make Hw.Addr.page_size 'K') in
  Alcotest.(check bool) "oversized kernel rejected" true
    (Result.is_error (Hv.create_sev_domain hv ~name:"s" ~memory_pages:4 ~kernel))

(* --- world switches ----------------------------------------------------------- *)

let test_vmexit_vmrun_state () =
  let m, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:4 in
  ok (Hv.vmrun hv dom);
  Alcotest.(check bool) "guest mode" true
    (Hw.Cpu.mode m.Hw.Machine.cpu = Hw.Cpu.Guest dom.Domain.domid);
  Hw.Cpu.set_reg m.Hw.Machine.cpu Hw.Cpu.Rax 0x1234L;
  Hw.Cpu.set_rip m.Hw.Machine.cpu 0x4000L;
  Hv.vmexit hv dom Hw.Vmcb.Cpuid ~info1:1L ~info2:2L;
  Alcotest.(check bool) "host mode" true (Hw.Cpu.mode m.Hw.Machine.cpu = Hw.Cpu.Host);
  Alcotest.(check int64) "rax saved" 0x1234L (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rax);
  Alcotest.(check int64) "rip saved" 0x4000L (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rip);
  Alcotest.(check int64) "exit info" 2L (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Exit_info2);
  Hw.Cpu.set_reg m.Hw.Machine.cpu Hw.Cpu.Rax 0L;
  ok (Hv.vmrun hv dom);
  Alcotest.(check int64) "rax reloaded" 0x1234L (Hw.Cpu.get_reg m.Hw.Machine.cpu Hw.Cpu.Rax)

let test_vmrun_unknown_domain () =
  let m, hv = boot () in
  ignore hv;
  Alcotest.(check bool) "bad domid" true
    (Result.is_error
       (Hw.Insn.execute m.Hw.Machine.insns ~exec_ok:(fun _ -> true) Hw.Insn.Vmrun 99L))

(* --- hypercalls ------------------------------------------------------------------ *)

let test_void_hypercall () =
  let _, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:4 in
  let v0, _ = Hv.stats hv in
  Alcotest.(check int64) "void returns 0" 0L (ok (Hv.hypercall hv dom Hypercall.Void));
  let v1, _ = Hv.stats hv in
  Alcotest.(check int) "one vmexit" 1 (v1 - v0)

let test_console_hypercall () =
  let _, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:4 in
  ignore (ok (Hv.hypercall hv dom (Hypercall.Console_write "hello ")));
  ignore (ok (Hv.hypercall hv dom (Hypercall.Console_write "world")));
  Alcotest.(check string) "console accumulates" "hello world" (Hv.console hv dom.Domain.domid);
  Alcotest.(check string) "other console empty" "" (Hv.console hv 42)

let test_grant_flow () =
  let m, hv = boot () in
  let owner = Hv.create_domain hv ~name:"owner" ~memory_pages:8 in
  let peer = Hv.create_domain hv ~name:"peer" ~memory_pages:8 in
  (* Owner offers gfn 3 read-only. *)
  let gref =
    Int64.to_int
      (ok (Hv.hypercall hv owner
             (Hypercall.Grant_table_op
                (Hypercall.Grant_access { target = peer.Domain.domid; gfn = 3; writable = false }))))
  in
  (match Granttab.get hv.Hv.granttab gref with
  | Some e ->
      Alcotest.(check int) "owner recorded" owner.Domain.domid e.Granttab.owner;
      Alcotest.(check bool) "read-only" false e.Granttab.writable
  | None -> Alcotest.fail "grant missing");
  (* A third party cannot map it. *)
  let third = Hv.create_domain hv ~name:"third" ~memory_pages:4 in
  Alcotest.(check bool) "wrong target denied" true
    (Result.is_error
       (Hv.hypercall hv third (Hypercall.Grant_table_op (Hypercall.Map_grant { gref }))));
  (* The intended peer maps it and sees the owner's data. *)
  Hv.in_guest hv owner (fun () ->
      Domain.write m owner ~addr:(Hw.Addr.addr_of 3 0) (Bytes.of_string "shared!"));
  let peer_gfn =
    Int64.to_int
      (ok (Hv.hypercall hv peer (Hypercall.Grant_table_op (Hypercall.Map_grant { gref }))))
  in
  Domain.guest_map peer ~gvfn:60 ~gfn:peer_gfn ~writable:false ~executable:false ~c_bit:false;
  let b = Hv.in_guest hv peer (fun () -> Domain.read m peer ~addr:(Hw.Addr.addr_of 60 0) ~len:7) in
  Alcotest.(check string) "peer reads shared page" "shared!" (Bytes.to_string b);
  (* Peer cannot write through a read-only nested mapping. *)
  (try
     Hv.in_guest hv peer (fun () ->
         Domain.write m peer ~addr:(Hw.Addr.addr_of 60 0) (Bytes.of_string "x"));
     Alcotest.fail "expected write denial"
   with Hv.Npf_unresolved _ | Hw.Mmu.Fault _ -> ());
  (* Only the owner can end access. *)
  Alcotest.(check bool) "peer cannot end" true
    (Result.is_error
       (Hv.hypercall hv peer (Hypercall.Grant_table_op (Hypercall.End_access { gref }))));
  ignore (ok (Hv.hypercall hv owner (Hypercall.Grant_table_op (Hypercall.End_access { gref }))));
  Alcotest.(check bool) "grant freed" true (Granttab.get hv.Hv.granttab gref = None)

(* --- granttab serialization -------------------------------------------------------- *)

let test_granttab_encode () =
  let m, hv = boot () in
  let e = { Granttab.owner = 5; target = 7; gfn = 0x1234; writable = true; in_use = true } in
  Granttab.set m ~space:hv.Hv.host_space hv.Hv.granttab 11 (Some e);
  Alcotest.(check bool) "roundtrip" true (Granttab.get hv.Hv.granttab 11 = Some e);
  Granttab.set m ~space:hv.Hv.host_space hv.Hv.granttab 11 None;
  Alcotest.(check bool) "cleared" true (Granttab.get hv.Hv.granttab 11 = None);
  Alcotest.(check bool) "oob get" true (Granttab.get hv.Hv.granttab 99999 = None);
  Alcotest.check_raises "oob set"
    (Invalid_argument "Granttab.set: grant ref 99999 out of range") (fun () ->
      Granttab.set m ~space:hv.Hv.host_space hv.Hv.granttab 99999 None)

let test_granttab_find_free () =
  let m, hv = boot () in
  let t = hv.Hv.granttab in
  let e = { Granttab.owner = 1; target = 2; gfn = 1; writable = false; in_use = true } in
  Granttab.set m ~space:hv.Hv.host_space t 0 (Some e);
  Alcotest.(check bool) "skips used slot" true (Granttab.find_free t = Some 1);
  Alcotest.(check int) "entries list" 1 (List.length (Granttab.entries t))

(* --- events / xenstore --------------------------------------------------------------- *)

let test_event_channels () =
  let l = Hw.Cost.ledger () in
  let ev = Event.create l in
  let port = Event.alloc_unbound ev ~domid:1 ~remote:2 in
  Alcotest.(check bool) "wrong dom cannot bind" true
    (Result.is_error (Event.bind ev ~domid:3 ~remote_port:port));
  let bport = ok (Event.bind ev ~domid:2 ~remote_port:port) in
  let fired = ref 0 in
  Event.on_event ev ~domid:2 ~port:bport (fun () -> incr fired);
  ok (Event.send ev ~domid:1 ~port);
  Alcotest.(check int) "handler ran" 1 !fired;
  (* Reverse direction: notify 1 from 2; no handler -> pending. *)
  ok (Event.send ev ~domid:2 ~port:bport);
  Alcotest.(check bool) "pending flagged" true (Event.pending ev ~domid:1 ~port);
  Alcotest.(check bool) "unbound send fails" true
    (Result.is_error (Event.send ev ~domid:9 ~port:1234))

(* Regression: an event sent before the handler existed used to be parked
   forever — on_event never consulted the pending set, so the backend
   missed any doorbell that raced its registration. Registration must
   deliver parked events immediately (the pending bit is level-ish, as on
   real Xen). *)
let test_event_parked_delivery () =
  let l = Hw.Cost.ledger () in
  let ev = Event.create l in
  let port = Event.alloc_unbound ev ~domid:1 ~remote:2 in
  let bport = ok (Event.bind ev ~domid:2 ~remote_port:port) in
  (* Doorbell rings before anyone listens: parked, not lost. *)
  ok (Event.send ev ~domid:1 ~port);
  ok (Event.send ev ~domid:1 ~port);
  Alcotest.(check bool) "parked while unhandled" true (Event.pending ev ~domid:2 ~port:bport);
  let fired = ref 0 in
  Event.on_event ev ~domid:2 ~port:bport (fun () -> incr fired);
  Alcotest.(check int) "delivered at registration" 1 !fired;
  Alcotest.(check bool) "pending cleared" false (Event.pending ev ~domid:2 ~port:bport);
  (* Later sends go straight through. *)
  ok (Event.send ev ~domid:1 ~port);
  Alcotest.(check int) "live delivery still works" 2 !fired

let test_xenstore () =
  let s = Xenstore.create () in
  Xenstore.write s ~domid:3 ~path:"/local/domain/3/device/vbd/ring-ref" "17";
  Alcotest.(check bool) "read back" true
    (Xenstore.read s ~path:"/local/domain/3/device/vbd/ring-ref" = Some "17");
  Alcotest.check_raises "foreign subtree denied"
    (Fidelius_hw.Denial.Denied "xenstore: dom3 may not write /local/domain/4/x")
    (fun () -> Xenstore.write s ~domid:3 ~path:"/local/domain/4/x" "evil");
  Xenstore.write s ~domid:0 ~path:"/anywhere" "dom0 may";
  Xenstore.tamper s ~path:"/local/domain/3/device/vbd/ring-ref" "666";
  Alcotest.(check bool) "tamper channel works" true
    (Xenstore.read s ~path:"/local/domain/3/device/vbd/ring-ref" = Some "666");
  Alcotest.(check int) "keys by prefix" 1 (List.length (Xenstore.keys s ~prefix:"/anywhere"))

(* --- ring / vdisk ---------------------------------------------------------------------- *)

let req ?(op = Ring.Read) ?(sector = 0) ?(count = 1) ?(data_gref = 0) ?(data_off = 0) req_id =
  { Ring.req_id; op; sector; count; data_gref; data_off }

let push_ok r q =
  match Ring.push_request r q with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("unexpected push failure: " ^ Ring.error_to_string e)

let test_ring () =
  let r = Ring.create () in
  Alcotest.(check bool) "empty" true (Ring.pop_request r = None);
  push_ok r (req 1);
  Alcotest.(check int) "pending" 1 (Ring.requests_pending r);
  Alcotest.(check int) "free slots" (Ring.default_size - 1) (Ring.free_request_slots r);
  (match Ring.pop_request r with
  | Some q -> Alcotest.(check int) "fifo" 1 q.Ring.req_id
  | None -> Alcotest.fail "pop");
  (match Ring.push_response r { Ring.resp_id = 1; status = Ok () } with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "response push");
  Alcotest.(check bool) "response" true (Ring.pop_response r <> None)

let test_ring_backpressure () =
  let r = Ring.create ~size:4 () in
  for i = 1 to 4 do push_ok r (req i) done;
  Alcotest.(check int) "no free slots" 0 (Ring.free_request_slots r);
  (match Ring.push_request r (req 5) with
  | Error (Ring.Ring_full { capacity }) -> Alcotest.(check int) "capacity reported" 4 capacity
  | Ok () -> Alcotest.fail "overfull push accepted"
  | Error e -> Alcotest.fail ("wrong error: " ^ Ring.error_to_string e));
  (* Consuming one slot relieves the backpressure. *)
  ignore (Ring.pop_request r);
  push_ok r (req 5);
  Alcotest.(check (list int)) "fifo preserved across refill" [ 2; 3; 4; 5 ]
    (List.map (fun q -> q.Ring.req_id) (Ring.pop_requests r ~max:10));
  Alcotest.check_raises "non-power-of-two rejected"
    (Invalid_argument "Ring.create: size 3 must be a power of two >= 2") (fun () ->
      ignore (Ring.create ~size:3 ()));
  Alcotest.check_raises "size 0 rejected"
    (Invalid_argument "Ring.create: size 0 must be a power of two >= 2") (fun () ->
      ignore (Ring.create ~size:0 ()))

let test_ring_wraparound () =
  let r = Ring.create ~size:4 () in
  (* Push/pop far past the slot count: free-running indices must keep FIFO
     order through many wraps. *)
  let next = ref 0 in
  for _round = 1 to 10 do
    for _ = 1 to 3 do
      push_ok r (req !next);
      incr next
    done;
    let drained = Ring.pop_requests r ~max:3 in
    Alcotest.(check int) "drained all" 3 (List.length drained)
  done;
  let (req_prod, req_cons), _ = Ring.indices r in
  Alcotest.(check int) "producer free-running" 30 req_prod;
  Alcotest.(check int) "consumer caught up" 30 req_cons;
  Alcotest.(check int) "empty after wraps" 0 (Ring.requests_pending r)

(* Model check: the bounded ring behaves exactly like a capacity-limited
   FIFO queue under an arbitrary interleaving of pushes and pops. *)
let prop_ring_matches_bounded_queue =
  QCheck.Test.make ~count:200 ~name:"ring = bounded FIFO queue"
    QCheck.(list small_int)
    (fun ops ->
      let size = 4 in
      let r = Ring.create ~size () in
      let model = Queue.create () in
      List.for_all
        (fun x ->
          if x land 1 = 0 then
            (* push *)
            let fits = Queue.length model < size in
            if fits then Queue.push x model;
            (match Ring.push_request r (req x) with
            | Ok () -> fits
            | Error (Ring.Ring_full _) -> not fits
            | Error _ -> false)
          else
            (* pop *)
            match (Ring.pop_request r, Queue.take_opt model) with
            | None, None -> true
            | Some q, Some m -> q.Ring.req_id = m
            | _ -> false)
        ops
      && Ring.requests_pending r = Queue.length model)

let test_vdisk () =
  let d = Vdisk.create ~nr_sectors:8 in
  Vdisk.write d ~sector:2 (Bytes.make 1024 'z');
  Alcotest.(check bool) "read back" true
    (Bytes.for_all (fun c -> c = 'z') (Vdisk.read d ~sector:2 ~count:2));
  Alcotest.check_raises "oob" (Invalid_argument "Vdisk: sectors 7+2 out of range") (fun () ->
      ignore (Vdisk.read d ~sector:7 ~count:2));
  Alcotest.check_raises "partial sector"
    (Invalid_argument "Vdisk.write: length must be a multiple of the sector size") (fun () ->
      Vdisk.write d ~sector:0 (Bytes.create 100));
  let d2 = Vdisk.of_bytes (Bytes.make 700 'q') in
  Alcotest.(check int) "rounded up" 2 (Vdisk.nr_sectors d2)

(* --- blkif -------------------------------------------------------------------------------- *)

let test_blkif_roundtrip () =
  let _, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:8 in
  let disk = Vdisk.create ~nr_sectors:64 in
  let fe, be = ok (Blkif.connect hv dom ~disk ~buffer_gvfn:100) in
  ok (Blkif.write_sectors fe ~sector:5 (Bytes.make 2048 'D'));
  let b = ok (Blkif.read_sectors fe ~sector:5 ~count:4) in
  Alcotest.(check bool) "roundtrip" true (Bytes.for_all (fun c -> c = 'D') b);
  Alcotest.(check bool) "requests served" true (Blkif.requests_served be >= 2);
  (* Identity codec means plaintext hits the platter — the insecurity the
     Fidelius codecs remove. *)
  Alcotest.(check bool) "platter plaintext" true
    (Bytes.for_all (fun c -> c = 'D') (Vdisk.peek disk ~sector:5 ~count:1))

let test_blkif_large_transfer_chunks () =
  let _, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:8 in
  let disk = Vdisk.create ~nr_sectors:128 in
  let fe, be = ok (Blkif.connect hv dom ~disk ~buffer_gvfn:100) in
  (* 16 KiB spans multiple one-page ring requests. *)
  ok (Blkif.write_sectors fe ~sector:0 (Bytes.make 16384 'L'));
  Alcotest.(check bool) "chunked into >= 4 requests" true (Blkif.requests_served be >= 4);
  let b = ok (Blkif.read_sectors fe ~sector:0 ~count:32) in
  Alcotest.(check bool) "content" true (Bytes.for_all (fun c -> c = 'L') b)

let test_blkif_validation () =
  let _, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:8 in
  let disk = Vdisk.create ~nr_sectors:8 in
  let fe, _ = ok (Blkif.connect hv dom ~disk ~buffer_gvfn:100) in
  Alcotest.(check bool) "partial sector write rejected" true
    (Result.is_error (Blkif.write_sectors fe ~sector:0 (Bytes.create 100)));
  Alcotest.(check bool) "zero count read rejected" true
    (Result.is_error (Blkif.read_sectors fe ~sector:0 ~count:0));
  Alcotest.(check bool) "oob read surfaces backend error" true
    (Result.is_error (Blkif.read_sectors fe ~sector:7 ~count:4))

(* Everything in a descriptor is attacker-controlled: each malformed shape
   must come back as its typed error, with nothing charged and nothing
   copied. *)
let test_blkif_malformed_descriptors () =
  let m, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:8 in
  let disk = Vdisk.create ~nr_sectors:64 in
  let fe, be = ok (Blkif.connect hv dom ~disk ~buffer_gvfn:100) in
  let gref = Blkif.data_gref fe ~page:0 in
  let blkio_before = Hw.Cost.category m.Hw.Machine.ledger "blk-io" in
  let bad =
    [ req ~data_gref:gref ~count:0 1;                                  (* zero-length *)
      req ~data_gref:gref ~count:(-3) 2;
      req ~data_gref:gref ~count:(Blkif.sectors_per_frame + 1) 3;
      req ~data_gref:gref ~sector:60 ~count:8 4;                       (* runs off the disk *)
      req ~data_gref:gref ~sector:(-1) 5;
      req ~data_gref:gref ~data_off:4000 6;                            (* span leaves the frame *)
      req ~data_gref:99999 7 ]                                         (* not a data grant *)
  in
  let statuses = ok (Blkif.submit_batch fe bad) in
  let expect name pred st =
    Alcotest.(check bool) name true (match st with Error e -> pred e | Ok () -> false)
  in
  (match statuses with
  | [ s1; s2; s3; s4; s5; s6; s7 ] ->
      expect "count 0" (function Ring.Bad_count { count = 0; _ } -> true | _ -> false) s1;
      expect "count negative" (function Ring.Bad_count _ -> true | _ -> false) s2;
      expect "count > frame" (function Ring.Bad_count { count = 9; _ } -> true | _ -> false) s3;
      expect "sector overrun"
        (function Ring.Bad_sector { sector = 60; count = 8; nr_sectors = 64 } -> true | _ -> false)
        s4;
      expect "sector negative" (function Ring.Bad_sector _ -> true | _ -> false) s5;
      expect "span overrun" (function Ring.Bad_span { data_off = 4000; _ } -> true | _ -> false) s6;
      expect "foreign gref" (function Ring.Bad_gref { gref = 99999; _ } -> true | _ -> false) s7
  | l -> Alcotest.fail (Printf.sprintf "expected 7 statuses, got %d" (List.length l)));
  (* Fail-closed means validate-then-charge: rejects cost the guest nothing. *)
  Alcotest.(check int) "no blk-io charged for rejects" blkio_before
    (Hw.Cost.category m.Hw.Machine.ledger "blk-io");
  Alcotest.(check int) "all rejected" 7 (Blkif.requests_rejected be);
  (* Duplicate req_id inside one batch: first wins, second fails closed. *)
  let statuses =
    ok (Blkif.submit_batch fe [ req ~data_gref:gref ~sector:1 42; req ~data_gref:gref ~sector:2 42 ])
  in
  (match statuses with
  | [ Ok (); Error (Ring.Duplicate_req_id { req_id = 42 }) ] -> ()
  | _ -> Alcotest.fail "duplicate req_id not failed closed");
  Alcotest.(check int) "only the duplicate rejected" 8 (Blkif.requests_rejected be)

let test_blkif_response_without_request () =
  let _, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:8 in
  let disk = Vdisk.create ~nr_sectors:64 in
  let fe, _ = ok (Blkif.connect hv dom ~disk ~buffer_gvfn:100) in
  (* dom0 (or a descriptor forgery) plants a response nobody asked for. *)
  (match Ring.push_response (Blkif.frontend_ring fe) { Ring.resp_id = 99; status = Ok () } with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "stray push");
  (match Blkif.submit_batch fe [ req ~data_gref:(Blkif.data_gref fe ~page:0) 1 ] with
  | Error msg ->
      (* either the id-mismatch or the leftover-response detector fires *)
      let contains s needle =
        let nl = String.length needle and sl = String.length s in
        let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "names the protocol violation" true (contains msg "response")
  | Ok _ -> Alcotest.fail "stray response accepted");
  (* The sector helpers fail closed on the same forgery. *)
  (match Ring.push_response (Blkif.frontend_ring fe) { Ring.resp_id = 98; status = Ok () } with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "stray push");
  Alcotest.(check bool) "read fails closed" true
    (Result.is_error (Blkif.read_sectors fe ~sector:0 ~count:1))

let test_blkif_submit_backpressure () =
  let _, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:8 in
  let disk = Vdisk.create ~nr_sectors:64 in
  let fe, be = ok (Blkif.connect hv ~ring_size:4 dom ~disk ~buffer_gvfn:100) in
  let gref = Blkif.data_gref fe ~page:0 in
  let vmexits_before, _ = Hv.stats hv in
  let five = List.init 5 (fun i -> req ~data_gref:gref ~sector:i (i + 1)) in
  (match Blkif.submit_batch fe five with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized batch accepted");
  let vmexits_after, _ = Hv.stats hv in
  Alcotest.(check int) "no doorbell hypercall for a refused batch" vmexits_before vmexits_after;
  Alcotest.(check int) "nothing left on the ring" 0
    (Ring.requests_pending (Blkif.frontend_ring fe));
  Alcotest.(check int) "backend untouched" 0 (Blkif.requests_served be);
  (* A batch that exactly fills the ring goes through. *)
  let four = List.init 4 (fun i -> req ~data_gref:gref ~sector:i (i + 10)) in
  let statuses = ok (Blkif.submit_batch fe four) in
  Alcotest.(check int) "full-ring batch served" 4 (List.length statuses);
  List.iter (fun st -> Alcotest.(check bool) "served ok" true (st = Ok ())) statuses

let test_blkif_multiqueue () =
  let _, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:16 in
  let disk = Vdisk.create ~nr_sectors:64 in
  let fe, be = ok (Blkif.connect ~nr_queues:2 ~buffer_pages:2 hv dom ~disk ~buffer_gvfn:100) in
  Alcotest.(check int) "two queues" 2 (Blkif.nr_queues fe);
  Alcotest.(check int) "vcpu 0 -> q0" 0 (Blkif.queue_for fe ~vcpu:0);
  Alcotest.(check int) "vcpu 1 -> q1" 1 (Blkif.queue_for fe ~vcpu:1);
  Alcotest.(check int) "vcpu 4 -> q0" 0 (Blkif.queue_for fe ~vcpu:4);
  (* vCPU 1 writes through its own queue; vCPU 0 reads the same disk back
     through queue 0 — the queues share the vdisk, not descriptor slots. *)
  ok (Blkif.write_sectors ~queue:1 ~batch:2 fe ~sector:8 (Bytes.make 4096 'Q'));
  let b = ok (Blkif.read_sectors ~queue:0 fe ~sector:8 ~count:8) in
  Alcotest.(check bool) "cross-queue roundtrip" true (Bytes.for_all (fun c -> c = 'Q') b);
  Alcotest.(check bool) "both directions served" true (Blkif.requests_served be >= 2)

(* Golden pins captured on the pre-batching synchronous implementation
   (identity codec, all defaults): the refactored datapath at batch size 1
   must charge the exact same cumulative cycle totals and produce the same
   bytes. Guards the PR's byte-identity contract. *)
let test_blkif_batch1_golden () =
  let pattern n = Bytes.init n (fun i -> Char.chr (((i * 7) + 13) land 0xff)) in
  let m, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:8 in
  let disk = Vdisk.create ~nr_sectors:64 in
  let fe, be = ok (Blkif.connect hv dom ~disk ~buffer_gvfn:100) in
  let total () = Hw.Cost.total m.Hw.Machine.ledger in
  Alcotest.(check int) "connect cycles unchanged" 1109548 (total ());
  let data = pattern 4096 in
  ok (Blkif.write_sectors fe ~sector:5 data);
  Alcotest.(check int) "write cycles unchanged" 1289903 (total ());
  let rd = ok (Blkif.read_sectors fe ~sector:5 ~count:8) in
  Alcotest.(check int) "read cycles unchanged" 1470182 (total ());
  Alcotest.(check int) "request count unchanged" 2 (Blkif.requests_served be);
  Alcotest.(check bool) "platter bytes unchanged" true
    (Bytes.equal data (Vdisk.peek disk ~sector:5 ~count:8));
  Alcotest.(check bool) "read-back bytes unchanged" true (Bytes.equal data rd)

(* Batching changes only how many doorbells ring: disk artifacts, read-back
   bytes and the charged per-sector I/O cost are invariant in the batch
   size. *)
let prop_batch_invariance =
  QCheck.Test.make ~count:8 ~name:"batch=8 artifacts = batch=1 artifacts"
    QCheck.(pair (int_bound 40) (int_range 1 16))
    (fun (sector, nsec) ->
      QCheck.assume (sector + nsec <= 64);
      let run ~batch ~pages =
        let m = Hw.Machine.create ~seed:41L () in
        let hv = Hv.boot m in
        let dom = Hv.create_domain hv ~name:"g" ~memory_pages:16 in
        let disk = Vdisk.create ~nr_sectors:64 in
        let fe, be = ok (Blkif.connect ~buffer_pages:pages hv dom ~disk ~buffer_gvfn:100) in
        let data =
          Bytes.init (nsec * Vdisk.sector_size) (fun i -> Char.chr ((i * 31 + sector) land 0xff))
        in
        ok (Blkif.write_sectors ~batch fe ~sector data);
        let rd = ok (Blkif.read_sectors ~batch fe ~sector ~count:nsec) in
        ( Vdisk.peek disk ~sector:0 ~count:64,
          rd,
          Hw.Cost.category m.Hw.Machine.ledger "blk-io",
          Blkif.notifications be,
          Blkif.requests_rejected be )
      in
      let disk1, rd1, io1, notif1, rej1 = run ~batch:1 ~pages:1 in
      let disk8, rd8, io8, notif8, rej8 = run ~batch:8 ~pages:8 in
      Bytes.equal disk1 disk8 && Bytes.equal rd1 rd8 && io1 = io8 && rej1 = 0 && rej8 = 0
      && notif8 <= notif1)

(* --- sched ------------------------------------------------------------------------------- *)

let test_sched () =
  let m, hv = boot () in
  ignore m;
  let s = Sched.create () in
  let d1 = Hv.create_domain hv ~name:"a" ~memory_pages:2 in
  let d2 = Hv.create_domain hv ~name:"b" ~memory_pages:2 in
  Sched.add s d1;
  Sched.add s d2;
  Sched.add s d1 (* duplicate ignored *);
  Alcotest.(check int) "two runnable" 2 (List.length (Sched.runnable s));
  let first = Sched.next s in
  let second = Sched.next s in
  Alcotest.(check bool) "round robin rotates" true
    (match (first, second) with Some a, Some b -> not (a == b) | _ -> false);
  d1.Domain.state <- Domain.Paused;
  d2.Domain.state <- Domain.Paused;
  Alcotest.(check bool) "none runnable" true (Sched.next s = None);
  d1.Domain.state <- Domain.Runnable;
  Sched.remove s d1;
  Alcotest.(check bool) "removed" true (Sched.next s = None)

let test_cpuid_emulation () =
  let m, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:4 in
  (match Hv.cpuid hv dom ~leaf:0 with
  | Ok (a, b, _, _) ->
      Alcotest.(check int64) "max leaf" 0x8000001FL a;
      Alcotest.(check bool) "vendor string packed" true (b <> 0L)
  | Error e -> Alcotest.fail e);
  (match Hv.cpuid hv dom ~leaf:1 with
  | Ok (_, _, c, _) ->
      Alcotest.(check bool) "AES-NI advertised" true
        (Int64.logand c (Int64.shift_left 1L 25) <> 0L)
  | Error e -> Alcotest.fail e);
  (* The SEV leaf reflects protection. *)
  (match Hv.cpuid hv dom ~leaf:0x8000001F with
  | Ok (a, _, _, _) -> Alcotest.(check int64) "plain guest: SME only" 1L a
  | Error e -> Alcotest.fail e);
  let sev = ok (Hv.create_sev_domain hv ~name:"s" ~memory_pages:4
                  ~kernel:[ Bytes.make Hw.Addr.page_size 'K' ]) in
  (match Hv.cpuid hv sev ~leaf:0x8000001F with
  | Ok (a, b, _, _) ->
      Alcotest.(check int64) "SEV guest: SME+SEV" 3L a;
      Alcotest.(check int64) "C-bit position" 47L b
  | Error e -> Alcotest.fail e);
  ignore m

let test_msr_emulation () =
  let _, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:4 in
  Alcotest.(check int64) "unwritten MSR reads 0" 0L (ok (Hv.rdmsr hv dom ~msr:0x10));
  ok (Hv.wrmsr_guest hv dom ~msr:0x10 0x1234_5678_9ABCL);
  Alcotest.(check int64) "written MSR reads back" 0x1234_5678_9ABCL
    (ok (Hv.rdmsr hv dom ~msr:0x10));
  Alcotest.(check int64) "EFER reflects NXE" 0x800L (ok (Hv.rdmsr hv dom ~msr:0xC0000080));
  Alcotest.(check bool) "guest EFER write refused" true
    (Result.is_error (Hv.wrmsr_guest hv dom ~msr:0xC0000080 0L));
  (* MSRs are per-domain. *)
  let dom2 = Hv.create_domain hv ~name:"g2" ~memory_pages:4 in
  Alcotest.(check int64) "isolated per domain" 0L (ok (Hv.rdmsr hv dom2 ~msr:0x10))

let test_sev_es_semantics () =
  let m, hv = boot () in
  let dom = ok (Hv.create_sev_domain hv ~name:"es" ~memory_pages:4
                  ~kernel:[ Bytes.make Hw.Addr.page_size 'E' ]) in
  Hv.enable_sev_es hv dom;
  let cpu = m.Hw.Machine.cpu in
  (* Exit with register state: hardware hides it... *)
  Hw.Cpu.set_reg cpu Hw.Cpu.Rbx 0xC0DEL;
  Hw.Cpu.set_reg cpu Hw.Cpu.Rsp 0x9000L;
  Hw.Cpu.set_rip cpu 0x3000L;
  Hv.vmexit hv dom Hw.Vmcb.Npf ~info1:0L ~info2:0L;
  Alcotest.(check int64) "rbx hidden" 0L (Hw.Cpu.get_reg cpu Hw.Cpu.Rbx);
  Alcotest.(check int64) "rip hidden in VMCB (NPF exposes nothing)" 0L
    (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rip);
  Alcotest.(check int64) "rsp hidden in VMCB" 0L (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rsp);
  (* ...the hypervisor scribbles the save area, and hardware ignores it. *)
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Rip 0xBADL;
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Rsp 0xBADL;
  ok (Hv.vmrun hv dom);
  Alcotest.(check int64) "rip restored from VMSA" 0x3000L (Hw.Cpu.rip cpu);
  Alcotest.(check int64) "rsp restored from VMSA" 0x9000L (Hw.Cpu.get_reg cpu Hw.Cpu.Rsp);
  Alcotest.(check int64) "rbx restored from VMSA" 0xC0DEL (Hw.Cpu.get_reg cpu Hw.Cpu.Rbx);
  (* Hypercalls still function through the GHCB exchange. *)
  Alcotest.(check int64) "void hypercall under ES" 0L (ok (Hv.hypercall hv dom Hypercall.Void));
  (* SEV_ENABLED cannot be stripped across a world switch. *)
  Hv.vmexit hv dom Hw.Vmcb.Hlt ~info1:0L ~info2:0L;
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Sev_enabled 0L;
  Alcotest.(check bool) "hardware consistency check" true (Result.is_error (Hv.vmrun hv dom));
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Sev_enabled 1L;
  ok (Hv.vmrun hv dom)

let test_hypercall_numbers_distinct () =
  let calls =
    [ Hypercall.Void;
      Hypercall.Console_write "";
      Hypercall.Event_send { port = 0 };
      Hypercall.Grant_table_op (Hypercall.Map_grant { gref = 0 });
      Hypercall.Pre_sharing { target = 0; gfn = 0; nr = 0; writable = false };
      Hypercall.Enable_mem_enc ]
  in
  let numbers = List.map Hypercall.number calls in
  Alcotest.(check int) "distinct ABI numbers" (List.length numbers)
    (List.length (List.sort_uniq compare numbers))

(* --- allocation regression -------------------------------------------------- *)

(* Minor-heap words per call, after a warm-up pass that takes the one-time
   allocations (lazy thunks, cached closures, hashtable growth). *)
let words_per_call n f =
  for _ = 1 to 100 do f () done;
  let w0 = Gc.minor_words () in
  for _ = 1 to n do f () done;
  (Gc.minor_words () -. w0) /. float_of_int n

let test_crossing_allocation_free () =
  (* The zero-alloc world switch, pinned: with tracing off, a steady-state
     vmexit+vmrun pair allocates nothing, and a whole void hypercall
     allocates only the boxed RIP result (3 words). A regression here —
     a stray closure, an [int64] box, an option — shows up as a fraction
     of a word and fails loudly. *)
  Alcotest.(check bool) "tracing off" false (Fidelius_obs.Trace.enabled ());
  let m, hv = boot () in
  let dom = Hv.create_domain hv ~name:"g" ~memory_pages:4 in
  let pair =
    words_per_call 1000 (fun () ->
        Hv.vmexit hv dom Hw.Vmcb.Vmmcall ~info1:0L ~info2:0L;
        ignore (Hv.vmrun hv dom))
  in
  Alcotest.(check (float 0.01)) "vmexit+vmrun allocates nothing" 0.0 pair;
  ignore m;
  let void =
    words_per_call 1000 (fun () -> ignore (Hv.hypercall hv dom Hypercall.Void))
  in
  Alcotest.(check bool)
    (Printf.sprintf "void hypercall <= 4 words/call (got %.1f)" void)
    true (void <= 4.0)

let () =
  Alcotest.run "xen"
    [ ( "boot",
        [ Alcotest.test_case "invariants" `Quick test_boot_invariants;
          Alcotest.test_case "direct map" `Quick test_direct_map_covers_ram ] );
      ( "domains",
        [ Alcotest.test_case "create" `Quick test_create_domain;
          Alcotest.test_case "guest rw" `Quick test_guest_rw;
          Alcotest.test_case "NPF demand alloc" `Quick test_npf_demand_alloc;
          Alcotest.test_case "destroy" `Quick test_destroy_domain;
          Alcotest.test_case "sev domain" `Quick test_sev_domain;
          Alcotest.test_case "kernel too big" `Quick test_sev_kernel_too_big ] );
      ( "world-switch",
        [ Alcotest.test_case "vmexit/vmrun state" `Quick test_vmexit_vmrun_state;
          Alcotest.test_case "unknown domain" `Quick test_vmrun_unknown_domain;
          Alcotest.test_case "allocation-free crossing" `Quick
            test_crossing_allocation_free ] );
      ( "hypercalls",
        [ Alcotest.test_case "void" `Quick test_void_hypercall;
          Alcotest.test_case "console" `Quick test_console_hypercall;
          Alcotest.test_case "grant flow" `Quick test_grant_flow;
          Alcotest.test_case "ABI numbers" `Quick test_hypercall_numbers_distinct;
          Alcotest.test_case "cpuid emulation" `Quick test_cpuid_emulation;
          Alcotest.test_case "sev-es semantics" `Quick test_sev_es_semantics;
          Alcotest.test_case "msr emulation" `Quick test_msr_emulation ] );
      ( "granttab",
        [ Alcotest.test_case "encode/decode" `Quick test_granttab_encode;
          Alcotest.test_case "find_free" `Quick test_granttab_find_free ] );
      ( "events-store",
        [ Alcotest.test_case "event channels" `Quick test_event_channels;
          Alcotest.test_case "parked event delivery" `Quick test_event_parked_delivery;
          Alcotest.test_case "xenstore" `Quick test_xenstore ] );
      ( "block",
        [ Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "ring backpressure" `Quick test_ring_backpressure;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          QCheck_alcotest.to_alcotest prop_ring_matches_bounded_queue;
          Alcotest.test_case "vdisk" `Quick test_vdisk;
          Alcotest.test_case "blkif roundtrip" `Quick test_blkif_roundtrip;
          Alcotest.test_case "chunking" `Quick test_blkif_large_transfer_chunks;
          Alcotest.test_case "validation" `Quick test_blkif_validation;
          Alcotest.test_case "malformed descriptors" `Quick test_blkif_malformed_descriptors;
          Alcotest.test_case "response without request" `Quick
            test_blkif_response_without_request;
          Alcotest.test_case "submit backpressure" `Quick test_blkif_submit_backpressure;
          Alcotest.test_case "multiqueue" `Quick test_blkif_multiqueue;
          Alcotest.test_case "batch-1 golden pins" `Quick test_blkif_batch1_golden;
          QCheck_alcotest.to_alcotest prop_batch_invariance ] );
      ("sched", [ Alcotest.test_case "round robin" `Quick test_sched ]) ]
