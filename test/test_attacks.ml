(* The security evaluation as a test suite: every attack in the catalogue
   must be defended under Fidelius, and the attacks the paper says plain SEV
   is vulnerable to must indeed succeed on the baseline. *)

module Surface = Fidelius_attacks.Surface
module Suite = Fidelius_attacks.Suite
module Runner = Fidelius_attacks.Runner

let rows = lazy (Runner.run_all ())

let find_row id =
  match List.find_opt (fun r -> r.Runner.attack.Surface.id = id) (Lazy.force rows) with
  | Some r -> r
  | None -> Alcotest.fail ("no such attack: " ^ id)

let expect_defended id () =
  let r = find_row id in
  Alcotest.(check bool)
    (id ^ " defended by Fidelius: " ^ Surface.outcome_to_string r.Runner.fidelius)
    true
    (Surface.is_defended r.Runner.fidelius)

let expect_baseline_vulnerable id () =
  let r = find_row id in
  Alcotest.(check bool)
    (id ^ " succeeds on plain SEV: " ^ Surface.outcome_to_string r.Runner.baseline)
    false
    (Surface.is_defended r.Runner.baseline)

let expect_baseline_defended id () =
  (* Attacks the SEV hardware itself already stops (physical channels). *)
  let r = find_row id in
  Alcotest.(check bool)
    (id ^ " already held by SEV hardware")
    true
    (Surface.is_defended r.Runner.baseline)

let fidelius_blocked_by id fragment () =
  let r = find_row id in
  match r.Runner.fidelius with
  | Surface.Blocked msg ->
      let contains hay needle =
        let n = String.length hay and m = String.length needle in
        let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s blocked by %s (got: %s)" id fragment msg)
        true (contains msg fragment)
  | other ->
      Alcotest.fail (id ^ ": expected Blocked, got " ^ Surface.outcome_to_string other)

let test_no_harness_errors () =
  (* A simulator crash must never be scored as a defense: the runner maps
     unexpected exceptions to [Errored], and the shipped suite must have
     none on any stack — every Blocked row is a genuine denial reason. *)
  (match Runner.errors (Lazy.force rows) with
  | [] -> ()
  | errs ->
      Alcotest.failf "%d harness error(s): %s" (List.length errs)
        (String.concat "; "
           (List.map (fun (id, stack, m) -> id ^ "/" ^ stack ^ ": " ^ m) errs)));
  List.iter
    (fun r ->
      List.iter
        (fun o ->
          match o with
          | Surface.Errored m ->
              Alcotest.failf "%s errored but is_defended scored it: %s"
                r.Runner.attack.Surface.id m
          | _ -> ())
        [ r.Runner.baseline; r.Runner.sev_es; r.Runner.fidelius ])
    (Lazy.force rows)

let test_errored_not_defended () =
  Alcotest.(check bool) "Errored is not a defense" false
    (Surface.is_defended (Surface.Errored "boom"));
  Alcotest.(check string) "rendering" "ERRORED: boom"
    (Surface.outcome_to_string (Surface.Errored "boom"))

let test_summary () =
  let total, defended, baseline_vulnerable = Runner.summary (Lazy.force rows) in
  Alcotest.(check int) "catalogue size" (List.length Suite.all) total;
  Alcotest.(check int) "Fidelius defends everything" total defended;
  (* The paper's Section 2.2 analysis: plain SEV is broken on most of the
     host-software surface. *)
  Alcotest.(check bool) "baseline broadly vulnerable" true (baseline_vulnerable >= 15)

let test_catalogue_structure () =
  Alcotest.(check bool) "has hardware subset" true (List.length Suite.hardware >= 4);
  Alcotest.(check bool) "has host-software subset" true (List.length Suite.host_software >= 15);
  List.iter
    (fun (a : Surface.attack) ->
      Alcotest.(check bool) (a.Surface.id ^ " has paper ref") true
        (String.length a.Surface.paper_ref > 0))
    Suite.all;
  Alcotest.(check bool) "find works" true (Suite.find "cold-boot" <> None);
  Alcotest.(check bool) "find unknown" true (Suite.find "nope" = None)

let vulnerable_baseline =
  [ "vmcb-register-harvest"; "vmcb-control-tamper"; "vmcb-sev-disable"; "direct-map-read";
    "host-remap"; "inter-vm-remap"; "grant-forgery"; "grant-widening"; "mapping-widening"; "balloon-reclaim";
    "exit-reason-forgery"; "double-map"; "iago-forged-return";
    "keyshare-abuse"; "wp-disable"; "smep-disable"; "nxe-disable"; "rogue-vmrun"; "rogue-cr3";
    "code-injection"; "unmap-monitor-text"; "io-snoop"; "dma-overwrite-pt" ]

let hardware_held_by_sev = [ "cold-boot"; "bus-snoop"; "dma-read-guest"; "rowhammer" ]

(* The paper's Section 2.2: SEV-ES closes the VMCB/register surfaces... *)
let es_defends = [ "vmcb-register-harvest"; "vmcb-sev-disable"; "exit-reason-forgery" ]

(* ...but the second-level mapping and the handle/ASID key-sharing surfaces
   remain ("this handle-ASID relationship is not protected by SEV-ES"). *)
let es_still_vulnerable =
  [ "vmcb-control-tamper"; "direct-map-read"; "host-remap"; "inter-vm-remap";
    "grant-forgery"; "grant-widening"; "keyshare-abuse"; "wp-disable"; "rogue-vmrun";
    "io-snoop"; "dma-overwrite-pt" ]

let expect_es_defended id () =
  let r = find_row id in
  Alcotest.(check bool)
    (id ^ " held by SEV-ES: " ^ Surface.outcome_to_string r.Runner.sev_es)
    true
    (Surface.is_defended r.Runner.sev_es)

let expect_es_vulnerable id () =
  let r = find_row id in
  Alcotest.(check bool)
    (id ^ " still breaks SEV-ES: " ^ Surface.outcome_to_string r.Runner.sev_es)
    false
    (Surface.is_defended r.Runner.sev_es)

let mechanism_checks =
  [ ("vmcb-control-tamper", "shadow");
    ("vmcb-sev-disable", "shadow");
    ("inter-vm-remap", "PIT");
    ("grant-forgery", "GIT");
    ("grant-widening", "GIT");
    ("mapping-widening", "PIT");
    ("balloon-reclaim", "teardown");
    ("exit-reason-forgery", "shadow");
    ("double-map", "double mapping");
    ("wp-disable", "CR0 policy");
    ("smep-disable", "CR4 policy");
    ("nxe-disable", "EFER policy");
    ("rogue-vmrun", "#PF(fetch)");
    ("rogue-cr3", "#PF(fetch)");
    ("unmap-monitor-text", "may not be revoked");
    ("dma-overwrite-pt", "IOMMU") ]

(* --- isolation regressions (SCALING.md) ---------------------------------

   The conspirator used to live in a module-global list keyed by physical
   equality on the hypervisor, and per-attack seeds used to come from the
   attack's *position* in the catalogue — both made an attack's outcome
   depend on what ran before it. These pin the fix: an attack's row is a
   pure function of (attack, base seed). *)

let rows_equal (a : Runner.row) (b : Runner.row) =
  a.Runner.attack.Surface.id = b.Runner.attack.Surface.id
  && a.Runner.baseline = b.Runner.baseline
  && a.Runner.sev_es = b.Runner.sev_es
  && a.Runner.fidelius = b.Runner.fidelius

let test_outcomes_independent_of_suite_order () =
  (* Running the catalogue in reverse must give each attack the same row
     the forward suite gave it. *)
  let forward = Lazy.force rows in
  let reverse = List.map Runner.run_one (List.rev Suite.all) in
  List.iter
    (fun (fwd : Runner.row) ->
      let id = fwd.Runner.attack.Surface.id in
      match
        List.find_opt (fun r -> r.Runner.attack.Surface.id = id) reverse
      with
      | None -> Alcotest.fail ("missing from reverse run: " ^ id)
      | Some rev ->
          Alcotest.(check bool)
            (id ^ " row identical when the suite runs in reverse")
            true (rows_equal fwd rev))
    forward

let test_outcomes_independent_of_domains () =
  let one = Runner.run_all ~domains:1 () in
  let many = Runner.run_all ~domains:5 () in
  Alcotest.(check int) "same row count" (List.length one) (List.length many);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (a.Runner.attack.Surface.id ^ " row identical on 1 and 5 domains")
        true (rows_equal a b))
    one many

let () =
  Alcotest.run "attacks"
    [ ( "fidelius-defends",
        List.map
          (fun (a : Surface.attack) ->
            Alcotest.test_case a.Surface.id `Quick (expect_defended a.Surface.id))
          Suite.all );
      ( "baseline-vulnerable",
        List.map
          (fun id -> Alcotest.test_case id `Quick (expect_baseline_vulnerable id))
          vulnerable_baseline );
      ( "sev-es-closes (paper 2.2)",
        List.map (fun id -> Alcotest.test_case id `Quick (expect_es_defended id)) es_defends );
      ( "sev-es-remains-open (paper 2.2)",
        List.map (fun id -> Alcotest.test_case id `Quick (expect_es_vulnerable id))
          es_still_vulnerable );
      ( "sev-hardware-holds",
        List.map
          (fun id -> Alcotest.test_case id `Quick (expect_baseline_defended id))
          hardware_held_by_sev );
      ( "mechanisms",
        List.map
          (fun (id, frag) ->
            Alcotest.test_case (id ^ " via " ^ frag) `Quick (fidelius_blocked_by id frag))
          mechanism_checks );
      ( "isolation",
        [ Alcotest.test_case "order-independent outcomes" `Quick
            test_outcomes_independent_of_suite_order;
          Alcotest.test_case "domain-count-independent outcomes" `Quick
            test_outcomes_independent_of_domains ] );
      ( "summary",
        [ Alcotest.test_case "totals" `Quick test_summary;
          Alcotest.test_case "no harness errors" `Quick test_no_harness_errors;
          Alcotest.test_case "errored scoring" `Quick test_errored_not_defended;
          Alcotest.test_case "catalogue" `Quick test_catalogue_structure ] ) ]
