(* Tests for the SEV firmware state machine, transport format and the
   owner-side tooling. *)

module Hw = Fidelius_hw
module Sev = Fidelius_sev
module State = Sev.State
module Firmware = Sev.Firmware
module Transport = Sev.Transport
module Measure = Sev.Measure
module Rng = Fidelius_crypto.Rng
module Dh = Fidelius_crypto.Dh

let env () =
  let m = Hw.Machine.create ~nr_frames:256 ~seed:21L () in
  let fw = Firmware.create m in
  (match Firmware.init fw with Ok () -> () | Error e -> failwith e);
  (m, fw)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let page c = Bytes.make Hw.Addr.page_size c

(* --- state machine ------------------------------------------------------- *)

let test_state_transitions () =
  let open State in
  let legal = [ (Uninit, Launching); (Launching, Running); (Running, Sending);
                (Sending, Sent); (Uninit, Receiving); (Receiving, Running) ] in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s legal" (to_string a) (to_string b))
        true (can_transition a b))
    legal;
  let illegal = [ (Running, Launching); (Sent, Running); (Launching, Sending);
                  (Decommissioned, Running); (Uninit, Running) ] in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s illegal" (to_string a) (to_string b))
        false (can_transition a b))
    illegal;
  Alcotest.(check bool) "anything can decommission" true
    (can_transition Running Decommissioned && can_transition Sending Decommissioned)

let test_require () =
  Alcotest.(check bool) "matching state ok" true
    (Result.is_ok (State.require State.Running ~expected:[ State.Running ] ~cmd:"X"));
  match State.require State.Sent ~expected:[ State.Running; State.Sending ] ~cmd:"CMD" with
  | Ok () -> Alcotest.fail "expected error"
  | Error msg ->
      Alcotest.(check bool) "names command" true
        (String.length msg > 3 && String.sub msg 0 3 = "CMD")

(* --- init / launch ------------------------------------------------------- *)

let test_double_init () =
  let m = Hw.Machine.create ~nr_frames:64 ~seed:5L () in
  let fw = Firmware.create m in
  Alcotest.(check bool) "not initialized" false (Firmware.initialized fw);
  ok (Firmware.init fw);
  Alcotest.(check bool) "second init fails" true (Result.is_error (Firmware.init fw))

let test_commands_need_init () =
  let m = Hw.Machine.create ~nr_frames:64 ~seed:6L () in
  let fw = Firmware.create m in
  Alcotest.(check bool) "launch before init fails" true
    (Result.is_error (Firmware.launch_start fw ~policy:0))

let test_launch_flow () =
  let m, fw = env () in
  let handle = ok (Firmware.launch_start fw ~policy:0) in
  Alcotest.(check bool) "launching" true (Firmware.state_of fw ~handle = Some State.Launching);
  let pfn = Hw.Machine.alloc_frame m in
  Hw.Physmem.write_raw m.Hw.Machine.mem pfn ~off:0 (page 'K');
  ok (Firmware.launch_update fw ~handle ~pfn);
  (* the frame is now encrypted in place *)
  let raw = Hw.Physmem.read_raw m.Hw.Machine.mem pfn ~off:0 ~len:16 in
  Alcotest.(check bool) "encrypted in place" false (Bytes.to_string raw = String.make 16 'K');
  let digest = ok (Firmware.launch_finish fw ~handle) in
  Alcotest.(check int) "digest size" 32 (Bytes.length digest);
  Alcotest.(check bool) "running" true (Firmware.state_of fw ~handle = Some State.Running);
  (* activation installs the key; guest traffic decrypts *)
  ok (Firmware.activate fw ~handle ~asid:4);
  Alcotest.(check string) "slot decrypts launch page" (String.make 16 'K')
    (Bytes.to_string (Hw.Memctrl.read m.Hw.Machine.ctrl (Hw.Memctrl.Asid 4) pfn ~off:0 ~len:16))

let test_launch_update_wrong_state () =
  let m, fw = env () in
  let handle = ok (Firmware.launch_start fw ~policy:0) in
  let _ = ok (Firmware.launch_finish fw ~handle) in
  let pfn = Hw.Machine.alloc_frame m in
  Alcotest.(check bool) "update after finish fails" true
    (Result.is_error (Firmware.launch_update fw ~handle ~pfn))

let test_launch_measurement_sensitive () =
  let m, fw = env () in
  let run content =
    let handle = ok (Firmware.launch_start fw ~policy:0) in
    let pfn = Hw.Machine.alloc_frame m in
    Hw.Physmem.write_raw m.Hw.Machine.mem pfn ~off:0 content;
    ok (Firmware.launch_update fw ~handle ~pfn);
    ok (Firmware.launch_finish fw ~handle)
  in
  Alcotest.(check bool) "content-sensitive" false
    (Bytes.equal (run (page 'A')) (run (page 'B')))

let test_measure_module () =
  let m1 = Measure.create () and m2 = Measure.create () in
  Measure.add_page m1 ~index:0 (page 'x');
  Measure.add_page m2 ~index:0 (page 'x');
  let tik = Bytes.make 32 't' in
  let a = Measure.finalize m1 ~tik in
  Alcotest.(check bool) "verify agrees" true (Measure.verify m2 ~tik ~expected:a);
  let m3 = Measure.create () in
  Measure.add_page m3 ~index:1 (page 'x');
  Alcotest.(check bool) "index-sensitive" false (Measure.verify m3 ~tik ~expected:a)

(* --- activate / deactivate / decommission --------------------------------- *)

let test_activate_lifecycle () =
  let m, fw = env () in
  let handle = ok (Firmware.launch_start fw ~policy:0) in
  let _ = ok (Firmware.launch_finish fw ~handle) in
  Alcotest.(check bool) "asid none" true (Firmware.asid_of fw ~handle = None);
  ok (Firmware.activate fw ~handle ~asid:9);
  Alcotest.(check bool) "asid set" true (Firmware.asid_of fw ~handle = Some 9);
  Alcotest.(check bool) "key installed" true (Hw.Memctrl.has_key m.Hw.Machine.ctrl ~asid:9);
  ok (Firmware.deactivate fw ~handle);
  Alcotest.(check bool) "key uninstalled" false (Hw.Memctrl.has_key m.Hw.Machine.ctrl ~asid:9);
  Alcotest.(check bool) "double deactivate fails" true
    (Result.is_error (Firmware.deactivate fw ~handle));
  ok (Firmware.decommission fw ~handle);
  Alcotest.(check bool) "decommissioned" true
    (Firmware.state_of fw ~handle = Some State.Decommissioned);
  Alcotest.(check bool) "commands on dead handle fail" true
    (Result.is_error (Firmware.activate fw ~handle ~asid:9))

let test_activate_rebinding_is_permitted () =
  (* The faithful insecurity: the hypervisor may rebind any handle to any
     ASID — the surface Fidelius closes at the mapping layer. *)
  let _, fw = env () in
  let h1 = ok (Firmware.launch_start fw ~policy:0) in
  let _ = ok (Firmware.launch_finish fw ~handle:h1) in
  ok (Firmware.activate fw ~handle:h1 ~asid:3);
  ok (Firmware.activate fw ~handle:h1 ~asid:5);
  Alcotest.(check bool) "rebound" true (Firmware.asid_of fw ~handle:h1 = Some 5)

let test_unknown_handle () =
  let _, fw = env () in
  Alcotest.(check bool) "unknown handle" true
    (Result.is_error (Firmware.activate fw ~handle:999 ~asid:1))

(* --- send / receive -------------------------------------------------------- *)

let migration_pair () =
  let m1, fw1 = env () in
  let m2 = Hw.Machine.create ~nr_frames:256 ~seed:22L () in
  let fw2 = Firmware.create m2 in
  (match Firmware.init fw2 with Ok () -> () | Error e -> failwith e);
  (m1, fw1, m2, fw2)

let test_send_receive_roundtrip () =
  let m1, fw1, m2, fw2 = migration_pair () in
  let handle = ok (Firmware.launch_start fw1 ~policy:0) in
  let pfn1 = Hw.Machine.alloc_frame m1 in
  Hw.Physmem.write_raw m1.Hw.Machine.mem pfn1 ~off:0 (page 'M');
  ok (Firmware.launch_update fw1 ~handle ~pfn:pfn1);
  let _ = ok (Firmware.launch_finish fw1 ~handle) in
  let nonce = 777L in
  let wrapped = ok (Firmware.send_start fw1 ~handle ~target_public:(Firmware.platform_public fw2) ~nonce) in
  Alcotest.(check bool) "sending state" true (Firmware.state_of fw1 ~handle = Some State.Sending);
  let cipher = ok (Firmware.send_update fw1 ~handle ~index:0 ~src_pfn:pfn1) in
  let measurement = ok (Firmware.send_finish fw1 ~handle) in
  Alcotest.(check bool) "sent state" true (Firmware.state_of fw1 ~handle = Some State.Sent);
  let h2 =
    ok (Firmware.receive_start fw2 ~wrapped ~origin_public:(Firmware.platform_public fw1)
          ~nonce ~policy:0 ())
  in
  let pfn2 = Hw.Machine.alloc_frame m2 in
  ok (Firmware.receive_update fw2 ~handle:h2 ~index:0 ~cipher ~dst_pfn:pfn2);
  ok (Firmware.receive_finish fw2 ~handle:h2 ~expected:measurement);
  ok (Firmware.activate fw2 ~handle:h2 ~asid:6);
  Alcotest.(check string) "content survives migration" (String.make 16 'M')
    (Bytes.to_string (Hw.Memctrl.read m2.Hw.Machine.ctrl (Hw.Memctrl.Asid 6) pfn2 ~off:0 ~len:16))

let test_receive_wrong_platform () =
  let m1, fw1, _m2, fw2 = migration_pair () in
  let m3 = Hw.Machine.create ~nr_frames:64 ~seed:23L () in
  let fw3 = Firmware.create m3 in
  (match Firmware.init fw3 with Ok () -> () | Error e -> failwith e);
  let handle = ok (Firmware.launch_start fw1 ~policy:0) in
  let pfn = Hw.Machine.alloc_frame m1 in
  ok (Firmware.launch_update fw1 ~handle ~pfn);
  let _ = ok (Firmware.launch_finish fw1 ~handle) in
  let wrapped = ok (Firmware.send_start fw1 ~handle ~target_public:(Firmware.platform_public fw2) ~nonce:1L) in
  Alcotest.(check bool) "wrong platform rejected" true
    (Result.is_error
       (Firmware.receive_start fw3 ~wrapped ~origin_public:(Firmware.platform_public fw1)
          ~nonce:1L ~policy:0 ()))

let test_receive_tampered_page () =
  let m1, fw1, m2, fw2 = migration_pair () in
  let handle = ok (Firmware.launch_start fw1 ~policy:0) in
  let pfn1 = Hw.Machine.alloc_frame m1 in
  Hw.Physmem.write_raw m1.Hw.Machine.mem pfn1 ~off:0 (page 'T');
  ok (Firmware.launch_update fw1 ~handle ~pfn:pfn1);
  let _ = ok (Firmware.launch_finish fw1 ~handle) in
  let wrapped = ok (Firmware.send_start fw1 ~handle ~target_public:(Firmware.platform_public fw2) ~nonce:2L) in
  let cipher = ok (Firmware.send_update fw1 ~handle ~index:0 ~src_pfn:pfn1) in
  let measurement = ok (Firmware.send_finish fw1 ~handle) in
  Bytes.set cipher 100 (Char.chr (Char.code (Bytes.get cipher 100) lxor 0xff));
  let h2 =
    ok (Firmware.receive_start fw2 ~wrapped ~origin_public:(Firmware.platform_public fw1)
          ~nonce:2L ~policy:0 ())
  in
  let pfn2 = Hw.Machine.alloc_frame m2 in
  ok (Firmware.receive_update fw2 ~handle:h2 ~index:0 ~cipher ~dst_pfn:pfn2);
  Alcotest.(check bool) "measurement mismatch detected" true
    (Result.is_error (Firmware.receive_finish fw2 ~handle:h2 ~expected:measurement));
  Alcotest.(check bool) "guest never reaches RUNNING" true
    (Firmware.state_of fw2 ~handle:h2 = Some State.Receiving)

let test_receive_reordered_pages () =
  let m1, fw1, m2, fw2 = migration_pair () in
  let handle = ok (Firmware.launch_start fw1 ~policy:0) in
  let p1 = Hw.Machine.alloc_frame m1 and p2 = Hw.Machine.alloc_frame m1 in
  Hw.Physmem.write_raw m1.Hw.Machine.mem p1 ~off:0 (page '1');
  Hw.Physmem.write_raw m1.Hw.Machine.mem p2 ~off:0 (page '2');
  ok (Firmware.launch_update fw1 ~handle ~pfn:p1);
  ok (Firmware.launch_update fw1 ~handle ~pfn:p2);
  let _ = ok (Firmware.launch_finish fw1 ~handle) in
  let wrapped = ok (Firmware.send_start fw1 ~handle ~target_public:(Firmware.platform_public fw2) ~nonce:3L) in
  let c1 = ok (Firmware.send_update fw1 ~handle ~index:0 ~src_pfn:p1) in
  let c2 = ok (Firmware.send_update fw1 ~handle ~index:1 ~src_pfn:p2) in
  let measurement = ok (Firmware.send_finish fw1 ~handle) in
  let h2 =
    ok (Firmware.receive_start fw2 ~wrapped ~origin_public:(Firmware.platform_public fw1)
          ~nonce:3L ~policy:0 ())
  in
  let d1 = Hw.Machine.alloc_frame m2 and d2 = Hw.Machine.alloc_frame m2 in
  (* Hypervisor swaps the page order. *)
  ok (Firmware.receive_update fw2 ~handle:h2 ~index:0 ~cipher:c2 ~dst_pfn:d1);
  ok (Firmware.receive_update fw2 ~handle:h2 ~index:1 ~cipher:c1 ~dst_pfn:d2);
  Alcotest.(check bool) "reordering detected" true
    (Result.is_error (Firmware.receive_finish fw2 ~handle:h2 ~expected:measurement))

let test_send_requires_running () =
  let _, fw = env () in
  let handle = ok (Firmware.launch_start fw ~policy:0) in
  Alcotest.(check bool) "send during launch fails" true
    (Result.is_error (Firmware.send_start fw ~handle ~target_public:(Firmware.platform_public fw) ~nonce:0L))

(* --- helper contexts and the I/O reuse ------------------------------------- *)

let running_guest m fw content =
  let handle = ok (Firmware.launch_start fw ~policy:Firmware.policy_nodbg) in
  let pfn = Hw.Machine.alloc_frame m in
  Hw.Physmem.write_raw m.Hw.Machine.mem pfn ~off:0 content;
  ok (Firmware.launch_update fw ~handle ~pfn);
  let _ = ok (Firmware.launch_finish fw ~handle) in
  (handle, pfn)

let test_launch_shared_kvek () =
  let m, fw = env () in
  let handle, pfn = running_guest m fw (page 'S') in
  let helper = ok (Firmware.launch_shared fw ~handle) in
  ok (Firmware.activate fw ~handle:helper ~asid:8);
  Alcotest.(check string) "shared kvek" (String.make 16 'S')
    (Bytes.to_string (Hw.Memctrl.read m.Hw.Machine.ctrl (Hw.Memctrl.Asid 8) pfn ~off:0 ~len:16))

let test_sev_io_path () =
  let m, fw = env () in
  let handle, md_pfn = running_guest m fw (page '\000') in
  let s = ok (Firmware.launch_shared fw ~handle) in
  let platform = Firmware.platform_public fw in
  let wrapped = ok (Firmware.send_start fw ~handle:s ~target_public:platform ~nonce:9L) in
  let r = ok (Firmware.receive_start fw ~wrapped ~origin_public:platform ~nonce:9L
                ~policy:0 ~kvek_of:handle ()) in
  ok (Firmware.activate fw ~handle ~asid:2);
  Hw.Memctrl.write m.Hw.Machine.ctrl (Hw.Memctrl.Asid 2) md_pfn ~off:0
    (Bytes.of_string "disk sector data");
  let cipher = ok (Firmware.send_update_io fw ~handle:s ~nonce:42L ~src_pfn:md_pfn ~len:16) in
  Alcotest.(check bool) "ciphertext differs" false (Bytes.to_string cipher = "disk sector data");
  Hw.Memctrl.write m.Hw.Machine.ctrl (Hw.Memctrl.Asid 2) md_pfn ~off:0 (Bytes.make 16 '\000');
  ok (Firmware.receive_update_io fw ~handle:r ~nonce:42L ~cipher ~dst_pfn:md_pfn);
  Alcotest.(check string) "roundtrip through helpers" "disk sector data"
    (Bytes.to_string (Hw.Memctrl.read m.Hw.Machine.ctrl (Hw.Memctrl.Asid 2) md_pfn ~off:0 ~len:16))

let test_io_nonce_mismatch () =
  let m, fw = env () in
  let handle, md_pfn = running_guest m fw (page '\000') in
  let s = ok (Firmware.launch_shared fw ~handle) in
  let platform = Firmware.platform_public fw in
  let wrapped = ok (Firmware.send_start fw ~handle:s ~target_public:platform ~nonce:10L) in
  let r = ok (Firmware.receive_start fw ~wrapped ~origin_public:platform ~nonce:10L
                ~policy:0 ~kvek_of:handle ()) in
  ok (Firmware.activate fw ~handle ~asid:2);
  Hw.Memctrl.write m.Hw.Machine.ctrl (Hw.Memctrl.Asid 2) md_pfn ~off:0
    (Bytes.of_string "sector-0 payload");
  let cipher = ok (Firmware.send_update_io fw ~handle:s ~nonce:5L ~src_pfn:md_pfn ~len:16) in
  ok (Firmware.receive_update_io fw ~handle:r ~nonce:6L ~cipher ~dst_pfn:md_pfn);
  Alcotest.(check bool) "wrong nonce garbles" false
    (Bytes.to_string (Hw.Memctrl.read m.Hw.Machine.ctrl (Hw.Memctrl.Asid 2) md_pfn ~off:0 ~len:16)
     = "sector-0 payload")

(* --- DBG policy -------------------------------------------------------------- *)

let test_dbg_policy () =
  let m, fw = env () in
  let nodbg_handle, pfn = running_guest m fw (page 'D') in
  Alcotest.(check bool) "NODBG refuses" true
    (Result.is_error (Firmware.dbg_decrypt fw ~handle:nodbg_handle ~pfn));
  let h = ok (Firmware.launch_start fw ~policy:0) in
  let p = Hw.Machine.alloc_frame m in
  Hw.Physmem.write_raw m.Hw.Machine.mem p ~off:0 (page 'E');
  ok (Firmware.launch_update fw ~handle:h ~pfn:p);
  let _ = ok (Firmware.launch_finish fw ~handle:h) in
  let plain = ok (Firmware.dbg_decrypt fw ~handle:h ~pfn:p) in
  Alcotest.(check char) "dbg plaintext" 'E' (Bytes.get plain 0)

(* --- owner tooling ------------------------------------------------------------ *)

let test_owner_prepare () =
  let rng = Rng.create 55L in
  let _, platform = Dh.generate rng in
  let prepared =
    Transport.Owner.prepare ~rng ~platform_public:platform ~policy:1
      ~kernel_pages:[ page 'a'; page 'b' ]
  in
  Alcotest.(check int) "two pages" 2 (List.length prepared.Transport.Owner.image.Transport.pages);
  Alcotest.(check int) "kblk length" 16 (Bytes.length prepared.Transport.Owner.kblk);
  let _, cipher0 = List.hd prepared.Transport.Owner.image.Transport.pages in
  Alcotest.(check bool) "page encrypted" false
    (Bytes.get cipher0 200 = 'a' && Bytes.get cipher0 201 = 'a')

let test_owner_page_size_check () =
  let rng = Rng.create 56L in
  let _, platform = Dh.generate rng in
  Alcotest.check_raises "short kernel page"
    (Invalid_argument "Transport.Owner.prepare: kernel pages must be page-sized") (fun () ->
      ignore (Transport.Owner.prepare ~rng ~platform_public:platform ~policy:0
                ~kernel_pages:[ Bytes.create 100 ]))

let test_transport_page_cipher () =
  let tek = Transport.tek_key (Bytes.make 16 'T') in
  let plain = page 'p' in
  let c = Transport.page_cipher ~tek ~index:3 plain in
  Alcotest.(check bool) "encrypts" false (Bytes.equal c plain);
  Alcotest.(check bool) "roundtrip" true (Bytes.equal (Transport.page_plain ~tek ~index:3 c) plain);
  Alcotest.(check bool) "index-bound" false
    (Bytes.equal (Transport.page_plain ~tek ~index:4 c) plain)

let test_master_secret_symmetry () =
  let rng = Rng.create 57L in
  let sa, pa = Dh.generate rng in
  let sb, pb = Dh.generate rng in
  let k1 = Transport.derive_master_secret ~secret:sa ~peer_public:pb ~nonce:5L in
  let k2 = Transport.derive_master_secret ~secret:sb ~peer_public:pa ~nonce:5L in
  Alcotest.(check bool) "symmetric" true (Bytes.equal k1 k2);
  let k3 = Transport.derive_master_secret ~secret:sa ~peer_public:pb ~nonce:6L in
  Alcotest.(check bool) "nonce-bound" false (Bytes.equal k1 k3)

let () =
  Alcotest.run "sev"
    [ ( "state",
        [ Alcotest.test_case "transitions" `Quick test_state_transitions;
          Alcotest.test_case "require" `Quick test_require ] );
      ( "init-launch",
        [ Alcotest.test_case "double init" `Quick test_double_init;
          Alcotest.test_case "commands need init" `Quick test_commands_need_init;
          Alcotest.test_case "launch flow" `Quick test_launch_flow;
          Alcotest.test_case "wrong-state update" `Quick test_launch_update_wrong_state;
          Alcotest.test_case "measurement sensitivity" `Quick test_launch_measurement_sensitive;
          Alcotest.test_case "measure module" `Quick test_measure_module ] );
      ( "activation",
        [ Alcotest.test_case "lifecycle" `Quick test_activate_lifecycle;
          Alcotest.test_case "rebinding permitted (faithful)" `Quick
            test_activate_rebinding_is_permitted;
          Alcotest.test_case "unknown handle" `Quick test_unknown_handle ] );
      ( "send-receive",
        [ Alcotest.test_case "roundtrip" `Quick test_send_receive_roundtrip;
          Alcotest.test_case "wrong platform" `Quick test_receive_wrong_platform;
          Alcotest.test_case "tampered page" `Quick test_receive_tampered_page;
          Alcotest.test_case "reordered pages" `Quick test_receive_reordered_pages;
          Alcotest.test_case "send needs RUNNING" `Quick test_send_requires_running ] );
      ( "helpers-io",
        [ Alcotest.test_case "launch_shared kvek" `Quick test_launch_shared_kvek;
          Alcotest.test_case "sev io path" `Quick test_sev_io_path;
          Alcotest.test_case "nonce mismatch" `Quick test_io_nonce_mismatch ] );
      ("dbg", [ Alcotest.test_case "policy" `Quick test_dbg_policy ]);
      ( "transport",
        [ Alcotest.test_case "owner prepare" `Quick test_owner_prepare;
          Alcotest.test_case "page-size check" `Quick test_owner_page_size_check;
          Alcotest.test_case "page cipher" `Quick test_transport_page_cipher;
          Alcotest.test_case "master secret" `Quick test_master_secret_symmetry ] ) ]
