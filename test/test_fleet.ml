(* Tests for the fleet runner: the chunked-scheduling partition property,
   pool edge cases (empty job list, more domains than jobs, failing jobs),
   per-shard trace isolation, and the determinism contract — the fleet
   benchmark's merged artifacts and the fault matrix's verdicts must be
   byte-identical for any domain count (SCALING.md). *)

module Pool = Fidelius_fleet.Pool
module Merge = Fidelius_fleet.Merge
module Trace = Fidelius_obs.Trace
module Json = Fidelius_obs.Json
module W = Fidelius_workloads
module Matrix = Fidelius_inject_matrix.Matrix
module Site = Fidelius_inject.Site

(* --- chunks: the static schedule ----------------------------------------- *)

let test_chunks_partition =
  QCheck.Test.make ~count:200 ~name:"chunks partition 0..njobs-1 evenly"
    QCheck.(pair (int_bound 200) (int_range 1 32))
    (fun (njobs, ndomains) ->
      let cs = Pool.chunks ~njobs ~ndomains in
      let covered = List.concat_map (fun (s, l) -> List.init l (fun i -> s + i)) cs in
      let lens = List.map snd cs in
      let lo = List.fold_left min max_int lens and hi = List.fold_left max 0 lens in
      (* contiguous in-order cover of the job range... *)
      covered = List.init njobs (fun j -> j)
      (* ...with chunk sizes differing by at most one... *)
      && (njobs = 0 || hi - lo <= 1)
      (* ...and never more domains than jobs. *)
      && List.length cs <= max njobs 1)

let test_chunks_pure () =
  Alcotest.(check bool) "same inputs, same schedule" true
    (Pool.chunks ~njobs:17 ~ndomains:4 = Pool.chunks ~njobs:17 ~ndomains:4);
  Alcotest.(check (list (pair int int))) "13 jobs over 4 domains"
    [ (0, 4); (4, 3); (7, 3); (10, 3) ]
    (Pool.chunks ~njobs:13 ~ndomains:4);
  Alcotest.check_raises "njobs < 0 rejected"
    (Invalid_argument "Pool.chunks: njobs must be >= 0") (fun () ->
      ignore (Pool.chunks ~njobs:(-1) ~ndomains:2));
  Alcotest.check_raises "ndomains < 1 rejected"
    (Invalid_argument "Pool.chunks: ndomains must be >= 1") (fun () ->
      ignore (Pool.chunks ~njobs:4 ~ndomains:0))

(* --- map: order, edge cases, failure ------------------------------------- *)

let test_map_canonical_order () =
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "squares in job order on %d domains" domains)
        (List.init 23 (fun j -> j * j))
        (Pool.map ~domains ~njobs:23 (fun j -> j * j)))
    [ 1; 2; 7; 64 ]

let test_map_empty () =
  Alcotest.(check (list int)) "njobs = 0 is []" [] (Pool.map ~domains:4 ~njobs:0 (fun j -> j))

let test_map_fewer_jobs_than_domains () =
  Alcotest.(check (list int)) "2 jobs on 8 domains" [ 0; 10 ]
    (Pool.map ~domains:8 ~njobs:2 (fun j -> j * 10))

let test_map_list () =
  Alcotest.(check (list string)) "map_list preserves list order"
    [ "a!"; "b!"; "c!" ]
    (Pool.map_list ~domains:2 (fun s -> s ^ "!") [ "a"; "b"; "c" ])

let test_map_failure_deterministic () =
  (* Jobs 1 and 3 raise, on different shards; the pool must finish every
     other job and then report the LOWEST failing index, whichever domain
     crashed first. *)
  let completed = Atomic.make 0 in
  let attempt () =
    Pool.map ~domains:2 ~njobs:5 (fun j ->
        if j = 1 || j = 3 then failwith (Printf.sprintf "job %d boom" j)
        else (Atomic.incr completed; j))
  in
  (match attempt () with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Pool.Job_failed { job; exn = Failure m } ->
      Alcotest.(check int) "lowest failing job reported" 1 job;
      Alcotest.(check string) "original exception preserved" "job 1 boom" m
  | exception e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e));
  Alcotest.(check int) "non-failing jobs all completed" 3 (Atomic.get completed)

let test_map_validates () =
  Alcotest.check_raises "domains < 1 rejected"
    (Invalid_argument "Pool.map: domains must be >= 1") (fun () ->
      ignore (Pool.map ~domains:0 ~njobs:3 (fun j -> j)))

(* --- map_with: worker-lifetime state -------------------------------------- *)

let test_map_with_init_finish_once_per_worker () =
  (* init and finish must each run exactly once per worker domain, and
     every job on a worker must see the state its init returned. *)
  let njobs = 13 and domains = 4 in
  let nworkers = Pool.workers ~njobs ~ndomains:domains in
  let inits = Atomic.make 0 and finishes = Atomic.make 0 in
  let results =
    Pool.map_with ~domains ~njobs
      ~init:(fun w -> Atomic.incr inits; (w, ref 0))
      ~finish:(fun w (w', jobs_seen) ->
        Atomic.incr finishes;
        Alcotest.(check int) "finish sees its own worker's state" w w';
        Alcotest.(check bool) "worker ran at least one job" true (!jobs_seen > 0))
      (fun (w, jobs_seen) j -> incr jobs_seen; (w, j))
  in
  Alcotest.(check int) "one init per worker" nworkers (Atomic.get inits);
  Alcotest.(check int) "one finish per worker" nworkers (Atomic.get finishes);
  Alcotest.(check (list int)) "jobs in canonical order"
    (List.init njobs (fun j -> j))
    (List.map snd results);
  (* A worker's jobs are its chunk: contiguous, so each worker index must
     tag a contiguous run of job indices. *)
  let chunk_workers = List.map fst results in
  let deduped =
    List.fold_left (fun acc w -> match acc with x :: _ when x = w -> acc | _ -> w :: acc) []
      chunk_workers
  in
  Alcotest.(check int) "each worker owns one contiguous job range" nworkers
    (List.length deduped)

let test_map_with_shared_state_sequential () =
  (* Jobs on one worker reuse the same state sequentially: a per-worker
     counter must count that worker's jobs without ever racing. *)
  let rows =
    Pool.map_with ~domains:2 ~njobs:10
      ~init:(fun _ -> ref 0)
      (fun c j -> incr c; (j, !c))
  in
  List.iter
    (fun (j, nth) ->
      Alcotest.(check bool)
        (Printf.sprintf "job %d is its worker's %dth (1-based, within chunk)" j nth)
        true
        (nth >= 1 && nth <= 10))
    rows;
  (* First job of the run is always some worker's first. *)
  Alcotest.(check int) "job 0 is its worker's first" 1 (List.assoc 0 rows)

let test_map_with_finish_runs_on_job_failure () =
  let finished = Atomic.make 0 in
  (match
     Pool.map_with ~domains:2 ~njobs:6
       ~init:(fun _ -> ())
       ~finish:(fun _ () -> Atomic.incr finished)
       (fun () j -> if j = 2 then failwith "boom" else j)
   with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Pool.Job_failed { job; _ } ->
      Alcotest.(check int) "lowest failing job" 2 job);
  Alcotest.(check int) "finish ran on every worker despite the failure"
    (Pool.workers ~njobs:6 ~ndomains:2)
    (Atomic.get finished)

let test_map_with_validates () =
  Alcotest.check_raises "domains < 1 rejected"
    (Invalid_argument "Pool.map_with: domains must be >= 1") (fun () ->
      ignore
        (Pool.map_with ~domains:0 ~njobs:3 ~init:(fun _ -> ()) (fun () j -> j)))

(* --- per-shard trace isolation ------------------------------------------- *)

let test_shard_trace_isolation () =
  (* A recording on the caller's domain must be invisible to pool jobs
     (they start from pristine DLS state), and their captures must not
     perturb it. *)
  Trace.enable ();
  Trace.emit (Trace.Mark "outer");
  let inside =
    Pool.map ~domains:2 ~njobs:4 (fun j ->
        let enabled_at_entry = Trace.enabled () in
        let (), entries = Trace.capture (fun () -> Trace.emit (Trace.Mark "inner")) in
        (enabled_at_entry, List.length entries, j))
  in
  let outer = Trace.entries () in
  Trace.disable ();
  Trace.clear ();
  List.iter
    (fun (enabled_at_entry, n, j) ->
      Alcotest.(check bool)
        (Printf.sprintf "job %d starts with tracing off" j)
        false enabled_at_entry;
      Alcotest.(check int) (Printf.sprintf "job %d captured its own event" j) 1 n)
    inside;
  Alcotest.(check int) "outer recording untouched by shards" 1 (List.length outer)

(* --- merge helpers -------------------------------------------------------- *)

let test_sum_counts () =
  Alcotest.(check (list (pair string int))) "pointwise sum, canonical order"
    [ ("dram", 12); ("gate", 5); ("tlb", 5) ]
    (Merge.sum_counts [ [ ("dram", 4); ("tlb", 5) ]; [ ("dram", 8); ("gate", 5) ] ])

let test_chrome_of_shards_shape () =
  let doc = Merge.chrome_of_shards [ ("vm0", []); ("vm1", []) ] in
  (match Json.member "traceEvents" doc with
  | Some (Json.Arr events) ->
      (* one process_name metadata event per shard, pids 1 and 2 *)
      Alcotest.(check int) "two metadata events" 2 (List.length events);
      List.iteri
        (fun k e ->
          Alcotest.(check (option bool)) "is metadata" (Some true)
            (Option.map (( = ) (Json.Str "M")) (Json.member "ph" e));
          Alcotest.(check (option bool))
            (Printf.sprintf "shard %d gets pid %d" k (k + 1))
            (Some true)
            (Option.map (( = ) (Json.Int (k + 1))) (Json.member "pid" e)))
        events
  | _ -> Alcotest.fail "traceEvents missing");
  match Json.member "otherData" doc with
  | Some other ->
      Alcotest.(check (option bool)) "shard count" (Some true)
        (Option.map (( = ) (Json.Int 2)) (Json.member "shards" other))
  | None -> Alcotest.fail "otherData missing"

(* --- reusable rings: wraparound and reuse hygiene -------------------------- *)

let test_ring_wraparound_and_reuse () =
  let r = Trace.ring ~capacity:4 () in
  Trace.record_into r (fun () ->
      for i = 0 to 9 do
        Trace.emit (Trace.Mark (Printf.sprintf "m%d" i))
      done);
  Alcotest.(check int) "emitted counts past capacity" 10 (Trace.ring_emitted r);
  Alcotest.(check int) "dropped = emitted - capacity" 6 (Trace.ring_dropped r);
  Alcotest.(check int) "length capped at capacity" 4 (Trace.ring_length r);
  let seqs = List.map (fun (e : Trace.entry) -> e.Trace.seq) (Trace.ring_entries r) in
  Alcotest.(check (list int)) "survivors are the newest, oldest first" [ 6; 7; 8; 9 ] seqs;
  (* ring_iter must agree with ring_entries byte for byte. *)
  let via_iter = ref [] in
  Trace.ring_iter r (fun e -> via_iter := e :: !via_iter);
  Alcotest.(check bool) "ring_iter = ring_entries" true
    (List.rev !via_iter = Trace.ring_entries r);
  (* Reuse after a wrapped run: nothing stale may leak into the next job. *)
  Trace.record_into r (fun () -> Trace.emit (Trace.Mark "fresh"));
  Alcotest.(check int) "reused ring: emitted reset" 1 (Trace.ring_emitted r);
  Alcotest.(check int) "reused ring: dropped reset" 0 (Trace.ring_dropped r);
  (match Trace.ring_entries r with
  | [ { Trace.seq = 0; event = Trace.Mark "fresh"; _ } ] -> ()
  | _ -> Alcotest.fail "stale entries leaked across ring reuse");
  Alcotest.check_raises "capacity <= 0 rejected"
    (Invalid_argument "Trace.ring: capacity must be positive") (fun () ->
      ignore (Trace.ring ~capacity:0 ()))

(* --- streaming merge: header/footer composition and spill concat ----------- *)

let test_chrome_streaming_envelope () =
  (* The streamed document (header ^ fragments ^ footer) must be
     byte-identical to the in-memory Json.to_string rendering — this is
     what makes spill-file concatenation a legal merge. *)
  let mk label n =
    ( label,
      snd (Trace.capture (fun () ->
               for i = 0 to n - 1 do
                 Trace.emit (Trace.Mark (Printf.sprintf "%s-%d" label i))
               done)) )
  in
  let shards = [ mk "vm0:a" 3; mk "vm1:b" 0; mk "vm2:c" 2 ] in
  let in_memory = Json.to_string (Merge.chrome_of_shards shards) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf Merge.chrome_header;
  List.iteri
    (fun k (label, entries) ->
      if k > 0 then Buffer.add_char buf ',';
      Json.to_buffer buf (Merge.process_meta ~pid:(k + 1) label);
      List.iter
        (fun e ->
          Buffer.add_char buf ',';
          Json.to_buffer buf (Trace.chrome_event ~pid:(k + 1) e))
        entries)
    shards;
  Buffer.add_string buf
    (Merge.chrome_footer
       ~shards:(List.map (fun (l, es) -> (l, List.length es)) shards));
  Alcotest.(check string) "streamed envelope = in-memory rendering" in_memory
    (Buffer.contents buf)

let test_concat_spills () =
  let dir = Filename.temp_file "fleet-spill" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let spill n contents =
    let p = Filename.concat dir (Printf.sprintf "s-%d" n) in
    let oc = open_out_bin p in
    output_string oc contents; close_out oc; p
  in
  let paths = [ spill 0 "alpha,"; spill 1 ""; spill 2 "beta" ] in
  let out = Filename.concat dir "merged" in
  Merge.concat_spills ~out ~header:"H[" ~footer:"]F" paths;
  let ic = open_in_bin out in
  let merged = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "header + spills in order + footer" "H[alpha,beta]F" merged;
  List.iter Sys.remove (out :: paths);
  Sys.rmdir dir

(* --- the determinism contract --------------------------------------------- *)

(* The arena-reuse property, at the pool/ring level: a run whose workers
   reuse one ring + one scratch buffer across all their jobs must produce
   bytes identical to a run that captures into fresh state per job, for
   random (njobs, ndomains, seed). The job itself is seed-dependent so
   reuse bugs (stale counters, stale clock, stale scratch) have plenty of
   surface to corrupt. *)
let test_arena_reuse_byte_identical =
  QCheck.Test.make ~count:40 ~name:"arena reuse is byte-invisible"
    QCheck.(triple (int_bound 24) (int_range 1 6) (int_bound 1000))
    (fun (njobs, ndomains, seed) ->
      let job_events j =
        (* deterministic, seed- and job-dependent event stream *)
        let n = 1 + ((seed + (j * 7)) mod 5) in
        for i = 0 to n - 1 do
          Trace.emit (Trace.Mark (Printf.sprintf "s%d-j%d-e%d" seed j i))
        done;
        n
      in
      let serialize buf j entries =
        Buffer.clear buf;
        List.iter
          (fun e -> Json.to_buffer buf (Trace.chrome_event ~pid:(j + 1) e))
          entries;
        Buffer.contents buf
      in
      let fresh =
        Pool.map ~domains:ndomains ~njobs (fun j ->
            let n, entries = Trace.capture (fun () -> job_events j) in
            (n, serialize (Buffer.create 64) j entries))
      in
      let reused =
        Pool.map_with ~domains:ndomains ~njobs
          ~init:(fun _ -> (Trace.ring ~capacity:8 (), Buffer.create 64))
          (fun (ring, buf) j ->
            let n = Trace.record_into ring (fun () -> job_events j) in
            (n, serialize buf j (Trace.ring_entries ring)))
      in
      fresh = reused)

(* The same property end-to-end: run_stream (arenas + spill files) must
   write byte-for-byte what run (fresh allocation, in-memory merge) would
   serialize, for random population and domain counts. *)
let test_stream_matches_run =
  QCheck.Test.make ~count:6 ~name:"run_stream artifacts = run artifacts"
    QCheck.(pair (int_bound 5) (int_range 1 3))
    (fun (vms, domains) ->
      let csv_f = Filename.temp_file "fleet" ".csv" in
      let trc_f = Filename.temp_file "fleet" ".json" in
      let read f = let ic = open_in_bin f in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic; s
      in
      Fun.protect
        ~finally:(fun () -> Sys.remove csv_f; Sys.remove trc_f)
        (fun () ->
          let _summary =
            W.Fleetbench.run_stream ~domains ~vms ~csv:csv_f ~trace:trc_f ()
          in
          let t = W.Fleetbench.run ~domains:1 ~vms () in
          read csv_f = W.Fleetbench.csv t
          && read trc_f = Json.to_string (W.Fleetbench.chrome t) ^ "\n"))

let test_fleetbench_domain_count_invariance () =
  let a = W.Fleetbench.run ~domains:1 ~vms:3 () in
  let b = W.Fleetbench.run ~domains:3 ~vms:3 () in
  Alcotest.(check string) "per-VM CSV byte-identical across domain counts"
    (W.Fleetbench.csv a) (W.Fleetbench.csv b);
  Alcotest.(check string) "merged Chrome trace byte-identical across domain counts"
    (Json.to_string (W.Fleetbench.chrome a))
    (Json.to_string (W.Fleetbench.chrome b));
  List.iter
    (fun (r : W.Fleetbench.vm_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "vm %d recorded trace events" r.W.Fleetbench.vm)
        true (r.W.Fleetbench.events > 0))
    a.W.Fleetbench.rows

let reduced_attacks () =
  match Fidelius_attacks.Suite.all with
  | a :: b :: _ -> [ a; b ]
  | _ -> Alcotest.fail "attack suite too small"

let test_matrix_domain_count_invariance () =
  let run domains =
    Matrix.run ~seed:11L ~domains
      ~sites:[ Site.Snapshot_truncate; Site.Fw_drop ]
      ~attacks:(reduced_attacks ()) ()
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "identical report on 1 and 4 domains" true (r1 = r4)

let () =
  Alcotest.run "fleet"
    [ ( "chunks",
        [ QCheck_alcotest.to_alcotest test_chunks_partition;
          Alcotest.test_case "pure and validated" `Quick test_chunks_pure ] );
      ( "pool",
        [ Alcotest.test_case "canonical order" `Quick test_map_canonical_order;
          Alcotest.test_case "empty job list" `Quick test_map_empty;
          Alcotest.test_case "fewer jobs than domains" `Quick test_map_fewer_jobs_than_domains;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "deterministic failure" `Quick test_map_failure_deterministic;
          Alcotest.test_case "validates domains" `Quick test_map_validates ] );
      ( "map_with",
        [ Alcotest.test_case "init/finish once per worker" `Quick
            test_map_with_init_finish_once_per_worker;
          Alcotest.test_case "shared state is sequential" `Quick
            test_map_with_shared_state_sequential;
          Alcotest.test_case "finish survives job failure" `Quick
            test_map_with_finish_runs_on_job_failure;
          Alcotest.test_case "validates domains" `Quick test_map_with_validates ] );
      ( "isolation",
        [ Alcotest.test_case "shard traces isolated" `Quick test_shard_trace_isolation ] );
      ( "arena",
        [ Alcotest.test_case "ring wraparound and reuse" `Quick
            test_ring_wraparound_and_reuse;
          QCheck_alcotest.to_alcotest test_arena_reuse_byte_identical ] );
      ( "merge",
        [ Alcotest.test_case "sum_counts" `Quick test_sum_counts;
          Alcotest.test_case "chrome shards" `Quick test_chrome_of_shards_shape;
          Alcotest.test_case "streaming envelope" `Quick test_chrome_streaming_envelope;
          Alcotest.test_case "concat_spills" `Quick test_concat_spills ] );
      ( "determinism",
        [ Alcotest.test_case "fleet bench artifacts" `Quick
            test_fleetbench_domain_count_invariance;
          QCheck_alcotest.to_alcotest test_stream_matches_run;
          Alcotest.test_case "fault matrix verdicts" `Quick
            test_matrix_domain_count_invariance ] ) ]
