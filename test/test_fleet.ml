(* Tests for the fleet runner: the chunked-scheduling partition property,
   pool edge cases (empty job list, more domains than jobs, failing jobs),
   per-shard trace isolation, and the determinism contract — the fleet
   benchmark's merged artifacts and the fault matrix's verdicts must be
   byte-identical for any domain count (SCALING.md). *)

module Pool = Fidelius_fleet.Pool
module Merge = Fidelius_fleet.Merge
module Trace = Fidelius_obs.Trace
module Json = Fidelius_obs.Json
module W = Fidelius_workloads
module Matrix = Fidelius_inject_matrix.Matrix
module Site = Fidelius_inject.Site

(* --- chunks: the static schedule ----------------------------------------- *)

let test_chunks_partition =
  QCheck.Test.make ~count:200 ~name:"chunks partition 0..njobs-1 evenly"
    QCheck.(pair (int_bound 200) (int_range 1 32))
    (fun (njobs, ndomains) ->
      let cs = Pool.chunks ~njobs ~ndomains in
      let covered = List.concat_map (fun (s, l) -> List.init l (fun i -> s + i)) cs in
      let lens = List.map snd cs in
      let lo = List.fold_left min max_int lens and hi = List.fold_left max 0 lens in
      (* contiguous in-order cover of the job range... *)
      covered = List.init njobs (fun j -> j)
      (* ...with chunk sizes differing by at most one... *)
      && (njobs = 0 || hi - lo <= 1)
      (* ...and never more domains than jobs. *)
      && List.length cs <= max njobs 1)

let test_chunks_pure () =
  Alcotest.(check bool) "same inputs, same schedule" true
    (Pool.chunks ~njobs:17 ~ndomains:4 = Pool.chunks ~njobs:17 ~ndomains:4);
  Alcotest.(check (list (pair int int))) "13 jobs over 4 domains"
    [ (0, 4); (4, 3); (7, 3); (10, 3) ]
    (Pool.chunks ~njobs:13 ~ndomains:4);
  Alcotest.check_raises "njobs < 0 rejected"
    (Invalid_argument "Pool.chunks: njobs must be >= 0") (fun () ->
      ignore (Pool.chunks ~njobs:(-1) ~ndomains:2));
  Alcotest.check_raises "ndomains < 1 rejected"
    (Invalid_argument "Pool.chunks: ndomains must be >= 1") (fun () ->
      ignore (Pool.chunks ~njobs:4 ~ndomains:0))

(* --- map: order, edge cases, failure ------------------------------------- *)

let test_map_canonical_order () =
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "squares in job order on %d domains" domains)
        (List.init 23 (fun j -> j * j))
        (Pool.map ~domains ~njobs:23 (fun j -> j * j)))
    [ 1; 2; 7; 64 ]

let test_map_empty () =
  Alcotest.(check (list int)) "njobs = 0 is []" [] (Pool.map ~domains:4 ~njobs:0 (fun j -> j))

let test_map_fewer_jobs_than_domains () =
  Alcotest.(check (list int)) "2 jobs on 8 domains" [ 0; 10 ]
    (Pool.map ~domains:8 ~njobs:2 (fun j -> j * 10))

let test_map_list () =
  Alcotest.(check (list string)) "map_list preserves list order"
    [ "a!"; "b!"; "c!" ]
    (Pool.map_list ~domains:2 (fun s -> s ^ "!") [ "a"; "b"; "c" ])

let test_map_failure_deterministic () =
  (* Jobs 1 and 3 raise, on different shards; the pool must finish every
     other job and then report the LOWEST failing index, whichever domain
     crashed first. *)
  let completed = Atomic.make 0 in
  let attempt () =
    Pool.map ~domains:2 ~njobs:5 (fun j ->
        if j = 1 || j = 3 then failwith (Printf.sprintf "job %d boom" j)
        else (Atomic.incr completed; j))
  in
  (match attempt () with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Pool.Job_failed { job; exn = Failure m } ->
      Alcotest.(check int) "lowest failing job reported" 1 job;
      Alcotest.(check string) "original exception preserved" "job 1 boom" m
  | exception e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e));
  Alcotest.(check int) "non-failing jobs all completed" 3 (Atomic.get completed)

let test_map_validates () =
  Alcotest.check_raises "domains < 1 rejected"
    (Invalid_argument "Pool.map: domains must be >= 1") (fun () ->
      ignore (Pool.map ~domains:0 ~njobs:3 (fun j -> j)))

(* --- per-shard trace isolation ------------------------------------------- *)

let test_shard_trace_isolation () =
  (* A recording on the caller's domain must be invisible to pool jobs
     (they start from pristine DLS state), and their captures must not
     perturb it. *)
  Trace.enable ();
  Trace.emit (Trace.Mark "outer");
  let inside =
    Pool.map ~domains:2 ~njobs:4 (fun j ->
        let enabled_at_entry = Trace.enabled () in
        let (), entries = Trace.capture (fun () -> Trace.emit (Trace.Mark "inner")) in
        (enabled_at_entry, List.length entries, j))
  in
  let outer = Trace.entries () in
  Trace.disable ();
  Trace.clear ();
  List.iter
    (fun (enabled_at_entry, n, j) ->
      Alcotest.(check bool)
        (Printf.sprintf "job %d starts with tracing off" j)
        false enabled_at_entry;
      Alcotest.(check int) (Printf.sprintf "job %d captured its own event" j) 1 n)
    inside;
  Alcotest.(check int) "outer recording untouched by shards" 1 (List.length outer)

(* --- merge helpers -------------------------------------------------------- *)

let test_sum_counts () =
  Alcotest.(check (list (pair string int))) "pointwise sum, canonical order"
    [ ("dram", 12); ("gate", 5); ("tlb", 5) ]
    (Merge.sum_counts [ [ ("dram", 4); ("tlb", 5) ]; [ ("dram", 8); ("gate", 5) ] ])

let test_chrome_of_shards_shape () =
  let doc = Merge.chrome_of_shards [ ("vm0", []); ("vm1", []) ] in
  (match Json.member "traceEvents" doc with
  | Some (Json.Arr events) ->
      (* one process_name metadata event per shard, pids 1 and 2 *)
      Alcotest.(check int) "two metadata events" 2 (List.length events);
      List.iteri
        (fun k e ->
          Alcotest.(check (option bool)) "is metadata" (Some true)
            (Option.map (( = ) (Json.Str "M")) (Json.member "ph" e));
          Alcotest.(check (option bool))
            (Printf.sprintf "shard %d gets pid %d" k (k + 1))
            (Some true)
            (Option.map (( = ) (Json.Int (k + 1))) (Json.member "pid" e)))
        events
  | _ -> Alcotest.fail "traceEvents missing");
  match Json.member "otherData" doc with
  | Some other ->
      Alcotest.(check (option bool)) "shard count" (Some true)
        (Option.map (( = ) (Json.Int 2)) (Json.member "shards" other))
  | None -> Alcotest.fail "otherData missing"

(* --- the determinism contract --------------------------------------------- *)

let test_fleetbench_domain_count_invariance () =
  let a = W.Fleetbench.run ~domains:1 ~vms:3 () in
  let b = W.Fleetbench.run ~domains:3 ~vms:3 () in
  Alcotest.(check string) "per-VM CSV byte-identical across domain counts"
    (W.Fleetbench.csv a) (W.Fleetbench.csv b);
  Alcotest.(check string) "merged Chrome trace byte-identical across domain counts"
    (Json.to_string (W.Fleetbench.chrome a))
    (Json.to_string (W.Fleetbench.chrome b));
  List.iter
    (fun (r : W.Fleetbench.vm_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "vm %d recorded trace events" r.W.Fleetbench.vm)
        true (r.W.Fleetbench.events > 0))
    a.W.Fleetbench.rows

let reduced_attacks () =
  match Fidelius_attacks.Suite.all with
  | a :: b :: _ -> [ a; b ]
  | _ -> Alcotest.fail "attack suite too small"

let test_matrix_domain_count_invariance () =
  let run domains =
    Matrix.run ~seed:11L ~domains
      ~sites:[ Site.Snapshot_truncate; Site.Fw_drop ]
      ~attacks:(reduced_attacks ()) ()
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "identical report on 1 and 4 domains" true (r1 = r4)

let () =
  Alcotest.run "fleet"
    [ ( "chunks",
        [ QCheck_alcotest.to_alcotest test_chunks_partition;
          Alcotest.test_case "pure and validated" `Quick test_chunks_pure ] );
      ( "pool",
        [ Alcotest.test_case "canonical order" `Quick test_map_canonical_order;
          Alcotest.test_case "empty job list" `Quick test_map_empty;
          Alcotest.test_case "fewer jobs than domains" `Quick test_map_fewer_jobs_than_domains;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "deterministic failure" `Quick test_map_failure_deterministic;
          Alcotest.test_case "validates domains" `Quick test_map_validates ] );
      ( "isolation",
        [ Alcotest.test_case "shard traces isolated" `Quick test_shard_trace_isolation ] );
      ( "merge",
        [ Alcotest.test_case "sum_counts" `Quick test_sum_counts;
          Alcotest.test_case "chrome shards" `Quick test_chrome_of_shards_shape ] );
      ( "determinism",
        [ Alcotest.test_case "fleet bench artifacts" `Quick
            test_fleetbench_domain_count_invariance;
          Alcotest.test_case "fault matrix verdicts" `Quick
            test_matrix_domain_count_invariance ] ) ]
