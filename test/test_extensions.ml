(* Tests for the Section 8 hardware-suggestion extensions: the Bonsai
   Merkle Tree integrity engine and the customized-key (GEK) API. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Fid = Core.Fidelius
module Bmt = Hw.Bmt
module Rng = Fidelius_crypto.Rng

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* --- BMT (hardware layer) -------------------------------------------------- *)

let bmt_env n =
  let m = Hw.Machine.create ~nr_frames:128 ~seed:13L () in
  let frames = Hw.Machine.alloc_frames m n in
  List.iteri
    (fun i pfn ->
      Hw.Physmem.write_raw m.Hw.Machine.mem pfn ~off:0
        (Bytes.make Hw.Addr.page_size (Char.chr (65 + i))))
    frames;
  (m, frames, Bmt.create m ~frames)

let test_bmt_clean_verifies () =
  let _, frames, bmt = bmt_env 5 in
  Alcotest.(check bool) "all frames verify" true (Result.is_ok (Bmt.verify_all bmt));
  List.iter
    (fun pfn -> Alcotest.(check bool) "single verify" true (Result.is_ok (Bmt.verify bmt pfn)))
    frames

let test_bmt_detects_any_flip =
  QCheck.Test.make ~name:"BMT detects any single-bit flip in any frame" ~count:60
    (QCheck.triple (QCheck.int_bound 4) (QCheck.int_bound (Hw.Addr.page_size - 1))
       (QCheck.int_bound 7))
    (fun (which, off, bit) ->
      let m, frames, bmt = bmt_env 5 in
      let victim = List.nth frames which in
      Hw.Physmem.flip_bit m.Hw.Machine.mem victim ~off ~bit;
      Result.is_error (Bmt.verify bmt victim)
      && Result.is_error (Bmt.verify_all bmt)
      (* ...and the other frames still verify individually *)
      && List.for_all
           (fun pfn -> pfn = victim || Result.is_ok (Bmt.verify bmt pfn))
           frames)

let test_bmt_update_rebinds () =
  let m, frames, bmt = bmt_env 3 in
  let pfn = List.nth frames 1 in
  let old_root = Bmt.root bmt in
  Hw.Physmem.write_raw m.Hw.Machine.mem pfn ~off:10 (Bytes.of_string "legit update");
  Alcotest.(check bool) "stale tree flags the write" true (Result.is_error (Bmt.verify bmt pfn));
  Bmt.update bmt pfn;
  Alcotest.(check bool) "verifies after update" true (Result.is_ok (Bmt.verify bmt pfn));
  Alcotest.(check bool) "root changed" false (Bytes.equal old_root (Bmt.root bmt));
  Alcotest.(check bool) "whole tree consistent" true (Result.is_ok (Bmt.verify_all bmt))

let test_bmt_uncovered_fails_closed () =
  let _, _, bmt = bmt_env 3 in
  Alcotest.(check bool) "uncovered frame" true (Result.is_error (Bmt.verify bmt 99));
  Alcotest.(check bool) "covered query" true (not (Bmt.covered bmt 99))

let test_bmt_single_frame_tree () =
  let m, frames, bmt = bmt_env 1 in
  Alcotest.(check bool) "one-leaf tree verifies" true (Result.is_ok (Bmt.verify_all bmt));
  Hw.Physmem.flip_bit m.Hw.Machine.mem (List.hd frames) ~off:0 ~bit:0;
  Alcotest.(check bool) "and detects" true (Result.is_error (Bmt.verify_all bmt))

let test_bmt_odd_width_levels () =
  (* 7 leaves exercises the self-paired odd nodes at every level. *)
  let m, frames, bmt = bmt_env 7 in
  Alcotest.(check bool) "odd tree verifies" true (Result.is_ok (Bmt.verify_all bmt));
  let last = List.nth frames 6 in
  Hw.Physmem.flip_bit m.Hw.Machine.mem last ~off:100 ~bit:5;
  Alcotest.(check bool) "last leaf detected" true (Result.is_error (Bmt.verify bmt last))

let test_bmt_charges_cycles () =
  let m, frames, bmt = bmt_env 4 in
  let before = Hw.Cost.category m.Hw.Machine.ledger "bmt" in
  let hashes_before = Bmt.hashes_performed bmt in
  ignore (Bmt.verify bmt (List.hd frames));
  Alcotest.(check bool) "hash work accounted" true
    (Hw.Cost.category m.Hw.Machine.ledger "bmt" > before
    && Bmt.hashes_performed bmt > hashes_before)

(* --- BMT fast paths: batched updates, O(1) fetch checks --------------------- *)

let test_bmt_update_many_equals_sequential =
  QCheck.Test.make
    ~name:"update_many = sequential updates (same tree, strictly fewer hashes)" ~count:40
    (QCheck.list_of_size (QCheck.Gen.int_range 1 10) (QCheck.int_bound 15))
    (fun picks ->
      (* Two identical machines and trees; dirty the same frames in both,
         then rebind one with a single batch and the other frame by frame. *)
      let m1, frames1, bmt1 = bmt_env 16 in
      let m2, frames2, bmt2 = bmt_env 16 in
      let dirty m frames =
        List.map
          (fun i ->
            let pfn = List.nth frames i in
            Hw.Physmem.write_raw m.Hw.Machine.mem pfn ~off:7 (Bytes.of_string "dirtied");
            pfn)
          picks
      in
      let dirty1 = dirty m1 frames1 and dirty2 = dirty m2 frames2 in
      let h1 = Bmt.hashes_performed bmt1 and h2 = Bmt.hashes_performed bmt2 in
      Bmt.update_many bmt1 dirty1;
      List.iter (Bmt.update bmt2) dirty2;
      let batch = Bmt.hashes_performed bmt1 - h1 in
      let seq = Bmt.hashes_performed bmt2 - h2 in
      let distinct = List.length (List.sort_uniq compare picks) in
      Bytes.equal (Bmt.root bmt1) (Bmt.root bmt2)
      && Result.is_ok (Bmt.verify_all bmt1)
      && List.for_all (fun pfn -> Result.is_ok (Bmt.verify bmt1 pfn)) dirty1
      (* Shared ancestors (at minimum the root) are hashed once per batch,
         not once per frame — so any batch of >= 2 distinct leaves does
         strictly less hash work than the sequential loop. *)
      && (if distinct >= 2 then batch < seq else batch <= seq))

let test_bmt_update_many_single_frame_cost () =
  (* A one-frame batch charges exactly what the sequential update always
     did: one page hash plus one node hash per interior level
     (16 leaves -> 4 levels). The cost model must not drift. *)
  let m, frames, bmt = bmt_env 16 in
  let before = Hw.Cost.category m.Hw.Machine.ledger "bmt" in
  Bmt.update_many bmt [ List.nth frames 5 ];
  Alcotest.(check int) "single-frame batch cycles"
    (1600 + (4 * 80))
    (Hw.Cost.category m.Hw.Machine.ledger "bmt" - before)

let test_bmt_update_many_ignores_uncovered () =
  let m, frames, bmt = bmt_env 4 in
  let pfn = List.hd frames in
  Hw.Physmem.write_raw m.Hw.Machine.mem pfn ~off:0 (Bytes.of_string "new bytes");
  (* Duplicates collapse; uncovered frames are ignored, not an error. *)
  Bmt.update_many bmt [ pfn; pfn; 99; pfn ];
  Alcotest.(check bool) "tree consistent after mixed batch" true
    (Result.is_ok (Bmt.verify_all bmt));
  Bmt.update_many bmt [];
  Alcotest.(check bool) "empty batch is a no-op" true (Result.is_ok (Bmt.verify_all bmt))

let test_bmt_fetch_check_o1 () =
  (* The inline fetch check hashes exactly once per call — independent of
     tree size — books no cycles, and never touches the charged walk
     counter. This is the O(1) claim of the fast path, pinned. *)
  let check n =
    let m, frames, bmt = bmt_env n in
    let pfn = List.nth frames (n / 2) in
    let data = Hw.Physmem.dump m.Hw.Machine.mem pfn in
    let charged = Hw.Cost.category m.Hw.Machine.ledger "bmt" in
    let walked = Bmt.hashes_performed bmt in
    let before = Bmt.fetch_hashes_performed bmt in
    Alcotest.(check bool)
      (Printf.sprintf "clean fetch passes (%d leaves)" n)
      true
      (Result.is_ok (Bmt.verify_fetched bmt pfn ~data));
    Alcotest.(check int)
      (Printf.sprintf "exactly one hash per check (%d leaves)" n)
      1
      (Bmt.fetch_hashes_performed bmt - before);
    Alcotest.(check int) "no charged walk hashes" walked (Bmt.hashes_performed bmt);
    Alcotest.(check int) "no cycles booked" charged
      (Hw.Cost.category m.Hw.Machine.ledger "bmt")
  in
  check 2;
  check 8;
  check 64

let test_bmt_fetch_check_detects () =
  let m, frames, bmt = bmt_env 6 in
  let pfn = List.nth frames 2 in
  (* Tampered fill: the bus delivers bytes differing from the bound page. *)
  let data = Hw.Physmem.dump m.Hw.Machine.mem pfn in
  Bytes.set data 40 (Char.chr (Char.code (Bytes.get data 40) lxor 0x20));
  Alcotest.(check bool) "tampered fill detected" true
    (Result.is_error (Bmt.verify_fetched bmt pfn ~data));
  (* Stale leaf: DRAM rewritten behind the tree's back — an honest fill of
     the *new* bytes must still fail until the leaf is rebound. *)
  Hw.Physmem.write_raw m.Hw.Machine.mem pfn ~off:0 (Bytes.of_string "silent rewrite");
  let fresh = Hw.Physmem.dump m.Hw.Machine.mem pfn in
  Alcotest.(check bool) "stale leaf detected" true
    (Result.is_error (Bmt.verify_fetched bmt pfn ~data:fresh));
  Bmt.update bmt pfn;
  Alcotest.(check bool) "rebinding clears it" true
    (Result.is_ok
       (Bmt.verify_fetched bmt pfn ~data:(Hw.Physmem.dump m.Hw.Machine.mem pfn)));
  Alcotest.(check bool) "uncovered frame fails closed" true
    (Result.is_error (Bmt.verify_fetched bmt 99 ~data:fresh))

let test_bmt_verify_cost_pin () =
  (* The explicit walk keeps its exact pre-fast-path price: one page hash
     plus one node hash per interior level (8 leaves -> 3 levels). *)
  let m, frames, bmt = bmt_env 8 in
  let before = Hw.Cost.category m.Hw.Machine.ledger "bmt" in
  let hashes = Bmt.hashes_performed bmt in
  ignore (Bmt.verify bmt (List.hd frames));
  Alcotest.(check int) "walk cycles" (1600 + (3 * 80))
    (Hw.Cost.category m.Hw.Machine.ledger "bmt" - before);
  Alcotest.(check int) "walk hashes" 4 (Bmt.hashes_performed bmt - hashes)

(* --- Integrity (core layer) ------------------------------------------------- *)

let protected_env () =
  let m = Hw.Machine.create ~seed:14L () in
  let hv = Xen.Hypervisor.boot m in
  let fid = Fid.install hv in
  let rng = Rng.create 15L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ Bytes.make Hw.Addr.page_size '\000' ]
  in
  let dom = ok (Fid.boot_protected_vm fid ~name:"ext" ~memory_pages:12 ~prepared) in
  (m, hv, fid, dom)

let test_integrity_flow () =
  let _, _, fid, dom = protected_env () in
  let integ = Core.Integrity.protect fid dom in
  Core.Integrity.guest_write integ ~addr:0x3000 (Bytes.of_string "ledger row");
  (match Core.Integrity.verified_read integ ~addr:0x3000 ~len:10 with
  | Ok b -> Alcotest.(check string) "verified read" "ledger row" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "domain sweep clean" true
    (Result.is_ok (Core.Integrity.verify_domain integ))

let test_integrity_detects_rowhammer () =
  let m, _, fid, dom = protected_env () in
  let integ = Core.Integrity.protect fid dom in
  Core.Integrity.guest_write integ ~addr:0x3000 (Bytes.of_string "ledger row");
  (match Hw.Pagetable.lookup dom.Xen.Domain.npt 3 with
  | Some npte ->
      Hw.Cache.invalidate_page m.Hw.Machine.cache npte.Hw.Pagetable.frame;
      Hw.Physmem.flip_bit m.Hw.Machine.mem npte.Hw.Pagetable.frame ~off:2 ~bit:1
  | None -> Alcotest.fail "frame missing");
  Alcotest.(check bool) "flip detected on read" true
    (Result.is_error (Core.Integrity.verified_read integ ~addr:0x3000 ~len:10));
  Alcotest.(check bool) "flip detected on sweep" true
    (Result.is_error (Core.Integrity.verify_domain integ))

let test_integrity_detects_ciphertext_replay () =
  (* The in-place ciphertext-restore replay that plain Fidelius only blocks
     via mapping permissions: with BMT it is *detected* even if the
     attacker finds a physical write channel. *)
  let m, _, fid, dom = protected_env () in
  let integ = Core.Integrity.protect fid dom in
  Core.Integrity.guest_write integ ~addr:0x3000 (Bytes.of_string "OLD-VALUE");
  let frame =
    match Hw.Pagetable.lookup dom.Xen.Domain.npt 3 with
    | Some npte -> npte.Hw.Pagetable.frame
    | None -> Alcotest.fail "frame"
  in
  let stale = Hw.Physmem.dump m.Hw.Machine.mem frame in
  Core.Integrity.guest_write integ ~addr:0x3000 (Bytes.of_string "NEW-VALUE");
  (* Physical replay of the stale ciphertext (e.g. a malicious DIMM). *)
  Hw.Physmem.write_raw m.Hw.Machine.mem frame ~off:0 stale;
  Hw.Cache.invalidate_page m.Hw.Machine.cache frame;
  Alcotest.(check bool) "replay detected" true
    (Result.is_error (Core.Integrity.verified_read integ ~addr:0x3000 ~len:9))

let test_integrity_unmapped_range () =
  let _, _, fid, dom = protected_env () in
  let integ = Core.Integrity.protect fid dom in
  Alcotest.(check bool) "unmapped gva fails closed" true
    (Result.is_error (Core.Integrity.verified_read integ ~addr:(Hw.Addr.addr_of 500 0) ~len:8))

(* --- GEK / customized keys ---------------------------------------------------- *)

let test_gek_firmware_roundtrip () =
  let m, hv, _, dom = protected_env () in
  let fw = hv.Xen.Hypervisor.fw in
  let handle = Option.get dom.Xen.Domain.sev_handle in
  let gek = ok (Sev.Firmware.setenc_gek fw ~handle) in
  (* Guest stays RUNNING throughout. *)
  Alcotest.(check bool) "still running" true
    (Sev.Firmware.state_of fw ~handle = Some Sev.State.Running);
  let frame =
    match Hw.Pagetable.lookup dom.Xen.Domain.npt 2 with
    | Some npte -> npte.Hw.Pagetable.frame
    | None -> Alcotest.fail "frame"
  in
  Xen.Hypervisor.in_guest hv dom (fun () ->
      Xen.Domain.write m dom ~addr:0x2000 (Bytes.of_string "customized-key!!"));
  let cipher = ok (Sev.Firmware.enc_range fw ~handle ~gek ~nonce:3L ~src_pfn:frame ~len:16) in
  Alcotest.(check bool) "ciphertext" false (Bytes.to_string cipher = "customized-key!!");
  Xen.Hypervisor.in_guest hv dom (fun () ->
      Xen.Domain.write m dom ~addr:0x2000 (Bytes.make 16 '\000'));
  ok (Sev.Firmware.dec_range fw ~handle ~gek ~nonce:3L ~cipher ~dst_pfn:frame);
  let back =
    Xen.Hypervisor.in_guest hv dom (fun () -> Xen.Domain.read m dom ~addr:0x2000 ~len:16)
  in
  Alcotest.(check string) "roundtrip" "customized-key!!" (Bytes.to_string back)

let test_gek_isolation () =
  let _, hv, _, dom = protected_env () in
  let fw = hv.Xen.Hypervisor.fw in
  let handle = Option.get dom.Xen.Domain.sev_handle in
  let gek = ok (Sev.Firmware.setenc_gek fw ~handle) in
  Alcotest.(check bool) "unknown gek id" true
    (Result.is_error (Sev.Firmware.enc_range fw ~handle ~gek:(gek + 77) ~nonce:0L
                        ~src_pfn:1 ~len:16));
  Alcotest.(check bool) "unknown handle" true
    (Result.is_error (Sev.Firmware.setenc_gek fw ~handle:999))

let test_gek_nonce_binding () =
  let m, hv, _, dom = protected_env () in
  let fw = hv.Xen.Hypervisor.fw in
  let handle = Option.get dom.Xen.Domain.sev_handle in
  let gek = ok (Sev.Firmware.setenc_gek fw ~handle) in
  let frame =
    match Hw.Pagetable.lookup dom.Xen.Domain.npt 2 with
    | Some npte -> npte.Hw.Pagetable.frame
    | None -> Alcotest.fail "frame"
  in
  Xen.Hypervisor.in_guest hv dom (fun () ->
      Xen.Domain.write m dom ~addr:0x2000 (Bytes.of_string "sector payload!!"));
  let cipher = ok (Sev.Firmware.enc_range fw ~handle ~gek ~nonce:5L ~src_pfn:frame ~len:16) in
  ok (Sev.Firmware.dec_range fw ~handle ~gek ~nonce:6L ~cipher ~dst_pfn:frame);
  let back =
    Xen.Hypervisor.in_guest hv dom (fun () -> Xen.Domain.read m dom ~addr:0x2000 ~len:16)
  in
  Alcotest.(check bool) "wrong nonce garbles" false (Bytes.to_string back = "sector payload!!")

let test_gek_codec_blkif () =
  let m, hv, fid, dom = protected_env () in
  ignore m;
  let io = ok (Fid.setup_gek_io fid dom ~md_gvfn:310) in
  let disk = Xen.Vdisk.create ~nr_sectors:16 in
  let fe, _ = ok (Xen.Blkif.connect hv dom ~disk ~buffer_gvfn:311) in
  Xen.Blkif.set_codec fe (Fid.gek_codec io);
  ok (Xen.Blkif.write_sectors fe ~sector:2 (Bytes.make 1024 'G'));
  Alcotest.(check bool) "platter ciphertext" false
    (Bytes.for_all (fun c -> c = 'G') (Xen.Vdisk.peek disk ~sector:2 ~count:1));
  let b = ok (Xen.Blkif.read_sectors fe ~sector:2 ~count:2) in
  Alcotest.(check bool) "roundtrip" true (Bytes.for_all (fun c -> c = 'G') b);
  Alcotest.(check bool) "gek id assigned" true (Core.Io_protect.gek_id io > 0)

let test_gek_requires_protection () =
  let _, hv, fid, _ = protected_env () in
  let plain = Xen.Hypervisor.create_domain hv ~name:"plain" ~memory_pages:4 in
  Alcotest.(check bool) "unprotected refused" true
    (Result.is_error (Fid.setup_gek_io fid plain ~md_gvfn:10))

let prop t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "extensions"
    [ ( "bmt",
        [ Alcotest.test_case "clean verifies" `Quick test_bmt_clean_verifies;
          prop test_bmt_detects_any_flip;
          Alcotest.test_case "authorized update" `Quick test_bmt_update_rebinds;
          Alcotest.test_case "fails closed" `Quick test_bmt_uncovered_fails_closed;
          Alcotest.test_case "single-leaf tree" `Quick test_bmt_single_frame_tree;
          Alcotest.test_case "odd-width levels" `Quick test_bmt_odd_width_levels;
          Alcotest.test_case "cycle accounting" `Quick test_bmt_charges_cycles;
          prop test_bmt_update_many_equals_sequential;
          Alcotest.test_case "single-frame batch cost" `Quick
            test_bmt_update_many_single_frame_cost;
          Alcotest.test_case "mixed batch tolerated" `Quick
            test_bmt_update_many_ignores_uncovered;
          Alcotest.test_case "fetch check is O(1)" `Quick test_bmt_fetch_check_o1;
          Alcotest.test_case "fetch check detects" `Quick test_bmt_fetch_check_detects;
          Alcotest.test_case "verify cost pinned" `Quick test_bmt_verify_cost_pin ] );
      ( "integrity",
        [ Alcotest.test_case "verified access" `Quick test_integrity_flow;
          Alcotest.test_case "rowhammer detected" `Quick test_integrity_detects_rowhammer;
          Alcotest.test_case "ciphertext replay detected" `Quick
            test_integrity_detects_ciphertext_replay;
          Alcotest.test_case "unmapped range" `Quick test_integrity_unmapped_range ] );
      ( "gek",
        [ Alcotest.test_case "firmware roundtrip" `Quick test_gek_firmware_roundtrip;
          Alcotest.test_case "isolation" `Quick test_gek_isolation;
          Alcotest.test_case "nonce binding" `Quick test_gek_nonce_binding;
          Alcotest.test_case "blkif codec" `Quick test_gek_codec_blkif;
          Alcotest.test_case "requires protection" `Quick test_gek_requires_protection ] ) ]
