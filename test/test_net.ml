(* Tests for the PV network path and the TLS-like secure channel — the
   substrate behind the paper's "network I/O data has been protected by the
   SSL protocol" assumption (Section 4.3.5). *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sc = Fidelius_crypto.Secure_channel
module Rng = Fidelius_crypto.Rng

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* --- secure channel ---------------------------------------------------- *)

let sessions () =
  let rng = Rng.create 33L in
  let secret, hello = Sc.client_hello rng in
  let server, reply = ok (Sc.server_accept rng ~client_hello:hello) in
  let client = ok (Sc.client_finish secret ~server_reply:reply) in
  (client, server)

let test_channel_roundtrip () =
  let client, server = sessions () in
  let r = Sc.seal client (Bytes.of_string "hello over TLS") in
  Alcotest.(check string) "c->s" "hello over TLS" (Bytes.to_string (ok (Sc.open_record server r)));
  let r2 = Sc.seal server (Bytes.of_string "and back") in
  Alcotest.(check string) "s->c" "and back" (Bytes.to_string (ok (Sc.open_record client r2)))

let test_channel_confidential () =
  let client, _ = sessions () in
  let record = Sc.seal client (Bytes.of_string "SECRET-PAYLOAD") in
  let s = Bytes.to_string record in
  let contains needle =
    let n = String.length s and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub s i m = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "ciphertext only" false (contains "SECRET")

let test_channel_tamper () =
  let client, server = sessions () in
  let record = Sc.seal client (Bytes.of_string "payment: 10 EUR") in
  Bytes.set record 14 (Char.chr (Char.code (Bytes.get record 14) lxor 0x01));
  Alcotest.(check bool) "bit flip detected" true (Result.is_error (Sc.open_record server record))

let test_channel_replay_reorder () =
  let client, server = sessions () in
  let r1 = Sc.seal client (Bytes.of_string "one") in
  let r2 = Sc.seal client (Bytes.of_string "two") in
  (* Reorder: r2 first. *)
  Alcotest.(check bool) "reorder detected" true (Result.is_error (Sc.open_record server r2));
  ignore (ok (Sc.open_record server r1));
  ignore (ok (Sc.open_record server r2));
  (* Replay r2. *)
  Alcotest.(check bool) "replay detected" true (Result.is_error (Sc.open_record server r2))

let test_channel_truncation () =
  let client, server = sessions () in
  let r = Sc.seal client (Bytes.of_string "data") in
  Alcotest.(check bool) "truncation detected" true
    (Result.is_error (Sc.open_record server (Bytes.sub r 0 (Bytes.length r - 1))));
  Alcotest.(check bool) "garbage detected" true
    (Result.is_error (Sc.open_record server (Bytes.create 5)))

let test_channel_property =
  QCheck.Test.make ~name:"arbitrary payloads roundtrip in order" ~count:50
    (QCheck.list_of_size (QCheck.Gen.int_range 1 10) QCheck.string)
    (fun payloads ->
      let client, server = sessions () in
      List.for_all
        (fun p ->
          match Sc.open_record server (Sc.seal client (Bytes.of_string p)) with
          | Ok got -> Bytes.to_string got = p
          | Error _ -> false)
        payloads)

(* --- netif --------------------------------------------------------------- *)

let net_env () =
  let m = Hw.Machine.create ~seed:34L () in
  let hv = Xen.Hypervisor.boot m in
  let a = Xen.Hypervisor.create_domain hv ~name:"a" ~memory_pages:8 in
  let b = Xen.Hypervisor.create_domain hv ~name:"b" ~memory_pages:8 in
  let wire = Xen.Netif.create_wire () in
  let ea = ok (Xen.Netif.connect hv a ~wire ~buffer_gvfn:100) in
  let eb = ok (Xen.Netif.connect hv b ~wire ~buffer_gvfn:100) in
  (m, hv, wire, ea, eb)

let test_netif_roundtrip () =
  let _, _, wire, ea, eb = net_env () in
  ok (Xen.Netif.send ea (Bytes.of_string "frame one"));
  ok (Xen.Netif.send ea (Bytes.of_string "frame two"));
  Alcotest.(check int) "queued" 2 (Xen.Netif.pending eb);
  (match ok (Xen.Netif.recv eb) with
  | Some f -> Alcotest.(check string) "fifo" "frame one" (Bytes.to_string f)
  | None -> Alcotest.fail "no frame");
  (match ok (Xen.Netif.recv eb) with
  | Some f -> Alcotest.(check string) "second" "frame two" (Bytes.to_string f)
  | None -> Alcotest.fail "no frame");
  Alcotest.(check bool) "drained" true (ok (Xen.Netif.recv eb) = None);
  Alcotest.(check int) "forwarded" 2 (Xen.Netif.frames_forwarded wire)

let test_netif_bidirectional () =
  let _, _, _, ea, eb = net_env () in
  ok (Xen.Netif.send ea (Bytes.of_string "ping"));
  ok (Xen.Netif.send eb (Bytes.of_string "pong"));
  Alcotest.(check bool) "a got pong" true
    (match ok (Xen.Netif.recv ea) with Some f -> Bytes.to_string f = "pong" | None -> false);
  Alcotest.(check bool) "b got ping" true
    (match ok (Xen.Netif.recv eb) with Some f -> Bytes.to_string f = "ping" | None -> false)

let test_netif_limits () =
  let _, hv, wire, ea, _ = net_env () in
  Alcotest.(check bool) "oversized frame" true
    (Result.is_error (Xen.Netif.send ea (Bytes.create Hw.Addr.page_size)));
  let c = Xen.Hypervisor.create_domain hv ~name:"c" ~memory_pages:4 in
  Alcotest.(check bool) "third endpoint refused" true
    (Result.is_error (Xen.Netif.connect hv c ~wire ~buffer_gvfn:100))

let test_netif_dom0_snoops_plaintext () =
  (* Without the secure channel, the wire and the log are plaintext: the
     insecurity the SSL assumption must cover. *)
  let _, _, wire, ea, _ = net_env () in
  ok (Xen.Netif.send ea (Bytes.of_string "PLAINTEXT-CREDENTIALS"));
  Alcotest.(check bool) "dom0 reads the frame" true
    (List.exists (fun f -> Bytes.to_string f = "PLAINTEXT-CREDENTIALS") (Xen.Netif.snoop wire))

let test_netif_batch_roundtrip () =
  let _, _, wire, ea, eb = net_env () in
  let frames = List.init 5 (fun i -> Bytes.of_string (Printf.sprintf "frame-%d" i)) in
  ok (Xen.Netif.send_batch ea frames);
  Alcotest.(check int) "all queued" 5 (Xen.Netif.pending eb);
  Alcotest.(check int) "forwarded once each" 5 (Xen.Netif.frames_forwarded wire);
  (* Partial drain keeps the remainder queued, in order. *)
  let first = ok (Xen.Netif.recv_batch ~max:2 eb) in
  Alcotest.(check (list string)) "first two" [ "frame-0"; "frame-1" ]
    (List.map Bytes.to_string first);
  let rest = ok (Xen.Netif.recv_batch eb) in
  Alcotest.(check (list string)) "remainder" [ "frame-2"; "frame-3"; "frame-4" ]
    (List.map Bytes.to_string rest);
  Alcotest.(check (list string)) "empty drain" [] (List.map Bytes.to_string (ok (Xen.Netif.recv_batch eb)));
  (* Zero-length frames survive the length-prefixed staging. *)
  ok (Xen.Netif.send_batch ea [ Bytes.create 0; Bytes.of_string "x" ]);
  Alcotest.(check (list int)) "zero-length frame preserved" [ 0; 1 ]
    (List.map Bytes.length (ok (Xen.Netif.recv_batch eb)))

let test_netif_batch_cost_parity () =
  (* A batch of one charges exactly what the synchronous path charges: the
     amortization claim is event_channel x1 instead of xN, nothing else. *)
  let run f =
    let m, _, _, ea, eb = net_env () in
    let before = Hw.Cost.total m.Hw.Machine.ledger in
    f ea eb;
    Hw.Cost.total m.Hw.Machine.ledger - before
  in
  let frame = Bytes.make 300 'f' in
  let sync =
    run (fun ea eb ->
        ok (Xen.Netif.send ea frame);
        ignore (ok (Xen.Netif.recv eb)))
  in
  let batch1 =
    run (fun ea eb ->
        ok (Xen.Netif.send_batch ea [ frame ]);
        ignore (ok (Xen.Netif.recv_batch ~max:1 eb)))
  in
  Alcotest.(check int) "batch of 1 = synchronous cycles" sync batch1;
  (* N frames batched cost less than N synchronous sends. *)
  let n = 6 in
  let sync_n =
    run (fun ea eb ->
        for _ = 1 to n do
          ok (Xen.Netif.send ea frame);
          ignore (ok (Xen.Netif.recv eb))
        done)
  in
  let batch_n =
    run (fun ea eb ->
        ok (Xen.Netif.send_batch ea (List.init n (fun _ -> frame)));
        ignore (ok (Xen.Netif.recv_batch eb)))
  in
  Alcotest.(check bool) "batching amortizes the doorbell" true (batch_n < sync_n)

let test_netif_backpressure () =
  let m = Hw.Machine.create ~seed:34L () in
  let hv = Xen.Hypervisor.boot m in
  let a = Xen.Hypervisor.create_domain hv ~name:"a" ~memory_pages:8 in
  let b = Xen.Hypervisor.create_domain hv ~name:"b" ~memory_pages:8 in
  let wire = Xen.Netif.create_wire ~capacity:3 () in
  Alcotest.(check int) "capacity readable" 3 (Xen.Netif.wire_capacity wire);
  let ea = ok (Xen.Netif.connect hv a ~wire ~buffer_gvfn:100) in
  let eb = ok (Xen.Netif.connect hv b ~wire ~buffer_gvfn:100) in
  for i = 1 to 3 do
    ok (Xen.Netif.send ea (Bytes.of_string (string_of_int i)))
  done;
  let before = Hw.Cost.total m.Hw.Machine.ledger in
  Alcotest.(check bool) "4th frame backpressured" true
    (Result.is_error (Xen.Netif.send ea (Bytes.of_string "4")));
  Alcotest.(check bool) "batched send backpressured" true
    (Result.is_error (Xen.Netif.send_batch ea [ Bytes.of_string "4" ]));
  Alcotest.(check int) "refused sends charge nothing" before (Hw.Cost.total m.Hw.Machine.ledger);
  (* Draining the receiver reopens the wire. *)
  ignore (ok (Xen.Netif.recv eb));
  ok (Xen.Netif.send ea (Bytes.of_string "4"));
  Alcotest.(check int) "queue refilled" 3 (Xen.Netif.pending eb);
  Alcotest.check_raises "nonpositive capacity rejected"
    (Invalid_argument "Netif.create_wire: capacity must be >= 1") (fun () ->
      ignore (Xen.Netif.create_wire ~capacity:0 ()))

let contains needle hay =
  let s = Bytes.to_string hay in
  let n = String.length s and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub s i m = needle || scan (i + 1)) in
  scan 0

let test_tls_over_netif () =
  (* The full story: handshake and records over the PV wire; dom0 sees only
     ciphertext; tampering is detected by the receiver. *)
  let _, _, wire, ea, eb = net_env () in
  let rng = Rng.create 35L in
  let secret, hello = Sc.client_hello rng in
  ok (Xen.Netif.send ea hello);
  let hello' = Option.get (ok (Xen.Netif.recv eb)) in
  let server, reply = ok (Sc.server_accept rng ~client_hello:hello') in
  ok (Xen.Netif.send eb reply);
  let reply' = Option.get (ok (Xen.Netif.recv ea)) in
  let client = ok (Sc.client_finish secret ~server_reply:reply') in
  (* Application data. *)
  ok (Xen.Netif.send ea (Sc.seal client (Bytes.of_string "CARD-NUMBER-4242")));
  Alcotest.(check bool) "dom0 log has no plaintext" false
    (List.exists (contains "CARD-NUMBER") (Xen.Netif.snoop_log wire));
  let record = Option.get (ok (Xen.Netif.recv eb)) in
  Alcotest.(check string) "server decrypts" "CARD-NUMBER-4242"
    (Bytes.to_string (ok (Sc.open_record server record)));
  (* Next record gets rewritten on the wire. *)
  ok (Xen.Netif.send ea (Sc.seal client (Bytes.of_string "amount: 10")));
  Xen.Netif.tamper wire (fun f ->
      let f = Bytes.copy f in
      if Bytes.length f > 13 then Bytes.set f 13 '\xff';
      f);
  let tampered = Option.get (ok (Xen.Netif.recv eb)) in
  Alcotest.(check bool) "tampering detected" true
    (Result.is_error (Sc.open_record server tampered))

let prop t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "net"
    [ ( "secure-channel",
        [ Alcotest.test_case "roundtrip" `Quick test_channel_roundtrip;
          Alcotest.test_case "confidentiality" `Quick test_channel_confidential;
          Alcotest.test_case "tamper" `Quick test_channel_tamper;
          Alcotest.test_case "replay/reorder" `Quick test_channel_replay_reorder;
          Alcotest.test_case "truncation" `Quick test_channel_truncation;
          prop test_channel_property ] );
      ( "netif",
        [ Alcotest.test_case "roundtrip" `Quick test_netif_roundtrip;
          Alcotest.test_case "bidirectional" `Quick test_netif_bidirectional;
          Alcotest.test_case "limits" `Quick test_netif_limits;
          Alcotest.test_case "batch roundtrip" `Quick test_netif_batch_roundtrip;
          Alcotest.test_case "batch cost parity" `Quick test_netif_batch_cost_parity;
          Alcotest.test_case "backpressure" `Quick test_netif_backpressure;
          Alcotest.test_case "dom0 snoops plaintext" `Quick test_netif_dom0_snoops_plaintext ] );
      ("tls-over-pv", [ Alcotest.test_case "end to end" `Quick test_tls_over_netif ]) ]
