(* Unit and property tests for the hardware model. *)

module Hw = Fidelius_hw
module Addr = Hw.Addr
module Cost = Hw.Cost
module Physmem = Hw.Physmem
module Memctrl = Hw.Memctrl
module Tlb = Hw.Tlb
module Cache = Hw.Cache
module Pagetable = Hw.Pagetable
module Cpu = Hw.Cpu
module Vmcb = Hw.Vmcb
module Insn = Hw.Insn
module Machine = Hw.Machine
module Mmu = Hw.Mmu
module Rng = Fidelius_crypto.Rng
module Sha256 = Fidelius_crypto.Sha256

let machine () = Machine.create ~nr_frames:256 ~seed:31L ()

(* --- Addr ----------------------------------------------------------------- *)

let test_addr_roundtrip =
  QCheck.Test.make ~name:"frame/offset split-join" ~count:200
    (QCheck.pair (QCheck.int_bound 0xFFFFF) (QCheck.int_bound (Addr.page_size - 1)))
    (fun (frame, off) ->
      let a = Addr.addr_of frame off in
      Addr.frame_of a = frame && Addr.offset_of a = off)

let test_addr_constants () =
  Alcotest.(check int) "page size" 4096 Addr.page_size;
  Alcotest.(check int) "block size" 16 Addr.block_size;
  Alcotest.(check int) "blocks per page" 256 Addr.blocks_per_page

(* --- Cost ------------------------------------------------------------------ *)

let test_ledger () =
  let l = Cost.ledger () in
  Cost.charge l "a" 10;
  Cost.charge l "b" 5;
  Cost.charge l "a" 7;
  Alcotest.(check int) "total" 22 (Cost.total l);
  Alcotest.(check int) "category a" 17 (Cost.category l "a");
  Alcotest.(check int) "unknown category" 0 (Cost.category l "zzz");
  (match Cost.categories l with
  | (top, v) :: _ ->
      Alcotest.(check string) "sorted desc" "a" top;
      Alcotest.(check int) "top value" 17 v
  | [] -> Alcotest.fail "empty categories");
  Cost.reset l;
  Alcotest.(check int) "reset" 0 (Cost.total l)

let test_cost_paper_constants () =
  let c = Cost.default in
  Alcotest.(check int) "gate1 = 306" 306 c.Cost.gate1;
  Alcotest.(check int) "gate2 = 16" 16 c.Cost.gate2;
  Alcotest.(check int) "gate3 = 339" 339 c.Cost.gate3;
  Alcotest.(check int) "tlb entry flush = 128" 128 c.Cost.tlb_flush_entry;
  Alcotest.(check bool) "cacheline write < 2" true (c.Cost.cacheline_write <= 2);
  Alcotest.(check int) "shadow roundtrip = 661" 661 c.Cost.shadow_roundtrip;
  (* I/O encoder ratios of Section 7.2. *)
  let ratio a b = float_of_int a /. float_of_int b in
  Alcotest.(check bool) "AES-NI ~ +11.5%" true
    (abs_float (ratio c.Cost.aesni_block c.Cost.memcpy_block -. 1.115) < 0.01);
  Alcotest.(check bool) "SEV engine ~ +8.7%" true
    (abs_float (ratio c.Cost.sev_engine_block c.Cost.memcpy_block -. 1.087) < 0.01);
  Alcotest.(check bool) "software AES > 20x" true
    (ratio c.Cost.sw_aes_block c.Cost.memcpy_block > 20.0)

(* --- Physmem ---------------------------------------------------------------- *)

let test_physmem_rw () =
  let mem = Physmem.create ~nr_frames:4 in
  Physmem.write_raw mem 2 ~off:100 (Bytes.of_string "hello");
  Alcotest.(check string) "read back" "hello"
    (Bytes.to_string (Physmem.read_raw mem 2 ~off:100 ~len:5));
  Alcotest.(check string) "other frame untouched" "\000\000\000\000\000"
    (Bytes.to_string (Physmem.read_raw mem 1 ~off:100 ~len:5))

let test_physmem_bounds () =
  let mem = Physmem.create ~nr_frames:2 in
  Alcotest.check_raises "frame oob" (Invalid_argument "Physmem: frame 0x5 out of bounds")
    (fun () -> ignore (Physmem.read_raw mem 5 ~off:0 ~len:1));
  Alcotest.check_raises "range oob" (Invalid_argument "Physmem: range 4090+10 leaves the page")
    (fun () -> ignore (Physmem.read_raw mem 1 ~off:4090 ~len:10))

let test_physmem_flip () =
  let mem = Physmem.create ~nr_frames:2 in
  Physmem.write_raw mem 1 ~off:0 (Bytes.of_string "\x0f");
  Physmem.flip_bit mem 1 ~off:0 ~bit:4;
  Alcotest.(check string) "bit flipped" "\x1f"
    (Bytes.to_string (Physmem.read_raw mem 1 ~off:0 ~len:1))

let test_physmem_dump_is_copy () =
  let mem = Physmem.create ~nr_frames:2 in
  let dump = Physmem.dump mem 1 in
  Bytes.set dump 0 'X';
  Alcotest.(check char) "original unchanged" '\000'
    (Bytes.get (Physmem.read_raw mem 1 ~off:0 ~len:1) 0)

(* --- Memctrl ----------------------------------------------------------------- *)

let ctrl_env () =
  let mem = Physmem.create ~nr_frames:16 in
  let ledger = Cost.ledger () in
  let ctrl = Memctrl.create mem ledger (Rng.create 3L) in
  (mem, ledger, ctrl)

let test_memctrl_plain () =
  let _, _, ctrl = ctrl_env () in
  Memctrl.write ctrl Memctrl.Plain 3 ~off:7 (Bytes.of_string "plain data");
  Alcotest.(check string) "plain roundtrip" "plain data"
    (Bytes.to_string (Memctrl.read ctrl Memctrl.Plain 3 ~off:7 ~len:10))

let test_memctrl_encrypted_roundtrip () =
  let mem, _, ctrl = ctrl_env () in
  Memctrl.install_key ctrl ~asid:1 (Bytes.make 16 'k');
  Memctrl.write ctrl (Memctrl.Asid 1) 3 ~off:5 (Bytes.of_string "secret-bytes");
  Alcotest.(check string) "decrypting read" "secret-bytes"
    (Bytes.to_string (Memctrl.read ctrl (Memctrl.Asid 1) 3 ~off:5 ~len:12));
  (* The DRAM holds ciphertext. *)
  let raw = Physmem.read_raw mem 3 ~off:5 ~len:12 in
  Alcotest.(check bool) "DRAM is ciphertext" false (Bytes.to_string raw = "secret-bytes")

let test_memctrl_wrong_key_garbage () =
  let _, _, ctrl = ctrl_env () in
  Memctrl.install_key ctrl ~asid:1 (Bytes.make 16 'a');
  Memctrl.install_key ctrl ~asid:2 (Bytes.make 16 'b');
  Memctrl.write ctrl (Memctrl.Asid 1) 4 ~off:0 (Bytes.of_string "0123456789abcdef");
  let other = Memctrl.read ctrl (Memctrl.Asid 2) 4 ~off:0 ~len:16 in
  Alcotest.(check bool) "wrong ASID sees garbage" false
    (Bytes.to_string other = "0123456789abcdef")

let test_memctrl_uninstall () =
  let _, _, ctrl = ctrl_env () in
  Memctrl.install_key ctrl ~asid:1 (Bytes.make 16 'k');
  Alcotest.(check bool) "has key" true (Memctrl.has_key ctrl ~asid:1);
  Memctrl.uninstall_key ctrl ~asid:1;
  Alcotest.(check bool) "key gone" false (Memctrl.has_key ctrl ~asid:1);
  Alcotest.check_raises "traffic without key"
    (Invalid_argument "Memctrl: no key installed for ASID 1") (fun () ->
      ignore (Memctrl.read ctrl (Memctrl.Asid 1) 3 ~off:0 ~len:16))

let test_memctrl_partial_rmw =
  QCheck.Test.make ~name:"unaligned encrypted writes preserve neighbours" ~count:50
    (QCheck.pair (QCheck.int_bound 200) (QCheck.int_bound 40))
    (fun (off, len) ->
      let len = max 1 len in
      let _, _, ctrl = ctrl_env () in
      Memctrl.install_key ctrl ~asid:1 (Bytes.make 16 'q');
      let base = Bytes.init 256 (fun i -> Char.chr (i land 0xff)) in
      Memctrl.write ctrl (Memctrl.Asid 1) 5 ~off:0 base;
      Memctrl.write ctrl (Memctrl.Asid 1) 5 ~off (Bytes.make len 'Z');
      let expect = Bytes.copy base in
      Bytes.fill expect off len 'Z';
      Bytes.equal (Memctrl.read ctrl (Memctrl.Asid 1) 5 ~off:0 ~len:256) expect)

let test_memctrl_reencrypt_and_copy () =
  let _, _, ctrl = ctrl_env () in
  Memctrl.install_key ctrl ~asid:1 (Bytes.make 16 'a');
  Memctrl.install_key ctrl ~asid:2 (Bytes.make 16 'b');
  Memctrl.write ctrl (Memctrl.Asid 1) 6 ~off:0 (Bytes.of_string "migrate me pls!!");
  Memctrl.reencrypt_page ctrl ~src:(Memctrl.Asid 1) ~dst:(Memctrl.Asid 2) 6;
  Alcotest.(check string) "reencrypted" "migrate me pls!!"
    (Bytes.to_string (Memctrl.read ctrl (Memctrl.Asid 2) 6 ~off:0 ~len:16));
  Memctrl.copy_page ctrl ~src_sel:(Memctrl.Asid 2) ~src:6 ~dst_sel:Memctrl.Plain ~dst:7;
  Alcotest.(check string) "copied to plain" "migrate me pls!!"
    (Bytes.to_string (Memctrl.read ctrl Memctrl.Plain 7 ~off:0 ~len:16))

let test_memctrl_fw_matches_slot () =
  (* Pages prepared with a raw key decrypt correctly through the slot. *)
  let _, _, ctrl = ctrl_env () in
  let key = Bytes.make 16 'v' in
  let plain = Bytes.init Addr.page_size (fun i -> Char.chr (i land 0xff)) in
  Memctrl.fw_write_page ctrl ~key 8 plain;
  Memctrl.install_key ctrl ~asid:3 key;
  Alcotest.(check bool) "slot traffic decrypts fw page" true
    (Bytes.equal (Memctrl.read ctrl (Memctrl.Asid 3) 8 ~off:0 ~len:Addr.page_size) plain);
  Alcotest.(check bool) "fw_decrypt agrees" true
    (Bytes.equal (Memctrl.fw_decrypt_page ctrl ~key 8) plain)

let test_memctrl_charges () =
  let _, ledger, ctrl = ctrl_env () in
  let before = Cost.total ledger in
  ignore (Memctrl.read ctrl Memctrl.Plain 1 ~off:0 ~len:16);
  let plain_cost = Cost.total ledger - before in
  Memctrl.install_key ctrl ~asid:1 (Bytes.make 16 'c');
  let before = Cost.total ledger in
  ignore (Memctrl.read ctrl (Memctrl.Asid 1) 1 ~off:0 ~len:16);
  let enc_cost = Cost.total ledger - before in
  Alcotest.(check bool) "encrypted access costs more" true (enc_cost > plain_cost)

(* Golden ciphertext regression: digests and ledger total captured from the
   seed (pre-T-table) memory controller. Catches any drift in per-block
   tweak derivation, XEX masking, or cost accounting across crypto rewrites. *)
let test_memctrl_golden () =
  let unhex s =
    let n = String.length s / 2 in
    Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
  in
  let plain = Bytes.init Addr.page_size (fun i -> Char.chr ((i * 7 + 3) land 0xff)) in
  let rawkey = unhex "000102030405060708090a0b0c0d0e0f" in
  let mem = Physmem.create ~nr_frames:8 in
  let ledger = Cost.ledger () in
  let ctrl = Memctrl.create mem ledger (Rng.create 42L) in
  Memctrl.fw_write_page ctrl ~key:rawkey 3 plain;
  Alcotest.(check string) "fw page ciphertext digest"
    "edb5dd45e8f29a2878a68c7093c8e5ed847e85fbdd8464b72cbaf42f7e3ca8d6"
    (Sha256.hex (Sha256.digest (Physmem.dump mem 3)));
  Memctrl.install_key ctrl ~asid:1 rawkey;
  Memctrl.write ctrl (Memctrl.Asid 1) 4 ~off:60 (Bytes.sub plain 0 100);
  Alcotest.(check string) "unaligned slot write digest"
    "4f85a1bca320771b853f6b0360a23a880925194d10ae13a83b14e22465586cf7"
    (Sha256.hex (Sha256.digest (Physmem.dump mem 4)));
  Alcotest.(check bool) "readback matches" true
    (Bytes.equal (Memctrl.read ctrl (Memctrl.Asid 1) 4 ~off:60 ~len:100)
       (Bytes.sub plain 0 100));
  Alcotest.(check int) "ledger total unchanged" 54000 (Cost.total ledger)

(* --- TLB ---------------------------------------------------------------------- *)

let test_tlb () =
  let l = Cost.ledger () in
  let tlb = Tlb.create l in
  Alcotest.(check bool) "first lookup misses" false (Tlb.lookup tlb ~space_id:1 5);
  Alcotest.(check bool) "second hits" true (Tlb.lookup tlb ~space_id:1 5);
  Alcotest.(check bool) "other space misses" false (Tlb.lookup tlb ~space_id:2 5);
  Tlb.flush_entry tlb ~space_id:1 5;
  Alcotest.(check bool) "flushed entry misses" false (Tlb.lookup tlb ~space_id:1 5);
  Tlb.flush_all tlb;
  Alcotest.(check int) "flush_all counted" 1 (Tlb.flushes tlb);
  Alcotest.(check int) "empty after full flush" 0 (Tlb.entries tlb)

(* --- Cache --------------------------------------------------------------------- *)

let test_cache_fill_probe () =
  let cache = Cache.create (Cost.ledger ()) in
  let line = Bytes.make 16 'L' in
  Cache.fill cache 7 ~block:3 line;
  (match Cache.probe cache 7 ~block:3 with
  | Some got -> Alcotest.(check bool) "line content" true (Bytes.equal got line)
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "other block misses" true (Cache.probe cache 7 ~block:4 = None)

let test_cache_eviction () =
  let cache = Cache.create ~nr_lines:4 (Cost.ledger ()) in
  for b = 0 to 5 do
    Cache.fill cache 1 ~block:b (Bytes.make 16 (Char.chr (65 + b)))
  done;
  Alcotest.(check bool) "oldest evicted" true (Cache.probe cache 1 ~block:0 = None);
  Alcotest.(check bool) "newest resident" true (Cache.probe cache 1 ~block:5 <> None);
  Alcotest.(check int) "bounded" 4 (Cache.resident cache)

let test_cache_invalidate () =
  let cache = Cache.create (Cost.ledger ()) in
  Cache.fill cache 2 ~block:0 (Bytes.make 16 'x');
  Cache.invalidate_page cache 2;
  Alcotest.(check bool) "invalidated" true (Cache.probe cache 2 ~block:0 = None)

let test_cache_returns_copies () =
  let cache = Cache.create (Cost.ledger ()) in
  Cache.fill cache 3 ~block:0 (Bytes.make 16 'a');
  (match Cache.probe cache 3 ~block:0 with
  | Some line -> Bytes.set line 0 'Z'
  | None -> Alcotest.fail "miss");
  match Cache.probe cache 3 ~block:0 with
  | Some line -> Alcotest.(check char) "line unaffected" 'a' (Bytes.get line 0)
  | None -> Alcotest.fail "miss"

(* --- Pagetable ------------------------------------------------------------------ *)

let table m = Machine.new_table m

let proto_gen =
  QCheck.map
    (fun (frame, w, x, c) -> { Pagetable.frame; writable = w; executable = x; c_bit = c })
    (QCheck.quad (QCheck.int_bound 0xFFFF) QCheck.bool QCheck.bool QCheck.bool)

let test_pt_roundtrip =
  QCheck.Test.make ~name:"PTE set/lookup roundtrip" ~count:200
    (QCheck.pair (QCheck.int_bound 5000) proto_gen)
    (fun (vfn, proto) ->
      let m = machine () in
      let t = table m in
      Pagetable.hw_set t vfn (Some proto);
      Pagetable.lookup t vfn = Some proto)

let test_pt_clear () =
  let m = machine () in
  let t = table m in
  Pagetable.hw_set t 9 (Some { Pagetable.frame = 3; writable = true; executable = false; c_bit = false });
  Pagetable.hw_set t 9 None;
  Alcotest.(check bool) "cleared" true (Pagetable.lookup t 9 = None)

let test_pt_backing_and_reverse () =
  let m = machine () in
  let t = table m in
  Pagetable.hw_set t 0 (Some { Pagetable.frame = 7; writable = true; executable = false; c_bit = false });
  Pagetable.hw_set t 600 (Some { Pagetable.frame = 7; writable = false; executable = false; c_bit = false });
  Alcotest.(check int) "two groups allocated" 2 (List.length (Pagetable.backing_frames t));
  Alcotest.(check int) "reverse map finds both" 2 (List.length (Pagetable.frame_mapped t 7));
  Pagetable.hw_set t 0 None;
  Alcotest.(check int) "reverse shrinks" 1 (List.length (Pagetable.frame_mapped t 7));
  Alcotest.(check int) "entry count" 1 (Pagetable.entry_count t)

let test_pt_lives_in_physmem () =
  (* A raw physical write to the page-table-page changes the translation. *)
  let m = machine () in
  let t = table m in
  Pagetable.hw_set t 3 (Some { Pagetable.frame = 9; writable = true; executable = false; c_bit = false });
  let pt_page = Pagetable.backing_frame_of t 3 in
  (* Zero the 8 entry bytes: the mapping disappears from the hardware walk. *)
  Physmem.write_raw m.Machine.mem pt_page ~off:(3 * 8) (Bytes.make 8 '\000');
  Alcotest.(check bool) "raw store cleared the PTE" true (Pagetable.lookup t 3 = None)

(* --- Cpu / Vmcb ------------------------------------------------------------------- *)

let test_cpu_regs () =
  let cpu = Cpu.create () in
  Cpu.set_reg cpu Cpu.Rax 42L;
  Cpu.set_reg cpu Cpu.R15 7L;
  Alcotest.(check int64) "rax" 42L (Cpu.get_reg cpu Cpu.Rax);
  Alcotest.(check int) "16 regs" 16 (List.length (Cpu.all_regs cpu));
  Cpu.clear_regs cpu;
  Alcotest.(check int64) "cleared" 0L (Cpu.get_reg cpu Cpu.R15)

let test_cpu_defaults () =
  let cpu = Cpu.create () in
  Alcotest.(check bool) "WP on" true (Cpu.wp cpu);
  Alcotest.(check bool) "paging on" true (Cpu.paging cpu);
  Alcotest.(check bool) "SMEP on" true (Cpu.smep cpu);
  Alcotest.(check bool) "NXE on" true (Cpu.nxe cpu);
  Alcotest.(check bool) "host mode" true (Cpu.mode cpu = Cpu.Host);
  Alcotest.(check bool) "not in fidelius" false (Cpu.in_fidelius cpu)

let test_reg_names () =
  List.iter
    (fun r ->
      match Cpu.reg_of_string (Cpu.reg_to_string r) with
      | Some r' -> Alcotest.(check bool) "name roundtrip" true (r = r')
      | None -> Alcotest.fail "name roundtrip")
    Cpu.regs

let test_vmcb () =
  let v = Vmcb.create () in
  Vmcb.set v Vmcb.Rip 0x1000L;
  Vmcb.set v Vmcb.Asid 3L;
  let copy = Vmcb.copy v in
  Vmcb.set v Vmcb.Rip 0x2000L;
  Alcotest.(check int64) "copy is deep" 0x1000L (Vmcb.get copy Vmcb.Rip);
  Alcotest.(check bool) "diff finds rip" true (List.mem Vmcb.Rip (Vmcb.diff v copy));
  Alcotest.(check bool) "diff excludes asid" false (List.mem Vmcb.Asid (Vmcb.diff v copy));
  Vmcb.blit ~src:copy ~dst:v;
  Alcotest.(check int64) "blit restores" 0x1000L (Vmcb.get v Vmcb.Rip)

let test_exit_reason_codes () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "code roundtrip" true
        (Vmcb.exit_reason_of_int64 (Vmcb.exit_reason_to_int64 r) = Some r))
    [ Vmcb.Cpuid; Vmcb.Hlt; Vmcb.Vmmcall; Vmcb.Npf; Vmcb.Ioio; Vmcb.Msr; Vmcb.Intr; Vmcb.Shutdown ];
  Alcotest.(check bool) "unknown code" true (Vmcb.exit_reason_of_int64 0xdeadL = None)

(* --- Insn ------------------------------------------------------------------------- *)

let test_insn_registry () =
  let reg = Insn.create (Cost.ledger ()) in
  let hits = ref 0 in
  Insn.place reg Insn.Mov_cr0 ~page:10 ~handler:(fun _ -> incr hits; Ok ());
  Insn.place reg Insn.Mov_cr0 ~page:11 ~handler:(fun _ -> incr hits; Ok ());
  Alcotest.(check bool) "not monopolized" false (Insn.monopolized reg Insn.Mov_cr0);
  Insn.scrub reg Insn.Mov_cr0 ~keep:10;
  Alcotest.(check bool) "monopolized after scrub" true (Insn.monopolized reg Insn.Mov_cr0);
  Alcotest.(check (list int)) "only page 10" [ 10 ] (Insn.instances reg Insn.Mov_cr0)

let test_insn_execute_fetch_check () =
  let reg = Insn.create (Cost.ledger ()) in
  Insn.place reg Insn.Vmrun ~page:20 ~handler:(fun _ -> Ok ());
  Alcotest.(check bool) "unmapped page faults" true
    (Result.is_error (Insn.execute reg ~exec_ok:(fun _ -> false) Insn.Vmrun 0L));
  Alcotest.(check bool) "mapped page executes" true
    (Result.is_ok (Insn.execute reg ~exec_ok:(fun p -> p = 20) Insn.Vmrun 0L));
  Alcotest.(check bool) "missing op is #UD" true
    (Result.is_error (Insn.execute reg ~exec_ok:(fun _ -> true) Insn.Lgdt 0L))

let test_insn_inject () =
  let reg = Insn.create (Cost.ledger ()) in
  Alcotest.(check bool) "no W^X no injection" true
    (Result.is_error (Insn.inject reg ~wx_ok:(fun _ -> false) Insn.Mov_cr3 ~page:5 ~handler:(fun _ -> Ok ())));
  Alcotest.(check bool) "W^X page allows injection" true
    (Result.is_ok (Insn.inject reg ~wx_ok:(fun _ -> true) Insn.Mov_cr3 ~page:5 ~handler:(fun _ -> Ok ())))

(* --- Machine ------------------------------------------------------------------------ *)

let test_machine_alloc_scrub () =
  let m = machine () in
  let pfn = Machine.alloc_frame m in
  Physmem.write_raw m.Machine.mem pfn ~off:0 (Bytes.of_string "stale secret");
  Machine.free_frame m pfn;
  (* The freed frame is scrubbed before reuse. *)
  Alcotest.(check string) "scrubbed" "\000\000\000\000"
    (Bytes.to_string (Physmem.read_raw m.Machine.mem pfn ~off:0 ~len:4))

let test_machine_alloc_unique () =
  let m = machine () in
  let frames = Machine.alloc_frames m 50 in
  Alcotest.(check int) "all distinct" 50 (List.length (List.sort_uniq compare frames));
  Alcotest.(check bool) "frame 0 reserved" false (List.mem 0 frames)

let test_machine_exhaustion () =
  let m = Machine.create ~nr_frames:4 ~seed:1L () in
  ignore (Machine.alloc_frames m 3);
  Alcotest.check_raises "exhausted" (Failure "Machine.alloc_frame: out of physical memory")
    (fun () -> ignore (Machine.alloc_frame m))

let test_machine_dma_iommu () =
  let m = machine () in
  Alcotest.(check bool) "no IOMMU: allowed" true
    (Result.is_ok (Machine.dma_write m 5 ~off:0 (Bytes.of_string "dev")));
  Machine.set_iommu m (Some (fun pfn -> pfn <> 5));
  Alcotest.(check bool) "filtered frame denied" true
    (Result.is_error (Machine.dma_write m 5 ~off:0 (Bytes.of_string "dev")));
  Alcotest.(check bool) "other frame allowed" true
    (Result.is_ok (Machine.dma_read m 6 ~off:0 ~len:4))

(* --- Mmu --------------------------------------------------------------------------- *)

let mmu_env () =
  let m = machine () in
  let space = Machine.new_table m in
  (* Identity-map a few frames with varied permissions. *)
  let map vfn ~w ~x =
    Pagetable.hw_set space vfn (Some { Pagetable.frame = vfn; writable = w; executable = x; c_bit = false })
  in
  map 2 ~w:true ~x:false;
  map 3 ~w:false ~x:false;
  map 4 ~w:false ~x:true;
  (m, space)

let test_mmu_rw () =
  let m, space = mmu_env () in
  Mmu.write m space ~addr:(Addr.addr_of 2 10) (Bytes.of_string "host data");
  Alcotest.(check string) "host rw" "host data"
    (Bytes.to_string (Mmu.read m space ~addr:(Addr.addr_of 2 10) ~len:9))

let test_mmu_not_present () =
  let m, space = mmu_env () in
  (try
     ignore (Mmu.read m space ~addr:(Addr.addr_of 50 0) ~len:1);
     Alcotest.fail "expected fault"
   with Mmu.Fault { reason; _ } -> Alcotest.(check string) "reason" "not present" reason)

let test_mmu_wp_semantics () =
  let m, space = mmu_env () in
  (* Read-only page: write faults with WP set... *)
  (try
     Mmu.write m space ~addr:(Addr.addr_of 3 0) (Bytes.of_string "x");
     Alcotest.fail "expected fault"
   with Mmu.Fault _ -> ());
  (* ...and succeeds with WP clear (supervisor override). *)
  Cpu.priv_set_wp m.Machine.cpu false;
  Mmu.write m space ~addr:(Addr.addr_of 3 0) (Bytes.of_string "y");
  Cpu.priv_set_wp m.Machine.cpu true;
  Alcotest.(check string) "written under WP=0" "y"
    (Bytes.to_string (Mmu.read m space ~addr:(Addr.addr_of 3 0) ~len:1))

let test_mmu_exec_nx () =
  let m, space = mmu_env () in
  Alcotest.(check bool) "exec page ok" true (Mmu.exec_ok m space 4);
  Alcotest.(check bool) "nx page blocked" false (Mmu.exec_ok m space 3);
  Cpu.priv_set_nxe m.Machine.cpu false;
  Alcotest.(check bool) "NXE off: everything executable" true (Mmu.exec_ok m space 3);
  Cpu.priv_set_nxe m.Machine.cpu true

let test_mmu_wx () =
  let m, space = mmu_env () in
  Alcotest.(check bool) "rw page is not wx" false (Mmu.wx_ok m space 2);
  Pagetable.hw_set space 6
    (Some { Pagetable.frame = 6; writable = true; executable = true; c_bit = false });
  Alcotest.(check bool) "w+x page detected" true (Mmu.wx_ok m space 6)

let test_mmu_set_pte_mediation () =
  let m = machine () in
  m.Machine.enforce_paging <- false;
  let space = Machine.new_table m in
  let target = Machine.new_table m in
  (* Build the acting space: it maps the target's page-table-page RO. *)
  let backing = Pagetable.backing_frame_of target 0 in
  Pagetable.hw_set space backing
    (Some { Pagetable.frame = backing; writable = false; executable = false; c_bit = false });
  m.Machine.enforce_paging <- true;
  (* Write-protected: update faults... *)
  (try
     Mmu.set_pte m ~space ~table:target 0
       (Some { Pagetable.frame = 9; writable = true; executable = false; c_bit = false });
     Alcotest.fail "expected fault"
   with Mmu.Fault _ -> ());
  (* ...but goes through when WP is clear (the type-1 gate lever). *)
  Cpu.priv_set_wp m.Machine.cpu false;
  Mmu.set_pte m ~space ~table:target 0
    (Some { Pagetable.frame = 9; writable = true; executable = false; c_bit = false });
  Cpu.priv_set_wp m.Machine.cpu true;
  Alcotest.(check bool) "entry landed" true (Pagetable.lookup target 0 <> None);
  (* A page-table-page with no mapping at all in the acting space also
     faults, WP or not. *)
  m.Machine.enforce_paging <- true;
  let orphan = Machine.new_table m in
  try
    Mmu.set_pte m ~space ~table:orphan 0
      (Some { Pagetable.frame = 9; writable = true; executable = false; c_bit = false });
    Alcotest.fail "expected fault"
  with Mmu.Fault _ -> ()

let guest_env () =
  let m = machine () in
  let gpt = Machine.new_table m and npt = Machine.new_table m in
  Memctrl.install_key m.Machine.ctrl ~asid:7 (Bytes.make 16 'g');
  (* gva 1 -> gfn 1 (encrypted), gva 2 -> gfn 2 (plain); gfn n -> pfn 10+n *)
  Pagetable.hw_set gpt 1 (Some { Pagetable.frame = 1; writable = true; executable = false; c_bit = true });
  Pagetable.hw_set gpt 2 (Some { Pagetable.frame = 2; writable = true; executable = false; c_bit = false });
  Pagetable.hw_set gpt 3 (Some { Pagetable.frame = 3; writable = false; executable = false; c_bit = false });
  Pagetable.hw_set npt 1 (Some { Pagetable.frame = 11; writable = true; executable = false; c_bit = false });
  Pagetable.hw_set npt 2 (Some { Pagetable.frame = 12; writable = true; executable = false; c_bit = false });
  Pagetable.hw_set npt 3 (Some { Pagetable.frame = 13; writable = true; executable = false; c_bit = false });
  (m, gpt, npt)

let test_guest_walk_selectors () =
  let m, gpt, npt = guest_env () in
  let _, sel1 = Mmu.guest_translate m ~domid:1 ~gpt ~npt ~asid:7 Mmu.Read (Addr.addr_of 1 0) in
  let _, sel2 = Mmu.guest_translate m ~domid:1 ~gpt ~npt ~asid:7 Mmu.Read (Addr.addr_of 2 0) in
  Alcotest.(check bool) "c-bit selects guest key" true (sel1 = Memctrl.Asid 7);
  Alcotest.(check bool) "no c-bit is plain" true (sel2 = Memctrl.Plain)

let test_guest_sme_priority () =
  let m, gpt, npt = guest_env () in
  (* Nested C-bit alone -> SME host key; guest C-bit takes priority. *)
  Pagetable.hw_set npt 2 (Some { Pagetable.frame = 12; writable = true; executable = false; c_bit = true });
  Pagetable.hw_set npt 1 (Some { Pagetable.frame = 11; writable = true; executable = false; c_bit = true });
  let _, sel2 = Mmu.guest_translate m ~domid:1 ~gpt ~npt ~asid:7 Mmu.Read (Addr.addr_of 2 0) in
  let _, sel1 = Mmu.guest_translate m ~domid:1 ~gpt ~npt ~asid:7 Mmu.Read (Addr.addr_of 1 0) in
  Alcotest.(check bool) "nested c-bit is SME" true (sel2 = Memctrl.Smek);
  Alcotest.(check bool) "guest c-bit wins" true (sel1 = Memctrl.Asid 7)

let test_guest_rw_encrypted () =
  let m, gpt, npt = guest_env () in
  Mmu.guest_write m ~domid:1 ~gpt ~npt ~asid:7 ~addr:(Addr.addr_of 1 0)
    (Bytes.of_string "enc guest data");
  Alcotest.(check string) "guest reads own data" "enc guest data"
    (Bytes.to_string (Mmu.guest_read m ~domid:1 ~gpt ~npt ~asid:7 ~addr:(Addr.addr_of 1 0) ~len:14));
  let raw = Physmem.read_raw m.Machine.mem 11 ~off:0 ~len:14 in
  Alcotest.(check bool) "DRAM ciphertext" false (Bytes.to_string raw = "enc guest data")

let test_guest_npt_fault () =
  let m, gpt, npt = guest_env () in
  Pagetable.hw_set gpt 5 (Some { Pagetable.frame = 9; writable = true; executable = false; c_bit = false });
  try
    ignore (Mmu.guest_read m ~domid:1 ~gpt ~npt ~asid:7 ~addr:(Addr.addr_of 5 0) ~len:1);
    Alcotest.fail "expected NPT fault"
  with Mmu.Npt_fault { gfn; domid; _ } ->
    Alcotest.(check int) "faulting gfn" 9 gfn;
    Alcotest.(check int) "domid" 1 domid

let test_guest_gpt_protections () =
  let m, gpt, npt = guest_env () in
  (try
     ignore (Mmu.guest_read m ~domid:1 ~gpt ~npt ~asid:7 ~addr:(Addr.addr_of 9 0) ~len:1);
     Alcotest.fail "expected guest PT fault"
   with Mmu.Fault { reason; _ } ->
     Alcotest.(check string) "gpt miss" "guest page table: not present" reason);
  try
    Mmu.guest_write m ~domid:1 ~gpt ~npt ~asid:7 ~addr:(Addr.addr_of 3 0) (Bytes.of_string "x");
    Alcotest.fail "expected guest RO fault"
  with Mmu.Fault { reason; _ } ->
    Alcotest.(check string) "gpt ro" "guest page table: read-only" reason

let test_cache_leak_channel () =
  (* The plaintext-cache remap channel the paper describes: after a guest
     encrypted access, a Plain read of the same frame hits the cache. *)
  let m, gpt, npt = guest_env () in
  Mmu.guest_write m ~domid:1 ~gpt ~npt ~asid:7 ~addr:(Addr.addr_of 1 0)
    (Bytes.of_string "0123456789abcdef");
  let snoop = Mmu.read_frame_as m ~sel:Memctrl.Plain 11 ~off:0 ~len:16 in
  Alcotest.(check string) "resident line leaks" "0123456789abcdef" (Bytes.to_string snoop);
  Cache.invalidate_page m.Machine.cache 11;
  let snoop2 = Mmu.read_frame_as m ~sel:Memctrl.Plain 11 ~off:0 ~len:16 in
  Alcotest.(check bool) "after eviction only ciphertext" false
    (Bytes.to_string snoop2 = "0123456789abcdef")

(* --- Cache FIFO bookkeeping ------------------------------------------------ *)

(* The eviction queue may carry ghost keys (lines removed by
   [invalidate_page], purged lazily), but the bookkeeping must never drift:
   the live-key count seen by the eviction scan equals the resident-line
   count, residency never exceeds capacity, and compaction bounds the raw
   queue length. A regression here silently shrinks effective capacity —
   the bug class this pins down. *)
let test_cache_fifo_invariants =
  QCheck.Test.make ~name:"FIFO queue tracks live lines under fill/invalidate"
    ~count:100
    QCheck.(
      list_of_size (Gen.int_range 1 400)
        (triple (int_bound 2) (int_bound 30) (int_bound 7)))
    (fun ops ->
      let nr_lines = 8 in
      let cache = Cache.create ~nr_lines (Cost.ledger ()) in
      let line = Bytes.make Addr.block_size 'x' in
      List.iter
        (fun (op, pfn, block) ->
          match op with
          | 0 | 1 -> Cache.fill cache pfn ~block line
          | _ -> Cache.invalidate_page cache pfn)
        ops;
      Cache.order_live cache = Cache.resident cache
      && Cache.resident cache <= nr_lines
      && Cache.order_length cache <= (4 * nr_lines) + 1)

(* --- interned charge sites -------------------------------------------------- *)

(* The interned fast path must be observationally identical to the
   string-keyed ledger: same totals, same category rows, same scope
   attribution, for any interleaving of charges inside and outside
   scopes. *)
let test_ledger_interned_equivalence =
  QCheck.Test.make ~name:"charge_id = charge (string-keyed reference ledger)"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 0 100) (pair (int_bound 4) (int_bound 50)))
    (fun ops ->
      let labels = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon" |] in
      let ids = Array.map Cost.intern labels in
      let by_string = Cost.ledger () and by_id = Cost.ledger () in
      List.iteri
        (fun i (k, amt) ->
          if i mod 3 = 0 then begin
            Cost.with_scope by_string "s" (fun () -> Cost.charge by_string labels.(k) amt);
            Cost.with_scope by_id "s" (fun () -> Cost.charge_id by_id ids.(k) amt)
          end
          else begin
            Cost.charge by_string labels.(k) amt;
            Cost.charge_id by_id ids.(k) amt
          end)
        ops;
      Array.for_all (fun i -> Cost.id_label ids.(i) = labels.(i))
        [| 0; 1; 2; 3; 4 |]
      && Cost.total by_string = Cost.total by_id
      && Cost.categories by_string = Cost.categories by_id
      && Cost.scopes by_string = Cost.scopes by_id
      && Cost.scope_categories by_string "s" = Cost.scope_categories by_id "s")

let prop t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hw"
    [ ( "addr",
        [ prop test_addr_roundtrip; Alcotest.test_case "constants" `Quick test_addr_constants ] );
      ( "cost",
        [ Alcotest.test_case "ledger" `Quick test_ledger;
          Alcotest.test_case "paper constants" `Quick test_cost_paper_constants;
          prop test_ledger_interned_equivalence ] );
      ( "physmem",
        [ Alcotest.test_case "rw" `Quick test_physmem_rw;
          Alcotest.test_case "bounds" `Quick test_physmem_bounds;
          Alcotest.test_case "bit flip" `Quick test_physmem_flip;
          Alcotest.test_case "dump is a copy" `Quick test_physmem_dump_is_copy ] );
      ( "memctrl",
        [ Alcotest.test_case "plain" `Quick test_memctrl_plain;
          Alcotest.test_case "encrypted roundtrip" `Quick test_memctrl_encrypted_roundtrip;
          Alcotest.test_case "wrong key garbage" `Quick test_memctrl_wrong_key_garbage;
          Alcotest.test_case "uninstall" `Quick test_memctrl_uninstall;
          prop test_memctrl_partial_rmw;
          Alcotest.test_case "reencrypt/copy" `Quick test_memctrl_reencrypt_and_copy;
          Alcotest.test_case "fw/slot agreement" `Quick test_memctrl_fw_matches_slot;
          Alcotest.test_case "cost charging" `Quick test_memctrl_charges;
          Alcotest.test_case "golden page digests" `Quick test_memctrl_golden ] );
      ("tlb", [ Alcotest.test_case "lookup/flush" `Quick test_tlb ]);
      ( "cache",
        [ Alcotest.test_case "fill/probe" `Quick test_cache_fill_probe;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "copies" `Quick test_cache_returns_copies;
          prop test_cache_fifo_invariants ] );
      ( "pagetable",
        [ prop test_pt_roundtrip;
          Alcotest.test_case "clear" `Quick test_pt_clear;
          Alcotest.test_case "backing/reverse" `Quick test_pt_backing_and_reverse;
          Alcotest.test_case "entries live in physmem" `Quick test_pt_lives_in_physmem ] );
      ( "cpu-vmcb",
        [ Alcotest.test_case "registers" `Quick test_cpu_regs;
          Alcotest.test_case "defaults" `Quick test_cpu_defaults;
          Alcotest.test_case "reg names" `Quick test_reg_names;
          Alcotest.test_case "vmcb" `Quick test_vmcb;
          Alcotest.test_case "exit reason codes" `Quick test_exit_reason_codes ] );
      ( "insn",
        [ Alcotest.test_case "registry/scrub" `Quick test_insn_registry;
          Alcotest.test_case "fetch check" `Quick test_insn_execute_fetch_check;
          Alcotest.test_case "inject" `Quick test_insn_inject ] );
      ( "machine",
        [ Alcotest.test_case "alloc scrub" `Quick test_machine_alloc_scrub;
          Alcotest.test_case "alloc unique" `Quick test_machine_alloc_unique;
          Alcotest.test_case "exhaustion" `Quick test_machine_exhaustion;
          Alcotest.test_case "dma/iommu" `Quick test_machine_dma_iommu ] );
      ( "mmu",
        [ Alcotest.test_case "host rw" `Quick test_mmu_rw;
          Alcotest.test_case "not present" `Quick test_mmu_not_present;
          Alcotest.test_case "WP semantics" `Quick test_mmu_wp_semantics;
          Alcotest.test_case "exec/NX" `Quick test_mmu_exec_nx;
          Alcotest.test_case "W^X detection" `Quick test_mmu_wx;
          Alcotest.test_case "set_pte mediation" `Quick test_mmu_set_pte_mediation;
          Alcotest.test_case "guest selectors" `Quick test_guest_walk_selectors;
          Alcotest.test_case "SME priority" `Quick test_guest_sme_priority;
          Alcotest.test_case "guest encrypted rw" `Quick test_guest_rw_encrypted;
          Alcotest.test_case "NPT fault" `Quick test_guest_npt_fault;
          Alcotest.test_case "guest PT protections" `Quick test_guest_gpt_protections;
          Alcotest.test_case "cache leak channel" `Quick test_cache_leak_channel ] ) ]
