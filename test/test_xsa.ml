(* The quantitative XSA analysis (paper Section 6.2) as a test suite. *)

module Db = Fidelius_xsa.Db
module Classify = Fidelius_xsa.Classify
module Report = Fidelius_xsa.Report

let test_corpus_size () =
  Alcotest.(check int) "235 advisories" 235 (List.length Db.all);
  Alcotest.(check int) "numbers unique" 235
    (List.length (List.sort_uniq compare (List.map (fun r -> r.Db.xsa) Db.all)))

let test_paper_numbers () =
  let s = Report.compute () in
  Alcotest.(check int) "total" 235 s.Report.total;
  Alcotest.(check int) "hypervisor-related" 177 s.Report.hypervisor_related;
  Alcotest.(check int) "thwarted privesc" 31 s.Report.thwarted_privilege;
  Alcotest.(check int) "thwarted leaks" 22 s.Report.thwarted_leak;
  Alcotest.(check int) "guest flaws" 14 s.Report.guest_flaws;
  Alcotest.(check int) "qemu" 58 s.Report.qemu;
  Alcotest.(check int) "partition" s.Report.hypervisor_related
    (s.Report.thwarted_privilege + s.Report.thwarted_leak + s.Report.guest_flaws + s.Report.dos)

let test_paper_percentages () =
  let s = Report.compute () in
  let close a b = abs_float (a -. b) < 0.1 in
  Alcotest.(check bool) "17.5%" true
    (close (Report.pct_of_hypervisor s s.Report.thwarted_privilege) 17.5);
  Alcotest.(check bool) "12.4%" true
    (close (Report.pct_of_hypervisor s s.Report.thwarted_leak) 12.4);
  Alcotest.(check bool) "7.9%" true
    (close (Report.pct_of_hypervisor s s.Report.guest_flaws) 7.9)

let test_empty_denominator () =
  (* An empty hypervisor slice must read as 0%, never nan%, and the report
     must render a count-is-zero note instead of percentage rows. *)
  let empty =
    { Report.total = 3;
      hypervisor_related = 0;
      thwarted_privilege = 0;
      thwarted_leak = 0;
      guest_flaws = 0;
      dos = 0;
      qemu = 3 }
  in
  let pct = Report.pct_of_hypervisor empty 0 in
  Alcotest.(check bool) "not nan" false (Float.is_nan pct);
  Alcotest.(check (float 0.0)) "zero" 0.0 pct;
  let rendered = Format.asprintf "%a" Report.pp empty in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "no nan in output" false (contains rendered "nan");
  Alcotest.(check bool) "zero-count note" true (contains rendered "percentages omitted")

let test_classification_rules () =
  List.iter
    (fun r ->
      let e = Classify.effect_of r in
      (match r.Db.component with
      | Db.Qemu -> Alcotest.(check bool) "qemu out of scope" true (e = Classify.Out_of_scope_qemu)
      | Db.Hypervisor -> (
          match r.Db.category with
          | Db.Privilege_escalation | Db.Information_leak ->
              Alcotest.(check bool) "hv privesc/leak thwarted" true (e = Classify.Thwarted)
          | Db.Guest_internal ->
              Alcotest.(check bool) "guest flaw" true (e = Classify.Guest_flaw)
          | Db.Denial_of_service ->
              Alcotest.(check bool) "dos" true (e = Classify.Dos_not_targeted)));
      Alcotest.(check bool) "rationale nonempty" true (String.length (Classify.why r) > 0))
    Db.all

let test_pinned_records () =
  let find n = List.find_opt (fun r -> r.Db.xsa = n) Db.all in
  (match find 148 with
  | Some r ->
      Alcotest.(check bool) "XSA-148 is hypervisor privesc" true
        (r.Db.component = Db.Hypervisor && r.Db.category = Db.Privilege_escalation);
      Alcotest.(check bool) "XSA-148 thwarted" true (Classify.effect_of r = Classify.Thwarted)
  | None -> Alcotest.fail "XSA-148 missing");
  (match find 108 with
  | Some r ->
      Alcotest.(check bool) "XSA-108 is info leak" true (r.Db.category = Db.Information_leak)
  | None -> Alcotest.fail "XSA-108 missing");
  match find 133 with
  | Some r -> Alcotest.(check bool) "XSA-133 (VENOM) is qemu" true (r.Db.component = Db.Qemu)
  | None -> Alcotest.fail "XSA-133 missing"

let test_years_plausible () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "year in range" true (r.Db.year >= 2011 && r.Db.year <= 2018))
    Db.all

let test_sample_and_count () =
  Alcotest.(check int) "sample size" 5 (List.length (Report.sample_thwarted 5));
  List.iter
    (fun r ->
      Alcotest.(check bool) "samples are thwarted" true
        (Classify.effect_of r = Classify.Thwarted))
    (Report.sample_thwarted 10);
  Alcotest.(check int) "count filter composes" 31
    (Db.count ~component:Db.Hypervisor ~category:Db.Privilege_escalation ())

let () =
  Alcotest.run "xsa"
    [ ( "corpus",
        [ Alcotest.test_case "size" `Quick test_corpus_size;
          Alcotest.test_case "paper numbers" `Quick test_paper_numbers;
          Alcotest.test_case "paper percentages" `Quick test_paper_percentages;
          Alcotest.test_case "empty denominator" `Quick test_empty_denominator;
          Alcotest.test_case "years" `Quick test_years_plausible ] );
      ( "classification",
        [ Alcotest.test_case "rules" `Quick test_classification_rules;
          Alcotest.test_case "pinned records" `Quick test_pinned_records;
          Alcotest.test_case "sampling/count" `Quick test_sample_and_count ] ) ]
