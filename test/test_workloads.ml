(* Tests for the workload engine and the shape of the paper's performance
   results (Figures 5 and 6, Table 3). Absolute values are simulator cycle
   counts; what the paper's evaluation establishes — and what these tests
   pin — is the *ordering* and rough magnitude of the overheads. *)

module W = Fidelius_workloads
module Profile = W.Profile
module Engine = W.Engine
module Fio = W.Fio

let find_spec name = Option.get (W.Spec2006.find name)

(* cache the expensive suite runs *)
let spec = lazy (Engine.run_suite W.Spec2006.all)
let parsec = lazy (Engine.run_suite W.Parsec.all)
let fio = lazy (Fio.table ())

let avg f rows = List.fold_left (fun a r -> a +. f r) 0.0 rows /. float_of_int (List.length rows)

let test_profiles_complete () =
  Alcotest.(check int) "11 SPEC programs" 11 (List.length W.Spec2006.all);
  Alcotest.(check int) "13 PARSEC programs" 13 (List.length W.Parsec.all);
  List.iter
    (fun p ->
      Alcotest.(check bool) (p.Profile.name ^ " sane") true
        (p.Profile.total_mcycles > 0
        && p.Profile.mem_stall_fraction >= 0.0
        && p.Profile.mem_stall_fraction < 1.0
        && p.Profile.working_set_pages > 0
        && p.Profile.vmexits >= 0))
    (W.Spec2006.all @ W.Parsec.all);
  Alcotest.(check bool) "find miss" true (W.Spec2006.find "quake" = None)

let test_run_result_shape () =
  let p = find_spec "bzip2" in
  let r = Engine.run p Engine.Xen_baseline in
  Alcotest.(check bool) "positive cycles" true (r.Engine.cycles > 0);
  Alcotest.(check bool) "sampled access cost" true (r.Engine.per_access > 0.0);
  Alcotest.(check bool) "sampled exit cost" true (r.Engine.per_exit > 0.0);
  Alcotest.(check bool) "breakdown populated" true (List.length r.Engine.breakdown > 0)

let test_determinism () =
  let p = find_spec "mcf" in
  let a = Engine.run p Engine.Fidelius_enc in
  let b = Engine.run p Engine.Fidelius_enc in
  Alcotest.(check int) "identical reruns" a.Engine.cycles b.Engine.cycles

let test_fidelius_overhead_small () =
  (* Paper: Fidelius alone costs < 1% on average (Figures 5 and 6). *)
  let savg = avg (fun (_, f, _) -> f) (Lazy.force spec) in
  let pavg = avg (fun (_, f, _) -> f) (Lazy.force parsec) in
  Alcotest.(check bool) (Printf.sprintf "SPEC fidelius avg %.2f%% in (0, 2)" savg) true
    (savg > 0.0 && savg < 2.0);
  Alcotest.(check bool) (Printf.sprintf "PARSEC fidelius avg %.2f%% in (0, 1)" pavg) true
    (pavg > 0.0 && pavg < 1.0)

let test_spec_enc_shape () =
  (* mcf and omnetpp are the memory-bound outliers; bzip2/hmmer/h264ref are
     nearly free; the suite average lands near the paper's 5.38%. *)
  let rows = Lazy.force spec in
  let enc name = match List.find_opt (fun (p, _, _) -> p.Profile.name = name) rows with
    | Some (_, _, e) -> e
    | None -> Alcotest.fail ("missing " ^ name)
  in
  Alcotest.(check bool) "mcf in [15, 20]" true (enc "mcf" > 15.0 && enc "mcf" < 20.0);
  Alcotest.(check bool) "omnetpp in [14, 19]" true (enc "omnetpp" > 14.0 && enc "omnetpp" < 19.0);
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " < 1.5%") true (enc n < 1.5))
    [ "bzip2"; "hmmer"; "h264ref" ];
  Alcotest.(check bool) "mcf is the worst" true
    (List.for_all (fun (p, _, e) -> p.Profile.name = "mcf" || e <= enc "mcf") rows);
  let a = avg (fun (_, _, e) -> e) rows in
  Alcotest.(check bool) (Printf.sprintf "SPEC enc avg %.2f%% in [4, 7]" a) true
    (a > 4.0 && a < 7.0)

let test_parsec_enc_shape () =
  let rows = Lazy.force parsec in
  let enc name = match List.find_opt (fun (p, _, _) -> p.Profile.name = name) rows with
    | Some (_, _, e) -> e
    | None -> Alcotest.fail ("missing " ^ name)
  in
  Alcotest.(check bool) "canneal in [12, 17]" true
    (enc "canneal" > 12.0 && enc "canneal" < 17.0);
  Alcotest.(check bool) "canneal is the outlier" true
    (List.for_all (fun (p, _, e) -> p.Profile.name = "canneal" || e < 5.0) rows);
  let a = avg (fun (_, _, e) -> e) rows in
  Alcotest.(check bool) (Printf.sprintf "PARSEC enc avg %.2f%% in [1, 3.5]" a) true
    (a > 1.0 && a < 3.5)

let test_enc_dominates_fid () =
  (* Memory encryption always costs at least as much as Fidelius alone. *)
  List.iter
    (fun (p, f, e) ->
      Alcotest.(check bool) (p.Profile.name ^ ": enc >= fid") true (e >= f -. 0.05))
    (Lazy.force spec @ Lazy.force parsec)

let test_per_access_costs_ordered () =
  let p = find_spec "mcf" in
  let base = Engine.run p Engine.Xen_baseline in
  let fid = Engine.run p Engine.Fidelius in
  let enc = Engine.run p Engine.Fidelius_enc in
  Alcotest.(check bool) "fidelius alone doesn't tax memory" true
    (abs_float (fid.Engine.per_access -. base.Engine.per_access)
     < 0.1 *. base.Engine.per_access);
  Alcotest.(check bool) "SME taxes memory" true
    (enc.Engine.per_access > 1.15 *. base.Engine.per_access);
  Alcotest.(check bool) "fidelius taxes exits" true
    (fid.Engine.per_exit > 1.2 *. base.Engine.per_exit)

(* --- fio / Table 3 ---------------------------------------------------------- *)

let fio_row name =
  match List.find_opt (fun r -> r.Fio.pattern.Fio.pat_name = name) (Lazy.force fio) with
  | Some r -> r
  | None -> Alcotest.fail ("missing fio pattern " ^ name)

let test_fio_patterns_present () =
  Alcotest.(check int) "four rows" 4 (List.length (Lazy.force fio));
  List.iter (fun n -> ignore (fio_row n)) [ "rand-read"; "seq-read"; "rand-write"; "seq-write" ]

let test_fio_shape () =
  let rr = fio_row "rand-read" and sr = fio_row "seq-read" in
  let rw = fio_row "rand-write" and sw = fio_row "seq-write" in
  (* Paper Table 3: seq-read is by far the worst (22.91%), writes are mild
     (0.70% / 3.61%), rand-read small (1.38%). *)
  Alcotest.(check bool)
    (Printf.sprintf "seq-read %.1f%% in [18, 28]" sr.Fio.slowdown_pct)
    true
    (sr.Fio.slowdown_pct > 18.0 && sr.Fio.slowdown_pct < 28.0);
  Alcotest.(check bool) "rand-read < 3%" true (rr.Fio.slowdown_pct < 3.0);
  Alcotest.(check bool) "rand-write < 2%" true (rw.Fio.slowdown_pct < 2.0);
  Alcotest.(check bool) "seq-write in [2, 6]" true
    (sw.Fio.slowdown_pct > 2.0 && sw.Fio.slowdown_pct < 6.0);
  Alcotest.(check bool) "seq-read is the worst row" true
    (List.for_all (fun r -> r.Fio.slowdown_pct <= sr.Fio.slowdown_pct) (Lazy.force fio))

let test_fio_rates_positive () =
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Fio.pattern.Fio.pat_name ^ " rates positive") true
        (r.Fio.xen_rate > 0.0 && r.Fio.fidelius_rate > 0.0 && r.Fio.fidelius_rate <= r.Fio.xen_rate))
    (Lazy.force fio)

let test_fio_random_much_slower_than_seq () =
  (* 4K random I/O is orders of magnitude slower than streaming, as on real
     disks (paper: 1.5 MB/s vs 1196 MB/s). *)
  let rr = fio_row "rand-read" and sr = fio_row "seq-read" in
  let rr_mbs = rr.Fio.xen_rate /. 1024.0 in
  Alcotest.(check bool) "seq >> rand" true (sr.Fio.xen_rate > 10.0 *. rr_mbs)

(* --- golden CSVs ------------------------------------------------------------ *)

(* The evaluation CSVs are pinned byte-for-byte: the engine seeds come from
   a stable FNV-1a hash (not [Hashtbl.hash], which changes across OCaml
   releases), so any drift here means either a deliberate model change —
   regenerate with `bench/main.exe fig5 fig6 tab3` and copy from results/ —
   or an accidental nondeterminism, which this test exists to catch. *)
(* cwd is test/ under `dune runtest`, the workspace root under `dune exec`. *)
let read_golden name =
  let candidates =
    [ Filename.concat "golden" name; Filename.concat (Filename.concat "test" "golden") name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> In_channel.with_open_bin path In_channel.input_all
  | None -> Alcotest.failf "golden file %s not found" name

let check_golden name header rows =
  let actual = String.concat "" (List.map (fun r -> r ^ "\n") (header :: rows)) in
  Alcotest.(check string) (name ^ " matches golden") (read_golden name) actual

let figure_rows rows =
  List.map
    (fun (p, f, e) -> Printf.sprintf "%s,%.3f,%.3f" p.Profile.name f e)
    rows

let test_golden_figure_5 () =
  check_golden "figure_5.csv" "benchmark,fidelius_pct,fidelius_enc_pct"
    (figure_rows (Lazy.force spec))

let test_golden_figure_6 () =
  check_golden "figure_6.csv" "benchmark,fidelius_pct,fidelius_enc_pct"
    (figure_rows (Lazy.force parsec))

let test_golden_table_3 () =
  check_golden "table_3.csv" "operation,xen_rate,fidelius_rate,unit,slowdown_pct"
    (List.map
       (fun r ->
         Printf.sprintf "%s,%.2f,%.2f,%s,%.3f" r.Fio.pattern.Fio.pat_name r.Fio.xen_rate
           r.Fio.fidelius_rate r.Fio.pattern.Fio.unit_name r.Fio.slowdown_pct)
       (Lazy.force fio))

let test_seed_stability () =
  (* The FNV-1a-derived seeds are part of the golden contract. *)
  Alcotest.(check bool) "distinct per config" true
    (Engine.seed_of (find_spec "mcf") Engine.Fidelius
    <> Engine.seed_of (find_spec "mcf") Engine.Fidelius_enc);
  Alcotest.(check bool) "distinct per profile" true
    (Engine.seed_of (find_spec "mcf") Engine.Fidelius
    <> Engine.seed_of (find_spec "bzip2") Engine.Fidelius);
  Alcotest.(check bool) "positive" true
    (List.for_all
       (fun p ->
         List.for_all
           (fun c -> Engine.seed_of p c > 0L)
           [ Engine.Xen_baseline; Engine.Fidelius; Engine.Fidelius_enc ])
       (W.Spec2006.all @ W.Parsec.all))

let test_config_names () =
  Alcotest.(check string) "xen" "xen" (Engine.config_to_string Engine.Xen_baseline);
  Alcotest.(check string) "fidelius" "fidelius" (Engine.config_to_string Engine.Fidelius);
  Alcotest.(check string) "fidelius-enc" "fidelius-enc" (Engine.config_to_string Engine.Fidelius_enc)

let () =
  Alcotest.run "workloads"
    [ ( "profiles",
        [ Alcotest.test_case "complete" `Quick test_profiles_complete;
          Alcotest.test_case "run shape" `Quick test_run_result_shape;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "config names" `Quick test_config_names ] );
      ( "figures",
        [ Alcotest.test_case "fidelius avg < 1-2%" `Slow test_fidelius_overhead_small;
          Alcotest.test_case "SPEC enc shape (Fig 5)" `Slow test_spec_enc_shape;
          Alcotest.test_case "PARSEC enc shape (Fig 6)" `Slow test_parsec_enc_shape;
          Alcotest.test_case "enc >= fid" `Slow test_enc_dominates_fid;
          Alcotest.test_case "per-op cost ordering" `Quick test_per_access_costs_ordered ] );
      ( "fio",
        [ Alcotest.test_case "patterns" `Quick test_fio_patterns_present;
          Alcotest.test_case "Table 3 shape" `Quick test_fio_shape;
          Alcotest.test_case "rates" `Quick test_fio_rates_positive;
          Alcotest.test_case "rand vs seq" `Quick test_fio_random_much_slower_than_seq ] );
      ( "golden",
        [ Alcotest.test_case "seed stability" `Quick test_seed_stability;
          Alcotest.test_case "figure 5 CSV" `Slow test_golden_figure_5;
          Alcotest.test_case "figure 6 CSV" `Slow test_golden_figure_6;
          Alcotest.test_case "table 3 CSV" `Quick test_golden_table_3 ] ) ]
