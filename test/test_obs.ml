(* Tests for the observability subsystem: the Cost scope-attribution
   invariant, the trace ring buffer, and both exporters. The golden JSONL
   trace pins the determinism contract — ledger-clock timestamps mean the
   same seed yields a byte-identical trace. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Rng = Fidelius_crypto.Rng
module Cost = Hw.Cost
module Obs = Fidelius_obs
module Trace = Obs.Trace
module Json = Obs.Json

(* --- Cost scope attribution -------------------------------------------- *)

let test_scope_basics () =
  let l = Cost.ledger () in
  Cost.charge l "a" 10;
  Cost.with_scope l "dom1" (fun () -> Cost.charge l "a" 5);
  Alcotest.(check int) "total" 15 (Cost.total l);
  Alcotest.(check int) "dom1" 5 (Cost.scope_total l "dom1");
  Alcotest.(check int) "root remainder" 10 (Cost.scope_total l Cost.root_scope);
  Alcotest.(check (list (pair string int))) "scopes listing"
    [ ("(root)", 10); ("dom1", 5) ]
    (Cost.scopes l)

let test_scope_innermost_only () =
  let l = Cost.ledger () in
  Cost.with_scope l "outer" (fun () ->
      Cost.charge l "a" 1;
      Cost.with_scope l "inner" (fun () -> Cost.charge l "a" 2);
      Cost.charge l "a" 4);
  Alcotest.(check int) "outer books its own charges only" 5
    (Cost.scope_total l "outer");
  Alcotest.(check int) "inner" 2 (Cost.scope_total l "inner");
  Alcotest.(check int) "no root residue" 0 (Cost.scope_total l Cost.root_scope)

let test_scope_exception_safety () =
  let l = Cost.ledger () in
  (try Cost.with_scope l "doomed" (fun () -> Cost.charge l "a" 3; failwith "boom")
   with Failure _ -> ());
  Cost.charge l "a" 7;
  Alcotest.(check int) "scope popped on raise" 7 (Cost.scope_total l Cost.root_scope);
  Alcotest.(check int) "charges inside kept" 3 (Cost.scope_total l "doomed")

let test_negative_charge_rejected () =
  let l = Cost.ledger () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Cost.charge: negative charge -4 to \"dram\"") (fun () ->
      Cost.charge l "dram" (-4));
  Alcotest.(check int) "nothing booked" 0 (Cost.total l)

let test_root_scope_reserved () =
  let l = Cost.ledger () in
  Alcotest.(check bool) "with_scope rejects (root)" true
    (try
       Cost.with_scope l Cost.root_scope (fun () -> false)
     with Invalid_argument _ -> true)

let test_categories_tie_break () =
  let l = Cost.ledger () in
  List.iter (fun c -> Cost.charge l c 5) [ "zeta"; "alpha"; "mid" ];
  Cost.charge l "big" 9;
  Alcotest.(check (list (pair string int))) "desc count, asc name on ties"
    [ ("big", 9); ("alpha", 5); ("mid", 5); ("zeta", 5) ]
    (Cost.categories l)

(* Property: under arbitrary nesting and charging, per-scope attribution
   sums exactly to the global total, and scope_categories agree with the
   per-scope totals. *)
type op = Charge of int | Scoped of int * op list

let op_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then map (fun c -> Charge c) (int_bound 1000)
          else
            frequency
              [ (2, map (fun c -> Charge c) (int_bound 1000));
                ( 1,
                  map2
                    (fun s ops -> Scoped (s, ops))
                    (int_bound 4)
                    (list_size (int_bound 4) (self (n / 2))) ) ])
        n)

let rec op_print = function
  | Charge c -> Printf.sprintf "Charge %d" c
  | Scoped (s, ops) ->
      Printf.sprintf "Scoped (%d, [%s])" s (String.concat "; " (List.map op_print ops))

let arbitrary_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_bound 8) op_gen)

let scope_name i = Printf.sprintf "scope%d" i

let rec interpret l = function
  | Charge c -> Cost.charge l "work" c
  | Scoped (s, ops) ->
      Cost.with_scope l (scope_name s) (fun () -> List.iter (interpret l) ops)

let prop_scope_sums_to_total =
  QCheck.Test.make ~count:300 ~name:"sum(scopes) = total under nesting"
    arbitrary_ops (fun ops ->
      let l = Cost.ledger () in
      List.iter (interpret l) ops;
      let scope_sum = List.fold_left (fun a (_, v) -> a + v) 0 (Cost.scopes l) in
      let per_scope_cats_ok =
        List.for_all
          (fun (s, v) ->
            v
            = List.fold_left (fun a (_, c) -> a + c) 0 (Cost.scope_categories l s))
          (Cost.scopes l)
      in
      scope_sum = Cost.total l && per_scope_cats_ok)

(* --- trace ring buffer -------------------------------------------------- *)

(* Tracing is process-global: every test that records re-enables from a
   clean state and disables afterwards. *)
let with_trace ?capacity ?clock f =
  Trace.enable ?capacity ?clock ();
  Fun.protect ~finally:(fun () -> Trace.disable (); Trace.clear ()) f

let test_ring_wrap () =
  with_trace ~capacity:4 (fun () ->
      for i = 0 to 9 do
        Trace.emit (Trace.Gate (1 + (i mod 3)))
      done;
      Alcotest.(check int) "emitted" 10 (Trace.emitted ());
      Alcotest.(check int) "dropped" 6 (Trace.dropped ());
      let es = Trace.entries () in
      Alcotest.(check int) "retained" 4 (List.length es);
      Alcotest.(check (list int)) "oldest-first, newest retained" [ 6; 7; 8; 9 ]
        (List.map (fun e -> e.Trace.seq) es))

let test_disabled_emits_nothing () =
  Trace.clear ();
  Alcotest.(check bool) "off" false (Trace.enabled ());
  Trace.emit (Trace.Mark "ignored");
  Alcotest.(check int) "no entries" 0 (List.length (Trace.entries ()))

let test_clock_and_scope_tagging () =
  let l = Cost.ledger () in
  with_trace ~clock:(fun () -> Cost.total l) (fun () ->
      Cost.charge l "setup" 100;
      Trace.emit (Trace.Mark "before");
      Cost.with_scope l "dom7" (fun () ->
          Cost.charge l "work" 23;
          Trace.emit (Trace.Mark "inside"));
      match Trace.entries () with
      | [ a; b ] ->
          Alcotest.(check int) "ledger timestamp" 100 a.Trace.ts;
          Alcotest.(check string) "unscoped" "" a.Trace.scope;
          Alcotest.(check int) "later timestamp" 123 b.Trace.ts;
          Alcotest.(check string) "scope mirrored from Cost.with_scope" "dom7"
            b.Trace.scope
      | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es))

(* --- golden JSONL trace -------------------------------------------------- *)

(* The demo scenario distilled to its post-boot core: a protected guest
   writes a secret, the hypervisor round-trips a hypercall. Boot noise is
   excluded (tracing starts after install) to keep the golden file small;
   the full demo trace is exercised end-to-end by the trace-smoke alias. *)
let demo_slice () =
  let machine = Hw.Machine.create ~seed:2026L () in
  let ledger = machine.Hw.Machine.ledger in
  let hv = Xen.Hypervisor.boot machine in
  let fid = Core.Fidelius.install hv in
  let rng = Rng.create 77L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng
      ~platform_public:(Core.Fidelius.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ Bytes.make Hw.Addr.page_size '\000' ]
  in
  let dom =
    match
      Core.Fidelius.boot_protected_vm fid ~name:"golden" ~memory_pages:8 ~prepared
    with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  Trace.enable ~clock:(fun () -> Cost.total ledger) ();
  Trace.emit (Trace.Mark "slice-start");
  Xen.Hypervisor.in_guest hv dom (fun () ->
      Xen.Domain.write machine dom ~addr:0x3000 (Bytes.of_string "golden secret"));
  ignore (Xen.Hypervisor.hypercall hv dom (Xen.Hypercall.Console_write "hi"));
  Trace.emit (Trace.Mark "slice-end");
  Trace.disable ();
  (machine, ledger)

(* cwd is test/ under `dune runtest`, the workspace root under `dune exec`. *)
let read_golden name =
  let candidates =
    [ Filename.concat "golden" name; Filename.concat (Filename.concat "test" "golden") name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> In_channel.with_open_bin path In_channel.input_all
  | None -> Alcotest.failf "golden file %s not found" name

let test_golden_jsonl () =
  let _machine, _ledger = demo_slice () in
  let actual = Trace.to_jsonl () in
  Trace.clear ();
  let golden = read_golden "trace_demo.jsonl" in
  if golden <> actual then begin
    (* Dump next to the runner so a deliberate regeneration is one copy. *)
    Out_channel.with_open_bin "trace_demo.actual.jsonl" (fun oc ->
        output_string oc actual);
    Alcotest.failf
      "golden trace mismatch (%d vs %d bytes); actual dumped to %s"
      (String.length golden) (String.length actual)
      (Filename.concat (Sys.getcwd ()) "trace_demo.actual.jsonl")
  end

let test_jsonl_well_formed () =
  let _machine, ledger = demo_slice () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Trace.to_jsonl ()))
  in
  Trace.clear ();
  Alcotest.(check bool) "non-empty" true (lines <> []);
  let last_seq = ref (-1) and last_ts = ref (-1) in
  List.iter
    (fun line ->
      let j = Json.parse line in
      let geti k =
        match Json.member k j with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.failf "missing int %S in %s" k line
      in
      let seq = geti "seq" and ts = geti "ts" in
      Alcotest.(check bool) "seq strictly increasing" true (seq > !last_seq);
      Alcotest.(check bool) "ts non-decreasing" true (ts >= !last_ts);
      Alcotest.(check bool) "ts within ledger" true (ts <= Cost.total ledger);
      last_seq := seq;
      last_ts := ts)
    lines

(* --- Chrome exporter round-trip ----------------------------------------- *)

let test_chrome_roundtrip () =
  let _machine, ledger = demo_slice () in
  let attribution = Cost.scopes ledger in
  let total = Cost.total ledger in
  let events = List.length (Trace.entries ()) in
  let json = Trace.to_chrome ~attribution ~total_cycles:total () in
  Trace.clear ();
  let reparsed = Json.parse (Json.to_string json) in
  Alcotest.(check bool) "print/parse round-trips structurally" true
    (reparsed = json);
  (match Json.member "traceEvents" reparsed with
  | Some (Json.Arr evs) -> Alcotest.(check int) "all events exported" events (List.length evs)
  | _ -> Alcotest.fail "traceEvents missing");
  match Option.bind (Json.member "otherData" reparsed) (Json.member "attribution") with
  | Some (Json.Obj fields) ->
      let s =
        List.fold_left
          (fun a (_, v) -> match v with Json.Int n -> a + n | _ -> a)
          0 fields
      in
      Alcotest.(check int) "attribution sums to ledger total" total s
  | _ -> Alcotest.fail "otherData.attribution missing"

(* --- Json parser --------------------------------------------------------- *)

let test_json_escapes () =
  let j = Json.Obj [ ("k\"\\\n", Json.Str "v\t\x01") ] in
  Alcotest.(check bool) "escape round-trip" true (Json.parse (Json.to_string j) = j)

let test_json_values () =
  List.iter
    (fun (s, v) -> Alcotest.(check bool) s true (Json.parse s = v))
    [ ("null", Json.Null);
      ("true", Json.Bool true);
      ("-42", Json.Int (-42));
      ("2.5", Json.Float 2.5);
      ("[1,[2],{}]", Json.Arr [ Json.Int 1; Json.Arr [ Json.Int 2 ]; Json.Obj [] ]);
      ("  {\"a\" : 1}  ", Json.Obj [ ("a", Json.Int 1) ]) ]

let test_json_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true
        (try
           ignore (Json.parse s);
           false
         with Json.Parse_error _ -> true))
    [ "{"; "[1,]"; "nul"; "\"unterminated"; "1 2"; "" ]

let () =
  Alcotest.run "obs"
    [ ( "cost-scopes",
        [ Alcotest.test_case "basics" `Quick test_scope_basics;
          Alcotest.test_case "innermost-only booking" `Quick test_scope_innermost_only;
          Alcotest.test_case "exception safety" `Quick test_scope_exception_safety;
          Alcotest.test_case "negative charge" `Quick test_negative_charge_rejected;
          Alcotest.test_case "root reserved" `Quick test_root_scope_reserved;
          Alcotest.test_case "tie-break" `Quick test_categories_tie_break;
          QCheck_alcotest.to_alcotest prop_scope_sums_to_total ] );
      ( "ring",
        [ Alcotest.test_case "wrap" `Quick test_ring_wrap;
          Alcotest.test_case "disabled" `Quick test_disabled_emits_nothing;
          Alcotest.test_case "clock and scope" `Quick test_clock_and_scope_tagging ] );
      ( "export",
        [ Alcotest.test_case "golden jsonl" `Slow test_golden_jsonl;
          Alcotest.test_case "jsonl well-formed" `Quick test_jsonl_well_formed;
          Alcotest.test_case "chrome round-trip" `Quick test_chrome_roundtrip ] );
      ( "json",
        [ Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "rejects" `Quick test_json_rejects ] ) ]
