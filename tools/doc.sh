#!/bin/sh
# Build the API docs with odoc, treating every odoc warning as an error.
#
# odoc is an optional dependency: environments without it (including the
# minimal CI image) skip doc generation rather than fail the build, so
# `make check` stays green everywhere while still enforcing warning-free
# docs wherever odoc is available. Set ODOC_REQUIRED=1 (make doc-strict)
# to turn a missing odoc into a failure instead — for environments that
# are supposed to publish the docs.
set -eu

cd "$(dirname "$0")/.."

if ! command -v odoc >/dev/null 2>&1; then
  if [ "${ODOC_REQUIRED:-0}" = "1" ]; then
    echo "doc: odoc not installed and ODOC_REQUIRED=1; failing"
    exit 1
  fi
  echo "doc: odoc not installed; skipping API-doc build (install odoc to enable)"
  exit 0
fi

# The project has no public package, so the documented entry point is the
# private-library alias. Warnings land on stderr; fail on any.
out=$(dune build @doc @doc-private 2>&1) || {
  echo "$out"
  echo "doc: build failed"
  exit 1
}
if printf '%s' "$out" | grep -qi 'warning'; then
  printf '%s\n' "$out"
  echo "doc: odoc warnings are errors"
  exit 1
fi
echo "doc: API docs built under _build/default/_doc/"
