(** Virtual disk backing store (512-byte sectors).

    Lives on the dom0 / management-VM side of the world: in the threat model
    its contents are fully visible to the attacker, which is why both of the
    paper's I/O-protection schemes arrange for only ciphertext to reach it. *)

type t

val sector_size : int

val create : nr_sectors:int -> t
val of_bytes : bytes -> t
(** Rounded up to whole sectors. *)

val nr_sectors : t -> int

val read : t -> sector:int -> count:int -> bytes
val write : t -> sector:int -> bytes -> unit
(** Length must be a multiple of the sector size. *)

val peek : t -> sector:int -> count:int -> bytes
(** The attacker's view of the platter — identical to {!read}; a separate
    name so attack code reads honestly. *)
