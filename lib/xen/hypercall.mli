(** Hypercall vocabulary.

    [Pre_sharing] is the hypercall Fidelius *adds* (paper Section 4.3.7): the
    granting guest declares its sharing intent directly to Fidelius before
    the ordinary grant-table flow, giving the GIT its ground truth.
    [Enable_mem_enc] is the paper's evaluation hypercall (Section 7.1): the
    guest asks for the C-bit to be set in its nested mappings so subsequent
    memory traffic is encrypted by the SME engine. *)

type grant_op =
  | Grant_access of { target : int; gfn : Fidelius_hw.Addr.gfn; writable : bool }
  | Map_grant of { gref : int }
  | End_access of { gref : int }

type call =
  | Void                  (** the paper's micro-benchmark round trip *)
  | Console_write of string
  | Event_send of { port : int }
  | Grant_table_op of grant_op
  | Pre_sharing of { target : int; gfn : Fidelius_hw.Addr.gfn; nr : int; writable : bool }
  | Enable_mem_enc
  | Balloon_release of { gfn : Fidelius_hw.Addr.gfn }
      (** guest voluntarily returns one of its pages to the host pool *)

val number : call -> int
(** ABI number, loaded into RAX before VMMCALL. *)

val to_string : call -> string
