type t = { mutable queue : Domain.t list }

let create () = { queue = [] }

let add t dom =
  if not (List.memq dom t.queue) then t.queue <- t.queue @ [ dom ]

let remove t dom = t.queue <- List.filter (fun d -> not (d == dom)) t.queue

let is_runnable (d : Domain.t) = d.Domain.state = Domain.Runnable

let next t =
  match List.filter is_runnable t.queue with
  | [] -> None
  | dom :: _ ->
      (* Rotate the chosen domain to the back. *)
      t.queue <- List.filter (fun d -> not (d == dom)) t.queue @ [ dom ];
      Some dom

let runnable t = List.filter is_runnable t.queue
