(** Round-robin vCPU scheduler (credit-scheduler stand-in).

    The simulator runs one domain's work at a time; the scheduler's job is
    to pick whose turn it is and to account world switches. *)

type t

val create : unit -> t
val add : t -> Domain.t -> unit
val remove : t -> Domain.t -> unit
val next : t -> Domain.t option
(** Next runnable domain, rotating fairly; [None] when none are runnable. *)

val runnable : t -> Domain.t list
