(** Para-virtualized block device: front-end (guest) and back-end (driver
    domain) over bounded shared rings and granted data frames.

    This is the I/O path of paper Section 2.3/4.3.5. The shared data frames
    are unencrypted guest pages (DMA-style memory cannot carry the C-bit),
    so whatever the front-end places there is readable by the back-end and
    by the hypervisor — hence the paper's two encoders, which the front-end
    accepts as a {!codec}:

    - the identity codec (stock Xen): plaintext crosses the shared frame;
    - AES-NI codec (Fidelius): sectors encrypted with the disk key Kblk;
    - SEV codec (Fidelius): sectors transformed by the s-dom/r-dom firmware
      contexts.

    The data movements are real memory traffic through the simulated MMU on
    both sides; the cost model charges the appropriate encoder rates.

    {2 Batched datapath}

    A device can expose several independent queues (multi-queue, keyed per
    vCPU via {!queue_for}) and several data frames per queue. The front-end
    then submits up to [buffer_pages] requests per doorbell
    ({!submit_batch}, or [?batch] on the sector helpers): one [Event_send]
    hypercall and one backend drain serve the whole batch, amortizing the
    9.9 µs world switch. At [batch = 1] (the defaults) the wire traffic,
    disk contents and charged ledger costs are byte-identical to the
    pre-batching synchronous path.

    The back-end validates every descriptor against the vdisk and the
    granted frames {e before} charging or copying, and answers malformed
    ones with a typed {!Ring.error} — the ring is an untrusted input
    channel and fails closed. *)

module Hw = Fidelius_hw

type codec = {
  codec_name : string;
  encode : sector:int -> bytes -> bytes;
  (** Applied by the front-end before data enters the shared frame. *)
  decode : sector:int -> bytes -> bytes;
  (** Applied by the front-end after data leaves the shared frame. *)
}

val identity_codec : codec

val sectors_per_frame : int
(** Sectors per data frame (page_size / sector_size = 8) — the maximum
    [count] of one ring request. *)

type backend
type frontend

val connect :
  ?ring_size:int ->
  ?buffer_pages:int ->
  ?nr_queues:int ->
  Hypervisor.t ->
  Domain.t ->
  disk:Vdisk.t ->
  buffer_gvfn:Hw.Addr.vfn ->
  (frontend * backend, string) result
(** Wire a guest front-end to a dom0 back-end serving [disk]: for each of
    the [nr_queues] queues (default 1), the guest maps [buffer_pages]
    fresh unencrypted pages (default 1) starting at [buffer_gvfn] as data
    buffers, grants them to dom0, publishes the wiring through XenStore,
    and dom0 binds the ring. [ring_size] (default {!Ring.default_size})
    must be a power of two. Queue [q]'s pages sit at
    [buffer_gvfn + q*buffer_pages ..]. *)

val set_codec : frontend -> codec -> unit

val nr_queues : frontend -> int
val buffer_pages : frontend -> int

val queue_for : frontend -> vcpu:int -> int
(** The queue a submitting vCPU owns: [vcpu mod nr_queues]. *)

val fresh_req_id : frontend -> int

val data_gref : ?queue:int -> frontend -> page:int -> int
(** Grant reference of one of the queue's data frames — what a raw
    {!submit_batch} request should carry in [data_gref]. *)

val submit_batch :
  ?queue:int ->
  frontend ->
  Ring.request list ->
  ((unit, Ring.error) result list, string) result
(** Submit N raw ring requests with a single doorbell hypercall and return
    their statuses in request order. Fails (without submitting) when the
    batch exceeds the ring's free slots — backpressure — and fails closed
    on any response-protocol violation (missing, stray or misnumbered
    responses). *)

val read_sectors :
  ?batch:int -> ?queue:int -> frontend -> sector:int -> count:int -> (bytes, string) result
(** Guest-visible read: back-end copies disk sectors into shared frames,
    front-end copies them out and decodes. Serves up to [batch] (clamped
    to [buffer_pages], default 1) frame-sized requests per doorbell. *)

val write_sectors :
  ?batch:int -> ?queue:int -> frontend -> sector:int -> bytes -> (unit, string) result
(** Guest-visible write: front-end encodes into shared frames, back-end
    copies to disk. Same batching as {!read_sectors}. *)

val frontend_ring : ?queue:int -> frontend -> Ring.t
(** The shared descriptor ring itself. The ring lives in dom0-visible
    memory, so this doubles as the attacker's descriptor-forgery surface
    (stray responses, malformed requests) for tests and the attack suite. *)

val shared_frame : backend -> Hw.Addr.pfn
(** The host frame backing queue 0's first data buffer — the attacker's
    observation point on the I/O path. *)

val backend_disk : backend -> Vdisk.t

val requests_served : backend -> int
(** Every descriptor the backend consumed, valid or not. *)

val requests_rejected : backend -> int
(** Descriptors answered with a typed error by fail-closed validation. *)

val notifications : backend -> int
(** Doorbells received — [requests_served / notifications] is the achieved
    batch factor. *)
