(** Para-virtualized block device: front-end (guest) and back-end (driver
    domain) over a shared ring and a granted data frame.

    This is the I/O path of paper Section 2.3/4.3.5. The shared data frame
    is an unencrypted guest page (DMA-style memory cannot carry the C-bit),
    so whatever the front-end places there is readable by the back-end and
    by the hypervisor — hence the paper's two encoders, which the front-end
    accepts as a {!codec}:

    - the identity codec (stock Xen): plaintext crosses the shared frame;
    - AES-NI codec (Fidelius): sectors encrypted with the disk key Kblk;
    - SEV codec (Fidelius): sectors transformed by the s-dom/r-dom firmware
      contexts.

    The data movements are real memory traffic through the simulated MMU on
    both sides; the cost model charges the appropriate encoder rates. *)

module Hw = Fidelius_hw

type codec = {
  codec_name : string;
  encode : sector:int -> bytes -> bytes;
  (** Applied by the front-end before data enters the shared frame. *)
  decode : sector:int -> bytes -> bytes;
  (** Applied by the front-end after data leaves the shared frame. *)
}

val identity_codec : codec

type backend
type frontend

val connect :
  Hypervisor.t ->
  Domain.t ->
  disk:Vdisk.t ->
  buffer_gvfn:Hw.Addr.vfn ->
  (frontend * backend, string) result
(** Wire a guest front-end to a dom0 back-end serving [disk]:
    the guest maps a fresh unencrypted page at [buffer_gvfn] as the shared
    data buffer, grants it to dom0, publishes the grant reference and event
    channel through XenStore, and dom0 binds the ring. *)

val set_codec : frontend -> codec -> unit

val read_sectors : frontend -> sector:int -> count:int -> (bytes, string) result
(** Guest-visible read: back-end copies disk sectors into the shared frame,
    front-end copies them out and decodes. At most a frame's worth
    (8 sectors) per call. *)

val write_sectors : frontend -> sector:int -> bytes -> (unit, string) result
(** Guest-visible write: front-end encodes into the shared frame, back-end
    copies to disk. *)

val shared_frame : backend -> Hw.Addr.pfn
(** The host frame backing the shared buffer — the attacker's observation
    point on the I/O path. *)

val backend_disk : backend -> Vdisk.t

val requests_served : backend -> int
