(** Para-virtualized I/O ring (block protocol flavour).

    Ring *data* travels through real simulated memory: each request names a
    grant reference for the data frame, and both ends copy sector payloads
    through their own (permission- and encryption-checked) access paths.
    The descriptor queues themselves are modelled as host-side queues
    attached to the shared frame — their few bytes of metadata carry no
    confidential payload, matching the paper's focus on protecting the data
    path rather than ring indices. *)

type op = Read | Write

type request = {
  req_id : int;
  op : op;
  sector : int;      (** first 512-byte sector *)
  count : int;       (** number of sectors *)
  data_gref : int;   (** grant reference of the data buffer frame *)
  data_off : int;    (** offset of the payload inside that frame *)
}

type response = {
  resp_id : int;
  status : (unit, string) result;
}

type t

val create : unit -> t
val push_request : t -> request -> unit
val pop_request : t -> request option
val push_response : t -> response -> unit
val pop_response : t -> response option
val requests_pending : t -> int
