(** Para-virtualized I/O ring (block protocol flavour).

    Ring *data* travels through real simulated memory: each request names a
    grant reference for the data frame, and both ends copy sector payloads
    through their own (permission- and encryption-checked) access paths.
    The descriptor slots themselves are modelled as host-side arrays
    attached to the shared frame — their few bytes of metadata carry no
    confidential payload, matching the paper's focus on protecting the data
    path rather than ring indices.

    Since the batched-datapath work the ring is *bounded*, like the real
    Xen shared ring: a fixed power-of-two number of descriptor slots with
    free-running producer/consumer indices on each direction. Producers see
    backpressure ({!push_request} fails with {!Ring_full}) instead of
    unbounded growth, and consumers can drain a whole batch per
    notification ({!pop_requests}). *)

type op = Read | Write

type request = {
  req_id : int;
  op : op;
  sector : int;      (** first 512-byte sector *)
  count : int;       (** number of sectors *)
  data_gref : int;   (** grant reference of the data buffer frame *)
  data_off : int;    (** offset of the payload inside that frame *)
}

(** Typed ring-protocol errors. Everything crossing the ring is input from
    the other (untrusted) side, so malformed descriptors fail closed with a
    structured reason rather than raising or being served. *)
type error =
  | Ring_full of { capacity : int }
      (** Producer overran the consumer: no free descriptor slots. *)
  | Bad_count of { count : int; max_count : int }
      (** Zero, negative, or more sectors than fit one data frame. *)
  | Bad_sector of { sector : int; count : int; nr_sectors : int }
      (** [sector, sector+count) not within the backing vdisk. *)
  | Bad_span of { data_off : int; len : int; frame_bytes : int }
      (** Payload span does not fit inside the granted data frame. *)
  | Bad_gref of { gref : int; reason : string }
      (** Data grant unknown to this queue, revoked, or not for dom0. *)
  | Duplicate_req_id of { req_id : int }
      (** Two in-flight requests share an id; responses would be
          unmatchable, so the second fails. *)
  | Backend_fault of string
      (** The backend's own copy faulted while serving the request. *)

val error_to_string : error -> string

type response = {
  resp_id : int;
  status : (unit, error) result;
}

type t

val default_size : int
(** 32 descriptor slots per direction. *)

val create : ?size:int -> unit -> t
(** [create ?size ()] makes a ring with [size] request slots and [size]
    response slots. [size] must be a power of two ≥ 2 (like Xen's
    [__RING_SIZE]); raises [Invalid_argument] otherwise. *)

val size : t -> int

val push_request : t -> request -> (unit, error) result
(** Fails with {!Ring_full} when all request slots are in flight —
    the frontend's backpressure signal. *)

val pop_request : t -> request option

val pop_requests : t -> max:int -> request list
(** Drain up to [max] pending requests in FIFO order — the backend's
    batch consumption step (one event notification, N descriptors). *)

val push_response : t -> response -> (unit, error) result
val pop_response : t -> response option
val pop_responses : t -> max:int -> response list

val requests_pending : t -> int
val responses_pending : t -> int
val free_request_slots : t -> int
val free_response_slots : t -> int

val indices : t -> (int * int) * (int * int)
(** [((req_prod, req_cons), (resp_prod, resp_cons))] — the free-running
    producer/consumer indices, for observability and tests. *)
