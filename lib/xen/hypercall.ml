type grant_op =
  | Grant_access of { target : int; gfn : Fidelius_hw.Addr.gfn; writable : bool }
  | Map_grant of { gref : int }
  | End_access of { gref : int }

type call =
  | Void
  | Console_write of string
  | Event_send of { port : int }
  | Grant_table_op of grant_op
  | Pre_sharing of { target : int; gfn : Fidelius_hw.Addr.gfn; nr : int; writable : bool }
  | Enable_mem_enc
  | Balloon_release of { gfn : Fidelius_hw.Addr.gfn }

let number = function
  | Void -> 0
  | Console_write _ -> 18
  | Event_send _ -> 32
  | Grant_table_op _ -> 20
  | Pre_sharing _ -> 63
  | Enable_mem_enc -> 64
  | Balloon_release _ -> 65

let to_string = function
  | Void -> "void"
  | Console_write _ -> "console_write"
  | Event_send { port } -> Printf.sprintf "event_send(%d)" port
  | Grant_table_op (Grant_access { target; gfn; writable }) ->
      Printf.sprintf "grant_access(target=%d gfn=0x%x w=%b)" target gfn writable
  | Grant_table_op (Map_grant { gref }) -> Printf.sprintf "map_grant(%d)" gref
  | Grant_table_op (End_access { gref }) -> Printf.sprintf "end_access(%d)" gref
  | Pre_sharing { target; gfn; nr; writable } ->
      Printf.sprintf "pre_sharing(target=%d gfn=0x%x nr=%d w=%b)" target gfn nr writable
  | Enable_mem_enc -> "enable_mem_enc"
  | Balloon_release { gfn } -> Printf.sprintf "balloon_release(gfn=0x%x)" gfn
