type op = Read | Write

type request = {
  req_id : int;
  op : op;
  sector : int;
  count : int;
  data_gref : int;
  data_off : int;
}

type error =
  | Ring_full of { capacity : int }
  | Bad_count of { count : int; max_count : int }
  | Bad_sector of { sector : int; count : int; nr_sectors : int }
  | Bad_span of { data_off : int; len : int; frame_bytes : int }
  | Bad_gref of { gref : int; reason : string }
  | Duplicate_req_id of { req_id : int }
  | Backend_fault of string

let error_to_string = function
  | Ring_full { capacity } -> Printf.sprintf "ring: full (%d slots in flight)" capacity
  | Bad_count { count; max_count } ->
      Printf.sprintf "ring: bad sector count %d (must be 1..%d)" count max_count
  | Bad_sector { sector; count; nr_sectors } ->
      Printf.sprintf "ring: sectors %d+%d outside disk of %d sectors" sector count nr_sectors
  | Bad_span { data_off; len; frame_bytes } ->
      Printf.sprintf "ring: payload span %d+%d outside the %d-byte data frame" data_off len
        frame_bytes
  | Bad_gref { gref; reason } -> Printf.sprintf "ring: bad data grant %d (%s)" gref reason
  | Duplicate_req_id { req_id } -> Printf.sprintf "ring: duplicate in-flight req_id %d" req_id
  | Backend_fault m -> "backend fault: " ^ m

type response = {
  resp_id : int;
  status : (unit, error) result;
}

(* One direction of the shared ring: a power-of-two slot array under
   free-running producer/consumer indices (prod - cons = in flight),
   the shape of Xen's ring.h macros. *)
type 'a half = {
  slots : 'a option array;
  mask : int;
  mutable prod : int;
  mutable cons : int;
}

let half_create size = { slots = Array.make size None; mask = size - 1; prod = 0; cons = 0 }

let half_push h v ~capacity =
  if h.prod - h.cons >= Array.length h.slots then Error (Ring_full { capacity })
  else begin
    h.slots.(h.prod land h.mask) <- Some v;
    h.prod <- h.prod + 1;
    Ok ()
  end

let half_pop h =
  if h.cons = h.prod then None
  else begin
    let i = h.cons land h.mask in
    let v = h.slots.(i) in
    h.slots.(i) <- None;
    h.cons <- h.cons + 1;
    v
  end

let half_pending h = h.prod - h.cons

type t = {
  ring_size : int;
  req : request half;
  resp : response half;
}

let default_size = 32

let is_pow2 n = n >= 2 && n land (n - 1) = 0

let create ?(size = default_size) () =
  if not (is_pow2 size) then
    invalid_arg (Printf.sprintf "Ring.create: size %d must be a power of two >= 2" size);
  { ring_size = size; req = half_create size; resp = half_create size }

let size t = t.ring_size

let push_request t r = half_push t.req r ~capacity:t.ring_size
let pop_request t = half_pop t.req
let push_response t r = half_push t.resp r ~capacity:t.ring_size
let pop_response t = half_pop t.resp

let pop_many pop t ~max =
  let rec go acc n =
    if n <= 0 then List.rev acc
    else match pop t with None -> List.rev acc | Some v -> go (v :: acc) (n - 1)
  in
  go [] max

let pop_requests t ~max = pop_many pop_request t ~max
let pop_responses t ~max = pop_many pop_response t ~max

let requests_pending t = half_pending t.req
let responses_pending t = half_pending t.resp
let free_request_slots t = t.ring_size - half_pending t.req
let free_response_slots t = t.ring_size - half_pending t.resp

let indices t = ((t.req.prod, t.req.cons), (t.resp.prod, t.resp.cons))
