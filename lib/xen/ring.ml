type op = Read | Write

type request = {
  req_id : int;
  op : op;
  sector : int;
  count : int;
  data_gref : int;
  data_off : int;
}

type response = {
  resp_id : int;
  status : (unit, string) result;
}

type t = {
  requests : request Queue.t;
  responses : response Queue.t;
}

let create () = { requests = Queue.create (); responses = Queue.create () }

let push_request t r = Queue.push r t.requests
let pop_request t = if Queue.is_empty t.requests then None else Some (Queue.pop t.requests)
let push_response t r = Queue.push r t.responses
let pop_response t = if Queue.is_empty t.responses then None else Some (Queue.pop t.responses)
let requests_pending t = Queue.length t.requests
