(** Event channels: Xen's asynchronous notification primitive.

    A channel binds two domains' ports; [send] marks the remote port pending
    and [dispatch] runs the handler the receiving side registered. The PV
    block protocol and Fidelius' retrofitted I/O-encryption notifications
    both ride on this. *)

type t

type port = int

val create : Fidelius_hw.Cost.ledger -> t

val alloc_unbound : t -> domid:int -> remote:int -> port
(** Allocate a port on [domid] that [remote] may bind to. *)

val bind : t -> domid:int -> remote_port:port -> (port, string) result
(** Complete the interdomain binding; returns the local port. *)

val on_event : t -> domid:int -> port:port -> (unit -> unit) -> unit
(** Register the handler run when this port is notified. If a notification
    already parked on the port (sent before any handler existed), it is
    delivered immediately — events are edge-triggered but never lost. *)

val send : t -> domid:int -> port:port -> (unit, string) result
(** Notify the peer port; its handler (if any) runs synchronously here,
    which models the scheduler promptly running the notified vCPU. *)

val pending : t -> domid:int -> port:port -> bool
