(** Para-virtualized network interface.

    The same trust shape as the block path: frames cross an unencrypted
    shared page granted to dom0, whose virtual switch ("the wire") forwards
    them — and can read or rewrite every byte. The paper assumes SSL covers
    this channel (Section 4.3.5); pairing this module with
    {!Fidelius_crypto.Secure_channel} demonstrates that assumption holding:
    the driver domain sees only handshake public values and record
    ciphertext, and any tampering breaks the record MACs.

    A {!wire} is a point-to-point vif pair between the first two endpoints
    connected to it, with explicit dom0-side snoop and tamper channels for
    the attack suite. *)

module Hw = Fidelius_hw

type wire
type endpoint

val create_wire : ?capacity:int -> unit -> wire
(** The wire's inbound queues are bounded ([capacity] frames per receiver,
    default 512): a sender overrunning a slow receiver gets a typed
    backpressure error instead of unbounded growth. *)

val wire_capacity : wire -> int

val connect :
  Hypervisor.t -> Domain.t -> wire:wire -> buffer_gvfn:Hw.Addr.vfn ->
  (endpoint, string) result
(** Attach a guest: allocates the unencrypted shared frame, declares intent
    and grants it to dom0, binds the event channel. At most two endpoints
    per wire. *)

val send : endpoint -> bytes -> (unit, string) result
(** Transmit one frame (at most a page): front-end copies it into the
    shared buffer, the back-end forwards it onto the wire toward the peer.
    Charges per-frame costs. *)

val recv : endpoint -> (bytes option, string) result
(** Take the next queued inbound frame, copied in through the shared
    buffer. [None] when the queue is empty. *)

val send_batch : endpoint -> bytes list -> (unit, string) result
(** Transmit N frames with one event-channel notification: the frames are
    staged back-to-back (length-prefixed) in the shared page, written and
    forwarded in one doorbell. Costs one event-channel charge plus N copy
    charges — at N = 1 exactly what {!send} charges. Fails closed (before
    charging or staging) when the batch exceeds the page or would overrun
    the wire queue, and on any corrupt length prefix. *)

val recv_batch : ?max:int -> endpoint -> (bytes list, string) result
(** Take up to [max] (default: all) queued inbound frames in one
    notification, as many as fit the shared page; the remainder stays
    queued. [[]] when nothing is pending. Same cost shape as
    {!send_batch}. *)

val pending : endpoint -> int

(** {2 The driver domain's view} *)

val snoop : wire -> bytes list
(** Every frame currently queued anywhere on the wire, as dom0 sees it. *)

val snoop_log : wire -> bytes list
(** Every frame that ever crossed the wire (dom0 records traffic). *)

val tamper : wire -> (bytes -> bytes) -> unit
(** Rewrite all queued frames (man-in-the-middle). *)

val frames_forwarded : wire -> int
