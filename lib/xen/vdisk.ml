type t = { mutable data : bytes }

let sector_size = 512

let create ~nr_sectors =
  if nr_sectors <= 0 then invalid_arg "Vdisk.create: nr_sectors must be positive";
  { data = Bytes.make (nr_sectors * sector_size) '\000' }

let of_bytes b =
  let len = Bytes.length b in
  let padded = ((len + sector_size - 1) / sector_size) * sector_size in
  let data = Bytes.make (max padded sector_size) '\000' in
  Bytes.blit b 0 data 0 len;
  { data }

let nr_sectors t = Bytes.length t.data / sector_size

let check t sector count =
  if sector < 0 || count < 0 || (sector + count) * sector_size > Bytes.length t.data then
    invalid_arg (Printf.sprintf "Vdisk: sectors %d+%d out of range" sector count)

let read t ~sector ~count =
  check t sector count;
  Bytes.sub t.data (sector * sector_size) (count * sector_size)

let write t ~sector data =
  let len = Bytes.length data in
  if len mod sector_size <> 0 then
    invalid_arg "Vdisk.write: length must be a multiple of the sector size";
  check t sector (len / sector_size);
  Bytes.blit data 0 t.data (sector * sector_size) len

let peek = read
