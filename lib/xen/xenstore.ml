type t = { store : (string, string) Hashtbl.t }

let create () = { store = Hashtbl.create 64 }

let own_prefix domid = Printf.sprintf "/local/domain/%d/" domid

let write t ~domid ~path value =
  let allowed =
    domid = 0
    || String.length path >= String.length (own_prefix domid)
       && String.sub path 0 (String.length (own_prefix domid)) = own_prefix domid
  in
  (* An ACL rejection is the store *defending* itself, not a caller bug:
     raise the dedicated denial exception so the attack harness can tell
     it apart from a crash. *)
  if not allowed then
    Fidelius_hw.Denial.deny "xenstore: dom%d may not write %s" domid path;
  Hashtbl.replace t.store path value

let read t ~path = Hashtbl.find_opt t.store path

let tamper t ~path value = Hashtbl.replace t.store path value

let keys t ~prefix =
  Hashtbl.fold
    (fun k _ acc ->
      if String.length k >= String.length prefix && String.sub k 0 (String.length prefix) = prefix
      then k :: acc
      else acc)
    t.store []
  |> List.sort compare
