(** The Xen-like hypervisor: boot, domain lifecycle, vmexit/vmrun world
    switching, hypercall dispatch, NPT management, grant operations.

    Every path that Fidelius mediates is routed through a replaceable hook
    (the [mediation] record): NPT and host-mapping updates, grant-table
    updates, the guest-exit and guest-entry boundaries, guest frame
    allocation/release, and the two Fidelius-specific hypercalls. The
    defaults implement stock (insecure-against-itself) Xen behaviour, so the
    same hypervisor code runs both the baseline and the protected stacks —
    mirroring how Fidelius retrofits rather than replaces Xen. *)

module Hw = Fidelius_hw
module Sev = Fidelius_sev

exception Npf_unresolved of string
(** Raised by {!in_guest} when the NPF handler or re-entry is refused
    (e.g. a mediation policy denied the mapping). *)

type mediation = {
  mutable npt_update :
    Domain.t -> Hw.Addr.gfn -> Hw.Pagetable.proto option -> (unit, string) result;
  mutable host_map_update :
    Hw.Addr.vfn -> Hw.Pagetable.proto option -> (unit, string) result;
  mutable grant_update : int -> Granttab.entry option -> (unit, string) result;
  mutable on_vmexit : Domain.t -> Hw.Vmcb.exit_reason -> unit;
  mutable before_vmrun : Domain.t -> (unit, string) result;
  mutable vmrun_gate : (unit -> (unit, string) result) -> (unit, string) result;
      (** Wrapper around the VMRUN instruction fetch+execute — Fidelius'
          type-3 gate maps the instruction page just around the call. *)
  mutable on_guest_frame_alloc : Domain.t -> Hw.Addr.pfn -> unit;
  mutable on_guest_frame_release : Domain.t -> Hw.Addr.pfn -> unit;
  mutable pre_sharing :
    Domain.t -> target:int -> gfn:Hw.Addr.gfn -> nr:int -> writable:bool ->
    (unit, string) result;
  mutable enable_mem_enc : Domain.t -> (unit, string) result;
  mutable balloon_release : Domain.t -> gfn:Hw.Addr.gfn -> (unit, string) result;
      (** guest-initiated page return; the stock implementation clears the
          nested entry and frees the frame, Fidelius additionally scrubs and
          re-adopts it under PIT authority *)
}

type t = {
  machine : Hw.Machine.t;
  fw : Sev.Firmware.t;
  host_space : Hw.Pagetable.t;
  granttab : Granttab.t;
  events : Event.t;
  store : Xenstore.t;
  sched : Sched.t;
  dom0 : Domain.t;
  mutable domains : Domain.t list;
  mutable next_domid : int;
  mutable next_asid : int;
  xen_text : Hw.Addr.pfn list;   (** identity-mapped hypervisor code frames *)
  med : mediation;
  mutable vmexit_count : int;
  mutable npf_count : int;
  consoles : (int, Buffer.t) Hashtbl.t;
}

val boot : Hw.Machine.t -> t
(** Bring up the platform: build the host address space (a full direct map
    of physical memory, Xen-style), place the privileged instructions in the
    hypervisor text region (several stray copies per opcode — the state the
    binary scan later cleans up), enable paging enforcement, initialize the
    SEV firmware, dom0, grant table, event channels and XenStore. *)

(** {2 Host mappings} *)

val map_identity :
  t -> Hw.Addr.pfn -> writable:bool -> executable:bool -> (unit, string) result
(** Change the direct-map entry for one frame, through the mediation hook. *)

val unmap_identity : t -> Hw.Addr.pfn -> (unit, string) result

val host_read : t -> Hw.Addr.pfn -> off:int -> len:int -> bytes
(** Hypervisor-privilege read through the direct map (faults if the frame is
    unmapped from the host space). *)

val host_write : t -> Hw.Addr.pfn -> off:int -> bytes -> unit

(** {2 Domains} *)

val create_domain : t -> name:string -> memory_pages:int -> Domain.t
(** Unprotected guest: NPT fully populated up front (the paper's observation
    that Xen batches allocation at boot), guest page table identity-mapped
    without the C-bit. *)

val create_sev_domain :
  t -> name:string -> memory_pages:int -> kernel:bytes list -> (Domain.t, string) result
(** Plain-SEV guest (the baseline Fidelius improves on): LAUNCH flow over a
    plaintext-loaded kernel, ACTIVATE, C-bit set in the guest page table. *)

val enable_sev_es : t -> Domain.t -> unit
(** Switch an SEV domain into ES mode: from now on the hardware snapshots
    register state into the encrypted VMSA at every exit and ignores
    hypervisor writes outside the GHCB-sanctioned exchange (paper Section
    2.2's "SEV-ES" discussion). *)

val destroy_domain : t -> Domain.t -> unit
val find_domain : t -> int -> Domain.t option

(** {2 World switches} *)

val vmexit : t -> Domain.t -> Hw.Vmcb.exit_reason -> info1:int64 -> info2:int64 -> unit
(** Guest-to-host switch: saves guest state to the VMCB, runs the exit-side
    mediation hook, switches the CPU to host mode. *)

val vmrun : t -> Domain.t -> (unit, string) result
(** Host-to-guest switch through the VMRUN instruction (instruction-fetch
    checked, entry-side mediation first). *)

val vmrun_effect : t -> int64 -> (unit, string) result
(** The raw world-switch microcode: what a VMRUN instruction instance does
    once fetched. Exposed so Fidelius can re-home the instruction onto its
    own (normally unmapped) page after the binary scan. *)

val handle_npf : t -> Domain.t -> gfn:Hw.Addr.gfn -> (unit, string) result
(** The NPT-violation handler: allocate a frame and fill the nested entry
    (through the mediation hook). *)

val in_guest : t -> Domain.t -> (unit -> 'a) -> 'a
(** Run guest-side work, transparently turning NPT faults into the full
    NPF vmexit/handle/vmrun cycle and retrying. *)

val hypercall : t -> Domain.t -> Hypercall.call -> (int64, string) result
(** Complete hypercall round trip: VMMCALL vmexit, host-side dispatch,
    result in RAX, vmrun back into the guest. *)

(** {2 Instruction emulation}

    Guest-executed intercepted instructions, each a full masked world
    switch: the guest loads its arguments into registers, exits, the
    hypervisor emulates (seeing only the exit reason's visible registers)
    and updates the reason's updatable set, and the guest reads the result
    after re-entry. *)

val cpuid : t -> Domain.t -> leaf:int -> (int64 * int64 * int64 * int64, string) result
(** Leaves emulated: 0 (vendor), 1 (features; bit 25 of ECX = AES-NI),
    0x8000001F (AMD SEV feature leaf: EAX bit 1 = SEV when the domain is
    SEV-protected). Unknown leaves read as zeros. *)

val rdmsr : t -> Domain.t -> msr:int -> (int64, string) result
(** EFER (0xC0000080) reflects the architectural state; other MSRs come
    from the domain's MSR store (0 when never written). *)

val wrmsr_guest : t -> Domain.t -> msr:int -> int64 -> (unit, string) result
(** Guest MSR write; the hypervisor refuses EFER rewrites (it would let a
    compromised guest kernel be confused about NX semantics). *)

(** {2 Introspection} *)

val console : t -> int -> string
val fresh_asid : t -> int
val stats : t -> int * int
(** (vmexits, nested page faults). *)
