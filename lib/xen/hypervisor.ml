module Hw = Fidelius_hw
module Sev = Fidelius_sev
module Trace = Fidelius_obs.Trace
module Plan = Fidelius_inject.Plan
module Site = Fidelius_inject.Site

exception Npf_unresolved of string

(* Per-domain cost attribution uses [Domain.scope] ("dom<id>", built once
   at creation): every cycle charged while the hypervisor works on behalf
   of a domain (guest execution, hypercall round trips, NPF handling) is
   booked to that label. Charge sites are interned once. *)
let c_world_switch = Hw.Cost.intern "world-switch"
let c_hypercall = Hw.Cost.intern "hypercall"

type mediation = {
  mutable npt_update :
    Domain.t -> Hw.Addr.gfn -> Hw.Pagetable.proto option -> (unit, string) result;
  mutable host_map_update :
    Hw.Addr.vfn -> Hw.Pagetable.proto option -> (unit, string) result;
  mutable grant_update : int -> Granttab.entry option -> (unit, string) result;
  mutable on_vmexit : Domain.t -> Hw.Vmcb.exit_reason -> unit;
  mutable before_vmrun : Domain.t -> (unit, string) result;
  mutable vmrun_gate : (unit -> (unit, string) result) -> (unit, string) result;
  mutable on_guest_frame_alloc : Domain.t -> Hw.Addr.pfn -> unit;
  mutable on_guest_frame_release : Domain.t -> Hw.Addr.pfn -> unit;
  mutable pre_sharing :
    Domain.t -> target:int -> gfn:Hw.Addr.gfn -> nr:int -> writable:bool ->
    (unit, string) result;
  mutable enable_mem_enc : Domain.t -> (unit, string) result;
  mutable balloon_release : Domain.t -> gfn:Hw.Addr.gfn -> (unit, string) result;
}

type t = {
  machine : Hw.Machine.t;
  fw : Sev.Firmware.t;
  host_space : Hw.Pagetable.t;
  granttab : Granttab.t;
  events : Event.t;
  store : Xenstore.t;
  sched : Sched.t;
  dom0 : Domain.t;
  mutable domains : Domain.t list;
  mutable next_domid : int;
  mutable next_asid : int;
  xen_text : Hw.Addr.pfn list;
  med : mediation;
  mutable vmexit_count : int;
  mutable npf_count : int;
  consoles : (int, Buffer.t) Hashtbl.t;
}

let nr_text_frames = 16

(* Domain lookup by id without the per-call closure and [Some] that
   [List.find_opt] costs on the VMRUN dispatch path. Raises [Not_found]. *)
let rec find_dom doms target =
  match doms with
  | [] -> raise Not_found
  | d :: rest -> if d.Domain.domid = target then d else find_dom rest target

(* --- stock (baseline) mediation ------------------------------------- *)

let stock_mediation machine host_space granttab =
  { npt_update =
      (fun dom gfn proto ->
        Hw.Mmu.set_pte machine ~space:host_space ~table:dom.Domain.npt gfn proto;
        Ok ());
    host_map_update =
      (fun vfn proto ->
        Hw.Mmu.set_pte machine ~space:host_space ~table:host_space vfn proto;
        Ok ());
    grant_update =
      (fun gref entry ->
        Granttab.set machine ~space:host_space granttab gref entry;
        Ok ());
    on_vmexit = (fun _ _ -> ());
    before_vmrun = (fun _ -> Ok ());
    vmrun_gate = (fun f -> f ());
    on_guest_frame_alloc = (fun _ _ -> ());
    on_guest_frame_release = (fun _ _ -> ());
    pre_sharing = (fun _ ~target:_ ~gfn:_ ~nr:_ ~writable:_ -> Ok ());
    balloon_release =
      (fun dom ~gfn ->
        match Hw.Pagetable.lookup dom.Domain.npt gfn with
        | None -> Error "balloon: gfn not backed"
        | Some npte ->
            Hw.Mmu.set_pte machine ~space:host_space ~table:dom.Domain.npt gfn None;
            dom.Domain.frames <-
              List.filter (fun f -> f <> npte.Hw.Pagetable.frame) dom.Domain.frames;
            Hw.Machine.free_frame machine npte.Hw.Pagetable.frame;
            Ok ());
    enable_mem_enc =
      (fun dom ->
        (* Stock behaviour of the paper's evaluation hypercall: set the
           C-bit in every nested mapping of the guest so the SME engine
           encrypts subsequently written memory. *)
        List.iter
          (fun (gfn, (p : Hw.Pagetable.proto)) ->
            Hw.Mmu.set_pte machine ~space:host_space ~table:dom.Domain.npt gfn
              (Some { p with c_bit = true }))
          (Hw.Pagetable.mapped_frames dom.Domain.npt);
        Ok ()) }

(* --- boot ------------------------------------------------------------ *)

let place_baseline_insns t =
  let machine = t.machine in
  let cpu = machine.Hw.Machine.cpu in
  let text = Array.of_list t.xen_text in
  let bit v pos = not (Int64.equal (Int64.logand v (Int64.shift_left 1L pos)) 0L) in
  let handlers =
    [ (Hw.Insn.Mov_cr0,
       fun v ->
         Hw.Cpu.priv_set_wp cpu (bit v 16);
         Hw.Cpu.priv_set_paging cpu (bit v 31);
         Ok ());
      (Hw.Insn.Mov_cr4, fun v -> Hw.Cpu.priv_set_smep cpu (bit v 20); Ok ());
      (Hw.Insn.Wrmsr, fun v -> Hw.Cpu.priv_set_nxe cpu (bit v 11); Ok ());
      (Hw.Insn.Mov_cr3,
       fun v ->
         Hw.Cpu.priv_set_cr3 cpu (Int64.to_int v);
         Hw.Tlb.flush_all machine.Hw.Machine.tlb;
         Ok ());
      (Hw.Insn.Lgdt, fun _ -> Ok ());
      (Hw.Insn.Lidt, fun _ -> Ok ()) ]
  in
  (* Stock Xen code carries several copies of each privileged instruction
     scattered through its text — the state the Fidelius binary scan later
     scrubs down to a monopoly. *)
  List.iteri
    (fun i (op, handler) ->
      Hw.Insn.place machine.Hw.Machine.insns op ~page:text.(i mod Array.length text) ~handler;
      Hw.Insn.place machine.Hw.Machine.insns op
        ~page:text.((i + 3) mod Array.length text)
        ~handler)
    handlers

(* Stock Xen's text holds two VMRUN sites, identified by role rather than
   bare positions so a shrunken text section degrades gracefully instead of
   raising: the dispatch-loop entry lives in the first text frame, and the
   context-switch copy sits five frames in (or as deep as the text goes).
   An empty text section is a boot-image bug and is reported as such. *)
let vmrun_sites = function
  | [] -> invalid_arg "Hypervisor.boot: xen_text has no frames to hold VMRUN"
  | entry :: rest ->
      let context_switch_copy =
        match List.nth_opt rest 4 with
        | Some page -> Some page
        | None -> ( match List.rev rest with last :: _ -> Some last | [] -> None)
      in
      entry :: Option.to_list context_switch_copy

(* The GHCB protocol of SEV-ES: the guest explicitly exposes and accepts
   exactly the registers the (hardware-recorded) exit reason requires —
   everything else stays in the encrypted VMSA. *)
let ghcb_fields = function
  | Hw.Vmcb.Cpuid | Hw.Vmcb.Vmmcall | Hw.Vmcb.Ioio | Hw.Vmcb.Msr -> [ Hw.Vmcb.Rip; Hw.Vmcb.Rax ]
  | Hw.Vmcb.Hlt | Hw.Vmcb.Intr -> [ Hw.Vmcb.Rip ]
  | Hw.Vmcb.Npf | Hw.Vmcb.Shutdown -> []

let ghcb_regs = function
  | Hw.Vmcb.Cpuid -> [ Hw.Cpu.Rax; Hw.Cpu.Rbx; Hw.Cpu.Rcx; Hw.Cpu.Rdx ]
  | Hw.Vmcb.Vmmcall -> [ Hw.Cpu.Rax ]
  | Hw.Vmcb.Ioio -> [ Hw.Cpu.Rax ]
  | Hw.Vmcb.Msr -> [ Hw.Cpu.Rax; Hw.Cpu.Rdx ]
  | Hw.Vmcb.Npf | Hw.Vmcb.Hlt | Hw.Vmcb.Intr | Hw.Vmcb.Shutdown -> []

(* The exchange above, preindexed: per exit reason, one bitmask over VMCB
   field indices and one over GPR indices, plus the shared [Some reason]
   cell — the ES boundary loops then move int64 pointers under bit tests
   with nothing allocated per switch. The list functions above stay the
   authoritative definition; the masks are folds over them at init. *)
let reason_idx (r : Hw.Vmcb.exit_reason) =
  match r with
  | Hw.Vmcb.Cpuid -> 0
  | Hw.Vmcb.Hlt -> 1
  | Hw.Vmcb.Vmmcall -> 2
  | Hw.Vmcb.Npf -> 3
  | Hw.Vmcb.Ioio -> 4
  | Hw.Vmcb.Msr -> 5
  | Hw.Vmcb.Intr -> 6
  | Hw.Vmcb.Shutdown -> 7

let reasons =
  [| Hw.Vmcb.Cpuid; Hw.Vmcb.Hlt; Hw.Vmcb.Vmmcall; Hw.Vmcb.Npf;
     Hw.Vmcb.Ioio; Hw.Vmcb.Msr; Hw.Vmcb.Intr; Hw.Vmcb.Shutdown |]

let some_reasons = Array.map (fun r -> Some r) reasons

let field_mask fs = List.fold_left (fun m f -> m lor (1 lsl Hw.Vmcb.index f)) 0 fs
let reg_mask rs = List.fold_left (fun m r -> m lor (1 lsl Hw.Cpu.reg_index r)) 0 rs
let ghcb_f_masks = Array.map (fun r -> field_mask (ghcb_fields r)) reasons
let ghcb_r_masks = Array.map (fun r -> reg_mask (ghcb_regs r)) reasons

(* The save area is the VMCB's leading fields — the masked loops below
   rely on that layout, so pin it at init. *)
let nr_save_fields = List.length Hw.Vmcb.save_area
let () = List.iteri (fun i f -> assert (Hw.Vmcb.index f = i)) Hw.Vmcb.save_area

let do_vmrun_effect t dom =
  let machine = t.machine in
  let cpu = machine.Hw.Machine.cpu in
  Hw.Cost.charge_id machine.Hw.Machine.ledger c_world_switch
    machine.Hw.Machine.costs.Hw.Cost.vmrun;
  if Trace.enabled () then Trace.emit (Trace.Vmrun { domid = dom.Domain.domid });
  if dom.Domain.sev_es then begin
    (* Hardware consistency check: an ES guest cannot be re-entered with
       its SEV control stripped. *)
    if Int64.equal (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Sev_enabled) 0L then
      Error "VMRUN: SEV-ES guest with SEV_ENABLED cleared (hardware check failed)"
    else begin
      (* Adopt only the GHCB-sanctioned exchange for the recorded exit
         reason; restore everything else from the encrypted VMSA. *)
      (match dom.Domain.last_exit with
      | Some reason ->
          let ri = reason_idx reason in
          let fm = ghcb_f_masks.(ri) and rm = ghcb_r_masks.(ri) in
          for i = 0 to Hw.Vmcb.nr_fields - 1 do
            if fm land (1 lsl i) <> 0 then
              Hw.Vmcb.set_i dom.Domain.vmsa i (Hw.Vmcb.get_i dom.Domain.vmcb i)
          done;
          for i = 0 to Hw.Cpu.nr_regs - 1 do
            if rm land (1 lsl i) <> 0 then
              dom.Domain.vmsa_regs.(i) <- Hw.Cpu.get_reg_i cpu i
          done
      | None -> ());
      for i = 0 to nr_save_fields - 1 do
        Hw.Vmcb.set_i dom.Domain.vmcb i (Hw.Vmcb.get_i dom.Domain.vmsa i)
      done;
      for i = 0 to Hw.Cpu.nr_regs - 1 do
        Hw.Cpu.set_reg_i cpu i dom.Domain.vmsa_regs.(i)
      done;
      Hw.Cpu.set_rip cpu (Hw.Vmcb.get dom.Domain.vmsa Hw.Vmcb.Rip);
      Hw.Cpu.set_mode cpu dom.Domain.guest_mode;
      Ok ()
    end
  end
  else begin
    Hw.Cpu.set_rip cpu (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rip);
    Hw.Cpu.set_reg cpu Hw.Cpu.Rax (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rax);
    Hw.Cpu.set_reg cpu Hw.Cpu.Rsp (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rsp);
    Hw.Cpu.set_mode cpu dom.Domain.guest_mode;
    Ok ()
  end

let boot machine =
  let host_space = Hw.Machine.new_table machine in
  let xen_text = Hw.Machine.alloc_frames machine nr_text_frames in
  (* Direct map: every physical frame identity-mapped, Xen-style. Text is
     RX, everything else RW/NX. Paging is not yet enforced, so these early
     stores are unmediated (real pre-paging boot). *)
  let nr = Hw.Physmem.nr_frames machine.Hw.Machine.mem in
  for pfn = 1 to nr - 1 do
    let is_text = List.mem pfn xen_text in
    Hw.Mmu.set_pte machine ~space:host_space ~table:host_space pfn
      (Some
         { Hw.Pagetable.frame = pfn;
           writable = not is_text;
           executable = is_text;
           c_bit = false })
  done;
  (* The direct map covers frames allocated later for page-table growth
     too, because it spans all of RAM up front. *)
  machine.Hw.Machine.enforce_paging <- true;
  Hw.Cpu.priv_set_cr3 machine.Hw.Machine.cpu (Hw.Pagetable.id host_space);
  let granttab = Granttab.create machine ~nr_frames:2 in
  let fw = Sev.Firmware.create machine in
  (match Sev.Firmware.init fw with Ok () -> () | Error e -> failwith e);
  let dom0 = Domain.create machine ~domid:0 ~name:"Domain-0" ~is_dom0:true ~asid:0 in
  dom0.Domain.state <- Domain.Runnable;
  let med = stock_mediation machine host_space granttab in
  let t =
    { machine;
      fw;
      host_space;
      granttab;
      events = Event.create machine.Hw.Machine.ledger;
      store = Xenstore.create ();
      sched = Sched.create ();
      dom0;
      domains = [ dom0 ];
      next_domid = 1;
      next_asid = 1;
      xen_text;
      med;
      vmexit_count = 0;
      npf_count = 0;
      consoles = Hashtbl.create 8 }
  in
  Sched.add t.sched dom0;
  place_baseline_insns t;
  (* VMRUN: the world-switch instruction, dispatching on the domid the
     hypervisor loaded as its argument. *)
  let vmrun_handler v =
    match find_dom t.domains (Int64.to_int v) with
    | dom -> do_vmrun_effect t dom
    | exception Not_found -> Error (Printf.sprintf "VMRUN: no such domain %Ld" v)
  in
  List.iter
    (fun page ->
      Hw.Insn.place machine.Hw.Machine.insns Hw.Insn.Vmrun ~page ~handler:vmrun_handler)
    (vmrun_sites xen_text);
  t

(* --- host mappings ---------------------------------------------------- *)

let map_identity t pfn ~writable ~executable =
  t.med.host_map_update pfn
    (Some { Hw.Pagetable.frame = pfn; writable; executable; c_bit = false })

let unmap_identity t pfn = t.med.host_map_update pfn None

let host_read t pfn ~off ~len =
  Hw.Mmu.read t.machine t.host_space ~addr:(Hw.Addr.addr_of pfn off) ~len

let host_write t pfn ~off data =
  Hw.Mmu.write t.machine t.host_space ~addr:(Hw.Addr.addr_of pfn off) data

(* --- domains ---------------------------------------------------------- *)

let fresh_asid t =
  let asid = t.next_asid in
  t.next_asid <- asid + 1;
  asid

let find_domain t domid = List.find_opt (fun d -> d.Domain.domid = domid) t.domains

let populate t dom memory_pages =
  (* Xen allocates most guest memory up front; NPT updates are batched at
     boot (paper Section 4.3.4). *)
  for gfn = 0 to memory_pages - 1 do
    let pfn = Hw.Machine.alloc_frame t.machine in
    dom.Domain.frames <- pfn :: dom.Domain.frames;
    t.med.on_guest_frame_alloc dom pfn;
    match
      t.med.npt_update dom gfn
        (Some { Hw.Pagetable.frame = pfn; writable = true; executable = true; c_bit = false })
    with
    | Ok () -> ()
    | Error e -> failwith ("populate: " ^ e)
  done;
  dom.Domain.next_free_gfn <- memory_pages

let init_vmcb dom =
  let vmcb = dom.Domain.vmcb in
  Hw.Vmcb.set vmcb Hw.Vmcb.Asid (Int64.of_int dom.Domain.asid);
  Hw.Vmcb.set vmcb Hw.Vmcb.Np_enabled 1L;
  Hw.Vmcb.set vmcb Hw.Vmcb.Np_cr3 (Int64.of_int (Hw.Pagetable.id dom.Domain.npt));
  Hw.Vmcb.set vmcb Hw.Vmcb.Intercepts 0xffffL;
  Hw.Vmcb.set vmcb Hw.Vmcb.Rip 0x1000L

let create_domain t ~name ~memory_pages =
  let domid = t.next_domid in
  t.next_domid <- domid + 1;
  let dom = Domain.create t.machine ~domid ~name ~is_dom0:false ~asid:(fresh_asid t) in
  populate t dom memory_pages;
  for gvfn = 0 to memory_pages - 1 do
    Domain.guest_map dom ~gvfn ~gfn:gvfn ~writable:true ~executable:true ~c_bit:false
  done;
  init_vmcb dom;
  dom.Domain.state <- Domain.Runnable;
  t.domains <- t.domains @ [ dom ];
  Sched.add t.sched dom;
  dom

let ( let* ) = Result.bind

let create_sev_domain t ~name ~memory_pages ~kernel =
  let dom = create_domain t ~name ~memory_pages in
  if List.length kernel > memory_pages then Error "kernel larger than guest memory"
  else
    let* handle = Sev.Firmware.launch_start t.fw ~policy:Sev.Firmware.policy_nodbg in
    let* () =
      List.fold_left
        (fun acc (i, page) ->
          let* () = acc in
          match Hw.Pagetable.lookup dom.Domain.npt i with
          | None -> Error (Printf.sprintf "gfn %d not populated" i)
          | Some npte ->
              (* Hypervisor loads the plaintext kernel through its direct
                 map, then the firmware encrypts it in place. *)
              host_write t npte.Hw.Pagetable.frame ~off:0 page;
              Sev.Firmware.launch_update t.fw ~handle ~pfn:npte.Hw.Pagetable.frame)
        (Ok ())
        (List.mapi (fun i p -> (i, p)) kernel)
    in
    let* _digest = Sev.Firmware.launch_finish t.fw ~handle in
    let* () = Sev.Firmware.activate t.fw ~handle ~asid:dom.Domain.asid in
    dom.Domain.sev_handle <- Some handle;
    dom.Domain.sev_protected <- true;
    Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Sev_enabled 1L;
    (* The SEV guest marks its private memory encrypted in its own page
       table; shared/IO pages are mapped with the C-bit clear later. *)
    for gvfn = 0 to memory_pages - 1 do
      Domain.guest_map dom ~gvfn ~gfn:gvfn ~writable:true ~executable:true ~c_bit:true
    done;
    Ok dom

let enable_sev_es t dom =
  ignore t;
  dom.Domain.sev_es <- true;
  (* Seed the VMSA with the current (boot-time) state. *)
  List.iter
    (fun f -> Hw.Vmcb.set dom.Domain.vmsa f (Hw.Vmcb.get dom.Domain.vmcb f))
    Hw.Vmcb.save_area

let destroy_domain t dom =
  dom.Domain.state <- Domain.Dying;
  (match dom.Domain.sev_handle with
  | Some handle ->
      ignore (Sev.Firmware.deactivate t.fw ~handle);
      ignore (Sev.Firmware.decommission t.fw ~handle)
  | None -> ());
  List.iter
    (fun pfn ->
      t.med.on_guest_frame_release dom pfn;
      Hw.Machine.free_frame t.machine pfn)
    dom.Domain.frames;
  dom.Domain.frames <- [];
  Sched.remove t.sched dom;
  t.domains <- List.filter (fun d -> not (d == dom)) t.domains

(* --- world switches --------------------------------------------------- *)

let vmexit t dom reason ~info1 ~info2 =
  let machine = t.machine in
  let cpu = machine.Hw.Machine.cpu in
  t.vmexit_count <- t.vmexit_count + 1;
  Hw.Cost.charge_id machine.Hw.Machine.ledger c_world_switch
    machine.Hw.Machine.costs.Hw.Cost.vmexit;
  if Trace.enabled () then
    Trace.emit
      (Trace.Vmexit
         { domid = dom.Domain.domid; reason = Hw.Vmcb.exit_reason_to_string reason });
  let ri = reason_idx reason in
  let vmcb = dom.Domain.vmcb in
  Hw.Vmcb.set vmcb Hw.Vmcb.Rip (Hw.Cpu.rip cpu);
  Hw.Vmcb.set vmcb Hw.Vmcb.Rax (Hw.Cpu.get_reg cpu Hw.Cpu.Rax);
  Hw.Vmcb.set vmcb Hw.Vmcb.Rsp (Hw.Cpu.get_reg cpu Hw.Cpu.Rsp);
  Hw.Vmcb.set vmcb Hw.Vmcb.Exit_reason (Hw.Vmcb.exit_reason_to_int64 reason);
  Hw.Vmcb.set vmcb Hw.Vmcb.Exit_info1 info1;
  Hw.Vmcb.set vmcb Hw.Vmcb.Exit_info2 info2;
  (* The [Some reason] cells are shared per reason — recording the exit
     does not allocate. *)
  dom.Domain.last_exit <- some_reasons.(ri);
  if dom.Domain.sev_es then begin
    (* SEV-ES hardware: snapshot the register state into the encrypted
       VMSA, then present the hypervisor only the GHCB-exposed subset. *)
    for i = 0 to nr_save_fields - 1 do
      Hw.Vmcb.set_i dom.Domain.vmsa i (Hw.Vmcb.get_i vmcb i)
    done;
    Hw.Cpu.snapshot_regs_into cpu dom.Domain.vmsa_regs;
    let fm = ghcb_f_masks.(ri) and rm = ghcb_r_masks.(ri) in
    for i = 0 to nr_save_fields - 1 do
      if fm land (1 lsl i) = 0 then Hw.Vmcb.set_i vmcb i 0L
    done;
    for i = 0 to Hw.Cpu.nr_regs - 1 do
      if rm land (1 lsl i) = 0 then Hw.Cpu.set_reg_i cpu i 0L
    done
  end;
  Hw.Cpu.set_mode cpu Hw.Cpu.Host;
  t.med.on_vmexit dom reason

let vmrun_effect t v =
  match find_dom t.domains (Int64.to_int v) with
  | dom -> do_vmrun_effect t dom
  | exception Not_found -> Error (Printf.sprintf "VMRUN: no such domain %Ld" v)

(* The VMRUN fetch+execute is one closure per domain, built on first entry
   and cached: it carries the preapplied exec-ok check and the domain's
   boxed domid, so re-entering a guest hands the gate an existing thunk
   instead of consing one per crossing. *)
let make_vmrun_thunk t dom =
  let machine = t.machine in
  let host_space = t.host_space in
  let exec_ok pfn = Hw.Mmu.exec_ok machine host_space pfn in
  let domid64 = dom.Domain.domid64 in
  fun () ->
    Hw.Insn.execute machine.Hw.Machine.insns ~exec_ok Hw.Insn.Vmrun domid64

let vmrun t dom =
  (* Direct match, not [let*]: the bind continuation would cons a closure
     per world switch. *)
  match t.med.before_vmrun dom with
  | Error _ as e -> e
  | Ok () ->
      let thunk =
        match dom.Domain.vmrun_thunk with
        | Some f -> f
        | None ->
            let f = make_vmrun_thunk t dom in
            dom.Domain.vmrun_thunk <- Some f;
            f
      in
      t.med.vmrun_gate thunk

let handle_npf t dom ~gfn =
  t.npf_count <- t.npf_count + 1;
  if Trace.enabled () then Trace.emit (Trace.Npf { domid = dom.Domain.domid; gfn });
  match Hw.Pagetable.lookup dom.Domain.npt gfn with
  | Some _ ->
      (* Mapping exists (permission-level violation): leave it to policy. *)
      Ok ()
  | None ->
      let pfn = Hw.Machine.alloc_frame t.machine in
      dom.Domain.frames <- pfn :: dom.Domain.frames;
      t.med.on_guest_frame_alloc dom pfn;
      t.med.npt_update dom gfn
        (Some { Hw.Pagetable.frame = pfn; writable = true; executable = true; c_bit = false })

let service_npf t dom ~gfn ~ctx =
  vmexit t dom Hw.Vmcb.Npf ~info1:0L ~info2:(Int64.of_int gfn);
  (match handle_npf t dom ~gfn with
  | Ok () -> ()
  | Error e -> raise (Npf_unresolved e));
  match vmrun t dom with
  | Ok () -> ()
  | Error e -> raise (Npf_unresolved ("vmrun after " ^ ctx ^ ": " ^ e))

let rec in_guest_unscoped t dom f =
  if Plan.armed () && Plan.fire Site.Spurious_npf then
    (* Unsolicited exit/resume cycle on the guest's first gfn: the platform
       interrupts the guest for no architectural reason. Every mediation
       hook on the fault path still runs, so a defence that cannot survive
       a benign extra world switch shows up here. *)
    service_npf t dom ~gfn:0 ~ctx:"spurious NPF";
  try f ()
  with Hw.Mmu.Npt_fault { gfn; _ } ->
    service_npf t dom ~gfn ~ctx:"NPF";
    in_guest_unscoped t dom f

(* Scope entry/exit by hand (matching [Cost.with_scope]'s discipline,
   including exceptions) so entering guest context allocates nothing. *)
let in_guest t dom f =
  let ledger = t.machine.Hw.Machine.ledger in
  Hw.Cost.scope_enter ledger dom.Domain.scope;
  match in_guest_unscoped t dom f with
  | v ->
      Hw.Cost.scope_exit ledger;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Hw.Cost.scope_exit ledger;
      Printexc.raise_with_backtrace e bt

(* --- hypercalls -------------------------------------------------------- *)

let console_buffer t domid =
  match Hashtbl.find_opt t.consoles domid with
  | Some b -> b
  | None ->
      let b = Buffer.create 128 in
      Hashtbl.replace t.consoles domid b;
      b

let dispatch_grant t dom op =
  match op with
  | Hypercall.Grant_access { target; gfn; writable } -> (
      match Granttab.find_free t.granttab with
      | None -> Error "grant table full"
      | Some gref ->
          let entry =
            { Granttab.owner = dom.Domain.domid; target; gfn; writable; in_use = true }
          in
          let* () = t.med.grant_update gref (Some entry) in
          Ok (Int64.of_int gref))
  | Hypercall.Map_grant { gref } -> (
      match Granttab.get t.granttab gref with
      | None -> Error (Printf.sprintf "map_grant: grant %d not in use" gref)
      | Some entry ->
          if entry.Granttab.target <> dom.Domain.domid then
            Error
              (Printf.sprintf "map_grant: grant %d is for dom%d, not dom%d" gref
                 entry.Granttab.target dom.Domain.domid)
          else (
            match find_domain t entry.Granttab.owner with
            | None -> Error "map_grant: granting domain is gone"
            | Some owner -> (
                match Hw.Pagetable.lookup owner.Domain.npt entry.Granttab.gfn with
                | None -> Error "map_grant: granted gfn not backed"
                | Some npte ->
                    let new_gfn = Domain.alloc_gfn dom in
                    let* () =
                      t.med.npt_update dom new_gfn
                        (Some
                           { Hw.Pagetable.frame = npte.Hw.Pagetable.frame;
                             writable = entry.Granttab.writable;
                             executable = false;
                             c_bit = false })
                    in
                    Ok (Int64.of_int new_gfn))))
  | Hypercall.End_access { gref } -> (
      match Granttab.get t.granttab gref with
      | None -> Error "end_access: grant not in use"
      | Some entry ->
          if entry.Granttab.owner <> dom.Domain.domid then
            Error "end_access: not the owner"
          else
            let* () = t.med.grant_update gref None in
            Ok 0L)

let dispatch t dom call =
  let machine = t.machine in
  Hw.Cost.charge_id machine.Hw.Machine.ledger c_hypercall
    machine.Hw.Machine.costs.Hw.Cost.hypercall_base;
  if Trace.enabled () then Trace.emit (Trace.Hypercall (Hypercall.to_string call));
  match call with
  | Hypercall.Void -> Ok 0L
  | Hypercall.Console_write s ->
      Buffer.add_string (console_buffer t dom.Domain.domid) s;
      Ok (Int64.of_int (String.length s))
  | Hypercall.Event_send { port } ->
      let* () = Event.send t.events ~domid:dom.Domain.domid ~port in
      Ok 0L
  | Hypercall.Grant_table_op op -> dispatch_grant t dom op
  | Hypercall.Pre_sharing { target; gfn; nr; writable } ->
      let* () = t.med.pre_sharing dom ~target ~gfn ~nr ~writable in
      Ok 0L
  | Hypercall.Enable_mem_enc ->
      let* () = t.med.enable_mem_enc dom in
      Ok 0L
  | Hypercall.Balloon_release { gfn } ->
      let* () = t.med.balloon_release dom ~gfn in
      Ok 0L

(* Hypercall numbers as shared int64 boxes, so marshalling the number into
   RAX is an array load instead of a fresh box per call. *)
let hypercall_num64 = Array.init 66 Int64.of_int

let hypercall_body t dom call =
  let machine = t.machine in
  let cpu = machine.Hw.Machine.cpu in
  (* Guest marshals the hypercall number, then VMMCALL traps. *)
  Hw.Cpu.set_reg cpu Hw.Cpu.Rax hypercall_num64.(Hypercall.number call);
  vmexit t dom Hw.Vmcb.Vmmcall ~info1:0L ~info2:0L;
  let result = dispatch t dom call in
  let ret = match result with Ok v -> v | Error _ -> -1L in
  (* The hypervisor advances the guest RIP past VMMCALL and stores the
     return value in the VMCB's RAX slot. *)
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Rax ret;
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Rip
    (Int64.add (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rip) 3L);
  match vmrun t dom with
  | Ok () -> result
  | Error e -> Error ("vmrun: " ^ e)

let hypercall t dom call =
  let ledger = t.machine.Hw.Machine.ledger in
  Hw.Cost.scope_enter ledger dom.Domain.scope;
  match hypercall_body t dom call with
  | v ->
      Hw.Cost.scope_exit ledger;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Hw.Cost.scope_exit ledger;
      Printexc.raise_with_backtrace e bt

(* --- instruction emulation --------------------------------------------- *)

let string_regs s =
  (* Pack up to 12 bytes of vendor string into (ebx, edx, ecx) order like
     real CPUID leaf 0. *)
  let word off =
    let b i = if off + i < String.length s then Char.code s.[off + i] else 0 in
    Int64.of_int (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
  in
  (word 0, word 8, word 4)

let emulate_cpuid t dom leaf =
  ignore t;
  match leaf with
  | 0 ->
      let ebx, edx, ecx = string_regs "FidelSimulated" in
      (0x8000001FL, ebx, ecx, edx)
  | 1 ->
      (* family/model in EAX; ECX bit 25 = AES-NI. *)
      (0x00800F12L, 0L, Int64.shift_left 1L 25, 0L)
  | 0x8000001F ->
      (* AMD encrypted-memory leaf: EAX bit 0 = SME, bit 1 = SEV;
         EBX[5:0] = C-bit position. *)
      let eax = if dom.Domain.sev_protected then 3L else 1L in
      (eax, 47L, 0L, 0L)
  | _ -> (0L, 0L, 0L, 0L)

let cpuid t dom ~leaf =
  let cpu = t.machine.Hw.Machine.cpu in
  Hw.Cpu.set_reg cpu Hw.Cpu.Rax (Int64.of_int leaf);
  vmexit t dom Hw.Vmcb.Cpuid ~info1:0L ~info2:0L;
  (* The handler sees RAX (visible for CPUID exits) and fills the four
     result registers — exactly the updatable set. *)
  let visible_leaf = Int64.to_int (Hw.Cpu.get_reg cpu Hw.Cpu.Rax) in
  let a, b, c, d = emulate_cpuid t dom visible_leaf in
  Hw.Cpu.set_reg cpu Hw.Cpu.Rax a;
  Hw.Cpu.set_reg cpu Hw.Cpu.Rbx b;
  Hw.Cpu.set_reg cpu Hw.Cpu.Rcx c;
  Hw.Cpu.set_reg cpu Hw.Cpu.Rdx d;
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Rax a;
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Rip
    (Int64.add (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rip) 2L);
  let* () = vmrun t dom in
  Ok
    ( Hw.Cpu.get_reg cpu Hw.Cpu.Rax,
      Hw.Cpu.get_reg cpu Hw.Cpu.Rbx,
      Hw.Cpu.get_reg cpu Hw.Cpu.Rcx,
      Hw.Cpu.get_reg cpu Hw.Cpu.Rdx )

let msr_efer = 0xC0000080

let rdmsr t dom ~msr =
  let cpu = t.machine.Hw.Machine.cpu in
  Hw.Cpu.set_reg cpu Hw.Cpu.Rcx (Int64.of_int msr);
  vmexit t dom Hw.Vmcb.Msr ~info1:0L (* 0 = read *) ~info2:0L;
  let which = Int64.to_int (Hw.Cpu.get_reg cpu Hw.Cpu.Rcx) in
  let value =
    if which = msr_efer then if Hw.Cpu.nxe cpu then 0x800L else 0L
    else match Hashtbl.find_opt dom.Domain.msrs which with Some v -> v | None -> 0L
  in
  (* EDX:EAX split as on hardware. *)
  Hw.Cpu.set_reg cpu Hw.Cpu.Rax (Int64.logand value 0xFFFFFFFFL);
  Hw.Cpu.set_reg cpu Hw.Cpu.Rdx (Int64.shift_right_logical value 32);
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Rax (Int64.logand value 0xFFFFFFFFL);
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Rip
    (Int64.add (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rip) 2L);
  let* () = vmrun t dom in
  let lo = Hw.Cpu.get_reg cpu Hw.Cpu.Rax and hi = Hw.Cpu.get_reg cpu Hw.Cpu.Rdx in
  Ok (Int64.logor (Int64.shift_left hi 32) (Int64.logand lo 0xFFFFFFFFL))

let wrmsr_guest t dom ~msr value =
  let cpu = t.machine.Hw.Machine.cpu in
  Hw.Cpu.set_reg cpu Hw.Cpu.Rcx (Int64.of_int msr);
  Hw.Cpu.set_reg cpu Hw.Cpu.Rax (Int64.logand value 0xFFFFFFFFL);
  Hw.Cpu.set_reg cpu Hw.Cpu.Rdx (Int64.shift_right_logical value 32);
  vmexit t dom Hw.Vmcb.Msr ~info1:1L (* 1 = write *) ~info2:0L;
  let which = Int64.to_int (Hw.Cpu.get_reg cpu Hw.Cpu.Rcx) in
  let result =
    if which = msr_efer then Error "wrmsr: EFER writes by guests are refused"
    else begin
      let lo = Hw.Cpu.get_reg cpu Hw.Cpu.Rax and hi = Hw.Cpu.get_reg cpu Hw.Cpu.Rdx in
      Hashtbl.replace dom.Domain.msrs which
        (Int64.logor (Int64.shift_left hi 32) (Int64.logand lo 0xFFFFFFFFL));
      Ok ()
    end
  in
  Hw.Vmcb.set dom.Domain.vmcb Hw.Vmcb.Rip
    (Int64.add (Hw.Vmcb.get dom.Domain.vmcb Hw.Vmcb.Rip) 2L);
  let* () = vmrun t dom in
  result

let console t domid =
  match Hashtbl.find_opt t.consoles domid with Some b -> Buffer.contents b | None -> ""

let stats t = (t.vmexit_count, t.npf_count)
