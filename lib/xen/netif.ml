module Hw = Fidelius_hw

type wire = {
  mutable endpoints : endpoint list; (* at most two, in connect order *)
  queues : (int, bytes Queue.t) Hashtbl.t; (* receiver slot -> inbound frames *)
  capacity : int;             (* per-slot inbound bound; senders see backpressure *)
  mutable log : bytes list;
  mutable forwarded : int;
}

and endpoint = {
  hv : Hypervisor.t;
  dom : Domain.t;
  e_wire : wire;
  slot : int;                 (* 0 or 1 *)
  buffer_gva : int;
  shared_frame : Hw.Addr.pfn;
}

let default_capacity = 512

let create_wire ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Netif.create_wire: capacity must be >= 1";
  let queues = Hashtbl.create 2 in
  Hashtbl.replace queues 0 (Queue.create ());
  Hashtbl.replace queues 1 (Queue.create ());
  { endpoints = []; queues; capacity; log = []; forwarded = 0 }

let wire_capacity wire = wire.capacity

let ( let* ) = Result.bind

let connect hv dom ~wire ~buffer_gvfn =
  if List.length wire.endpoints >= 2 then Error "netif: wire already has two endpoints"
  else begin
    let machine = hv.Hypervisor.machine in
    let buffer_gfn = Domain.alloc_gfn dom in
    Domain.guest_map dom ~gvfn:buffer_gvfn ~gfn:buffer_gfn ~writable:true ~executable:false
      ~c_bit:false;
    let buffer_gva = Hw.Addr.addr_of buffer_gvfn 0 in
    Hypervisor.in_guest hv dom (fun () ->
        Domain.write machine dom ~addr:buffer_gva (Bytes.make Hw.Addr.page_size '\000'));
    let* _ =
      Hypervisor.hypercall hv dom
        (Hypercall.Pre_sharing { target = 0; gfn = buffer_gfn; nr = 1; writable = true })
    in
    let* _gref64 =
      Hypervisor.hypercall hv dom
        (Hypercall.Grant_table_op
           (Hypercall.Grant_access { target = 0; gfn = buffer_gfn; writable = true }))
    in
    match Hw.Pagetable.lookup dom.Domain.npt buffer_gfn with
    | None -> Error "netif: shared frame unbacked"
    | Some npte ->
        let ep =
          { hv;
            dom;
            e_wire = wire;
            slot = List.length wire.endpoints;
            buffer_gva;
            shared_frame = npte.Hw.Pagetable.frame }
        in
        wire.endpoints <- wire.endpoints @ [ ep ];
        Ok ep
  end

(* Per-transfer costs split in two: the event-channel doorbell, paid once
   per notification, and the copy cost, paid per frame. A batch of N frames
   pays one doorbell + N copies; a single frame pays exactly what the
   unbatched path always charged. *)
let c_netif = Hw.Cost.intern "netif"

let notify_cost ep =
  let machine = ep.hv.Hypervisor.machine in
  Hw.Cost.charge_id machine.Hw.Machine.ledger c_netif
    machine.Hw.Machine.costs.Hw.Cost.event_channel

let copy_cost ep n =
  let machine = ep.hv.Hypervisor.machine in
  Hw.Cost.charge_id machine.Hw.Machine.ledger c_netif
    (n / Hw.Addr.block_size * machine.Hw.Machine.costs.Hw.Cost.memcpy_block / 10)

let frame_cost ep n =
  notify_cost ep;
  copy_cost ep n

(* Frames are length-prefixed in the shared buffer so the backend copies
   exactly what the guest wrote. *)
let send ep frame =
  let n = Bytes.length frame in
  if n + 4 > Hw.Addr.page_size then Error "netif: frame larger than the shared buffer"
  else if Queue.length (Hashtbl.find ep.e_wire.queues (1 - ep.slot)) >= ep.e_wire.capacity then
    Error "netif: wire queue full (backpressure)"
  else begin
    let machine = ep.hv.Hypervisor.machine in
    frame_cost ep n;
    (* Front end: stage the frame in the shared page. *)
    let staged = Bytes.create (4 + n) in
    Bytes.set_int32_be staged 0 (Int32.of_int n);
    Bytes.blit frame 0 staged 4 n;
    Hypervisor.in_guest ep.hv ep.dom (fun () ->
        Domain.write machine ep.dom ~addr:ep.buffer_gva staged);
    (* Back end (dom0): read it out through the host mapping and forward
       onto the wire toward the peer slot. *)
    let raw = Hypervisor.host_read ep.hv ep.shared_frame ~off:0 ~len:(4 + n) in
    let len = Int32.to_int (Bytes.get_int32_be raw 0) in
    (* The prefix crossed a guest-writable shared page: it is input, not an
       invariant. A corrupted (or hostile) length must fail the operation,
       never index out of the staging copy. *)
    if len < 0 || len > Bytes.length raw - 4 then
      Error "netif: corrupt frame length on the shared ring"
    else begin
      let payload = Bytes.sub raw 4 len in
      let dest = 1 - ep.slot in
      Queue.push payload (Hashtbl.find ep.e_wire.queues dest);
      ep.e_wire.log <- payload :: ep.e_wire.log;
      ep.e_wire.forwarded <- ep.e_wire.forwarded + 1;
      Ok ()
    end
  end

let recv ep =
  let q = Hashtbl.find ep.e_wire.queues ep.slot in
  if Queue.is_empty q then Ok None
  else begin
    let machine = ep.hv.Hypervisor.machine in
    let payload = Queue.pop q in
    let n = Bytes.length payload in
    frame_cost ep n;
    (* Back end copies into the shared page; front end reads it out. *)
    let staged = Bytes.create (4 + n) in
    Bytes.set_int32_be staged 0 (Int32.of_int n);
    Bytes.blit payload 0 staged 4 n;
    Hypervisor.host_write ep.hv ep.shared_frame ~off:0 staged;
    let raw =
      Hypervisor.in_guest ep.hv ep.dom (fun () ->
          Domain.read machine ep.dom ~addr:ep.buffer_gva ~len:(4 + n))
    in
    let len = Int32.to_int (Bytes.get_int32_be raw 0) in
    if len < 0 || len > Bytes.length raw - 4 then
      Error "netif: corrupt frame length on the shared ring"
    else Ok (Some (Bytes.sub raw 4 len))
  end

(* --- batched transfers -------------------------------------------------- *)

(* Frames staged back-to-back in the shared page, each length-prefixed:
   [len0 || payload0 || len1 || payload1 || ...]. One guest write, one
   backend read, one doorbell for the whole batch. *)
let staged_size frames = List.fold_left (fun acc f -> acc + 4 + Bytes.length f) 0 frames

let stage_frames frames =
  let total = staged_size frames in
  let staged = Bytes.create total in
  let off = ref 0 in
  List.iter
    (fun f ->
      let n = Bytes.length f in
      Bytes.set_int32_be staged !off (Int32.of_int n);
      Bytes.blit f 0 staged (!off + 4) n;
      off := !off + 4 + n)
    frames;
  staged

(* Parse [count] length-prefixed frames back out of a staged region. Every
   prefix crossed a guest-writable shared page, so each is validated before
   it indexes anything — one corrupt length fails the whole batch closed. *)
let parse_frames raw count =
  let total = Bytes.length raw in
  let rec go acc off k =
    if k = 0 then Ok (List.rev acc)
    else if off + 4 > total then Error "netif: truncated frame header on the shared ring"
    else
      let len = Int32.to_int (Bytes.get_int32_be raw off) in
      if len < 0 || off + 4 + len > total then
        Error "netif: corrupt frame length on the shared ring"
      else go (Bytes.sub raw (off + 4) len :: acc) (off + 4 + len) (k - 1)
  in
  go [] 0 count

let send_batch ep frames =
  match frames with
  | [] -> Ok ()
  | _ ->
      let total = staged_size frames in
      let nframes = List.length frames in
      let dest_q = Hashtbl.find ep.e_wire.queues (1 - ep.slot) in
      if total > Hw.Addr.page_size then Error "netif: batch larger than the shared buffer"
      else if Queue.length dest_q + nframes > ep.e_wire.capacity then
        Error "netif: wire queue full (backpressure)"
      else begin
        let machine = ep.hv.Hypervisor.machine in
        notify_cost ep;
        List.iter (fun f -> copy_cost ep (Bytes.length f)) frames;
        let staged = stage_frames frames in
        Hypervisor.in_guest ep.hv ep.dom (fun () ->
            Domain.write machine ep.dom ~addr:ep.buffer_gva staged);
        let raw = Hypervisor.host_read ep.hv ep.shared_frame ~off:0 ~len:total in
        match parse_frames raw nframes with
        | Error e -> Error e
        | Ok payloads ->
            List.iter
              (fun payload ->
                Queue.push payload dest_q;
                ep.e_wire.log <- payload :: ep.e_wire.log;
                ep.e_wire.forwarded <- ep.e_wire.forwarded + 1)
              payloads;
            Ok ()
      end

let recv_batch ?max ep =
  let q = Hashtbl.find ep.e_wire.queues ep.slot in
  let limit = match max with Some m -> min m (Queue.length q) | None -> Queue.length q in
  (* Take as many queued frames as both the limit and the shared page
     allow; the rest stay queued for the next notification. *)
  let rec collect acc used k =
    if k = 0 then List.rev acc
    else
      match Queue.peek_opt q with
      | None -> List.rev acc
      | Some f when used + 4 + Bytes.length f > Hw.Addr.page_size -> List.rev acc
      | Some f ->
          ignore (Queue.pop q);
          collect (f :: acc) (used + 4 + Bytes.length f) (k - 1)
  in
  let frames = collect [] 0 (Stdlib.max 0 limit) in
  match frames with
  | [] -> Ok []
  | _ ->
      let machine = ep.hv.Hypervisor.machine in
      notify_cost ep;
      List.iter (fun f -> copy_cost ep (Bytes.length f)) frames;
      let staged = stage_frames frames in
      Hypervisor.host_write ep.hv ep.shared_frame ~off:0 staged;
      let raw =
        Hypervisor.in_guest ep.hv ep.dom (fun () ->
            Domain.read machine ep.dom ~addr:ep.buffer_gva ~len:(Bytes.length staged))
      in
      parse_frames raw (List.length frames)

let pending ep = Queue.length (Hashtbl.find ep.e_wire.queues ep.slot)

let snoop wire =
  Hashtbl.fold (fun _ q acc -> List.of_seq (Queue.to_seq q) @ acc) wire.queues []

let snoop_log wire = List.rev wire.log

let tamper wire f =
  Hashtbl.iter
    (fun _ q ->
      let frames = List.of_seq (Queue.to_seq q) in
      Queue.clear q;
      List.iter (fun frame -> Queue.push (f frame) q) frames)
    wire.queues

let frames_forwarded wire = wire.forwarded
