module Hw = Fidelius_hw

type entry = {
  owner : int;
  target : int;
  gfn : Hw.Addr.gfn;
  writable : bool;
  in_use : bool;
}

let c_grant_write = Hw.Cost.intern "grant-write"

let entry_size = 16
let entries_per_frame = Hw.Addr.page_size / entry_size

type t = {
  machine : Hw.Machine.t;
  frames : Hw.Addr.pfn array;
}

let create machine ~nr_frames =
  if nr_frames <= 0 then invalid_arg "Granttab.create: nr_frames must be positive";
  { machine; frames = Array.of_list (Hw.Machine.alloc_frames machine nr_frames) }

let backing_frames t = Array.to_list t.frames
let capacity t = Array.length t.frames * entries_per_frame

let locate t gref =
  if gref < 0 || gref >= capacity t then None
  else Some (t.frames.(gref / entries_per_frame), gref mod entries_per_frame * entry_size)

(* Layout: owner(2) target(2) gfn(8) flags(1): bit0 writable, bit1 in_use. *)
let encode e =
  let b = Bytes.make entry_size '\000' in
  Bytes.set_uint16_be b 0 e.owner;
  Bytes.set_uint16_be b 2 e.target;
  Bytes.set_int64_be b 4 (Int64.of_int e.gfn);
  Bytes.set b 12
    (Char.chr ((if e.writable then 1 else 0) lor if e.in_use then 2 else 0));
  b

let decode b =
  let flags = Char.code (Bytes.get b 12) in
  if flags land 2 = 0 then None
  else
    Some
      { owner = Bytes.get_uint16_be b 0;
        target = Bytes.get_uint16_be b 2;
        gfn = Int64.to_int (Bytes.get_int64_be b 4);
        writable = flags land 1 <> 0;
        in_use = true }

let get t gref =
  match locate t gref with
  | None -> None
  | Some (pfn, off) ->
      decode (Hw.Physmem.read_raw t.machine.Hw.Machine.mem pfn ~off ~len:entry_size)

let set machine ~space t gref entry =
  match locate t gref with
  | None -> invalid_arg (Printf.sprintf "Granttab.set: grant ref %d out of range" gref)
  | Some (pfn, off) ->
      Hw.Mmu.check_frame_writable machine ~space pfn;
      Hw.Cost.charge_id machine.Hw.Machine.ledger c_grant_write
        machine.Hw.Machine.costs.Hw.Cost.cacheline_write;
      let bytes =
        match entry with Some e -> encode e | None -> Bytes.make entry_size '\000'
      in
      Hw.Physmem.write_raw machine.Hw.Machine.mem pfn ~off bytes

let find_free t =
  let cap = capacity t in
  let rec scan gref =
    if gref >= cap then None
    else
      match get t gref with
      | None -> Some gref
      | Some _ -> scan (gref + 1)
  in
  scan 0

let entries t =
  let cap = capacity t in
  let rec scan gref acc =
    if gref >= cap then List.rev acc
    else
      match get t gref with
      | Some e -> scan (gref + 1) ((gref, e) :: acc)
      | None -> scan (gref + 1) acc
  in
  scan 0 []
