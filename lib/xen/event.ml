module Cost = Fidelius_hw.Cost

let c_evtchn = Cost.intern "evtchn"

type port = int

type channel = {
  a_dom : int;
  a_port : port;
  mutable b_dom : int option;
  mutable b_port : port option;
}

type t = {
  mutable channels : channel list;
  handlers : (int * port, unit -> unit) Hashtbl.t;
  pending_set : (int * port, unit) Hashtbl.t;
  ledger : Cost.ledger;
  costs : Cost.table;
  mutable next_port : port;
}

let create ledger =
  { channels = [];
    handlers = Hashtbl.create 16;
    pending_set = Hashtbl.create 16;
    ledger;
    costs = Cost.default;
    next_port = 1 }

let fresh_port t =
  let p = t.next_port in
  t.next_port <- p + 1;
  p

let alloc_unbound t ~domid ~remote =
  let port = fresh_port t in
  t.channels <- { a_dom = domid; a_port = port; b_dom = Some remote; b_port = None } :: t.channels;
  port

let bind t ~domid ~remote_port =
  let candidate =
    List.find_opt
      (fun c -> c.a_port = remote_port && c.b_dom = Some domid && c.b_port = None)
      t.channels
  in
  match candidate with
  | None -> Error (Printf.sprintf "evtchn: port %d not offered to dom%d" remote_port domid)
  | Some c ->
      let port = fresh_port t in
      c.b_port <- Some port;
      Ok port

let peer t ~domid ~port =
  let rec find = function
    | [] -> None
    | c :: rest ->
        if c.a_dom = domid && c.a_port = port then
          match (c.b_dom, c.b_port) with
          | Some d, Some p -> Some (d, p)
          | _ -> None
        else if c.b_dom = Some domid && c.b_port = Some port then Some (c.a_dom, c.a_port)
        else find rest
  in
  find t.channels

(* A notification that arrived before the handler was registered parks in
   [pending_set]; registration must drain it, or the event — and with it
   e.g. a whole ring batch — is lost forever. Real Xen keeps the pending
   bit set and re-checks it when the vCPU unmasks the port. *)
let on_event t ~domid ~port f =
  Hashtbl.replace t.handlers (domid, port) f;
  if Hashtbl.mem t.pending_set (domid, port) then begin
    Hashtbl.remove t.pending_set (domid, port);
    f ()
  end

let send t ~domid ~port =
  match peer t ~domid ~port with
  | None -> Error (Printf.sprintf "evtchn: dom%d port %d is not bound" domid port)
  | Some (peer_dom, peer_port) ->
      Cost.charge_id t.ledger c_evtchn t.costs.Cost.event_channel;
      (match Hashtbl.find_opt t.handlers (peer_dom, peer_port) with
      | Some f -> f ()
      | None -> Hashtbl.replace t.pending_set (peer_dom, peer_port) ());
      Ok ()

let pending t ~domid ~port = Hashtbl.mem t.pending_set (domid, port)
