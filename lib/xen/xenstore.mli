(** XenStore: the shared configuration tree guests use to exchange
    front/back-end wiring (grant references, event-channel ports).

    Untrusted in the threat model — it is management-VM infrastructure — so
    nothing confidential may ever be placed here; Fidelius' secure-sharing
    flow treats what it reads from XenStore as attacker-controlled and
    re-validates it against the GIT. *)

type t

val create : unit -> t

val write : t -> domid:int -> path:string -> string -> unit
(** Writes are allowed in the writer's own subtree ["/local/domain/<id>/"]
    and anywhere for dom0 (id 0). Raises [Invalid_argument] otherwise. *)

val read : t -> path:string -> string option

val tamper : t -> path:string -> string -> unit
(** Management-VM tampering channel for the attack suite: overwrite any
    entry, no permission applied. *)

val keys : t -> prefix:string -> string list
