(** The grant table: Xen's inter-domain memory-sharing ledger.

    Entries are serialized into backing frames in simulated physical memory
    (16 bytes each), so "map the grant table read-only in the hypervisor"
    (paper Table 1) is enforceable with the same store-permission rule as
    page-table-pages: {!set} applies {!Fidelius_hw.Mmu.check_frame_writable}
    against the acting address space before touching the bytes.

    Deliberately faithful weakness: nothing *here* validates that an update
    matches what the granting guest intended — that is exactly the GIT
    policy Fidelius adds on top. *)

module Hw = Fidelius_hw

type entry = {
  owner : int;      (** granting domain *)
  target : int;     (** domain allowed to map *)
  gfn : Hw.Addr.gfn;(** owner's guest-physical frame being shared *)
  writable : bool;
  in_use : bool;
}

type t

val create : Hw.Machine.t -> nr_frames:int -> t
(** Allocate the table's backing frames. *)

val backing_frames : t -> Hw.Addr.pfn list
val capacity : t -> int

val get : t -> int -> entry option
(** Decode one entry; [None] for free slots or out-of-range refs. *)

val set :
  Hw.Machine.t -> space:Hw.Pagetable.t -> t -> int -> entry option -> unit
(** Store an entry (or free the slot), permission-checked as a memory write
    into the backing frame. Raises {!Hw.Mmu.Fault} when the acting space
    lacks write access. *)

val find_free : t -> int option
val entries : t -> (int * entry) list
