(** A Xen domain: guest page table, nested page table, VMCB, SEV binding.

    The guest page table is guest-owned state — the guest updates it with
    its own stores to its own memory, so those updates are not mediated by
    anything (and need not be: the threat model trusts the guest). The NPT
    is hypervisor-owned and is exactly what Fidelius write-protects. *)

module Hw = Fidelius_hw

type lifecycle =
  | Created
  | Runnable
  | Paused
  | Dying

type t = {
  domid : int;
  domid64 : int64;
      (** [Int64.of_int domid], boxed once — the VMRUN operand every
          world switch loads, without re-boxing per crossing *)
  scope : string;
      (** ["dom<id>"], the per-domain cost-attribution label, built once
          so scope entry on the hypercall path does not concatenate *)
  guest_mode : Hw.Cpu.mode;
      (** [Guest domid], allocated once — VMRUN stores this exact value *)
  name : string;
  is_dom0 : bool;
  gpt : Hw.Pagetable.t;   (** guest-virtual to guest-physical, guest-owned *)
  npt : Hw.Pagetable.t;   (** guest-physical to host-physical, hypervisor-owned *)
  vmcb : Hw.Vmcb.t;
  mutable asid : int;
  mutable asid_sel : Hw.Memctrl.selector;
      (** preallocated [Asid asid] for the per-access paths; kept in sync
          with [asid] *)
  mutable sev_handle : int option;
  mutable sev_protected : bool;
  mutable sev_es : bool;
      (** SEV-ES mode: register state lives in the hardware-encrypted VMSA
          across world switches (paper Section 2.2) *)
  vmsa : Hw.Vmcb.t;
      (** the encrypted save area; hardware-internal, never readable by the
          hypervisor (the simulator's Fidelius/attack code honours this) *)
  vmsa_regs : int64 array;
  mutable last_exit : Hw.Vmcb.exit_reason option;
      (** hardware-recorded exit reason (what the GHCB exchange keys off,
          immune to live-VMCB rewrites) *)
  mutable state : lifecycle;
  mutable frames : Hw.Addr.pfn list; (** host frames allocated to this domain *)
  mutable next_free_gfn : Hw.Addr.gfn;
  msrs : (int, int64) Hashtbl.t;     (** guest-visible model-specific registers *)
  dirty : Hw.Dirty.t;
      (** dirty-page log for live migration; {!write} marks touched frames
          while tracking is on. Owned by the domain (and so by whichever
          fleet job owns the domain's machine) — see SCALING.md *)
  mutable vmrun_thunk : (unit -> (unit, string) result) option;
      (** the VMRUN fetch+execute thunk for this domain, built lazily by the
          owning hypervisor's first {!Hypervisor.vmrun} so re-entry passes a
          cached closure through the vmrun gate instead of a fresh one *)
}

val create :
  Hw.Machine.t -> domid:int -> name:string -> is_dom0:bool -> asid:int -> t

val guest_map :
  t -> gvfn:Hw.Addr.vfn -> gfn:Hw.Addr.gfn ->
  writable:bool -> executable:bool -> c_bit:bool -> unit
(** Guest-side page-table update (a store into guest-owned memory). *)

val guest_unmap : t -> gvfn:Hw.Addr.vfn -> unit

val read : Hw.Machine.t -> t -> addr:int -> len:int -> bytes
(** Guest-mode memory read: two-level walk under the domain's ASID. Raises
    {!Hw.Mmu.Npt_fault} when the nested mapping is absent — callers in the
    run loop turn that into an NPF vmexit. *)

val write : Hw.Machine.t -> t -> addr:int -> bytes -> unit
(** Guest-mode memory store. While {!Hw.Dirty.tracking} is on for this
    domain, the guest-physical frames the store touches are marked dirty
    before the MMU applies it (live-migration pre-copy hook). *)

val alloc_gfn : t -> Hw.Addr.gfn
(** Next unused guest-physical frame number (simple bump allocator). *)

val pp : Format.formatter -> t -> unit
