module Hw = Fidelius_hw

type lifecycle =
  | Created
  | Runnable
  | Paused
  | Dying

type t = {
  domid : int;
  domid64 : int64;
  scope : string;
  guest_mode : Hw.Cpu.mode;
  name : string;
  is_dom0 : bool;
  gpt : Hw.Pagetable.t;
  npt : Hw.Pagetable.t;
  vmcb : Hw.Vmcb.t;
  mutable asid : int;
  (* Preallocated [Asid asid] selector for the per-access paths; anything
     that reassigns [asid] must refresh this alongside it. *)
  mutable asid_sel : Hw.Memctrl.selector;
  mutable sev_handle : int option;
  mutable sev_protected : bool;
  mutable sev_es : bool;
  vmsa : Hw.Vmcb.t;
  vmsa_regs : int64 array;
  mutable last_exit : Hw.Vmcb.exit_reason option;
  mutable state : lifecycle;
  mutable frames : Hw.Addr.pfn list;
  mutable next_free_gfn : Hw.Addr.gfn;
  msrs : (int, int64) Hashtbl.t;
  dirty : Hw.Dirty.t;
  mutable vmrun_thunk : (unit -> (unit, string) result) option;
}

let create machine ~domid ~name ~is_dom0 ~asid =
  let vmcb = Hw.Vmcb.create () in
  Hw.Vmcb.set vmcb Hw.Vmcb.Asid (Int64.of_int asid);
  { domid;
    domid64 = Int64.of_int domid;
    scope = "dom" ^ string_of_int domid;
    guest_mode = Hw.Cpu.Guest domid;
    name;
    is_dom0;
    gpt = Hw.Machine.new_table machine;
    npt = Hw.Machine.new_table machine;
    vmcb;
    asid;
    asid_sel = Hw.Memctrl.Asid asid;
    sev_handle = None;
    sev_protected = false;
    sev_es = false;
    vmsa = Hw.Vmcb.create ();
    vmsa_regs = Array.make 16 0L;
    last_exit = None;
    state = Created;
    frames = [];
    next_free_gfn = 0;
    msrs = Hashtbl.create 8;
    dirty = Hw.Dirty.create ();
    vmrun_thunk = None }

let guest_map t ~gvfn ~gfn ~writable ~executable ~c_bit =
  Hw.Pagetable.hw_set t.gpt gvfn
    (Some { Hw.Pagetable.frame = gfn; writable; executable; c_bit })

let guest_unmap t ~gvfn = Hw.Pagetable.hw_set t.gpt gvfn None

let read machine t ~addr ~len =
  Hw.Mmu.guest_read_sel machine ~domid:t.domid ~gpt:t.gpt ~npt:t.npt
    ~asid_sel:t.asid_sel ~addr ~len

(* Dirty logging rides the guest-store path: every frame a write touches
   is marked before the MMU sees the store, so a faulting write can only
   over-report (a resent clean page is harmless; a missed dirty page would
   corrupt the migrated guest). One boolean test when tracking is off. *)
let log_dirty t ~addr ~len =
  if Hw.Dirty.tracking t.dirty && len > 0 then
    for gvfn = Hw.Addr.frame_of addr to Hw.Addr.frame_of (addr + len - 1) do
      match Hw.Pagetable.lookup t.gpt gvfn with
      | Some gpte -> Hw.Dirty.mark t.dirty gpte.Hw.Pagetable.frame
      | None -> ()
    done

let write machine t ~addr data =
  log_dirty t ~addr ~len:(Bytes.length data);
  Hw.Mmu.guest_write_sel machine ~domid:t.domid ~gpt:t.gpt ~npt:t.npt
    ~asid_sel:t.asid_sel ~addr data

let alloc_gfn t =
  let gfn = t.next_free_gfn in
  t.next_free_gfn <- gfn + 1;
  gfn

let pp fmt t =
  Format.fprintf fmt "dom%d(%s)%s asid=%d %s" t.domid t.name
    (if t.sev_protected then "[SEV]" else "")
    t.asid
    (match t.state with
    | Created -> "created"
    | Runnable -> "runnable"
    | Paused -> "paused"
    | Dying -> "dying")
