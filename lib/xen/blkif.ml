module Hw = Fidelius_hw

type codec = {
  codec_name : string;
  encode : sector:int -> bytes -> bytes;
  decode : sector:int -> bytes -> bytes;
}

let identity_codec =
  { codec_name = "identity"; encode = (fun ~sector:_ b -> b); decode = (fun ~sector:_ b -> b) }

let sectors_per_frame = Hw.Addr.page_size / Vdisk.sector_size

let c_blk_io = Hw.Cost.intern "blk-io"

(* One ring + its data frames + its event channel. Queues are independent:
   a submitting vCPU owns one queue and the backend drains each queue on
   its own notification, so queues never contend on descriptor slots. *)
type queue = {
  q_ring : Ring.t;
  q_port : int;                    (* frontend-side event port *)
  q_grefs : int array;             (* grant references of the data frames *)
  q_gvas : int array;              (* guest VA of each data frame *)
  q_frames : Hw.Addr.pfn array;    (* backend-resolved host frames *)
}

type backend = {
  hv : Hypervisor.t;
  disk : Vdisk.t;
  b_queues : queue array;
  mutable served : int;
  mutable rejected : int;
  mutable notifications : int;
}

type frontend = {
  f_hv : Hypervisor.t;
  dom : Domain.t;
  f_queues : queue array;
  mutable codec : codec;
  mutable next_req_id : int;
}

let ( let* ) = Result.bind

(* --- backend ----------------------------------------------------------- *)

(* Everything in a request descriptor crossed the shared ring from the
   (untrusted) frontend: validate it all against the vdisk and the granted
   data frames *before* charging or touching memory, and answer malformed
   descriptors with a typed error instead of serving them. [seen] holds the
   req_ids already drained in this batch; duplicate ids — whose responses
   the frontend could not tell apart — fail closed too. *)
let validate_request be q seen (req : Ring.request) =
  let len = req.Ring.count * Vdisk.sector_size in
  if req.Ring.count < 1 || req.Ring.count > sectors_per_frame then
    Error (Ring.Bad_count { count = req.Ring.count; max_count = sectors_per_frame })
  else if req.Ring.sector < 0 || req.Ring.sector + req.Ring.count > Vdisk.nr_sectors be.disk
  then
    Error
      (Ring.Bad_sector
         { sector = req.Ring.sector;
           count = req.Ring.count;
           nr_sectors = Vdisk.nr_sectors be.disk })
  else if req.Ring.data_off < 0 || req.Ring.data_off + len > Hw.Addr.page_size then
    Error (Ring.Bad_span { data_off = req.Ring.data_off; len; frame_bytes = Hw.Addr.page_size })
  else if Hashtbl.mem seen req.Ring.req_id then
    Error (Ring.Duplicate_req_id { req_id = req.Ring.req_id })
  else begin
    Hashtbl.replace seen req.Ring.req_id ();
    let rec find i =
      if i >= Array.length q.q_grefs then
        Error
          (Ring.Bad_gref
             { gref = req.Ring.data_gref; reason = "not a data grant of this queue" })
      else if q.q_grefs.(i) = req.Ring.data_gref then Ok i
      else find (i + 1)
    in
    let* slot = find 0 in
    match Granttab.get be.hv.Hypervisor.granttab req.Ring.data_gref with
    | None -> Error (Ring.Bad_gref { gref = req.Ring.data_gref; reason = "grant vanished" })
    | Some entry when entry.Granttab.target <> 0 ->
        Error (Ring.Bad_gref { gref = req.Ring.data_gref; reason = "grant not for dom0" })
    | Some _ -> Ok q.q_frames.(slot)
  end

let serve_request be (req : Ring.request) frame =
  let len = req.Ring.count * Vdisk.sector_size in
  let costs = be.hv.Hypervisor.machine.Hw.Machine.costs in
  Hw.Cost.charge_id be.hv.Hypervisor.machine.Hw.Machine.ledger c_blk_io
    (costs.Hw.Cost.io_sector * req.Ring.count);
  try
    (match req.Ring.op with
    | Ring.Write ->
        let data = Hypervisor.host_read be.hv frame ~off:req.Ring.data_off ~len in
        Vdisk.write be.disk ~sector:req.Ring.sector data
    | Ring.Read ->
        let data = Vdisk.read be.disk ~sector:req.Ring.sector ~count:req.Ring.count in
        Hypervisor.host_write be.hv frame ~off:req.Ring.data_off data);
    Ok ()
  with
  | Invalid_argument m -> Error (Ring.Backend_fault m)
  | Hw.Mmu.Fault { reason; _ } -> Error (Ring.Backend_fault reason)

(* One event notification drains the whole queue: N descriptors, one
   world-switch — the batching that amortizes the 9.9 µs hypercall. *)
let process_queue be qi =
  let q = be.b_queues.(qi) in
  be.notifications <- be.notifications + 1;
  let seen = Hashtbl.create 8 in
  let rec loop () =
    match Ring.pop_request q.q_ring with
    | None -> ()
    | Some req ->
        be.served <- be.served + 1;
        let status =
          let* frame = validate_request be q seen req in
          serve_request be req frame
        in
        if Result.is_error status then be.rejected <- be.rejected + 1;
        (* Response slots cannot overrun: both halves have equal capacity
           and every response answers a popped request. *)
        (match Ring.push_response q.q_ring { Ring.resp_id = req.Ring.req_id; status } with
        | Ok () -> ()
        | Error _ -> assert false);
        loop ()
  in
  loop ()

(* --- connect ----------------------------------------------------------- *)

let connect ?(ring_size = Ring.default_size) ?(buffer_pages = 1) ?(nr_queues = 1) hv dom ~disk
    ~buffer_gvfn =
  if buffer_pages < 1 || nr_queues < 1 then
    invalid_arg "Blkif.connect: buffer_pages and nr_queues must be >= 1";
  let machine = hv.Hypervisor.machine in
  let connect_queue qi =
    (* The guest sets up unencrypted buffer pages (DMA memory cannot carry
       the C-bit) and faults them in. *)
    let base_gvfn = buffer_gvfn + (qi * buffer_pages) in
    let gfns =
      Array.init buffer_pages (fun pi ->
          let gfn = Domain.alloc_gfn dom in
          Domain.guest_map dom ~gvfn:(base_gvfn + pi) ~gfn ~writable:true ~executable:false
            ~c_bit:false;
          Hypervisor.in_guest hv dom (fun () ->
              Domain.write machine dom
                ~addr:(Hw.Addr.addr_of (base_gvfn + pi) 0)
                (Bytes.make Hw.Addr.page_size '\000'));
          gfn)
    in
    let gvas = Array.init buffer_pages (fun pi -> Hw.Addr.addr_of (base_gvfn + pi) 0) in
    (* Declare the sharing intent first (Fidelius' pre_sharing_op; a no-op
       on stock Xen) — one declaration covers the queue's whole run of data
       pages — then grant each to dom0 and publish the wiring via XenStore. *)
    let* _ =
      Hypervisor.hypercall hv dom
        (Hypercall.Pre_sharing { target = 0; gfn = gfns.(0); nr = buffer_pages; writable = true })
    in
    let rec grant pi acc =
      if pi = buffer_pages then Ok (List.rev acc)
      else
        let* gref64 =
          Hypervisor.hypercall hv dom
            (Hypercall.Grant_table_op
               (Hypercall.Grant_access { target = 0; gfn = gfns.(pi); writable = true }))
        in
        grant (pi + 1) (Int64.to_int gref64 :: acc)
    in
    let* grefs = grant 0 [] in
    let grefs = Array.of_list grefs in
    let event_port = Event.alloc_unbound hv.Hypervisor.events ~domid:dom.Domain.domid ~remote:0 in
    let path leaf =
      if qi = 0 then Printf.sprintf "/local/domain/%d/device/vbd/%s" dom.Domain.domid leaf
      else Printf.sprintf "/local/domain/%d/device/vbd/queue-%d/%s" dom.Domain.domid qi leaf
    in
    Xenstore.write hv.Hypervisor.store ~domid:dom.Domain.domid ~path:(path "ring-ref")
      (string_of_int grefs.(0));
    Xenstore.write hv.Hypervisor.store ~domid:dom.Domain.domid ~path:(path "event-channel")
      (string_of_int event_port);
    (* Back-end side: bind the channel and resolve the grants to frames. *)
    let* back_port = Event.bind hv.Hypervisor.events ~domid:0 ~remote_port:event_port in
    let rec resolve pi acc =
      if pi = buffer_pages then Ok (List.rev acc)
      else
        match Granttab.get hv.Hypervisor.granttab grefs.(pi) with
        | None -> Error "backend: grant not found"
        | Some entry -> (
            match Hw.Pagetable.lookup dom.Domain.npt entry.Granttab.gfn with
            | None -> Error "backend: granted gfn unbacked"
            | Some npte -> resolve (pi + 1) (npte.Hw.Pagetable.frame :: acc))
    in
    let* frames = resolve 0 [] in
    let q =
      { q_ring = Ring.create ~size:ring_size ();
        q_port = event_port;
        q_grefs = grefs;
        q_gvas = gvas;
        q_frames = Array.of_list frames }
    in
    Ok (q, back_port)
  in
  let rec build qi acc =
    if qi = nr_queues then Ok (List.rev acc)
    else
      let* q = connect_queue qi in
      build (qi + 1) (q :: acc)
  in
  let* queues = build 0 [] in
  let qarr = Array.of_list (List.map fst queues) in
  let be = { hv; disk; b_queues = qarr; served = 0; rejected = 0; notifications = 0 } in
  List.iteri
    (fun qi (_, back_port) ->
      Event.on_event hv.Hypervisor.events ~domid:0 ~port:back_port (fun () ->
          process_queue be qi))
    queues;
  let fe = { f_hv = hv; dom; f_queues = qarr; codec = identity_codec; next_req_id = 1 } in
  Ok (fe, be)

let set_codec fe codec = fe.codec <- codec

let nr_queues fe = Array.length fe.f_queues
let buffer_pages fe = Array.length fe.f_queues.(0).q_grefs

(* Multi-queue rings are keyed per vCPU: a submitting vCPU owns queue
   [vcpu mod nr_queues]. *)
let queue_for fe ~vcpu =
  let n = nr_queues fe in
  ((vcpu mod n) + n) mod n

let fresh_req_id fe =
  let id = fe.next_req_id in
  fe.next_req_id <- id + 1;
  id

let data_gref ?(queue = 0) fe ~page = fe.f_queues.(queue).q_grefs.(page)

(* --- frontend submission ----------------------------------------------- *)

(* Push N descriptors, ring the doorbell once (a single Event_send
   hypercall covers the whole batch), then collect the responses. The
   backend serves FIFO, so responses must come back in request order with
   matching ids — anything else (a stray response, a missing one) is a
   protocol violation and fails the whole batch closed. *)
let submit_batch ?(queue = 0) fe reqs =
  let q = fe.f_queues.(queue) in
  let n = List.length reqs in
  if n = 0 then Ok []
  else if n > Ring.free_request_slots q.q_ring then
    Error
      (Printf.sprintf "frontend: ring full (%d in flight, %d free, %d requested)"
         (Ring.requests_pending q.q_ring)
         (Ring.free_request_slots q.q_ring)
         n)
  else begin
    List.iter
      (fun r ->
        match Ring.push_request q.q_ring r with Ok () -> () | Error _ -> assert false)
      reqs;
    let* _ = Hypervisor.hypercall fe.f_hv fe.dom (Hypercall.Event_send { port = q.q_port }) in
    let resps = Ring.pop_responses q.q_ring ~max:n in
    if List.length resps <> n then
      Error (Printf.sprintf "frontend: %d responses for %d requests" (List.length resps) n)
    else if Ring.responses_pending q.q_ring > 0 then
      Error "frontend: response without request left on the ring"
    else
      let rec check acc rs ps =
        match (rs, ps) with
        | [], [] -> Ok (List.rev acc)
        | (r : Ring.request) :: rs, (p : Ring.response) :: ps ->
            if p.Ring.resp_id <> r.Ring.req_id then
              Error
                (Printf.sprintf
                   "frontend: response id %d does not match request id %d (response without \
                    request)"
                   p.Ring.resp_id r.Ring.req_id)
            else check (p.Ring.status :: acc) rs ps
        | _ -> Error "frontend: response count mismatch"
      in
      check [] reqs resps
  end

(* Split a transfer into ring requests of at most a frame each; the batched
   paths below serve them [batch] requests per doorbell, each request on
   its own data frame of the queue. *)
let plan_chunks ~sector ~total_sectors =
  let rec go s off acc remaining =
    if remaining = 0 then List.rev acc
    else
      let n = min remaining sectors_per_frame in
      go (s + n) (off + (n * Vdisk.sector_size)) ((s, off, n) :: acc) (remaining - n)
  in
  go sector 0 [] total_sectors

let rec take n = function
  | [] -> ([], [])
  | x :: rest when n > 0 ->
      let got, left = take (n - 1) rest in
      (x :: got, left)
  | l -> ([], l)

let all_ok statuses =
  List.fold_left
    (fun acc st ->
      let* () = acc in
      Result.map_error Ring.error_to_string st)
    (Ok ()) statuses

let write_sectors ?(batch = 1) ?(queue = 0) fe ~sector data =
  let len = Bytes.length data in
  if len mod Vdisk.sector_size <> 0 then Error "write_sectors: length must be a multiple of 512"
  else begin
    let machine = fe.f_hv.Hypervisor.machine in
    let q = fe.f_queues.(queue) in
    let batch = max 1 (min batch (Array.length q.q_grefs)) in
    let rec groups chunks =
      match chunks with
      | [] -> Ok ()
      | _ ->
          let grp, rest = take batch chunks in
          let stage i (s, off, n) =
            let clen = n * Vdisk.sector_size in
            let piece = Bytes.sub data off clen in
            let encoded = fe.codec.encode ~sector:s piece in
            if Bytes.length encoded <> clen then Error "codec changed the payload size"
            else begin
              Hypervisor.in_guest fe.f_hv fe.dom (fun () ->
                  Domain.write machine fe.dom ~addr:q.q_gvas.(i) encoded);
              Ok
                { Ring.req_id = fresh_req_id fe;
                  op = Ring.Write;
                  sector = s;
                  count = n;
                  data_gref = q.q_grefs.(i);
                  data_off = 0 }
            end
          in
          let rec stage_all i acc = function
            | [] -> Ok (List.rev acc)
            | c :: cs ->
                let* r = stage i c in
                stage_all (i + 1) (r :: acc) cs
          in
          let* reqs = stage_all 0 [] grp in
          let* statuses = submit_batch ~queue fe reqs in
          let* () = all_ok statuses in
          groups rest
    in
    groups (plan_chunks ~sector ~total_sectors:(len / Vdisk.sector_size))
  end

let read_sectors ?(batch = 1) ?(queue = 0) fe ~sector ~count =
  if count <= 0 then Error "read_sectors: count must be positive"
  else begin
    let machine = fe.f_hv.Hypervisor.machine in
    let q = fe.f_queues.(queue) in
    let batch = max 1 (min batch (Array.length q.q_grefs)) in
    let out = Bytes.create (count * Vdisk.sector_size) in
    let rec groups chunks =
      match chunks with
      | [] -> Ok out
      | _ ->
          let grp, rest = take batch chunks in
          let reqs =
            List.mapi
              (fun i (s, _off, n) ->
                { Ring.req_id = fresh_req_id fe;
                  op = Ring.Read;
                  sector = s;
                  count = n;
                  data_gref = q.q_grefs.(i);
                  data_off = 0 })
              grp
          in
          let* statuses = submit_batch ~queue fe reqs in
          let* () = all_ok statuses in
          let rec unload i = function
            | [] -> Ok ()
            | (s, off, n) :: rest ->
                let clen = n * Vdisk.sector_size in
                let raw =
                  Hypervisor.in_guest fe.f_hv fe.dom (fun () ->
                      Domain.read machine fe.dom ~addr:q.q_gvas.(i) ~len:clen)
                in
                let decoded = fe.codec.decode ~sector:s raw in
                if Bytes.length decoded <> clen then Error "codec changed the payload size"
                else begin
                  Bytes.blit decoded 0 out off clen;
                  unload (i + 1) rest
                end
          in
          let* () = unload 0 grp in
          groups rest
    in
    groups (plan_chunks ~sector ~total_sectors:count)
  end

let frontend_ring ?(queue = 0) fe = fe.f_queues.(queue).q_ring

let shared_frame be = be.b_queues.(0).q_frames.(0)
let backend_disk be = be.disk
let requests_served be = be.served
let requests_rejected be = be.rejected
let notifications be = be.notifications
