module Hw = Fidelius_hw

type codec = {
  codec_name : string;
  encode : sector:int -> bytes -> bytes;
  decode : sector:int -> bytes -> bytes;
}

let identity_codec =
  { codec_name = "identity"; encode = (fun ~sector:_ b -> b); decode = (fun ~sector:_ b -> b) }

let sectors_per_frame = Hw.Addr.page_size / Vdisk.sector_size

type backend = {
  hv : Hypervisor.t;
  disk : Vdisk.t;
  ring : Ring.t;
  gref : int;
  b_shared_frame : Hw.Addr.pfn;
  mutable served : int;
}

type frontend = {
  f_hv : Hypervisor.t;
  dom : Domain.t;
  f_ring : Ring.t;
  f_gref : int;
  buffer_gva : int;
  event_port : int;
  mutable codec : codec;
  mutable next_req_id : int;
}

let ( let* ) = Result.bind

let process_ring be =
  let rec loop () =
    match Ring.pop_request be.ring with
    | None -> ()
    | Some req ->
        be.served <- be.served + 1;
        let len = req.Ring.count * Vdisk.sector_size in
        let costs = be.hv.Hypervisor.machine.Hw.Machine.costs in
        Hw.Cost.charge be.hv.Hypervisor.machine.Hw.Machine.ledger "blk-io"
          (costs.Hw.Cost.io_sector * req.Ring.count);
        let status =
          match Granttab.get be.hv.Hypervisor.granttab req.Ring.data_gref with
          | None -> Error "backend: data grant vanished"
          | Some entry when entry.Granttab.target <> 0 -> Error "backend: grant not for dom0"
          | Some _ -> (
              try
                (match req.Ring.op with
                | Ring.Write ->
                    let data =
                      Hypervisor.host_read be.hv be.b_shared_frame ~off:req.Ring.data_off ~len
                    in
                    Vdisk.write be.disk ~sector:req.Ring.sector data
                | Ring.Read ->
                    let data = Vdisk.read be.disk ~sector:req.Ring.sector ~count:req.Ring.count in
                    Hypervisor.host_write be.hv be.b_shared_frame ~off:req.Ring.data_off data);
                Ok ()
              with
              | Invalid_argument m -> Error m
              | Hw.Mmu.Fault { reason; _ } -> Error ("backend fault: " ^ reason))
        in
        Ring.push_response be.ring { Ring.resp_id = req.Ring.req_id; status };
        loop ()
  in
  loop ()

let connect hv dom ~disk ~buffer_gvfn =
  let machine = hv.Hypervisor.machine in
  (* The guest sets up an unencrypted buffer page (DMA memory cannot carry
     the C-bit) and faults it in. *)
  let buffer_gfn = Domain.alloc_gfn dom in
  Domain.guest_map dom ~gvfn:buffer_gvfn ~gfn:buffer_gfn ~writable:true ~executable:false
    ~c_bit:false;
  let buffer_gva = Hw.Addr.addr_of buffer_gvfn 0 in
  Hypervisor.in_guest hv dom (fun () ->
      Domain.write machine dom ~addr:buffer_gva (Bytes.make Hw.Addr.page_size '\000'));
  (* Declare the sharing intent first (Fidelius' pre_sharing_op; a no-op on
     stock Xen), then grant to dom0 and publish the wiring via XenStore. *)
  let* _ =
    Hypervisor.hypercall hv dom
      (Hypercall.Pre_sharing { target = 0; gfn = buffer_gfn; nr = 1; writable = true })
  in
  let* gref64 =
    Hypervisor.hypercall hv dom
      (Hypercall.Grant_table_op
         (Hypercall.Grant_access { target = 0; gfn = buffer_gfn; writable = true }))
  in
  let gref = Int64.to_int gref64 in
  let event_port = Event.alloc_unbound hv.Hypervisor.events ~domid:dom.Domain.domid ~remote:0 in
  Xenstore.write hv.Hypervisor.store ~domid:dom.Domain.domid
    ~path:(Printf.sprintf "/local/domain/%d/device/vbd/ring-ref" dom.Domain.domid)
    (string_of_int gref);
  Xenstore.write hv.Hypervisor.store ~domid:dom.Domain.domid
    ~path:(Printf.sprintf "/local/domain/%d/device/vbd/event-channel" dom.Domain.domid)
    (string_of_int event_port);
  (* Back-end side: bind the channel and resolve the grant to a frame. *)
  let* back_port = Event.bind hv.Hypervisor.events ~domid:0 ~remote_port:event_port in
  ignore back_port;
  match Granttab.get hv.Hypervisor.granttab gref with
  | None -> Error "backend: grant not found"
  | Some entry -> (
      match Hw.Pagetable.lookup dom.Domain.npt entry.Granttab.gfn with
      | None -> Error "backend: granted gfn unbacked"
      | Some npte ->
          let ring = Ring.create () in
          let be =
            { hv;
              disk;
              ring;
              gref;
              b_shared_frame = npte.Hw.Pagetable.frame;
              served = 0 }
          in
          Event.on_event hv.Hypervisor.events ~domid:0 ~port:back_port (fun () ->
              process_ring be);
          let fe =
            { f_hv = hv;
              dom;
              f_ring = ring;
              f_gref = gref;
              buffer_gva;
              event_port;
              codec = identity_codec;
              next_req_id = 1 }
          in
          Ok (fe, be))

let set_codec fe codec = fe.codec <- codec

let fresh_req_id fe =
  let id = fe.next_req_id in
  fe.next_req_id <- id + 1;
  id

let submit fe req =
  Ring.push_request fe.f_ring req;
  let* _ =
    Hypervisor.hypercall fe.f_hv fe.dom (Hypercall.Event_send { port = fe.event_port })
  in
  match Ring.pop_response fe.f_ring with
  | None -> Error "frontend: no response from backend"
  | Some resp -> resp.Ring.status

let write_sectors fe ~sector data =
  let len = Bytes.length data in
  if len mod Vdisk.sector_size <> 0 then
    Error "write_sectors: length must be a multiple of 512"
  else begin
    let machine = fe.f_hv.Hypervisor.machine in
    let rec chunk sector off remaining =
      if remaining = 0 then Ok ()
      else begin
        let count = min (remaining / Vdisk.sector_size) sectors_per_frame in
        let clen = count * Vdisk.sector_size in
        let piece = Bytes.sub data off clen in
        let encoded = fe.codec.encode ~sector piece in
        if Bytes.length encoded <> clen then Error "codec changed the payload size"
        else begin
          Hypervisor.in_guest fe.f_hv fe.dom (fun () ->
              Domain.write machine fe.dom ~addr:fe.buffer_gva encoded);
          let* () =
            submit fe
              { Ring.req_id = fresh_req_id fe;
                op = Ring.Write;
                sector;
                count;
                data_gref = fe.f_gref;
                data_off = 0 }
          in
          chunk (sector + count) (off + clen) (remaining - clen)
        end
      end
    in
    chunk sector 0 len
  end

let read_sectors fe ~sector ~count =
  if count <= 0 then Error "read_sectors: count must be positive"
  else begin
    let machine = fe.f_hv.Hypervisor.machine in
    let out = Bytes.create (count * Vdisk.sector_size) in
    let rec chunk sector done_sectors =
      if done_sectors = count then Ok out
      else begin
        let n = min (count - done_sectors) sectors_per_frame in
        let clen = n * Vdisk.sector_size in
        let* () =
          submit fe
            { Ring.req_id = fresh_req_id fe;
              op = Ring.Read;
              sector;
              count = n;
              data_gref = fe.f_gref;
              data_off = 0 }
        in
        let raw =
          Hypervisor.in_guest fe.f_hv fe.dom (fun () ->
              Domain.read machine fe.dom ~addr:fe.buffer_gva ~len:clen)
        in
        let decoded = fe.codec.decode ~sector raw in
        if Bytes.length decoded <> clen then Error "codec changed the payload size"
        else begin
          Bytes.blit decoded 0 out (done_sectors * Vdisk.sector_size) clen;
          chunk (sector + n) (done_sectors + n)
        end
      end
    in
    chunk sector 0
  end

let shared_frame be = be.b_shared_frame
let backend_disk be = be.disk
let requests_served be = be.served
