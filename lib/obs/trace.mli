(** Bounded, deterministic event trace of the simulated platform.

    Every layer of the stack — memory controller, TLB, hypervisor,
    Fidelius gates, SEV firmware — emits structured events here when
    tracing is enabled. Timestamps are read from the cost ledger (via the
    installed {!set_clock} hook), never from wall time, so two runs with
    the same seed produce byte-identical traces: the determinism contract
    the golden-trace tests pin.

    The store is a ring buffer: once [capacity] events have been recorded
    the oldest are overwritten and counted in {!dropped}. The disabled
    path is one domain-local load — emit sites guard with
    [if Trace.enabled () then Trace.emit ...] so no event is allocated
    when tracing is off.

    {2 Thread-safety: one recording per domain}

    All recording state (ring, clock, scope stack, on/off flag) lives in
    [Domain.DLS]: each domain owns an independent recording, and every
    function in this interface reads or writes only the calling domain's
    state. Fleet shards ([Fidelius_fleet.Pool]) therefore trace
    concurrently without locks and without perturbing one another — a
    shard records with {!capture} and returns its entries to the caller,
    which merges them in canonical shard order. Entries themselves are
    immutable and may be handed freely across domains; what must not be
    shared is a live recording. A freshly spawned domain starts with
    tracing disabled regardless of the spawning domain's state. *)

type event =
  | Vmrun of { domid : int }
  | Vmexit of { domid : int; reason : string }
  | Npf of { domid : int; gfn : int }
  | Hypercall of string
  | Gate of int  (** gate type: 1, 2 or 3 *)
  | Shadow_capture of string  (** exit reason being shadowed *)
  | Shadow_verify of { ok : bool }
  | Fw_cmd of string  (** SEV firmware API command mnemonic *)
  | Dram of { blocks : int; encrypted : bool }
  | Walk of { space : int; vfn : int }  (** page-table walk on TLB miss *)
  | Tlb_flush of { full : bool }
  | Pte_write of { vfn : int }
  | Fault of { site : string; hit : int }
      (** an armed injection site fired; [hit] is the per-site firing
          ordinal (1-based), so traces show exactly which fault landed when *)
  | Mark of string  (** free-form scenario milestone *)

type entry = {
  seq : int;  (** monotonic emission index, 0-based, survives ring wrap *)
  ts : int;  (** ledger cycles at emission time *)
  scope : string;  (** innermost cost scope, "" outside any scope *)
  event : event;
}

val enabled : unit -> bool
(** Whether the calling domain is recording. The cheap guard for emit
    sites: one domain-local load, no allocation. *)

val enable : ?capacity:int -> ?clock:(unit -> int) -> unit -> unit
(** Clears the calling domain's buffer and starts recording. [capacity]
    defaults to 65536 entries; [clock] defaults to the previously
    installed clock (a constant 0 if none was ever installed). Raises
    [Invalid_argument] if [capacity <= 0]. *)

val disable : unit -> unit
(** Stops recording on the calling domain; the buffer is retained for
    export. *)

val clear : unit -> unit
(** Drops every recorded entry (and the emitted/dropped counters) of the
    calling domain's recording; on/off state and clock are untouched. *)

val set_clock : (unit -> int) -> unit
(** Install the timestamp source for the calling domain, typically
    [fun () -> Cost.total machine.ledger]. Timestamps are simulated
    cycles, never wall time — the determinism contract depends on it. *)

val push_scope : string -> unit
(** Scope tagging for emitted events; driven by [Cost.with_scope]. *)

val pop_scope : unit -> unit
(** Inverse of {!push_scope}; a no-op on an empty scope stack. *)

val emit : event -> unit
(** Record one event in the calling domain's ring (a no-op when
    disabled). Timestamped with the installed clock, tagged with the
    innermost scope. *)

val capture : ?capacity:int -> ?clock:(unit -> int) -> (unit -> 'a) -> 'a * entry list
(** [capture f] runs [f] under a fresh, enabled, domain-local recording
    and returns [f]'s result together with everything it emitted (oldest
    first). The previous recording — whatever the domain had active,
    enabled or not — is saved and restored afterwards, even on
    exceptions, so captures nest and never leak state. This is the
    per-shard recording primitive of the fleet runner: each shard
    captures its own entries and the caller merges them in canonical
    order. [capacity] defaults to 65536; [clock] defaults to constant 0
    until [f] installs one with {!set_clock}. Raises [Invalid_argument]
    if [capacity <= 0]. *)

(** {2 Reusable rings (per-worker arenas)}

    {!capture} allocates a fresh ring per call; a fleet worker that runs
    hundreds of VM jobs back-to-back would churn one [capacity]-slot
    array (plus one entry list) per job through the major heap — exactly
    the allocation pattern that forces OCaml 5's stop-the-world GC
    rendezvous across domains and flattens the fleet curve. A {!ring} is
    the reusable alternative: allocate it once per worker, then
    {!record_into} it for each job. The slot array survives across jobs;
    only counters, scope stack and clock are reset. *)

type ring
(** A reusable recording: the same state {!capture} builds internally,
    not yet installed on any domain. Owned by exactly one worker at a
    time — installing one ring on two domains concurrently is a data
    race, same rule as any live recording. *)

val ring : ?capacity:int -> unit -> ring
(** A fresh, empty, disabled ring. [capacity] defaults to 65536 entries
    and is fixed for the ring's lifetime. Raises [Invalid_argument] if
    [capacity <= 0]. *)

val ring_capacity : ring -> int
(** The capacity the ring was created with. *)

val record_into : ring -> ?clock:(unit -> int) -> (unit -> 'a) -> 'a
(** [record_into r f] is {!capture} into a caller-owned ring: resets [r]
    (counters, scope stack, clock — {e not} the slot array), enables it,
    installs it as the calling domain's recording, runs [f], and restores
    the previous recording afterwards — even on exceptions, which
    propagate unchanged. Entries stay in [r] for the caller to read
    ({!ring_entries}/{!ring_iter}) until the next [record_into] on it.

    Determinism: because the reset clears everything a previous job could
    have left behind (clock included — a stale neighbour clock never
    stamps the next job's events), the entries recorded for [f] are
    byte-identical to what [capture f] would have returned; the qcheck
    arena-reuse property in [test/test_fleet.ml] pins this. Stale
    entries from earlier runs beyond the new run's count are never
    observable: both readers bound themselves by the current counters. *)

val ring_entries : ring -> entry list
(** The ring's recorded entries, oldest first (allocates the list; for
    the zero-copy path use {!ring_iter}). *)

val ring_iter : ring -> (entry -> unit) -> unit
(** [ring_iter r g] applies [g] to each recorded entry, oldest first,
    without allocating a list — the streaming-serialization path: fleet
    workers fold entries straight into a spill buffer. [g] must not
    re-enter the ring (emit into or reset [r]). *)

val ring_length : ring -> int
(** How many entries the ring currently holds:
    [min (ring_emitted r) (ring_capacity r)]. *)

val ring_emitted : ring -> int
(** Total events emitted into the ring during its last [record_into]
    (including any the ring overwrote after wrapping). *)

val ring_dropped : ring -> int
(** How many of those the ring overwrote:
    [max 0 (ring_emitted r - ring_capacity r)]. *)

val ring_reset : ring -> unit
(** Disable the ring and drop its recorded entries (counters, scope
    stack and clock revert to the fresh state; the slot array is kept for
    reuse). {!record_into} does this implicitly; explicit reset is for
    releasing entry references early without dropping the arena. *)

val entries : unit -> entry list
(** The calling domain's recorded entries, oldest first. *)

val emitted : unit -> int
(** Total events emitted since the last {!clear}, including dropped. *)

val dropped : unit -> int
(** How many of the emitted events the ring has overwritten. *)

val event_name : event -> string
(** Stable wire name of the event constructor (e.g. ["tlb-flush"]). *)

val event_args : event -> (string * Json.t) list
(** The event's payload as JSON fields, in declaration order —
    deterministic, so exports are byte-stable. *)

val jsonl_of : entry list -> string
(** Render any entry list (e.g. a fleet shard's capture) as JSONL, one
    [{"seq":N,"ts":N,"scope":S,"name":S,"args":{...}}] object per line. *)

val to_jsonl : unit -> string
(** {!jsonl_of} applied to the calling domain's {!entries}. *)

val chrome_event : ?pid:int -> ?tid:int -> entry -> Json.t
(** One Chrome [trace_event] instant-event object. [pid]/[tid] default to
    1; the fleet's merged export gives each shard its own [pid] row. *)

val to_chrome : ?attribution:(string * int) list -> ?total_cycles:int -> unit -> Json.t
(** Chrome [trace_event] format: an object with a [traceEvents] array of
    instant events (timestamps in ledger cycles) and an [otherData]
    section carrying the per-scope cycle attribution and the ledger
    total, so viewers and tests can check that attribution sums to the
    total. Single-recording export ([pid] 1 throughout); for the
    multi-shard variant see [Fidelius_fleet.Merge.chrome_of_shards]. *)
