(** Bounded, deterministic event trace of the simulated platform.

    Every layer of the stack — memory controller, TLB, hypervisor,
    Fidelius gates, SEV firmware — emits structured events here when
    tracing is enabled. Timestamps are read from the cost ledger (via the
    installed {!set_clock} hook), never from wall time, so two runs with
    the same seed produce byte-identical traces: the determinism contract
    the golden-trace tests pin.

    The store is a ring buffer: once [capacity] events have been recorded
    the oldest are overwritten and counted in {!dropped}. The disabled
    path is one mutable-bool load — emit sites guard with
    [if !Trace.on then Trace.emit ...] so no event is even allocated.

    This is process-global state (like a tracing daemon's ring), intended
    for single-machine scenario runs; {!enable} clears any previous
    recording. *)

type event =
  | Vmrun of { domid : int }
  | Vmexit of { domid : int; reason : string }
  | Npf of { domid : int; gfn : int }
  | Hypercall of string
  | Gate of int  (** gate type: 1, 2 or 3 *)
  | Shadow_capture of string  (** exit reason being shadowed *)
  | Shadow_verify of { ok : bool }
  | Fw_cmd of string  (** SEV firmware API command mnemonic *)
  | Dram of { blocks : int; encrypted : bool }
  | Walk of { space : int; vfn : int }  (** page-table walk on TLB miss *)
  | Tlb_flush of { full : bool }
  | Pte_write of { vfn : int }
  | Fault of { site : string; hit : int }
      (** an armed injection site fired; [hit] is the per-site firing
          ordinal (1-based), so traces show exactly which fault landed when *)
  | Mark of string  (** free-form scenario milestone *)

type entry = {
  seq : int;  (** monotonic emission index, 0-based, survives ring wrap *)
  ts : int;  (** ledger cycles at emission time *)
  scope : string;  (** innermost cost scope, "" outside any scope *)
  event : event;
}

val on : bool ref
(** The cheap guard. Do not set directly; use {!enable}/{!disable}. *)

val enabled : unit -> bool

val enable : ?capacity:int -> ?clock:(unit -> int) -> unit -> unit
(** Clears the buffer and starts recording. [capacity] defaults to 65536
    entries; [clock] defaults to the previously installed clock (a
    constant 0 if none was ever installed). *)

val disable : unit -> unit
(** Stops recording; the buffer is retained for export. *)

val clear : unit -> unit

val set_clock : (unit -> int) -> unit
(** Install the timestamp source, typically
    [fun () -> Cost.total machine.ledger]. *)

val push_scope : string -> unit
val pop_scope : unit -> unit
(** Scope tagging for emitted events; driven by [Cost.with_scope].
    [pop_scope] on an empty stack is a no-op. *)

val emit : event -> unit

val entries : unit -> entry list
(** Oldest first. *)

val emitted : unit -> int
(** Total events emitted since the last {!clear}, including dropped. *)

val dropped : unit -> int

val event_name : event -> string
val event_args : event -> (string * Json.t) list

val to_jsonl : unit -> string
(** One JSON object per line:
    [{"seq":N,"ts":N,"scope":S,"name":S,"args":{...}}]. *)

val to_chrome : ?attribution:(string * int) list -> ?total_cycles:int -> unit -> Json.t
(** Chrome [trace_event] format: an object with a [traceEvents] array of
    instant events (timestamps in ledger cycles) and an [otherData]
    section carrying the per-scope cycle attribution and the ledger
    total, so viewers and tests can check that attribution sums to the
    total. *)
