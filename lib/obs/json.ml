type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* %.17g survives a round trip; trim the common integral case. *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  to_buffer buf t;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> Buffer.add_char buf '"'; advance c; loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance c; loop ()
        | Some '/' -> Buffer.add_char buf '/'; advance c; loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance c; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance c; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance c; loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance c; loop ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance c; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
            c.pos <- c.pos + 4;
            (* Codepoints beyond one byte only appear in our own escapes for
               control characters, so a byte is enough here. *)
            Buffer.add_char buf (Char.chr (code land 0xff));
            loop ()
        | _ -> fail c "bad escape")
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; fields ((k, v) :: acc)
          | Some '}' -> advance c; List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; Arr [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        Arr (items [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
