type event =
  | Vmrun of { domid : int }
  | Vmexit of { domid : int; reason : string }
  | Npf of { domid : int; gfn : int }
  | Hypercall of string
  | Gate of int
  | Shadow_capture of string
  | Shadow_verify of { ok : bool }
  | Fw_cmd of string
  | Dram of { blocks : int; encrypted : bool }
  | Walk of { space : int; vfn : int }
  | Tlb_flush of { full : bool }
  | Pte_write of { vfn : int }
  | Fault of { site : string; hit : int }
  | Mark of string

type entry = {
  seq : int;
  ts : int;
  scope : string;
  event : event;
}

let default_capacity = 65536

type state = {
  mutable on : bool;
  mutable buf : entry array;
  mutable capacity : int;
  mutable next : int;  (* slot the next entry lands in *)
  mutable total : int;  (* entries emitted since last clear *)
  mutable clock : unit -> int;
  mutable scopes : string list;
}

let dummy = { seq = -1; ts = 0; scope = ""; event = Mark "" }

let fresh_state () =
  { on = false;
    buf = [||];
    capacity = default_capacity;
    next = 0;
    total = 0;
    clock = (fun () -> 0);
    scopes = [] }

(* One recording per domain: every fleet shard (and the main domain) owns
   its own ring, clock and scope stack, so concurrent shards can record
   without a lock and without perturbing each other. *)
let key = Domain.DLS.new_key fresh_state

let st () = Domain.DLS.get key

let enabled () = (st ()).on

let clear () =
  let st = st () in
  st.buf <- [||];
  st.next <- 0;
  st.total <- 0

let set_clock f = (st ()).clock <- f

let enable ?(capacity = default_capacity) ?clock () =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity must be positive";
  clear ();
  let st = st () in
  st.capacity <- capacity;
  (match clock with Some f -> st.clock <- f | None -> ());
  st.on <- true

let disable () = (st ()).on <- false

let push_scope s =
  let st = st () in
  st.scopes <- s :: st.scopes

let pop_scope () =
  let st = st () in
  match st.scopes with [] -> () | _ :: rest -> st.scopes <- rest

let emit event =
  let st = st () in
  if st.on then begin
    if Array.length st.buf = 0 then st.buf <- Array.make st.capacity dummy;
    let scope = match st.scopes with [] -> "" | s :: _ -> s in
    st.buf.(st.next) <- { seq = st.total; ts = st.clock (); scope; event };
    st.next <- (st.next + 1) mod st.capacity;
    st.total <- st.total + 1
  end

let emitted () = (st ()).total

let dropped () =
  let st = st () in
  max 0 (st.total - st.capacity)

let entries_of st =
  let n = min st.total st.capacity in
  if n = 0 then []
  else begin
    (* Oldest entry sits at [next] once the ring has wrapped. *)
    let start = if st.total > st.capacity then st.next else 0 in
    List.init n (fun i -> st.buf.((start + i) mod st.capacity))
  end

let entries () = entries_of (st ())

(* --- reusable rings ---------------------------------------------------- *)

(* A ring is just an un-installed recording state: [record_into] swaps it
   into the domain's DLS slot for the duration of one run, so reuse means
   resetting counters — the entry array survives across runs and the
   steady-state fleet loop stops reallocating 64k-slot arrays per VM. *)
type ring = state

let ring ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity must be positive";
  let s = fresh_state () in
  s.capacity <- capacity;
  s

let ring_capacity (r : ring) = r.capacity

let ring_reset (r : ring) =
  r.on <- false;
  r.next <- 0;
  r.total <- 0;
  r.scopes <- [];
  (* The clock is job state, not arena state: a stale neighbour's clock
     must never stamp the first events of the next job. *)
  r.clock <- (fun () -> 0)

let record_into (r : ring) ?clock f =
  ring_reset r;
  (match clock with Some c -> r.clock <- c | None -> ());
  r.on <- true;
  let saved = Domain.DLS.get key in
  Domain.DLS.set key r;
  Fun.protect
    ~finally:(fun () ->
      r.on <- false;
      Domain.DLS.set key saved)
    f

let ring_entries (r : ring) = entries_of r

let ring_length (r : ring) = min r.total r.capacity

let ring_emitted (r : ring) = r.total

let ring_dropped (r : ring) = max 0 (r.total - r.capacity)

let ring_iter (r : ring) g =
  let n = min r.total r.capacity in
  if n > 0 then begin
    let start = if r.total > r.capacity then r.next else 0 in
    for i = 0 to n - 1 do
      g r.buf.((start + i) mod r.capacity)
    done
  end

let capture ?(capacity = default_capacity) ?clock f =
  if capacity <= 0 then invalid_arg "Trace.capture: capacity must be positive";
  let r = ring ~capacity () in
  let result = record_into r ?clock f in
  (result, entries_of r)

(* --- export ------------------------------------------------------------ *)

let event_name = function
  | Vmrun _ -> "vmrun"
  | Vmexit _ -> "vmexit"
  | Npf _ -> "npf"
  | Hypercall _ -> "hypercall"
  | Gate _ -> "gate"
  | Shadow_capture _ -> "shadow-capture"
  | Shadow_verify _ -> "shadow-verify"
  | Fw_cmd _ -> "fw-cmd"
  | Dram _ -> "dram"
  | Walk _ -> "walk"
  | Tlb_flush _ -> "tlb-flush"
  | Pte_write _ -> "pte-write"
  | Fault _ -> "fault"
  | Mark _ -> "mark"

let event_args = function
  | Vmrun { domid } -> [ ("domid", Json.Int domid) ]
  | Vmexit { domid; reason } -> [ ("domid", Json.Int domid); ("reason", Json.Str reason) ]
  | Npf { domid; gfn } -> [ ("domid", Json.Int domid); ("gfn", Json.Int gfn) ]
  | Hypercall name -> [ ("call", Json.Str name) ]
  | Gate n -> [ ("type", Json.Int n) ]
  | Shadow_capture reason -> [ ("reason", Json.Str reason) ]
  | Shadow_verify { ok } -> [ ("ok", Json.Bool ok) ]
  | Fw_cmd name -> [ ("cmd", Json.Str name) ]
  | Dram { blocks; encrypted } ->
      [ ("blocks", Json.Int blocks); ("encrypted", Json.Bool encrypted) ]
  | Walk { space; vfn } -> [ ("space", Json.Int space); ("vfn", Json.Int vfn) ]
  | Tlb_flush { full } -> [ ("full", Json.Bool full) ]
  | Pte_write { vfn } -> [ ("vfn", Json.Int vfn) ]
  | Fault { site; hit } -> [ ("site", Json.Str site); ("hit", Json.Int hit) ]
  | Mark label -> [ ("label", Json.Str label) ]

let entry_json e =
  Json.Obj
    [ ("seq", Json.Int e.seq);
      ("ts", Json.Int e.ts);
      ("scope", Json.Str e.scope);
      ("name", Json.Str (event_name e.event));
      ("args", Json.Obj (event_args e.event)) ]

let jsonl_of entries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buffer buf (entry_json e);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let to_jsonl () = jsonl_of (entries ())

let chrome_event ?(pid = 1) ?(tid = 1) e =
  Json.Obj
    [ ("name", Json.Str (event_name e.event));
      ("cat", Json.Str (if e.scope = "" then "platform" else e.scope));
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("ts", Json.Int e.ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj (("seq", Json.Int e.seq) :: event_args e.event)) ]

let to_chrome ?(attribution = []) ?total_cycles () =
  let events = List.map chrome_event (entries ()) in
  let other =
    [ ("emitted", Json.Int (emitted ())); ("dropped", Json.Int (dropped ())) ]
    @ (match total_cycles with Some t -> [ ("total_cycles", Json.Int t) ] | None -> [])
    @
    match attribution with
    | [] -> []
    | att -> [ ("attribution", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) att)) ]
  in
  Json.Obj
    [ ("traceEvents", Json.Arr events);
      ("displayTimeUnit", Json.Str "ns");
      ("otherData", Json.Obj other) ]
