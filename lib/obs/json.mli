(** Minimal JSON tree, printer and parser.

    The observability layer must stay dependency-free (it sits below the
    hardware model), so it carries its own ~100-line JSON implementation
    instead of pulling in yojson. The printer emits deterministic output
    (object fields in the order given, no whitespace variation) so traces
    can be compared byte-for-byte; the parser exists so exported traces can
    be validated round-trip in tests and by the trace-smoke CI rule. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering, deterministic field order. *)

val to_buffer : Buffer.t -> t -> unit

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any; [None] on
    non-objects. *)
