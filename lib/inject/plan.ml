type rule = {
  site : Site.t;
  probability : float;
  max_fires : int;
}

let always ?(max_fires = 1) site = { site; probability = 1.; max_fires }

let nsites = List.length Site.all

type t = {
  seed : int64;
  (* all arrays indexed by Site.index *)
  probability : float array;
  max_fires : int array;
  occurrences : int array;  (* guard consultations per site *)
  fired : int array;  (* firings per site *)
  draws : int array;  (* parameter draws per site *)
}

let make ?(seed = 2026L) rules =
  let probability = Array.make nsites 0. in
  let max_fires = Array.make nsites 0 in
  List.iter
    (fun (r : rule) ->
      if not (r.probability >= 0. && r.probability <= 1.) then
        invalid_arg "Plan.make: probability must be in [0,1]";
      if r.max_fires < 0 then invalid_arg "Plan.make: max_fires must be >= 0";
      let i = Site.index r.site in
      probability.(i) <- r.probability;
      max_fires.(i) <- r.max_fires)
    rules;
  { seed;
    probability;
    max_fires;
    occurrences = Array.make nsites 0;
    fired = Array.make nsites 0;
    draws = Array.make nsites 0 }

let seed t = t.seed

(* The active plan is domain-local: each fleet shard arms and clears its
   own plan without a lock, and a freshly spawned domain starts with no
   plan installed whatever its parent had armed. *)
let slot : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let installed () = !(Domain.DLS.get slot)

let armed () = installed () <> None

let install t = Domain.DLS.get slot := Some t

let uninstall () = Domain.DLS.get slot := None

(* splitmix64 finalizer — the decision for (seed, site, counter) is a pure
   hash, so no site's schedule depends on what other sites did. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash seed ~salt ~site ~counter =
  mix64
    (Int64.logxor
       (Int64.add seed (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int salt)))
       (mix64 (Int64.of_int ((site * 0x10001) + counter))))

(* top 53 bits as a float in [0,1) *)
let to_unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let fire site =
  match installed () with
  | None -> false
  | Some t ->
      let i = Site.index site in
      let k = t.occurrences.(i) in
      t.occurrences.(i) <- k + 1;
      let p = t.probability.(i) in
      if p <= 0. || t.fired.(i) >= t.max_fires.(i) then false
      else if to_unit_float (hash t.seed ~salt:0 ~site:i ~counter:k) < p then begin
        t.fired.(i) <- t.fired.(i) + 1;
        if Fidelius_obs.Trace.enabled () then
          Fidelius_obs.Trace.emit
            (Fault { site = Site.to_string site; hit = t.fired.(i) });
        true
      end
      else false

let draw site ~bound =
  if bound <= 0 then invalid_arg "Plan.draw: bound must be positive";
  match installed () with
  | None -> invalid_arg "Plan.draw: no plan installed"
  | Some t ->
      let i = Site.index site in
      let k = t.draws.(i) in
      t.draws.(i) <- k + 1;
      let h = hash t.seed ~salt:1 ~site:i ~counter:k in
      Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int bound))

let fires t =
  List.filter_map
    (fun s ->
      let i = Site.index s in
      if t.max_fires.(i) > 0 && t.probability.(i) > 0. then Some (s, t.fired.(i))
      else None)
    Site.all

let total_fires t = Array.fold_left ( + ) 0 t.fired

let occurrences t site = t.occurrences.(Site.index site)
