(** Differential fault-injection matrix.

    For every (fault site × stack) cell this runner arms a single-shot
    deterministic plan ({!Fidelius_inject.Plan}) and drives three probes:

    - the full attack suite, each attack on a fresh stack, comparing the
      faulted outcome against the same attack's fault-free reference;
    - a migration round trip (source platform → untrusted channel →
      target platform) followed by a secret readback on the target;
    - a runtime read of the victim's secret — through the
      hardware-integrity extension ([Core.Integrity]) on the Fidelius
      stack, through the ordinary path on plain SEV.

    Each probe scores one of four verdicts; a cell reports the worst.
    The whole matrix is a pure function of the seed: same seed, same
    table, byte for byte. *)

module Site = Fidelius_inject.Site

type stack_kind = Plain_sev | Fidelius

val stack_kind_to_string : stack_kind -> string

type verdict =
  | Fail_closed
      (** the fault had no security-relevant effect: outcomes match the
          fault-free reference, or the operation was refused before any
          state changed *)
  | Detected
      (** a defence caught the perturbation: a Denial-class error, a
          typed migration failure, a measurement or integrity mismatch *)
  | Silent_corruption
      (** state or outcomes changed with no defence noticing — the
          verdict the Fidelius column must never show *)
  | Harness_error
      (** the simulator itself broke (an unclassified exception): a bug
          in the harness, never a defence *)

val verdict_to_string : verdict -> string

val severity : verdict -> int
(** [Fail_closed] < [Detected] < [Silent_corruption] < [Harness_error]. *)

type cell = {
  site : Site.t;
  stack : stack_kind;
  verdict : verdict;
  detail : string;  (** the probe and observation behind the verdict *)
}

type report = {
  seed : int64;
  cells : cell list;  (** all (site × stack) cells, sites in {!Site.all} order *)
}

val run :
  ?seed:int64 ->
  ?domains:int ->
  ?sites:Site.t list ->
  ?attacks:Fidelius_attacks.Surface.attack list ->
  unit ->
  report
(** Run the matrix. [sites] defaults to {!Site.all}; [attacks] defaults
    to the full suite ([Fidelius_attacks.Suite.all]) — tests pass a
    subset to keep runtime down. [domains] (default
    [Fidelius_fleet.Pool.recommended_domains ()]) shards the fault-free
    reference runs and then the (site × stack) cells across that many
    OCaml domains; each cell arms its plan in its own domain-local slot,
    and the report is identical for every domain count (pinned by a
    test). *)

val fidelius_clean : report -> bool
(** True iff no Fidelius-column cell is [Silent_corruption] or
    [Harness_error] — the CLI's exit-code gate. *)

val pp_table : Format.formatter -> report -> unit
