module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Attacks = Fidelius_attacks
module Site = Fidelius_inject.Site
module Plan = Fidelius_inject.Plan
module Surface = Attacks.Surface

type stack_kind = Plain_sev | Fidelius

let stack_kind_to_string = function Plain_sev -> "plain-SEV" | Fidelius -> "Fidelius"

type verdict = Fail_closed | Detected | Silent_corruption | Harness_error

let verdict_to_string = function
  | Fail_closed -> "fail-closed"
  | Detected -> "detected"
  | Silent_corruption -> "SILENT-CORRUPTION"
  | Harness_error -> "HARNESS-ERROR"

let severity = function
  | Fail_closed -> 0
  | Detected -> 1
  | Silent_corruption -> 2
  | Harness_error -> 3

type cell = {
  site : Site.t;
  stack : stack_kind;
  verdict : verdict;
  detail : string;
}

type report = {
  seed : int64;
  cells : cell list;
}

(* Every probe arms a fresh single-shot plan: the site fires exactly once,
   on its first guarded occurrence, making each cell's perturbation both
   minimal and perfectly reproducible. *)
let with_plan ~seed site f =
  Plan.install (Plan.make ~seed [ Plan.always site ]);
  Fun.protect ~finally:Plan.uninstall f

(* Same classification contract as Attacks.Runner.guard: only
   Denial-class exceptions model a defence turning the actor away. *)
let guard f =
  try f ()
  with
  | Hw.Denial.Denied m -> Surface.Blocked m
  | Xen.Hypervisor.Npf_unresolved m -> Surface.Blocked ("NPF handler refused: " ^ m)
  | Hw.Mmu.Fault { reason; _ } -> Surface.Blocked ("page fault: " ^ reason)
  | e -> Surface.Errored (Printexc.to_string e)

let build kind ~seed =
  match kind with
  | Plain_sev -> Attacks.Env.baseline ~seed
  | Fidelius -> Attacks.Env.protected_ ~seed

let ctor = function
  | Surface.Leaked _ -> `Leaked
  | Surface.Tampered _ -> `Tampered
  | Surface.Degraded _ -> `Degraded
  | Surface.Blocked _ -> `Blocked
  | Surface.Errored _ -> `Errored

let defended o = Surface.is_defended o

(* --- probe 1: the attack suite ---------------------------------------- *)

(* A fault must never flip an attack from defended to undefended without a
   defence noticing. Outcomes are compared by constructor: messages may
   legitimately carry fault-dependent payloads (ciphertext samples etc.). *)
let score_attack ~reference ~faulted =
  match faulted with
  | Surface.Errored m -> (Harness_error, "attack errored: " ^ m)
  | _ when ctor faulted = ctor reference -> (Fail_closed, "outcome unchanged")
  | _ when defended faulted ->
      (Detected, "outcome became " ^ Surface.outcome_to_string faulted)
  | _ when defended reference ->
      (Silent_corruption, "defended became " ^ Surface.outcome_to_string faulted)
  | _ ->
      (* undefended in both runs, but the failure mode changed unnoticed *)
      (Silent_corruption, "undefended outcome drifted to " ^ Surface.outcome_to_string faulted)

let attack_probe ~seed ~references site kind attacks =
  List.fold_left
    (fun (worst, detail) (i, (attack : Surface.attack)) ->
      let stack_seed = Int64.add seed (Int64.of_int (i * 10)) in
      let stack = build kind ~seed:stack_seed in
      let faulted =
        with_plan ~seed site (fun () -> guard (fun () -> attack.Surface.run stack))
      in
      let reference = List.assoc attack.Surface.id references in
      let v, d = score_attack ~reference ~faulted in
      if severity v > severity worst then (v, attack.Surface.id ^ ": " ^ d)
      else (worst, detail))
    (Fail_closed, "attack outcomes unchanged")
    (List.mapi (fun i a -> (i, a)) attacks)

(* --- probe 2: migration round trip ------------------------------------ *)

let secret_survives machine hv dom =
  let b =
    Xen.Hypervisor.in_guest hv dom (fun () ->
        Xen.Domain.read machine dom ~addr:Attacks.Env.secret_gva
          ~len:(String.length Attacks.Env.secret))
  in
  Bytes.to_string b = Attacks.Env.secret

(* Fidelius migration: the product path, Core.Migrate.migrate_live with an
   attesting owner — every wire frame crosses the instrumented untrusted
   channel, a mutator keeps the dirty rounds nonzero, and the disk key is
   gated on the target's quote, so the channel sites (Round_truncate and
   both Snapshot sites) and the attestation sites (Stale_firmware,
   Secret_before_attest) all strike the path production code uses. *)
let fidelius_migration_probe ~seed site =
  let src = Attacks.Env.protected_ ~seed in
  let fid1 = Option.get src.Surface.fid in
  let dom = src.Surface.victim in
  let m2 = Hw.Machine.create ~seed:(Int64.add seed 31L) () in
  let hv2 = Xen.Hypervisor.boot m2 in
  let fid2 = Core.Fidelius.install hv2 in
  let owner = Core.Migrate.Owner.create m2.Hw.Machine.rng in
  let mutate _round =
    Xen.Hypervisor.in_guest src.Surface.hv dom (fun () ->
        Xen.Domain.write src.Surface.machine dom ~addr:0x7000
          (Bytes.of_string "pre-copy dirtier"))
  in
  let outcome =
    with_plan ~seed site (fun () ->
        try `Result (Core.Migrate.migrate_live ~owner ~mutate ~src:fid1 ~dst:fid2 dom) with
        | Hw.Denial.Denied m -> `Denied m
        | Xen.Hypervisor.Npf_unresolved m -> `Denied m
        | Hw.Mmu.Fault { reason; _ } -> `Denied reason
        | e -> `Exn (Printexc.to_string e))
  in
  match outcome with
  | `Denied m -> (Detected, "migration denied: " ^ m)
  | `Exn m -> (Harness_error, "migration raised: " ^ m)
  | `Result (Error (Core.Migrate.Truncated _ as e))
  | `Result (Error (Core.Migrate.Malformed _ as e))
  | `Result (Error (Core.Migrate.Rejected _ as e))
  | `Result (Error (Core.Migrate.Unknown_version _ as e))
  | `Result (Error (Core.Migrate.Protocol_violation _ as e))
  | `Result (Error (Core.Migrate.Stale_firmware _ as e))
  | `Result (Error (Core.Migrate.Attest_refused _ as e)) ->
      (* a defence (framing, measurement, state machine or the owner's
         attestation policy) named the fault; the key was never released *)
      (Detected, Core.Migrate.error_to_string e)
  | `Result (Error e) ->
      (* refused or rolled back before any guest ran: closed, undetected *)
      (Fail_closed, Core.Migrate.error_to_string e)
  | `Result (Ok (dom', report)) ->
      if not (secret_survives m2 hv2 dom') then
        (Silent_corruption, "guest resumed with corrupted state")
      else if
        (not report.Core.Migrate.secret_released)
        || not (Bytes.equal (Core.Lifecycle.kblk_of_guest fid2 dom') (Core.Migrate.Owner.disk_key owner))
      then (Silent_corruption, "disk key not delivered intact")
      else (Fail_closed, "round trip intact")

(* Plain-SEV migration: the same firmware commands, driven by the stock
   (untrusted) hypervisor with no Fidelius validation layer — the
   configuration the paper's Section 2.2 analyzes. *)
let plain_migration_probe ~seed site =
  let ( let* ) = Result.bind in
  let src = Attacks.Env.baseline ~seed in
  let machine1 = src.Surface.machine in
  let fw1 = src.Surface.hv.Xen.Hypervisor.fw in
  let m2 = Hw.Machine.create ~seed:(Int64.add seed 31L) () in
  let hv2 = Xen.Hypervisor.boot m2 in
  let fw2 = hv2.Xen.Hypervisor.fw in
  let handle1 = Option.get src.Surface.victim.Xen.Domain.sev_handle in
  let nonce = Fidelius_crypto.Rng.next64 machine1.Hw.Machine.rng in
  (* Send side runs clean — the channel and the target are what the fault
     plan perturbs. *)
  let sent =
    let* wrapped_keys =
      Sev.Firmware.send_start fw1 ~handle:handle1
        ~target_public:(Sev.Firmware.platform_public fw2) ~nonce
    in
    let mapped =
      Hw.Pagetable.mapped_frames src.Surface.victim.Xen.Domain.npt
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let* pages =
      List.fold_left
        (fun acc (gfn, (npte : Hw.Pagetable.proto)) ->
          let* acc = acc in
          let* cipher =
            Sev.Firmware.send_update fw1 ~handle:handle1 ~index:gfn
              ~src_pfn:npte.Hw.Pagetable.frame
          in
          Ok ((gfn, cipher) :: acc))
        (Ok []) mapped
    in
    let* measurement = Sev.Firmware.send_finish fw1 ~handle:handle1 in
    Ok
      { Core.Migrate.image =
          { Sev.Transport.pages = List.rev pages;
            measurement;
            policy = Sev.Firmware.policy_nodbg;
            nonce };
        wrapped_keys;
        origin_public = Sev.Firmware.platform_public fw1;
        memory_pages = List.length pages;
        gpt_entries = [];
        name = "victim" }
  in
  match sent with
  | Error e -> (Harness_error, "plain send failed clean: " ^ e)
  | Ok snap -> (
      let received =
        with_plan ~seed site (fun () ->
            try
              let* snap =
                Result.map_error
                  (fun e -> `Wire (Core.Migrate.error_to_string e))
                  (Core.Migrate.transmit snap)
              in
              let memory_pages = snap.Core.Migrate.memory_pages in
              let dom2 = Xen.Hypervisor.create_domain hv2 ~name:"victim" ~memory_pages in
              let* handle2 =
                Result.map_error (fun e -> `Rejected e)
                  (Sev.Firmware.receive_start fw2 ~wrapped:snap.Core.Migrate.wrapped_keys
                     ~origin_public:snap.Core.Migrate.origin_public
                     ~nonce:snap.Core.Migrate.image.Sev.Transport.nonce
                     ~policy:snap.Core.Migrate.image.Sev.Transport.policy ())
              in
              let* () =
                List.fold_left
                  (fun acc (gfn, cipher) ->
                    let* () = acc in
                    match Hw.Pagetable.lookup dom2.Xen.Domain.npt gfn with
                    | None -> Error (`Mechanical (Printf.sprintf "gfn 0x%x unbacked" gfn))
                    | Some npte ->
                        Result.map_error
                          (fun e -> `Rejected e)
                          (Sev.Firmware.receive_update fw2 ~handle:handle2 ~index:gfn
                             ~cipher ~dst_pfn:npte.Hw.Pagetable.frame))
                  (Ok ()) snap.Core.Migrate.image.Sev.Transport.pages
              in
              let* () =
                Result.map_error (fun e -> `Rejected e)
                  (Sev.Firmware.receive_finish fw2 ~handle:handle2
                     ~expected:snap.Core.Migrate.image.Sev.Transport.measurement)
              in
              let* () =
                Result.map_error (fun e -> `Mechanical e)
                  (Sev.Firmware.activate fw2 ~handle:handle2 ~asid:dom2.Xen.Domain.asid)
              in
              dom2.Xen.Domain.sev_handle <- Some handle2;
              dom2.Xen.Domain.sev_protected <- true;
              Hw.Vmcb.set dom2.Xen.Domain.vmcb Hw.Vmcb.Sev_enabled 1L;
              for gvfn = 0 to memory_pages - 1 do
                Xen.Domain.guest_map dom2 ~gvfn ~gfn:gvfn ~writable:true ~executable:true
                  ~c_bit:true
              done;
              Ok dom2
            with
            | Hw.Denial.Denied m -> Error (`Denied m)
            | Xen.Hypervisor.Npf_unresolved m -> Error (`Denied m)
            | Hw.Mmu.Fault { reason; _ } -> Error (`Denied reason)
            | e -> Error (`Exn (Printexc.to_string e)))
      in
      match received with
      | Error (`Wire e) -> (Detected, "channel damage detected: " ^ e)
      | Error (`Rejected e) -> (Detected, "target firmware refused: " ^ e)
      | Error (`Denied m) -> (Detected, "denied: " ^ m)
      | Error (`Mechanical e) -> (Fail_closed, "receive failed closed: " ^ e)
      | Error (`Exn m) -> (Harness_error, "plain receive raised: " ^ m)
      | Ok dom2 ->
          if secret_survives m2 hv2 dom2 then (Fail_closed, "round trip intact")
          else (Silent_corruption, "guest resumed with corrupted state"))

let migration_probe ~seed site kind =
  match kind with
  | Fidelius -> fidelius_migration_probe ~seed site
  | Plain_sev -> plain_migration_probe ~seed site

(* --- probe 3: runtime secret readback --------------------------------- *)

(* DRAM-level faults strike during an ordinary guest read. Plain SEV has
   nothing watching — a flipped or misrouted fetch garbles state silently.
   The Fidelius stack reads through the hardware-integrity extension,
   whose inline fetch check turns the same fault into a denial. The probe
   reads the whole page holding the secret so a fault anywhere in it is
   visible, and compares against a fault-free read of the same page. *)
let runtime_probe ~seed site kind =
  let stack = build kind ~seed in
  let page_gva = Hw.Addr.addr_of (Hw.Addr.frame_of Attacks.Env.secret_gva) 0 in
  let len = Hw.Addr.page_size in
  let read =
    match kind with
    | Plain_sev ->
        fun () ->
          Ok
            (Bytes.to_string
               (Xen.Hypervisor.in_guest stack.Surface.hv stack.Surface.victim (fun () ->
                    Xen.Domain.read stack.Surface.machine stack.Surface.victim
                      ~addr:page_gva ~len)))
    | Fidelius ->
        let fid = Option.get stack.Surface.fid in
        let integ = Core.Integrity.protect fid stack.Surface.victim in
        fun () ->
          Result.map Bytes.to_string (Core.Integrity.verified_read integ ~addr:page_gva ~len)
  in
  match read () with
  | Error e -> (Harness_error, "fault-free read failed: " ^ e)
  | Ok clean -> (
      (* Evict the page's cache lines so the faulted read actually reaches
         DRAM — the untrusted hypervisor controls WBINVD, so a disturbance
         attack always gets to pair with an eviction. *)
      Hw.Cache.invalidate_page stack.Surface.machine.Hw.Machine.cache
        (Attacks.Env.resolve_secret_frame stack);
      let outcome =
        with_plan ~seed site (fun () ->
            try `Result (read ()) with
            | Hw.Denial.Denied m -> `Denied m
            | Xen.Hypervisor.Npf_unresolved m -> `Denied m
            | Hw.Mmu.Fault { reason; _ } -> `Denied reason
            | e -> `Exn (Printexc.to_string e))
      in
      match outcome with
      | `Denied m -> (Detected, "read denied: " ^ m)
      | `Exn m -> (Harness_error, "read raised: " ^ m)
      | `Result (Error e) -> (Detected, "verified read refused: " ^ e)
      | `Result (Ok s) ->
          if s = clean then (Fail_closed, "guest page intact")
          else (Silent_corruption, "guest page garbled unnoticed"))

(* --- the matrix -------------------------------------------------------- *)

let run ?(seed = 2026L) ?domains ?(sites = Site.all) ?(attacks = Attacks.Suite.all) () =
  let kinds = [ Plain_sev; Fidelius ] in
  (* Fault-free references, one per (kind, attack), with the same stack
     seeds the faulted runs use. Each reference is an independent job —
     fresh stack, no plan installed — so the pool shards them freely. *)
  let ref_jobs =
    List.concat_map (fun kind -> List.mapi (fun i a -> (kind, i, a)) attacks) kinds
  in
  let ref_rows =
    Fidelius_fleet.Pool.map_list ?domains
      (fun (kind, i, (attack : Surface.attack)) ->
        let stack = build kind ~seed:(Int64.add seed (Int64.of_int (i * 10))) in
        (kind, attack.Surface.id, guard (fun () -> attack.Surface.run stack)))
      ref_jobs
  in
  let references =
    List.map
      (fun kind ->
        ( kind,
          List.filter_map
            (fun (k, id, o) -> if k = kind then Some (id, o) else None)
            ref_rows ))
      kinds
  in
  (* One pool job per (site × stack) cell. Every probe builds its own
     stacks and arms its own single-shot plan in the worker's domain-local
     slot, so cells never interact; results come back in canonical
     (site-major, kind-minor) order whatever the domain count. *)
  let cell_jobs = List.concat_map (fun site -> List.map (fun kind -> (site, kind)) kinds) sites in
  let cells =
    Fidelius_fleet.Pool.map_list ?domains
      (fun (site, kind) ->
        let probes =
          [ attack_probe ~seed ~references:(List.assoc kind references) site kind
              attacks;
            migration_probe ~seed site kind;
            runtime_probe ~seed site kind ]
        in
        let verdict, detail =
          List.fold_left
            (fun (wv, wd) (v, d) -> if severity v > severity wv then (v, d) else (wv, wd))
            (List.hd probes) (List.tl probes)
        in
        { site; stack = kind; verdict; detail })
      cell_jobs
  in
  { seed; cells }

let fidelius_clean report =
  List.for_all
    (fun c ->
      c.stack <> Fidelius || severity c.verdict < severity Silent_corruption)
    report.cells

let find report site kind =
  List.find (fun c -> c.site = site && c.stack = kind) report.cells

let pp_table fmt report =
  let sites = List.sort_uniq compare (List.map (fun c -> c.site) report.cells) in
  let sites = List.filter (fun s -> List.mem s sites) Site.all in
  let w = 18 in
  Format.fprintf fmt "@[<v>%-18s | %-*s | %-*s | notes (Fidelius column)@," "fault site" w
    "plain SEV" w "Fidelius";
  Format.fprintf fmt "%s@," (String.make (21 + (2 * (w + 3)) + 24) '-');
  List.iter
    (fun site ->
      let plain = find report site Plain_sev in
      let fid = find report site Fidelius in
      let note = if fid.verdict = Fail_closed then "" else fid.detail in
      let note =
        if String.length note > 48 then String.sub note 0 45 ^ "..." else note
      in
      Format.fprintf fmt "%-18s | %-*s | %-*s | %s@," (Site.to_string site) w
        (verdict_to_string plain.verdict) w
        (verdict_to_string fid.verdict) note)
    sites;
  Format.fprintf fmt "%s@," (String.make (21 + (2 * (w + 3)) + 24) '-');
  let worst col =
    List.fold_left
      (fun acc c -> if c.stack = col && severity c.verdict > severity acc then c.verdict else acc)
      Fail_closed report.cells
  in
  Format.fprintf fmt "seed %Ld: worst plain-SEV verdict %s, worst Fidelius verdict %s@]"
    report.seed
    (verdict_to_string (worst Plain_sev))
    (verdict_to_string (worst Fidelius))
