(** The fault-site taxonomy.

    Each constructor names one place in the simulated platform where a
    deterministic fault can be armed. The set mirrors the misbehaviours the
    literature attributes to a hostile platform: DRAM-level ciphertext
    corruption (SEVurity-style bit-flips, Rowhammer), hypervisor page
    remapping (Hetzelt & Buhren), dropped/replayed firmware commands,
    TLB-maintenance omission, spurious #NPF storms, and a lossy/tampering
    migration channel. *)

type t =
  | Dram_flip  (** flip one bit of stored ciphertext before a CPU read *)
  | Dram_remap
      (** serve a CPU read with the neighbouring frame's ciphertext — the
          physical-address tweak of XEX must turn this into garbage *)
  | Fw_drop  (** silently discard a RECEIVE_UPDATE firmware command *)
  | Fw_replay  (** apply a RECEIVE_UPDATE firmware command twice *)
  | Tlb_omit_flush  (** skip a requested TLB invalidation *)
  | Spurious_npf  (** raise an unsolicited nested page fault mid-guest *)
  | Snapshot_truncate  (** drop trailing pages from a migration snapshot *)
  | Snapshot_flip  (** flip one bit of a migration snapshot page *)
  | Round_truncate
      (** surgically drop the trailing page record of a live-migration
          round and re-frame the wire message consistently — framing
          checks cannot see it, only the keyed measurement can *)
  | Stale_firmware
      (** the hypervisor swaps in an old, vulnerable secure-processor
          firmware blob before the target platform is quoted — the quote
          MAC still verifies; only the owner's version policy can refuse *)
  | Secret_before_attest
      (** compromised owner-side tooling pushes the LAUNCH_SECRET packet
          before the attestation exchange has produced a quote *)

val all : t list
(** Every site, in declaration order. *)

val index : t -> int
(** Stable 0-based position in {!all}; part of the determinism contract
    (the firing schedule hashes over it). New sites must be appended,
    never inserted, so existing indices stay stable. *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
