(** Deterministic, seed-driven fault plan.

    A plan arms a subset of {!Site.t}s with a firing probability and an
    optional firing budget. Product code asks [if Plan.armed () &&
    Plan.fire Site.X then ...] at each instrumented site — the same
    cheap-when-off discipline as [Obs.Trace]: with no plan installed the
    guard is a single domain-local load and nothing else runs.

    {2 Thread-safety: one plan per domain}

    The installed plan is [Domain.DLS]-backed: {!install}, {!fire},
    {!draw} and {!uninstall} all act on the calling domain's slot only.
    Fleet shards ([Fidelius_fleet.Pool]) arm independent plans
    concurrently without locks; a freshly spawned domain starts with no
    plan installed. A plan value carries mutable counters, so installing
    the same [t] in two domains at once is a data race — build one plan
    per shard ({!make} is cheap).

    {2 Determinism}

    Whether occurrence [k] at site [s] fires is a pure function of
    [(plan seed, Site.index s, k)] — a splitmix64-style finalizer hashed
    over the triple, mapped to [0,1) and compared against the rule's
    probability. No hidden generator state is shared between sites, so
    adding instrumentation at one site can never shift another site's
    schedule, and the same seed always reproduces the same firing
    schedule. Fault {e parameters} (which bit to flip, which frame to
    remap to) come from {!draw}, keyed the same way over a separate
    per-site draw counter.

    A rule with [probability = 0.] never fires, emits no trace events and
    charges no cost: running under such a plan is byte-identical to
    running with injection disabled (pinned by a qcheck property).

    {2 Observability}

    Every firing emits [Obs.Trace.Fault {site; hit}] when tracing is
    enabled, so a trace shows exactly which fault landed when. *)

type rule = {
  site : Site.t;
  probability : float;  (** chance each occurrence fires, in [0,1] *)
  max_fires : int;  (** firing budget; occurrences beyond it never fire *)
}

val always : ?max_fires:int -> Site.t -> rule
(** [always site] is [{site; probability = 1.; max_fires = 1}] — the
    single-shot deterministic rule the matrix runner uses. *)

type t

val make : ?seed:int64 -> rule list -> t
(** [make ~seed rules] builds a plan. Sites not mentioned never fire.
    Duplicate sites: the last rule wins. [seed] defaults to [2026L].
    Raises [Invalid_argument] on a probability outside [0,1] or a
    negative [max_fires]. *)

val seed : t -> int64
(** The seed the plan's firing schedule and parameter draws hash over. *)

val armed : unit -> bool
(** The cheap guard: true iff the calling domain has a plan installed.
    One domain-local load, no allocation. *)

val install : t -> unit
(** Makes [t] the calling domain's active plan (replacing any previous
    one). Counters are {e not} reset — install a fresh plan for a fresh
    schedule. *)

val uninstall : unit -> unit
(** Clears the calling domain's plan; subsequent [fire] calls return
    false. *)

val installed : unit -> t option
(** The calling domain's active plan, if any. *)

val fire : Site.t -> bool
(** Decide occurrence [k] at this site (and advance the site's occurrence
    counter). False when no plan is installed or the site is unarmed.
    Emits the trace event on true. *)

val draw : Site.t -> bound:int -> int
(** Deterministic fault parameter in [\[0, bound)], from the plan's seed
    and the site's draw counter. Meant to be called only after {!fire}
    returned true. Raises [Invalid_argument] if [bound <= 0] or no plan
    is installed. *)

val fires : t -> (Site.t * int) list
(** Firing counts so far, armed sites only, declaration order. *)

val total_fires : t -> int

val occurrences : t -> Site.t -> int
(** How many times the site's guard was consulted. *)
