type t =
  | Dram_flip
  | Dram_remap
  | Fw_drop
  | Fw_replay
  | Tlb_omit_flush
  | Spurious_npf
  | Snapshot_truncate
  | Snapshot_flip
  | Round_truncate
  | Stale_firmware
  | Secret_before_attest

let all =
  [ Dram_flip; Dram_remap; Fw_drop; Fw_replay; Tlb_omit_flush; Spurious_npf;
    Snapshot_truncate; Snapshot_flip; Round_truncate; Stale_firmware;
    Secret_before_attest ]

let index = function
  | Dram_flip -> 0
  | Dram_remap -> 1
  | Fw_drop -> 2
  | Fw_replay -> 3
  | Tlb_omit_flush -> 4
  | Spurious_npf -> 5
  | Snapshot_truncate -> 6
  | Snapshot_flip -> 7
  | Round_truncate -> 8
  | Stale_firmware -> 9
  | Secret_before_attest -> 10

let to_string = function
  | Dram_flip -> "dram-flip"
  | Dram_remap -> "dram-remap"
  | Fw_drop -> "fw-drop"
  | Fw_replay -> "fw-replay"
  | Tlb_omit_flush -> "tlb-omit-flush"
  | Spurious_npf -> "spurious-npf"
  | Snapshot_truncate -> "snapshot-truncate"
  | Snapshot_flip -> "snapshot-flip"
  | Round_truncate -> "round-truncate"
  | Stale_firmware -> "stale-firmware"
  | Secret_before_attest -> "secret-before-attest"

let of_string s = List.find_opt (fun t -> to_string t = s) all

let pp fmt t = Format.pp_print_string fmt (to_string t)
