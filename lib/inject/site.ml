type t =
  | Dram_flip
  | Dram_remap
  | Fw_drop
  | Fw_replay
  | Tlb_omit_flush
  | Spurious_npf
  | Snapshot_truncate
  | Snapshot_flip

let all =
  [ Dram_flip; Dram_remap; Fw_drop; Fw_replay; Tlb_omit_flush; Spurious_npf;
    Snapshot_truncate; Snapshot_flip ]

let index = function
  | Dram_flip -> 0
  | Dram_remap -> 1
  | Fw_drop -> 2
  | Fw_replay -> 3
  | Tlb_omit_flush -> 4
  | Spurious_npf -> 5
  | Snapshot_truncate -> 6
  | Snapshot_flip -> 7

let to_string = function
  | Dram_flip -> "dram-flip"
  | Dram_remap -> "dram-remap"
  | Fw_drop -> "fw-drop"
  | Fw_replay -> "fw-replay"
  | Tlb_omit_flush -> "tlb-omit-flush"
  | Spurious_npf -> "spurious-npf"
  | Snapshot_truncate -> "snapshot-truncate"
  | Snapshot_flip -> "snapshot-flip"

let of_string s = List.find_opt (fun t -> to_string t = s) all

let pp fmt t = Format.pp_print_string fmt (to_string t)
