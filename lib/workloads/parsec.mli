(** PARSEC benchmark profiles (the thirteen programs of the paper's
    Figure 6). canneal's unstructured data model makes it the only
    memory-encryption outlier (paper: 14.27%); the suite average lands near
    the paper's 1.97% (Fidelius-enc) and 0.43% (Fidelius). *)

val all : Profile.t list
val find : string -> Profile.t option
