(** Synthetic workload profiles.

    Real SPECCPU/PARSEC binaries cannot run on the simulator, so each
    benchmark is characterized by the knobs that determine its behaviour on
    the three stacks (see DESIGN.md §1): how much of its time is memory
    stalls (which the SME engine inflates), how often it exits to the
    hypervisor (which Fidelius' shadowing and gates inflate), and how big
    its working set is. The shape of the paper's figures — which benchmarks
    suffer, which don't — follows mechanically from these. *)

type t = {
  name : string;
  suite : string;                 (** "SPECCPU2006" | "PARSEC" *)
  total_mcycles : int;            (** scaled run length, in millions of cycles *)
  mem_stall_fraction : float;     (** fraction of baseline time stalled on DRAM *)
  working_set_pages : int;
  vmexits : int;                  (** hypervisor round trips during the run *)
  write_fraction : float;         (** stores among memory operations *)
}

val scale : int
(** Cycle scale-down factor versus the paper's multi-minute runs (purely
    cosmetic; overheads are ratios). *)
