type t = {
  name : string;
  suite : string;
  total_mcycles : int;
  mem_stall_fraction : float;
  working_set_pages : int;
  vmexits : int;
  write_fraction : float;
}

let scale = 1000
