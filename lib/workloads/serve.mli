(** Traffic-serving workload over the batched PV datapath.

    A protected guest (AES-NI disk codec, as in the paper's deployment
    scenario) serves a mixed request stream: block reads/writes through the
    PV block ring and request/response frame exchanges through the PV
    network path. Requests arrive open-loop — arrival gaps are drawn
    independently of service progress, so queueing delay is visible — and
    are served [batch] descriptors per doorbell. Latency is measured per
    request in simulated ledger cycles from arrival to batch completion,
    which exposes the batching trade-off: throughput rises with [batch]
    while early members of a batch wait for it to fill.

    The load generator is calibrated closed-loop first: the measured mean
    service cost per request sets the arrival gap to
    [mean_service / load] with uniform jitter in [0.5, 1.5] of the gap. *)

type config = {
  requests : int;      (** total requests (rounded down to whole batches) *)
  batch : int;         (** descriptors per doorbell, clamped to [1, 8] *)
  net_fraction : int;  (** percent of batches that are network exchanges *)
  load : float;        (** offered load as a fraction of calibrated capacity *)
  seed : int64;
}

val default_config : config
(** 512 requests, batch 8, 30% network, load 0.8, seed 97. *)

type report = {
  batch : int;
  completed : int;
  rps : float;             (** requests per second at a 1 GHz simulated clock *)
  p50_us : float;          (** latency percentiles, simulated microseconds *)
  p90_us : float;
  p99_us : float;
  mean_service_cycles : float;  (** calibrated per-request service cost *)
  hypercalls : int;        (** world switches taken while serving *)
  blk_notifications : int; (** block-backend doorbells *)
  net_frames : int;        (** frames forwarded on the wire *)
}

val run : config -> report

val ring_workload : batch:int -> iters:int -> unit -> unit
(** Wall-clock ring-throughput kernel for the bench harness: boots a
    protected-guest stack and returns a thunk that pushes [iters]
    single-sector read descriptors through the ring, [batch] per doorbell.
    The thunk is re-runnable; the harness supplies the timer (this library
    does not link [unix]). *)
