module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Rng = Fidelius_crypto.Rng

type pattern = {
  pat_name : string;
  sequential : bool;
  is_read : bool;
  requests : int;
  request_sectors : int;
  seek_cycles : int;
  decode_duplication : float;
  write_overlap : float;
  unit_name : string;
  unit_bytes_per_rate : float;
}

(* Knobs calibrated against the paper's absolute rates (random 4K I/O is
   three orders of magnitude slower than sequential streaming) and its
   qualitative analysis of where encryption sits relative to the critical
   path. *)
let patterns =
  [ { pat_name = "rand-read";
      sequential = false;
      is_read = true;
      requests = 48;
      request_sectors = 8;
      seek_cycles = 8_000_000;
      decode_duplication = 4.0;
      write_overlap = 0.0;
      unit_name = "KB/s";
      unit_bytes_per_rate = 1024.0 };
    { pat_name = "seq-read";
      sequential = true;
      is_read = true;
      requests = 96;
      request_sectors = 8;
      seek_cycles = 12_000;
      decode_duplication = 1.85;
      write_overlap = 0.0;
      unit_name = "MB/s";
      unit_bytes_per_rate = 1024.0 *. 1024.0 };
    { pat_name = "rand-write";
      sequential = false;
      is_read = false;
      requests = 48;
      request_sectors = 8;
      seek_cycles = 560_000;
      decode_duplication = 1.0;
      write_overlap = 0.87;
      unit_name = "KB/s";
      unit_bytes_per_rate = 1024.0 };
    { pat_name = "seq-write";
      sequential = true;
      is_read = false;
      requests = 96;
      request_sectors = 8;
      seek_cycles = 12_000;
      decode_duplication = 1.0;
      write_overlap = 0.81;
      unit_name = "MB/s";
      unit_bytes_per_rate = 1024.0 *. 1024.0 } ]

type row = {
  pattern : pattern;
  xen_rate : float;
  fidelius_rate : float;
  slowdown_pct : float;
}

let disk_sectors = 2048

type stack = {
  machine : Hw.Machine.t;
  hv : Xen.Hypervisor.t;
  frontend : Xen.Blkif.frontend;
  encode_label : string option;  (** ledger category of the codec, if any *)
}

let boot_stack ~protected_ seed =
  let machine = Hw.Machine.create ~seed () in
  let hv = Xen.Hypervisor.boot machine in
  let disk = Xen.Vdisk.create ~nr_sectors:disk_sectors in
  if not protected_ then begin
    let dom = Xen.Hypervisor.create_domain hv ~name:"fio" ~memory_pages:16 in
    match Xen.Blkif.connect hv dom ~disk ~buffer_gvfn:100 with
    | Error e -> failwith ("fio: connect: " ^ e)
    | Ok (fe, _) -> { machine; hv; frontend = fe; encode_label = None }
  end
  else begin
    let fid = Core.Fidelius.install hv in
    let rng = Rng.create (Int64.add seed 5L) in
    let kernel = [ Bytes.make Hw.Addr.page_size '\000' ] in
    let prepared =
      Sev.Transport.Owner.prepare ~rng ~platform_public:(Core.Fidelius.platform_key fid)
        ~policy:Sev.Firmware.policy_nodbg ~kernel_pages:kernel
    in
    match Core.Fidelius.boot_protected_vm fid ~name:"fio" ~memory_pages:16 ~prepared with
    | Error e -> failwith ("fio: protected boot: " ^ e)
    | Ok dom -> (
        let kblk = Core.Fidelius.kblk_of_guest fid dom in
        match Xen.Blkif.connect hv dom ~disk ~buffer_gvfn:100 with
        | Error e -> failwith ("fio: connect: " ^ e)
        | Ok (fe, _) ->
            Xen.Blkif.set_codec fe (Core.Fidelius.aesni_codec fid ~kblk);
            { machine; hv; frontend = fe; encode_label = Some "io-encode-aesni" })
  end

let c_device_seek = Hw.Cost.intern "device-seek"

let run_on stack pat =
  let ledger = stack.machine.Hw.Machine.ledger in
  let rng = Rng.create 4242L in
  let bytes_per_request = pat.request_sectors * Xen.Vdisk.sector_size in
  let payload = Bytes.make bytes_per_request 'd' in
  let t0 = Hw.Cost.total ledger in
  let enc0 =
    match stack.encode_label with Some l -> Hw.Cost.category ledger l | None -> 0
  in
  for i = 0 to pat.requests - 1 do
    Hw.Cost.charge_id ledger c_device_seek pat.seek_cycles;
    let sector =
      if pat.sequential then i * pat.request_sectors
      else Rng.int rng (disk_sectors - pat.request_sectors)
    in
    let result =
      if pat.is_read then
        Result.map (fun (_ : bytes) -> ())
          (Xen.Blkif.read_sectors stack.frontend ~sector ~count:pat.request_sectors)
      else Xen.Blkif.write_sectors stack.frontend ~sector payload
    in
    match result with Ok () -> () | Error e -> failwith ("fio: " ^ pat.pat_name ^ ": " ^ e)
  done;
  let raw = Hw.Cost.total ledger - t0 in
  let enc_delta =
    match stack.encode_label with Some l -> Hw.Cost.category ledger l - enc0 | None -> 0
  in
  (* Critical-path adjustment: read-side decryption is duplicated by
     sector-granular processing; write-side encryption is partially hidden
     by batching. *)
  let adjust =
    if pat.is_read then (pat.decode_duplication -. 1.0) *. float_of_int enc_delta
    else -.pat.write_overlap *. float_of_int enc_delta
  in
  let effective = float_of_int raw +. adjust in
  let total_bytes = float_of_int (pat.requests * bytes_per_request) in
  (* Throughput at the paper's 3.4 GHz clock. *)
  let seconds = effective /. 3.4e9 in
  total_bytes /. seconds /. pat.unit_bytes_per_rate

let run_pattern pat =
  let xen = boot_stack ~protected_:false 11L in
  let fid = boot_stack ~protected_:true 12L in
  let xen_rate = run_on xen pat in
  let fidelius_rate = run_on fid pat in
  { pattern = pat;
    xen_rate;
    fidelius_rate;
    slowdown_pct = 100.0 *. (xen_rate -. fidelius_rate) /. xen_rate }

let table () = List.map run_pattern patterns
