module Hw = Fidelius_hw
module Trace = Fidelius_obs.Trace
module Json = Fidelius_obs.Json
module Pool = Fidelius_fleet.Pool
module Merge = Fidelius_fleet.Merge

type vm_row = {
  vm : int;
  profile : string;
  cycles : int;
  per_access : float;
  per_exit : float;
  events : int;
}

type t = {
  rows : vm_row list;
  shards : (string * Trace.entry list) list;
}

(* The fleet cycles through the full profile catalogue so VM k's workload
   is a pure function of k — no RNG, no wall clock. *)
let profiles = Array.of_list (Spec2006.all @ Parsec.all)

let csv_header = "vm,profile,cycles,per_access_cycles,per_exit_cycles,trace_events"

let csv_row r =
  Printf.sprintf "%d,%s,%d,%.2f,%.2f,%d" r.vm r.profile r.cycles r.per_access r.per_exit
    r.events

let label_of vm = Printf.sprintf "vm%d:%s" vm profiles.(vm mod Array.length profiles).Profile.name

(* --- per-worker arenas -------------------------------------------------- *)

(* Everything a VM job needs that is expensive to allocate and safe to
   reuse: the DRAM backing (32 MiB of pages, reset to zero per job), the
   trace ring (a 64k-slot array, counters reset per job) and the JSON
   serialization buffer. One arena per worker domain; jobs on a worker
   run sequentially, so ownership is exclusive without a lock. VM j's
   results stay a pure function of j because every reused piece is reset
   to its fresh state before the job reads it — pinned by the arena-reuse
   qcheck property in test/test_fleet.ml. *)
type arena = {
  mem : Hw.Physmem.t;
  ring : Trace.ring;
  jbuf : Buffer.t;
}

let arena () =
  { mem = Hw.Physmem.create ~nr_frames:Hw.Machine.default_nr_frames;
    ring = Trace.ring ();
    jbuf = Buffer.create 65536 }

type gc_stats = {
  worker : int;
  jobs : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

(* --- one VM ------------------------------------------------------------- *)

let run_vm_core ~mem vm =
  let p = profiles.(vm mod Array.length profiles) in
  (* Engine.boot_stack installs the ledger clock into this recording as
     soon as the VM's machine exists, so every event is stamped in the
     VM's own simulated cycles. *)
  let result = Engine.run ?mem p Engine.Fidelius_enc in
  (p, result)

let row_of vm p (result : Engine.result) ~events =
  { vm;
    profile = p.Profile.name;
    cycles = result.Engine.cycles;
    per_access = result.Engine.per_access;
    per_exit = result.Engine.per_exit;
    events }

let run_vm vm =
  let (p, result), entries = Trace.capture (fun () -> run_vm_core ~mem:None vm) in
  (row_of vm p result ~events:(List.length entries), (label_of vm, entries))

let run_vm_arena a vm =
  let p, result = Trace.record_into a.ring (fun () -> run_vm_core ~mem:(Some a.mem) vm) in
  row_of vm p result ~events:(Trace.ring_length a.ring)

let run ?domains ?(vms = 16) () =
  if vms < 0 then invalid_arg "Fleetbench.run: vms must be >= 0";
  let results = Pool.map ?domains ~njobs:vms run_vm in
  { rows = List.map fst results; shards = List.map snd results }

let csv t = Merge.csv ~header:csv_header (List.map (fun r -> [ csv_row r ]) t.rows)

let chrome t = Merge.chrome_of_shards t.shards

(* --- streaming shard output --------------------------------------------- *)

type summary = {
  vm_rows : vm_row list;
  gc : gc_stats list;
}

(* Per-worker streaming state: the arena plus the spill channels of the
   chunk currently being written. A worker runs its chunks in order and
   the jobs of a chunk in order, so at most one (csv, trace) channel pair
   is open per worker at a time; [finish] closes whatever is left open
   even when a job raised. *)
type stream_state = {
  a : arena;
  mutable csv_spill : (int * out_channel) option;
  mutable trc_spill : (int * out_channel) option;
  gc0 : Gc.stat;
  mutable njobs_run : int;
}

let spill_path ~dir ~kind chunk = Filename.concat dir (Printf.sprintf "%s-%06d" kind chunk)

(* Advance a worker's open spill channel to [chunk]: workers visit their
   chunks in increasing order, so "a different chunk" always means the
   previous spill is complete and can be closed. Returns the slot value
   to store back plus the channel to write. *)
let spill_chan ~dir ~kind current chunk =
  match current with
  | Some (c, oc) when c = chunk -> (current, oc)
  | prev ->
      (match prev with Some (_, oc) -> close_out oc | None -> ());
      let oc = open_out_bin (spill_path ~dir ~kind chunk) in
      (Some (chunk, oc), oc)

let mkdir_p dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* Serialize one VM's chrome fragment from the ring, in-place: the
   process_name metadata object, then every entry as an instant event
   with this VM's pid. Fragments after the global first carry a leading
   comma so the final merge is pure byte concatenation. *)
let chrome_fragment buf ~vm ring =
  Buffer.clear buf;
  if vm > 0 then Buffer.add_char buf ',';
  Json.to_buffer buf (Merge.process_meta ~pid:(vm + 1) (label_of vm));
  Trace.ring_iter ring (fun e ->
      Buffer.add_char buf ',';
      Json.to_buffer buf (Trace.chrome_event ~pid:(vm + 1) e))

let run_stream ?domains ?(vms = 16) ~csv:csv_out ~trace:trace_out () =
  if vms < 0 then invalid_arg "Fleetbench.run_stream: vms must be >= 0";
  let ndomains = match domains with None -> Pool.recommended_domains () | Some d -> d in
  let spill_dir = trace_out ^ ".spill" in
  let finalize chunk_list results gc_list =
    (* Canonical chunk order = canonical job order: chunk c covers jobs
       [start, start+len), chunks are contiguous and in order, and each
       worker wrote its chunks' jobs in order. *)
    let nchunks = List.length chunk_list in
    let paths kind = List.init nchunks (fun c -> spill_path ~dir:spill_dir ~kind c) in
    Merge.concat_spills ~out:csv_out ~header:(csv_header ^ "\n") (paths "rows");
    let shards = List.map (fun (r : vm_row) -> (label_of r.vm, r.events)) results in
    Merge.concat_spills ~out:trace_out ~header:Merge.chrome_header
      ~footer:(Merge.chrome_footer ~shards ^ "\n")
      (paths "trace");
    List.iter (fun kind -> List.iter Sys.remove (paths kind)) [ "rows"; "trace" ];
    (try Sys.rmdir spill_dir with Sys_error _ -> ());
    { vm_rows = results; gc = gc_list }
  in
  if vms = 0 then begin
    ignore (Pool.chunks ~njobs:vms ~ndomains) (* validate ndomains like Pool.map would *);
    finalize [] [] []
  end
  else begin
    let chunk_list = Pool.chunks ~njobs:vms ~ndomains in
    let chunk_of = Array.make vms 0 in
    List.iteri
      (fun c (start, len) ->
        for j = start to start + len - 1 do
          chunk_of.(j) <- c
        done)
      chunk_list;
    mkdir_p spill_dir;
    let nworkers = Pool.workers ~njobs:vms ~ndomains in
    (* One slot per worker, written only by that worker; Pool's joins
       publish the writes before we read them back — the same disjoint-
       write pattern Pool uses for job slots. *)
    let gc_slots = Array.make nworkers None in
    let rows =
      Pool.map_with ?domains ~njobs:vms
        ~init:(fun _w ->
          let a = arena () in
          { a; csv_spill = None; trc_spill = None; gc0 = Gc.quick_stat (); njobs_run = 0 })
        ~finish:(fun w st ->
          (match st.csv_spill with Some (_, oc) -> close_out oc | None -> ());
          (match st.trc_spill with Some (_, oc) -> close_out oc | None -> ());
          let g1 = Gc.quick_stat () in
          let g0 = st.gc0 in
          gc_slots.(w) <-
            Some
              { worker = w;
                jobs = st.njobs_run;
                minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
                promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
                major_words = g1.Gc.major_words -. g0.Gc.major_words;
                minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
                major_collections = g1.Gc.major_collections - g0.Gc.major_collections })
        (fun st vm ->
          let row = run_vm_arena st.a vm in
          let c = chunk_of.(vm) in
          let csv_slot, csv_oc = spill_chan ~dir:spill_dir ~kind:"rows" st.csv_spill c in
          st.csv_spill <- csv_slot;
          output_string csv_oc (csv_row row);
          output_char csv_oc '\n';
          let trc_slot, trc_oc = spill_chan ~dir:spill_dir ~kind:"trace" st.trc_spill c in
          st.trc_spill <- trc_slot;
          chrome_fragment st.a.jbuf ~vm st.a.ring;
          Buffer.output_buffer trc_oc st.a.jbuf;
          Buffer.clear st.a.jbuf;
          Trace.ring_reset st.a.ring;
          st.njobs_run <- st.njobs_run + 1;
          row)
    in
    let gc_list = Array.to_list gc_slots |> List.filter_map Fun.id in
    finalize chunk_list rows gc_list
  end
