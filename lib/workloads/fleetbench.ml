module Trace = Fidelius_obs.Trace
module Pool = Fidelius_fleet.Pool
module Merge = Fidelius_fleet.Merge

type vm_row = {
  vm : int;
  profile : string;
  cycles : int;
  per_access : float;
  per_exit : float;
  events : int;
}

type t = {
  rows : vm_row list;
  shards : (string * Trace.entry list) list;
}

(* The fleet cycles through the full profile catalogue so VM k's workload
   is a pure function of k — no RNG, no wall clock. *)
let profiles = Array.of_list (Spec2006.all @ Parsec.all)

let run_vm vm =
  let p = profiles.(vm mod Array.length profiles) in
  (* Engine.boot_stack installs the ledger clock into this capture as
     soon as the VM's machine exists, so every event is stamped in the
     VM's own simulated cycles. *)
  let result, entries = Trace.capture (fun () -> Engine.run p Engine.Fidelius_enc) in
  ( { vm;
      profile = p.Profile.name;
      cycles = result.Engine.cycles;
      per_access = result.Engine.per_access;
      per_exit = result.Engine.per_exit;
      events = List.length entries },
    (Printf.sprintf "vm%d:%s" vm p.Profile.name, entries) )

let run ?domains ?(vms = 16) () =
  if vms < 0 then invalid_arg "Fleetbench.run: vms must be >= 0";
  let results = Pool.map ?domains ~njobs:vms run_vm in
  { rows = List.map fst results; shards = List.map snd results }

let csv t =
  Merge.csv ~header:"vm,profile,cycles,per_access_cycles,per_exit_cycles,trace_events"
    (List.map
       (fun r ->
         [ Printf.sprintf "%d,%s,%d,%.2f,%.2f,%d" r.vm r.profile r.cycles r.per_access
             r.per_exit r.events ])
       t.rows)

let chrome t = Merge.chrome_of_shards t.shards
