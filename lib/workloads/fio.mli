(** fio reproduction (paper Table 3).

    Four access patterns are replayed through the *real* PV block path —
    front-end, grant-mapped shared buffer, back-end, virtual disk — once on
    stock Xen with the identity codec and once under Fidelius with the
    AES-NI codec. Device-side characteristics that the simulator's block
    device does not model intrinsically are explicit per-pattern knobs,
    charged identically on both stacks:

    - [seek_cycles]: per-request device latency (dominates random 4K I/O,
      which is why the paper's random rows show near-zero slowdown);
    - [decode_duplication]: the paper's observation that read-side
      decryption is duplicated by sector-granularity processing and sits on
      the critical path (seq-read is the worst row, 22.91%);
    - [write_overlap]: the fraction of write-side encryption cost hidden by
      batching off the critical path (why seq-write shows only 3.61%). *)

type pattern = {
  pat_name : string;
  sequential : bool;
  is_read : bool;
  requests : int;
  request_sectors : int;
  seek_cycles : int;
  decode_duplication : float;
  write_overlap : float;
  unit_name : string;
  unit_bytes_per_rate : float;  (** KB/s or MB/s conversion *)
}

val patterns : pattern list
(** rand-read, seq-read, rand-write, seq-write — Table 3's rows. *)

type row = {
  pattern : pattern;
  xen_rate : float;      (** throughput on stock Xen, in [unit_name] *)
  fidelius_rate : float; (** throughput under Fidelius + AES-NI codec *)
  slowdown_pct : float;
}

val run_pattern : pattern -> row
val table : unit -> row list
