(** SPECCPU 2006 C-benchmark profiles (the eleven programs of the paper's
    Figure 5), calibrated so the memory-stall fractions reproduce the
    published Fidelius-enc shape: mcf and omnetpp memory-bound and hard-hit
    (paper: 17.3% / 16.3%), bzip2/hmmer/h264ref compute-bound and unharmed,
    suite average around 5.4%. *)

val all : Profile.t list
val find : string -> Profile.t option
