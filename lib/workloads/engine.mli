(** Workload execution engine.

    A run boots a fresh stack in the requested configuration, samples real
    guest memory traffic and real hypercall round trips on it (through the
    full MMU/encryption/gate machinery), and extrapolates the sampled
    per-operation costs to the profile's operation counts. Overheads are
    therefore produced by the same mechanisms as on hardware — extra
    engine latency per encrypted line, shadowing and gate cycles per exit —
    not by hard-coded factors.

    The three configurations mirror the paper's Section 7.1:
    - [Xen_baseline]: stock hypervisor, unprotected guest;
    - [Fidelius]: all Fidelius mechanisms active, memory encryption off
      (the paper had no SEV-capable board, so SME is toggled separately);
    - [Fidelius_enc]: Fidelius plus the [enable_mem_enc] hypercall, which
      sets the C-bit in the guest's nested mappings so the SME engine
      encrypts its memory traffic. *)

type config =
  | Xen_baseline
  | Fidelius
  | Fidelius_enc

val config_to_string : config -> string

val seed_of : Profile.t -> config -> int64
(** Deterministic per-(profile, config) platform seed, derived with a
    stable FNV-1a hash of ["name/config"] so the sampled results — and the
    golden CSVs pinned in the tests — survive OCaml upgrades (unlike
    [Hashtbl.hash]). Always positive. *)

type result = {
  profile : Profile.t;
  config : config;
  cycles : int;                     (** extrapolated total for the run *)
  per_access : float;               (** sampled cycles per 64-byte access *)
  per_exit : float;                 (** sampled cycles per hypervisor round trip *)
  breakdown : (string * int) list;  (** ledger categories sampled during the run *)
  attribution : (string * int) list;
      (** per-scope cycle attribution ("dom1", "(root)", …); sums to the
          run ledger's total *)
}

val run : ?mem:Fidelius_hw.Physmem.t -> Profile.t -> config -> result
(** Boot and measure one stack. [mem] recycles a DRAM backing for the
    machine ([Hw.Machine.create ?mem] — reset to all-zeroes first), the
    fleet arena fast path; the result is a pure function of
    [(profile, config)] whether or not a backing is reused, which the
    arena-reuse qcheck property in [test/test_fleet.ml] pins. The caller
    must own the backing exclusively for the duration of the run. Raises
    [Invalid_argument] if the backing's frame count differs from
    [Hw.Machine.default_nr_frames], and [Failure] if the protected boot
    itself fails. *)

val overhead_pct : base:result -> result -> float
(** [(cycles - base.cycles) / base.cycles * 100]. *)

val run_suite :
  ?domains:int -> Profile.t list -> (Profile.t * float * float) list
(** For each profile: (profile, Fidelius overhead %, Fidelius-enc overhead %)
    against the Xen baseline. Each profile's three runs are one
    independent job on [Fidelius_fleet.Pool] — [domains] (default
    [Fidelius_fleet.Pool.recommended_domains ()]) shards profiles across
    that many OCaml domains; every run builds a fresh machine from
    {!seed_of}, so the returned list is identical for any domain
    count. *)
