module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Rng = Fidelius_crypto.Rng
module Pool = Fidelius_fleet.Pool
module Merge = Fidelius_fleet.Merge

type row = {
  vm : int;
  budget_us : float;
  rounds : int;
  pages_sent : int;
  residual_pages : int;
  downtime_us : float;
  key_delivered : bool;
}

type t = { rows : row list }

(* Same seeding discipline as Engine: a stable hash of the job identity, so
   VM k under budget b gets the same machines at any domain count. *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let seed_of identity = Int64.add (Int64.logand (fnv1a64 identity) 0x3fffffffffffffffL) 17L

let memory_pages = 16

let page c = Bytes.make Hw.Addr.page_size c

(* One job = one complete migration: both simulated hosts, the guest, the
   owner and the dirty-page state all belong to this job alone (SCALING.md
   state-ownership rule), so the pool can shard jobs freely. *)
let run_vm ~budget_us vm =
  let seed = seed_of (Printf.sprintf "migratebench/vm%d/%.3f" vm budget_us) in
  let m1 = Hw.Machine.create ~seed () in
  let hv1 = Xen.Hypervisor.boot m1 in
  let fid1 = Core.Fidelius.install hv1 in
  let m2 = Hw.Machine.create ~seed:(Int64.add seed 7L) () in
  let hv2 = Xen.Hypervisor.boot m2 in
  let fid2 = Core.Fidelius.install hv2 in
  let rng = Rng.create (Int64.add seed 77L) in
  let prepared =
    Sev.Transport.Owner.prepare ~rng
      ~platform_public:(Core.Fidelius.platform_key fid1)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ page 'K'; page 'L' ]
  in
  let dom =
    match
      Core.Fidelius.boot_protected_vm fid1
        ~name:(Printf.sprintf "mig%d" vm)
        ~memory_pages ~prepared
    with
    | Ok d -> d
    | Error e -> failwith ("migratebench boot: " ^ e)
  in
  (* The guest's working set halves every round: round r dirties
     max(1, (N/2) >> r) pages. Convergence is therefore guaranteed and the
     pages-sent vs downtime-budget trade-off is strictly monotone — a
     larger budget stops the pre-copy strictly earlier. *)
  let w0 = memory_pages / 2 in
  let mutate round =
    let w = min (max 1 (w0 lsr round)) (memory_pages - 1) in
    for p = 1 to w do
      Xen.Hypervisor.in_guest hv1 dom (fun () ->
          Xen.Domain.write m1 dom
            ~addr:(Hw.Addr.addr_of p 0)
            (Bytes.of_string (Printf.sprintf "round %d touch" round)))
    done
  in
  let owner = Core.Migrate.Owner.create (Rng.create (Int64.add seed 99L)) in
  let config = { Core.Migrate.downtime_budget_us = budget_us; max_rounds = 8 } in
  match Core.Migrate.migrate_live ~config ~owner ~mutate ~src:fid1 ~dst:fid2 dom with
  | Error e -> failwith ("migratebench: " ^ Core.Migrate.error_to_string e)
  | Ok (dom', rep) ->
      let key_delivered =
        Core.Migrate.Owner.released owner
        && Bytes.equal
             (Core.Fidelius.kblk_of_guest fid2 dom')
             (Core.Migrate.Owner.disk_key owner)
      in
      { vm;
        budget_us;
        rounds = rep.Core.Migrate.rounds;
        pages_sent = rep.Core.Migrate.pages_sent;
        residual_pages = rep.Core.Migrate.residual_pages;
        downtime_us = rep.Core.Migrate.downtime_us;
        key_delivered }

let run ?domains ?(vms = 8) ~budget_us () =
  if vms < 0 then invalid_arg "Migratebench.run: vms must be >= 0";
  { rows = Pool.map ?domains ~njobs:vms (run_vm ~budget_us) }

let csv t =
  Merge.csv
    ~header:"vm,budget_us,rounds,pages_sent,residual_pages,downtime_us,key_delivered"
    (List.map
       (fun r ->
         [ Printf.sprintf "%d,%.1f,%d,%d,%d,%.1f,%b" r.vm r.budget_us r.rounds r.pages_sent
             r.residual_pages r.downtime_us r.key_delivered ])
       t.rows)

let total_pages t = List.fold_left (fun acc r -> acc + r.pages_sent) 0 t.rows
let all_keys_delivered t = List.for_all (fun r -> r.key_delivered) t.rows
