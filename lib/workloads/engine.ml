module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Rng = Fidelius_crypto.Rng

type config =
  | Xen_baseline
  | Fidelius
  | Fidelius_enc

let config_to_string = function
  | Xen_baseline -> "xen"
  | Fidelius -> "fidelius"
  | Fidelius_enc -> "fidelius-enc"

type result = {
  profile : Profile.t;
  config : config;
  cycles : int;
  per_access : float;
  per_exit : float;
  breakdown : (string * int) list;
  attribution : (string * int) list;
}

(* FNV-1a, 64-bit. [Hashtbl.hash] is not stable across OCaml releases;
   the sampled figures (and the golden CSVs pinned in the test suite)
   must be, so the run seed is derived from a fixed hash instead. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let seed_of profile config =
  let h = fnv1a64 (profile.Profile.name ^ "/" ^ config_to_string config) in
  Int64.add (Int64.logand h 0x3fffffffffffffffL) 17L

let access_bytes = 64
let sample_accesses = 512
let sample_exits = 32

let boot_stack ?mem profile config seed =
  let machine = Hw.Machine.create ?mem ~seed () in
  (* If this domain is recording a trace (fleet shards capture one per
     VM), timestamp it in this machine's simulated cycles — never wall
     time — so the trace bytes depend only on the seed. *)
  if Fidelius_obs.Trace.enabled () then
    Fidelius_obs.Trace.set_clock (fun () -> Hw.Cost.total machine.Hw.Machine.ledger);
  let hv = Xen.Hypervisor.boot machine in
  let memory_pages = profile.Profile.working_set_pages + 8 in
  match config with
  | Xen_baseline ->
      let dom = Xen.Hypervisor.create_domain hv ~name:profile.Profile.name ~memory_pages in
      (machine, hv, dom)
  | Fidelius | Fidelius_enc -> (
      let fid = Core.Fidelius.install hv in
      let rng = Rng.create (Int64.add seed 3L) in
      let kernel = [ Bytes.make Hw.Addr.page_size '\000'; Bytes.make Hw.Addr.page_size '\000' ] in
      let prepared =
        Sev.Transport.Owner.prepare ~rng ~platform_public:(Core.Fidelius.platform_key fid)
          ~policy:Sev.Firmware.policy_nodbg ~kernel_pages:kernel
      in
      match
        Core.Fidelius.boot_protected_vm fid ~name:profile.Profile.name ~memory_pages ~prepared
      with
      | Error e -> failwith ("engine: protected boot failed: " ^ e)
      | Ok dom ->
          (* The paper's testbed had no SEV-capable board: guests run
             without the C-bit, and Fidelius-enc turns on SME through the
             evaluation hypercall instead. *)
          for gvfn = 0 to memory_pages - 1 do
            Xen.Domain.guest_map dom ~gvfn ~gfn:gvfn ~writable:true ~executable:true
              ~c_bit:false
          done;
          (match config with
          | Fidelius_enc -> (
              match Xen.Hypervisor.hypercall hv dom Xen.Hypercall.Enable_mem_enc with
              | Ok _ -> ()
              | Error e -> failwith ("engine: enable_mem_enc: " ^ e))
          | Fidelius | Xen_baseline -> ());
          (machine, hv, dom))

let run ?mem profile config =
  let seed = seed_of profile config in
  let machine, hv, dom = boot_stack ?mem profile config seed in
  let ledger = machine.Hw.Machine.ledger in
  let costs = machine.Hw.Machine.costs in
  let rng = Rng.create (Int64.add seed 101L) in
  let buf = Bytes.make access_bytes 'x' in
  (* Sample DRAM-reaching accesses: the stall fraction is defined over
     misses, so evict the target page's lines before each access. *)
  let t0 = Hw.Cost.total ledger in
  for _ = 1 to sample_accesses do
    let gvfn = 2 + Rng.int rng profile.Profile.working_set_pages in
    (match Hw.Pagetable.lookup dom.Xen.Domain.npt gvfn with
    | Some npte -> Hw.Cache.invalidate_page machine.Hw.Machine.cache npte.Hw.Pagetable.frame
    | None -> ());
    let addr = Hw.Addr.addr_of gvfn (Rng.int rng (Hw.Addr.page_size - access_bytes)) in
    Xen.Hypervisor.in_guest hv dom (fun () ->
        if Rng.float rng 1.0 < profile.Profile.write_fraction then
          Xen.Domain.write machine dom ~addr buf
        else ignore (Xen.Domain.read machine dom ~addr ~len:access_bytes))
  done;
  let per_access = float_of_int (Hw.Cost.total ledger - t0) /. float_of_int sample_accesses in
  let t1 = Hw.Cost.total ledger in
  for _ = 1 to sample_exits do
    match Xen.Hypervisor.hypercall hv dom Xen.Hypercall.Void with
    | Ok _ -> ()
    | Error e -> failwith ("engine: void hypercall: " ^ e)
  done;
  let per_exit = float_of_int (Hw.Cost.total ledger - t1) /. float_of_int sample_exits in
  (* Extrapolate the sampled costs to the profile's operation counts. The
     operation counts are config-independent (same program): derived from
     the profile against the reference DRAM cost. *)
  let total_target = float_of_int (profile.Profile.total_mcycles * 1_000_000) in
  let ref_access = float_of_int (access_bytes / Hw.Addr.block_size * costs.Hw.Cost.dram_access) in
  let n_mem_ops = profile.Profile.mem_stall_fraction *. total_target /. ref_access in
  let compute_cycles = total_target -. (n_mem_ops *. ref_access) in
  let cycles =
    compute_cycles
    +. (n_mem_ops *. per_access)
    +. (float_of_int profile.Profile.vmexits *. per_exit)
  in
  { profile;
    config;
    cycles = int_of_float cycles;
    per_access;
    per_exit;
    breakdown = Hw.Cost.categories ledger;
    attribution = Hw.Cost.scopes ledger }

let overhead_pct ~base result =
  100.0 *. (float_of_int result.cycles -. float_of_int base.cycles)
  /. float_of_int base.cycles

let run_suite ?domains profiles =
  Fidelius_fleet.Pool.map_list ?domains
    (fun p ->
      let base = run p Xen_baseline in
      let fid = run p Fidelius in
      let enc = run p Fidelius_enc in
      (p, overhead_pct ~base fid, overhead_pct ~base enc))
    profiles
