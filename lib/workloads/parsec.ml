let mk name ~stall ~ws ~vmexits ~wf =
  { Profile.name;
    suite = "PARSEC";
    total_mcycles = 50;
    mem_stall_fraction = stall;
    working_set_pages = ws;
    vmexits;
    write_fraction = wf }

let all =
  [ mk "blackscholes" ~stall:0.003 ~ws:8 ~vmexits:115 ~wf:0.30;
    mk "bodytrack" ~stall:0.014 ~ws:16 ~vmexits:193 ~wf:0.34;
    (* Fitted so Fidelius-enc lands on the paper's measured 14.27% under the
       block-granular DRAM charge model (see Spec2006 for the same refit). *)
    mk "canneal" ~stall:0.510 ~ws:64 ~vmexits:125 ~wf:0.28;
    mk "dedup" ~stall:0.036 ~ws:40 ~vmexits:386 ~wf:0.48;
    mk "facesim" ~stall:0.028 ~ws:32 ~vmexits:164 ~wf:0.36;
    mk "ferret" ~stall:0.021 ~ws:28 ~vmexits:228 ~wf:0.32;
    mk "fluidanimate" ~stall:0.018 ~ws:24 ~vmexits:124 ~wf:0.38;
    mk "freqmine" ~stall:0.015 ~ws:24 ~vmexits:117 ~wf:0.30;
    mk "raytrace" ~stall:0.009 ~ws:20 ~vmexits:164 ~wf:0.22;
    mk "streamcluster" ~stall:0.066 ~ws:48 ~vmexits:113 ~wf:0.26;
    mk "swaptions" ~stall:0.003 ~ws:8 ~vmexits:81 ~wf:0.30;
    mk "vips" ~stall:0.015 ~ws:20 ~vmexits:281 ~wf:0.40;
    mk "x264" ~stall:0.005 ~ws:16 ~vmexits:199 ~wf:0.44 ]

let find name = List.find_opt (fun p -> String.equal p.Profile.name name) all
