let mk name ~stall ~ws ~vmexits ~wf =
  { Profile.name;
    suite = "SPECCPU2006";
    total_mcycles = 50;
    mem_stall_fraction = stall;
    working_set_pages = ws;
    vmexits;
    write_fraction = wf }

let all =
  [ mk "perlbench" ~stall:0.055 ~ws:24 ~vmexits:473 ~wf:0.35;
    mk "bzip2" ~stall:0.004 ~ws:16 ~vmexits:196 ~wf:0.40;
    mk "gcc" ~stall:0.095 ~ws:40 ~vmexits:767 ~wf:0.38;
    (* mcf/omnetpp stall fractions are fitted so Fidelius-enc lands on the
       paper's measured 17.3% / 16.3% under the block-granular DRAM charge
       model (unaligned plain accesses pay for every block they touch). *)
    mk "mcf" ~stall:0.625 ~ws:64 ~vmexits:205 ~wf:0.25;
    mk "omnetpp" ~stall:0.565 ~ws:56 ~vmexits:440 ~wf:0.33;
    mk "gobmk" ~stall:0.029 ~ws:20 ~vmexits:337 ~wf:0.30;
    mk "sjeng" ~stall:0.014 ~ws:12 ~vmexits:262 ~wf:0.28;
    mk "libquantum" ~stall:0.125 ~ws:32 ~vmexits:500 ~wf:0.45;
    mk "h264ref" ~stall:0.003 ~ws:16 ~vmexits:237 ~wf:0.42;
    mk "astar" ~stall:0.100 ~ws:36 ~vmexits:544 ~wf:0.30;
    mk "hmmer" ~stall:0.002 ~ws:8 ~vmexits:162 ~wf:0.36 ]

let find name = List.find_opt (fun p -> String.equal p.Profile.name name) all
