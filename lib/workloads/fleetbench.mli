(** The fleet scaling benchmark: N independent guest-VM simulations
    sharded across a domain pool.

    This is the shared core behind [bench fleet] and the fleet
    determinism tests: both call {!run} (or its bounded-memory sibling
    {!run_stream}) so the benchmark and the test exercise exactly the
    same code path. Each VM job boots a fresh protected stack
    ([Engine.run] under [Fidelius_enc]) inside its own trace recording,
    so every VM produces a result row plus its own trace shard; {!csv}
    and {!chrome} merge them in canonical VM order.

    {2 Determinism contract}

    Everything here except wall-clock timing is a pure function of
    [(vms)]: VM [k] always runs profile [profiles.(k mod |profiles|)]
    with {!Engine.seed_of}-derived seeds, on a fresh (or freshly reset —
    see below) machine, in a fresh (or freshly reset) recording. {!csv}
    and {!chrome} bytes are therefore identical for any [domains] value —
    the property the fleet tests pin. Wall-clock throughput (VMs/sec) is
    measured by the {e caller} around {!run}/{!run_stream}; it is the
    only nondeterministic quantity and never appears in the merged
    artifacts.

    {2 Arenas and streaming}

    {!run} is the in-memory path: every VM allocates its own machine and
    capture, and every VM's trace entries stay live until the caller
    drops [t] — fine for tests and small fleets, quadratic pain at 1,000
    VMs. {!run_stream} is the fleet-scale path: worker domains own
    reusable {!arena}s (DRAM backing, trace ring, serialization buffer)
    and each VM's rows/trace bytes are spilled to per-chunk files as the
    job completes, then concatenated in canonical order — the artifacts
    are byte-identical to {!run}'s at every domain count (pinned in
    [test/test_fleet.ml]) while peak memory stays bounded by
    [workers × arena], not [vms × trace]. *)

type vm_row = {
  vm : int;                        (** canonical job index, [0 .. vms-1] *)
  profile : string;                (** workload profile name *)
  cycles : int;                    (** extrapolated total simulated cycles *)
  per_access : float;              (** sampled cycles per 64-byte access *)
  per_exit : float;                (** sampled cycles per hypervisor round trip *)
  events : int;                    (** trace entries the VM's recording recorded *)
}

type t = {
  rows : vm_row list;              (** one per VM, canonical order *)
  shards : (string * Fidelius_obs.Trace.entry list) list;
      (** per-VM trace shards, canonical order — feed to {!chrome} *)
}

type arena = {
  mem : Fidelius_hw.Physmem.t;
      (** reusable DRAM backing ([Machine.default_nr_frames] pages),
          zeroed per job by [Machine.create ?mem] *)
  ring : Fidelius_obs.Trace.ring;
      (** reusable trace ring, reset per job by [Trace.record_into] *)
  jbuf : Buffer.t;  (** serialization scratch, cleared per fragment *)
}
(** Everything a VM job reuses across jobs on one worker. Ownership rule
    (SCALING.md): an arena belongs to exactly one worker domain; jobs on
    that worker run sequentially, so no lock is needed — sharing an
    arena across workers is a data race. Reuse is invisible in results:
    each reused piece is reset to its fresh state before the next job
    reads it. *)

val arena : unit -> arena
(** A fresh arena (~32 MiB of page backing + a 64k-slot ring). Allocate
    once per worker — per job would reintroduce exactly the churn the
    arena exists to kill. *)

type gc_stats = {
  worker : int;           (** worker-domain index, [0 .. Pool.workers - 1] *)
  jobs : int;             (** VM jobs this worker completed *)
  minor_words : float;    (** words allocated on this worker's minor heap *)
  promoted_words : float; (** of those, words that survived into the major heap *)
  major_words : float;    (** words allocated directly on the major heap *)
  minor_collections : int;  (** minor GCs (each a stop-the-world rendezvous
                                across {e all} running domains on OCaml 5) *)
  major_collections : int;  (** major cycles completed *)
}
(** One worker domain's GC/allocation delta across its whole job run,
    measured with [Gc.quick_stat] from [Pool.map_with]'s [init] to its
    [finish] — both on the worker domain, so [minor_words] and
    [minor_collections] are that domain's own counters. [major_words]
    and [major_collections] read the shared major heap and therefore
    include neighbours' contributions when several workers run; per-VM
    division stays meaningful on the d1 diagnosis run, which is what
    [bench fleet --gc-stats] prints. *)

type summary = {
  vm_rows : vm_row list;  (** one per VM, canonical order — same rows {!run} returns *)
  gc : gc_stats list;     (** one per worker domain, worker order *)
}

val run : ?domains:int -> ?vms:int -> unit -> t
(** Boots and measures [vms] (default 16) protected VMs across
    [domains] (default [Fidelius_fleet.Pool.recommended_domains ()])
    worker domains, retaining every VM's rows and trace entries in
    memory. Raises [Invalid_argument] if [vms < 0]. *)

val run_stream :
  ?domains:int -> ?vms:int -> csv:string -> trace:string -> unit -> summary
(** [run_stream ~csv ~trace ()] is {!run} with per-domain arenas and
    streaming shard output: worker [w] reuses one {!arena} for all its
    jobs, writes each finished VM's CSV row and serialized Chrome events
    to per-chunk spill files (in a [<trace>.spill] directory, removed on
    success), and the final merge concatenates the spills in canonical
    chunk order into [csv] and [trace] — byte-identical to what
    [Merge.csv]/[Merge.chrome_of_shards] over {!run}'s results would
    produce (including the trailing newline on [trace]), at every domain
    count. Peak live heap is [workers × arena] plus the (tiny) row list;
    no VM's trace entries survive its own job.

    The returned {!summary} carries the canonical rows plus one
    {!gc_stats} per worker — the [--gc-stats] diagnosis data.

    Raises [Invalid_argument] if [vms < 0] or [domains < 1], and
    [Pool.Job_failed] like {!run}; on failure the spill directory may be
    left behind (it is truncated and reused by the next call). Not
    re-entrant on the same output paths: two concurrent streams would
    race on the spill directory. *)

val csv_header : string
(** First line of {!csv} / the [csv] file {!run_stream} writes. *)

val csv : t -> string
(** The per-VM result table:
    [vm,profile,cycles,per_access_cycles,per_exit_cycles,trace_events].
    Cycle columns are simulated cycles ([per_*] to 2 decimal places) —
    no wall time, so bytes are domain-count-independent. *)

val chrome : t -> Fidelius_obs.Json.t
(** The merged multi-process Chrome trace
    ({!Fidelius_fleet.Merge.chrome_of_shards}): VM [k] is [pid = k + 1],
    labelled ["vm<k>:<profile>"]. Timestamps are simulated cycles. *)
