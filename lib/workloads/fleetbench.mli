(** The fleet scaling benchmark: N independent guest-VM simulations
    sharded across a domain pool.

    This is the shared core behind [bench fleet] and the fleet
    determinism tests: both call {!run} so the benchmark and the test
    exercise exactly the same code path. Each VM job boots a fresh
    protected stack ([Engine.run] under [Fidelius_enc]) inside its own
    {!Fidelius_obs.Trace.capture}, so every VM produces a result row plus
    its own trace shard; {!csv} and {!chrome} merge them in canonical VM
    order.

    {2 Determinism contract}

    Everything here except wall-clock timing is a pure function of
    [(vms)]: VM [k] always runs profile [profiles.(k mod |profiles|)]
    with {!Engine.seed_of}-derived seeds, on a fresh machine, in a fresh
    capture. {!csv} and {!chrome} bytes are therefore identical for any
    [domains] value — the property the fleet tests pin. Wall-clock
    throughput (VMs/sec) is measured by the {e caller} around {!run};
    it is the only nondeterministic quantity and never appears in the
    merged artifacts. *)

type vm_row = {
  vm : int;                        (** canonical job index, [0 .. vms-1] *)
  profile : string;                (** workload profile name *)
  cycles : int;                    (** extrapolated total simulated cycles *)
  per_access : float;              (** sampled cycles per 64-byte access *)
  per_exit : float;                (** sampled cycles per hypervisor round trip *)
  events : int;                    (** trace entries the VM's capture recorded *)
}

type t = {
  rows : vm_row list;              (** one per VM, canonical order *)
  shards : (string * Fidelius_obs.Trace.entry list) list;
      (** per-VM trace shards, canonical order — feed to {!chrome} *)
}

val run : ?domains:int -> ?vms:int -> unit -> t
(** Boots and measures [vms] (default 16) protected VMs across
    [domains] (default [Fidelius_fleet.Pool.recommended_domains ()])
    worker domains. Raises [Invalid_argument] if [vms < 0]. *)

val csv : t -> string
(** The per-VM result table:
    [vm,profile,cycles,per_access_cycles,per_exit_cycles,trace_events].
    Cycle columns are simulated cycles ([per_*] to 2 decimal places) —
    no wall time, so bytes are domain-count-independent. *)

val chrome : t -> Fidelius_obs.Json.t
(** The merged multi-process Chrome trace
    ({!Fidelius_fleet.Merge.chrome_of_shards}): VM [k] is [pid = k + 1],
    labelled ["vm<k>:<profile>"]. Timestamps are simulated cycles. *)
