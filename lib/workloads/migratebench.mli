(** Fleet-scale live-migration benchmark: N concurrent migrations, each a
    complete src-host/dst-host pair with an attesting owner, sharded over a
    {!Fidelius_fleet.Pool}.

    Determinism contract (SCALING.md): every job owns {e all} of its
    mutable state — both simulated machines, the guest, the owner, and the
    guest's dirty-page bitmap (which lives in the domain record, inside
    the job's own machine) — and seeds are a stable hash of the job
    identity, so [csv] is byte-identical at any [?domains] count. *)

type row = {
  vm : int;
  budget_us : float;  (** downtime budget this migration ran under *)
  rounds : int;
  pages_sent : int;
  residual_pages : int;
  downtime_us : float;
  key_delivered : bool;
      (** owner released the disk key {e and} the migrated guest can read
          exactly that key back from its kblk slot *)
}

type t = { rows : row list }

val memory_pages : int
(** Guest size used by every migration job. *)

val run : ?domains:int -> ?vms:int -> budget_us:float -> unit -> t
(** Run [vms] (default 8) complete live migrations under the given
    downtime budget. The guest's working set halves every pre-copy round,
    so total pages sent decreases monotonically as the budget grows. *)

val csv : t -> string
val total_pages : t -> int
val all_keys_delivered : t -> bool
