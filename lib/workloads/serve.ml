module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Rng = Fidelius_crypto.Rng

type config = {
  requests : int;
  batch : int;
  net_fraction : int;
  load : float;
  seed : int64;
}

let default_config =
  { requests = 512; batch = 8; net_fraction = 30; load = 0.8; seed = 97L }

type report = {
  batch : int;
  completed : int;
  rps : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  mean_service_cycles : float;
  hypercalls : int;
  blk_notifications : int;
  net_frames : int;
}

let disk_sectors = 4096
let frame_bytes = 192

type stack = {
  machine : Hw.Machine.t;
  hv : Xen.Hypervisor.t;
  frontend : Xen.Blkif.frontend;
  backend : Xen.Blkif.backend;
  net_guest : Xen.Netif.endpoint;
  net_peer : Xen.Netif.endpoint;
  wire : Xen.Netif.wire;
}

(* The paper's deployment scenario: a protected guest whose disk traffic is
   Kblk ciphertext under the AES-NI codec. The peer on the wire is a plain
   helper domain standing in for the remote client. *)
let boot_stack seed =
  let machine = Hw.Machine.create ~seed () in
  let hv = Xen.Hypervisor.boot machine in
  let fid = Core.Fidelius.install hv in
  let rng = Rng.create (Int64.add seed 5L) in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Core.Fidelius.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ Bytes.make Hw.Addr.page_size '\000' ]
  in
  let dom =
    match Core.Fidelius.boot_protected_vm fid ~name:"serve" ~memory_pages:32 ~prepared with
    | Ok d -> d
    | Error e -> failwith ("serve: protected boot: " ^ e)
  in
  let kblk = Core.Fidelius.kblk_of_guest fid dom in
  let disk = Xen.Vdisk.create ~nr_sectors:disk_sectors in
  let frontend, backend =
    match
      Xen.Blkif.connect ~ring_size:32 ~buffer_pages:8 hv dom ~disk ~buffer_gvfn:100
    with
    | Ok (fe, be) -> (fe, be)
    | Error e -> failwith ("serve: blkif connect: " ^ e)
  in
  Xen.Blkif.set_codec frontend (Core.Fidelius.aesni_codec fid ~kblk);
  let wire = Xen.Netif.create_wire () in
  let net_guest =
    match Xen.Netif.connect hv dom ~wire ~buffer_gvfn:200 with
    | Ok ep -> ep
    | Error e -> failwith ("serve: guest netif: " ^ e)
  in
  let peer_dom = Xen.Hypervisor.create_domain hv ~name:"peer" ~memory_pages:8 in
  let net_peer =
    match Xen.Netif.connect hv peer_dom ~wire ~buffer_gvfn:50 with
    | Ok ep -> ep
    | Error e -> failwith ("serve: peer netif: " ^ e)
  in
  { machine; hv; frontend; backend; net_guest; net_peer; wire }

(* --- one batch of work ------------------------------------------------- *)

type kind = Blk_read | Blk_write | Net_exchange

let pick_kind cfg rng =
  if Rng.int rng 100 < cfg.net_fraction then Net_exchange
  else if Rng.int rng 2 = 0 then Blk_read
  else Blk_write

let payload len = Bytes.init len (fun i -> Char.chr (((i * 31) + 7) land 0xff))

let frame i = Bytes.init frame_bytes (fun j -> Char.chr ((i + (j * 13)) land 0xff))

let fail_on label = function Ok v -> v | Error e -> failwith ("serve: " ^ label ^ ": " ^ e)

(* One doorbell's worth of work: [batch] page-sized block requests, or a
   [batch]-frame request/response exchange on the wire. *)
let run_batch st (cfg : config) rng kind =
  let spf = Xen.Blkif.sectors_per_frame in
  match kind with
  | Blk_read ->
      let sector = Rng.int rng (disk_sectors - (cfg.batch * spf)) in
      ignore
        (fail_on "read"
           (Xen.Blkif.read_sectors ~batch:cfg.batch st.frontend ~sector
              ~count:(cfg.batch * spf)))
  | Blk_write ->
      let sector = Rng.int rng (disk_sectors - (cfg.batch * spf)) in
      fail_on "write"
        (Xen.Blkif.write_sectors ~batch:cfg.batch st.frontend ~sector
           (payload (cfg.batch * spf * Xen.Vdisk.sector_size)))
  | Net_exchange ->
      let reqs = List.init cfg.batch frame in
      fail_on "net send" (Xen.Netif.send_batch st.net_guest reqs);
      let got = fail_on "net recv" (Xen.Netif.recv_batch st.net_peer) in
      if List.length got <> cfg.batch then failwith "serve: net exchange lost frames";
      fail_on "net reply" (Xen.Netif.send_batch st.net_peer got);
      let back = fail_on "net recv reply" (Xen.Netif.recv_batch st.net_guest) in
      if List.length back <> cfg.batch then failwith "serve: net reply lost frames"

(* --- open-loop driver --------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let run (cfg : config) =
  if cfg.load <= 0.0 then invalid_arg "Serve.run: load must be positive";
  let cfg = { cfg with batch = max 1 (min 8 cfg.batch) } in
  let st = boot_stack cfg.seed in
  let ledger = st.machine.Hw.Machine.ledger in
  let rng = Rng.create (Int64.add cfg.seed 17L) in
  (* Closed-loop calibration: mean service cycles per request sets the
     open-loop arrival gap. *)
  let calib_kinds = [ Blk_read; Blk_write; Net_exchange; Blk_read ] in
  let c0 = Hw.Cost.total ledger in
  List.iter (fun k -> run_batch st cfg rng k) calib_kinds;
  let mean_service =
    float_of_int (Hw.Cost.total ledger - c0)
    /. float_of_int (List.length calib_kinds * cfg.batch)
  in
  let gap = mean_service /. cfg.load in
  let groups = max 1 (cfg.requests / cfg.batch) in
  let completed = groups * cfg.batch in
  let latencies = Array.make completed 0.0 in
  let vmexit0 = fst (Xen.Hypervisor.stats st.hv) in
  let notif0 = Xen.Blkif.notifications st.backend in
  let clock = ref 0.0 in
  let arrival = ref 0.0 in
  let idx = ref 0 in
  for _ = 1 to groups do
    let arrivals =
      Array.init cfg.batch (fun _ ->
          let jitter = 0.5 +. (float_of_int (Rng.int rng 1001) /. 1000.0) in
          arrival := !arrival +. (gap *. jitter);
          !arrival)
    in
    (* The batch launches once its last member has arrived and the server
       is free. *)
    let start = Float.max !clock arrivals.(cfg.batch - 1) in
    let b0 = Hw.Cost.total ledger in
    run_batch st cfg rng (pick_kind cfg rng);
    clock := start +. float_of_int (Hw.Cost.total ledger - b0);
    Array.iter
      (fun a ->
        latencies.(!idx) <- !clock -. a;
        incr idx)
      arrivals
  done;
  let hypercalls = fst (Xen.Hypervisor.stats st.hv) - vmexit0 in
  let blk_notifications = Xen.Blkif.notifications st.backend - notif0 in
  Array.sort compare latencies;
  (* Simulated clock: 1 GHz — one cycle is one nanosecond. *)
  let to_us c = c /. 1000.0 in
  { batch = cfg.batch;
    completed;
    rps = float_of_int completed /. (!clock /. 1e9);
    p50_us = to_us (percentile latencies 0.50);
    p90_us = to_us (percentile latencies 0.90);
    p99_us = to_us (percentile latencies 0.99);
    mean_service_cycles = mean_service;
    hypercalls;
    blk_notifications;
    net_frames = Xen.Netif.frames_forwarded st.wire }

(* --- wall-clock ring kernel for the bench harness ----------------------- *)

let ring_workload ~batch ~iters =
  let batch = max 1 (min 8 batch) in
  let st = boot_stack 41L in
  let req i =
    { Xen.Ring.req_id = Xen.Blkif.fresh_req_id st.frontend;
      op = Xen.Ring.Read;
      sector = 0;
      count = 1;
      data_gref = Xen.Blkif.data_gref st.frontend ~page:i;
      data_off = 0 }
  in
  fun () ->
    for _ = 1 to iters / batch do
      match Xen.Blkif.submit_batch st.frontend (List.init batch req) with
      | Ok statuses ->
          if List.exists Result.is_error statuses then failwith "serve: ring kernel: rejected"
      | Error e -> failwith ("serve: ring kernel: " ^ e)
    done
