(** Deterministic merging of per-shard fleet results.

    Every merge in this module folds its input {e in the order given} —
    callers pass shard results in canonical job order (what
    {!Pool.map} returns), so merged output is byte-identical for any
    domain count. Nothing here reads domain-local state; all inputs are
    plain values handed over by finished shards. *)

val process_meta : pid:int -> string -> Fidelius_obs.Json.t
(** The Chrome [process_name] metadata event that names shard row [pid]
    — the first object every shard contributes to the [traceEvents]
    array. Exposed so the streaming path ({!chrome_header} et al.)
    serializes exactly the object {!chrome_of_shards} would have built;
    deterministic in its inputs. *)

val chrome_header : string
(** The bytes of a Chrome trace document up to (and including) the
    opening of the [traceEvents] array. A streamed document is
    [chrome_header ^ fragments ^ chrome_footer ~shards] where the
    fragments are comma-joined serialized events — byte-identical to
    [Json.to_string (chrome_of_shards ...)] for the same shards, which is
    the whole point: spill files can be concatenated without re-parsing.
    Pinned against {!chrome_of_shards} by the spill-merge tests. *)

val chrome_footer : shards:(string * int) list -> string
(** Closes the [traceEvents] array and appends the [displayTimeUnit] and
    [otherData] sections for the given per-shard [(label, event count)]
    listing, in listing order. See {!chrome_header}. *)

val concat_spills : out:string -> ?header:string -> ?footer:string -> string list -> unit
(** [concat_spills ~out ~header ~footer paths] writes [header], then the
    raw bytes of every spill file in {e list order}, then [footer], to
    [out] — streaming in 64 KiB blocks, so peak memory is independent of
    the spill sizes (the bounded-RSS half of the 1,000-VM fleet story).
    Determinism is inherited from the inputs: callers pass spill paths in
    canonical chunk order, and each spill was written by exactly one
    worker in canonical job order. No separators are inserted — writers
    embed their own (the fleet's chrome spills carry a leading comma on
    every job fragment after the global first). Raises [Sys_error] if
    any file cannot be opened; [out] is closed (possibly truncated) on
    any failure, never left dangling. *)

val chrome_of_shards :
  (string * Fidelius_obs.Trace.entry list) list -> Fidelius_obs.Json.t
(** [chrome_of_shards [(label0, entries0); ...]] renders the shards'
    captures as one Chrome [trace_event] document in which shard [k]
    appears as its own process row: [pid = k + 1], named [label_k] via a
    [process_name] metadata event. Event order inside a shard is the
    shard's own emission order; shards appear in list order, so the
    document's bytes depend only on the input, not on how many domains
    produced it. [otherData] carries the shard count and per-shard event
    counts (label order preserved). *)

val sum_counts : (string * int) list list -> (string * int) list
(** Pointwise sum of per-shard counter listings (ledger categories,
    scope attributions...). The result is sorted by descending count,
    ties broken on the label — the same canonical order [Hw.Cost] uses —
    so the merged listing never depends on input interleaving. *)

val csv : header:string -> (string list) list -> string
(** [csv ~header rows] assembles per-shard row groups into one CSV
    string, header first, then every shard's rows in shard order,
    ["\n"]-terminated. Purely concatenation — no reordering, no
    formatting — so shards keep full control of their cells. *)
