(** Deterministic merging of per-shard fleet results.

    Every merge in this module folds its input {e in the order given} —
    callers pass shard results in canonical job order (what
    {!Pool.map} returns), so merged output is byte-identical for any
    domain count. Nothing here reads domain-local state; all inputs are
    plain values handed over by finished shards. *)

val chrome_of_shards :
  (string * Fidelius_obs.Trace.entry list) list -> Fidelius_obs.Json.t
(** [chrome_of_shards [(label0, entries0); ...]] renders the shards'
    captures as one Chrome [trace_event] document in which shard [k]
    appears as its own process row: [pid = k + 1], named [label_k] via a
    [process_name] metadata event. Event order inside a shard is the
    shard's own emission order; shards appear in list order, so the
    document's bytes depend only on the input, not on how many domains
    produced it. [otherData] carries the shard count and per-shard event
    counts (label order preserved). *)

val sum_counts : (string * int) list list -> (string * int) list
(** Pointwise sum of per-shard counter listings (ledger categories,
    scope attributions...). The result is sorted by descending count,
    ties broken on the label — the same canonical order [Hw.Cost] uses —
    so the merged listing never depends on input interleaving. *)

val csv : header:string -> (string list) list -> string
(** [csv ~header rows] assembles per-shard row groups into one CSV
    string, header first, then every shard's rows in shard order,
    ["\n"]-terminated. Purely concatenation — no reordering, no
    formatting — so shards keep full control of their cells. *)
