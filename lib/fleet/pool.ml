let recommended_domains () = max 1 (Domain.recommended_domain_count ())

let chunks ~njobs ~ndomains =
  if njobs < 0 then invalid_arg "Pool.chunks: njobs must be >= 0";
  if ndomains < 1 then invalid_arg "Pool.chunks: ndomains must be >= 1";
  let d = min ndomains (max njobs 1) in
  let q = njobs / d and r = njobs mod d in
  List.init d (fun i -> ((i * q) + min i r, q + if i < r then 1 else 0))

exception Job_failed of { job : int; exn : exn }

(* One slot per job, written by exactly one worker domain; [Domain.join]
   publishes every write before the main domain reads any slot back. *)
type 'a slot =
  | Pending
  | Done of 'a
  | Raised of exn

let map ?domains ~njobs f =
  let ndomains =
    match domains with
    | None -> recommended_domains ()
    | Some d -> if d < 1 then invalid_arg "Pool.map: domains must be >= 1" else d
  in
  if njobs < 0 then invalid_arg "Pool.map: njobs must be >= 0";
  if njobs = 0 then []
  else begin
    let slots = Array.make njobs Pending in
    let worker (start, len) () =
      for j = start to start + len - 1 do
        slots.(j) <- (try Done (f j) with e -> Raised e)
      done
    in
    (* Jobs run on spawned domains even when the pool has a single worker,
       so a job sees pristine domain-local state (no inherited trace ring
       or fault plan) regardless of the domain count — otherwise
       [~domains:1] and [~domains:n] could observably differ. *)
    chunks ~njobs ~ndomains
    |> List.map (fun chunk -> Domain.spawn (worker chunk))
    |> List.iter Domain.join;
    (* Report the lowest failing job, not the first domain to crash. *)
    Array.iteri
      (fun job -> function Raised exn -> raise (Job_failed { job; exn }) | _ -> ())
      slots;
    Array.to_list (Array.map (function Done v -> v | Raised _ | Pending -> assert false) slots)
  end

let map_list ?domains f xs =
  let arr = Array.of_list xs in
  map ?domains ~njobs:(Array.length arr) (fun j -> f arr.(j))
