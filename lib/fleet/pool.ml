let recommended_domains () = max 1 (Domain.recommended_domain_count ())

let chunks ~njobs ~ndomains =
  if njobs < 0 then invalid_arg "Pool.chunks: njobs must be >= 0";
  if ndomains < 1 then invalid_arg "Pool.chunks: ndomains must be >= 1";
  let d = min ndomains (max njobs 1) in
  let q = njobs / d and r = njobs mod d in
  List.init d (fun i -> ((i * q) + min i r, q + if i < r then 1 else 0))

let workers ~njobs ~ndomains =
  min (recommended_domains ()) (List.length (chunks ~njobs ~ndomains))

exception Job_failed of { job : int; exn : exn }

(* One slot per job, written by exactly one worker domain; [Domain.join]
   publishes every write before the main domain reads any slot back. *)
type 'a slot =
  | Pending
  | Done of 'a
  | Raised of exn

let map_gen ~who ?domains ~njobs ~init ~finish f =
  let ndomains =
    match domains with
    | None -> recommended_domains ()
    | Some d ->
        if d < 1 then invalid_arg (Printf.sprintf "Pool.%s: domains must be >= 1" who) else d
  in
  if njobs < 0 then invalid_arg (Printf.sprintf "Pool.%s: njobs must be >= 0" who);
  if njobs = 0 then []
  else begin
    let slots = Array.make njobs Pending in
    (* Jobs run on spawned domains even when the pool has a single worker,
       so no job ever inherits the caller's domain-local state (trace
       ring, fault plan) — otherwise [~domains:1] and [~domains:n] could
       observably differ.

       At most [recommended_domains ()] worker domains exist per call:
       chunks beyond the cap are multiplexed round-robin onto the workers,
       each of which runs its chunks in order. Two failure modes are
       avoided at once. Spawning all requested domains concurrently
       oversubscribes the cores, and OCaml 5's minor GC is a
       stop-the-world rendezvous across running domains, so every
       allocation pause waits on timesliced stragglers — that is what made
       [~domains:2] run slower than [~domains:1] on a single-core host.
       And spawning them sequentially pays a domain lifecycle
       (spawn/teardown against a warm major heap measures ~10ms) per
       chunk. With the cap, [~domains:n] on one core spawns exactly one
       domain and executes jobs 0..njobs-1 in the same order as
       [~domains:1]. The job → chunk assignment is untouched: the cap only
       changes which OS-level domain hosts a chunk, never the chunking or
       the slot each job writes, so results and artifacts stay
       byte-identical for every domain count. *)
    let chunk_list = chunks ~njobs ~ndomains in
    let nworkers = min (recommended_domains ()) (List.length chunk_list) in
    let groups = Array.make nworkers [] in
    List.iteri (fun i c -> groups.(i mod nworkers) <- c :: groups.(i mod nworkers)) chunk_list;
    let spawned =
      Array.to_list
        (Array.mapi
           (fun w rev_chunks ->
             let mine = List.rev rev_chunks in
             Domain.spawn (fun () ->
                 (* Worker-local state (an arena) lives for the whole worker:
                    [init] runs before the first chunk, [finish] after the
                    last — even when jobs raise, since job exceptions are
                    confined to their slots. *)
                 let st = init w in
                 Fun.protect
                   ~finally:(fun () -> finish w st)
                   (fun () ->
                     List.iter
                       (fun (start, len) ->
                         for j = start to start + len - 1 do
                           slots.(j) <- (try Done (f st j) with e -> Raised e)
                         done)
                       mine)))
           groups)
    in
    (* Join every worker before propagating anything: an [init]/[finish]
       failure on one worker must not leave others unjoined (their slot
       writes would be unpublished and their domains leaked). The lowest
       worker's exception wins, deterministically. *)
    let worker_failure =
      List.fold_left
        (fun acc d ->
          match Domain.join d with
          | () -> acc
          | exception e -> ( match acc with None -> Some e | some -> some))
        None spawned
    in
    (match worker_failure with Some e -> raise e | None -> ());
    (* Report the lowest failing job, not the first domain to crash. *)
    Array.iteri
      (fun job -> function Raised exn -> raise (Job_failed { job; exn }) | _ -> ())
      slots;
    Array.to_list (Array.map (function Done v -> v | Raised _ | Pending -> assert false) slots)
  end

let map ?domains ~njobs f =
  map_gen ~who:"map" ?domains ~njobs ~init:(fun _ -> ()) ~finish:(fun _ _ -> ())
    (fun () j -> f j)

let map_with ?domains ~njobs ~init ?(finish = fun _ _ -> ()) f =
  map_gen ~who:"map_with" ?domains ~njobs ~init ~finish f

let map_list ?domains f xs =
  let arr = Array.of_list xs in
  map ?domains ~njobs:(Array.length arr) (fun j -> f arr.(j))
