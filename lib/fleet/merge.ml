module Trace = Fidelius_obs.Trace
module Json = Fidelius_obs.Json

let chrome_of_shards shards =
  let process_meta pid label =
    Json.Obj
      [ ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str label) ]) ]
  in
  let events =
    List.concat
      (List.mapi
         (fun k (label, entries) ->
           let pid = k + 1 in
           process_meta pid label :: List.map (Trace.chrome_event ~pid) entries)
         shards)
  in
  let per_shard =
    List.map (fun (label, entries) -> (label, Json.Int (List.length entries))) shards
  in
  Json.Obj
    [ ("traceEvents", Json.Arr events);
      ("displayTimeUnit", Json.Str "ns");
      ("otherData",
       Json.Obj
         [ ("shards", Json.Int (List.length shards));
           ("events_per_shard", Json.Obj per_shard) ]) ]

let sum_counts listings =
  let tbl = Hashtbl.create 32 in
  List.iter
    (List.iter (fun (k, v) ->
         Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))))
    listings;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) -> if a <> b then compare b a else compare ka kb)

let csv ~header rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (List.iter (fun row ->
         Buffer.add_string buf row;
         Buffer.add_char buf '\n'))
    rows;
  Buffer.contents buf
