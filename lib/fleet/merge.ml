module Trace = Fidelius_obs.Trace
module Json = Fidelius_obs.Json

let process_meta ~pid label =
  Json.Obj
    [ ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.Str label) ]) ]

let chrome_other_data shards =
  Json.Obj
    [ ("shards", Json.Int (List.length shards));
      ("events_per_shard", Json.Obj (List.map (fun (label, n) -> (label, Json.Int n)) shards)) ]

let chrome_header = "{\"traceEvents\":["

let chrome_footer ~shards =
  "],\"displayTimeUnit\":\"ns\",\"otherData\":" ^ Json.to_string (chrome_other_data shards) ^ "}"

let chrome_of_shards shards =
  let process_meta pid label = process_meta ~pid label in
  let events =
    List.concat
      (List.mapi
         (fun k (label, entries) ->
           let pid = k + 1 in
           process_meta pid label :: List.map (Trace.chrome_event ~pid) entries)
         shards)
  in
  let counts = List.map (fun (label, entries) -> (label, List.length entries)) shards in
  Json.Obj
    [ ("traceEvents", Json.Arr events);
      ("displayTimeUnit", Json.Str "ns");
      ("otherData", chrome_other_data counts) ]

let sum_counts listings =
  let tbl = Hashtbl.create 32 in
  List.iter
    (List.iter (fun (k, v) ->
         Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))))
    listings;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) -> if a <> b then compare b a else compare ka kb)

(* --- spill files: streaming shard output -------------------------------- *)

let concat_spills ~out ?(header = "") ?(footer = "") paths =
  let oc = open_out_bin out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc header;
      let buf = Bytes.create 65536 in
      List.iter
        (fun path ->
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let rec pump () =
                let n = input ic buf 0 (Bytes.length buf) in
                if n > 0 then begin
                  output oc buf 0 n;
                  pump ()
                end
              in
              pump ()))
        paths;
      output_string oc footer)

let csv ~header rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (List.iter (fun row ->
         Buffer.add_string buf row;
         Buffer.add_char buf '\n'))
    rows;
  Buffer.contents buf
