(** Fixed-size multicore job pool ([Domain.spawn]-based, no dependencies
    beyond the OCaml 5 runtime).

    [map ~njobs f] runs the jobs [f 0 .. f (njobs - 1)] across a pool of
    worker domains and returns the results {e in canonical job order} —
    the caller can never observe scheduling order, which is the
    foundation of the fleet determinism contract (see [SCALING.md]):
    provided each job is itself deterministic and touches only state it
    owns, the returned list is identical for every [domains] value,
    including 1.

    {2 Scheduling}

    Scheduling is chunked and static: job [j] belongs to the domain given
    by {!chunks}, a pure function of [(njobs, ndomains)]. There is no
    work-stealing and no shared queue, so no lock, no contention, and no
    run-to-run variation in which domain executes which job.

    Requested parallelism and spawned domains are decoupled: [domains]
    fixes the chunking (and therefore the results), while the number of
    worker domains actually spawned is capped at {!recommended_domains},
    with excess chunks multiplexed round-robin onto the workers. OCaml
    5's minor GC is a stop-the-world rendezvous over all running
    domains, so running more domains than cores stalls every allocation
    on timesliced stragglers, and even {e sequential} extra domains pay
    a measurable spawn/teardown cost against a warm heap — both were
    measured as [~domains:2] running slower than [~domains:1] on one
    core before the cap. The cap changes only which domain hosts a
    chunk, never the chunking itself, so results and artifacts remain
    byte-identical across domain counts.

    {2 State ownership}

    Jobs always execute on freshly spawned worker domains — never on the
    caller's domain, even when [domains = 1] — so no job inherits the
    caller's [Domain.DLS] state: tracing disabled ({!Fidelius_obs.Trace}),
    no fault plan installed ([Fidelius_inject.Plan]). Jobs mapped to the
    same worker share that worker's DLS (this was always true within a
    chunk: [domains = 1] runs every job on one domain), so a job that
    mutates DLS must restore it — e.g. scope tracing with
    [Trace.capture] — or jobs could observe co-scheduled neighbours and
    break domain-count invariance. A job must construct (or be handed
    exclusive ownership of) every piece of mutable state it touches;
    sharing a machine, ledger, or expanded AES key between jobs is a
    data race. *)

val recommended_domains : unit -> int
(** The runtime's suggested parallelism ([Domain.recommended_domain_count]),
    at least 1. The default for every [?domains] argument in the fleet. *)

val workers : njobs:int -> ndomains:int -> int
(** [workers ~njobs ~ndomains] is how many worker domains {!map} (and
    {!map_with}) will actually spawn for that job/domain request:
    [min (recommended_domains ()) (List.length (chunks ~njobs ~ndomains))].
    Deterministic for a fixed host ({!recommended_domains} is the only
    environment-dependent input); never 0 for [njobs >= 0]. Callers that
    size per-worker accumulators (e.g. one GC report slot per worker)
    must use this, not [ndomains] — requested domains beyond the cap are
    multiplexed and own no worker of their own. Raises
    [Invalid_argument] like {!chunks}. *)

val chunks : njobs:int -> ndomains:int -> (int * int) list
(** [chunks ~njobs ~ndomains] is the static job → domain assignment: one
    [(start, len)] pair per worker domain, covering [0 .. njobs - 1] with
    contiguous, disjoint, in-order chunks whose lengths differ by at most
    one. A pure function of its two arguments — part of the determinism
    contract, pinned by a qcheck partition property. At most
    [max njobs 1] domains are used, so no worker is ever empty (except
    the single worker of an empty job list). Raises [Invalid_argument]
    if [njobs < 0] or [ndomains < 1]. *)

exception Job_failed of { job : int; exn : exn }
(** Raised by {!map} after all workers have joined, carrying the
    lowest-numbered failing job and its original exception. Deterministic:
    the reported job index does not depend on which domain crashed
    first. *)

val map : ?domains:int -> njobs:int -> (int -> 'a) -> 'a list
(** [map ~domains ~njobs f] runs every job on the pool and returns
    [[f 0; f 1; ...; f (njobs - 1)]] in job order. [domains] defaults to
    {!recommended_domains} and is clamped to [njobs] (an idle domain is
    never spawned); [njobs = 0] returns [[]] without spawning.

    If any job raises, the remaining jobs still run to completion
    (failure of one shard never aborts another's work), and once every
    worker has joined, {!Job_failed} is raised for the lowest failing job
    index. Raises [Invalid_argument] if [njobs < 0] or [domains < 1]. *)

val map_with :
  ?domains:int ->
  njobs:int ->
  init:(int -> 'w) ->
  ?finish:(int -> 'w -> unit) ->
  ('w -> int -> 'a) ->
  'a list
(** [map_with ~njobs ~init ~finish f] is {!map} with worker-lifetime
    state — the hook the per-domain arenas hang off. On each spawned
    worker domain [w] (indices [0 .. workers ~njobs ~ndomains - 1]):

    - [init w] runs once, {e on the worker domain}, before its first
      chunk — allocate the arena (reusable machine backing, trace ring,
      scratch buffers) and snapshot GC baselines here;
    - every job [j] assigned to [w] runs as [f st j] with the state [st]
      that [init] returned — jobs on the same worker see the {e same}
      [st], in canonical job order within each chunk;
    - [finish w st] runs once after the worker's last chunk, still on the
      worker domain, {e even when jobs raised} (job exceptions are
      confined to their result slots) — close spill channels and publish
      GC deltas here.

    Determinism contract: [st] is a reuse pool, never an input — [f st j]
    must return (and write) bytes that are a pure function of [j], so a
    run that reuses a neighbour's arena is byte-identical to one that
    allocates fresh. The qcheck arena-reuse property in
    [test/test_fleet.ml] pins exactly this.

    Error behaviour: a job exception is recorded and re-raised as
    {!Job_failed} for the lowest failing index, after all workers joined.
    An exception escaping [init] or [finish] itself aborts the call —
    every worker is still joined first (no leaked domains, no unpublished
    slots), then the lowest-indexed worker's exception is re-raised
    verbatim. Raises [Invalid_argument] if [njobs < 0] or [domains < 1].

    Thread-safety: [init]/[f]/[finish] run concurrently across workers —
    anything they share must be safe for that (the arena itself must not
    be shared; per-worker slot arrays with disjoint writes are the
    intended pattern, published by the internal joins). *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list f xs] is {!map} over the elements of [xs], preserving list
    order. The list is forced into an array up front, so [xs] itself is
    not consulted concurrently. *)
