(** Fixed-size multicore job pool ([Domain.spawn]-based, no dependencies
    beyond the OCaml 5 runtime).

    [map ~njobs f] runs the jobs [f 0 .. f (njobs - 1)] across a pool of
    worker domains and returns the results {e in canonical job order} —
    the caller can never observe scheduling order, which is the
    foundation of the fleet determinism contract (see [SCALING.md]):
    provided each job is itself deterministic and touches only state it
    owns, the returned list is identical for every [domains] value,
    including 1.

    {2 Scheduling}

    Scheduling is chunked and static: job [j] belongs to the domain given
    by {!chunks}, a pure function of [(njobs, ndomains)]. There is no
    work-stealing and no shared queue, so no lock, no contention, and no
    run-to-run variation in which domain executes which job.

    {2 State ownership}

    Jobs always execute on freshly spawned domains — never on the caller's
    domain, even when [domains = 1] — so every job starts from pristine
    [Domain.DLS] state: tracing disabled ({!Fidelius_obs.Trace}), no fault
    plan installed ([Fidelius_inject.Plan]). A job must construct (or be
    handed exclusive ownership of) every piece of mutable state it
    touches; sharing a machine, ledger, or expanded AES key between jobs
    is a data race. *)

val recommended_domains : unit -> int
(** The runtime's suggested parallelism ([Domain.recommended_domain_count]),
    at least 1. The default for every [?domains] argument in the fleet. *)

val chunks : njobs:int -> ndomains:int -> (int * int) list
(** [chunks ~njobs ~ndomains] is the static job → domain assignment: one
    [(start, len)] pair per worker domain, covering [0 .. njobs - 1] with
    contiguous, disjoint, in-order chunks whose lengths differ by at most
    one. A pure function of its two arguments — part of the determinism
    contract, pinned by a qcheck partition property. At most
    [max njobs 1] domains are used, so no worker is ever empty (except
    the single worker of an empty job list). Raises [Invalid_argument]
    if [njobs < 0] or [ndomains < 1]. *)

exception Job_failed of { job : int; exn : exn }
(** Raised by {!map} after all workers have joined, carrying the
    lowest-numbered failing job and its original exception. Deterministic:
    the reported job index does not depend on which domain crashed
    first. *)

val map : ?domains:int -> njobs:int -> (int -> 'a) -> 'a list
(** [map ~domains ~njobs f] runs every job on the pool and returns
    [[f 0; f 1; ...; f (njobs - 1)]] in job order. [domains] defaults to
    {!recommended_domains} and is clamped to [njobs] (an idle domain is
    never spawned); [njobs = 0] returns [[]] without spawning.

    If any job raises, the remaining jobs still run to completion
    (failure of one shard never aborts another's work), and once every
    worker has joined, {!Job_failed} is raised for the lowest failing job
    index. Raises [Invalid_argument] if [njobs < 0] or [domains < 1]. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list f xs] is {!map} over the elements of [xs], preserving list
    order. The list is forced into an array up front, so [xs] itself is
    not consulted concurrently. *)
