module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Plan = Fidelius_inject.Plan
module Site = Fidelius_inject.Site

type quote = {
  xen_measurement : bytes;
  fw_version : Sev.Firmware.version;
  guest_domid : int option;
  nonce : int64;
  mac : bytes;
}

type error =
  | Nonce_mismatch
  | Bad_mac
  | Stale_firmware of { got : Sev.Firmware.version; minimum : Sev.Firmware.version }
  | Hypervisor_mismatch

let pp_error fmt = function
  | Nonce_mismatch -> Format.pp_print_string fmt "attest: nonce mismatch (replayed quote?)"
  | Bad_mac ->
      Format.pp_print_string fmt "attest: quote MAC invalid (wrong platform or tampered)"
  | Stale_firmware { got; minimum } ->
      Format.fprintf fmt
        "attest: platform firmware %a is below the policy floor %a (rollback?)"
        Sev.Firmware.pp_version got Sev.Firmware.pp_version minimum
  | Hypervisor_mismatch ->
      Format.pp_print_string fmt
        "attest: hypervisor measurement differs from the expected build"

let error_to_string e = Format.asprintf "%a" pp_error e

let payload ~xen_measurement ~fw_version ~guest_domid =
  let b = Bytes.create (32 + 6 + 4) in
  Bytes.blit xen_measurement 0 b 0 32;
  Bytes.set_uint16_be b 32 fw_version.Sev.Firmware.api_major;
  Bytes.set_uint16_be b 34 fw_version.Sev.Firmware.api_minor;
  Bytes.set_uint16_be b 36 fw_version.Sev.Firmware.build;
  Bytes.set_int32_be b 38 (Int32.of_int (match guest_domid with None -> -1 | Some d -> d));
  b

let quote_fw fw ~xen_measurement ?guest_domid ~nonce () =
  (* The rollback swap happens on the quoted platform's side of the wire:
     a hostile hypervisor reloaded an old blob just before this quote. The
     old blob holds the same platform identity, so the MAC is genuine —
     the version field is the only honest tell. *)
  let fw_version =
    if Plan.armed () && Plan.fire Site.Stale_firmware then begin
      Sev.Firmware.load_blob fw Sev.Firmware.vulnerable_version;
      Sev.Firmware.vulnerable_version
    end
    else Sev.Firmware.version fw
  in
  let mac =
    Sev.Firmware.attest fw ~data:(payload ~xen_measurement ~fw_version ~guest_domid) ~nonce
  in
  { xen_measurement; fw_version; guest_domid; nonce; mac }

let quote ctx ?guest ~nonce () =
  let fw = ctx.Ctx.hv.Xen.Hypervisor.fw in
  let guest_domid = Option.map (fun (d : Xen.Domain.t) -> d.Xen.Domain.domid) guest in
  quote_fw fw ~xen_measurement:ctx.Ctx.xen_measurement ?guest_domid ~nonce ()

let verify ~attestation_key ~expected_xen_measurement
    ?(minimum_fw_version = Sev.Firmware.minimum_safe_version) ~nonce q =
  if not (Int64.equal nonce q.nonce) then Error Nonce_mismatch
  else if
    not
      (Sev.Firmware.verify_quote ~attestation_key
         ~data:
           (payload ~xen_measurement:q.xen_measurement ~fw_version:q.fw_version
              ~guest_domid:q.guest_domid)
         ~nonce ~quote:q.mac)
  then Error Bad_mac
  else if not (Sev.Firmware.version_at_least q.fw_version ~minimum:minimum_fw_version) then
    Error (Stale_firmware { got = q.fw_version; minimum = minimum_fw_version })
  else if not (Bytes.equal q.xen_measurement expected_xen_measurement) then
    Error Hypervisor_mismatch
  else Ok ()

let wire_length = 32 + 6 + 4 + 8 + 32

let serialize q =
  let b = Bytes.create wire_length in
  Bytes.blit q.xen_measurement 0 b 0 32;
  Bytes.set_uint16_be b 32 q.fw_version.Sev.Firmware.api_major;
  Bytes.set_uint16_be b 34 q.fw_version.Sev.Firmware.api_minor;
  Bytes.set_uint16_be b 36 q.fw_version.Sev.Firmware.build;
  Bytes.set_int32_be b 38 (Int32.of_int (match q.guest_domid with None -> -1 | Some d -> d));
  Bytes.set_int64_be b 42 q.nonce;
  Bytes.blit q.mac 0 b 50 32;
  b

let deserialize b =
  if Bytes.length b <> wire_length then None
  else
    let domid = Int32.to_int (Bytes.get_int32_be b 38) in
    Some
      { xen_measurement = Bytes.sub b 0 32;
        fw_version =
          { Sev.Firmware.api_major = Bytes.get_uint16_be b 32;
            api_minor = Bytes.get_uint16_be b 34;
            build = Bytes.get_uint16_be b 36 };
        guest_domid = (if domid < 0 then None else Some domid);
        nonce = Bytes.get_int64_be b 42;
        mac = Bytes.sub b 50 32 }
