module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev

type quote = {
  xen_measurement : bytes;
  guest_domid : int option;
  nonce : int64;
  mac : bytes;
}

let payload ~xen_measurement ~guest_domid =
  let b = Bytes.create (32 + 4) in
  Bytes.blit xen_measurement 0 b 0 32;
  Bytes.set_int32_be b 32 (Int32.of_int (match guest_domid with None -> -1 | Some d -> d));
  b

let quote ctx ?guest ~nonce () =
  let fw = ctx.Ctx.hv.Xen.Hypervisor.fw in
  let xen_measurement = ctx.Ctx.xen_measurement in
  let guest_domid = Option.map (fun (d : Xen.Domain.t) -> d.Xen.Domain.domid) guest in
  let mac = Sev.Firmware.attest fw ~data:(payload ~xen_measurement ~guest_domid) ~nonce in
  { xen_measurement; guest_domid; nonce; mac }

let verify ~attestation_key ~expected_xen_measurement ~nonce q =
  if not (Int64.equal nonce q.nonce) then Error "attest: nonce mismatch (replayed quote?)"
  else if
    not
      (Sev.Firmware.verify_quote ~attestation_key
         ~data:(payload ~xen_measurement:q.xen_measurement ~guest_domid:q.guest_domid)
         ~nonce ~quote:q.mac)
  then Error "attest: quote MAC invalid (wrong platform or tampered)"
  else if not (Bytes.equal q.xen_measurement expected_xen_measurement) then
    Error "attest: hypervisor measurement differs from the expected build"
  else Ok ()

let serialize q =
  let b = Bytes.create (32 + 4 + 8 + 32) in
  Bytes.blit q.xen_measurement 0 b 0 32;
  Bytes.set_int32_be b 32 (Int32.of_int (match q.guest_domid with None -> -1 | Some d -> d));
  Bytes.set_int64_be b 36 q.nonce;
  Bytes.blit q.mac 0 b 44 32;
  b

let deserialize b =
  if Bytes.length b <> 76 then None
  else
    let domid = Int32.to_int (Bytes.get_int32_be b 32) in
    Some
      { xen_measurement = Bytes.sub b 0 32;
        guest_domid = (if domid < 0 then None else Some domid);
        nonce = Bytes.get_int64_be b 36;
        mac = Bytes.sub b 44 32 }
