module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Rng = Fidelius_crypto.Rng

type protection =
  | Unprotected
  | Plain_sev
  | Protected of Ctx.t

type codec_choice =
  | Plain_io
  | Aes_ni_io
  | Sev_api_io
  | Gek_io

type disk_config = {
  contents : bytes;
  codec : codec_choice;
  buffer_gvfn : Hw.Addr.vfn;
}

type config = {
  name : string;
  memory_pages : int;
  kernel : bytes list;
  protection : protection;
  disk : disk_config option;
  seed : int64;
}

type built = {
  domain : Xen.Domain.t;
  frontend : Xen.Blkif.frontend option;
  backend : Xen.Blkif.backend option;
  kblk : bytes option;
  built_protection : protection;
}

let default ~name =
  { name; memory_pages = 16; kernel = []; protection = Unprotected; disk = None; seed = 1L }

let ( let* ) = Result.bind

let kernel_pages config =
  match config.kernel with
  | [] -> [ Bytes.make Hw.Addr.page_size '\000' ]
  | pages -> pages

let build_domain hv config =
  match config.protection with
  | Unprotected ->
      Ok (Xen.Hypervisor.create_domain hv ~name:config.name ~memory_pages:config.memory_pages, None)
  | Plain_sev ->
      let* dom =
        Xen.Hypervisor.create_sev_domain hv ~name:config.name
          ~memory_pages:config.memory_pages ~kernel:(kernel_pages config)
      in
      Ok (dom, None)
  | Protected fid ->
      let rng = Rng.create config.seed in
      let prepared =
        Sev.Transport.Owner.prepare ~rng
          ~platform_public:(Sev.Firmware.platform_public hv.Xen.Hypervisor.fw)
          ~policy:Sev.Firmware.policy_nodbg ~kernel_pages:(kernel_pages config)
      in
      let* dom =
        Result.map_error Lifecycle.boot_error_to_string
          (Lifecycle.boot_protected_vm fid ~name:config.name
             ~memory_pages:config.memory_pages ~prepared)
      in
      Ok (dom, Some prepared.Sev.Transport.Owner.kblk)

let attach_disk hv config dom kblk =
  match config.disk with
  | None -> Ok (None, None, kblk)
  | Some disk -> (
      let* fid, codec_kblk =
        match (config.protection, disk.codec) with
        | Protected fid, _ -> Ok (Some fid, kblk)
        | _, Plain_io -> Ok (None, None)
        | _, (Aes_ni_io | Sev_api_io | Gek_io) ->
            Error "xl: protected I/O codecs require Fidelius protection"
      in
      (* With the AES-NI codec the platter holds Kblk ciphertext from the
         start; the other codecs write their own transport format, so the
         image is loaded through the codec after connecting. *)
      let* initial_image, load_after =
        match (disk.codec, codec_kblk) with
        | Plain_io, _ -> Ok (disk.contents, false)
        | Aes_ni_io, Some kblk -> Ok (Io_protect.encrypt_disk ~kblk disk.contents, false)
        | Aes_ni_io, None -> Error "xl: no disk key provisioned"
        | (Sev_api_io | Gek_io), _ ->
            Ok (Bytes.create (max (Bytes.length disk.contents) Xen.Vdisk.sector_size), true)
      in
      let vdisk = Xen.Vdisk.of_bytes initial_image in
      let* fe, be = Xen.Blkif.connect hv dom ~disk:vdisk ~buffer_gvfn:disk.buffer_gvfn in
      let* () =
        match (disk.codec, fid, codec_kblk) with
        | Plain_io, _, _ -> Ok ()
        | Aes_ni_io, Some fid, Some kblk ->
            Xen.Blkif.set_codec fe (Io_protect.aesni_codec fid ~kblk);
            Ok ()
        | Sev_api_io, Some fid, _ ->
            let* io = Io_protect.setup_sev_io fid dom ~md_gvfn:(disk.buffer_gvfn + 1) in
            Xen.Blkif.set_codec fe (Io_protect.sev_codec io);
            Ok ()
        | Gek_io, Some fid, _ ->
            let* io = Io_protect.setup_gek_io fid dom ~md_gvfn:(disk.buffer_gvfn + 1) in
            Xen.Blkif.set_codec fe (Io_protect.gek_codec io);
            Ok ()
        | _ -> Error "xl: inconsistent codec configuration"
      in
      let* () =
        if load_after && Bytes.length disk.contents > 0 then
          (* Populate the encrypted disk through the guest's own codec. *)
          let padded =
            let n = Bytes.length disk.contents in
            let m = (n + Xen.Vdisk.sector_size - 1) / Xen.Vdisk.sector_size
                    * Xen.Vdisk.sector_size in
            let b = Bytes.make m '\000' in
            Bytes.blit disk.contents 0 b 0 n;
            b
          in
          Xen.Blkif.write_sectors fe ~sector:0 padded
        else Ok ()
      in
      Ok (Some fe, Some be, codec_kblk))

let create hv config =
  let* dom, kblk = build_domain hv config in
  match attach_disk hv config dom kblk with
  | Ok (frontend, backend, kblk) ->
      Ok { domain = dom; frontend; backend; kblk; built_protection = config.protection }
  | Error e ->
      (match config.protection with
      | Protected fid -> Lifecycle.shutdown_protected_vm fid dom
      | Unprotected | Plain_sev -> Xen.Hypervisor.destroy_domain hv dom);
      Error e

let destroy hv built =
  match built.built_protection with
  | Protected fid -> Lifecycle.shutdown_protected_vm fid built.domain
  | Unprotected | Plain_sev -> Xen.Hypervisor.destroy_domain hv built.domain
