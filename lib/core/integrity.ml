module Hw = Fidelius_hw
module Xen = Fidelius_xen

type t = {
  ctx : Ctx.t;
  dom : Xen.Domain.t;
  bmt : Hw.Bmt.t;
}

let protect ctx (dom : Xen.Domain.t) =
  let bmt = Hw.Bmt.create ctx.Ctx.machine ~frames:dom.Xen.Domain.frames in
  (* Arm the controller's inline check: any encrypted fetch of a covered
     frame is verified against the tree as it happens, so a misrouted or
     disturbed fill surfaces as a Denial.Denied at the access — not as
     silently garbled guest state. Frames outside the tree pass through. *)
  Hw.Memctrl.set_fetch_check ctx.Ctx.machine.Hw.Machine.ctrl
    (Some
       (fun pfn data ->
         if Hw.Bmt.covered bmt pfn then Hw.Bmt.verify_fetched bmt pfn ~data else Ok ()));
  { ctx; dom; bmt }

let frames_of_range t ~addr ~len =
  let first = Hw.Addr.frame_of addr in
  let last = Hw.Addr.frame_of (addr + max 0 (len - 1)) in
  let rec collect gvfn acc =
    if gvfn > last then Ok (List.rev acc)
    else
      (* Resolve through the guest's own tables: gva -> gfn -> pfn. *)
      match Hw.Pagetable.lookup t.dom.Xen.Domain.gpt gvfn with
      | None -> Error (Printf.sprintf "integrity: gva frame 0x%x unmapped" gvfn)
      | Some gpte -> (
          match Hw.Pagetable.lookup t.dom.Xen.Domain.npt gpte.Hw.Pagetable.frame with
          | None -> Error (Printf.sprintf "integrity: gfn 0x%x unbacked" gpte.Hw.Pagetable.frame)
          | Some npte -> collect (gvfn + 1) (npte.Hw.Pagetable.frame :: acc))
  in
  collect first []

let ( let* ) = Result.bind

let verified_read t ~addr ~len =
  let* frames = frames_of_range t ~addr ~len in
  let* () =
    List.fold_left (fun acc pfn -> let* () = acc in Hw.Bmt.verify t.bmt pfn) (Ok ()) frames
  in
  Ok
    (Xen.Hypervisor.in_guest t.ctx.Ctx.hv t.dom (fun () ->
         Xen.Domain.read t.ctx.Ctx.machine t.dom ~addr ~len))

let guest_write t ~addr data =
  Xen.Hypervisor.in_guest t.ctx.Ctx.hv t.dom (fun () ->
      Xen.Domain.write t.ctx.Ctx.machine t.dom ~addr data);
  match frames_of_range t ~addr ~len:(Bytes.length data) with
  | Ok frames ->
      (* One batch: a write spanning k frames rebuilds each shared
         ancestor once instead of once per frame. *)
      Hw.Bmt.update_many t.bmt frames
  | Error _ -> ()

let verify_domain t = Hw.Bmt.verify_all t.bmt

let root t = Hw.Bmt.root t.bmt
let hashes_performed t = Hw.Bmt.hashes_performed t.bmt
