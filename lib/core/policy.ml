module Hw = Fidelius_hw
module Xen = Fidelius_xen

let deny ctx msg =
  Ctx.audit ctx msg;
  Error msg

let bit v pos = not (Int64.equal (Int64.logand v (Int64.shift_left 1L pos)) 0L)

(* A cross-domain nested mapping is legitimate only when backed by a grant
   entry naming this (owner, mapper) pair for a gfn that resolves to the
   frame, and a GIT intent covering it. *)
let grant_authorizes ctx ~owner_domid ~mapper_domid ~frame ~writable =
  let hv = ctx.Ctx.hv in
  let entries = Xen.Granttab.entries hv.Xen.Hypervisor.granttab in
  List.exists
    (fun (_, (e : Xen.Granttab.entry)) ->
      e.Xen.Granttab.owner = owner_domid
      && e.Xen.Granttab.target = mapper_domid
      && ((not writable) || e.Xen.Granttab.writable)
      && (match Xen.Hypervisor.find_domain hv owner_domid with
         | None -> false
         | Some owner -> (
             match Hw.Pagetable.lookup owner.Xen.Domain.npt e.Xen.Granttab.gfn with
             | Some npte -> npte.Hw.Pagetable.frame = frame
             | None -> false))
      && Result.is_ok
           (Git_table.check ctx.Ctx.git ~initiator:owner_domid ~target:mapper_domid
              ~gfn:e.Xen.Granttab.gfn ~writable))
    entries

let check_npt_update ctx (dom : Xen.Domain.t) gfn proto =
  let pit = ctx.Ctx.pit in
  let existing = Hw.Pagetable.lookup dom.Xen.Domain.npt gfn in
  match proto with
  | None -> (
      match ctx.Ctx.teardown_for with
      | Some d when d = dom.Xen.Domain.domid ->
          (match existing with
          | Some old ->
              let info = Pit.get pit old.Hw.Pagetable.frame in
              Pit.set pit old.Hw.Pagetable.frame { info with valid = false }
          | None -> ());
          Ok ()
      | _ ->
          deny ctx
            (Printf.sprintf "PIT: clearing dom%d NPT gfn 0x%x outside teardown"
               dom.Xen.Domain.domid gfn))
  | Some p -> (
      let info = Pit.get pit p.Hw.Pagetable.frame in
      match existing with
      | Some old when old.Hw.Pagetable.frame = p.Hw.Pagetable.frame -> (
          (* Permission/C-bit change on the same frame. On the domain's own
             memory anything goes (e.g. enable_mem_enc). On a frame it
             merely maps — a shared mapping of some other domain's page —
             widening to writable needs a writable grant+GIT authorization,
             otherwise the hypervisor could silently upgrade a read-only
             share (the grant-widening attack, moved down a level). *)
          let widening = p.Hw.Pagetable.writable && not old.Hw.Pagetable.writable in
          match info.Pit.owner with
          | Pit.Dom d when d = dom.Xen.Domain.domid -> Ok ()
          | Pit.Dom owner when widening && Ctx.is_protected ctx owner ->
              if
                grant_authorizes ctx ~owner_domid:owner ~mapper_domid:dom.Xen.Domain.domid
                  ~frame:p.Hw.Pagetable.frame ~writable:true
              then Ok ()
              else
                deny ctx
                  (Printf.sprintf
                     "PIT: widening dom%d's mapping of dom%d's frame 0x%x to writable denied"
                     dom.Xen.Domain.domid owner p.Hw.Pagetable.frame)
          | Pit.Dom _ | Pit.Nobody -> Ok ()
          | Pit.Xen | Pit.Fidelius ->
              deny ctx
                (Printf.sprintf "PIT: frame 0x%x (%s) may not be remapped in a guest NPT"
                   p.Hw.Pagetable.frame
                   (Pit.owner_to_string info.Pit.owner)))
      | Some old ->
          deny ctx
            (Printf.sprintf
               "PIT: dom%d NPT gfn 0x%x re-pointed from frame 0x%x to 0x%x (replay/remap)"
               dom.Xen.Domain.domid gfn old.Hw.Pagetable.frame p.Hw.Pagetable.frame)
      | None -> (
          match info.Pit.owner with
          | Pit.Dom d when d = dom.Xen.Domain.domid ->
              if info.Pit.usage = Pit.Guest_page || info.Pit.usage = Pit.Shared_io then
                if info.Pit.valid then
                  deny ctx
                    (Printf.sprintf
                       "PIT: frame 0x%x already mapped for dom%d (double mapping)"
                       p.Hw.Pagetable.frame d)
                else begin
                  Pit.set pit p.Hw.Pagetable.frame { info with valid = true };
                  Ok ()
                end
              else
                deny ctx
                  (Printf.sprintf "PIT: frame 0x%x of dom%d is %s, not guest memory"
                     p.Hw.Pagetable.frame d (Pit.usage_to_string info.Pit.usage))
          | Pit.Dom other when Ctx.is_protected ctx other ->
              if
                grant_authorizes ctx ~owner_domid:other ~mapper_domid:dom.Xen.Domain.domid
                  ~frame:p.Hw.Pagetable.frame ~writable:p.Hw.Pagetable.writable
              then Ok ()
              else
                deny ctx
                  (Printf.sprintf
                     "PIT: mapping dom%d's protected frame 0x%x into dom%d denied"
                     other p.Hw.Pagetable.frame dom.Xen.Domain.domid)
          | Pit.Dom _ ->
              (* Unprotected owner: stock Xen semantics, but it must still be
                 a grant-style flow to reach here; allow. *)
              Ok ()
          | Pit.Nobody ->
              if Ctx.is_protected ctx dom.Xen.Domain.domid then
                deny ctx
                  (Printf.sprintf
                     "PIT: frame 0x%x was never assigned to protected dom%d"
                     p.Hw.Pagetable.frame dom.Xen.Domain.domid)
              else Ok ()
          | Pit.Xen | Pit.Fidelius ->
              deny ctx
                (Printf.sprintf "PIT: frame 0x%x (%s/%s) may not enter a guest NPT"
                   p.Hw.Pagetable.frame
                   (Pit.owner_to_string info.Pit.owner)
                   (Pit.usage_to_string info.Pit.usage))))

let check_host_map_update ctx vfn proto =
  match proto with
  | None -> (
      (* Unmapping is mostly the hypervisor's own business, but revoking the
         mapping of a code region would unfetch the monopolized privileged
         instructions (Fidelius text) or the hypervisor's own text — an
         attack on the monitor itself, not mere self-harm. *)
      match Hw.Pagetable.lookup ctx.Ctx.hv.Xen.Hypervisor.host_space vfn with
      | None -> Ok ()
      | Some current -> (
          match (Pit.get ctx.Ctx.pit current.Hw.Pagetable.frame).Pit.usage with
          | Pit.Fidelius_text -> deny ctx "Fidelius text mappings may not be revoked"
          | Pit.Xen_text -> deny ctx "hypervisor text mappings may not be revoked"
          | Pit.Free | Pit.Xen_data | Pit.Xen_pt | Pit.Guest_page | Pit.Guest_npt
          | Pit.Grant_table | Pit.Fidelius_data | Pit.Shared_io -> Ok ()))
  | Some p ->
      let info = Pit.get ctx.Ctx.pit p.Hw.Pagetable.frame in
      if p.Hw.Pagetable.writable && p.Hw.Pagetable.executable then
        deny ctx (Printf.sprintf "W^X: frame 0x%x mapped writable+executable" p.Hw.Pagetable.frame)
      else begin
        ignore vfn;
        match info.Pit.usage with
        | Pit.Fidelius_data | Pit.Fidelius_text ->
            deny ctx
              (Printf.sprintf "frame 0x%x is Fidelius-private and may not be mapped"
                 p.Hw.Pagetable.frame)
        | Pit.Guest_page -> (
            match (info.Pit.owner, ctx.Ctx.boot_window) with
            | Pit.Dom d, Some w when d = w -> Ok () (* kernel-image load window *)
            | Pit.Dom d, _ when Ctx.is_protected ctx d ->
                deny ctx
                  (Printf.sprintf "frame 0x%x belongs to protected dom%d" p.Hw.Pagetable.frame d)
            | _ -> Ok ())
        | Pit.Xen_pt | Pit.Guest_npt | Pit.Grant_table ->
            if p.Hw.Pagetable.writable then
              deny ctx
                (Printf.sprintf "frame 0x%x (%s) must stay read-only for the hypervisor"
                   p.Hw.Pagetable.frame
                   (Pit.usage_to_string info.Pit.usage))
            else Ok ()
        | Pit.Xen_text ->
            if p.Hw.Pagetable.writable then
              deny ctx "hypervisor code pages are write-forbidden"
            else Ok ()
        | Pit.Free | Pit.Xen_data | Pit.Shared_io -> Ok ()
      end

let check_grant_update ctx gref entry =
  ignore gref;
  match entry with
  | None -> Ok ()
  | Some (e : Xen.Granttab.entry) ->
      if Ctx.is_protected ctx e.Xen.Granttab.owner then
        match
          Git_table.check ctx.Ctx.git ~initiator:e.Xen.Granttab.owner
            ~target:e.Xen.Granttab.target ~gfn:e.Xen.Granttab.gfn
            ~writable:e.Xen.Granttab.writable
        with
        | Ok () -> Ok ()
        | Error msg -> deny ctx msg
      else Ok ()

let check_cr0 ctx v =
  let machine = ctx.Ctx.machine in
  if Hw.Cpu.in_fidelius machine.Hw.Machine.cpu then Ok ()
  else if not (bit v 31) then deny ctx "CR0 policy: PG bit cannot be cleared"
  else if not (bit v 16) then deny ctx "CR0 policy: WP bit cannot be cleared"
  else Ok ()

let check_cr4 ctx v =
  let machine = ctx.Ctx.machine in
  if Hw.Cpu.in_fidelius machine.Hw.Machine.cpu then Ok ()
  else if not (bit v 20) then deny ctx "CR4 policy: SMEP bit cannot be cleared"
  else Ok ()

let check_efer ctx v =
  let machine = ctx.Ctx.machine in
  if Hw.Cpu.in_fidelius machine.Hw.Machine.cpu then Ok ()
  else if not (bit v 11) then deny ctx "EFER policy: NXE bit cannot be cleared"
  else Ok ()

let check_cr3 ctx v =
  let host_id = Hw.Pagetable.id ctx.Ctx.hv.Xen.Hypervisor.host_space in
  if Int64.to_int v = host_id then Ok ()
  else deny ctx (Printf.sprintf "CR3 policy: 0x%Lx is not a valid target address space" v)

let write_once ctx ~region =
  if Hashtbl.mem ctx.Ctx.write_once_done region then
    deny ctx (Printf.sprintf "write-once policy: %s already written" region)
  else begin
    Hashtbl.replace ctx.Ctx.write_once_done region ();
    Ok ()
  end

let write_once_range ctx ~region ~off ~len =
  if off < 0 || len <= 0 || off + len > Hw.Addr.page_size then
    deny ctx (Printf.sprintf "write-once: range %d+%d outside the region" off len)
  else begin
    let bits =
      match Hashtbl.find_opt ctx.Ctx.write_once_bits region with
      | Some b -> b
      | None ->
          let b = Bytes.make (Hw.Addr.page_size / 8) '\000' in
          Hashtbl.replace ctx.Ctx.write_once_bits region b;
          b
    in
    let get i = Char.code (Bytes.get bits (i / 8)) land (1 lsl (i mod 8)) <> 0 in
    let set i =
      Bytes.set bits (i / 8) (Char.chr (Char.code (Bytes.get bits (i / 8)) lor (1 lsl (i mod 8))))
    in
    let rec dirty i = i < off + len && (get i || dirty (i + 1)) in
    if dirty off then
      deny ctx
        (Printf.sprintf "write-once policy: %s bytes %d..%d already written" region off
           (off + len - 1))
    else begin
      for i = off to off + len - 1 do set i done;
      Ok ()
    end
  end

let exec_once ctx ~what =
  if Hashtbl.mem ctx.Ctx.exec_once_done what then
    deny ctx (Printf.sprintf "execute-once policy: %s already executed" what)
  else begin
    Hashtbl.replace ctx.Ctx.exec_once_done what ();
    Ok ()
  end
