(** Fidelius installation: late launch, non-bypassable memory isolation,
    binary scan, gated privileged instructions and mediation-hook wiring
    (paper Sections 4.1 and 4.3.1).

    After {!install} returns:

    - the hypervisor's page-table-pages, the guests' NPT pages and the grant
      table are mapped read-only in the hypervisor's address space;
    - PIT, GIT, shadow frames and SEV metadata are unmapped from it;
    - each privileged instruction of Table 2 exists exactly once, on a
      Fidelius page, wrapped in its checking-loop policy; VMRUN and
      [mov CR3] live on pages that are unmapped until a type-3 gate
      opens them;
    - every mediated path of the hypervisor (NPT updates, host-mapping
      updates, grant updates, vmexit/vmrun boundaries, frame
      allocation/release, [pre_sharing_op], [enable_mem_enc]) runs through
      Fidelius gates with policy enforcement;
    - DMA is filtered by the IOMMU to frames whose PIT usage permits it. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen

val install : Xen.Hypervisor.t -> Ctx.t

val protect_table_pages : Ctx.t -> Hw.Pagetable.t -> Pit.usage -> unit
(** Register any new page-table-pages of [table] in the PIT and remap them
    read-only in the host space. Must run inside a WP-cleared window (the
    hooks call it from within their type-1 gate). *)

val mark_pit_frames : Ctx.t -> unit
(** Fixpoint: claim newly allocated PIT radix pages as Fidelius data and
    unmap them from the hypervisor. Must run inside a WP-cleared window. *)

val new_shadow : Ctx.t -> Xen.Domain.t -> Shadow.t
(** Allocate (or fetch) the shadow state for a domain, backed by a
    Fidelius-private frame. *)

val measure_xen_text : Xen.Hypervisor.t -> bytes
(** SHA-256 over the hypervisor's code region — the integrity measurement
    Fidelius takes during its own boot for remote attestation. *)
