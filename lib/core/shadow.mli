(** Guest runtime-state shadowing — Fidelius' software rendering of SEV-ES
    (paper Sections 4.2.1 and 5.1).

    On every vmexit Fidelius copies the VMCB and general-purpose registers
    into a private frame that is unmapped from the hypervisor, then masks
    the live copies down to the fields the exit reason legitimately needs.
    Before VMRUN it verifies the hypervisor's modifications against the
    shadow — only the per-exit-reason updatable set may differ — and
    restores every other register from the shadow. *)

module Hw = Fidelius_hw

val visible_regs : Hw.Vmcb.exit_reason -> Hw.Cpu.reg list
(** Registers left unmasked for the hypervisor to read, by exit reason
    (e.g. CPUID leaves exactly RAX/RBX/RCX/RDX, paper Section 5.1). *)

val updatable_regs : Hw.Vmcb.exit_reason -> Hw.Cpu.reg list
(** Registers whose hypervisor-written values are accepted at re-entry. *)

val visible_fields : Hw.Vmcb.exit_reason -> Hw.Vmcb.field list
(** Save-area fields left unmasked in the live VMCB. *)

val updatable_fields : Hw.Vmcb.exit_reason -> Hw.Vmcb.field list
(** VMCB fields the hypervisor may legitimately change before re-entry
    (typically RIP advance and RAX). *)

val protected_fields : Hw.Vmcb.field list
(** Fields verified against the shadow whenever not explicitly updatable:
    the save area plus the critical control bits (ASID, NP_CR3,
    SEV_ENABLED, NP_ENABLED, INTERCEPTS). *)

type t

val create : Hw.Machine.t -> backing:Hw.Addr.pfn -> t
(** The shadow lives in [backing], a Fidelius-private frame. *)

val backing : t -> Hw.Addr.pfn

val capture : t -> Hw.Machine.t -> Hw.Vmcb.t -> Hw.Vmcb.exit_reason -> unit
(** Exit side: snapshot VMCB + GPRs into the backing frame, then mask the
    live VMCB save area and registers per the exit reason. *)

val verify_and_restore :
  t -> Hw.Machine.t -> Hw.Vmcb.t -> (unit, string) result
(** Entry side: compare the live VMCB against the shadow (modulo the
    updatable set for the captured exit reason); on success, restore the
    non-updatable registers from the shadow and return. On tampering,
    return [Error] naming the field. *)

val last_exit : t -> Hw.Vmcb.exit_reason option

val has_capture : t -> bool
(** Whether a vmexit capture is pending re-entry — [last_exit t <> None]
    without allocating the option. *)
