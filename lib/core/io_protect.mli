(** Runtime disk-I/O protection (paper Section 4.3.5, Figure 4).

    Two para-virtualized encoders for the PV block front-end:

    - {!aesni_codec}: sector-granular AES-XEX under the owner's disk key
      Kblk, tweaked by the sector number — the AES-NI path for processors
      with the instruction set. Both the disk image and everything crossing
      the shared buffer are Kblk ciphertext.
    - {!sev_codec}: the novel SEV-API reuse for processors without AES-NI.
      Two helper firmware contexts are created for the guest: the s-dom
      (perpetually SENDING, sharing the guest's Kvek) encodes outbound data
      Kvek→Ktek through SEND_UPDATE; the r-dom (perpetually RECEIVING,
      sharing Kvek and Ktek) decodes inbound data through RECEIVE_UPDATE.
      Data staged through the guest-private Md buffer page.
    - {!software_codec}: plain software AES, the ablation baseline the paper
      reports as >20x slower than either hardware path. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen

val aesni_codec : Ctx.t -> kblk:bytes -> Xen.Blkif.codec

val software_codec : Ctx.t -> kblk:bytes -> Xen.Blkif.codec
(** Same transformation as {!aesni_codec}, charged at the software-AES
    rate. *)

type sev_io
(** The s-dom/r-dom helper pair for one protected guest. *)

val setup_sev_io :
  Ctx.t -> Xen.Domain.t -> md_gvfn:Hw.Addr.vfn -> (sev_io, string) result
(** Create the helper contexts (LAUNCH shared-Kvek, SEND_START,
    RECEIVE_START) and the guest-private Md staging page. *)

val sev_codec : sev_io -> Xen.Blkif.codec

val helper_handles : sev_io -> int * int
(** (s-dom, r-dom) firmware handles, for inspection/tests. *)

(** {2 Customized-key codec (paper Section 8, suggestion 2)}

    The same data path as {!sev_codec} but through the proposed
    SETENC_GEK/ENC/DEC instruction family: one firmware command to set up
    instead of three, no helper contexts left perpetually in SENDING and
    RECEIVING states, and the guest context itself stays RUNNING. *)

type gek_io

val setup_gek_io :
  Ctx.t -> Xen.Domain.t -> md_gvfn:Hw.Addr.vfn -> (gek_io, string) result

val gek_codec : gek_io -> Xen.Blkif.codec

val gek_id : gek_io -> int

val encrypt_disk : kblk:bytes -> bytes -> bytes
(** Owner-side preparation of an encrypted disk image: the same per-sector
    AES-XEX transformation the AES-NI codec applies, so a disk written this
    way mounts directly under {!aesni_codec}. Length is padded to whole
    sectors. *)

val decrypt_disk : kblk:bytes -> bytes -> bytes
