module Hw = Fidelius_hw
module Vmcb = Hw.Vmcb
module Cpu = Hw.Cpu
module Trace = Fidelius_obs.Trace

let visible_regs = function
  | Vmcb.Cpuid -> [ Cpu.Rax; Cpu.Rbx; Cpu.Rcx; Cpu.Rdx ]
  | Vmcb.Vmmcall -> [ Cpu.Rax; Cpu.Rdi; Cpu.Rsi; Cpu.Rdx; Cpu.R8; Cpu.R9 ]
  | Vmcb.Ioio -> [ Cpu.Rax ]
  | Vmcb.Msr -> [ Cpu.Rax; Cpu.Rcx; Cpu.Rdx ]
  | Vmcb.Npf | Vmcb.Hlt | Vmcb.Intr | Vmcb.Shutdown -> []

let updatable_regs = function
  | Vmcb.Cpuid -> [ Cpu.Rax; Cpu.Rbx; Cpu.Rcx; Cpu.Rdx ]
  | Vmcb.Vmmcall -> [ Cpu.Rax ]
  | Vmcb.Ioio -> [ Cpu.Rax ]
  | Vmcb.Msr -> [ Cpu.Rax; Cpu.Rdx ]
  | Vmcb.Npf | Vmcb.Hlt | Vmcb.Intr | Vmcb.Shutdown -> []

let visible_fields = function
  | Vmcb.Cpuid | Vmcb.Vmmcall | Vmcb.Ioio | Vmcb.Msr -> [ Vmcb.Rax; Vmcb.Rip ]
  | Vmcb.Npf | Vmcb.Hlt | Vmcb.Intr | Vmcb.Shutdown -> []

let updatable_fields = function
  | Vmcb.Cpuid | Vmcb.Vmmcall | Vmcb.Ioio | Vmcb.Msr -> [ Vmcb.Rip; Vmcb.Rax ]
  | Vmcb.Hlt | Vmcb.Intr -> [ Vmcb.Rip ]
  | Vmcb.Npf | Vmcb.Shutdown -> []

let protected_fields =
  Vmcb.save_area @ [ Vmcb.Asid; Vmcb.Np_cr3; Vmcb.Sev_enabled; Vmcb.Np_enabled; Vmcb.Intercepts ]

(* Backing-frame layout: 15 VMCB fields (8 bytes each) at offset 0, the 16
   GPRs at offset 128, exit-reason code at 256, an in-use flag at 264. *)
let field_off f =
  let rec index i = function
    | [] -> assert false
    | x :: rest -> if x = f then i else index (i + 1) rest
  in
  8 * index 0 Vmcb.fields

let reg_off r =
  let rec index i = function
    | [] -> assert false
    | x :: rest -> if x = r then i else index (i + 1) rest
  in
  128 + (8 * index 0 Cpu.regs)

let exit_off = 256
let flag_off = 264

type t = {
  frame : Hw.Addr.pfn;
  mutable captured : Vmcb.exit_reason option;
}

let create machine ~backing =
  ignore machine;
  { frame = backing; captured = None }

let backing t = t.frame

let page (machine : Hw.Machine.t) t = Hw.Physmem.page machine.Hw.Machine.mem t.frame

let capture t machine vmcb reason =
  let cpu = machine.Hw.Machine.cpu in
  let bytes = page machine t in
  (* Snapshot. *)
  List.iter (fun f -> Bytes.set_int64_be bytes (field_off f) (Vmcb.get vmcb f)) Vmcb.fields;
  List.iter (fun r -> Bytes.set_int64_be bytes (reg_off r) (Cpu.get_reg cpu r)) Cpu.regs;
  Bytes.set_int64_be bytes exit_off (Vmcb.exit_reason_to_int64 reason);
  Bytes.set bytes flag_off '\001';
  t.captured <- Some reason;
  if Trace.enabled () then
    Trace.emit (Trace.Shadow_capture (Vmcb.exit_reason_to_string reason));
  (* Mask: zero the save area except the reason's visible fields, and zero
     every register the hypervisor has no business reading. *)
  let vis_f = visible_fields reason and vis_r = visible_regs reason in
  List.iter (fun f -> if not (List.mem f vis_f) then Vmcb.set vmcb f 0L) Vmcb.save_area;
  List.iter (fun r -> if not (List.mem r vis_r) then Cpu.set_reg cpu r 0L) Cpu.regs

let last_exit t = t.captured

let verify_and_restore t machine vmcb =
  match t.captured with
  | None -> Error "shadow: no captured state (VMRUN without a prior vmexit)"
  | Some reason ->
      let cpu = machine.Hw.Machine.cpu in
      let bytes = page machine t in
      let upd_f = updatable_fields reason in
      let vis_f = visible_fields reason in
      (* A non-updatable field must come back exactly as it was handed to
         the hypervisor: the shadow value if it was visible, the mask (zero)
         if it was hidden. *)
      let handed f =
        if List.mem f Vmcb.save_area && not (List.mem f vis_f) then 0L
        else Bytes.get_int64_be bytes (field_off f)
      in
      let tampered =
        List.find_opt
          (fun f ->
            (not (List.mem f upd_f)) && not (Int64.equal (Vmcb.get vmcb f) (handed f)))
          protected_fields
      in
      (match tampered with
      | Some f ->
          if Trace.enabled () then Trace.emit (Trace.Shadow_verify { ok = false });
          Error
            (Printf.sprintf "shadow: VMCB field %s tampered during %s exit"
               (Vmcb.field_to_string f)
               (Vmcb.exit_reason_to_string reason))
      | None ->
          if Trace.enabled () then Trace.emit (Trace.Shadow_verify { ok = true });
          (* Restore: non-updatable fields and registers come back from the
             shadow; the hypervisor's updates to the allowed set stand. *)
          let upd_r = updatable_regs reason in
          List.iter
            (fun f ->
              if not (List.mem f upd_f) then
                Vmcb.set vmcb f (Bytes.get_int64_be bytes (field_off f)))
            Vmcb.fields;
          List.iter
            (fun r ->
              if not (List.mem r upd_r) then
                Cpu.set_reg cpu r (Bytes.get_int64_be bytes (reg_off r)))
            Cpu.regs;
          t.captured <- None;
          Bytes.set bytes flag_off '\000';
          Ok ())
