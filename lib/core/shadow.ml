module Hw = Fidelius_hw
module Vmcb = Hw.Vmcb
module Cpu = Hw.Cpu
module Trace = Fidelius_obs.Trace

let visible_regs = function
  | Vmcb.Cpuid -> [ Cpu.Rax; Cpu.Rbx; Cpu.Rcx; Cpu.Rdx ]
  | Vmcb.Vmmcall -> [ Cpu.Rax; Cpu.Rdi; Cpu.Rsi; Cpu.Rdx; Cpu.R8; Cpu.R9 ]
  | Vmcb.Ioio -> [ Cpu.Rax ]
  | Vmcb.Msr -> [ Cpu.Rax; Cpu.Rcx; Cpu.Rdx ]
  | Vmcb.Npf | Vmcb.Hlt | Vmcb.Intr | Vmcb.Shutdown -> []

let updatable_regs = function
  | Vmcb.Cpuid -> [ Cpu.Rax; Cpu.Rbx; Cpu.Rcx; Cpu.Rdx ]
  | Vmcb.Vmmcall -> [ Cpu.Rax ]
  | Vmcb.Ioio -> [ Cpu.Rax ]
  | Vmcb.Msr -> [ Cpu.Rax; Cpu.Rdx ]
  | Vmcb.Npf | Vmcb.Hlt | Vmcb.Intr | Vmcb.Shutdown -> []

let visible_fields = function
  | Vmcb.Cpuid | Vmcb.Vmmcall | Vmcb.Ioio | Vmcb.Msr -> [ Vmcb.Rax; Vmcb.Rip ]
  | Vmcb.Npf | Vmcb.Hlt | Vmcb.Intr | Vmcb.Shutdown -> []

let updatable_fields = function
  | Vmcb.Cpuid | Vmcb.Vmmcall | Vmcb.Ioio | Vmcb.Msr -> [ Vmcb.Rip; Vmcb.Rax ]
  | Vmcb.Hlt | Vmcb.Intr -> [ Vmcb.Rip ]
  | Vmcb.Npf | Vmcb.Shutdown -> []

let protected_fields =
  Vmcb.save_area @ [ Vmcb.Asid; Vmcb.Np_cr3; Vmcb.Sev_enabled; Vmcb.Np_enabled; Vmcb.Intercepts ]

(* ---- preindexed views -------------------------------------------------

   The reason-keyed lists above stay the single source of truth; at module
   init they are folded into per-reason bitmasks over the dense VMCB-field
   and GPR indices, so the per-crossing capture/verify/restore loops are
   straight [for] loops testing mask bits — no [List.mem] scans and no
   allocation. *)

let reason_index = function
  | Vmcb.Cpuid -> 0 | Vmcb.Hlt -> 1 | Vmcb.Vmmcall -> 2 | Vmcb.Npf -> 3
  | Vmcb.Ioio -> 4 | Vmcb.Msr -> 5 | Vmcb.Intr -> 6 | Vmcb.Shutdown -> 7

let reasons =
  [| Vmcb.Cpuid; Vmcb.Hlt; Vmcb.Vmmcall; Vmcb.Npf;
     Vmcb.Ioio; Vmcb.Msr; Vmcb.Intr; Vmcb.Shutdown |]

let field_mask l = List.fold_left (fun m f -> m lor (1 lsl Vmcb.index f)) 0 l
let reg_mask l = List.fold_left (fun m r -> m lor (1 lsl Cpu.reg_index r)) 0 l

let vis_f_masks = Array.map (fun r -> field_mask (visible_fields r)) reasons
let upd_f_masks = Array.map (fun r -> field_mask (updatable_fields r)) reasons
let vis_r_masks = Array.map (fun r -> reg_mask (visible_regs r)) reasons
let upd_r_masks = Array.map (fun r -> reg_mask (updatable_regs r)) reasons
let save_area_mask = field_mask Vmcb.save_area

(* Protected fields as dense indices, preserving [protected_fields] order
   so a tamper report names the same field the list-scan version did. *)
let protected_idx = Array.of_list (List.map Vmcb.index protected_fields)

(* Backing-frame layout: 15 VMCB fields (8 bytes each) at offset 0 in
   {!Vmcb.fields} order, the 16 GPRs at offset 128 in {!Cpu.regs} order,
   exit-reason code at 256, an in-use flag at 264. *)
let exit_off = 256
let flag_off = 264

type t = {
  frame : Hw.Addr.pfn;
  (* The backing frame stays the externally visible artifact (it is what
     Fidelius unmaps from the hypervisor); [snap_fields]/[snap_regs] cache
     the identical [int64] values so verify/restore move pointers between
     arrays instead of re-boxing each field out of the page bytes. *)
  page : bytes;
  snap_fields : int64 array;
  snap_regs : int64 array;
  mutable has_capture : bool;
  mutable reason : Vmcb.exit_reason;
}

let create (machine : Hw.Machine.t) ~backing =
  { frame = backing;
    page = Hw.Physmem.page machine.Hw.Machine.mem backing;
    snap_fields = Array.make Vmcb.nr_fields 0L;
    snap_regs = Array.make Cpu.nr_regs 0L;
    has_capture = false;
    reason = Vmcb.Cpuid }

let backing t = t.frame

let capture t machine vmcb reason =
  let cpu = machine.Hw.Machine.cpu in
  let bytes = t.page in
  (* Snapshot: arrays first (pointer moves), then one fused pass that
     serializes each snapshotted value into the backing frame and applies
     the mask — zero the save area except the reason's visible fields, and
     zero every register the hypervisor has no business reading. *)
  Vmcb.snapshot_into vmcb t.snap_fields;
  Cpu.snapshot_regs_into cpu t.snap_regs;
  let ri = reason_index reason in
  let vis_f = vis_f_masks.(ri) and vis_r = vis_r_masks.(ri) in
  for i = 0 to Vmcb.nr_fields - 1 do
    Bytes.set_int64_be bytes (8 * i) (Array.unsafe_get t.snap_fields i);
    if save_area_mask land (1 lsl i) <> 0 && vis_f land (1 lsl i) = 0 then
      Vmcb.unsafe_set_i vmcb i 0L
  done;
  for i = 0 to Cpu.nr_regs - 1 do
    Bytes.set_int64_be bytes (128 + (8 * i)) (Array.unsafe_get t.snap_regs i);
    if vis_r land (1 lsl i) = 0 then Cpu.unsafe_set_reg_i cpu i 0L
  done;
  Bytes.set_int64_be bytes exit_off (Vmcb.exit_reason_to_int64 reason);
  Bytes.set bytes flag_off '\001';
  t.has_capture <- true;
  t.reason <- reason;
  if Trace.enabled () then
    Trace.emit (Trace.Shadow_capture (Vmcb.exit_reason_to_string reason))

let has_capture t = t.has_capture
let last_exit t = if t.has_capture then Some t.reason else None

let verify_and_restore t machine vmcb =
  if not t.has_capture then
    Error "shadow: no captured state (VMRUN without a prior vmexit)"
  else begin
    let reason = t.reason in
    let cpu = machine.Hw.Machine.cpu in
    let bytes = t.page in
    let ri = reason_index reason in
    let upd_f = upd_f_masks.(ri) and vis_f = vis_f_masks.(ri) in
    (* A non-updatable field must come back exactly as it was handed to
       the hypervisor: the shadow value if it was visible, the mask (zero)
       if it was hidden. *)
    let tampered = ref (-1) in
    let n = Array.length protected_idx in
    let k = ref 0 in
    while !tampered < 0 && !k < n do
      let i = Array.unsafe_get protected_idx !k in
      if upd_f land (1 lsl i) = 0 then begin
        let handed =
          if save_area_mask land (1 lsl i) <> 0 && vis_f land (1 lsl i) = 0 then 0L
          else Array.unsafe_get t.snap_fields i
        in
        if not (Int64.equal (Vmcb.unsafe_get_i vmcb i) handed) then tampered := i
      end;
      incr k
    done;
    if !tampered >= 0 then begin
      if Trace.enabled () then Trace.emit (Trace.Shadow_verify { ok = false });
      Error
        (Printf.sprintf "shadow: VMCB field %s tampered during %s exit"
           (Vmcb.field_to_string (Vmcb.field_of_index !tampered))
           (Vmcb.exit_reason_to_string reason))
    end
    else begin
      if Trace.enabled () then Trace.emit (Trace.Shadow_verify { ok = true });
      (* Restore: non-updatable fields and registers come back from the
         shadow; the hypervisor's updates to the allowed set stand. *)
      let upd_r = upd_r_masks.(ri) in
      for i = 0 to Vmcb.nr_fields - 1 do
        if upd_f land (1 lsl i) = 0 then
          Vmcb.unsafe_set_i vmcb i (Array.unsafe_get t.snap_fields i)
      done;
      for i = 0 to Cpu.nr_regs - 1 do
        if upd_r land (1 lsl i) = 0 then
          Cpu.unsafe_set_reg_i cpu i (Array.unsafe_get t.snap_regs i)
      done;
      t.has_capture <- false;
      Bytes.set bytes flag_off '\000';
      Ok ()
    end
  end
