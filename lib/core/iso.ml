module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sha256 = Fidelius_crypto.Sha256

(* Charge site of the shadowing round trip, interned once. *)
let c_shadow = Hw.Cost.intern "shadow"

let raw_map ctx pfn proto =
  let hv = ctx.Ctx.hv in
  Hw.Mmu.set_pte ctx.Ctx.machine ~space:hv.Xen.Hypervisor.host_space
    ~table:hv.Xen.Hypervisor.host_space pfn proto

let identity pfn ~writable ~executable =
  Some { Hw.Pagetable.frame = pfn; writable; executable; c_bit = false }

let measure_xen_text hv =
  let ctx = Sha256.init () in
  List.iter
    (fun pfn ->
      Sha256.feed ctx (Hw.Physmem.read_raw hv.Xen.Hypervisor.machine.Hw.Machine.mem pfn ~off:0
           ~len:Hw.Addr.page_size))
    hv.Xen.Hypervisor.xen_text;
  Sha256.finalize ctx

(* Claim newly allocated PIT radix pages as Fidelius data and unmap them.
   Marking can itself allocate radix pages, so iterate to a fixpoint. *)
let mark_pit_frames ctx =
  let rec loop () =
    let fresh =
      List.filter
        (fun pfn -> (Pit.get ctx.Ctx.pit pfn).Pit.usage <> Pit.Fidelius_data)
        (Pit.tree_frames ctx.Ctx.pit)
    in
    if fresh <> [] then begin
      List.iter
        (fun pfn ->
          Pit.set ctx.Ctx.pit pfn
            { Pit.owner = Pit.Fidelius; usage = Pit.Fidelius_data; asid = 0; valid = true };
          raw_map ctx pfn None)
        fresh;
      loop ()
    end
  in
  loop ()

let protect_table_pages ctx table usage =
  List.iter
    (fun pfn ->
      let info = Pit.get ctx.Ctx.pit pfn in
      if info.Pit.usage <> usage then begin
        Pit.set ctx.Ctx.pit pfn { Pit.owner = Pit.Xen; usage; asid = 0; valid = true };
        raw_map ctx pfn (identity pfn ~writable:false ~executable:false)
      end)
    (Hw.Pagetable.backing_frames table);
  mark_pit_frames ctx

let new_shadow ctx (dom : Xen.Domain.t) =
  match Hashtbl.find ctx.Ctx.shadows dom.Xen.Domain.domid with
  | s -> s
  | exception Not_found ->
      let machine = ctx.Ctx.machine in
      let backing = Hw.Machine.alloc_frame machine in
      Pit.set ctx.Ctx.pit backing
        { Pit.owner = Pit.Fidelius; usage = Pit.Fidelius_data; asid = 0; valid = true };
      (* Shadow frames are Fidelius-private: unmapped from the hypervisor.
         This runs outside a gate (domain-setup time), so open a WP window
         of our own. *)
      let cpu = machine.Hw.Machine.cpu in
      Hw.Cpu.enter_fidelius cpu;
      Hw.Cpu.priv_set_wp cpu false;
      raw_map ctx backing None;
      mark_pit_frames ctx;
      Hw.Cpu.priv_set_wp cpu true;
      Hw.Cpu.leave_fidelius cpu;
      let s = Shadow.create machine ~backing in
      Hashtbl.replace ctx.Ctx.shadows dom.Xen.Domain.domid s;
      s

(* ---- mediation hooks -------------------------------------------------- *)

let ( let* ) = Result.bind

(* A malicious or buggy hypervisor can drive the mediated paths into
   hardware faults (e.g. after unmapping its own page-table-pages); surface
   those as errors rather than unwinding through the hook. *)
let catching f =
  try f () with Hw.Mmu.Fault { reason; _ } -> Error ("fault during mediated update: " ^ reason)

let install_hooks ctx =
  let hv = ctx.Ctx.hv in
  let machine = ctx.Ctx.machine in
  let med = hv.Xen.Hypervisor.med in
  let host = hv.Xen.Hypervisor.host_space in

  med.Xen.Hypervisor.npt_update <-
    (fun dom gfn proto ->
      Gate.with_type1 ctx (fun () -> catching (fun () ->
          let* () = Policy.check_npt_update ctx dom gfn proto in
          Hw.Mmu.set_pte machine ~space:host ~table:dom.Xen.Domain.npt gfn proto;
          protect_table_pages ctx dom.Xen.Domain.npt Pit.Guest_npt;
          Ok ())));

  med.Xen.Hypervisor.host_map_update <-
    (fun vfn proto ->
      Gate.with_type1 ctx (fun () -> catching (fun () ->
          let* () = Policy.check_host_map_update ctx vfn proto in
          Hw.Mmu.set_pte machine ~space:host ~table:host vfn proto;
          protect_table_pages ctx host Pit.Xen_pt;
          Ok ())));

  med.Xen.Hypervisor.grant_update <-
    (fun gref entry ->
      Gate.with_type1 ctx (fun () -> catching (fun () ->
          let* () = Policy.check_grant_update ctx gref entry in
          let old = Xen.Granttab.get hv.Xen.Hypervisor.granttab gref in
          Xen.Granttab.set machine ~space:host hv.Xen.Hypervisor.granttab gref entry;
          (* Maintain the hypervisor-side view of protected guests' shared
             I/O frames: grant to dom0 maps the frame back in, revocation
             takes it out. *)
          let resolve (e : Xen.Granttab.entry) =
            match Xen.Hypervisor.find_domain hv e.Xen.Granttab.owner with
            | None -> None
            | Some owner -> (
                match Hw.Pagetable.lookup owner.Xen.Domain.npt e.Xen.Granttab.gfn with
                | Some npte -> Some npte.Hw.Pagetable.frame
                | None -> None)
          in
          (match entry with
          | Some e when Ctx.is_protected ctx e.Xen.Granttab.owner && e.Xen.Granttab.target = 0
            -> (
              match resolve e with
              | Some frame ->
                  let info = Pit.get ctx.Ctx.pit frame in
                  Pit.set ctx.Ctx.pit frame { info with Pit.usage = Pit.Shared_io };
                  raw_map ctx frame
                    (identity frame ~writable:e.Xen.Granttab.writable ~executable:false)
              | None -> ())
          | Some _ -> ()
          | None -> (
              match old with
              | Some e when Ctx.is_protected ctx e.Xen.Granttab.owner -> (
                  match resolve e with
                  | Some frame ->
                      let info = Pit.get ctx.Ctx.pit frame in
                      Pit.set ctx.Ctx.pit frame { info with Pit.usage = Pit.Guest_page };
                      if e.Xen.Granttab.target = 0 then raw_map ctx frame None;
                      (* Revoke every cross-domain nested mapping of the
                         frame: a dead grant must not leave the peer with
                         lingering access. *)
                      List.iter
                        (fun (d : Xen.Domain.t) ->
                          if d.Xen.Domain.domid <> e.Xen.Granttab.owner then
                            List.iter
                              (fun (gfn, _) ->
                                Hw.Mmu.set_pte machine ~space:host ~table:d.Xen.Domain.npt gfn
                                  None)
                              (Hw.Pagetable.frame_mapped d.Xen.Domain.npt frame))
                        hv.Xen.Hypervisor.domains
                  | None -> ())
              | Some _ | None -> ()));
          mark_pit_frames ctx;
          Ok ())));

  med.Xen.Hypervisor.on_vmexit <-
    (fun dom reason ->
      if Ctx.is_protected ctx dom.Xen.Domain.domid then begin
        Hw.Cost.charge_id machine.Hw.Machine.ledger c_shadow
          (machine.Hw.Machine.costs.Hw.Cost.shadow_roundtrip / 2);
        let shadow = new_shadow ctx dom in
        Shadow.capture shadow machine dom.Xen.Domain.vmcb reason
      end);

  med.Xen.Hypervisor.before_vmrun <-
    (fun dom ->
      if Ctx.is_protected ctx dom.Xen.Domain.domid then begin
        Hw.Cost.charge_id machine.Hw.Machine.ledger c_shadow
          ((machine.Hw.Machine.costs.Hw.Cost.shadow_roundtrip + 1) / 2);
        let shadow = new_shadow ctx dom in
        if not (Shadow.has_capture shadow) then
          (* First entry: the VMCB was legitimately prepared by the boot
             flow; there is nothing to verify against yet. *)
          Ok ()
        else
          match Shadow.verify_and_restore shadow machine dom.Xen.Domain.vmcb with
          | Ok () -> Ok ()
          | Error msg ->
              Ctx.audit ctx msg;
              Error msg
      end
      else Ok ());

  med.Xen.Hypervisor.vmrun_gate <-
    (fun f -> Gate.with_type3 ctx ~pfns:ctx.Ctx.vmrun_pfns ~executable:true f);

  med.Xen.Hypervisor.on_guest_frame_alloc <-
    (fun dom pfn ->
      let result =
        Gate.with_type1 ctx (fun () ->
            Pit.set ctx.Ctx.pit pfn
              { Pit.owner = Pit.Dom dom.Xen.Domain.domid;
                usage = Pit.Guest_page;
                asid = dom.Xen.Domain.asid;
                valid = false };
            if
              Ctx.is_protected ctx dom.Xen.Domain.domid || ctx.Ctx.next_domain_protected
            then raw_map ctx pfn None;
            mark_pit_frames ctx;
            Ok ())
      in
      (* A refused gate here is Fidelius denying the transition, not a
         harness crash: raise the Denial-class error the attack runner
         (and the fault matrix) classify as an intentional block. *)
      match result with Ok () -> () | Error e -> Hw.Denial.deny "frame-alloc hook: %s" e);

  med.Xen.Hypervisor.on_guest_frame_release <-
    (fun dom pfn ->
      let result =
        Gate.with_type1 ctx (fun () ->
            ignore dom;
            Pit.set ctx.Ctx.pit pfn
              { Pit.owner = Pit.Nobody; usage = Pit.Free; asid = 0; valid = false };
            Hw.Cache.invalidate_page machine.Hw.Machine.cache pfn;
            raw_map ctx pfn (identity pfn ~writable:true ~executable:false);
            mark_pit_frames ctx;
            Ok ())
      in
      match result with Ok () -> () | Error e -> Hw.Denial.deny "frame-release hook: %s" e);

  med.Xen.Hypervisor.pre_sharing <-
    (fun dom ~target ~gfn ~nr ~writable ->
      Git_table.record ctx.Ctx.git
        { Git_table.initiator = dom.Xen.Domain.domid; target; gfn; nr; writable });

  med.Xen.Hypervisor.balloon_release <-
    (fun dom ~gfn ->
      (* Guest-initiated (it arrives on the domain's own hypercall path),
         so Fidelius authorizes the unmap under teardown authority for just
         this entry, scrubs the frame and hands it back to the host pool. *)
      match Hw.Pagetable.lookup dom.Xen.Domain.npt gfn with
      | None -> Error "balloon: gfn not backed"
      | Some npte ->
          let pfn = npte.Hw.Pagetable.frame in
          let saved = ctx.Ctx.teardown_for in
          ctx.Ctx.teardown_for <- Some dom.Xen.Domain.domid;
          let result = med.Xen.Hypervisor.npt_update dom gfn None in
          ctx.Ctx.teardown_for <- saved;
          let* () = result in
          dom.Xen.Domain.frames <- List.filter (fun f -> f <> pfn) dom.Xen.Domain.frames;
          med.Xen.Hypervisor.on_guest_frame_release dom pfn;
          Hw.Machine.free_frame machine pfn;
          Ok ());

  med.Xen.Hypervisor.enable_mem_enc <-
    (fun dom ->
      (* Set the C-bit on every nested mapping of the guest; each update is
         a same-frame permission change, so the PIT policy admits it. *)
      List.fold_left
        (fun acc (gfn, (p : Hw.Pagetable.proto)) ->
          let* () = acc in
          med.Xen.Hypervisor.npt_update dom gfn (Some { p with Hw.Pagetable.c_bit = true }))
        (Ok ())
        (Hw.Pagetable.mapped_frames dom.Xen.Domain.npt))

(* ---- privileged-instruction rehoming ---------------------------------- *)

let place_gated_insns ctx =
  let machine = ctx.Ctx.machine in
  let cpu = machine.Hw.Machine.cpu in
  let insns = machine.Hw.Machine.insns in
  (* All tested bits sit below 62, so the untagged-int view is exact and
     the extraction never boxes an intermediate [int64]. *)
  let bit v pos = (Int64.to_int v lsr pos) land 1 = 1 in
  let fid_page = List.hd ctx.Ctx.fid_text in
  let gate2 check apply v =
    (* The checking loop charges only hypervisor-originated executions;
       Fidelius' own pass through the monopolized instance is part of the
       surrounding gate's budget. *)
    if not (Hw.Cpu.in_fidelius cpu) then Gate.charge_type2 ctx;
    match check v with
    | Ok () ->
        apply v;
        Ok ()
    | Error e -> Error e
  in
  let scrub_and_place op ~page handler =
    Hw.Insn.scrub insns op ~keep:(-1);
    Hw.Insn.place insns op ~page ~handler
  in
  scrub_and_place Hw.Insn.Mov_cr0 ~page:fid_page
    (gate2 (Policy.check_cr0 ctx) (fun v ->
         Hw.Cpu.priv_set_wp cpu (bit v 16);
         Hw.Cpu.priv_set_paging cpu (bit v 31)));
  scrub_and_place Hw.Insn.Mov_cr4 ~page:fid_page
    (gate2 (Policy.check_cr4 ctx) (fun v -> Hw.Cpu.priv_set_smep cpu (bit v 20)));
  scrub_and_place Hw.Insn.Wrmsr ~page:fid_page
    (gate2 (Policy.check_efer ctx) (fun v -> Hw.Cpu.priv_set_nxe cpu (bit v 11)));
  scrub_and_place Hw.Insn.Lgdt ~page:fid_page
    (gate2 (fun _ -> Policy.exec_once ctx ~what:"lgdt") (fun _ -> ()));
  scrub_and_place Hw.Insn.Lidt ~page:fid_page
    (gate2 (fun _ -> Policy.exec_once ctx ~what:"lidt") (fun _ -> ()));
  (* mov CR3 and VMRUN live on normally-unmapped pages (type-3 gated). *)
  scrub_and_place Hw.Insn.Mov_cr3 ~page:ctx.Ctx.cr3_page (fun v ->
      match Policy.check_cr3 ctx v with
      | Ok () ->
          Hw.Cpu.priv_set_cr3 cpu (Int64.to_int v);
          Hw.Tlb.flush_all machine.Hw.Machine.tlb;
          Ok ()
      | Error e -> Error e);
  scrub_and_place Hw.Insn.Vmrun ~page:ctx.Ctx.vmrun_page (fun v ->
      Xen.Hypervisor.vmrun_effect ctx.Ctx.hv v)

(* ---- install ----------------------------------------------------------- *)

let install hv =
  let machine = hv.Xen.Hypervisor.machine in
  let cpu = machine.Hw.Machine.cpu in
  let xen_measurement = measure_xen_text hv in
  let fid_text = Hw.Machine.alloc_frames machine 2 in
  let vmrun_page = Hw.Machine.alloc_frame machine in
  let cr3_page = Hw.Machine.alloc_frame machine in
  let pit = Pit.create machine in
  let git = Git_table.create machine in
  let ctx =
    { Ctx.hv;
      machine;
      pit;
      git;
      shadows = Hashtbl.create 8;
      fid_text;
      vmrun_page;
      vmrun_pfns = [ vmrun_page ];
      cr3_page;
      host_exec_ok =
        (let host = hv.Xen.Hypervisor.host_space in
         fun pfn -> Hw.Mmu.exec_ok machine host pfn);
      xen_measurement;
      protected_domids = [];
      next_domain_protected = false;
      teardown_for = None;
      boot_window = None;
      gate1_count = 0;
      gate2_count = 0;
      gate3_count = 0;
      violations = [];
      write_once_done = Hashtbl.create 8;
      exec_once_done = Hashtbl.create 8;
      write_once_bits = Hashtbl.create 8 }
  in
  (* PIT inventory of the running system. *)
  let mark pfn owner usage =
    Pit.set pit pfn { Pit.owner; usage; asid = 0; valid = true }
  in
  List.iter (fun pfn -> mark pfn Pit.Xen Pit.Xen_text) hv.Xen.Hypervisor.xen_text;
  List.iter
    (fun pfn -> mark pfn Pit.Xen Pit.Grant_table)
    (Xen.Granttab.backing_frames hv.Xen.Hypervisor.granttab);
  List.iter (fun pfn -> mark pfn Pit.Fidelius Pit.Fidelius_text) fid_text;
  mark vmrun_page Pit.Fidelius Pit.Fidelius_text;
  mark cr3_page Pit.Fidelius Pit.Fidelius_text;
  List.iter (fun pfn -> mark pfn Pit.Fidelius Pit.Fidelius_data) (Git_table.backing_frames git);
  (* Remap the world. Still inside Fidelius' own boot: open a WP window for
     the stores that will progressively lock the tables. *)
  Hw.Cpu.enter_fidelius cpu;
  Hw.Cpu.priv_set_wp cpu false;
  List.iter
    (fun pfn -> raw_map ctx pfn (identity pfn ~writable:false ~executable:true))
    fid_text;
  raw_map ctx vmrun_page None;
  raw_map ctx cr3_page None;
  List.iter (fun pfn -> raw_map ctx pfn None) (Git_table.backing_frames git);
  List.iter
    (fun pfn -> raw_map ctx pfn (identity pfn ~writable:false ~executable:false))
    (Xen.Granttab.backing_frames hv.Xen.Hypervisor.granttab);
  mark_pit_frames ctx;
  (* Finally: every page-table-page of the host space becomes read-only for
     the hypervisor, and is recorded as such. *)
  protect_table_pages ctx hv.Xen.Hypervisor.host_space Pit.Xen_pt;
  Hw.Cpu.priv_set_wp cpu true;
  Hw.Cpu.leave_fidelius cpu;
  (* Binary scan and instruction rehoming, then the mediation hooks. *)
  place_gated_insns ctx;
  install_hooks ctx;
  (* IOMMU: DMA may touch only frames whose PIT usage is harmless. *)
  Hw.Machine.set_iommu machine
    (Some
       (fun pfn ->
         match (Pit.get pit pfn).Pit.usage with
         | Pit.Shared_io | Pit.Xen_data | Pit.Free -> true
         | Pit.Xen_text | Pit.Xen_pt | Pit.Guest_page | Pit.Guest_npt | Pit.Grant_table
         | Pit.Fidelius_text | Pit.Fidelius_data -> false));
  ctx
