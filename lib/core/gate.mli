(** The three gate types securing transitions between the hypervisor's and
    Fidelius' contexts (paper Section 4.1.3, Figure 3).

    - Type 1 (306 cycles): disable interrupts, switch stacks, clear CR0.WP —
      turning Xen's read-only views of the protected structures writable for
      the duration of a policy-checked update — then restore. The WP write
      itself goes through the monopolized [mov CR0] instance, so the
      instruction-placement invariant is exercised on every crossing.
    - Type 2 (16 cycles): the checking loop wrapped around a monopolized
      privileged instruction; pure policy cost, accounted where the
      instruction handlers run.
    - Type 3 (339 cycles): temporarily add a mapping for a normally-unmapped
      page (VMRUN, mov CR3, shadow frames, SEV metadata), run, withdraw the
      mapping and flush its TLB entry (128 of the 339 cycles). *)

module Hw = Fidelius_hw

val with_type1 : Ctx.t -> (unit -> ('a, string) result) -> ('a, string) result
(** Run a protected-resource update inside the WP-cleared window. Nested
    entry is rejected (the gate is not re-entrant). *)

val charge_type2 : Ctx.t -> unit
(** Account one checking-loop execution. *)

val with_type3 :
  Ctx.t -> pfns:Hw.Addr.pfn list -> executable:bool ->
  (unit -> ('a, string) result) -> ('a, string) result
(** Map [pfns] identity into the host space for the duration of [f], then
    withdraw and flush. [executable] selects RX (instruction pages) versus
    RW (data pages like the shadow frames). *)

val counts : Ctx.t -> int * int * int
