module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Aes = Fidelius_crypto.Aes
module Modes = Fidelius_crypto.Modes
module Rng = Fidelius_crypto.Rng

let sector_size = Xen.Vdisk.sector_size

(* Tweak space: each sector owns 64 consecutive tweak values (only 32 are
   used), so sectors never collide. *)
let tweaks_per_sector = 64

let sector_tweak sector = Int64.of_int (sector * tweaks_per_sector)

(* Whole-run transform: a batch of consecutive sectors rides ONE bulk Aes
   call (like the Memctrl page path) instead of a per-sector loop — the
   sector-lane tweak layout above is exactly what Modes.xex_*_sectors
   encodes. Byte-identical to per-sector Modes.xex_encrypt calls. *)
let xex_sectors ~key ~sector ~encrypt data =
  let n = Bytes.length data in
  if n mod sector_size <> 0 then invalid_arg "io_protect: data must be whole sectors";
  let out = Bytes.create n in
  (if encrypt then Modes.xex_encrypt_sectors else Modes.xex_decrypt_sectors)
    key ~tweak0:(sector_tweak sector)
    ~sector_stride:(Int64.of_int tweaks_per_sector)
    ~sector_bytes:sector_size ~src:data ~src_off:0 ~dst:out ~dst_off:0
    ~nsectors:(n / sector_size);
  out

let per_sector f ~sector data =
  let n = Bytes.length data in
  if n mod sector_size <> 0 then invalid_arg "io_protect: data must be whole sectors";
  let out = Bytes.create n in
  for i = 0 to (n / sector_size) - 1 do
    let piece = Bytes.sub data (i * sector_size) sector_size in
    Bytes.blit (f ~sector:(sector + i) piece) 0 out (i * sector_size) sector_size
  done;
  out

(* Per-codec charge labels, interned once (at module init for the fixed
   codecs, at codec construction for [keyed_codec]) so the per-transfer
   charge never hashes the label string. *)
let c_io_sev = Hw.Cost.intern "io-encode-sev"
let c_io_gek = Hw.Cost.intern "io-encode-gek"

let charge_blocks ctx label_id rate data =
  let machine = ctx.Ctx.machine in
  let blocks = (Bytes.length data + Hw.Addr.block_size - 1) / Hw.Addr.block_size in
  let extra = max 0 (rate - machine.Hw.Machine.costs.Hw.Cost.memcpy_block) in
  Hw.Cost.charge_id machine.Hw.Machine.ledger label_id (blocks * extra)

let keyed_codec ctx ~name ~rate ~label ~kblk =
  let key = Aes.expand kblk in
  let label_id = Hw.Cost.intern label in
  { Xen.Blkif.codec_name = name;
    encode =
      (fun ~sector data ->
        charge_blocks ctx label_id rate data;
        xex_sectors ~key ~sector ~encrypt:true data);
    decode =
      (fun ~sector data ->
        charge_blocks ctx label_id rate data;
        xex_sectors ~key ~sector ~encrypt:false data) }

let aesni_codec ctx ~kblk =
  keyed_codec ctx ~name:"aes-ni"
    ~rate:ctx.Ctx.machine.Hw.Machine.costs.Hw.Cost.aesni_block
    ~label:"io-encode-aesni" ~kblk

let software_codec ctx ~kblk =
  keyed_codec ctx ~name:"software-aes"
    ~rate:ctx.Ctx.machine.Hw.Machine.costs.Hw.Cost.sw_aes_block
    ~label:"io-encode-sw" ~kblk

type sev_io = {
  io_ctx : Ctx.t;
  dom : Xen.Domain.t;
  s_handle : int;
  r_handle : int;
  md_pfn : Hw.Addr.pfn;
  md_gva : int;
}

let ( let* ) = Result.bind

let setup_sev_io ctx (dom : Xen.Domain.t) ~md_gvfn =
  let hv = ctx.Ctx.hv in
  let machine = ctx.Ctx.machine in
  let fw = hv.Xen.Hypervisor.fw in
  match dom.Xen.Domain.sev_handle with
  | None -> Error "sev_io: domain is not SEV-protected"
  | Some guest_handle ->
      (* Guest-private staging buffer Md. *)
      let md_gfn = Xen.Domain.alloc_gfn dom in
      Xen.Domain.guest_map dom ~gvfn:md_gvfn ~gfn:md_gfn ~writable:true ~executable:false
        ~c_bit:true;
      let md_gva = Hw.Addr.addr_of md_gvfn 0 in
      Xen.Hypervisor.in_guest hv dom (fun () ->
          Xen.Domain.write machine dom ~addr:md_gva (Bytes.make Hw.Addr.page_size '\000'));
      let* md_pfn =
        match Hw.Pagetable.lookup dom.Xen.Domain.npt md_gfn with
        | Some npte -> Ok npte.Hw.Pagetable.frame
        | None -> Error "sev_io: Md page not backed"
      in
      (* Helper contexts: s-dom shares Kvek and goes SENDING; r-dom shares
         Kvek and the same transport keys, and goes RECEIVING. *)
      let* s_handle = Sev.Firmware.launch_shared fw ~handle:guest_handle in
      let nonce = Rng.next64 machine.Hw.Machine.rng in
      let platform = Sev.Firmware.platform_public fw in
      let* wrapped = Sev.Firmware.send_start fw ~handle:s_handle ~target_public:platform ~nonce in
      let* r_handle =
        Sev.Firmware.receive_start fw ~wrapped ~origin_public:platform ~nonce
          ~policy:Sev.Firmware.policy_nodbg ~kvek_of:guest_handle ()
      in
      Ok { io_ctx = ctx; dom; s_handle; r_handle; md_pfn; md_gva }

let sev_codec io =
  let ctx = io.io_ctx in
  let hv = ctx.Ctx.hv in
  let machine = ctx.Ctx.machine in
  let fw = hv.Xen.Hypervisor.fw in
  let rate = machine.Hw.Machine.costs.Hw.Cost.sev_engine_block in
  let fail msg = failwith ("sev_codec: " ^ msg) in
  let encode ~sector data =
    charge_blocks ctx c_io_sev rate data;
    per_sector
      (fun ~sector piece ->
        (* Stage through Md (guest-private, Kvek), then SEND_UPDATE turns
           it into transport ciphertext for the shared buffer. *)
        Xen.Hypervisor.in_guest hv io.dom (fun () ->
            Xen.Domain.write machine io.dom ~addr:io.md_gva piece);
        match
          Sev.Firmware.send_update_io fw ~handle:io.s_handle
            ~nonce:(Int64.of_int sector) ~src_pfn:io.md_pfn ~len:sector_size
        with
        | Ok cipher -> cipher
        | Error e -> fail e)
      ~sector data
  in
  let decode ~sector data =
    charge_blocks ctx c_io_sev rate data;
    per_sector
      (fun ~sector piece ->
        match
          Sev.Firmware.receive_update_io fw ~handle:io.r_handle
            ~nonce:(Int64.of_int sector) ~cipher:piece ~dst_pfn:io.md_pfn
        with
        | Error e -> fail e
        | Ok () ->
            Xen.Hypervisor.in_guest hv io.dom (fun () ->
                Xen.Domain.read machine io.dom ~addr:io.md_gva ~len:sector_size))
      ~sector data
  in
  { Xen.Blkif.codec_name = "sev-api"; encode; decode }

let helper_handles io = (io.s_handle, io.r_handle)

(* --- customized-key codec ------------------------------------------------ *)

type gek_io = {
  g_ctx : Ctx.t;
  g_dom : Xen.Domain.t;
  g_handle : int;
  g_gek : int;
  g_md_pfn : Hw.Addr.pfn;
  g_md_gva : int;
}

let setup_gek_io ctx (dom : Xen.Domain.t) ~md_gvfn =
  let hv = ctx.Ctx.hv in
  let machine = ctx.Ctx.machine in
  match dom.Xen.Domain.sev_handle with
  | None -> Error "gek_io: domain is not SEV-protected"
  | Some handle ->
      let md_gfn = Xen.Domain.alloc_gfn dom in
      Xen.Domain.guest_map dom ~gvfn:md_gvfn ~gfn:md_gfn ~writable:true ~executable:false
        ~c_bit:true;
      let md_gva = Hw.Addr.addr_of md_gvfn 0 in
      Xen.Hypervisor.in_guest hv dom (fun () ->
          Xen.Domain.write machine dom ~addr:md_gva (Bytes.make Hw.Addr.page_size '\000'));
      let* md_pfn =
        match Hw.Pagetable.lookup dom.Xen.Domain.npt md_gfn with
        | Some npte -> Ok npte.Hw.Pagetable.frame
        | None -> Error "gek_io: Md page not backed"
      in
      (* One command; the guest stays RUNNING. *)
      let* gek = Sev.Firmware.setenc_gek hv.Xen.Hypervisor.fw ~handle in
      Ok { g_ctx = ctx; g_dom = dom; g_handle = handle; g_gek = gek; g_md_pfn = md_pfn;
           g_md_gva = md_gva }

let gek_codec io =
  let ctx = io.g_ctx in
  let hv = ctx.Ctx.hv in
  let machine = ctx.Ctx.machine in
  let fw = hv.Xen.Hypervisor.fw in
  let rate = machine.Hw.Machine.costs.Hw.Cost.sev_engine_block in
  let fail msg = failwith ("gek_codec: " ^ msg) in
  let encode ~sector data =
    charge_blocks ctx c_io_gek rate data;
    per_sector
      (fun ~sector piece ->
        Xen.Hypervisor.in_guest hv io.g_dom (fun () ->
            Xen.Domain.write machine io.g_dom ~addr:io.g_md_gva piece);
        match
          Sev.Firmware.enc_range fw ~handle:io.g_handle ~gek:io.g_gek
            ~nonce:(Int64.of_int sector) ~src_pfn:io.g_md_pfn ~len:sector_size
        with
        | Ok cipher -> cipher
        | Error e -> fail e)
      ~sector data
  in
  let decode ~sector data =
    charge_blocks ctx c_io_gek rate data;
    per_sector
      (fun ~sector piece ->
        match
          Sev.Firmware.dec_range fw ~handle:io.g_handle ~gek:io.g_gek
            ~nonce:(Int64.of_int sector) ~cipher:piece ~dst_pfn:io.g_md_pfn
        with
        | Error e -> fail e
        | Ok () ->
            Xen.Hypervisor.in_guest hv io.g_dom (fun () ->
                Xen.Domain.read machine io.g_dom ~addr:io.g_md_gva ~len:sector_size))
      ~sector data
  in
  { Xen.Blkif.codec_name = "gek"; encode; decode }

let gek_id io = io.g_gek

let pad_sectors data =
  let n = Bytes.length data in
  let padded = ((n + sector_size - 1) / sector_size) * sector_size in
  let out = Bytes.make (max padded sector_size) '\000' in
  Bytes.blit data 0 out 0 n;
  out

let encrypt_disk ~kblk data =
  let key = Aes.expand kblk in
  xex_sectors ~key ~sector:0 ~encrypt:true (pad_sectors data)

let decrypt_disk ~kblk data =
  let key = Aes.expand kblk in
  xex_sectors ~key ~sector:0 ~encrypt:false (pad_sectors data)
