module Hw = Fidelius_hw
module Trace = Fidelius_obs.Trace

let cr0_value ~wp = Int64.logor (if wp then 0x10000L else 0L) 0x80000000L

let set_wp_via_insn (ctx : Ctx.t) wp =
  let machine = ctx.Ctx.machine in
  match
    Hw.Insn.execute machine.Hw.Machine.insns
      ~exec_ok:(Hw.Mmu.exec_ok machine ctx.Ctx.hv.Fidelius_xen.Hypervisor.host_space)
      Hw.Insn.Mov_cr0 (cr0_value ~wp)
  with
  | Ok () -> ()
  | Error e -> failwith ("fidelius gate: monopolized mov-cr0 failed: " ^ e)

let with_type1 (ctx : Ctx.t) f =
  let machine = ctx.Ctx.machine in
  let cpu = machine.Hw.Machine.cpu in
  if Hw.Cpu.in_fidelius cpu then Error "gate1: not re-entrant"
  else begin
    ctx.Ctx.gate1_count <- ctx.Ctx.gate1_count + 1;
    Hw.Cost.charge machine.Hw.Machine.ledger "gate1" machine.Hw.Machine.costs.Hw.Cost.gate1;
    if Trace.enabled () then Trace.emit (Trace.Gate 1);
    Hw.Cpu.enter_fidelius cpu;
    Hw.Cpu.priv_set_interrupts cpu false;
    let restore () =
      (* Force WP back even if the monopolized-instruction path is in a
         broken state; the context flag must never leak. *)
      (try set_wp_via_insn ctx true with _ -> Hw.Cpu.priv_set_wp cpu true);
      Hw.Cpu.priv_set_interrupts cpu true;
      Hw.Cpu.leave_fidelius cpu
    in
    match
      set_wp_via_insn ctx false;
      f ()
    with
    | result ->
        restore ();
        result
    | exception e ->
        restore ();
        raise e
  end

let charge_type2 (ctx : Ctx.t) =
  let machine = ctx.Ctx.machine in
  ctx.Ctx.gate2_count <- ctx.Ctx.gate2_count + 1;
  Hw.Cost.charge machine.Hw.Machine.ledger "gate2" machine.Hw.Machine.costs.Hw.Cost.gate2;
  if Trace.enabled () then Trace.emit (Trace.Gate 2)

let with_type3 (ctx : Ctx.t) ~pfns ~executable f =
  let machine = ctx.Ctx.machine in
  let cpu = machine.Hw.Machine.cpu in
  let host_space = ctx.Ctx.hv.Fidelius_xen.Hypervisor.host_space in
  ctx.Ctx.gate3_count <- ctx.Ctx.gate3_count + 1;
  Hw.Cost.charge machine.Hw.Machine.ledger "gate3"
    (machine.Hw.Machine.costs.Hw.Cost.gate3 * List.length pfns);
  if Trace.enabled () then Trace.emit (Trace.Gate 3);
  Hw.Cpu.enter_fidelius cpu;
  let with_wp_window g =
    (try set_wp_via_insn ctx false with _ -> Hw.Cpu.priv_set_wp cpu false);
    let finish () = try set_wp_via_insn ctx true with _ -> Hw.Cpu.priv_set_wp cpu true in
    match g () with
    | () -> finish ()
    | exception e ->
        finish ();
        raise e
  in
  let withdraw () =
    (try
       with_wp_window (fun () ->
           List.iter
             (fun pfn -> Hw.Mmu.set_pte machine ~space:host_space ~table:host_space pfn None)
             pfns)
     with _ -> ());
    Hw.Cpu.leave_fidelius cpu
  in
  (* The mapping add/withdraw is a single PTE write each way; the host
     page-table-page is read-only for Xen, so do it inside a WP-cleared
     window (the pre-allocated address-space trick of the paper). *)
  match
    with_wp_window (fun () ->
        List.iter
          (fun pfn ->
            Hw.Mmu.set_pte machine ~space:host_space ~table:host_space pfn
              (Some
                 { Hw.Pagetable.frame = pfn;
                   writable = not executable;
                   executable;
                   c_bit = false }))
          pfns);
    f ()
  with
  | result ->
      withdraw ();
      result
  | exception e ->
      withdraw ();
      raise e

let counts (ctx : Ctx.t) = (ctx.Ctx.gate1_count, ctx.Ctx.gate2_count, ctx.Ctx.gate3_count)
