module Hw = Fidelius_hw
module Trace = Fidelius_obs.Trace

(* Charge sites, interned once. *)
let c_gate1 = Hw.Cost.intern "gate1"
let c_gate2 = Hw.Cost.intern "gate2"
let c_gate3 = Hw.Cost.intern "gate3"

(* Both CR0 images are constants (PG always on, WP toggled), so the
   per-toggle value is never recomputed or boxed. *)
let cr0_wp_set = 0x8001_0000L
let cr0_wp_clear = 0x8000_0000L

let cr0_value ~wp = if wp then cr0_wp_set else cr0_wp_clear

let set_wp_via_insn (ctx : Ctx.t) wp =
  let machine = ctx.Ctx.machine in
  match
    Hw.Insn.execute machine.Hw.Machine.insns ~exec_ok:ctx.Ctx.host_exec_ok
      Hw.Insn.Mov_cr0 (cr0_value ~wp)
  with
  | Ok () -> ()
  | Error e -> failwith ("fidelius gate: monopolized mov-cr0 failed: " ^ e)

(* Force WP to a known state even if the monopolized-instruction path is
   in a broken state; the fallback writes the bit directly. *)
let wp_off (ctx : Ctx.t) cpu =
  try set_wp_via_insn ctx false with _ -> Hw.Cpu.priv_set_wp cpu false

let wp_on (ctx : Ctx.t) cpu =
  try set_wp_via_insn ctx true with _ -> Hw.Cpu.priv_set_wp cpu true

let with_type1 (ctx : Ctx.t) f =
  let machine = ctx.Ctx.machine in
  let cpu = machine.Hw.Machine.cpu in
  if Hw.Cpu.in_fidelius cpu then Error "gate1: not re-entrant"
  else begin
    ctx.Ctx.gate1_count <- ctx.Ctx.gate1_count + 1;
    Hw.Cost.charge_id machine.Hw.Machine.ledger c_gate1 machine.Hw.Machine.costs.Hw.Cost.gate1;
    if Trace.enabled () then Trace.emit (Trace.Gate 1);
    Hw.Cpu.enter_fidelius cpu;
    Hw.Cpu.priv_set_interrupts cpu false;
    let restore () =
      (* The context flag must never leak. *)
      wp_on ctx cpu;
      Hw.Cpu.priv_set_interrupts cpu true;
      Hw.Cpu.leave_fidelius cpu
    in
    match
      set_wp_via_insn ctx false;
      f ()
    with
    | result ->
        restore ();
        result
    | exception e ->
        restore ();
        raise e
  end

let charge_type2 (ctx : Ctx.t) =
  let machine = ctx.Ctx.machine in
  ctx.Ctx.gate2_count <- ctx.Ctx.gate2_count + 1;
  Hw.Cost.charge_id machine.Hw.Machine.ledger c_gate2 machine.Hw.Machine.costs.Hw.Cost.gate2;
  if Trace.enabled () then Trace.emit (Trace.Gate 2)

(* The type-3 map/withdraw loops are module-level recursive functions, not
   per-call closures, and thread packed PTE values — one gate crossing
   allocates nothing. *)
let rec map_pfns machine host_space ~executable = function
  | [] -> ()
  | pfn :: rest ->
      Hw.Mmu.set_pte_packed machine ~space:host_space ~table:host_space pfn
        (Hw.Pagetable.packed_make ~frame:pfn ~writable:(not executable) ~executable
           ~c_bit:false);
      map_pfns machine host_space ~executable rest

let rec unmap_pfns machine host_space = function
  | [] -> ()
  | pfn :: rest ->
      Hw.Mmu.set_pte_packed machine ~space:host_space ~table:host_space pfn
        Hw.Pagetable.packed_absent;
      unmap_pfns machine host_space rest

(* Best-effort teardown: withdraw the mappings inside a WP window and drop
   the context flag, swallowing secondary faults so the original outcome
   (result or exception) survives. *)
let withdraw (ctx : Ctx.t) cpu machine host_space pfns =
  (try
     wp_off ctx cpu;
     match unmap_pfns machine host_space pfns with
     | () -> wp_on ctx cpu
     | exception _ -> wp_on ctx cpu
   with _ -> ());
  Hw.Cpu.leave_fidelius cpu

let with_type3 (ctx : Ctx.t) ~pfns ~executable f =
  let machine = ctx.Ctx.machine in
  let cpu = machine.Hw.Machine.cpu in
  let host_space = ctx.Ctx.hv.Fidelius_xen.Hypervisor.host_space in
  ctx.Ctx.gate3_count <- ctx.Ctx.gate3_count + 1;
  Hw.Cost.charge_id machine.Hw.Machine.ledger c_gate3
    (machine.Hw.Machine.costs.Hw.Cost.gate3 * List.length pfns);
  if Trace.enabled () then Trace.emit (Trace.Gate 3);
  Hw.Cpu.enter_fidelius cpu;
  (* The mapping add/withdraw is a single PTE write each way; the host
     page-table-page is read-only for Xen, so do it inside a WP-cleared
     window (the pre-allocated address-space trick of the paper). *)
  (match
     wp_off ctx cpu;
     map_pfns machine host_space ~executable pfns
   with
  | () -> wp_on ctx cpu
  | exception e ->
      wp_on ctx cpu;
      withdraw ctx cpu machine host_space pfns;
      raise e);
  match f () with
  | result ->
      withdraw ctx cpu machine host_space pfns;
      result
  | exception e ->
      withdraw ctx cpu machine host_space pfns;
      raise e

let counts (ctx : Ctx.t) = (ctx.Ctx.gate1_count, ctx.Ctx.gate2_count, ctx.Ctx.gate3_count)
