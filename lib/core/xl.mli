(** Toolstack-style domain builder (the `xl create` of the simulator).

    Gathers the pieces a real guest config names — memory size, disk image,
    protection level, I/O encoder — and performs the whole construction
    flow, so examples and downstream users don't have to hand-orchestrate
    owner tooling, protected boot, disk attachment and codec selection.

    Protection levels map to the stacks the paper compares:
    - [`None_]: stock Xen guest (the baseline of Figures 5-6);
    - [`Sev]: plain-SEV LAUNCH flow (the insecure-against-the-host baseline
      of the security analysis);
    - [`Fidelius]: encrypted-image RECEIVE boot; requires an installed
      Fidelius context. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen

type protection =
  | Unprotected
  | Plain_sev
  | Protected of Ctx.t

type codec_choice =
  | Plain_io
  | Aes_ni_io
  | Sev_api_io
  | Gek_io

type disk_config = {
  contents : bytes;             (** plaintext disk image *)
  codec : codec_choice;
      (** non-[Plain_io] choices require [Protected] protection *)
  buffer_gvfn : Hw.Addr.vfn;
}

type config = {
  name : string;
  memory_pages : int;
  kernel : bytes list;          (** plaintext kernel pages; [] means one zeroed page *)
  protection : protection;
  disk : disk_config option;
  seed : int64;                 (** drives the owner-side key material *)
}

type built = {
  domain : Xen.Domain.t;
  frontend : Xen.Blkif.frontend option;
  backend : Xen.Blkif.backend option;
  kblk : bytes option;          (** the disk key, when one was provisioned *)
  built_protection : protection;
}

val default : name:string -> config
(** 16 pages, stub kernel, unprotected, no disk, seed 1. *)

val create : Xen.Hypervisor.t -> config -> (built, string) result
(** Build the domain per the config. With [Aes_ni_io] the disk image is
    stored encrypted under the owner's Kblk (the platter never sees the
    plaintext); with [Sev_api_io]/[Gek_io] it is stored as the respective
    transport ciphertext written through the codec. *)

val destroy : Xen.Hypervisor.t -> built -> unit
(** Tear the domain down through the path matching its protection level. *)
