module Hw = Fidelius_hw
module Xen = Fidelius_xen

type shared = {
  gref : int;
  owner_gfn : Hw.Addr.gfn;
  owner_gvfn : Hw.Addr.vfn;
  peer_gvfn : Hw.Addr.vfn;
  frame : Hw.Addr.pfn;
}

let ( let* ) = Result.bind

let share ctx ~owner ~peer ~owner_gvfn ~peer_gvfn ~writable =
  let hv = ctx.Ctx.hv in
  let machine = ctx.Ctx.machine in
  (* The shared page must be unencrypted: each guest has its own Kvek, so
     plaintext is the only common coin (paper Section 2.2). *)
  let gfn = Xen.Domain.alloc_gfn owner in
  Xen.Domain.guest_map owner ~gvfn:owner_gvfn ~gfn ~writable:true ~executable:false
    ~c_bit:false;
  Xen.Hypervisor.in_guest hv owner (fun () ->
      Xen.Domain.write machine owner ~addr:(Hw.Addr.addr_of owner_gvfn 0)
        (Bytes.make Hw.Addr.page_size '\000'));
  (* 1. Declare intent to Fidelius. *)
  let* _ =
    Xen.Hypervisor.hypercall hv owner
      (Xen.Hypercall.Pre_sharing { target = peer.Xen.Domain.domid; gfn; nr = 1; writable })
  in
  (* 2. Offer through the (GIT-validated) grant table. *)
  let* gref64 =
    Xen.Hypervisor.hypercall hv owner
      (Xen.Hypercall.Grant_table_op
         (Xen.Hypercall.Grant_access { target = peer.Xen.Domain.domid; gfn; writable }))
  in
  let gref = Int64.to_int gref64 in
  (* 3. Peer maps the grant. *)
  let* peer_gfn64 =
    Xen.Hypervisor.hypercall hv peer
      (Xen.Hypercall.Grant_table_op (Xen.Hypercall.Map_grant { gref }))
  in
  let peer_gfn = Int64.to_int peer_gfn64 in
  Xen.Domain.guest_map peer ~gvfn:peer_gvfn ~gfn:peer_gfn ~writable ~executable:false
    ~c_bit:false;
  match Hw.Pagetable.lookup owner.Xen.Domain.npt gfn with
  | None -> Error "share: owner frame vanished"
  | Some npte -> Ok { gref; owner_gfn = gfn; owner_gvfn; peer_gvfn; frame = npte.Hw.Pagetable.frame }

(* Multi-frame sharing: one declared intent covering [nr] consecutive
   guest-physical frames, then the per-frame grant/map flow. *)
let share_range ctx ~owner ~peer ~owner_gvfn ~peer_gvfn ~nr ~writable =
  if nr <= 0 then Error "share_range: nr must be positive"
  else begin
    let hv = ctx.Ctx.hv in
    let machine = ctx.Ctx.machine in
    (* Allocate a contiguous guest-physical run and fault it in. *)
    let first_gfn = Xen.Domain.alloc_gfn owner in
    for i = 1 to nr - 1 do
      ignore (Xen.Domain.alloc_gfn owner);
      ignore i
    done;
    for i = 0 to nr - 1 do
      Xen.Domain.guest_map owner ~gvfn:(owner_gvfn + i) ~gfn:(first_gfn + i) ~writable:true
        ~executable:false ~c_bit:false;
      Xen.Hypervisor.in_guest hv owner (fun () ->
          Xen.Domain.write machine owner
            ~addr:(Hw.Addr.addr_of (owner_gvfn + i) 0)
            (Bytes.make Hw.Addr.page_size '\000'))
    done;
    let* _ =
      Xen.Hypervisor.hypercall hv owner
        (Xen.Hypercall.Pre_sharing
           { target = peer.Xen.Domain.domid; gfn = first_gfn; nr; writable })
    in
    let rec grant_all i acc =
      if i = nr then Ok (List.rev acc)
      else
        let gfn = first_gfn + i in
        let* gref64 =
          Xen.Hypervisor.hypercall hv owner
            (Xen.Hypercall.Grant_table_op
               (Xen.Hypercall.Grant_access { target = peer.Xen.Domain.domid; gfn; writable }))
        in
        let gref = Int64.to_int gref64 in
        let* peer_gfn64 =
          Xen.Hypervisor.hypercall hv peer
            (Xen.Hypercall.Grant_table_op (Xen.Hypercall.Map_grant { gref }))
        in
        let peer_gfn = Int64.to_int peer_gfn64 in
        Xen.Domain.guest_map peer ~gvfn:(peer_gvfn + i) ~gfn:peer_gfn ~writable
          ~executable:false ~c_bit:false;
        match Hw.Pagetable.lookup owner.Xen.Domain.npt gfn with
        | None -> Error "share_range: owner frame vanished"
        | Some npte ->
            grant_all (i + 1)
              ({ gref;
                 owner_gfn = gfn;
                 owner_gvfn = owner_gvfn + i;
                 peer_gvfn = peer_gvfn + i;
                 frame = npte.Hw.Pagetable.frame }
              :: acc)
    in
    grant_all 0 []
  end

let owner_write ctx dom shared ~off data =
  Xen.Hypervisor.in_guest ctx.Ctx.hv dom (fun () ->
      Xen.Domain.write ctx.Ctx.machine dom ~addr:(Hw.Addr.addr_of shared.owner_gvfn off) data)

let peer_read ctx dom shared ~off ~len =
  Xen.Hypervisor.in_guest ctx.Ctx.hv dom (fun () ->
      Xen.Domain.read ctx.Ctx.machine dom ~addr:(Hw.Addr.addr_of shared.peer_gvfn off) ~len)

let peer_write ctx dom shared ~off data =
  Xen.Hypervisor.in_guest ctx.Ctx.hv dom (fun () ->
      Xen.Domain.write ctx.Ctx.machine dom ~addr:(Hw.Addr.addr_of shared.peer_gvfn off) data)

let unshare ctx ~owner shared =
  let* _ =
    Xen.Hypervisor.hypercall ctx.Ctx.hv owner
      (Xen.Hypercall.Grant_table_op (Xen.Hypercall.End_access { gref = shared.gref }))
  in
  (match Xen.Granttab.get ctx.Ctx.hv.Xen.Hypervisor.granttab shared.gref with
  | Some _ -> ()
  | None -> ());
  Git_table.revoke ctx.Ctx.git ~initiator:owner.Xen.Domain.domid ~gfn:shared.owner_gfn;
  Ok ()
