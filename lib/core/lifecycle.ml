module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev

let ( let* ) = Result.bind

(* Classified by call site, not by string matching: the boot path knows
   whether a step was the platform's verification verdict or mere
   mechanics, and downstream consumers (migration, the fault matrix) need
   that distinction to tell "fail closed with detection" from "boot simply
   did not happen". *)
type boot_error =
  | Rejected of string
      (* firmware verification refused the image: RECEIVE_START key unwrap
         or RECEIVE_FINISH measurement *)
  | Failed of string
      (* mechanical boot failure: image too large, load/mediation error,
         ACTIVATE, first VMRUN *)

let boot_error_to_string = function Rejected e | Failed e -> e

let pp_boot_error fmt = function
  | Rejected e -> Format.fprintf fmt "rejected: %s" e
  | Failed e -> Format.fprintf fmt "failed: %s" e

let start ctx dom = Xen.Hypervisor.vmrun ctx.Ctx.hv dom

let load_cipher_page ctx (dom : Xen.Domain.t) ~gfn ~cipher =
  let hv = ctx.Ctx.hv in
  match Hw.Pagetable.lookup dom.Xen.Domain.npt gfn with
  | None -> Error (Printf.sprintf "boot: gfn 0x%x not populated" gfn)
  | Some npte ->
      let pfn = npte.Hw.Pagetable.frame in
      (* The hypervisor temporarily obtains write permission to load the
         encrypted image (paper Section 6.2), inside the boot window. *)
      let* () =
        hv.Xen.Hypervisor.med.Xen.Hypervisor.host_map_update pfn
          (Some { Hw.Pagetable.frame = pfn; writable = true; executable = false; c_bit = false })
      in
      Xen.Hypervisor.host_write hv pfn ~off:0 cipher;
      let* () = hv.Xen.Hypervisor.med.Xen.Hypervisor.host_map_update pfn None in
      Ok pfn

(* A partially received protected domain: RECEIVE_START has run, pages may
   stream in incrementally (live migration delivers them round by round),
   and nothing has been measured or activated yet. Any failure rolls the
   partial domain back and poisons the session. *)
type session = {
  ctx : Ctx.t;
  dom : Xen.Domain.t;
  handle : Sev.Firmware.handle;
  memory_pages : int;
  mutable closed : bool;
}

let session_domain s = s.dom

let rollback_session s err =
  let ctx = s.ctx in
  let hv = ctx.Ctx.hv in
  s.closed <- true;
  ctx.Ctx.boot_window <- None;
  ctx.Ctx.protected_domids <-
    List.filter (fun d -> d <> s.dom.Xen.Domain.domid) ctx.Ctx.protected_domids;
  ctx.Ctx.teardown_for <- Some s.dom.Xen.Domain.domid;
  List.iter
    (fun (gfn, _) -> ignore (hv.Xen.Hypervisor.med.Xen.Hypervisor.npt_update s.dom gfn None))
    (Hw.Pagetable.mapped_frames s.dom.Xen.Domain.npt);
  ctx.Ctx.teardown_for <- None;
  Xen.Hypervisor.destroy_domain hv s.dom;
  Error err

let receive_abort s = if not s.closed then ignore (rollback_session s (Failed "aborted"))

let receive_begin ctx ~name ~memory_pages ~wrapped_keys ~origin_public ~nonce ~policy =
  let hv = ctx.Ctx.hv in
  (* 0. The frames allocated for this domain must be revoked from the
     hypervisor as they are handed out. *)
  ctx.Ctx.next_domain_protected <- true;
  let dom = Xen.Hypervisor.create_domain hv ~name ~memory_pages in
  ctx.Ctx.next_domain_protected <- false;
  ctx.Ctx.protected_domids <- dom.Xen.Domain.domid :: ctx.Ctx.protected_domids;
  ignore (Iso.new_shadow ctx dom);
  let s = { ctx; dom; handle = 0; memory_pages; closed = false } in
  (* 1. RECEIVE_START: unwrap Ktek/Ktik via the platform identity. *)
  match
    Sev.Firmware.receive_start hv.Xen.Hypervisor.fw ~wrapped:wrapped_keys
      ~origin_public ~nonce ~policy ()
  with
  | Error e -> rollback_session s (Rejected ("boot: " ^ e))
  | Ok handle -> Ok { s with handle }

let receive_pages s pages =
  if s.closed then Error (Failed "boot: receive session already closed")
  else begin
    let ctx = s.ctx in
    let hv = ctx.Ctx.hv in
    (* 2./3. Load each transport page and re-encrypt it in place, inside
       the temporary hypervisor write window. *)
    ctx.Ctx.boot_window <- Some s.dom.Xen.Domain.domid;
    let load_all =
      List.fold_left
        (fun acc (index, gfn, cipher) ->
          let* () = acc in
          let* pfn = load_cipher_page ctx s.dom ~gfn ~cipher in
          Sev.Firmware.receive_update_in_place hv.Xen.Hypervisor.fw ~handle:s.handle ~index
            ~pfn)
        (Ok ()) pages
    in
    ctx.Ctx.boot_window <- None;
    match load_all with
    | Error e -> rollback_session s (Failed ("boot: " ^ e))
    | Ok () -> Ok ()
  end

let receive_complete s ~expected =
  if s.closed then Error (Failed "boot: receive session already closed")
  else begin
    let ctx = s.ctx in
    let hv = ctx.Ctx.hv in
    let dom = s.dom in
    (* 4. Verify the keyed measurement before the guest can run. *)
    match Sev.Firmware.receive_finish hv.Xen.Hypervisor.fw ~handle:s.handle ~expected with
    | Error e -> rollback_session s (Rejected ("boot: " ^ e))
    | Ok () -> (
        match Sev.Firmware.activate hv.Xen.Hypervisor.fw ~handle:s.handle ~asid:dom.Xen.Domain.asid with
        | Error e -> rollback_session s (Failed ("boot: " ^ e))
        | Ok () ->
            dom.Xen.Domain.sev_handle <- Some s.handle;
            dom.Xen.Domain.sev_protected <- true;
            Hw.Vmcb.set dom.Xen.Domain.vmcb Hw.Vmcb.Sev_enabled 1L;
            (* The guest kernel maps its memory with the C-bit. *)
            for gvfn = 0 to s.memory_pages - 1 do
              Xen.Domain.guest_map dom ~gvfn ~gfn:gvfn ~writable:true ~executable:true
                ~c_bit:true
            done;
            (* 5. First entry through the gated VMRUN. *)
            (match start ctx dom with
            | Ok () ->
                s.closed <- true;
                Ok dom
            | Error e -> rollback_session s (Failed ("boot: first vmrun: " ^ e))))
  end

let boot_protected_vm ctx ~name ~memory_pages ~prepared =
  let { Sev.Transport.Owner.image; wrapped_keys; owner_public; kblk = _ } = prepared in
  if List.length image.Sev.Transport.pages > memory_pages then
    Error (Failed "boot: encrypted image larger than guest memory")
  else
    let* s =
      receive_begin ctx ~name ~memory_pages ~wrapped_keys ~origin_public:owner_public
        ~nonce:image.Sev.Transport.nonce ~policy:image.Sev.Transport.policy
    in
    (* The one-shot boot is the degenerate single-round receive: transport
       index and placement gfn coincide. *)
    let* () =
      receive_pages s
        (List.map (fun (index, cipher) -> (index, index, cipher)) image.Sev.Transport.pages)
    in
    receive_complete s ~expected:image.Sev.Transport.measurement

let shutdown_protected_vm ctx dom =
  let hv = ctx.Ctx.hv in
  (* Clear the NPT under teardown authority so PIT validity is maintained. *)
  ctx.Ctx.teardown_for <- Some dom.Xen.Domain.domid;
  List.iter
    (fun (gfn, _) -> ignore (hv.Xen.Hypervisor.med.Xen.Hypervisor.npt_update dom gfn None))
    (Hw.Pagetable.mapped_frames dom.Xen.Domain.npt);
  (* DEACTIVATE/DECOMMISSION happen inside destroy_domain; frame release
     hooks scrub PIT entries and hand frames back to the hypervisor. *)
  Xen.Hypervisor.destroy_domain hv dom;
  ctx.Ctx.teardown_for <- None;
  Git_table.revoke_domain ctx.Ctx.git ~initiator:dom.Xen.Domain.domid;
  Hashtbl.remove ctx.Ctx.shadows dom.Xen.Domain.domid;
  ctx.Ctx.protected_domids <-
    List.filter (fun d -> d <> dom.Xen.Domain.domid) ctx.Ctx.protected_domids

let write_start_info ?(off = 0) ctx dom data =
  let* () =
    Policy.write_once_range ctx
      ~region:(Printf.sprintf "start_info/dom%d" dom.Xen.Domain.domid)
      ~off ~len:(Bytes.length data)
  in
  (* start_info lives in an unencrypted guest page the hypervisor fills
     exactly once during construction. *)
  match Hw.Pagetable.lookup dom.Xen.Domain.npt 0 with
  | None -> Error "start_info: gfn 0 not populated"
  | Some npte ->
      ctx.Ctx.boot_window <- Some dom.Xen.Domain.domid;
      let med = ctx.Ctx.hv.Xen.Hypervisor.med in
      let pfn = npte.Hw.Pagetable.frame in
      let* () =
        med.Xen.Hypervisor.host_map_update pfn
          (Some { Hw.Pagetable.frame = pfn; writable = true; executable = false; c_bit = false })
      in
      Xen.Hypervisor.host_write ctx.Ctx.hv pfn ~off data;
      let* () = med.Xen.Hypervisor.host_map_update pfn None in
      ctx.Ctx.boot_window <- None;
      Ok ()

let kblk_of_guest ctx (dom : Xen.Domain.t) =
  Xen.Hypervisor.in_guest ctx.Ctx.hv dom (fun () ->
      Xen.Domain.read ctx.Ctx.machine dom
        ~addr:(Hw.Addr.addr_of 0 Sev.Transport.Owner.kblk_offset)
        ~len:16)

let attestation_report ctx =
  let g1, g2, g3 = Gate.counts ctx in
  Printf.sprintf
    "fidelius attestation\n  xen-text measurement: %s\n  gates: type1=%d type2=%d type3=%d\n  violations blocked: %d\n"
    (Fidelius_crypto.Sha256.hex ctx.Ctx.xen_measurement)
    g1 g2 g3
    (List.length ctx.Ctx.violations)
