(** Fidelius — the public facade.

    A software extension to AMD SEV that provides comprehensive VM
    protection against an untrusted hypervisor (HPCA 2018). Install it over
    a booted {!Fidelius_xen.Hypervisor}, then drive protected guests through
    this module:

    {[
      let machine = Fidelius_hw.Machine.create ~seed:1L () in
      let hv = Fidelius_xen.Hypervisor.boot machine in
      let fid = Fidelius_core.Fidelius.install hv in
      let prepared = (* owner side, offline *)
        Fidelius_sev.Transport.Owner.prepare ~rng ~platform_public:(platform_key fid)
          ~policy:1 ~kernel_pages
      in
      match Fidelius_core.Fidelius.boot_protected_vm fid ~name:"tenant"
              ~memory_pages:32 ~prepared with
      | Ok dom -> ...
      | Error e -> ...
    ]} *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev

type t = Ctx.t
(** The installed Fidelius context. *)

val install : Xen.Hypervisor.t -> t
(** Late launch: measure the hypervisor, build PIT/GIT, write-protect the
    mapping structures and grant table, scrub and re-home the privileged
    instructions, wire the mediation gates, arm the IOMMU. See {!Iso}. *)

val platform_key : t -> Fidelius_crypto.Dh.public
(** The platform identity a guest owner targets when preparing an encrypted
    kernel image. *)

(** {2 VM life cycle} *)

val boot_protected_vm :
  t -> name:string -> memory_pages:int -> prepared:Sev.Transport.Owner.prepared ->
  (Xen.Domain.t, string) result

val start : t -> Xen.Domain.t -> (unit, string) result
val shutdown_protected_vm : t -> Xen.Domain.t -> unit
val write_start_info : ?off:int -> t -> Xen.Domain.t -> bytes -> (unit, string) result
val kblk_of_guest : t -> Xen.Domain.t -> bytes
val attestation_report : t -> string

(** {2 Migration} *)

val migrate : src:t -> dst:t -> Xen.Domain.t -> (Xen.Domain.t, string) result

(** {2 I/O protection} *)

val aesni_codec : t -> kblk:bytes -> Xen.Blkif.codec
val software_codec : t -> kblk:bytes -> Xen.Blkif.codec
val setup_sev_io :
  t -> Xen.Domain.t -> md_gvfn:Hw.Addr.vfn -> (Io_protect.sev_io, string) result
val sev_codec : Io_protect.sev_io -> Xen.Blkif.codec
val setup_gek_io :
  t -> Xen.Domain.t -> md_gvfn:Hw.Addr.vfn -> (Io_protect.gek_io, string) result
val gek_codec : Io_protect.gek_io -> Xen.Blkif.codec

(** {2 Memory sharing} *)

val share :
  t ->
  owner:Xen.Domain.t -> peer:Xen.Domain.t ->
  owner_gvfn:Hw.Addr.vfn -> peer_gvfn:Hw.Addr.vfn -> writable:bool ->
  (Sharing.shared, string) result

val share_range :
  t ->
  owner:Xen.Domain.t -> peer:Xen.Domain.t ->
  owner_gvfn:Hw.Addr.vfn -> peer_gvfn:Hw.Addr.vfn -> nr:int -> writable:bool ->
  (Sharing.shared list, string) result

val unshare : t -> owner:Xen.Domain.t -> Sharing.shared -> (unit, string) result

(** {2 Introspection} *)

val gate_counts : t -> int * int * int
(** (type-1, type-2, type-3) gate crossings so far. *)

val violations : t -> string list
(** Audit log of denied operations, most recent first. *)

val is_protected : t -> int -> bool
