module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Rng = Fidelius_crypto.Rng
module Keywrap = Fidelius_crypto.Keywrap
module Dh = Fidelius_crypto.Dh
module Sha256 = Fidelius_crypto.Sha256
module Plan = Fidelius_inject.Plan
module Site = Fidelius_inject.Site

type snapshot = {
  image : Sev.Transport.image;
  wrapped_keys : Fidelius_crypto.Keywrap.wrapped;
  origin_public : Fidelius_crypto.Dh.public;
  memory_pages : int;
  gpt_entries : (Hw.Addr.vfn * Hw.Pagetable.proto) list;
  name : string;
}

type error =
  | Not_protected
  | Send_refused of string
  | Truncated of { expected : int; got : int }
  | Malformed of string
  | Rejected of string
  | Boot_failed of string
  | Unknown_version of { got : int; expected : int }
  | Protocol_violation of string
  | Stale_firmware of { got : Sev.Firmware.version; minimum : Sev.Firmware.version }
  | Attest_refused of Attest.error

let pp_error fmt = function
  | Not_protected -> Format.pp_print_string fmt "migrate: domain is not SEV-protected"
  | Send_refused e -> Format.fprintf fmt "migrate: send refused: %s" e
  | Truncated { expected; got } ->
      Format.fprintf fmt "migrate: stream truncated (expected %d, got %d)" expected got
  | Malformed e -> Format.fprintf fmt "migrate: malformed stream: %s" e
  | Rejected e -> Format.fprintf fmt "migrate: target platform rejected the image: %s" e
  | Boot_failed e -> Format.fprintf fmt "migrate: receive-side boot failed: %s" e
  | Unknown_version { got; expected } ->
      Format.fprintf fmt "migrate: unknown wire version %d (this build speaks %d)" got expected
  | Protocol_violation e -> Format.fprintf fmt "migrate: protocol violation: %s" e
  | Stale_firmware { got; minimum } ->
      Format.fprintf fmt
        "migrate: target firmware %a is below the owner's policy floor %a; disk key withheld"
        Sev.Firmware.pp_version got Sev.Firmware.pp_version minimum
  | Attest_refused e ->
      Format.fprintf fmt "migrate: owner refused the target's quote: %a" Attest.pp_error e

let error_to_string e = Format.asprintf "%a" pp_error e

let ( let* ) = Result.bind

(* Transport indices are composite: placement gfn in the low bits, dirty
   round above. Two birds: a gfn resent in a later round gets a fresh CTR
   stream (no keystream reuse across rounds), and the index is folded into
   the keyed measurement, so the receiver deriving the placement from the
   index means a page cannot be silently re-homed. Round 0 indices equal
   the gfn, which keeps the one-shot snapshot format unchanged. *)
let gfn_bits = 20
let index_of ~round ~gfn = (round lsl gfn_bits) lor gfn
let gfn_of_index index = index land ((1 lsl gfn_bits) - 1)

(* Downtime accounting: one RECEIVE_UPDATE costs [Cost.firmware_page]
   cycles; at the simulator's nominal 1 GHz that is cycles/1000 µs. *)
let page_us = float_of_int Hw.Cost.default.Hw.Cost.firmware_page /. 1000.

module Wire = struct
  let magic = "FIDM"
  let version = 2
  let header_len = 4 + 2 + 1 + 4

  let tag_start = 1
  let tag_update = 2
  let tag_finish = 3
  let tag_attest_req = 4
  let tag_attest_resp = 5
  let tag_secret = 6

  type frame =
    | Start of {
        name : string;
        memory_pages : int;
        policy : int;
        nonce : int64;
        wrapped_keys : Keywrap.wrapped;
        origin_public : Dh.public;
      }
    | Update of { round : int; pages : (int * bytes) list }
    | Finish of {
        measurement : bytes;
        gpt_entries : (Hw.Addr.vfn * Hw.Pagetable.proto) list;
      }
    | Attest_req of { nonce : int64 }
    | Attest_resp of { quote : bytes }
    | Secret of { wrapped : bytes }

  let frame_bytes ~tag payload =
    let plen = Bytes.length payload in
    let b = Bytes.create (header_len + plen) in
    Bytes.blit_string magic 0 b 0 4;
    Bytes.set_uint16_be b 4 version;
    Bytes.set_uint8 b 6 tag;
    Bytes.set_int32_be b 7 (Int32.of_int plen);
    Bytes.blit payload 0 b header_len plen;
    b

  let put_blob buf s =
    Buffer.add_uint16_be buf (Bytes.length s);
    Buffer.add_bytes buf s

  let encode = function
    | Start { name; memory_pages; policy; nonce; wrapped_keys; origin_public } ->
        let buf = Buffer.create 96 in
        Buffer.add_uint16_be buf (String.length name);
        Buffer.add_string buf name;
        Buffer.add_int32_be buf (Int32.of_int memory_pages);
        Buffer.add_int32_be buf (Int32.of_int policy);
        Buffer.add_int64_be buf nonce;
        put_blob buf (Keywrap.to_bytes wrapped_keys);
        put_blob buf (Dh.public_to_bytes origin_public);
        frame_bytes ~tag:tag_start (Buffer.to_bytes buf)
    | Update { round; pages } ->
        let buf = Buffer.create 4096 in
        Buffer.add_int32_be buf (Int32.of_int round);
        Buffer.add_int32_be buf (Int32.of_int (List.length pages));
        List.iter
          (fun (index, cipher) ->
            Buffer.add_int32_be buf (Int32.of_int index);
            Buffer.add_int32_be buf (Int32.of_int (Bytes.length cipher));
            Buffer.add_bytes buf cipher)
          pages;
        frame_bytes ~tag:tag_update (Buffer.to_bytes buf)
    | Finish { measurement; gpt_entries } ->
        let buf = Buffer.create 256 in
        put_blob buf measurement;
        Buffer.add_int32_be buf (Int32.of_int (List.length gpt_entries));
        List.iter
          (fun (gvfn, (p : Hw.Pagetable.proto)) ->
            Buffer.add_int32_be buf (Int32.of_int gvfn);
            Buffer.add_int32_be buf (Int32.of_int p.Hw.Pagetable.frame);
            Buffer.add_uint8 buf
              ((if p.Hw.Pagetable.writable then 1 else 0)
              lor (if p.Hw.Pagetable.executable then 2 else 0)
              lor if p.Hw.Pagetable.c_bit then 4 else 0))
          gpt_entries;
        frame_bytes ~tag:tag_finish (Buffer.to_bytes buf)
    | Attest_req { nonce } ->
        let buf = Buffer.create 8 in
        Buffer.add_int64_be buf nonce;
        frame_bytes ~tag:tag_attest_req (Buffer.to_bytes buf)
    | Attest_resp { quote } ->
        let buf = Buffer.create 96 in
        put_blob buf quote;
        frame_bytes ~tag:tag_attest_resp (Buffer.to_bytes buf)
    | Secret { wrapped } ->
        let buf = Buffer.create 64 in
        put_blob buf wrapped;
        frame_bytes ~tag:tag_secret (Buffer.to_bytes buf)

  exception Short

  let decode b =
    if Bytes.length b < header_len then Error (Malformed "frame shorter than header")
    else if Bytes.sub_string b 0 4 <> magic then Error (Malformed "bad magic")
    else
      let got_version = Bytes.get_uint16_be b 4 in
      if got_version <> version then
        Error (Unknown_version { got = got_version; expected = version })
      else begin
        let tag = Bytes.get_uint8 b 6 in
        let plen = Int32.to_int (Bytes.get_int32_be b 7) in
        let avail = Bytes.length b - header_len in
        if plen < 0 then Error (Malformed "negative payload length")
        else if avail < plen then Error (Truncated { expected = plen; got = avail })
        else begin
          let p = Bytes.sub b header_len plen in
          let pos = ref 0 in
          let need n = if n < 0 || !pos + n > plen then raise Short in
          let u8 () =
            need 1;
            let v = Bytes.get_uint8 p !pos in
            pos := !pos + 1;
            v
          in
          let u16 () =
            need 2;
            let v = Bytes.get_uint16_be p !pos in
            pos := !pos + 2;
            v
          in
          let u32 () =
            need 4;
            let v = Int32.to_int (Bytes.get_int32_be p !pos) in
            pos := !pos + 4;
            v
          in
          let i64 () =
            need 8;
            let v = Bytes.get_int64_be p !pos in
            pos := !pos + 8;
            v
          in
          let raw n =
            need n;
            let v = Bytes.sub p !pos n in
            pos := !pos + n;
            v
          in
          let blob () = raw (u16 ()) in
          let rec records n f acc =
            if n = 0 then List.rev acc else records (n - 1) f (f () :: acc)
          in
          try
            if tag = tag_start then begin
              let name = Bytes.to_string (blob ()) in
              let memory_pages = u32 () in
              let policy = u32 () in
              let nonce = i64 () in
              let wrapped = blob () in
              let pub = blob () in
              match Keywrap.of_bytes wrapped with
              | None -> Error (Malformed "START: undecodable key wrap")
              | Some wrapped_keys ->
                  Ok
                    (Start
                       { name;
                         memory_pages;
                         policy;
                         nonce;
                         wrapped_keys;
                         origin_public = Dh.public_of_bytes pub })
            end
            else if tag = tag_update then begin
              let round = u32 () in
              let count = u32 () in
              if count < 0 || count > plen then Error (Malformed "UPDATE: absurd page count")
              else
                let pages =
                  records count
                    (fun () ->
                      let index = u32 () in
                      let len = u32 () in
                      (index, raw len))
                    []
                in
                Ok (Update { round; pages })
            end
            else if tag = tag_finish then begin
              let measurement = blob () in
              let count = u32 () in
              if count < 0 || count > plen then Error (Malformed "FINISH: absurd entry count")
              else
                let gpt_entries =
                  records count
                    (fun () ->
                      let gvfn = u32 () in
                      let frame = u32 () in
                      let flags = u8 () in
                      ( gvfn,
                        { Hw.Pagetable.frame;
                          writable = flags land 1 <> 0;
                          executable = flags land 2 <> 0;
                          c_bit = flags land 4 <> 0 } ))
                    []
                in
                Ok (Finish { measurement; gpt_entries })
            end
            else if tag = tag_attest_req then Ok (Attest_req { nonce = i64 () })
            else if tag = tag_attest_resp then Ok (Attest_resp { quote = blob () })
            else if tag = tag_secret then Ok (Secret { wrapped = blob () })
            else Error (Malformed (Printf.sprintf "unknown frame tag %d" tag))
          with
          | Short -> Error (Malformed "payload overruns its declared length")
          | Invalid_argument _ -> Error (Malformed "undecodable field")
        end
      end

  let is_update b = Bytes.length b >= header_len && Bytes.get_uint8 b 6 = tag_update

  (* Rewrite an UPDATE frame's page list while keeping the framing
     consistent (counts and lengths patched by re-encoding). *)
  let reencode_update f b =
    match decode b with
    | Ok (Update { round; pages }) when pages <> [] -> (
        match f pages with None -> b | Some pages -> encode (Update { round; pages }))
    | _ -> b

  (* The untrusted channel. With no plan installed it is the identity;
     with a fault plan armed it perturbs the encoded frame the way a
     hostile relay would. Every path — one-shot [migrate], the live
     driver, even the attestation replies — routes through here, so the
     fault matrix exercises exactly the framing production code uses. *)
  let transmit b =
    if not (Plan.armed ()) then b
    else begin
      (* Surgical: the last page record vanishes but the frame is
         re-framed consistently, so only the keyed measurement (or the
         one-shot page-count check) can notice. *)
      let b =
        if is_update b && Plan.fire Site.Round_truncate then
          reencode_update
            (fun pages -> Some (List.filteri (fun i _ -> i < List.length pages - 1) pages))
            b
        else b
      in
      (* One ciphertext bit flips in transit. *)
      let b =
        if is_update b && Plan.fire Site.Snapshot_flip then
          reencode_update
            (fun pages ->
              let victim = Plan.draw Site.Snapshot_flip ~bound:(List.length pages) in
              Some
                (List.mapi
                   (fun i (index, cipher) ->
                     if i <> victim || Bytes.length cipher = 0 then (index, cipher)
                     else begin
                       let c = Bytes.copy cipher in
                       let bit = Plan.draw Site.Snapshot_flip ~bound:(Bytes.length c * 8) in
                       let byte = bit / 8 in
                       Bytes.set c byte
                         (Char.chr (Char.code (Bytes.get c byte) lxor (1 lsl (bit mod 8))));
                       (index, c)
                     end)
                   pages))
            b
        else b
      in
      (* Lossy: a page-sized tail of the frame never arrives. The header
         still claims the full length, so decode reports the deficit. *)
      let b =
        if
          is_update b
          && Bytes.length b > header_len + Hw.Addr.page_size
          && Plan.fire Site.Snapshot_truncate
        then Bytes.sub b 0 (Bytes.length b - Hw.Addr.page_size)
        else b
      in
      b
    end
end

(* --- one-shot stop-and-copy (the original API, now over real framing) --- *)

let send ctx (dom : Xen.Domain.t) ~target_public =
  let hv = ctx.Ctx.hv in
  let fw = hv.Xen.Hypervisor.fw in
  match dom.Xen.Domain.sev_handle with
  | None -> Error Not_protected
  | Some handle ->
      let refuse r = Result.map_error (fun e -> Send_refused e) r in
      let nonce = Rng.next64 ctx.Ctx.machine.Fidelius_hw.Machine.rng in
      (* SEND_START then an immediate pause: the one-shot path stops the
         guest for the whole copy (paper 4.3.6); [migrate_live] below keeps
         it running instead. *)
      let* wrapped_keys = refuse (Sev.Firmware.send_start fw ~handle ~target_public ~nonce) in
      dom.Xen.Domain.state <- Xen.Domain.Paused;
      let mapped =
        Hw.Pagetable.mapped_frames dom.Xen.Domain.npt
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let* pages =
        List.fold_left
          (fun acc (gfn, (npte : Hw.Pagetable.proto)) ->
            let* acc = acc in
            let* cipher =
              refuse
                (Sev.Firmware.send_update fw ~handle ~index:gfn
                   ~src_pfn:npte.Hw.Pagetable.frame)
            in
            Ok ((gfn, cipher) :: acc))
          (Ok []) mapped
      in
      let pages = List.rev pages in
      let* measurement = refuse (Sev.Firmware.send_finish fw ~handle) in
      let policy = Sev.Firmware.policy_nodbg in
      let snap =
        { image = { Sev.Transport.pages; measurement; policy; nonce };
          wrapped_keys;
          origin_public = Sev.Firmware.platform_public fw;
          memory_pages = List.length pages;
          gpt_entries = Hw.Pagetable.mapped_frames dom.Xen.Domain.gpt;
          name = dom.Xen.Domain.name }
      in
      Lifecycle.shutdown_protected_vm ctx dom;
      Ok snap

let frames_of_snapshot snap =
  [ Wire.Start
      { name = snap.name;
        memory_pages = snap.memory_pages;
        policy = snap.image.Sev.Transport.policy;
        nonce = snap.image.Sev.Transport.nonce;
        wrapped_keys = snap.wrapped_keys;
        origin_public = snap.origin_public };
    Wire.Update { round = 0; pages = snap.image.Sev.Transport.pages };
    Wire.Finish
      { measurement = snap.image.Sev.Transport.measurement;
        gpt_entries = snap.gpt_entries } ]

(* The one-shot snapshot crosses the channel as three frames. The
   reassembled snapshot is what the target actually received — a damaged
   stream surfaces here as a typed decode error. *)
let transmit snap =
  let* rev_frames =
    List.fold_left
      (fun acc f ->
        let* acc = acc in
        let* f = Wire.decode (Wire.transmit (Wire.encode f)) in
        Ok (f :: acc))
      (Ok []) (frames_of_snapshot snap)
  in
  match List.rev rev_frames with
  | [ Wire.Start { name; memory_pages; policy; nonce; wrapped_keys; origin_public };
      Wire.Update { round = _; pages };
      Wire.Finish { measurement; gpt_entries } ] ->
      Ok
        { image =
            { Sev.Transport.pages = List.map (fun (i, c) -> (gfn_of_index i, c)) pages;
              measurement;
              policy;
              nonce };
          wrapped_keys;
          origin_public;
          memory_pages;
          gpt_entries;
          name }
  | _ -> Error (Malformed "unexpected frame sequence")

(* Structural checks first, so an obviously damaged snapshot is refused
   with a precise typed error before any firmware state is created. *)
let validate snap =
  let pages = snap.image.Sev.Transport.pages in
  let got = List.length pages in
  if got < snap.memory_pages then Error (Truncated { expected = snap.memory_pages; got })
  else begin
    let bad = List.find_opt (fun (_, c) -> Bytes.length c <> Hw.Addr.page_size) pages in
    match bad with
    | Some (gfn, c) ->
        Error
          (Malformed
             (Printf.sprintf "page for gfn 0x%x is %d bytes, want %d" gfn (Bytes.length c)
                Hw.Addr.page_size))
    | None -> Ok ()
  end

let receive ctx snap =
  let* () = validate snap in
  let prepared =
    { Sev.Transport.Owner.image = snap.image;
      wrapped_keys = snap.wrapped_keys;
      owner_public = snap.origin_public;
      kblk = Bytes.create 16 (* travels inside the encrypted memory itself *) }
  in
  let memory_pages =
    (* The target reserves at least as much memory as the snapshot spans. *)
    List.fold_left (fun m (gfn, _) -> max m (gfn + 1)) snap.memory_pages
      snap.image.Sev.Transport.pages
  in
  let* dom =
    match Lifecycle.boot_protected_vm ctx ~name:snap.name ~memory_pages ~prepared with
    | Ok dom -> Ok dom
    | Error (Lifecycle.Rejected e) -> Error (Rejected e)
    | Error (Lifecycle.Failed e) -> Error (Boot_failed e)
  in
  (* Restore the guest page table (in reality it lives inside the migrated
     memory; the simulator keeps it as a separate structure). *)
  List.iter (fun (gvfn, proto) -> Hw.Pagetable.hw_set dom.Xen.Domain.gpt gvfn (Some proto))
    snap.gpt_entries;
  Ok dom

let migrate ~src ~dst dom =
  match dom.Xen.Domain.sev_handle with
  | None -> Error Not_protected
  | Some _ ->
      let target_public = Sev.Firmware.platform_public dst.Ctx.hv.Xen.Hypervisor.fw in
      let* snap = send src dom ~target_public in
      let* snap = transmit snap in
      receive dst snap

(* --- attested secret injection ------------------------------------------ *)

module Owner = struct
  type t = {
    disk_key : bytes;
    minimum_fw_version : Sev.Firmware.version;
    nonce : int64;
    mutable release_count : int;
  }

  let create ?(minimum_fw_version = Sev.Firmware.minimum_safe_version) rng =
    { disk_key = Rng.bytes rng 16;
      minimum_fw_version;
      nonce = Rng.next64 rng;
      release_count = 0 }

  let released t = t.release_count > 0
  let release_count t = t.release_count
  let disk_key t = t.disk_key
end

(* The secret travels wrapped under a key derived from the verified quote's
   MAC: releasing it is meaningful only after the owner has seen (and
   checked) exactly that quote. This stands in for the TIK/TEK-session wrap
   of real LAUNCH_SECRET — the property under test is the gating order, not
   wire secrecy (the simulator's group is toy-sized anyway, DESIGN.md §1). *)
let secret_kek (q : Attest.quote) =
  Sha256.digest (Bytes.cat (Bytes.of_string "fidelius/migrate/secret-kek\x00") q.Attest.mac)

(* --- receive-side state machine ----------------------------------------- *)

type rx_state =
  | Expect_start
  | Streaming of { session : Lifecycle.session; next_round : int }
  | Attesting of { dom : Xen.Domain.t; quote : Attest.quote option }
  | Complete of Xen.Domain.t
  | Rx_failed

type rx = { rx_ctx : Ctx.t; mutable rx_state : rx_state }

let rx_create ctx = { rx_ctx = ctx; rx_state = Expect_start }

let rx_domain rx =
  match rx.rx_state with
  | Attesting { dom; _ } | Complete dom -> Some dom
  | Expect_start | Streaming _ | Rx_failed -> None

let of_boot = function
  | Lifecycle.Rejected e -> Rejected e
  | Lifecycle.Failed e -> Boot_failed e

let rx_fail rx err =
  (match rx.rx_state with
  | Streaming { session; _ } -> Lifecycle.receive_abort session
  | _ -> ());
  rx.rx_state <- Rx_failed;
  Error err

let state_name = function
  | Expect_start -> "EXPECT_START"
  | Streaming _ -> "STREAMING"
  | Attesting _ -> "ATTESTING"
  | Complete _ -> "COMPLETE"
  | Rx_failed -> "FAILED"

let inject_secret ctx dom key =
  (* Firmware-assisted injection into the encrypted guest: the key lands at
     the well-known kblk slot in guest page 0, where the guest's unlock code
     (and Lifecycle.kblk_of_guest) looks for it. *)
  Xen.Hypervisor.in_guest ctx.Ctx.hv dom (fun () ->
      Xen.Domain.write ctx.Ctx.machine dom
        ~addr:(Hw.Addr.addr_of 0 Sev.Transport.Owner.kblk_offset)
        key)

let rx_deliver rx b =
  match Wire.decode b with
  | Error e ->
      (* wire damage kills the incoming migration: abort any partial
         domain rather than leave it half-streamed *)
      rx_fail rx e
  | Ok frame -> (
  match (rx.rx_state, frame) with
  | Rx_failed, _ -> Error (Protocol_violation "migration stream already failed")
  | Expect_start, Wire.Start { name; memory_pages; policy; nonce; wrapped_keys; origin_public }
    -> (
      match
        Lifecycle.receive_begin rx.rx_ctx ~name ~memory_pages ~wrapped_keys ~origin_public
          ~nonce ~policy
      with
      | Error e -> rx_fail rx (of_boot e)
      | Ok session ->
          rx.rx_state <- Streaming { session; next_round = 0 };
          Ok None)
  | Streaming { session; next_round }, Wire.Update { round; pages } ->
      if round <> next_round then
        rx_fail rx
          (Protocol_violation
             (Printf.sprintf "UPDATE round %d arrived, expected %d" round next_round))
      else begin
        match List.find_opt (fun (_, c) -> Bytes.length c <> Hw.Addr.page_size) pages with
        | Some (index, c) ->
            rx_fail rx
              (Malformed
                 (Printf.sprintf "page at index 0x%x is %d bytes, want %d" index
                    (Bytes.length c) Hw.Addr.page_size))
        | None -> (
            let triples =
              List.map (fun (index, cipher) -> (index, gfn_of_index index, cipher)) pages
            in
            match Lifecycle.receive_pages session triples with
            | Error e -> rx_fail rx (of_boot e)
            | Ok () ->
                rx.rx_state <- Streaming { session; next_round = next_round + 1 };
                Ok None)
      end
  | Streaming { session; _ }, Wire.Finish { measurement; gpt_entries } -> (
      match Lifecycle.receive_complete session ~expected:measurement with
      | Error e -> rx_fail rx (of_boot e)
      | Ok dom ->
          List.iter
            (fun (gvfn, proto) -> Hw.Pagetable.hw_set dom.Xen.Domain.gpt gvfn (Some proto))
            gpt_entries;
          rx.rx_state <- Attesting { dom; quote = None };
          Ok None)
  | Attesting { dom; quote = _ }, Wire.Attest_req { nonce } ->
      let q = Attest.quote rx.rx_ctx ~guest:dom ~nonce () in
      rx.rx_state <- Attesting { dom; quote = Some q };
      Ok (Some (Wire.transmit (Wire.encode (Wire.Attest_resp { quote = Attest.serialize q }))))
  | Attesting { quote = None; _ }, Wire.Secret _ ->
      (* The guest stays up; the secret stays out. No teardown: refusing
         the injection is the fail-closed behaviour. *)
      Error (Protocol_violation "SECRET before any attestation quote was issued")
  | Attesting { dom; quote = Some q }, Wire.Secret { wrapped } -> (
      match Keywrap.of_bytes wrapped with
      | None -> Error (Malformed "SECRET: undecodable wrap")
      | Some w -> (
          match Keywrap.unwrap ~kek:(secret_kek q) w with
          | None -> Error (Rejected "SECRET: wrap not bound to this platform's quote")
          | Some key ->
              inject_secret rx.rx_ctx dom key;
              rx.rx_state <- Complete dom;
              Ok None))
  | state, frame ->
      let tag =
        match frame with
        | Wire.Start _ -> "START"
        | Wire.Update _ -> "UPDATE"
        | Wire.Finish _ -> "FINISH"
        | Wire.Attest_req _ -> "ATTEST_REQ"
        | Wire.Attest_resp _ -> "ATTEST_RESP"
        | Wire.Secret _ -> "SECRET"
      in
      rx_fail rx
        (Protocol_violation (Printf.sprintf "%s frame in state %s" tag (state_name state))))

(* --- live pre-copy driver ----------------------------------------------- *)

type config = { downtime_budget_us : float; max_rounds : int }

let default_config = { downtime_budget_us = 10.; max_rounds = 8 }

let budget_pages config =
  max 0 (int_of_float (config.downtime_budget_us /. page_us))

type report = {
  rounds : int;
  pages_sent : int;
  residual_pages : int;
  downtime_us : float;
  secret_released : bool;
}

let migrate_live ?(config = default_config) ?owner ?(mutate = fun _ -> ()) ~src ~dst dom =
  let hv = src.Ctx.hv in
  let fw = hv.Xen.Hypervisor.fw in
  match dom.Xen.Domain.sev_handle with
  | None -> Error Not_protected
  | Some handle -> (
      let nonce = Rng.next64 src.Ctx.machine.Hw.Machine.rng in
      let target_public = Sev.Firmware.platform_public dst.Ctx.hv.Xen.Hypervisor.fw in
      match Sev.Firmware.send_start fw ~handle ~target_public ~nonce with
      | Error e -> Error (Send_refused e)
      | Ok wrapped_keys ->
          (* The guest keeps running; from here on the dirty log records
             what the pre-copy loop still owes the target. *)
          Hw.Dirty.start dom.Xen.Domain.dirty;
          let fail e =
            (* A failed migration must leave the source guest running. *)
            Hw.Dirty.stop dom.Xen.Domain.dirty;
            if dom.Xen.Domain.state = Xen.Domain.Paused then
              dom.Xen.Domain.state <- Xen.Domain.Runnable;
            Error e
          in
          let ( let* ) r k = match r with Error e -> fail e | Ok v -> k v in
          let rx = rx_create dst in
          let deliver frame = rx_deliver rx (Wire.transmit (Wire.encode frame)) in
          let mapped =
            Hw.Pagetable.mapped_frames dom.Xen.Domain.npt
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          let span = List.fold_left (fun m (g, _) -> max m (g + 1)) 0 mapped in
          let send_pages round gfns =
            List.fold_left
              (fun acc gfn ->
                match acc with
                | Error _ as e -> e
                | Ok acc -> (
                    match Hw.Pagetable.lookup dom.Xen.Domain.npt gfn with
                    | None -> Ok acc (* unmapped since it was dirtied: nothing to send *)
                    | Some npte -> (
                        let index = index_of ~round ~gfn in
                        match
                          Sev.Firmware.send_update fw ~handle ~index
                            ~src_pfn:npte.Hw.Pagetable.frame
                        with
                        | Error e -> Error (Send_refused e)
                        | Ok cipher -> Ok ((index, cipher) :: acc))))
              (Ok []) gfns
            |> Result.map List.rev
          in
          let* _ =
            deliver
              (Wire.Start
                 { name = dom.Xen.Domain.name;
                   memory_pages = span;
                   policy = Sev.Firmware.policy_nodbg;
                   nonce;
                   wrapped_keys;
                   origin_public = Sev.Firmware.platform_public fw })
          in
          let budget = budget_pages config in
          let finish_with ~round ~pages_sent ~residual =
            match Sev.Firmware.send_finish fw ~handle with
            | Error e -> fail (Send_refused e)
            | Ok measurement ->
                let* _ =
                  deliver
                    (Wire.Finish
                       { measurement;
                         gpt_entries = Hw.Pagetable.mapped_frames dom.Xen.Domain.gpt })
                in
                let report ~secret_released =
                  { rounds = round + 2;
                    pages_sent;
                    residual_pages = residual;
                    downtime_us = float_of_int residual *. page_us;
                    secret_released }
                in
                let complete ~secret_released =
                  let dst_dom =
                    match rx_domain rx with Some d -> d | None -> assert false
                  in
                  (* Cut over: only now does the source instance die. *)
                  Lifecycle.shutdown_protected_vm src dom;
                  Ok (dst_dom, report ~secret_released)
                in
                (match owner with
                | None -> complete ~secret_released:false
                | Some o ->
                    (* On any refusal the cut-over is cancelled: the target
                       instance is destroyed and the source resumes. *)
                    let refuse err =
                      (match rx_domain rx with
                      | Some d -> Lifecycle.shutdown_protected_vm dst d
                      | None -> ());
                      fail err
                    in
                    if Plan.armed () && Plan.fire Site.Secret_before_attest then begin
                      (* Broken tooling pushes a LAUNCH_SECRET before any
                         quote was requested. The owner released nothing;
                         whatever blob the tooling fabricated is bound to no
                         quote and the receiver must refuse it. *)
                      let bogus =
                        Keywrap.wrap ~kek:(Bytes.make 32 '\000') (Bytes.make 16 '\000')
                      in
                      match deliver (Wire.Secret { wrapped = Keywrap.to_bytes bogus }) with
                      | Error e -> refuse e
                      | Ok _ ->
                          refuse
                            (Protocol_violation "receiver accepted a SECRET sent before attestation")
                    end
                    else
                      match deliver (Wire.Attest_req { nonce = o.Owner.nonce }) with
                      | Error e -> refuse e
                      | Ok None -> refuse (Protocol_violation "no quote came back")
                      | Ok (Some reply) -> (
                          match Wire.decode reply with
                          | Error e -> refuse e
                          | Ok (Wire.Attest_resp { quote }) -> (
                              match Attest.deserialize quote with
                              | None -> refuse (Malformed "quote has the wrong wire length")
                              | Some q -> (
                                  let attestation_key =
                                    Sev.Firmware.attestation_key dst.Ctx.hv.Xen.Hypervisor.fw
                                  in
                                  match
                                    Attest.verify ~attestation_key
                                      ~expected_xen_measurement:dst.Ctx.xen_measurement
                                      ~minimum_fw_version:o.Owner.minimum_fw_version
                                      ~nonce:o.Owner.nonce q
                                  with
                                  | Error (Attest.Stale_firmware { got; minimum }) ->
                                      refuse (Stale_firmware { got; minimum })
                                  | Error e -> refuse (Attest_refused e)
                                  | Ok () -> (
                                      o.Owner.release_count <- o.Owner.release_count + 1;
                                      let wrapped =
                                        Keywrap.wrap ~kek:(secret_kek q) o.Owner.disk_key
                                      in
                                      match
                                        deliver
                                          (Wire.Secret { wrapped = Keywrap.to_bytes wrapped })
                                      with
                                      | Error e -> refuse e
                                      | Ok _ -> complete ~secret_released:true)))
                          | Ok _ -> refuse (Protocol_violation "expected an ATTEST_RESP reply")))
          in
          let rec precopy round gfns pages_sent =
            let* pages = send_pages round gfns in
            let* _ = deliver (Wire.Update { round; pages }) in
            let pages_sent = pages_sent + List.length pages in
            (* The guest ran while the round was on the wire. *)
            mutate round;
            let dirty = Hw.Dirty.drain dom.Xen.Domain.dirty in
            if List.length dirty <= budget || round + 1 >= config.max_rounds then begin
              (* Residual fits the downtime budget (or we hit the round
                 cap): stop-and-copy what remains. *)
              dom.Xen.Domain.state <- Xen.Domain.Paused;
              Hw.Dirty.stop dom.Xen.Domain.dirty;
              let* residual = send_pages (round + 1) dirty in
              let* _ = deliver (Wire.Update { round = round + 1; pages = residual }) in
              finish_with ~round ~pages_sent:(pages_sent + List.length residual)
                ~residual:(List.length residual)
            end
            else precopy (round + 1) dirty pages_sent
          in
          precopy 0 (List.map fst mapped) 0)
