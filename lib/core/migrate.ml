module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Rng = Fidelius_crypto.Rng

type snapshot = {
  image : Sev.Transport.image;
  wrapped_keys : Fidelius_crypto.Keywrap.wrapped;
  origin_public : Fidelius_crypto.Dh.public;
  memory_pages : int;
  gpt_entries : (Hw.Addr.vfn * Hw.Pagetable.proto) list;
  name : string;
}

let ( let* ) = Result.bind

let send ctx (dom : Xen.Domain.t) ~target_public =
  let hv = ctx.Ctx.hv in
  let fw = hv.Xen.Hypervisor.fw in
  match dom.Xen.Domain.sev_handle with
  | None -> Error "migrate: domain is not SEV-protected"
  | Some handle ->
      let nonce = Rng.next64 ctx.Ctx.machine.Fidelius_hw.Machine.rng in
      (* SEND_START stops the guest: no live migration (paper 4.3.6). *)
      let* wrapped_keys = Sev.Firmware.send_start fw ~handle ~target_public ~nonce in
      dom.Xen.Domain.state <- Xen.Domain.Paused;
      let mapped =
        Hw.Pagetable.mapped_frames dom.Xen.Domain.npt
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let* pages =
        List.fold_left
          (fun acc (gfn, (npte : Hw.Pagetable.proto)) ->
            let* acc = acc in
            let* cipher =
              Sev.Firmware.send_update fw ~handle ~index:gfn ~src_pfn:npte.Hw.Pagetable.frame
            in
            Ok ((gfn, cipher) :: acc))
          (Ok []) mapped
      in
      let pages = List.rev pages in
      let* raw_measurement = Sev.Firmware.send_finish fw ~handle in
      (* The transport image format folds policy and nonce into the keyed
         measurement; replicate the owner-side framing so RECEIVE_FINISH on
         the target verifies the same value. The firmware's page-only
         measurement is replaced by the framed one below. *)
      ignore raw_measurement;
      let policy = Sev.Firmware.policy_nodbg in
      let snapshot_of measurement =
        { image = { Sev.Transport.pages; measurement; policy; nonce };
          wrapped_keys;
          origin_public = Sev.Firmware.platform_public fw;
          memory_pages = List.length pages;
          gpt_entries = Hw.Pagetable.mapped_frames dom.Xen.Domain.gpt;
          name = dom.Xen.Domain.name }
      in
      let snap = snapshot_of raw_measurement in
      Lifecycle.shutdown_protected_vm ctx dom;
      Ok snap

let receive ctx snap =
  let prepared =
    { Sev.Transport.Owner.image = snap.image;
      wrapped_keys = snap.wrapped_keys;
      owner_public = snap.origin_public;
      kblk = Bytes.create 16 (* travels inside the encrypted memory itself *) }
  in
  let memory_pages =
    (* The target reserves at least as much memory as the snapshot spans. *)
    List.fold_left (fun m (gfn, _) -> max m (gfn + 1)) snap.memory_pages
      snap.image.Sev.Transport.pages
  in
  let* dom = Lifecycle.boot_protected_vm ctx ~name:snap.name ~memory_pages ~prepared in
  (* Restore the guest page table (in reality it lives inside the migrated
     memory; the simulator keeps it as a separate structure). *)
  List.iter (fun (gvfn, proto) -> Hw.Pagetable.hw_set dom.Xen.Domain.gpt gvfn (Some proto))
    snap.gpt_entries;
  Ok dom

let migrate ~src ~dst dom =
  match dom.Xen.Domain.sev_handle with
  | None -> Error "migrate: domain is not SEV-protected"
  | Some _ ->
      let target_public = Sev.Firmware.platform_public dst.Ctx.hv.Xen.Hypervisor.fw in
      let* snap = send src dom ~target_public in
      receive dst snap
