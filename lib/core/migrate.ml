module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Rng = Fidelius_crypto.Rng
module Plan = Fidelius_inject.Plan
module Site = Fidelius_inject.Site

type snapshot = {
  image : Sev.Transport.image;
  wrapped_keys : Fidelius_crypto.Keywrap.wrapped;
  origin_public : Fidelius_crypto.Dh.public;
  memory_pages : int;
  gpt_entries : (Hw.Addr.vfn * Hw.Pagetable.proto) list;
  name : string;
}

type error =
  | Not_protected
  | Send_refused of string
  | Truncated of { expected : int; got : int }
  | Malformed of string
  | Rejected of string
  | Boot_failed of string

let pp_error fmt = function
  | Not_protected -> Format.pp_print_string fmt "migrate: domain is not SEV-protected"
  | Send_refused e -> Format.fprintf fmt "migrate: send refused: %s" e
  | Truncated { expected; got } ->
      Format.fprintf fmt "migrate: snapshot truncated (expected %d pages, got %d)" expected got
  | Malformed e -> Format.fprintf fmt "migrate: malformed snapshot: %s" e
  | Rejected e -> Format.fprintf fmt "migrate: target platform rejected the image: %s" e
  | Boot_failed e -> Format.fprintf fmt "migrate: receive-side boot failed: %s" e

let error_to_string e = Format.asprintf "%a" pp_error e

let ( let* ) = Result.bind

let send ctx (dom : Xen.Domain.t) ~target_public =
  let hv = ctx.Ctx.hv in
  let fw = hv.Xen.Hypervisor.fw in
  match dom.Xen.Domain.sev_handle with
  | None -> Error Not_protected
  | Some handle ->
      let refuse r = Result.map_error (fun e -> Send_refused e) r in
      let nonce = Rng.next64 ctx.Ctx.machine.Fidelius_hw.Machine.rng in
      (* SEND_START stops the guest: no live migration (paper 4.3.6). *)
      let* wrapped_keys = refuse (Sev.Firmware.send_start fw ~handle ~target_public ~nonce) in
      dom.Xen.Domain.state <- Xen.Domain.Paused;
      let mapped =
        Hw.Pagetable.mapped_frames dom.Xen.Domain.npt
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let* pages =
        List.fold_left
          (fun acc (gfn, (npte : Hw.Pagetable.proto)) ->
            let* acc = acc in
            let* cipher =
              refuse
                (Sev.Firmware.send_update fw ~handle ~index:gfn
                   ~src_pfn:npte.Hw.Pagetable.frame)
            in
            Ok ((gfn, cipher) :: acc))
          (Ok []) mapped
      in
      let pages = List.rev pages in
      let* raw_measurement = refuse (Sev.Firmware.send_finish fw ~handle) in
      (* The transport image format folds policy and nonce into the keyed
         measurement; replicate the owner-side framing so RECEIVE_FINISH on
         the target verifies the same value. The firmware's page-only
         measurement is replaced by the framed one below. *)
      ignore raw_measurement;
      let policy = Sev.Firmware.policy_nodbg in
      let snapshot_of measurement =
        { image = { Sev.Transport.pages; measurement; policy; nonce };
          wrapped_keys;
          origin_public = Sev.Firmware.platform_public fw;
          memory_pages = List.length pages;
          gpt_entries = Hw.Pagetable.mapped_frames dom.Xen.Domain.gpt;
          name = dom.Xen.Domain.name }
      in
      let snap = snapshot_of raw_measurement in
      Lifecycle.shutdown_protected_vm ctx dom;
      Ok snap

(* The untrusted channel between [send] and [receive]. With a fault plan
   armed it may lose trailing pages or flip ciphertext bits; with no plan
   installed it is the identity. [migrate] routes through it, so the fault
   matrix exercises the same path production code uses. *)
let transmit snap =
  if not (Plan.armed ()) then snap
  else begin
    let pages = snap.image.Sev.Transport.pages in
    let pages =
      if pages <> [] && Plan.fire Site.Snapshot_truncate then
        (* lossy channel: the trailing page never arrives *)
        List.filteri (fun i _ -> i < List.length pages - 1) pages
      else pages
    in
    let pages =
      if pages <> [] && Plan.fire Site.Snapshot_flip then begin
        let victim = Plan.draw Site.Snapshot_flip ~bound:(List.length pages) in
        List.mapi
          (fun i (gfn, cipher) ->
            if i <> victim then (gfn, cipher)
            else begin
              let c = Bytes.copy cipher in
              let bit = Plan.draw Site.Snapshot_flip ~bound:(Bytes.length c * 8) in
              let byte = bit / 8 in
              Bytes.set c byte
                (Char.chr (Char.code (Bytes.get c byte) lxor (1 lsl (bit mod 8))));
              (gfn, c)
            end)
          pages
      end
      else pages
    in
    { snap with image = { snap.image with Sev.Transport.pages } }
  end

(* Structural checks first, so an obviously damaged snapshot is refused
   with a precise typed error before any firmware state is created. *)
let validate snap =
  let pages = snap.image.Sev.Transport.pages in
  let got = List.length pages in
  if got < snap.memory_pages then Error (Truncated { expected = snap.memory_pages; got })
  else begin
    let bad =
      List.find_opt (fun (_, c) -> Bytes.length c <> Hw.Addr.page_size) pages
    in
    match bad with
    | Some (gfn, c) ->
        Error
          (Malformed
             (Printf.sprintf "page for gfn 0x%x is %d bytes, want %d" gfn (Bytes.length c)
                Hw.Addr.page_size))
    | None -> Ok ()
  end

let receive ctx snap =
  let* () = validate snap in
  let prepared =
    { Sev.Transport.Owner.image = snap.image;
      wrapped_keys = snap.wrapped_keys;
      owner_public = snap.origin_public;
      kblk = Bytes.create 16 (* travels inside the encrypted memory itself *) }
  in
  let memory_pages =
    (* The target reserves at least as much memory as the snapshot spans. *)
    List.fold_left (fun m (gfn, _) -> max m (gfn + 1)) snap.memory_pages
      snap.image.Sev.Transport.pages
  in
  let* dom =
    match Lifecycle.boot_protected_vm ctx ~name:snap.name ~memory_pages ~prepared with
    | Ok dom -> Ok dom
    | Error (Lifecycle.Rejected e) -> Error (Rejected e)
    | Error (Lifecycle.Failed e) -> Error (Boot_failed e)
  in
  (* Restore the guest page table (in reality it lives inside the migrated
     memory; the simulator keeps it as a separate structure). *)
  List.iter (fun (gvfn, proto) -> Hw.Pagetable.hw_set dom.Xen.Domain.gpt gvfn (Some proto))
    snap.gpt_entries;
  Ok dom

let migrate ~src ~dst dom =
  match dom.Xen.Domain.sev_handle with
  | None -> Error Not_protected
  | Some _ ->
      let target_public = Sev.Firmware.platform_public dst.Ctx.hv.Xen.Hypervisor.fw in
      let* snap = send src dom ~target_public in
      receive dst (transmit snap)
