(** Full VM life-cycle protection (paper Section 4.3).

    The protected boot path is the paper's novel reuse of the SEV migration
    API: the guest owner prepares an *encrypted kernel image* offline (the
    SEND side, {!Fidelius_sev.Transport.Owner}); Fidelius boots it with the
    RECEIVE side — RECEIVE_START unwraps the transport keys, the hypervisor
    loads ciphertext pages during a temporary write window, RECEIVE_UPDATE
    re-encrypts them in place under a fresh Kvek, and RECEIVE_FINISH checks
    the keyed measurement before the guest ever runs. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev

type boot_error =
  | Rejected of string
      (** the platform's verification verdict: RECEIVE_START key unwrap or
          RECEIVE_FINISH measurement refused the image *)
  | Failed of string
      (** mechanical boot failure — image too large, page load or mediation
          error, ACTIVATE, first VMRUN — classified by call site, never by
          matching error strings *)

val boot_error_to_string : boot_error -> string
val pp_boot_error : Format.formatter -> boot_error -> unit

val boot_protected_vm :
  Ctx.t ->
  name:string ->
  memory_pages:int ->
  prepared:Sev.Transport.Owner.prepared ->
  (Xen.Domain.t, boot_error) result
(** Boot a protected guest from an owner-prepared encrypted image. On
    success the domain is RUNNING in the firmware, ACTIVATEd, its frames are
    unmapped from the hypervisor, its NPT write-protected, its guest page
    table C-bit-mapped, and the first VMRUN has executed through the type-3
    gate. Any failure rolls the partial domain back before returning.

    Internally this is the degenerate form of the incremental receive
    below: one {!receive_pages} round, transport index equal to placement
    gfn. *)

(** {2 Incremental receive (live migration)}

    Live migration delivers memory in several dirty rounds, so the
    RECEIVE side is also exposed as a session: {!receive_begin} runs
    RECEIVE_START and allocates the (not yet runnable) domain,
    {!receive_pages} loads one round of ciphertext pages, and
    {!receive_complete} verifies the keyed measurement and performs the
    first gated VMRUN. Every input to the session arrives over the
    untrusted migration channel — nothing is trusted until
    RECEIVE_FINISH's measurement check inside {!receive_complete}
    passes. Any failing step rolls the partial domain back and poisons
    the session; later calls on a poisoned (or completed) session return
    [Failed]. *)

type session
(** A partially received protected domain: keys unwrapped, zero or more
    page rounds loaded, not yet measured or activated. *)

val receive_begin :
  Ctx.t ->
  name:string ->
  memory_pages:int ->
  wrapped_keys:Fidelius_crypto.Keywrap.wrapped ->
  origin_public:Fidelius_crypto.Dh.public ->
  nonce:int64 ->
  policy:int ->
  (session, boot_error) result
(** Allocate the target domain (frames revoked from the hypervisor as they
    are handed out) and run RECEIVE_START. [wrapped_keys], [origin_public],
    [nonce] and [policy] all arrived over the wire; a wrong or tampered
    wrap is refused here as [Rejected] (key unwrap is the platform's first
    verification verdict). *)

val receive_pages :
  session -> (int * Hw.Addr.gfn * bytes) list -> (unit, boot_error) result
(** Load one round of [(transport_index, gfn, ciphertext)] triples: each
    page is written through a temporary hypervisor write window and
    re-encrypted in place by RECEIVE_UPDATE under the transport index.
    The index both keys the transport CTR stream and is folded into the
    running measurement, so a page replayed at the wrong index or placed
    at the wrong gfn changes the measurement verified later. Mechanical
    failures (unpopulated gfn, mediation refusal) are [Failed]. *)

val receive_complete : session -> expected:bytes -> (Xen.Domain.t, boot_error) result
(** RECEIVE_FINISH against the sender's keyed measurement [expected]
    (untrusted — but forging it requires Ktik), then ACTIVATE, C-bit
    mapping and the first gated VMRUN. A measurement mismatch is
    [Rejected]; the partial domain is destroyed and no guest instruction
    has executed. *)

val receive_abort : session -> unit
(** Tear the partial domain down (idempotent; no-op after completion or a
    rollback). The migration driver calls this when the wire breaks
    mid-stream. *)

val session_domain : session -> Xen.Domain.t
(** The not-yet-runnable domain under construction — exposed for
    diagnostics only; it must not be started by hand. *)

val start : Ctx.t -> Xen.Domain.t -> (unit, string) result
(** (Re-)enter the guest through the gated VMRUN path. *)

val shutdown_protected_vm : Ctx.t -> Xen.Domain.t -> unit
(** The paper's Section 4.3.8: DEACTIVATE and DECOMMISSION the firmware
    context, clear the NPT under teardown authority, reset PIT entries,
    revoke GIT intents, scrub and release the frames, drop the shadow. *)

val write_start_info : ?off:int -> Ctx.t -> Xen.Domain.t -> bytes -> (unit, string) result
(** Hypervisor-side write into the guest's start_info page, governed by the
    byte-granular write-once policy (paper Section 5.3): disjoint ranges may
    each be written once during construction; rewriting any byte is denied. *)

val kblk_of_guest : Ctx.t -> Xen.Domain.t -> bytes
(** The disk encryption key the owner embedded in kernel page 0 — readable
    only from inside the guest (this helper performs a guest-mode read). *)

val attestation_report : Ctx.t -> string
(** Human-readable late-launch measurement of the hypervisor text plus gate
    statistics, as a remote-attestation stand-in. *)
