(** Full VM life-cycle protection (paper Section 4.3).

    The protected boot path is the paper's novel reuse of the SEV migration
    API: the guest owner prepares an *encrypted kernel image* offline (the
    SEND side, {!Fidelius_sev.Transport.Owner}); Fidelius boots it with the
    RECEIVE side — RECEIVE_START unwraps the transport keys, the hypervisor
    loads ciphertext pages during a temporary write window, RECEIVE_UPDATE
    re-encrypts them in place under a fresh Kvek, and RECEIVE_FINISH checks
    the keyed measurement before the guest ever runs. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev

type boot_error =
  | Rejected of string
      (** the platform's verification verdict: RECEIVE_START key unwrap or
          RECEIVE_FINISH measurement refused the image *)
  | Failed of string
      (** mechanical boot failure — image too large, page load or mediation
          error, ACTIVATE, first VMRUN — classified by call site, never by
          matching error strings *)

val boot_error_to_string : boot_error -> string
val pp_boot_error : Format.formatter -> boot_error -> unit

val boot_protected_vm :
  Ctx.t ->
  name:string ->
  memory_pages:int ->
  prepared:Sev.Transport.Owner.prepared ->
  (Xen.Domain.t, boot_error) result
(** Boot a protected guest from an owner-prepared encrypted image. On
    success the domain is RUNNING in the firmware, ACTIVATEd, its frames are
    unmapped from the hypervisor, its NPT write-protected, its guest page
    table C-bit-mapped, and the first VMRUN has executed through the type-3
    gate. Any failure rolls the partial domain back before returning. *)

val start : Ctx.t -> Xen.Domain.t -> (unit, string) result
(** (Re-)enter the guest through the gated VMRUN path. *)

val shutdown_protected_vm : Ctx.t -> Xen.Domain.t -> unit
(** The paper's Section 4.3.8: DEACTIVATE and DECOMMISSION the firmware
    context, clear the NPT under teardown authority, reset PIT entries,
    revoke GIT intents, scrub and release the frames, drop the shadow. *)

val write_start_info : ?off:int -> Ctx.t -> Xen.Domain.t -> bytes -> (unit, string) result
(** Hypervisor-side write into the guest's start_info page, governed by the
    byte-granular write-once policy (paper Section 5.3): disjoint ranges may
    each be written once during construction; rewriting any byte is denied. *)

val kblk_of_guest : Ctx.t -> Xen.Domain.t -> bytes
(** The disk encryption key the owner embedded in kernel page 0 — readable
    only from inside the guest (this helper performs a guest-mode read). *)

val attestation_report : Ctx.t -> string
(** Human-readable late-launch measurement of the hypervisor text plus gate
    statistics, as a remote-attestation stand-in. *)
