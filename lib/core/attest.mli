(** Remote attestation of the Fidelius platform (paper Section 4.3.1:
    "leverages existing hardware support to issue a measurement on its
    integrity, which can be used in remote attestation to verify its
    validity").

    A quote binds, under the platform's attestation key and a
    verifier-chosen nonce: the hypervisor-text measurement Fidelius took at
    late launch, the secure-processor {e firmware version}, and optionally
    a protected guest's identity. The firmware version is load-bearing
    ("Insecure Until Proven Updated", PAPERS.md): the platform identity key
    survives a firmware downgrade, so a quote from a vulnerable old blob
    still MAC-verifies — only the version policy check in {!verify} can
    refuse the rollback.

    Trust boundaries: {!quote} runs on the (attested) platform; every input
    to {!verify} except [attestation_key], [expected_xen_measurement],
    [minimum_fw_version] and [nonce] — i.e. the quote itself — arrived over
    the untrusted channel and is treated as attacker-supplied. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev

type quote = {
  xen_measurement : bytes;    (** SHA-256 of the hypervisor text at late launch *)
  fw_version : Sev.Firmware.version;
      (** the secure-processor blob the platform reports running *)
  guest_domid : int option;
  nonce : int64;
  mac : bytes;                (** firmware quote over all of the above *)
}

(** Why a verifier refused a quote. Checked in declaration order, so the
    first violated property is the one reported. *)
type error =
  | Nonce_mismatch
      (** the quote's nonce is not the one this verifier chose — a replay
          of an old (possibly once-honest) quote *)
  | Bad_mac
      (** the MAC does not verify under the platform's attestation key:
          quoted by a different platform, or tampered in transit *)
  | Stale_firmware of { got : Sev.Firmware.version; minimum : Sev.Firmware.version }
      (** genuine quote, but the platform reports a firmware build below
          the verifier's policy floor — the rollback attack. The verifier
          must release no secret to this platform *)
  | Hypervisor_mismatch
      (** genuine, current firmware, but the late-launch hypervisor text
          hash differs from the expected build *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val quote : Ctx.t -> ?guest:Xen.Domain.t -> nonce:int64 -> unit -> quote
(** Ask the platform firmware to quote the late-launch state. [nonce] is
    the remote verifier's anti-replay challenge (untrusted input to the
    platform; it is simply folded into the MAC). With the
    [Stale_firmware] fault site armed, the hypervisor swaps in the
    vulnerable blob just before quoting — the returned quote is genuinely
    MACed but reports the downgraded version. *)

val quote_fw :
  Sev.Firmware.t -> xen_measurement:bytes -> ?guest_domid:int -> nonce:int64 -> unit -> quote
(** {!quote} without a Fidelius context: quote an arbitrary platform
    firmware with a caller-supplied hypervisor measurement. This is the
    plain-SEV configuration — the version-policy story applies to stock
    SEV exactly as to Fidelius, so the rollback refusal must work there
    too. *)

val verify :
  attestation_key:bytes ->
  expected_xen_measurement:bytes ->
  ?minimum_fw_version:Sev.Firmware.version ->
  nonce:int64 ->
  quote ->
  (unit, error) result
(** Verifier side. [attestation_key] comes from the manufacturer cert
    chain and [expected_xen_measurement]/[minimum_fw_version]/[nonce] are
    the verifier's own policy — all trusted; the quote is untrusted.
    Checks, in order: the nonce (anti-replay), the firmware MAC, the
    firmware version against [minimum_fw_version] (default
    {!Sev.Firmware.minimum_safe_version}), and the hypervisor measurement
    against the expected build. *)

val serialize : quote -> bytes
val deserialize : bytes -> quote option
(** Wire format, for shipping the quote over an untrusted channel.
    [deserialize] is [None] on any length mismatch; field tampering is
    caught later by {!verify}'s MAC check, not here. *)
