(** Remote attestation of the Fidelius platform (paper Section 4.3.1:
    "leverages existing hardware support to issue a measurement on its
    integrity, which can be used in remote attestation to verify its
    validity").

    A quote binds, under the platform's attestation key and a
    verifier-chosen nonce: the hypervisor-text measurement Fidelius took at
    late launch, and optionally a protected guest's identity. A remote
    verifier who knows the expected hypervisor build hash can thus check
    that the platform it is about to trust runs an unmodified hypervisor
    with Fidelius installed. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen

type quote = {
  xen_measurement : bytes;    (** SHA-256 of the hypervisor text at late launch *)
  guest_domid : int option;
  nonce : int64;
  mac : bytes;                (** firmware quote over the above *)
}

val quote : Ctx.t -> ?guest:Xen.Domain.t -> nonce:int64 -> unit -> quote
(** Ask the platform firmware to quote the late-launch state. *)

val verify :
  attestation_key:bytes ->
  expected_xen_measurement:bytes ->
  nonce:int64 ->
  quote ->
  (unit, string) result
(** Verifier side: checks the firmware MAC, the nonce (anti-replay) and the
    hypervisor measurement against the expected build. *)

val serialize : quote -> bytes
val deserialize : bytes -> quote option
(** Wire format, for shipping the quote over an untrusted channel. *)
