(** Hardware-integrity extension (paper Section 8, suggestion 1).

    Builds a {!Fidelius_hw.Bmt} over a protected guest's frames and offers
    verified access paths. With this extension enabled, the physical-channel
    attacks the paper concedes (Rowhammer flips, in-place ciphertext replay
    by DMA) are *detected* instead of silently garbling guest state.

    This is deliberately layered as an extension: the baseline Fidelius of
    the paper runs without it (the hardware did not exist), and the
    `bench/main.exe ablate` section quantifies what the missing hardware
    would cost. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen

type t

val protect : Ctx.t -> Xen.Domain.t -> t
(** Build the tree over every frame currently backing the domain. The tree
    pages live with the secure processor (no frames are consumed). Also
    arms the memory controller's inline fetch check
    ({!Hw.Memctrl.set_fetch_check}): encrypted reads of covered frames are
    verified against the tree as they happen and raise
    [Hw.Denial.Denied] on mismatch, catching misrouted fetches that a
    DRAM-content sweep cannot see. One inline check per controller — the
    latest [protect] wins. *)

val verified_read :
  t -> addr:int -> len:int -> (bytes, string) result
(** Verify the integrity of every frame the range touches, then perform the
    guest-mode read. Fails closed on any mismatch. *)

val guest_write : t -> addr:int -> bytes -> unit
(** Guest-mode write through the integrity engine: performs the write and
    refreshes the affected leaves (the secure processor witnesses the
    legitimate store). *)

val verify_domain : t -> (unit, string) result
(** Full sweep over the domain's frames. *)

val root : t -> bytes
val hashes_performed : t -> int
