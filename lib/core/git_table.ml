module Hw = Fidelius_hw

type intent = {
  initiator : int;
  target : int;
  gfn : Hw.Addr.gfn;
  nr : int;
  writable : bool;
}

(* Entry layout (24 bytes): initiator(2) target(2) gfn(8) nr(4) flags(1):
   bit0 writable, bit1 in_use; 7 bytes pad. *)
let entry_size = 24
let entries_per_frame = Hw.Addr.page_size / entry_size
let nr_frames = 2

type t = {
  machine : Hw.Machine.t;
  frames : Hw.Addr.pfn array;
}

let create machine =
  { machine; frames = Array.of_list (Hw.Machine.alloc_frames machine nr_frames) }

let capacity t = Array.length t.frames * entries_per_frame

let locate t idx = (t.frames.(idx / entries_per_frame), idx mod entries_per_frame * entry_size)

let c_git = Hw.Cost.intern "git"

let charge t =
  Hw.Cost.charge_id t.machine.Hw.Machine.ledger c_git
    t.machine.Hw.Machine.costs.Hw.Cost.git_lookup

let read_slot t idx =
  let pfn, off = locate t idx in
  let b = Hw.Physmem.read_raw t.machine.Hw.Machine.mem pfn ~off ~len:entry_size in
  let flags = Char.code (Bytes.get b 16) in
  if flags land 2 = 0 then None
  else
    Some
      { initiator = Bytes.get_uint16_be b 0;
        target = Bytes.get_uint16_be b 2;
        gfn = Int64.to_int (Bytes.get_int64_be b 4);
        nr = Int32.to_int (Bytes.get_int32_be b 12);
        writable = flags land 1 <> 0 }

let write_slot t idx intent =
  let pfn, off = locate t idx in
  let b = Bytes.make entry_size '\000' in
  (match intent with
  | None -> ()
  | Some i ->
      Bytes.set_uint16_be b 0 i.initiator;
      Bytes.set_uint16_be b 2 i.target;
      Bytes.set_int64_be b 4 (Int64.of_int i.gfn);
      Bytes.set_int32_be b 12 (Int32.of_int i.nr);
      Bytes.set b 16 (Char.chr ((if i.writable then 1 else 0) lor 2)));
  Hw.Physmem.write_raw t.machine.Hw.Machine.mem pfn ~off b

let record t intent =
  charge t;
  if intent.nr <= 0 then Error "pre_sharing: nr must be positive"
  else begin
    let rec find idx =
      if idx >= capacity t then Error "GIT full"
      else
        match read_slot t idx with
        | None ->
            write_slot t idx (Some intent);
            Ok ()
        | Some _ -> find (idx + 1)
    in
    find 0
  end

let covers i ~initiator ~target ~gfn ~writable =
  i.initiator = initiator && i.target = target
  && gfn >= i.gfn
  && gfn < i.gfn + i.nr
  && ((not writable) || i.writable)

let check t ~initiator ~target ~gfn ~writable =
  charge t;
  let rec scan idx =
    if idx >= capacity t then
      Error
        (Printf.sprintf
           "GIT: dom%d never declared sharing gfn 0x%x with dom%d%s" initiator gfn target
           (if writable then " (writable)" else ""))
    else
      match read_slot t idx with
      | Some i when covers i ~initiator ~target ~gfn ~writable -> Ok ()
      | Some _ | None -> scan (idx + 1)
  in
  scan 0

let revoke t ~initiator ~gfn =
  for idx = 0 to capacity t - 1 do
    match read_slot t idx with
    | Some i when i.initiator = initiator && gfn >= i.gfn && gfn < i.gfn + i.nr ->
        write_slot t idx None
    | Some _ | None -> ()
  done

let revoke_domain t ~initiator =
  for idx = 0 to capacity t - 1 do
    match read_slot t idx with
    | Some i when i.initiator = initiator -> write_slot t idx None
    | Some _ | None -> ()
  done

let intents t =
  let rec scan idx acc =
    if idx >= capacity t then List.rev acc
    else
      match read_slot t idx with
      | Some i -> scan (idx + 1) (i :: acc)
      | None -> scan (idx + 1) acc
  in
  scan 0 []

let backing_frames t = Array.to_list t.frames
