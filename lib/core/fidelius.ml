module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev

type t = Ctx.t

let install = Iso.install

let platform_key (ctx : t) = Sev.Firmware.platform_public ctx.Ctx.hv.Xen.Hypervisor.fw

(* The facade keeps string errors for casual callers; the typed variants
   live in Lifecycle/Migrate for consumers that must classify failures
   (the fault matrix, migration tests). *)
let boot_protected_vm ctx ~name ~memory_pages ~prepared =
  Result.map_error Lifecycle.boot_error_to_string
    (Lifecycle.boot_protected_vm ctx ~name ~memory_pages ~prepared)
let start = Lifecycle.start
let shutdown_protected_vm = Lifecycle.shutdown_protected_vm
let write_start_info = Lifecycle.write_start_info
let kblk_of_guest = Lifecycle.kblk_of_guest
let attestation_report = Lifecycle.attestation_report

let migrate ~src ~dst dom =
  Result.map_error Migrate.error_to_string (Migrate.migrate ~src ~dst dom)

let aesni_codec = Io_protect.aesni_codec
let software_codec = Io_protect.software_codec
let setup_sev_io = Io_protect.setup_sev_io
let sev_codec = Io_protect.sev_codec
let setup_gek_io = Io_protect.setup_gek_io
let gek_codec = Io_protect.gek_codec

let share = Sharing.share
let share_range = Sharing.share_range
let unshare = Sharing.unshare

let gate_counts = Gate.counts
let violations = Ctx.violations
let is_protected = Ctx.is_protected
