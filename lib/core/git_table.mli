(** Grant Information Table (paper Sections 4.3.7 and 5.2).

    Before a guest creates a grant-table entry, it declares its intent
    directly to Fidelius via the [pre_sharing_op] hypercall; the intent is
    recorded here, in Fidelius-private frames. When the hypervisor later
    processes [grant_table_op], the requested entry is checked against the
    recorded intent — so a hypervisor that invents, widens (read-only to
    writable) or redirects (different target domain) a grant is caught. *)

module Hw = Fidelius_hw

type intent = {
  initiator : int;
  target : int;
  gfn : Hw.Addr.gfn;   (** first shared frame *)
  nr : int;            (** number of consecutive frames *)
  writable : bool;
}

type t

val create : Hw.Machine.t -> t

val record : t -> intent -> (unit, string) result
(** Store an intent (from [pre_sharing_op]). Fails when the table is full. *)

val check :
  t -> initiator:int -> target:int -> gfn:Hw.Addr.gfn -> writable:bool ->
  (unit, string) result
(** Is this exact sharing covered by a recorded intent? Writable sharing
    requires a writable intent; the gfn must fall inside the intent's
    range. *)

val revoke : t -> initiator:int -> gfn:Hw.Addr.gfn -> unit
(** Drop intents covering [gfn] (sharing ended / domain teardown). *)

val revoke_domain : t -> initiator:int -> unit

val intents : t -> intent list
val backing_frames : t -> Hw.Addr.pfn list
