module Hw = Fidelius_hw
module Xen = Fidelius_xen

type t = {
  hv : Xen.Hypervisor.t;
  machine : Hw.Machine.t;
  pit : Pit.t;
  git : Git_table.t;
  shadows : (int, Shadow.t) Hashtbl.t;
  fid_text : Hw.Addr.pfn list;
  vmrun_page : Hw.Addr.pfn;
  vmrun_pfns : Hw.Addr.pfn list;
  cr3_page : Hw.Addr.pfn;
  host_exec_ok : Hw.Addr.pfn -> bool;
  xen_measurement : bytes;
  mutable protected_domids : int list;
  mutable next_domain_protected : bool;
  mutable teardown_for : int option;
  mutable boot_window : int option;
  mutable gate1_count : int;
  mutable gate2_count : int;
  mutable gate3_count : int;
  mutable violations : string list;
  write_once_done : (string, unit) Hashtbl.t;
  exec_once_done : (string, unit) Hashtbl.t;
  write_once_bits : (string, Bytes.t) Hashtbl.t;
}

let is_protected t domid = List.mem domid t.protected_domids

let audit t msg = t.violations <- msg :: t.violations

let violations t = t.violations
