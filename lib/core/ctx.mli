(** The Fidelius context: all state of the trusted extension.

    Fidelius lives at the hypervisor's privilege level (sibling protection) —
    here that is rendered as: this record's data lives in frames that are
    unmapped or read-only in the hypervisor's address space, its code region
    is the only home of privileged instructions after the binary scan, and
    the CPU's [in_fidelius] flag marks when control is inside a gate. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen

type t = {
  hv : Xen.Hypervisor.t;
  machine : Hw.Machine.t;
  pit : Pit.t;
  git : Git_table.t;
  shadows : (int, Shadow.t) Hashtbl.t;  (** domid -> shadow state *)
  fid_text : Hw.Addr.pfn list;          (** Fidelius code, mapped RX in Xen *)
  vmrun_page : Hw.Addr.pfn;             (** VMRUN's only home, normally unmapped *)
  vmrun_pfns : Hw.Addr.pfn list;
      (** [[vmrun_page]], preallocated so the per-crossing type-3 gate call
          does not cons a fresh singleton *)
  cr3_page : Hw.Addr.pfn;               (** mov-CR3's only home, normally unmapped *)
  host_exec_ok : Hw.Addr.pfn -> bool;
      (** [Mmu.exec_ok machine hv.host_space], closed over once at install
          so gate WP toggles don't build the partial application per call *)
  xen_measurement : bytes;              (** SHA-256 of hypervisor text at late launch *)
  mutable protected_domids : int list;
  mutable next_domain_protected : bool;
      (** set by the lifecycle just before [create_domain] so the
          frame-allocation hook knows to revoke the hypervisor's mappings *)
  mutable teardown_for : int option;    (** domid whose NPT unmaps are authorized *)
  mutable boot_window : int option;
      (** domid whose frames the hypervisor may temporarily map writable to
          load the encrypted kernel image (paper Section 6.2) *)
  mutable gate1_count : int;
  mutable gate2_count : int;
  mutable gate3_count : int;
  mutable violations : string list;     (** audit log of denied operations *)
  write_once_done : (string, unit) Hashtbl.t;  (** write-once regions already written *)
  exec_once_done : (string, unit) Hashtbl.t;
  write_once_bits : (string, Bytes.t) Hashtbl.t;
      (** per-region bit-vector, one bit per byte (paper Section 5.3) *)
}

val is_protected : t -> int -> bool
val audit : t -> string -> unit
(** Record a denied operation for later auditing (paper Section 5.3). *)

val violations : t -> string list
(** Most recent first. *)
