(** Page Information Table (paper Section 5.2).

    A three-level radix tree, walked by physical frame number, whose leaf
    pages hold 1024 32-bit entries recording each frame's owner, usage, ASID
    and validity. The tree's own pages are Fidelius data: allocated from the
    Fidelius region and unmapped from the hypervisor.

    The PIT is the ground truth every mapping policy consults: "is this
    frame a page-table-page?", "which domain owns it?", "is it already
    mapped somewhere?". Entries are stored in simulated physical frames
    (like real PIT pages), and each query charges the radix-walk cost. *)

module Hw = Fidelius_hw

type owner =
  | Nobody
  | Xen
  | Fidelius
  | Dom of int

type usage =
  | Free
  | Xen_text        (** hypervisor code (write-forbidden) *)
  | Xen_data
  | Xen_pt          (** hypervisor page-table-page *)
  | Guest_page      (** protected-guest private memory *)
  | Guest_npt       (** nested-page-table page of a protected guest *)
  | Grant_table
  | Fidelius_text
  | Fidelius_data   (** PIT/GIT/shadow/SEV-metadata pages *)
  | Shared_io       (** unencrypted guest page granted for I/O *)

type info = {
  owner : owner;
  usage : usage;
  asid : int;
  valid : bool;  (** for guest pages: currently mapped in an NPT *)
}

val free_info : info

val owner_to_string : owner -> string
val usage_to_string : usage -> string

type t

val create : Hw.Machine.t -> t
(** Allocates the root page; level-2/3 pages are allocated on demand. All
    tree pages are recorded so they can be registered as Fidelius data. *)

val set : t -> Hw.Addr.pfn -> info -> unit
val get : t -> Hw.Addr.pfn -> info
(** Never-recorded frames read back as {!free_info}. Charges the walk. *)

val tree_frames : t -> Hw.Addr.pfn list
(** Every frame the radix tree itself occupies. *)

val count_usage : t -> usage -> int
