(** Policy enforcement (paper Section 5).

    These checks run inside Fidelius' context (behind a gate) whenever the
    hypervisor asks to update a protected resource. Denials are returned as
    [Error] and logged to the audit trail.

    The NPT policy encodes the paper's anti-replay/anti-remap rule
    mechanically: a nested entry may be *filled* only with a frame the PIT
    records as owned by that domain and not yet mapped, may have its
    permissions changed only if the target frame is unchanged, and may be
    *re-pointed or cleared* only during a Fidelius-initiated teardown.
    Cross-domain mappings are allowed solely when a grant-table entry and a
    matching GIT intent authorize them. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen

val check_npt_update :
  Ctx.t -> Xen.Domain.t -> Hw.Addr.gfn -> Hw.Pagetable.proto option ->
  (unit, string) result
(** Validate (and on success, maintain PIT validity bits for) one nested
    page-table update for [dom]. *)

val check_host_map_update :
  Ctx.t -> Hw.Addr.vfn -> Hw.Pagetable.proto option -> (unit, string) result
(** Validate a change to the hypervisor's own address space: W^X, no
    writable views of page-table/grant/NPT/code frames, no views at all of
    Fidelius data or protected-guest memory (boot-window excepted). *)

val check_grant_update :
  Ctx.t -> int -> Xen.Granttab.entry option -> (unit, string) result
(** Validate a grant-table entry against the GIT (protected initiators
    only; unprotected domains keep stock semantics). *)

val check_cr0 : Ctx.t -> int64 -> (unit, string) result
(** PG and WP may never be cleared by the hypervisor (Table 2). *)

val check_cr4 : Ctx.t -> int64 -> (unit, string) result
(** SMEP may never be cleared. *)

val check_efer : Ctx.t -> int64 -> (unit, string) result
(** NXE may never be cleared. *)

val check_cr3 : Ctx.t -> int64 -> (unit, string) result
(** The target must be the valid host address space. *)

val write_once : Ctx.t -> region:string -> (unit, string) result
(** Enforce the write-once policy for a named region (start_info,
    shared_info): the first call succeeds, later calls are denied and
    audited. *)

val write_once_range :
  Ctx.t -> region:string -> off:int -> len:int -> (unit, string) result
(** Byte-granular write-once, as the paper implements it: "a bit-vector to
    record specific memory regions with one bit per byte" (Section 5.3).
    Disjoint first-time writes to a region succeed; any byte written twice
    is denied and audited. *)

val exec_once : Ctx.t -> what:string -> (unit, string) result
(** Execute-once policy for lgdt/lidt-class instructions. *)
