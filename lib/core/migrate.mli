(** Protected VM migration (paper Section 4.3.6).

    Not live: SEND_START moves the firmware context out of RUNNING, stopping
    the guest, before its pages are exported. The snapshot crosses the
    untrusted channel as Ktek ciphertext with a Ktik-keyed measurement; the
    target platform's firmware re-encrypts under a fresh Kvek and verifies
    the measurement before the guest can resume. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev

type snapshot = {
  image : Sev.Transport.image;
  wrapped_keys : Fidelius_crypto.Keywrap.wrapped;
  origin_public : Fidelius_crypto.Dh.public;
  memory_pages : int;
  gpt_entries : (Hw.Addr.vfn * Hw.Pagetable.proto) list;
      (** guest page table image (part of guest memory in reality) *)
  name : string;
}

val send : Ctx.t -> Xen.Domain.t -> target_public:Fidelius_crypto.Dh.public ->
  (snapshot, string) result
(** Export a protected guest for the platform identified by
    [target_public]. The source domain is stopped (SENT state) and then
    destroyed. *)

val receive : Ctx.t -> snapshot -> (Xen.Domain.t, string) result
(** Import on the target platform; fails closed on measurement mismatch or
    wrong platform. *)

val migrate : src:Ctx.t -> dst:Ctx.t -> Xen.Domain.t -> (Xen.Domain.t, string) result
(** {!send} on [src] then {!receive} on [dst]. *)
