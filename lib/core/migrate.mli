(** Protected VM migration (paper Section 4.3.6).

    Not live: SEND_START moves the firmware context out of RUNNING, stopping
    the guest, before its pages are exported. The snapshot crosses the
    untrusted channel as Ktek ciphertext with a Ktik-keyed measurement; the
    target platform's firmware re-encrypts under a fresh Kvek and verifies
    the measurement before the guest can resume. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev

type snapshot = {
  image : Sev.Transport.image;
  wrapped_keys : Fidelius_crypto.Keywrap.wrapped;
  origin_public : Fidelius_crypto.Dh.public;
  memory_pages : int;
  gpt_entries : (Hw.Addr.vfn * Hw.Pagetable.proto) list;
      (** guest page table image (part of guest memory in reality) *)
  name : string;
}

type error =
  | Not_protected  (** the domain has no SEV firmware context *)
  | Send_refused of string  (** source firmware refused a SEND command *)
  | Truncated of { expected : int; got : int }
      (** snapshot arrived with fewer pages than the source exported *)
  | Malformed of string  (** a snapshot page is not page-sized *)
  | Rejected of string
      (** target platform's verification verdict: transport-key unwrap or
          measurement check refused the image *)
  | Boot_failed of string
      (** receive-side construction failed before the guest ran *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val send : Ctx.t -> Xen.Domain.t -> target_public:Fidelius_crypto.Dh.public ->
  (snapshot, error) result
(** Export a protected guest for the platform identified by
    [target_public]. The source domain is stopped (SENT state) and then
    destroyed. *)

val transmit : snapshot -> snapshot
(** The untrusted channel between {!send} and {!receive}. The identity
    unless a fault plan ({!Fidelius_inject.Plan}) arms the
    [Snapshot_truncate]/[Snapshot_flip] sites, in which case trailing
    pages may be dropped or ciphertext bits flipped — deterministically,
    per the plan's seed. *)

val receive : Ctx.t -> snapshot -> (Xen.Domain.t, error) result
(** Import on the target platform. Fails closed with a typed error:
    structurally damaged snapshots are refused up front ([Truncated],
    [Malformed]) before any firmware state exists; a tampered image
    surfaces as [Rejected] when RECEIVE_FINISH's keyed measurement check
    fails, after the partial domain is rolled back. *)

val migrate : src:Ctx.t -> dst:Ctx.t -> Xen.Domain.t -> (Xen.Domain.t, error) result
(** {!send} on [src], {!transmit} across the channel, {!receive} on
    [dst]. *)
