(** VM migration between Fidelius hosts (paper Section 4.3.6-4.3.7).

    Two datapaths share one wire format and one receive-side state machine:

    - the original {b one-shot stop-and-copy} ({!send} → {!transmit} →
      {!receive}), which pauses the guest for the whole copy, and
    - the {b live pre-copy driver} {!migrate_live}: the guest keeps running
      while memory crosses in iterative dirty rounds, and the final
      stop-and-copy residual is sized by a downtime budget.

    On top of the live path sits {b attested secret injection}: the guest
    owner releases the disk encryption key to the target host only after
    verifying a fresh attestation quote — including the target's
    {e firmware version}, because the platform identity key survives a
    firmware downgrade ("Insecure Until Proven Updated") and only the
    version policy check can refuse a rolled-back platform.

    Everything that crosses {!Wire.transmit} is attacker-controlled: the
    hypervisors on both ends relay the frames and may drop, truncate,
    reorder or rewrite them. The security argument is that every such
    perturbation lands in a typed {!error}, never in a silently wrong
    guest. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev

type snapshot = {
  image : Sev.Transport.image;
  wrapped_keys : Fidelius_crypto.Keywrap.wrapped;
      (** Ktek/Ktik wrapped to the target platform; opaque to the channel *)
  origin_public : Fidelius_crypto.Dh.public;
  memory_pages : int;
  gpt_entries : (Hw.Addr.vfn * Hw.Pagetable.proto) list;
      (** the guest page table (in reality part of the migrated memory) *)
  name : string;
}
(** A one-shot migration image: everything the target needs to re-create
    the guest. Confidentiality and integrity come from the transport keys,
    not from the snapshot structure — every field is readable (and
    writable) by the relaying hypervisors. *)

(** Why a migration failed. Classified by call site so callers (tests, the
    fault matrix, the CLI) never match on error strings. *)
type error =
  | Not_protected
      (** the domain has no SEV context — Fidelius only migrates protected
          guests through the firmware path *)
  | Send_refused of string
      (** the source firmware refused SEND_START/UPDATE/FINISH (wrong
          state, NOSEND policy bit, bad handle) *)
  | Truncated of { expected : int; got : int }
      (** the stream lost data in transit: a frame's payload is shorter
          than its header claims, or the one-shot image carries fewer pages
          than the guest spans. Trigger: a lossy channel, or the
          [Snapshot_truncate] fault site *)
  | Malformed of string
      (** framing damage that is not a clean truncation: bad magic, a
          payload overrunning its declared length, an undecodable field, a
          non-page-sized page *)
  | Rejected of string
      (** the {e target platform's} verification verdict: RECEIVE_START
          key unwrap or RECEIVE_FINISH measurement refused the image.
          Trigger: tampered ciphertext ([Snapshot_flip]), a consistently
          re-framed but incomplete round ([Round_truncate]), or a snapshot
          addressed to a different platform *)
  | Boot_failed of string
      (** mechanical receive-side failure (allocation, mediation, ACTIVATE,
          first VMRUN) — the target rolled the partial domain back *)
  | Unknown_version of { got : int; expected : int }
      (** the peer speaks a different wire revision; refused before any
          payload byte is interpreted *)
  | Protocol_violation of string
      (** frames arrived in an order the receive state machine forbids —
          e.g. a dirty round out of sequence, or a LAUNCH_SECRET before any
          attestation quote was issued ([Secret_before_attest]) *)
  | Stale_firmware of { got : Sev.Firmware.version; minimum : Sev.Firmware.version }
      (** the target's quote is genuine but reports a firmware build below
          the owner's policy floor — the rollback attack (the
          [Stale_firmware] fault site). The disk key was {b not} released *)
  | Attest_refused of Attest.error
      (** the owner refused the target's quote for any other reason (bad
          nonce, bad MAC, wrong hypervisor measurement); the disk key was
          not released *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** {2 Wire format}

    Every frame is [magic "FIDM"] ‖ [u16 version] ‖ [u8 tag] ‖
    [u32 payload-len] ‖ payload, big-endian. {!Wire.decode} refuses a wrong
    magic or an overrunning payload as [Malformed], a short payload as
    [Truncated] and a foreign version as [Unknown_version] — {e before}
    interpreting anything else, so a fault acting on real framing surfaces
    as a typed error, never as garbage fed to the firmware. *)
module Wire : sig
  val version : int
  (** The wire revision this build speaks. Bumped on any framing change;
      there is no negotiation — migration partners must match exactly. *)

  type frame =
    | Start of {
        name : string;
        memory_pages : int;
        policy : int;
        nonce : int64;
        wrapped_keys : Fidelius_crypto.Keywrap.wrapped;
        origin_public : Fidelius_crypto.Dh.public;
      }  (** opens a migration: everything RECEIVE_START needs *)
    | Update of { round : int; pages : (int * bytes) list }
        (** one pre-copy round of [(transport-index, ciphertext)] pages;
            the placement gfn is derived from the index (see {!index_of}) *)
    | Finish of {
        measurement : bytes;
        gpt_entries : (Hw.Addr.vfn * Hw.Pagetable.proto) list;
      }  (** the sender's keyed measurement; triggers RECEIVE_FINISH *)
    | Attest_req of { nonce : int64 }
        (** owner → target: quote yourself under this fresh nonce *)
    | Attest_resp of { quote : bytes }  (** a serialized {!Attest.quote} *)
    | Secret of { wrapped : bytes }
        (** the owner's disk key, wrapped to the verified quote *)

  val encode : frame -> bytes

  val decode : bytes -> (frame, error) result
  (** Total: any byte string yields a frame or a typed error. The payload
      is untrusted; internal counts are sanity-bounded before use. *)

  val transmit : bytes -> bytes
  (** The untrusted channel. Identity with no fault plan installed; with a
      plan armed it perturbs encoded [Update] frames the way a hostile
      relay would: [Round_truncate] drops the last page record and
      re-frames consistently, [Snapshot_flip] flips one ciphertext bit,
      [Snapshot_truncate] drops a page-sized tail while the header still
      claims the full length. *)
end

val index_of : round:int -> gfn:int -> int
(** Composite transport index: [(round lsl 20) lor gfn]. A page resent in
    a later round gets a fresh CTR stream (no two-time pad across rounds),
    and because the receiver derives the placement gfn from the measured
    index, a relay cannot silently re-home a page. Round-0 indices equal
    the gfn, which keeps the one-shot snapshot format unchanged. *)

val gfn_of_index : int -> int

(** {2 One-shot stop-and-copy} *)

val send :
  Ctx.t -> Xen.Domain.t -> target_public:Fidelius_crypto.Dh.public ->
  (snapshot, error) result
(** SEND_START (pausing the guest), SEND_UPDATE per mapped page,
    SEND_FINISH; on success the source instance is destroyed and the
    snapshot is the only live copy. [target_public] identifies the target
    platform; its authenticity is the guest owner's concern — a wrong one
    yields a snapshot only that wrong platform can unwrap. *)

val transmit : snapshot -> (snapshot, error) result
(** Carry the snapshot across the untrusted channel as real frames: each
    of [Start]/[Update]/[Finish] is encoded, passed through
    {!Wire.transmit}, and decoded again. The reassembled snapshot is what
    the target actually received; channel damage surfaces here as the
    decoder's typed error. *)

val receive : Ctx.t -> snapshot -> (Xen.Domain.t, error) result
(** Validate structurally (page count, page sizes), then boot through the
    RECEIVE path; the firmware's measurement check is what actually
    authenticates the image. The snapshot is untrusted input in its
    entirety. *)

val migrate : src:Ctx.t -> dst:Ctx.t -> Xen.Domain.t -> (Xen.Domain.t, error) result
(** [send] → [transmit] → [receive]: whole-VM stop-and-copy between two
    simulated hosts. *)

(** {2 Attested secret injection} *)

(** The guest owner's side of the key-release protocol. The owner is the
    trust root: it holds the disk key, chooses the attestation nonce and
    the firmware-version floor, and releases the key only after
    {!Attest.verify} accepts the target's quote. *)
module Owner : sig
  type t

  val create : ?minimum_fw_version:Sev.Firmware.version -> Fidelius_crypto.Rng.t -> t
  (** Fresh owner with a random 16-byte disk key and a fresh attestation
      nonce. [minimum_fw_version] defaults to
      {!Sev.Firmware.minimum_safe_version}. *)

  val released : t -> bool
  (** Whether the disk key has ever been released. Stays [false] across
      every refused migration — the rollback tests assert exactly this. *)

  val release_count : t -> int

  val disk_key : t -> bytes
  (** The plaintext disk key (test oracle: compare against what the
      migrated guest can read back from its kblk slot). *)
end

(** {2 Receive-side state machine}

    [EXPECT_START → STREAMING → ATTESTING → COMPLETE], with [FAILED]
    absorbing. Driven by delivering raw frame bytes; any out-of-order or
    undecodable frame is refused with a typed error, and failures during
    streaming roll the partial domain back. *)

type rx

val rx_create : Ctx.t -> rx

val rx_deliver : rx -> bytes -> (bytes option, error) result
(** Deliver one frame from the wire. [Ok (Some reply)] carries an encoded
    response frame (only [Attest_req] produces one). The bytes are wholly
    untrusted; a [Secret] delivered before a quote was issued is refused
    as [Protocol_violation] {e without} tearing down the already verified
    and running guest — refusing the injection is the fail-closed
    behaviour there. *)

val rx_domain : rx -> Xen.Domain.t option
(** The received domain, once RECEIVE_FINISH has accepted it. *)

(** {2 Live pre-copy driver} *)

type config = {
  downtime_budget_us : float;
      (** stop-and-copy tolerance: the final paused copy may take at most
          this long, at the per-page firmware cost of
          {!Hw.Cost.default} *)
  max_rounds : int;
      (** forced-stop cap for guests that dirty faster than the wire
          drains — pre-copy must terminate *)
}

val default_config : config
(** 10 µs budget, 8 rounds. *)

val budget_pages : config -> int
(** How many residual pages fit the downtime budget. *)

type report = {
  rounds : int;  (** UPDATE frames sent, residual round included *)
  pages_sent : int;  (** total pages on the wire, resends included *)
  residual_pages : int;  (** pages in the final stop-and-copy round *)
  downtime_us : float;  (** time the guest was paused *)
  secret_released : bool;
      (** whether the owner released the disk key (always [false] without
          an owner) *)
}

val migrate_live :
  ?config:config ->
  ?owner:Owner.t ->
  ?mutate:(int -> unit) ->
  src:Ctx.t ->
  dst:Ctx.t ->
  Xen.Domain.t ->
  (Xen.Domain.t * report, error) result
(** Live-migrate a protected guest. Round 0 copies every mapped page while
    the guest runs; each later round resends what the dirty log recorded;
    when the residual fits [config]'s downtime budget (or [max_rounds] is
    hit) the guest pauses for the final stop-and-copy. With [owner] set,
    the owner then challenges the target for a quote and — only on
    successful verification — releases the disk key as a wrapped [Secret]
    frame the target injects at the guest's kblk slot.

    [mutate] models the still-running guest: it is invoked once per
    pre-copy round (with the round number) and typically performs guest
    writes on the source, which the dirty log picks up.

    Failure semantics: on any error the source guest {e keeps running}
    (unpaused if the failure struck mid-blackout), the partial or
    already-booted target instance is destroyed, and — for every
    attestation-path refusal ([Stale_firmware], [Attest_refused],
    [Protocol_violation]) — the owner's key is provably unreleased
    ({!Owner.released} stays [false]). Only after full success is the
    source destroyed. *)
