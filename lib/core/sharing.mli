(** Secure inter-VM memory sharing (paper Section 4.3.7).

    The flow a cooperative pair of guests runs: the initiator declares its
    intent with the [pre_sharing_op] hypercall (recorded in the GIT), offers
    the page through the ordinary grant-table hypercall (now GIT-validated),
    and the peer maps the grant reference. A hypervisor that forges or
    widens the grant, or redirects it to a conspirator, is denied by the GIT
    policy. *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen

type shared = {
  gref : int;
  owner_gfn : Hw.Addr.gfn;  (** the owner's guest-physical frame being shared *)
  owner_gvfn : Hw.Addr.vfn;   (** where the owner mapped the shared page *)
  peer_gvfn : Hw.Addr.vfn;    (** where the peer mapped it *)
  frame : Hw.Addr.pfn;        (** the backing host frame *)
}

val share :
  Ctx.t ->
  owner:Xen.Domain.t -> peer:Xen.Domain.t ->
  owner_gvfn:Hw.Addr.vfn -> peer_gvfn:Hw.Addr.vfn ->
  writable:bool ->
  (shared, string) result
(** Establish a shared (necessarily unencrypted) page between two guests.
    The owner's page is freshly allocated at [owner_gvfn]. *)

val share_range :
  Ctx.t ->
  owner:Xen.Domain.t -> peer:Xen.Domain.t ->
  owner_gvfn:Hw.Addr.vfn -> peer_gvfn:Hw.Addr.vfn ->
  nr:int -> writable:bool ->
  (shared list, string) result
(** Multi-frame sharing under a single pre_sharing_op intent — the paper's
    hypercall carries "the number of shared frames" precisely for this. One
    grant entry per frame, all validated against the one recorded range. *)

val owner_write : Ctx.t -> Xen.Domain.t -> shared -> off:int -> bytes -> unit
val peer_read : Ctx.t -> Xen.Domain.t -> shared -> off:int -> len:int -> bytes
val peer_write : Ctx.t -> Xen.Domain.t -> shared -> off:int -> bytes -> unit
(** Guest-mode accesses through each side's own mapping. *)

val unshare : Ctx.t -> owner:Xen.Domain.t -> shared -> (unit, string) result
(** End the grant and revoke the GIT intent. *)
