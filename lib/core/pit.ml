module Hw = Fidelius_hw

let c_pit = Hw.Cost.intern "pit"

type owner =
  | Nobody
  | Xen
  | Fidelius
  | Dom of int

type usage =
  | Free
  | Xen_text
  | Xen_data
  | Xen_pt
  | Guest_page
  | Guest_npt
  | Grant_table
  | Fidelius_text
  | Fidelius_data
  | Shared_io

type info = {
  owner : owner;
  usage : usage;
  asid : int;
  valid : bool;
}

let free_info = { owner = Nobody; usage = Free; asid = 0; valid = false }

let owner_to_string = function
  | Nobody -> "nobody"
  | Xen -> "xen"
  | Fidelius -> "fidelius"
  | Dom d -> Printf.sprintf "dom%d" d

let usage_to_string = function
  | Free -> "free"
  | Xen_text -> "xen-text"
  | Xen_data -> "xen-data"
  | Xen_pt -> "xen-pt"
  | Guest_page -> "guest-page"
  | Guest_npt -> "guest-npt"
  | Grant_table -> "grant-table"
  | Fidelius_text -> "fidelius-text"
  | Fidelius_data -> "fidelius-data"
  | Shared_io -> "shared-io"

(* 32-bit leaf entry: [31] valid, [30..24] usage, [23..12] asid,
   [11..0] owner (0 nobody, 1 xen, 2 fidelius, 3+domid). *)
let usage_code = function
  | Free -> 0 | Xen_text -> 1 | Xen_data -> 2 | Xen_pt -> 3 | Guest_page -> 4
  | Guest_npt -> 5 | Grant_table -> 6 | Fidelius_text -> 7 | Fidelius_data -> 8
  | Shared_io -> 9

let usage_of_code = function
  | 0 -> Free | 1 -> Xen_text | 2 -> Xen_data | 3 -> Xen_pt | 4 -> Guest_page
  | 5 -> Guest_npt | 6 -> Grant_table | 7 -> Fidelius_text | 8 -> Fidelius_data
  | 9 -> Shared_io
  | n -> invalid_arg (Printf.sprintf "Pit: bad usage code %d" n)

let owner_code = function Nobody -> 0 | Xen -> 1 | Fidelius -> 2 | Dom d -> 3 + d

let owner_of_code = function
  | 0 -> Nobody
  | 1 -> Xen
  | 2 -> Fidelius
  | n -> Dom (n - 3)

let encode i =
  let v =
    (if i.valid then 1 lsl 31 else 0)
    lor (usage_code i.usage lsl 24)
    lor ((i.asid land 0xfff) lsl 12)
    lor (owner_code i.owner land 0xfff)
  in
  Int32.of_int v

let decode v32 =
  let v = Int32.to_int v32 land 0xffffffff in
  { valid = v land (1 lsl 31) <> 0;
    usage = usage_of_code ((v lsr 24) land 0x7f);
    asid = (v lsr 12) land 0xfff;
    owner = owner_of_code (v land 0xfff) }

let entries_per_page = Hw.Addr.page_size / 4
let slots_per_page = Hw.Addr.page_size / 4 (* level pages hold 1024 32-bit slots *)

type t = {
  machine : Hw.Machine.t;
  root : Hw.Addr.pfn;
  mutable allocated : Hw.Addr.pfn list;
}

let create machine =
  let root = Hw.Machine.alloc_frame machine in
  { machine; root; allocated = [ root ] }

let page t pfn = Hw.Physmem.page t.machine.Hw.Machine.mem pfn

(* Index split: leaf slot = pfn mod 1024, L2 slot = (pfn / 1024) mod 1024,
   root slot = pfn / 1024^2. Level slots hold the child page's PFN (0 =
   absent; frame 0 is reserved so 0 is unambiguous). *)
let child t level_pfn slot ~alloc =
  let bytes = page t level_pfn in
  let v = Int32.to_int (Bytes.get_int32_be bytes (slot * 4)) in
  if v <> 0 then Some v
  else if not alloc then None
  else begin
    let fresh = Hw.Machine.alloc_frame t.machine in
    t.allocated <- fresh :: t.allocated;
    Bytes.set_int32_be bytes (slot * 4) (Int32.of_int fresh);
    Some fresh
  end

let walk t pfn ~alloc =
  if pfn < 0 then invalid_arg "Pit: negative pfn";
  let leaf_slot = pfn mod entries_per_page in
  let l2_slot = pfn / entries_per_page mod slots_per_page in
  let root_slot = pfn / (entries_per_page * slots_per_page) in
  if root_slot >= slots_per_page then invalid_arg "Pit: pfn out of radix range";
  Hw.Cost.charge_id t.machine.Hw.Machine.ledger c_pit
    t.machine.Hw.Machine.costs.Hw.Cost.pit_lookup;
  match child t t.root root_slot ~alloc with
  | None -> None
  | Some l2 -> (
      match child t l2 l2_slot ~alloc with
      | None -> None
      | Some leaf -> Some (leaf, leaf_slot))

let set t pfn info =
  match walk t pfn ~alloc:true with
  | None -> assert false
  | Some (leaf, slot) -> Bytes.set_int32_be (page t leaf) (slot * 4) (encode info)

let get t pfn =
  match walk t pfn ~alloc:false with
  | None -> free_info
  | Some (leaf, slot) -> decode (Bytes.get_int32_be (page t leaf) (slot * 4))

let tree_frames t = t.allocated

let count_usage t usage =
  let nr = Hw.Physmem.nr_frames t.machine.Hw.Machine.mem in
  let count = ref 0 in
  for pfn = 1 to nr - 1 do
    if (get t pfn).usage = usage then incr count
  done;
  !count
