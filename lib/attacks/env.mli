(** Victim environments for the attack suite.

    Two stacks, identical except for Fidelius:
    - the *baseline* is plain SEV as shipped: LAUNCH-booted guest, C-bit
      memory, but the hypervisor keeps its direct map, writable NPTs and
      unprotected VMCB — the configuration the paper's Section 2.2 analyzes;
    - the *protected* stack has Fidelius installed and boots the victim
      through the encrypted-image RECEIVE path.

    In both, the victim writes a known secret into its encrypted memory so
    leak attacks have a target. *)

val secret : string
val secret_gva : int

val baseline : seed:int64 -> Surface.stack
val baseline_es : seed:int64 -> Surface.stack
(** Plain SEV with the SEV-ES extension enabled on the victim: register
    state lives in the hardware-encrypted VMSA. The paper's Section 2.2
    middle ground — VMCB/register attacks die, mapping and key-management
    attacks survive. *)

val protected_ : seed:int64 -> Surface.stack

val resolve_secret_frame : Surface.stack -> Fidelius_hw.Addr.pfn
(** Host frame holding the secret (attacker can learn it from the NPT,
    which is readable — write-protection is not read-protection). *)

val conspirator : Surface.stack -> Fidelius_xen.Domain.t
(** A second, attacker-controlled guest on the same stack — created on
    first use and cached in the stack's own [conspirator] field, so two
    stacks (and two fleet shards) never share one, and a stack holds no
    state that outlives it. *)
