module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Rng = Fidelius_crypto.Rng

let secret = "T0P-SECRET-TENANT-DATA-0xC0FFEE!"
let secret_gva = Hw.Addr.addr_of 5 0
let memory_pages = 24

let kernel_pages () =
  List.init 3 (fun i -> Bytes.make Hw.Addr.page_size (Char.chr (0x41 + i)))

let write_secret machine hv dom =
  Xen.Hypervisor.in_guest hv dom (fun () ->
      Xen.Domain.write machine dom ~addr:secret_gva (Bytes.of_string secret))

let baseline ~seed =
  let machine = Hw.Machine.create ~seed () in
  let hv = Xen.Hypervisor.boot machine in
  match
    Xen.Hypervisor.create_sev_domain hv ~name:"victim" ~memory_pages ~kernel:(kernel_pages ())
  with
  | Error e -> failwith ("attacks: baseline victim: " ^ e)
  | Ok victim ->
      write_secret machine hv victim;
      { Surface.machine; hv; fid = None; victim; secret; secret_gva;
        conspirator = None }

let baseline_es ~seed =
  let stack = baseline ~seed in
  Xen.Hypervisor.enable_sev_es stack.Surface.hv stack.Surface.victim;
  stack

let protected_ ~seed =
  let machine = Hw.Machine.create ~seed () in
  let hv = Xen.Hypervisor.boot machine in
  let fid = Core.Fidelius.install hv in
  let rng = Rng.create (Int64.add seed 77L) in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Core.Fidelius.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg ~kernel_pages:(kernel_pages ())
  in
  match Core.Fidelius.boot_protected_vm fid ~name:"victim" ~memory_pages ~prepared with
  | Error e -> failwith ("attacks: protected victim: " ^ e)
  | Ok victim ->
      write_secret machine hv victim;
      { Surface.machine; hv; fid = Some fid; victim; secret; secret_gva;
        conspirator = None }

let resolve_secret_frame (stack : Surface.stack) =
  let gfn = Hw.Addr.frame_of stack.Surface.secret_gva in
  match Hw.Pagetable.lookup stack.Surface.victim.Xen.Domain.npt gfn with
  | Some npte -> npte.Hw.Pagetable.frame
  | None -> failwith "attacks: secret frame not backed"

(* The conspirator lives in the stack record, not in a module global: the
   old global list was keyed by physical equality on the hypervisor and
   never pruned, so it leaked stacks and — worse — made attack outcomes
   depend on which stacks had run before in the same process. Per-stack
   state is trivially shard-safe. *)
let conspirator (stack : Surface.stack) =
  match stack.Surface.conspirator with
  | Some dom -> dom
  | None ->
      let dom =
        Xen.Hypervisor.create_domain stack.Surface.hv ~name:"conspirator" ~memory_pages:8
      in
      stack.Surface.conspirator <- Some dom;
      dom
