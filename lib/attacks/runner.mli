(** Execute the attack catalogue against all three stacks and tabulate.

    {2 Isolation and determinism}

    Every attack runs on a {e fresh triple} of stacks (plain SEV, SEV-ES,
    Fidelius), and every stack owns all of its mutable state — machine,
    ledger, page tables, conspirator — so attacks can neither poison one
    another nor observe execution order. Each attack's platform seed is
    derived from a stable FNV-1a hash of its {e id} (not its position in
    [Suite.all]), which makes the outcome of attack [x] a pure function of
    [(x, seed)]: independent of catalogue order, of which other attacks
    ran, and of how many domains executed the suite. A regression test
    pins all three independences. *)

type row = {
  attack : Surface.attack;
  baseline : Surface.outcome;   (** plain SEV, stock Xen *)
  sev_es : Surface.outcome;     (** plain SEV with the ES extension *)
  fidelius : Surface.outcome;
}

val run_all : ?seed:int64 -> ?domains:int -> unit -> row list
(** Runs the whole catalogue, one fresh stack-triple per attack.
    [domains] (default [Fidelius_fleet.Pool.recommended_domains ()])
    shards attacks across that many OCaml domains via
    [Fidelius_fleet.Pool]; rows come back in catalogue order and are
    identical for any domain count. *)

val run_one : ?seed:int64 -> Surface.attack -> row
(** Runs one attack on fresh stacks. [seed] (default [2024L]) is the
    {e base} seed; the stacks' actual seed also mixes in the attack id,
    exactly as [run_all] does, so a lone [run_one] reproduces the suite's
    row for that attack. *)

val errors : row list -> (string * string * string) list
(** [(attack id, stack name, message)] for every {!Surface.Errored}
    outcome on any stack. Non-empty means the harness itself broke — the
    suite must treat that as a failure, never as a defense. *)

val summary : row list -> int * int * int
(** (attacks total, defended under Fidelius, undefended under baseline). *)

val pp_table : Format.formatter -> row list -> unit
(** Renders the three-column outcome table plus the summary line the CLI
    prints. Pure formatting — does not run anything. *)
