(** Execute the attack catalogue against both stacks and tabulate. *)

type row = {
  attack : Surface.attack;
  baseline : Surface.outcome;   (** plain SEV, stock Xen *)
  sev_es : Surface.outcome;     (** plain SEV with the ES extension *)
  fidelius : Surface.outcome;
}

val run_all : ?seed:int64 -> unit -> row list
(** Each attack runs on a *fresh pair* of stacks so earlier attacks cannot
    poison later ones. *)

val run_one : ?seed:int64 -> Surface.attack -> row

val errors : row list -> (string * string * string) list
(** [(attack id, stack name, message)] for every {!Surface.Errored}
    outcome on any stack. Non-empty means the harness itself broke — the
    suite must treat that as a failure, never as a defense. *)

val summary : row list -> int * int * int
(** (attacks total, defended under Fidelius, undefended under baseline). *)

val pp_table : Format.formatter -> row list -> unit
