type row = {
  attack : Surface.attack;
  baseline : Surface.outcome;
  sev_es : Surface.outcome;
  fidelius : Surface.outcome;
}

(* Only exceptions that model a defense mechanism turning the attacker
   away count as [Blocked]. Anything else — [Failure], [Invalid_argument],
   a programming error in an attack — is a harness fault and must surface
   as [Errored]: mapping it to [Blocked] would count simulator crashes as
   successful defenses. *)
let guard f =
  try f ()
  with
  | Fidelius_hw.Denial.Denied m -> Surface.Blocked m
  | Fidelius_xen.Hypervisor.Npf_unresolved m -> Surface.Blocked ("NPF handler refused: " ^ m)
  | Fidelius_hw.Mmu.Fault { reason; _ } -> Surface.Blocked ("page fault: " ^ reason)
  | e -> Surface.Errored (Printexc.to_string e)

(* FNV-1a, 64-bit — same stable hash Workloads.Engine uses for its run
   seeds. The per-attack seed hashes the attack *id*, not its position in
   [Suite.all], so reordering the catalogue (or running a single attack in
   isolation) can never change any attack's stacks. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let seed_of ~seed (attack : Surface.attack) =
  Int64.add seed
    (Int64.logand (fnv1a64 attack.Surface.id) 0x3fffffffffffffffL)

let run_one ?(seed = 2024L) attack =
  let seed = seed_of ~seed attack in
  let base_stack = Env.baseline ~seed in
  let es_stack = Env.baseline_es ~seed:(Int64.add seed 2L) in
  let fid_stack = Env.protected_ ~seed:(Int64.add seed 1L) in
  { attack;
    baseline = guard (fun () -> attack.Surface.run base_stack);
    sev_es = guard (fun () -> attack.Surface.run es_stack);
    fidelius = guard (fun () -> attack.Surface.run fid_stack) }

let run_all ?(seed = 2024L) ?domains () =
  Fidelius_fleet.Pool.map_list ?domains (fun a -> run_one ~seed a) Suite.all

let errors rows =
  List.concat_map
    (fun r ->
      List.filter_map
        (fun (stack, o) ->
          match o with Surface.Errored m -> Some (r.attack.Surface.id, stack, m) | _ -> None)
        [ ("baseline", r.baseline); ("sev-es", r.sev_es); ("fidelius", r.fidelius) ])
    rows

let summary rows =
  let total = List.length rows in
  let defended =
    List.length (List.filter (fun r -> Surface.is_defended r.fidelius) rows)
  in
  let baseline_vulnerable =
    List.length (List.filter (fun r -> not (Surface.is_defended r.baseline)) rows)
  in
  (total, defended, baseline_vulnerable)

let pp_table fmt rows =
  let w = 34 in
  let trunc s = if String.length s > w then String.sub s 0 (w - 3) ^ "..." else s in
  Format.fprintf fmt "@[<v>%-22s | %-*s | %-*s | %-*s@," "attack" w "plain SEV" w "SEV-ES" w
    "Fidelius";
  Format.fprintf fmt "%s@," (String.make (25 + (3 * (w + 3))) '-');
  List.iter
    (fun r ->
      Format.fprintf fmt "%-22s | %-*s | %-*s | %-*s@," r.attack.Surface.id w
        (trunc (Surface.outcome_to_string r.baseline))
        w
        (trunc (Surface.outcome_to_string r.sev_es))
        w
        (trunc (Surface.outcome_to_string r.fidelius)))
    rows;
  let total, defended, base_vuln = summary rows in
  let es_vuln =
    List.length (List.filter (fun r -> not (Surface.is_defended r.sev_es)) rows)
  in
  Format.fprintf fmt "%s@," (String.make (25 + (3 * (w + 3))) '-');
  Format.fprintf fmt
    "%d attacks: plain SEV vulnerable to %d, SEV-ES still vulnerable to %d, Fidelius defends %d/%d@]"
    total base_vuln es_vuln defended total
