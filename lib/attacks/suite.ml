module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
open Surface

let contains_secret stack bytes =
  let s = Bytes.to_string bytes in
  let sec = stack.secret in
  let n = String.length s and m = String.length sec in
  let rec scan i = i + m <= n && (String.sub s i m = sec || scan (i + 1)) in
  m > 0 && scan 0

let mk id ~paper_ref description run = { id; description; paper_ref; run }

(* --- runtime-state attacks --------------------------------------------- *)

(* The victim exits with a secret-derived value in a register; the
   hypervisor harvests registers and VMCB save fields. *)
let vmcb_register_harvest =
  mk "vmcb-register-harvest" ~paper_ref:"2.2"
    "read guest registers and VMCB save area at vmexit" (fun stack ->
      let cpu = stack.machine.Hw.Machine.cpu in
      let marker = 0x5EC4E7L in
      Hw.Cpu.set_reg cpu Hw.Cpu.Rbx marker;
      Xen.Hypervisor.vmexit stack.hv stack.victim Hw.Vmcb.Hlt ~info1:0L ~info2:0L;
      let seen = Hw.Cpu.get_reg cpu Hw.Cpu.Rbx in
      let rip = Hw.Vmcb.get stack.victim.Xen.Domain.vmcb Hw.Vmcb.Rip in
      ignore (Xen.Hypervisor.vmrun stack.hv stack.victim);
      if Int64.equal seen marker then
        Leaked (Printf.sprintf "guest rbx=0x%Lx readable at exit" seen)
      else if Int64.equal rip 0L && Int64.equal seen 0L then
        Blocked "registers and save area masked (state hidden from the hypervisor)"
      else Leaked (Printf.sprintf "VMCB rip=0x%Lx readable at exit" rip))

let vmcb_control_tamper =
  mk "vmcb-control-tamper" ~paper_ref:"2.2/4.2.1"
    "rewrite VMCB control state (ASID) between exit and entry" (fun stack ->
      let vmcb = stack.victim.Xen.Domain.vmcb in
      Xen.Hypervisor.vmexit stack.hv stack.victim Hw.Vmcb.Hlt ~info1:0L ~info2:0L;
      let original = Hw.Vmcb.get vmcb Hw.Vmcb.Asid in
      Hw.Vmcb.set vmcb Hw.Vmcb.Asid 0x7777L;
      match Xen.Hypervisor.vmrun stack.hv stack.victim with
      | Ok () ->
          (* undo for subsequent attacks *)
          Hw.Vmcb.set vmcb Hw.Vmcb.Asid original;
          Tampered "guest re-entered with attacker-chosen ASID"
      | Error e ->
          Hw.Vmcb.set vmcb Hw.Vmcb.Asid original;
          ignore (Xen.Hypervisor.vmrun stack.hv stack.victim);
          Blocked e)

let vmcb_sev_disable =
  mk "vmcb-sev-disable" ~paper_ref:"2.2"
    "clear the VMCB SEV-enable bit to run the guest unencrypted" (fun stack ->
      let vmcb = stack.victim.Xen.Domain.vmcb in
      Xen.Hypervisor.vmexit stack.hv stack.victim Hw.Vmcb.Hlt ~info1:0L ~info2:0L;
      let original = Hw.Vmcb.get vmcb Hw.Vmcb.Sev_enabled in
      Hw.Vmcb.set vmcb Hw.Vmcb.Sev_enabled 0L;
      match Xen.Hypervisor.vmrun stack.hv stack.victim with
      | Ok () ->
          Hw.Vmcb.set vmcb Hw.Vmcb.Sev_enabled original;
          Tampered "SEV control bit cleared across a world switch"
      | Error e ->
          Hw.Vmcb.set vmcb Hw.Vmcb.Sev_enabled original;
          ignore (Xen.Hypervisor.vmrun stack.hv stack.victim);
          Blocked e)

(* --- memory-mapping attacks -------------------------------------------- *)

let direct_map_read =
  mk "direct-map-read" ~paper_ref:"6.2"
    "read the victim's frame through the hypervisor direct map" (fun stack ->
      let frame = Env.resolve_secret_frame stack in
      try
        let bytes = Xen.Hypervisor.host_read stack.hv frame ~off:0 ~len:64 in
        if contains_secret stack bytes then
          Leaked "plaintext via direct map (resident cache line)"
        else Degraded "direct map readable but returned only ciphertext"
      with Hw.Mmu.Fault { reason; _ } -> Blocked ("page fault: " ^ reason))

let host_remap =
  mk "host-remap" ~paper_ref:"6.2"
    "create a fresh hypervisor mapping of the victim's frame" (fun stack ->
      let frame = Env.resolve_secret_frame stack in
      match
        stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.host_map_update frame
          (Some { Hw.Pagetable.frame; writable = true; executable = false; c_bit = false })
      with
      | Error e -> Blocked e
      | Ok () -> (
          try
            let bytes = Xen.Hypervisor.host_read stack.hv frame ~off:0 ~len:64 in
            if contains_secret stack bytes then Leaked "remap + read returned plaintext"
            else Degraded "remap succeeded but only ciphertext visible"
          with Hw.Mmu.Fault { reason; _ } -> Blocked reason))

let inter_vm_remap =
  mk "inter-vm-remap" ~paper_ref:"6.2"
    "map the victim's frame into a conspirator VM and read through the cache"
    (fun stack ->
      let frame = Env.resolve_secret_frame stack in
      let evil = Env.conspirator stack in
      let gfn = Xen.Domain.alloc_gfn evil in
      match
        stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.npt_update evil gfn
          (Some { Hw.Pagetable.frame; writable = false; executable = false; c_bit = false })
      with
      | Error e -> Blocked e
      | Ok () ->
          Xen.Domain.guest_map evil ~gvfn:7 ~gfn ~writable:false ~executable:false
            ~c_bit:false;
          let bytes =
            Xen.Hypervisor.in_guest stack.hv evil (fun () ->
                Xen.Domain.read stack.machine evil ~addr:(Hw.Addr.addr_of 7 0) ~len:64)
          in
          if contains_secret stack bytes then
            Leaked "conspirator read plaintext (cache line hit)"
          else Degraded "conspirator mapped the frame but saw only ciphertext")

let replay_restore =
  mk "replay-restore" ~paper_ref:"2.2/4.2.2"
    "snapshot the victim's ciphertext and restore it after the guest updates"
    (fun stack ->
      let frame = Env.resolve_secret_frame stack in
      (* Phase 1: record today's ciphertext (e.g. the page holding a
         password-gate flag). *)
      match
        (try Ok (Xen.Hypervisor.host_read stack.hv frame ~off:0 ~len:Hw.Addr.page_size)
         with Hw.Mmu.Fault { reason; _ } -> Error reason)
      with
      | Error reason -> Blocked ("snapshot read: " ^ reason)
      | Ok old_cipher -> (
          (* Phase 2: the guest overwrites the value. *)
          Xen.Hypervisor.in_guest stack.hv stack.victim (fun () ->
              Xen.Domain.write stack.machine stack.victim ~addr:stack.secret_gva
                (Bytes.of_string "FRESH-VALUE-AFTER-UPDATE!!!!!!!!"));
          (* Phase 3: restore the stale ciphertext in place. *)
          match
            (try
               Ok (Xen.Hypervisor.host_write stack.hv frame ~off:0 old_cipher)
             with Hw.Mmu.Fault { reason; _ } -> Error reason)
          with
          | Error reason -> Blocked ("replay write: " ^ reason)
          | Ok () ->
              let now =
                Xen.Hypervisor.in_guest stack.hv stack.victim (fun () ->
                    Xen.Domain.read stack.machine stack.victim ~addr:stack.secret_gva
                      ~len:(String.length stack.secret))
              in
              if Bytes.to_string now = stack.secret then
                Tampered "guest observes the replayed (stale) value"
              else Degraded "replay wrote but guest state did not revert"))

(* --- grant / sharing attacks ------------------------------------------- *)

let grant_forgery =
  mk "grant-forgery" ~paper_ref:"2.2/4.3.7"
    "fabricate a grant entry handing dom0 the victim's page" (fun stack ->
      let gfn = Hw.Addr.frame_of stack.secret_gva in
      let forged =
        { Xen.Granttab.owner = stack.victim.Xen.Domain.domid;
          target = 0;
          gfn;
          writable = true;
          in_use = true }
      in
      match stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.grant_update 6 (Some forged) with
      | Error e -> Blocked e
      | Ok () -> (
          ignore (stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.grant_update 6 None);
          let frame = Env.resolve_secret_frame stack in
          try
            let bytes = Xen.Hypervisor.host_read stack.hv frame ~off:0 ~len:64 in
            if contains_secret stack bytes then Leaked "forged grant exposed plaintext"
            else Degraded "forged grant accepted; contents still ciphertext"
          with Hw.Mmu.Fault { reason; _ } ->
            Degraded ("forged grant accepted but frame unreadable: " ^ reason)))

let grant_widening =
  mk "grant-widening" ~paper_ref:"2.2"
    "escalate a legitimately shared read-only grant to writable" (fun stack ->
      (* The victim legitimately shares a read-only page with dom0 first. *)
      let gfn = Xen.Domain.alloc_gfn stack.victim in
      Xen.Domain.guest_map stack.victim ~gvfn:20 ~gfn ~writable:true ~executable:false
        ~c_bit:false;
      Xen.Hypervisor.in_guest stack.hv stack.victim (fun () ->
          Xen.Domain.write stack.machine stack.victim ~addr:(Hw.Addr.addr_of 20 0)
            (Bytes.of_string "read-only-share"));
      let setup =
        let ( let* ) = Result.bind in
        let* _ =
          Xen.Hypervisor.hypercall stack.hv stack.victim
            (Xen.Hypercall.Pre_sharing { target = 0; gfn; nr = 1; writable = false })
        in
        Xen.Hypervisor.hypercall stack.hv stack.victim
          (Xen.Hypercall.Grant_table_op
             (Xen.Hypercall.Grant_access { target = 0; gfn; writable = false }))
      in
      match setup with
      | Error e -> Blocked ("setup failed: " ^ e)
      | Ok gref64 -> (
          let gref = Int64.to_int gref64 in
          match Xen.Granttab.get stack.hv.Xen.Hypervisor.granttab gref with
          | None -> Blocked "grant vanished"
          | Some entry -> (
              let widened = { entry with Xen.Granttab.writable = true } in
              match
                stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.grant_update gref (Some widened)
              with
              | Error e -> Blocked e
              | Ok () -> Tampered "read-only grant silently became writable")))

(* Fidelius' GIT records the victim's *declared* sharing; the hypervisor
   lies to the peer about which grant to map (Iago-style forged return). *)
let iago_forged_gref =
  mk "iago-forged-return" ~paper_ref:"6.2"
    "return a forged grant reference so the peer maps an attacker page"
    (fun stack ->
      let evil = Env.conspirator stack in
      (* The attacker pre-creates a grant of a conspirator page claimed to
         come from the victim's domid. *)
      let attacker_gfn = 2 in
      let forged =
        { Xen.Granttab.owner = stack.victim.Xen.Domain.domid;
          target = evil.Xen.Domain.domid;
          gfn = attacker_gfn;
          writable = true;
          in_use = true }
      in
      match stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.grant_update 9 (Some forged) with
      | Error e -> Blocked e
      | Ok () -> (
          match
            Xen.Hypervisor.hypercall stack.hv evil
              (Xen.Hypercall.Grant_table_op (Xen.Hypercall.Map_grant { gref = 9 }))
          with
          | Ok _ -> Tampered "peer mapped a page the victim never offered"
          | Error e -> Blocked e))

(* The hypervisor keeps the grant entry intact but widens the *nested
   mapping* it installed for the peer — the grant-widening attack moved one
   level down, against the NPT instead of the grant table. *)
let mapping_widening =
  mk "mapping-widening" ~paper_ref:"2.2/5.2"
    "upgrade a read-only shared nested mapping to writable" (fun stack ->
      let hv = stack.hv in
      let evil = Env.conspirator stack in
      (* Legitimate read-only sharing first. *)
      let gfn = Xen.Domain.alloc_gfn stack.victim in
      Xen.Domain.guest_map stack.victim ~gvfn:21 ~gfn ~writable:true ~executable:false
        ~c_bit:false;
      Xen.Hypervisor.in_guest hv stack.victim (fun () ->
          Xen.Domain.write stack.machine stack.victim ~addr:(Hw.Addr.addr_of 21 0)
            (Bytes.make 16 '\000'));
      let ( let* ) = Result.bind in
      let setup =
        let* _ =
          Xen.Hypervisor.hypercall hv stack.victim
            (Xen.Hypercall.Pre_sharing
               { target = evil.Xen.Domain.domid; gfn; nr = 1; writable = false })
        in
        let* gref64 =
          Xen.Hypervisor.hypercall hv stack.victim
            (Xen.Hypercall.Grant_table_op
               (Xen.Hypercall.Grant_access
                  { target = evil.Xen.Domain.domid; gfn; writable = false }))
        in
        Xen.Hypervisor.hypercall hv evil
          (Xen.Hypercall.Grant_table_op
             (Xen.Hypercall.Map_grant { gref = Int64.to_int gref64 }))
      in
      match setup with
      | Error e -> Blocked ("setup failed: " ^ e)
      | Ok mapped_gfn64 -> (
          let mapped_gfn = Int64.to_int mapped_gfn64 in
          match Hw.Pagetable.lookup evil.Xen.Domain.npt mapped_gfn with
          | None -> Blocked "mapping vanished"
          | Some npte -> (
              match
                hv.Xen.Hypervisor.med.Xen.Hypervisor.npt_update evil mapped_gfn
                  (Some { npte with Hw.Pagetable.writable = true })
              with
              | Ok () -> Tampered "read-only shared mapping became writable"
              | Error e -> Blocked e)))

(* Ballooning abuse: the hypervisor unilaterally "reclaims" a protected
   frame by clearing its nested mapping and taking the page back. *)
let balloon_reclaim =
  mk "balloon-reclaim" ~paper_ref:"4.3.8"
    "reclaim a protected guest's frame outside any teardown" (fun stack ->
      let gfn = Hw.Addr.frame_of stack.secret_gva in
      let frame = Env.resolve_secret_frame stack in
      match stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.npt_update stack.victim gfn None with
      | Error e -> Blocked e
      | Ok () -> (
          try
            let bytes = Xen.Hypervisor.host_read stack.hv frame ~off:0 ~len:64 in
            if contains_secret stack bytes then Leaked "reclaimed frame read back"
            else Tampered "guest mapping destroyed at hypervisor's whim"
          with Hw.Mmu.Fault _ -> Tampered "guest mapping destroyed at hypervisor's whim"))

(* Rewrite the exit reason before re-entry, hoping the more permissive
   update rights of a hypercall exit apply to an NPF exit. *)
let exit_reason_forgery =
  mk "exit-reason-forgery" ~paper_ref:"5.1"
    "forge the VMCB exit reason to widen the updatable-field set" (fun stack ->
      let vmcb = stack.victim.Xen.Domain.vmcb in
      Xen.Hypervisor.vmexit stack.hv stack.victim Hw.Vmcb.Npf ~info1:0L ~info2:0x5L;
      (* Claim this was a hypercall, then use the hypercall's RIP/RAX
         update rights. *)
      Hw.Vmcb.set vmcb Hw.Vmcb.Exit_reason (Hw.Vmcb.exit_reason_to_int64 Hw.Vmcb.Vmmcall);
      Hw.Vmcb.set vmcb Hw.Vmcb.Rip 0xBAD0L;
      Hw.Vmcb.set vmcb Hw.Vmcb.Rax 0xBAD1L;
      match Xen.Hypervisor.vmrun stack.hv stack.victim with
      | Ok () ->
          if Int64.equal (Hw.Cpu.rip stack.machine.Hw.Machine.cpu) 0xBAD0L then
            Tampered "forged exit reason let attacker-chosen RIP through"
          else Degraded "re-entered but the forged state was discarded"
      | Error e ->
          ignore (Xen.Hypervisor.vmrun stack.hv stack.victim);
          Blocked e)

(* Alias the victim's frame at a second guest-physical address inside its
   own NPT — the stepping stone for within-guest replay games. *)
let double_map =
  mk "double-map" ~paper_ref:"5.2"
    "map a protected frame at a second gfn of the same guest" (fun stack ->
      let frame = Env.resolve_secret_frame stack in
      let gfn = Xen.Domain.alloc_gfn stack.victim in
      match
        stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.npt_update stack.victim gfn
          (Some { Hw.Pagetable.frame; writable = true; executable = false; c_bit = false })
      with
      | Ok () -> Tampered "frame aliased at two guest-physical addresses"
      | Error e -> Blocked e)

(* --- key-management attacks -------------------------------------------- *)

let keyshare_abuse =
  mk "keyshare-abuse" ~paper_ref:"2.2"
    "ACTIVATE the victim's handle under the conspirator's ASID" (fun stack ->
      match stack.victim.Xen.Domain.sev_handle with
      | None -> Blocked "victim has no SEV context"
      | Some handle -> (
          let evil = Env.conspirator stack in
          match Sev.Firmware.activate stack.hv.Xen.Hypervisor.fw ~handle ~asid:evil.Xen.Domain.asid with
          | Error e -> Blocked ("firmware refused: " ^ e)
          | Ok () -> (
              (* The conspirator now holds the victim's Kvek in its key
                 slot; it still needs a mapping of the victim's frame. *)
              let frame = Env.resolve_secret_frame stack in
              let gfn = Xen.Domain.alloc_gfn evil in
              let restore () =
                ignore
                  (Sev.Firmware.activate stack.hv.Xen.Hypervisor.fw ~handle
                     ~asid:stack.victim.Xen.Domain.asid)
              in
              match
                stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.npt_update evil gfn
                  (Some
                     { Hw.Pagetable.frame; writable = false; executable = false; c_bit = false })
              with
              | Error e ->
                  restore ();
                  Blocked ("key installed but mapping denied: " ^ e)
              | Ok () ->
                  Xen.Domain.guest_map evil ~gvfn:9 ~gfn ~writable:false ~executable:false
                    ~c_bit:true;
                  let bytes =
                    Xen.Hypervisor.in_guest stack.hv evil (fun () ->
                        Xen.Domain.read stack.machine evil ~addr:(Hw.Addr.addr_of 9 0) ~len:64)
                  in
                  restore ();
                  if contains_secret stack bytes then
                    Leaked "conspirator decrypted victim memory with shared Kvek"
                  else Degraded "key shared but decryption misaligned")))

let dbg_decrypt_abuse =
  mk "dbg-decrypt" ~paper_ref:"4.3"
    "ask the firmware to DBG_DECRYPT a victim page" (fun stack ->
      match stack.victim.Xen.Domain.sev_handle with
      | None -> Blocked "victim has no SEV context"
      | Some handle -> (
          let frame = Env.resolve_secret_frame stack in
          match Sev.Firmware.dbg_decrypt stack.hv.Xen.Hypervisor.fw ~handle ~pfn:frame with
          | Ok plain ->
              if contains_secret stack plain then Leaked "firmware decrypted for the hypervisor"
              else Degraded "DBG_DECRYPT returned non-secret data"
          | Error e -> Blocked e))

(* --- privileged-instruction attacks ------------------------------------ *)

let exec_insn stack op v =
  Hw.Insn.execute stack.machine.Hw.Machine.insns
    ~exec_ok:(Hw.Mmu.exec_ok stack.machine stack.hv.Xen.Hypervisor.host_space)
    op v

let wp_disable =
  mk "wp-disable" ~paper_ref:"4.1.2/Table 2"
    "clear CR0.WP to write through read-only protections" (fun stack ->
      match exec_insn stack Hw.Insn.Mov_cr0 0x8000_0000L with
      | Error e -> Blocked e
      | Ok () ->
          let open_now = not (Hw.Cpu.wp stack.machine.Hw.Machine.cpu) in
          Hw.Cpu.priv_set_wp stack.machine.Hw.Machine.cpu true;
          if open_now then Tampered "WP cleared; read-only structures writable"
          else Degraded "instruction executed but WP unchanged")

let smep_disable =
  mk "smep-disable" ~paper_ref:"Table 2"
    "clear CR4.SMEP to run user-controlled code in kernel mode" (fun stack ->
      match exec_insn stack Hw.Insn.Mov_cr4 0L with
      | Error e -> Blocked e
      | Ok () ->
          let cleared = not (Hw.Cpu.smep stack.machine.Hw.Machine.cpu) in
          Hw.Cpu.priv_set_smep stack.machine.Hw.Machine.cpu true;
          if cleared then Tampered "SMEP cleared" else Degraded "SMEP unchanged")

let nxe_disable =
  mk "nxe-disable" ~paper_ref:"Table 2"
    "clear EFER.NXE so data pages become executable" (fun stack ->
      match exec_insn stack Hw.Insn.Wrmsr 0L with
      | Error e -> Blocked e
      | Ok () ->
          let cleared = not (Hw.Cpu.nxe stack.machine.Hw.Machine.cpu) in
          Hw.Cpu.priv_set_nxe stack.machine.Hw.Machine.cpu true;
          if cleared then Tampered "NXE cleared" else Degraded "NXE unchanged")

let rogue_vmrun =
  mk "rogue-vmrun" ~paper_ref:"4.1.2"
    "execute VMRUN directly, bypassing the entry gate" (fun stack ->
      match exec_insn stack Hw.Insn.Vmrun (Int64.of_int stack.victim.Xen.Domain.domid) with
      | Error e -> Blocked e
      | Ok () ->
          (* got into the guest without verification: clean up *)
          Xen.Hypervisor.vmexit stack.hv stack.victim Hw.Vmcb.Hlt ~info1:0L ~info2:0L;
          ignore (Xen.Hypervisor.vmrun stack.hv stack.victim);
          Tampered "world switch without Fidelius verification")

let rogue_cr3 =
  mk "rogue-cr3" ~paper_ref:"4.1.2"
    "switch CR3 to an attacker-built address space" (fun stack ->
      let rogue = Hw.Machine.new_table stack.machine in
      match exec_insn stack Hw.Insn.Mov_cr3 (Int64.of_int (Hw.Pagetable.id rogue)) with
      | Error e -> Blocked e
      | Ok () ->
          Hw.Cpu.priv_set_cr3 stack.machine.Hw.Machine.cpu
            (Hw.Pagetable.id stack.hv.Xen.Hypervisor.host_space);
          Tampered "address space switched to attacker page tables")

let code_injection =
  mk "code-injection" ~paper_ref:"6.3"
    "inject a new privileged-instruction instance into a data page" (fun stack ->
      let page = Hw.Machine.alloc_frame stack.machine in
      (* The attacker first needs the page mapped W+X somewhere. *)
      ignore
        (stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.host_map_update page
           (Some { Hw.Pagetable.frame = page; writable = true; executable = true; c_bit = false }));
      let handler _ =
        Hw.Cpu.priv_set_wp stack.machine.Hw.Machine.cpu false;
        Ok ()
      in
      match
        Hw.Insn.inject stack.machine.Hw.Machine.insns
          ~wx_ok:(Hw.Mmu.wx_ok stack.machine stack.hv.Xen.Hypervisor.host_space)
          Hw.Insn.Mov_cr0 ~page ~handler
      with
      | Error e -> Blocked e
      | Ok () ->
          Hw.Insn.scrub stack.machine.Hw.Machine.insns Hw.Insn.Mov_cr0 ~keep:(-2);
          Tampered "rogue mov-cr0 instance planted in executable memory")

(* Unmap the monitor's own code so the monopolized instructions become
   unfetchable and the gates break — an attack on Fidelius itself. *)
let unmap_monitor_text =
  mk "unmap-monitor-text" ~paper_ref:"6.3"
    "revoke the code-region mappings the protection depends on" (fun stack ->
      match stack.fid with
      | None -> (
          (* On stock Xen there is no Fidelius text; unmapping Xen's own
             text is the equivalent self-blinding move. *)
          match stack.hv.Xen.Hypervisor.xen_text with
          | [] -> Blocked "no text region"
          | pfn :: _ -> (
              match stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.host_map_update pfn None with
              | Ok () -> Tampered "hypervisor text mapping revoked at will"
              | Error e -> Blocked e))
      | Some fid -> (
          match fid.Fidelius_core.Ctx.fid_text with
          | [] -> Blocked "no fidelius text"
          | pfn :: _ -> (
              match stack.hv.Xen.Hypervisor.med.Xen.Hypervisor.host_map_update pfn None with
              | Ok () -> Tampered "Fidelius text mapping revoked"
              | Error e -> Blocked e)))

(* --- I/O-path attacks --------------------------------------------------- *)

let io_snoop =
  mk "io-snoop" ~paper_ref:"4.3.5"
    "observe the shared I/O buffer and the disk during guest writes" (fun stack ->
      let disk = Xen.Vdisk.create ~nr_sectors:64 in
      match Xen.Blkif.connect stack.hv stack.victim ~disk ~buffer_gvfn:150 with
      | Error e -> Blocked ("setup failed: " ^ e)
      | Ok (fe, be) -> (
          (match stack.fid with
          | Some fid ->
              let kblk = Core.Fidelius.kblk_of_guest fid stack.victim in
              Xen.Blkif.set_codec fe (Core.Fidelius.aesni_codec fid ~kblk)
          | None -> ());
          let payload = Bytes.of_string (stack.secret ^ String.make (512 - String.length stack.secret) '.') in
          match Xen.Blkif.write_sectors fe ~sector:4 payload with
          | Error e -> Blocked ("write failed: " ^ e)
          | Ok () ->
              let platter = Xen.Vdisk.peek disk ~sector:4 ~count:1 in
              let buffer =
                Hw.Physmem.dump stack.machine.Hw.Machine.mem (Xen.Blkif.shared_frame be)
              in
              if contains_secret stack platter || contains_secret stack buffer then
                Leaked "secret visible on the I/O path"
              else Degraded "I/O path carries only ciphertext"))

let dma_write_pt =
  mk "dma-overwrite-pt" ~paper_ref:"4.1 (IOMMU hardening)"
    "DMA-write into a hypervisor page-table-page" (fun stack ->
      match Hw.Pagetable.backing_frames stack.hv.Xen.Hypervisor.host_space with
      | [] -> Blocked "no page-table-pages"
      | pt :: _ -> (
          match
            Hw.Machine.dma_write stack.machine pt ~off:0 (Bytes.make 8 '\xff')
          with
          | Ok () -> Tampered "device rewrote translation state"
          | Error e -> Blocked e))

let dma_read_guest =
  mk "dma-read-guest" ~paper_ref:"2.2"
    "DMA-read the victim's frame from a malicious device" (fun stack ->
      let frame = Env.resolve_secret_frame stack in
      match Hw.Machine.dma_read stack.machine frame ~off:0 ~len:64 with
      | Error e -> Blocked e
      | Ok bytes ->
          if contains_secret stack bytes then Leaked "device read plaintext"
          else Degraded "device read only ciphertext (SEV holds)")

(* The driver domain records all PV network traffic. The paper scopes this
   out ("network I/O data has been protected by the SSL protocol"); the
   attack shows the assumption is load-bearing — plaintext frames leak on
   both stacks, TLS-protected ones on neither. *)
let net_snoop =
  mk "net-snoop" ~paper_ref:"4.3.5"
    "record PV network frames in the driver domain" (fun stack ->
      let wire = Xen.Netif.create_wire () in
      let peer = Env.conspirator stack in
      match
        ( Xen.Netif.connect stack.hv stack.victim ~wire ~buffer_gvfn:160,
          Xen.Netif.connect stack.hv peer ~wire ~buffer_gvfn:160 )
      with
      | Ok ea, Ok eb -> (
          (* The victim follows the paper's assumption and speaks TLS. *)
          let rng = Fidelius_crypto.Rng.create 44L in
          let secret, hello = Fidelius_crypto.Secure_channel.client_hello rng in
          let ( let* ) = Result.bind in
          let run =
            let* () = Xen.Netif.send ea hello in
            let* h = Xen.Netif.recv eb in
            let* srv, reply =
              Fidelius_crypto.Secure_channel.server_accept rng
                ~client_hello:(Option.get h)
            in
            let* () = Xen.Netif.send eb reply in
            let* r = Xen.Netif.recv ea in
            let* cli =
              Fidelius_crypto.Secure_channel.client_finish secret
                ~server_reply:(Option.get r)
            in
            ignore srv;
            Xen.Netif.send ea
              (Fidelius_crypto.Secure_channel.seal cli (Bytes.of_string stack.secret))
          in
          match run with
          | Error e -> Blocked ("setup failed: " ^ e)
          | Ok () ->
              if List.exists (contains_secret stack) (Xen.Netif.snoop_log wire) then
                Leaked "secret visible in the driver domain's traffic log"
              else Degraded "wire carries only TLS ciphertext (the paper's SSL assumption)")
      | Error e, _ | _, Error e -> Blocked ("setup failed: " ^ e))

(* --- physical attacks --------------------------------------------------- *)

let cold_boot =
  mk "cold-boot" ~paper_ref:"6.1"
    "dump the victim's frame straight from DRAM" (fun stack ->
      let frame = Env.resolve_secret_frame stack in
      let image = Hw.Physmem.dump stack.machine.Hw.Machine.mem frame in
      if contains_secret stack image then Leaked "plaintext resident in DRAM"
      else Degraded "DRAM holds only ciphertext")

let bus_snoop =
  mk "bus-snoop" ~paper_ref:"6.1"
    "capture memory-bus traffic during a guest read" (fun stack ->
      let frame = Env.resolve_secret_frame stack in
      (* Bus traffic is what DRAM returns: the raw line. *)
      let line = Hw.Physmem.read_raw stack.machine.Hw.Machine.mem frame ~off:0 ~len:64 in
      if contains_secret stack line then Leaked "plaintext on the memory bus"
      else Degraded "bus carries ciphertext; key never leaves the SoC")

let rowhammer =
  mk "rowhammer" ~paper_ref:"6.2"
    "flip a bit in the victim's frame by DRAM disturbance" (fun stack ->
      let frame = Env.resolve_secret_frame stack in
      Hw.Cache.invalidate_page stack.machine.Hw.Machine.cache frame;
      Hw.Physmem.flip_bit stack.machine.Hw.Machine.mem frame ~off:3 ~bit:2;
      let now =
        Xen.Hypervisor.in_guest stack.hv stack.victim (fun () ->
            Xen.Domain.read stack.machine stack.victim ~addr:stack.secret_gva
              ~len:(String.length stack.secret))
      in
      (* restore by rewriting the secret *)
      Xen.Hypervisor.in_guest stack.hv stack.victim (fun () ->
          Xen.Domain.write stack.machine stack.victim ~addr:stack.secret_gva
            (Bytes.of_string stack.secret));
      if Bytes.to_string now = stack.secret then Blocked "flip had no effect"
      else
        Degraded
          "bit flip garbles a whole AES block: no targeted plaintext control (paper: \
           not strictly eradicated)")

let all =
  [ vmcb_register_harvest;
    vmcb_control_tamper;
    vmcb_sev_disable;
    direct_map_read;
    host_remap;
    inter_vm_remap;
    replay_restore;
    grant_forgery;
    grant_widening;
    mapping_widening;
    balloon_reclaim;
    exit_reason_forgery;
    double_map;
    iago_forged_gref;
    keyshare_abuse;
    dbg_decrypt_abuse;
    wp_disable;
    smep_disable;
    nxe_disable;
    rogue_vmrun;
    rogue_cr3;
    code_injection;
    unmap_monitor_text;
    io_snoop;
    net_snoop;
    dma_write_pt;
    dma_read_guest;
    cold_boot;
    bus_snoop;
    rowhammer ]

let find id = List.find_opt (fun a -> a.id = id) all

let hardware =
  List.filter (fun a -> List.mem a.id [ "cold-boot"; "bus-snoop"; "rowhammer"; "dma-overwrite-pt"; "dma-read-guest" ]) all

let host_software = List.filter (fun a -> not (List.mem a hardware)) all
