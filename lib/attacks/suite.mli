(** The attack catalogue (paper Section 6 plus the surfaces of Section 2.2).

    Each attack probes one architectural channel; {!Runner} executes the
    whole catalogue against the plain-SEV baseline and the Fidelius stack
    and tabulates the outcomes. *)

val all : Surface.attack list

val find : string -> Surface.attack option

val hardware : Surface.attack list
(** The physical-channel subset (cold boot, bus snoop, Rowhammer, DMA). *)

val host_software : Surface.attack list
(** The malicious-hypervisor subset. *)
