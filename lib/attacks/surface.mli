(** Attack-surface vocabulary for the security evaluation (paper Section 6).

    Every attack is expressed against the *architectural* channels the
    simulator exposes — memory mappings, firmware commands, instruction
    execution, DMA, physical access — never against OCaml internals, so an
    attack succeeds or fails for the same mechanical reason it would on the
    real stack. *)

type outcome =
  | Leaked of string
      (** attacker obtained the victim's plaintext (message says how) *)
  | Tampered of string
      (** attacker modified protected state without detection *)
  | Degraded of string
      (** attack "succeeded" but yielded only ciphertext/garbage — the
          hardware encryption held even though the software let it through *)
  | Blocked of string
      (** the mechanism that stopped it, with the denial reason *)
  | Errored of string
      (** the simulator itself failed — NOT a defense. A crash used to be
          indistinguishable from a block, which silently inflated the
          defended count; [Errored] keeps harness bugs visible. *)

val outcome_to_string : outcome -> string

val is_defended : outcome -> bool
(** [Blocked] and [Degraded] count as defended; [Errored] does not. *)

type stack = {
  machine : Fidelius_hw.Machine.t;
  hv : Fidelius_xen.Hypervisor.t;
  fid : Fidelius_core.Fidelius.t option;  (** [None] on the plain-SEV baseline *)
  victim : Fidelius_xen.Domain.t;
  secret : string;               (** plaintext the victim wrote *)
  secret_gva : int;              (** where the victim keeps it *)
  mutable conspirator : Fidelius_xen.Domain.t option;
      (** the attacker-controlled peer VM, created on first use by
          [Env.conspirator]. Lives in the stack (not a module global) so
          every stack — and therefore every fleet shard — owns its own;
          attacks can never observe a conspirator created by an earlier
          or concurrent attack. *)
}

type attack = {
  id : string;
  description : string;
  paper_ref : string;   (** paper section motivating this surface *)
  run : stack -> outcome;
}
