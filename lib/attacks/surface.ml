type outcome =
  | Leaked of string
  | Tampered of string
  | Degraded of string
  | Blocked of string
  | Errored of string

let outcome_to_string = function
  | Leaked m -> "LEAKED: " ^ m
  | Tampered m -> "TAMPERED: " ^ m
  | Degraded m -> "degraded: " ^ m
  | Blocked m -> "blocked: " ^ m
  | Errored m -> "ERRORED: " ^ m

let is_defended = function
  | Blocked _ | Degraded _ -> true
  | Leaked _ | Tampered _ | Errored _ -> false

type stack = {
  machine : Fidelius_hw.Machine.t;
  hv : Fidelius_xen.Hypervisor.t;
  fid : Fidelius_core.Fidelius.t option;
  victim : Fidelius_xen.Domain.t;
  secret : string;
  secret_gva : int;
  mutable conspirator : Fidelius_xen.Domain.t option;
}

type attack = {
  id : string;
  description : string;
  paper_ref : string;
  run : stack -> outcome;
}
