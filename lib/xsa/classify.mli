(** Fidelius-effect classification of XSAs (paper Section 6.2).

    Fidelius thwarts hypervisor-side privilege escalations and information
    leaks (its isolation means a compromised hypervisor no longer holds the
    permissions those bugs abuse); QEMU bugs live in the driver domain and
    are out of Fidelius' code base but their *impact* on protected-guest
    confidentiality is already covered by memory/I/O encryption; guest-
    internal flaws and DoS are explicitly out of the threat model. *)

type effect =
  | Thwarted            (** hypervisor privesc/leak: blocked by Fidelius *)
  | Out_of_scope_qemu
  | Guest_flaw
  | Dos_not_targeted

val effect_of : Db.record -> effect
val effect_to_string : effect -> string

val why : Db.record -> string
(** One-line rationale naming the Fidelius mechanism (or the reason it is
    out of scope). *)
