(** The Xen Security Advisory corpus used by the paper's quantitative
    analysis (Section 6.2): 235 XSAs, of which 177 concern the hypervisor
    proper and the remainder QEMU.

    A dozen well-known advisories are recorded with their real titles; the
    rest are synthesized records carrying the same metadata shape and the
    same category distribution the paper reports, so the classifier below
    reproduces its numbers exactly: 31 hypervisor privilege escalations and
    22 information leaks (both thwarted by Fidelius), 14 guest-internal
    flaws, and the rest denial-of-service. *)

type component =
  | Hypervisor
  | Qemu

type category =
  | Privilege_escalation
  | Information_leak
  | Guest_internal
  | Denial_of_service

type record = {
  xsa : int;
  component : component;
  category : category;
  title : string;
  year : int;
}

val all : record list
(** Exactly 235 records, ordered by XSA number. *)

val component_to_string : component -> string
val category_to_string : category -> string

val count : ?component:component -> ?category:category -> unit -> int
