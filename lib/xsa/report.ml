type summary = {
  total : int;
  hypervisor_related : int;
  thwarted_privilege : int;
  thwarted_leak : int;
  guest_flaws : int;
  dos : int;
  qemu : int;
}

let compute () =
  { total = Db.count ();
    hypervisor_related = Db.count ~component:Db.Hypervisor ();
    thwarted_privilege = Db.count ~component:Db.Hypervisor ~category:Db.Privilege_escalation ();
    thwarted_leak = Db.count ~component:Db.Hypervisor ~category:Db.Information_leak ();
    guest_flaws = Db.count ~component:Db.Hypervisor ~category:Db.Guest_internal ();
    dos = Db.count ~component:Db.Hypervisor ~category:Db.Denial_of_service ();
    qemu = Db.count ~component:Db.Qemu () }

(* An empty corpus slice must not propagate as "nan%" through the report:
   0/0 advisories thwarted reads as 0. *)
let pct_of_hypervisor s n =
  if s.hypervisor_related = 0 then 0.0
  else 100.0 *. float_of_int n /. float_of_int s.hypervisor_related

let pp fmt s =
  if s.hypervisor_related = 0 then
    Format.fprintf fmt
      "@[<v>XSA corpus: %d advisories@,\
       hypervisor-related: 0 — percentages omitted (empty denominator)@]"
      s.total
  else
  Format.fprintf fmt
    "@[<v>XSA corpus: %d advisories@,\
     hypervisor-related: %d (rest are QEMU: %d)@,\
     thwarted by Fidelius:@,\
    \  privilege escalation: %d (%.1f%%)@,\
    \  information leakage:  %d (%.1f%%)@,\
     not considered:@,\
    \  guest-internal flaws: %d (%.1f%%)@,\
    \  denial of service:    %d (%.1f%%)@]" s.total s.hypervisor_related s.qemu
    s.thwarted_privilege
    (pct_of_hypervisor s s.thwarted_privilege)
    s.thwarted_leak
    (pct_of_hypervisor s s.thwarted_leak)
    s.guest_flaws
    (pct_of_hypervisor s s.guest_flaws)
    s.dos
    (pct_of_hypervisor s s.dos)

let sample_thwarted n =
  List.filteri (fun i _ -> i < n)
    (List.filter (fun r -> Classify.effect_of r = Classify.Thwarted) Db.all)
