type component =
  | Hypervisor
  | Qemu

type category =
  | Privilege_escalation
  | Information_leak
  | Guest_internal
  | Denial_of_service

type record = {
  xsa : int;
  component : component;
  category : category;
  title : string;
  year : int;
}

let component_to_string = function Hypervisor -> "hypervisor" | Qemu -> "qemu"

let category_to_string = function
  | Privilege_escalation -> "privilege-escalation"
  | Information_leak -> "information-leak"
  | Guest_internal -> "guest-internal"
  | Denial_of_service -> "denial-of-service"

(* Real advisories pinned with their published titles. *)
let pinned =
  [ (7, Hypervisor, Privilege_escalation, "PV privilege escalation (SYSRET #GP handling)", 2012);
    (15, Hypervisor, Privilege_escalation, "guest using max number of event channels", 2012);
    (29, Qemu, Denial_of_service, "qemu xenstore-based vulnerabilities", 2012);
    (44, Hypervisor, Privilege_escalation, "SYSENTER in 32-bit PV guests on 64-bit Xen", 2013);
    (45, Hypervisor, Denial_of_service, "several long-latency operations not preemptible", 2013);
    (108, Hypervisor, Information_leak, "improper MSR range for x2APIC emulation", 2014);
    (123, Hypervisor, Privilege_escalation, "hypervisor memory corruption via x86 emulator", 2015);
    (133, Qemu, Privilege_escalation, "privilege escalation via emulated floppy (VENOM)", 2015);
    (148, Hypervisor, Privilege_escalation, "uncontrolled creation of large page mappings by PV guests", 2015);
    (155, Hypervisor, Privilege_escalation, "paravirtualized drivers incautious about shared memory", 2015);
    (182, Hypervisor, Privilege_escalation, "x86 PV privilege escalation via pagetable recursion", 2016);
    (191, Hypervisor, Guest_internal, "x86 null segments not always treated as unusable", 2016);
    (200, Hypervisor, Information_leak, "x86 CMPXCHG8B emulation leaks stack contents", 2016);
    (212, Hypervisor, Privilege_escalation, "broken check in memory_exchange() permits PV writes", 2017);
    (213, Hypervisor, Privilege_escalation, "IRET to 64-bit mode from 32-bit PV kernel", 2017);
    (219, Hypervisor, Information_leak, "insufficient grant unmapping checks on x86 PV", 2017) ]

(* Synthesized titles for the remaining records. *)
let privesc_titles =
  [| "PV pagetable validation race permits writable mapping";
     "grant table version switch mishandles status frames";
     "x86 instruction emulator stack underflow";
     "mod_l2_entry instruction-fetch confusion";
     "HVM control register intercept bypass";
     "event channel out-of-bounds port use";
     "memory hotplug path misses ownership check" |]

let leak_titles =
  [| "hypervisor stack bytes leaked via hypercall return";
     "uninitialized struct padding copied to guest";
     "x86 segment register state leaks across vCPU switch";
     "emulator reads beyond instruction boundary";
     "trace buffer exposes host addresses" |]

let guest_titles =
  [| "guest vCPU state mishandled after failed task switch";
     "in-guest FPU state confusion";
     "guest linear-address check skipped for implicit access" |]

let dos_titles =
  [| "malicious guest can livelock a physical CPU";
     "unbounded loop in P2M cleanup";
     "watchdog starvation via repeated hypercall";
     "NULL dereference reachable from guest";
     "assertion failure in shadow paging";
     "page reference leak exhausts host memory";
     "IOMMU fault storm stalls dom0";
     "scheduler credit underflow hangs vCPU" |]

let qemu_titles =
  [| "qemu IDE emulation heap overread";
     "qemu VGA banked access out-of-bounds";
     "qemu network device DMA reentrancy";
     "qemu PCI passthrough config space corruption";
     "qemu block backend integer overflow" |]

(* Category distribution of the 219 non-pinned records, chosen so the whole
   corpus matches the paper exactly:
   hypervisor: 31 privesc, 22 leak, 14 guest-internal, 110 DoS (= 177);
   qemu: 58. Pinned records already supply 10 hypervisor-privesc, 3 leak,
   1 guest, 2 DoS (hypervisor) and 2 qemu. *)
let all =
  let pinned_records =
    List.map (fun (xsa, component, category, title, year) -> { xsa; component; category; title; year }) pinned
  in
  let pinned_ids = List.map (fun r -> r.xsa) pinned_records in
  let needed =
    [ (Hypervisor, Privilege_escalation, 31 - 9, privesc_titles);
      (Hypervisor, Information_leak, 22 - 3, leak_titles);
      (Hypervisor, Guest_internal, 14 - 1, guest_titles);
      (Hypervisor, Denial_of_service, 110 - 1, dos_titles);
      (Qemu, Denial_of_service, 44 - 1, qemu_titles);
      (Qemu, Privilege_escalation, 9 - 1, qemu_titles);
      (Qemu, Information_leak, 5, qemu_titles) ]
  in
  (* Deal the synthetic categories across the free XSA numbers in a fixed
     interleaving so numbers of every category spread over the years. *)
  let free_ids =
    List.filter (fun n -> not (List.mem n pinned_ids)) (List.init 239 (fun i -> i + 1))
  in
  let deck =
    List.concat_map
      (fun (component, category, n, titles) ->
        List.init n (fun i -> (component, category, titles.(i mod Array.length titles))))
      needed
  in
  (* Deterministic shuffle of the deck by striding. *)
  let deck = Array.of_list deck in
  let len = Array.length deck in
  let stride = 53 (* coprime with len *) in
  let shuffled = List.init len (fun i -> deck.(i * stride mod len)) in
  let synth =
    List.map2
      (fun xsa (component, category, title) ->
        let year = 2012 + (xsa * 6 / 240) in
        { xsa; component; category; title; year })
      (List.filteri (fun i _ -> i < len) free_ids)
      shuffled
  in
  List.sort (fun a b -> compare a.xsa b.xsa) (pinned_records @ synth)

let count ?component ?category () =
  List.length
    (List.filter
       (fun r ->
         (match component with None -> true | Some c -> r.component = c)
         && match category with None -> true | Some c -> r.category = c)
       all)
