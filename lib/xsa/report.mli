(** The quantitative XSA summary of paper Section 6.2. *)

type summary = {
  total : int;                    (** 235 *)
  hypervisor_related : int;       (** 177 *)
  thwarted_privilege : int;       (** 31 (17.5% of 177) *)
  thwarted_leak : int;            (** 22 (12.4%) *)
  guest_flaws : int;              (** 14 (7.9%) *)
  dos : int;
  qemu : int;
}

val compute : unit -> summary

val pct_of_hypervisor : summary -> int -> float
(** Percentage of the hypervisor-related slice; 0.0 (not nan) when that
    slice is empty. *)

val pp : Format.formatter -> summary -> unit
(** Paper-style rendering with the percentages of Section 6.2. *)

val sample_thwarted : int -> Db.record list
(** A few thwarted records for display. *)
