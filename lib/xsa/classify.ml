type effect =
  | Thwarted
  | Out_of_scope_qemu
  | Guest_flaw
  | Dos_not_targeted

let effect_of (r : Db.record) =
  match (r.Db.component, r.Db.category) with
  | Db.Qemu, _ -> Out_of_scope_qemu
  | Db.Hypervisor, Db.Privilege_escalation | Db.Hypervisor, Db.Information_leak -> Thwarted
  | Db.Hypervisor, Db.Guest_internal -> Guest_flaw
  | Db.Hypervisor, Db.Denial_of_service -> Dos_not_targeted

let effect_to_string = function
  | Thwarted -> "thwarted"
  | Out_of_scope_qemu -> "out-of-scope (qemu)"
  | Guest_flaw -> "guest-internal"
  | Dos_not_targeted -> "DoS (not targeted)"

let why (r : Db.record) =
  match (r.Db.component, r.Db.category) with
  | Db.Qemu, _ ->
      "driver-domain code; protected-guest data stays encrypted on every path it touches"
  | Db.Hypervisor, Db.Privilege_escalation ->
      "escalation payloads need mapping/PTE/grant writes the PIT/GIT policies deny"
  | Db.Hypervisor, Db.Information_leak ->
      "leaked bytes are ciphertext or masked shadow state under Fidelius"
  | Db.Hypervisor, Db.Guest_internal ->
      "flaw inside the guest; explicitly outside the threat model (Section 3.2)"
  | Db.Hypervisor, Db.Denial_of_service ->
      "availability is not a confidentiality/integrity target (Section 3.2)"
