(** Dedicated exception for *intentional* security denials.

    The attack runner must be able to tell a defense mechanism refusing an
    operation apart from the simulator crashing: both used to surface as
    bare [Failure]/[Invalid_argument], so a bug in the model could
    masquerade as a successful defense (the misclassification SEVurity
    exploits in real SEV evaluations). Defense sites that abort by
    exception raise {!Denied}; everything else reaching the runner is
    reported as an [Errored] outcome and fails the suite. *)

exception Denied of string

val deny : ('a, unit, string, 'b) format4 -> 'a
(** [deny fmt ...] raises {!Denied} with the formatted reason. *)
