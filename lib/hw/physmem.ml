type t = { frames : bytes array }

let create ~nr_frames =
  if nr_frames <= 0 then invalid_arg "Physmem.create: nr_frames must be positive";
  { frames = Array.init nr_frames (fun _ -> Bytes.make Addr.page_size '\000') }

let nr_frames t = Array.length t.frames

(* Reuse path for the fleet arenas: a reset backing must be
   indistinguishable from [create]'s fresh zeroed memory — [Bytes.fill]
   is the memset the allocator would otherwise pay as fresh-page zeroing,
   without the 32 MiB of major-heap churn per simulated machine. *)
let reset t =
  Array.iter (fun frame -> Bytes.fill frame 0 (Bytes.length frame) '\000') t.frames

let check t pfn off len =
  if pfn < 0 || pfn >= Array.length t.frames then
    invalid_arg (Printf.sprintf "Physmem: frame 0x%x out of bounds" pfn);
  if off < 0 || len < 0 || off + len > Addr.page_size then
    invalid_arg (Printf.sprintf "Physmem: range %d+%d leaves the page" off len)

let read_raw t pfn ~off ~len =
  check t pfn off len;
  Bytes.sub t.frames.(pfn) off len

let write_raw t pfn ~off data =
  check t pfn off (Bytes.length data);
  Bytes.blit data 0 t.frames.(pfn) off (Bytes.length data)

let page t pfn =
  check t pfn 0 0;
  t.frames.(pfn)

let flip_bit t pfn ~off ~bit =
  check t pfn off 1;
  if bit < 0 || bit > 7 then invalid_arg "Physmem.flip_bit: bit must be 0..7";
  let b = Char.code (Bytes.get t.frames.(pfn) off) in
  Bytes.set t.frames.(pfn) off (Char.chr (b lxor (1 lsl bit)))

let dump t pfn =
  check t pfn 0 Addr.page_size;
  Bytes.copy t.frames.(pfn)
