(** Physically-indexed cache holding plaintext.

    On SEV hardware, cache lines hold plaintext; the encryption engine sits
    between cache and DRAM. This is what enables the inter-VM remapping
    attack the paper describes (Section 6.2, "Breaking memory privacy"): if
    the hypervisor maps a victim's frame into a conspirator VM's NPT while
    the victim's plaintext line is still resident, the conspirator's read
    hits in cache and sees plaintext despite having the wrong key.

    The model keys lines by physical block address only (no ASID tag —
    matching the attack's premise), with a bounded line count and FIFO
    eviction. *)

type t

val create : ?nr_lines:int -> Cost.ledger -> t

val fill : t -> Addr.pfn -> block:int -> bytes -> unit
(** Record the plaintext of a 16-byte block after a CPU access. *)

val fill_from : t -> Addr.pfn -> block:int -> bytes -> src_off:int -> unit
(** [fill] reading the block at [src_off] of a larger span — same ledger
    effect, no per-block [Bytes.sub] at the call site, and a refill of a
    resident line reuses the line buffer instead of allocating. *)

val probe : t -> Addr.pfn -> block:int -> bytes option
(** A hit returns resident plaintext — regardless of who asks. *)

val probe_into : t -> Addr.pfn -> block:int -> dst:bytes -> dst_off:int -> bool
(** Allocation-free {!probe}: a hit blits the resident plaintext into
    [dst] at [dst_off] and returns [true]; a miss touches nothing and (as
    always) charges nothing. *)

val frame_resident : t -> Addr.pfn -> bool
(** [true] iff at least one line of the frame is resident. A probe miss has
    no ledger effect, so callers may skip whole probe loops when this is
    [false] without changing charged costs or observable bytes. *)

val invalidate_page : t -> Addr.pfn -> unit
(** WBINVD-style eviction of all lines of a frame (used when ownership
    changes hands under Fidelius policy). *)

val resident : t -> int

val order_live : t -> int
(** Number of FIFO-queued keys whose line is still resident. The eviction
    discipline keeps [order_live t = resident t] at all times (ghost keys
    left by {!invalidate_page} are purged lazily and never counted). *)

val order_length : t -> int
(** Raw FIFO length, including not-yet-purged ghosts. *)
