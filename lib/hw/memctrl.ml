module Aes = Fidelius_crypto.Aes
module Modes = Fidelius_crypto.Modes
module Rng = Fidelius_crypto.Rng
module Trace = Fidelius_obs.Trace
module Plan = Fidelius_inject.Plan
module Site = Fidelius_inject.Site

(* Charge sites, interned once. *)
let c_dram = Cost.intern "dram"
let c_enc_engine = Cost.intern "enc-engine"

type selector =
  | Plain
  | Smek
  | Asid of int

type t = {
  mem : Physmem.t;
  ledger : Cost.ledger;
  smek : Aes.key;
  slots : (int, Aes.key) Hashtbl.t;
  fw_keys : (string, Aes.key) Hashtbl.t;
  costs : Cost.table;
  mutable fetch_check : (Addr.pfn -> bytes -> (unit, string) result) option;
  (* Span scratch for the encrypted read-modify-write paths: plaintext
     spans never outlive the call (reads copy out with [Bytes.sub]), so
     one page-sized buffer per controller replaces a [Bytes.create] per
     encrypted DRAM access — the hottest allocation in a fleet run.
     Machine-local, hence job-local under the fleet ownership rules. *)
  scratch : bytes;
}

let fw_key_cache_max = 256

let create mem ledger rng =
  { mem;
    ledger;
    smek = Aes.expand (Rng.bytes rng 16);
    slots = Hashtbl.create 16;
    fw_keys = Hashtbl.create 16;
    costs = Cost.default;
    fetch_check = None;
    scratch = Bytes.create Addr.page_size }

let set_fetch_check t check = t.fetch_check <- check

(* The firmware drives whole-page operations with raw (not slot-installed)
   keys, and re-uses the same Kvek for every page of a launch or migration —
   expanding it once per page is pure waste. Cache the schedule, keyed by the
   key bytes; the cache is flushed when it grows past a generous bound so a
   long-lived platform cycling many guests cannot leak schedules forever. *)
let fw_key t raw =
  let id = Bytes.to_string raw in
  match Hashtbl.find_opt t.fw_keys id with
  | Some k -> k
  | None ->
      if Hashtbl.length t.fw_keys >= fw_key_cache_max then Hashtbl.reset t.fw_keys;
      let k = Aes.expand raw in
      Hashtbl.add t.fw_keys id k;
      k

let install_key t ~asid raw =
  if asid <= 0 then invalid_arg "Memctrl.install_key: guest ASIDs are positive";
  Hashtbl.replace t.slots asid (Aes.expand raw)

let uninstall_key t ~asid = Hashtbl.remove t.slots asid

let has_key t ~asid = Hashtbl.mem t.slots asid

let key_of t = function
  | Plain -> None
  | Smek -> Some t.smek
  | Asid asid -> (
      match Hashtbl.find_opt t.slots asid with
      | Some k -> Some k
      | None -> invalid_arg (Printf.sprintf "Memctrl: no key installed for ASID %d" asid))

(* The XEX tweak is the physical block address, binding ciphertext to its
   location. Consecutive blocks step the tweak by the block size, which is
   what lets a multi-block span go through one [Modes.xex_*_span] call —
   since the AES hardware backend that is one C call per page: tweak
   generation, whitening and the block cipher all happen in-register. *)
let tweak_of pfn block = Int64.of_int (Addr.addr_of pfn (block * Addr.block_size))

let tweak_step = Int64.of_int Addr.block_size

let charge_blocks t ~encrypted nblocks =
  Cost.charge_id t.ledger c_dram (t.costs.Cost.dram_access * nblocks);
  if encrypted then
    Cost.charge_id t.ledger c_enc_engine (t.costs.Cost.enc_extra * nblocks);
  if Trace.enabled () then Trace.emit (Trace.Dram { blocks = nblocks; encrypted })

let block_range off len =
  let first = off / Addr.block_size in
  let last = (off + len - 1) / Addr.block_size in
  (first, last)

(* Fault sites live on the CPU read path only: a disturbed DRAM row or an
   aliased address decode corrupts what the CPU sees. The firmware page
   paths model the encryption engine's internal DMA and stay exact, so an
   injected fault can never silently fold into a launch/migration
   measurement. *)
let faulted_src t pfn ~off ~len =
  if Plan.fire Site.Dram_flip then begin
    let bit = Plan.draw Site.Dram_flip ~bound:(len * 8) in
    Physmem.flip_bit t.mem pfn ~off:(off + (bit / 8)) ~bit:(bit mod 8)
  end;
  if Plan.fire Site.Dram_remap && Physmem.nr_frames t.mem > 1 then
    (* Aliased row decode: ciphertext is fetched from the adjacent frame
       while the engine still tweaks with the address the CPU issued. *)
    (if pfn + 1 < Physmem.nr_frames t.mem then pfn + 1 else pfn - 1)
  else pfn

let read_into t sel pfn ~off ~len ~dst ~dst_off =
  if len > 0 then begin
    let src_pfn = if Plan.armed () then faulted_src t pfn ~off ~len else pfn in
    let first, last = block_range off len in
    match key_of t sel with
    | None ->
        (* DRAM traffic is block-granular even without encryption: an
           unaligned access touching two blocks costs two accesses. *)
        charge_blocks t ~encrypted:false (last - first + 1);
        Bytes.blit (Physmem.page t.mem src_pfn) off dst dst_off len
    | Some key ->
        charge_blocks t ~encrypted:true (last - first + 1);
        let span = (last - first + 1) * Addr.block_size in
        let plain = t.scratch in
        let page = Physmem.page t.mem src_pfn in
        (* Integrity engine, if armed: check the ciphertext actually
           fetched against the tree entry for the *requested* frame, so a
           misrouted or disturbed fill is refused before any data flows. *)
        (match t.fetch_check with
        | None -> ()
        | Some check -> (
            match check pfn page with
            | Ok () -> ()
            | Error e -> Denial.deny "memory integrity: %s" e));
        Modes.xex_decrypt_span key ~tweak0:(tweak_of pfn first) ~tweak_step
          ~src:page ~src_off:(first * Addr.block_size) ~dst:plain ~dst_off:0 ~len:span;
        Bytes.blit plain (off - (first * Addr.block_size)) dst dst_off len
  end

let read t sel pfn ~off ~len =
  let out = Bytes.create len in
  read_into t sel pfn ~off ~len ~dst:out ~dst_off:0;
  out

let write t sel pfn ~off data =
  let len = Bytes.length data in
  if len > 0 then begin
    let first, last = block_range off len in
    match key_of t sel with
    | None ->
        charge_blocks t ~encrypted:false (last - first + 1);
        Physmem.write_raw t.mem pfn ~off data
    | Some key ->
        (* Read-modify-write the containing blocks so unaligned stores keep
           neighbouring plaintext intact. *)
        charge_blocks t ~encrypted:true (last - first + 1);
        let span = (last - first + 1) * Addr.block_size in
        let plain = t.scratch in
        let page = Physmem.page t.mem pfn in
        Modes.xex_decrypt_span key ~tweak0:(tweak_of pfn first) ~tweak_step
          ~src:page ~src_off:(first * Addr.block_size) ~dst:plain ~dst_off:0 ~len:span;
        Bytes.blit data 0 plain (off - (first * Addr.block_size)) len;
        Modes.xex_encrypt_span key ~tweak0:(tweak_of pfn first) ~tweak_step
          ~src:plain ~src_off:0 ~dst:page ~dst_off:(first * Addr.block_size) ~len:span
  end

let read_u64 t sel pfn ~off =
  Bytes.get_int64_be (read t sel pfn ~off ~len:8) 0

let write_u64 t sel pfn ~off v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  write t sel pfn ~off b

let reencrypt_page t ~src ~dst pfn =
  let plain = read t src pfn ~off:0 ~len:Addr.page_size in
  write t dst pfn ~off:0 plain

let copy_page t ~src_sel ~src ~dst_sel ~dst =
  let plain = read t src_sel src ~off:0 ~len:Addr.page_size in
  write t dst_sel dst ~off:0 plain

let fw_charge t =
  Cost.charge_id t.ledger c_enc_engine
    ((t.costs.Cost.dram_access + t.costs.Cost.enc_extra) * Addr.blocks_per_page);
  if Trace.enabled () then
    Trace.emit (Trace.Dram { blocks = Addr.blocks_per_page; encrypted = true })

let fw_write_page t ~key pfn plain =
  if Bytes.length plain <> Addr.page_size then
    invalid_arg "Memctrl.fw_write_page: need a full page";
  fw_charge t;
  let aes = fw_key t key in
  let page = Physmem.page t.mem pfn in
  Modes.xex_encrypt_span aes ~tweak0:(tweak_of pfn 0) ~tweak_step
    ~src:plain ~src_off:0 ~dst:page ~dst_off:0 ~len:Addr.page_size

let fw_encrypt_page t ~key pfn =
  let plain = Physmem.read_raw t.mem pfn ~off:0 ~len:Addr.page_size in
  fw_write_page t ~key pfn plain

let fw_decrypt_page t ~key pfn =
  fw_charge t;
  let aes = fw_key t key in
  let page = Physmem.page t.mem pfn in
  let plain = Bytes.create Addr.page_size in
  Modes.xex_decrypt_span aes ~tweak0:(tweak_of pfn 0) ~tweak_step
    ~src:page ~src_off:0 ~dst:plain ~dst_off:0 ~len:Addr.page_size;
  plain
