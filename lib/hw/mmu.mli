(** Permission-checked memory access: the only software path to memory and
    to page-table updates.

    Host accesses honour the x86 supervisor rules the paper's gates rely on:
    a write to a read-only page faults when CR0.WP is set and is silently
    permitted when it is clear (which is exactly what the type-1 gate
    toggles); instruction fetch requires an executable mapping.

    Guest accesses perform the two-level walk — guest page table (GVA to
    GPA, carrying the C-bit) then nested page table (GPA to HPA) — and route
    through the memory controller under the guest's ASID key when the C-bit
    is set. A missing or insufficient NPT entry raises {!Npt_fault}, the
    event that becomes an NPF vmexit.

    The plaintext cache sits in front of the controller: encrypted accesses
    fill it, and *every* read probes it first, reproducing the inter-VM
    remap leak of the paper's Section 6.2. *)

type access = Read | Write | Exec

val access_to_string : access -> string

exception Fault of { space : int; vfn : Addr.vfn; access : access; reason : string }
(** Host-side page fault (the event Fidelius' fault handler mediates). *)

exception Npt_fault of { domid : int; gfn : Addr.gfn; access : access }

val translate : Machine.t -> Pagetable.t -> access -> int -> Addr.pfn * Pagetable.proto
(** [translate m space access addr] walks one host mapping and applies the
    supervisor permission rules; charges TLB costs. *)

val read : Machine.t -> Pagetable.t -> addr:int -> len:int -> bytes
(** Host read (may span pages). Probes the plaintext cache per block. *)

val write : Machine.t -> Pagetable.t -> addr:int -> bytes -> unit
(** Host write; faults on read-only mappings while CR0.WP is set. *)

val exec_ok : Machine.t -> Pagetable.t -> Addr.vfn -> bool
(** Would instruction fetch from this page succeed (present, executable,
    honouring EFER.NXE)? *)

val wx_ok : Machine.t -> Pagetable.t -> Addr.vfn -> bool
(** Is the page simultaneously writable and executable (the code-injection
    precondition)? *)

val set_pte :
  Machine.t ->
  space:Pagetable.t -> table:Pagetable.t -> Addr.vfn -> Pagetable.proto option -> unit
(** Update one entry of [table], acting from address space [space]. The
    store targets the page-table-page that holds the entry, so it faults
    unless [space] holds a writable mapping of that frame — or holds any
    mapping while CR0.WP is clear. Flushes the affected TLB entry. Before
    [Machine.enforce_paging] is set (early boot), the check is waived. *)

val set_pte_packed :
  Machine.t -> space:Pagetable.t -> table:Pagetable.t -> Addr.vfn -> int -> unit
(** {!set_pte} taking a {!Pagetable.lookup_packed}-style packed entry
    ({!Pagetable.packed_absent} clears) — the gates' PTE toggles precompute
    their packed values once, so the per-crossing store allocates
    nothing. *)

val check_frame_writable : Machine.t -> space:Pagetable.t -> Addr.pfn -> unit
(** The store-permission rule applied to a physical frame: the acting space
    must hold a writable mapping of it, or any mapping while CR0.WP is
    clear. Raises {!Fault} otherwise (no-op before paging enforcement).
    Shared by PTE updates and grant-table updates — both are just memory
    stores into protected frames. *)

val guest_translate :
  Machine.t ->
  domid:int -> gpt:Pagetable.t -> npt:Pagetable.t -> asid:int -> access -> int ->
  Addr.pfn * Memctrl.selector
(** Two-level walk; returns the host frame and the effective encryption
    selector: the guest C-bit selects the guest's ASID key and takes
    priority over the nested-table C-bit, which selects the host SME key
    (paper Section 2.1). Raises {!Fault} for guest-page-table misses and
    {!Npt_fault} for nested misses/permission shortfalls. *)

val guest_read :
  Machine.t ->
  domid:int -> gpt:Pagetable.t -> npt:Pagetable.t -> asid:int ->
  addr:int -> len:int -> bytes

val guest_write :
  Machine.t ->
  domid:int -> gpt:Pagetable.t -> npt:Pagetable.t -> asid:int ->
  addr:int -> bytes -> unit

val guest_read_sel :
  Machine.t ->
  domid:int -> gpt:Pagetable.t -> npt:Pagetable.t -> asid_sel:Memctrl.selector ->
  addr:int -> len:int -> bytes

val guest_write_sel :
  Machine.t ->
  domid:int -> gpt:Pagetable.t -> npt:Pagetable.t -> asid_sel:Memctrl.selector ->
  addr:int -> bytes -> unit
(** Like {!guest_read}/{!guest_write}, but the caller supplies the
    selector used for guest-C-bit traffic (normally its cached
    [Memctrl.Asid asid]) so the per-access path does not allocate one.
    Results are identical to the [~asid] variants when
    [asid_sel = Asid asid]. *)

val read_frame_as :
  Machine.t -> sel:Memctrl.selector -> Addr.pfn -> off:int -> len:int -> bytes
(** CPU read of a physical frame under an explicit selector, probing the
    cache. This is the primitive behind "the hypervisor maps the victim's
    frame and reads it": plain reads of encrypted frames return ciphertext
    from DRAM — unless a plaintext line is still cache-resident. *)
