(** Cycle cost model and ledger.

    Every component of the simulated machine charges cycles here, labelled by
    category, so the benchmark harness can reproduce the paper's overhead
    figures from the same mechanism as real hardware would: extra DRAM
    latency on encrypted lines, TLB flushes on mapping changes, world-switch
    costs on vmexit, and per-block costs for the three I/O encoders.

    The constants are calibrated against the paper's own micro-benchmarks
    (§7.2): a type-1 gate is 306 cycles, type-2 is 16, type-3 is 339 of which
    the TLB entry flush is 128 and the cacheline write under 2; shadow+check
    round trip is 661; AES-NI memory-copy slowdown 11.49%, SME engine 8.69%,
    software AES >20x. *)

type table = {
  dram_access : int;          (** plain DRAM access, per cache line *)
  enc_extra : int;            (** added latency when the line is encrypted *)
  cache_hit : int;            (** L1/L2 averaged hit *)
  cacheline_write : int;      (** store into cache, paper: <2 cycles *)
  tlb_flush_full : int;       (** full TLB flush (CR3 switch on AMD) *)
  tlb_flush_entry : int;      (** INVLPG, paper: 128 cycles *)
  tlb_miss_walk : int;        (** page-table walk on TLB miss *)
  wp_toggle : int;            (** CR0.WP write *)
  irq_mask_toggle : int;      (** cli/sti pair *)
  stack_switch : int;
  sanity_check : int;         (** per-gate policy sanity checks *)
  vmexit : int;               (** hardware world switch, guest->host *)
  vmrun : int;                (** host->guest *)
  vmcb_field_copy : int;      (** copy/compare one VMCB field *)
  hypercall_base : int;
  pit_lookup : int;           (** one PIT radix walk *)
  git_lookup : int;
  aesni_block : int;          (** copy+encode via AES-NI, total per block *)
  sev_engine_block : int;     (** copy+encode via the SEV/SME engine, total per block *)
  sw_aes_block : int;         (** copy+encode via software AES, total per block *)
  memcpy_block : int;         (** plain copy, per block (the baseline) *)
  io_sector : int;            (** backend device access per 512-byte sector *)
  event_channel : int;        (** event-channel notification *)
  firmware_cmd : int;         (** fixed SEV firmware command overhead *)
  firmware_page : int;        (** per-page firmware processing (LAUNCH/SEND/RECEIVE _UPDATE) *)
  gate1 : int;                (** type-1 gate (clear WP): paper 306 cycles *)
  gate2 : int;                (** type-2 gate (checking loop): paper 16 cycles *)
  gate3 : int;                (** type-3 gate (add mapping): paper 339 cycles, of
                                  which the TLB entry flush is 128 and the PTE
                                  cacheline write under 2 *)
  shadow_roundtrip : int;     (** shadow+verify across one vmexit: paper 661 cycles *)
}

val default : table

type ledger
(** Mutable accumulator of cycles, broken down by category label. *)

val ledger : unit -> ledger

type id
(** Dense interned handle for a category label. Charge sites resolve their
    label once ([let c_tlb_hit = Cost.intern "tlb-hit"] at module init) so
    the per-access {!charge_id} is an array add plus one cached scope-slot
    add — no string hashing on the hot path. *)

val intern : string -> id
(** Resolve a label to its id, registering it on first use. Idempotent;
    safe from any domain (the registry is mutex-guarded). *)

val id_label : id -> string
(** The label a given id was registered under. *)

val charge_id : ledger -> id -> int -> unit
(** Interned fast path of {!charge}: identical booking semantics (total,
    category row — visible even for a 0-cycle charge — and the innermost
    active scope), without string hashing or allocation. *)

val charge : ledger -> string -> int -> unit
(** [charge l category cycles] adds to the total, the category, and (when a
    scope is active) the innermost scope. Negative amounts would corrupt
    the attribution invariants and raise [Invalid_argument]. Thin wrapper
    over {!intern} + {!charge_id}; hot sites should pre-intern. *)

val root_scope : string
(** ["(root)"] — the implicit scope owning every cycle charged outside any
    [with_scope]. Reserved: passing it to {!with_scope} raises. *)

val with_scope : ledger -> string -> (unit -> 'a) -> 'a
(** [with_scope l "dom3" f] runs [f] with ["dom3"] as the innermost
    attribution scope: every charge inside is booked both globally and to
    that scope (and mirrored to the event trace's scope tag). Scopes nest;
    a charge is attributed to the innermost only, so
    [sum (scopes l) = total l] holds at all times. The scope is popped on
    exceptions too. *)

val scope_enter : ledger -> string -> unit
(** Push a scope without the closure {!with_scope} costs per call. The
    caller must guarantee a matching {!scope_exit} on every path out,
    including exceptions — use {!with_scope} unless the call site is on an
    allocation-free fast path. *)

val scope_exit : ledger -> unit
(** Pop the innermost scope pushed by {!scope_enter} (no-op at depth 0,
    matching [with_scope]'s pop). *)

val total : ledger -> int

val category : ledger -> string -> int
(** 0 when the category was never charged. *)

val categories : ledger -> (string * int) list
(** Sorted by descending cycles; ties broken on the category name so the
    listing is deterministic. *)

val scopes : ledger -> (string * int) list
(** Per-scope cycle attribution, including the {!root_scope} remainder;
    entries sum exactly to {!total}. Sorted like {!categories}. *)

val scope_total : ledger -> string -> int
(** 0 for scopes never charged; for {!root_scope}, the unattributed
    remainder. *)

val scope_categories : ledger -> string -> (string * int) list
(** Category breakdown within one scope (for {!root_scope}: the residue of
    each category not booked to any named scope). *)

val reset : ledger -> unit

val snapshot : ledger -> int
(** Alias of {!total}; convenient for delta measurements. *)

val pp : Format.formatter -> ledger -> unit
