(** Simulated physical DRAM.

    Pages hold whatever the memory controller stored: for C-bit traffic that
    is ciphertext. The raw accessors model *physical* access channels —
    cold-boot dumps, bus snooping, DMA — which bypass the CPU's encryption
    engine and therefore see ciphertext for protected pages and plaintext for
    unprotected ones, exactly the distinction the paper's hardware threat
    model rests on. *)

type t

val create : nr_frames:int -> t
(** Fresh zeroed memory of [nr_frames] pages. *)

val nr_frames : t -> int

val reset : t -> unit
(** Zero every frame in place, making the backing byte-identical to a
    fresh [create ~nr_frames] result. The arena-reuse primitive behind
    [Machine.create ?mem]: a fleet worker resets one backing per job
    instead of allocating (and garbage-collecting) 32 MiB of pages per
    simulated machine. Not thread-safe against concurrent users of the
    same [t] — the caller owns the backing exclusively across the reset
    (the per-worker arena discipline guarantees this). *)

val read_raw : t -> Addr.pfn -> off:int -> len:int -> bytes
(** Physical-channel read (no decryption). Raises [Invalid_argument] when the
    range leaves the page or the frame is out of bounds. *)

val write_raw : t -> Addr.pfn -> off:int -> bytes -> unit
(** Physical-channel write (e.g. a DMA device or a Rowhammer flip). *)

val page : t -> Addr.pfn -> bytes
(** The backing store of one page, shared (mutations are visible). Reserved
    for the memory controller and the on-die integrity engine ({!Bmt}
    hashes frames without a cold-boot copy); everything else goes through
    the raw/MMU paths. *)

val flip_bit : t -> Addr.pfn -> off:int -> bit:int -> unit
(** Rowhammer-style disturbance: flip one bit in place. *)

val dump : t -> Addr.pfn -> bytes
(** Cold-boot image of a page (copy). *)
