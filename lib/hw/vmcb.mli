(** Virtual Machine Control Block.

    Holds the guest's runtime state across world switches plus the control
    fields the hypervisor uses to configure interception. On plain SEV the
    VMCB is *not* encrypted or integrity-protected — the vulnerability class
    that motivates Fidelius' shadowing (and that SEV-ES later fixed in
    hardware). The simulator therefore leaves it freely readable and
    writable by whoever holds a reference; protection is layered on by
    {!Fidelius_core.Shadow}. *)

type exit_reason =
  | Cpuid
  | Hlt
  | Vmmcall        (** hypercall *)
  | Npf            (** nested page fault; fault GPA is in exit_info2 *)
  | Ioio
  | Msr
  | Intr
  | Shutdown

val exit_reason_to_int64 : exit_reason -> int64
val exit_reason_of_int64 : int64 -> exit_reason option
val exit_reason_to_string : exit_reason -> string

type field =
  (* save area: guest state *)
  | Rip | Rsp | Rax | Cr0 | Cr3 | Cr4 | Efer
  (* control area *)
  | Exit_reason | Exit_info1 | Exit_info2
  | Intercepts | Asid | Sev_enabled | Np_enabled | Np_cr3

val fields : field list
val save_area : field list
(** The guest-state fields (confidential once SEV-ES-style protection is
    wanted). *)

val control_area : field list
val field_to_string : field -> string

type t

val create : unit -> t
(** All-zero VMCB. *)

val get : t -> field -> int64
val set : t -> field -> int64 -> unit

val nr_fields : int
(** 15. *)

val index : field -> int
(** Dense 0-based index, matching {!fields} order (save area 0–6, control
    area 7–14). *)

val field_of_index : int -> field

val get_i : t -> int -> int64
val set_i : t -> int -> int64 -> unit
(** Indexed field access for preindexed world-switch loops; moving [int64]s
    between arrays copies pointers only, so the loops allocate nothing. *)

val unsafe_get_i : t -> int -> int64
val unsafe_set_i : t -> int -> int64 -> unit
(** Unchecked variants for the per-crossing loops whose bounds are pinned
    to [0 .. nr_fields - 1]; the caller guarantees the range. *)

val snapshot_into : t -> int64 array -> unit
(** Blit all 15 fields into a caller-owned array (allocation-free). *)

val copy : t -> t
(** Deep copy; used by the Fidelius shadowing step. *)

val blit : src:t -> dst:t -> unit
(** Overwrite every field of [dst] with [src]'s values. *)

val diff : t -> t -> field list
(** Fields whose values differ, for exit-reason-based verification. *)

val exit_reason : t -> exit_reason option
(** Decoded [Exit_reason] field. *)

val pp : Format.formatter -> t -> unit
