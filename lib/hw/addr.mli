(** Address-space vocabulary shared by the whole simulator.

    All three address kinds are frame-number based: a frame number times
    {!page_size} plus an offset is a full address. Keeping them as plain
    ints (with distinct names) matches how the rest of the code reasons —
    translation tables map frame numbers, not byte addresses. *)

type pfn = int (** host physical frame number *)

type gfn = int (** guest physical frame number (the "GPA" page) *)

type vfn = int (** virtual frame number (host-virtual or guest-virtual) *)

val page_size : int
(** 4096 bytes, as on the paper's hardware. *)

val page_shift : int
(** log2 of {!page_size}. *)

val block_size : int
(** Encryption-engine granularity: 16 bytes (one AES block). *)

val blocks_per_page : int

val addr_of : int -> int -> int
(** [addr_of frame off] is the byte address. *)

val frame_of : int -> int
(** Frame number containing a byte address. *)

val offset_of : int -> int
(** Offset within the page of a byte address. *)

val pp_frame : Format.formatter -> int -> unit
(** Hex rendering like [0x00042]. *)
