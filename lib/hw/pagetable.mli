(** Page tables (host page tables, guest page tables, and NPTs).

    A table maps virtual (or guest-physical) frame numbers to {!proto}
    entries. Entries are not OCaml-side shadow state: they are serialized
    into *backing frames inside simulated physical memory* (8 bytes per
    entry, 512 entries per page-table-page, allocated lazily). This is what
    makes the paper's central mechanism meaningful in the simulator:

    - "write-protect the page-table-pages" is a statement about the backing
      frames' own mappings, checked by {!Mmu.set_pte} before any store;
    - physical channels (DMA, Rowhammer) really can corrupt translation
      state, because the translation state really lives in physical frames.

    The raw [hw_set] mutator models the memory store a PTE update ultimately
    is; it is reachable only through {!Mmu} (permission-checked) and the
    machine's DMA path (IOMMU-checked). *)

type proto = {
  frame : Addr.pfn;   (** target frame (host-physical, or guest-physical for guest tables) *)
  writable : bool;
  executable : bool;
  c_bit : bool;       (** request encryption for this mapping *)
}

type t

val create : id:int -> mem:Physmem.t -> alloc:(unit -> Addr.pfn) -> t
(** [create ~id ~mem ~alloc] makes an empty table whose entries are stored in
    [mem]; [alloc] provides backing frames for page-table-pages on demand.
    [id] keys the TLB. *)

val id : t -> int

val lookup : t -> Addr.vfn -> proto option
(** Walk one entry, reading the authoritative bytes in physical memory (so
    physical-channel corruption of a PTE is observed, as on hardware). *)

(** {2 Packed entries}

    Allocation-free view of the same authoritative bytes: an entry is one
    tagged [int] — {!packed_absent} when not present, otherwise
    [frame lsl 3 | writable lsl 2 | executable lsl 1 | c_bit] — read and
    written byte-by-byte so no [int64] or [proto] record is ever boxed.
    The hot paths (MMU translate, instruction-fetch checks, the type-3
    gate's PTE toggles) use these; {!lookup}/{!hw_set} are wrappers. *)

val packed_absent : int

val packed_make :
  frame:Addr.pfn -> writable:bool -> executable:bool -> c_bit:bool -> int

val packed_frame : int -> Addr.pfn
val packed_writable : int -> bool
val packed_executable : int -> bool
val packed_c_bit : int -> bool

val lookup_packed : t -> Addr.vfn -> int
(** {!lookup} without the option/record allocation. *)

val hw_set_packed : t -> Addr.vfn -> int -> unit
(** {!hw_set} taking a packed entry ({!packed_absent} clears). *)

val frame_is_mapped : t -> Addr.pfn -> bool
(** [frame_mapped t pfn <> []], in O(1) and without building the list. *)

val frame_mapped_writable : t -> Addr.pfn -> bool
(** Whether any live mapping of [pfn] is writable — the write-protection
    check of {!Mmu.set_pte}, without allocating the {!frame_mapped} list. *)

val backing_frame_of : t -> Addr.vfn -> Addr.pfn
(** The page-table-page that holds (or would hold) the entry for [vfn];
    allocates it if absent. *)

val backing_frames : t -> Addr.pfn list
(** Every allocated page-table-page, for Fidelius to write-protect and to
    record in the PIT. *)

val hw_set : t -> Addr.vfn -> proto option -> unit
(** Raw store of an entry ([None] clears it). No permission check — callers
    are {!Mmu} and boot-time setup only. *)

val mapped_frames : t -> (Addr.vfn * proto) list

val frame_mapped : t -> Addr.pfn -> (Addr.vfn * proto) list
(** Reverse lookup: every mapping whose target is the given frame. Used for
    permission checks ("does the acting context hold any writable mapping of
    this frame?") and by remap-attack detection. *)

val entry_count : t -> int
