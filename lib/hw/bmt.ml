module Sha256 = Fidelius_crypto.Sha256

(* Cost of one SHA-256 over a page or a pair of digests, as the secure
   processor's hash unit would charge it. *)
let hash_page_cycles = 1600
let hash_node_cycles = 80

type t = {
  machine : Machine.t;
  frames : Addr.pfn array;            (* sorted *)
  index_of : (Addr.pfn, int) Hashtbl.t;
  mutable levels : bytes array array;
      (* levels.(0) = leaf digests, levels.(top) = [| root |] *)
  mutable hashes : int;
  mutable fetch_hashes : int;         (* uncharged inline fetch checks *)
  scratch : Sha256.ctx;               (* per-tree hash unit state *)
  walk : Bytes.t;                     (* 32-byte running digest for walks *)
  upd_a : int array;                  (* dirty-index scratch, even levels *)
  upd_b : int array;                  (* dirty-index scratch, odd levels *)
  upd_mark : Bytes.t;                 (* per-leaf dedup marks, cleared after use *)
}

(* Hash of one leaf — pfn header || page contents — into [dst] at
   [dst_off]. Uncharged core; the charged wrappers below book the cost. *)
let leaf_digest_into t pfn ~dst ~dst_off =
  Sha256.reset t.scratch;
  Sha256.feed_u64_be t.scratch (Int64.of_int pfn);
  Sha256.feed t.scratch (Physmem.page t.machine.Machine.mem pfn);
  Sha256.finalize_into t.scratch ~dst ~dst_off

let c_bmt = Cost.intern "bmt"

let charge_leaf t =
  t.hashes <- t.hashes + 1;
  Cost.charge_id t.machine.Machine.ledger c_bmt hash_page_cycles

let charge_node t =
  t.hashes <- t.hashes + 1;
  Cost.charge_id t.machine.Machine.ledger c_bmt hash_node_cycles

let leaf_hash t pfn =
  charge_leaf t;
  let dst = Bytes.create 32 in
  leaf_digest_into t pfn ~dst ~dst_off:0;
  dst

let node_hash t left right =
  charge_node t;
  Sha256.digest_pair left right

(* A missing right sibling is paired with itself (odd level widths). *)
let sibling level i = if i lxor 1 < Array.length level then level.(i lxor 1) else level.(i)

let rebuild_level t below =
  let n = (Array.length below + 1) / 2 in
  Array.init n (fun i ->
      let left = below.(2 * i) in
      let right = if (2 * i) + 1 < Array.length below then below.((2 * i) + 1) else left in
      node_hash t left right)

let create machine ~frames =
  if frames = [] then invalid_arg "Bmt.create: no frames";
  let frames = Array.of_list (List.sort_uniq compare frames) in
  let index_of = Hashtbl.create (Array.length frames) in
  Array.iteri (fun i pfn -> Hashtbl.replace index_of pfn i) frames;
  let t =
    { machine; frames; index_of; levels = [||]; hashes = 0; fetch_hashes = 0;
      scratch = Sha256.init (); walk = Bytes.create 32;
      upd_a = Array.make (Array.length frames) 0;
      upd_b = Array.make (Array.length frames) 0;
      upd_mark = Bytes.make (Array.length frames) '\000' }
  in
  let leaves = Array.map (fun pfn -> leaf_hash t pfn) frames in
  let rec build acc level =
    if Array.length level = 1 then Array.of_list (List.rev (level :: acc))
    else build (level :: acc) (rebuild_level t level)
  in
  t.levels <- build [] leaves;
  t

let root t = Bytes.copy t.levels.(Array.length t.levels - 1).(0)

let covered t pfn = Hashtbl.mem t.index_of pfn

let verify t pfn =
  match Hashtbl.find_opt t.index_of pfn with
  | None -> Error (Printf.sprintf "BMT: frame 0x%x is not integrity-protected" pfn)
  | Some idx ->
      (* Recompute leaf-to-root using stored siblings; compare with the
         stored root. The running digest lives in [t.walk]. *)
      charge_leaf t;
      leaf_digest_into t pfn ~dst:t.walk ~dst_off:0;
      let i = ref idx in
      for level = 0 to Array.length t.levels - 2 do
        let sib = sibling t.levels.(level) !i in
        charge_node t;
        if !i land 1 = 0 then
          Sha256.digest_pair_into t.walk sib ~dst:t.walk ~dst_off:0
        else Sha256.digest_pair_into sib t.walk ~dst:t.walk ~dst_off:0;
        i := !i / 2
      done;
      if Bytes.equal t.walk t.levels.(Array.length t.levels - 1).(0) then Ok ()
      else Error (Printf.sprintf "BMT: integrity violation detected on frame 0x%x" pfn)

(* Inline pipeline check of a fetched page: hash what the bus actually
   delivered and compare against the stored level-0 digest — O(1) hashes
   per fetch, the way real BMT engines check a fill. The interior nodes
   and root are the engine's own on-die state: software and physical
   channels can reach DRAM but never these arrays, so under collision
   resistance "recomputed leaf = stored leaf" is exactly as strong as
   rewalking to the root. Free of charge — the engine verifies in
   parallel with the fill, so the simulator books no extra cycles and the
   explicit verify paths keep their exact costs; counted separately in
   [fetch_hashes]. *)
let verify_fetched t pfn ~data =
  match Hashtbl.find_opt t.index_of pfn with
  | None -> Error (Printf.sprintf "BMT: frame 0x%x is not integrity-protected" pfn)
  | Some idx ->
      t.fetch_hashes <- t.fetch_hashes + 1;
      Sha256.reset t.scratch;
      Sha256.feed_u64_be t.scratch (Int64.of_int pfn);
      Sha256.feed t.scratch data;
      Sha256.finalize_into t.scratch ~dst:t.walk ~dst_off:0;
      if Bytes.equal t.walk t.levels.(0).(idx) then Ok ()
      else
        Error
          (Printf.sprintf "BMT: fetched data for frame 0x%x does not match the tree" pfn)

let verify_all t =
  Array.fold_left
    (fun acc pfn -> Result.bind acc (fun () -> verify t pfn))
    (Ok ()) t.frames

(* Collect the distinct covered indices of [pfns] into [t.upd_a], returning
   how many were written. The mark bytes dedup in O(1) per element; the
   caller clears them again before sorting. *)
let rec collect_dirty t pfns n =
  match pfns with
  | [] -> n
  | pfn :: rest ->
      let n =
        match Hashtbl.find t.index_of pfn with
        | idx ->
            if Bytes.unsafe_get t.upd_mark idx = '\000' then begin
              Bytes.unsafe_set t.upd_mark idx '\001';
              t.upd_a.(n) <- idx;
              n + 1
            end
            else n
        | exception Not_found -> n
      in
      collect_dirty t rest n

(* In-place insertion sort of the first [n] slots. Batches are small and
   contiguous writes arrive already ascending, where this is both
   allocation-free and near-linear. *)
let sort_prefix a n =
  for i = 1 to n - 1 do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

(* Batched update: refresh every dirty leaf, then rebuild each affected
   interior node exactly once per level — shared ancestors of a multi-frame
   write are hashed once, not once per frame. Charges are per hash actually
   recomputed, so a single-frame batch costs exactly what the sequential
   update always did.

   The pipeline is preallocated in the tree ([upd_a]/[upd_b]/[upd_mark]):
   dirty indices are deduped with mark bytes, sorted in place, and walked
   level by level through the two ping-pong arrays — sorted children yield
   non-decreasing parents, so per-level dedup is one comparison against
   the previous parent. No per-node allocation, and leaves and nodes are
   hashed two at a time on the hash unit's paired stream. *)
let update_many t pfns =
  let n = collect_dirty t pfns 0 in
  for i = 0 to n - 1 do
    Bytes.unsafe_set t.upd_mark t.upd_a.(i) '\000'
  done;
  if n > 0 then begin
    sort_prefix t.upd_a n;
    let leaves = t.levels.(0) in
    let i = ref 0 in
    while !i + 1 < n do
      let ia = t.upd_a.(!i) and ib = t.upd_a.(!i + 1) in
      charge_leaf t;
      charge_leaf t;
      Sha256.digest2_prefixed_into
        ~prefix1:(Int64.of_int t.frames.(ia))
        (Physmem.page t.machine.Machine.mem t.frames.(ia))
        ~dst1:leaves.(ia) ~dst1_off:0
        ~prefix2:(Int64.of_int t.frames.(ib))
        (Physmem.page t.machine.Machine.mem t.frames.(ib))
        ~dst2:leaves.(ib) ~dst2_off:0;
      i := !i + 2
    done;
    if !i < n then begin
      let idx = t.upd_a.(!i) in
      charge_leaf t;
      leaf_digest_into t t.frames.(idx) ~dst:leaves.(idx) ~dst_off:0
    end;
    let count = ref n in
    for level = 0 to Array.length t.levels - 2 do
      let src = if level land 1 = 0 then t.upd_a else t.upd_b in
      let dst = if level land 1 = 0 then t.upd_b else t.upd_a in
      let m = ref 0 in
      let last = ref (-1) in
      for j = 0 to !count - 1 do
        let parent = src.(j) lsr 1 in
        if parent <> !last then begin
          dst.(!m) <- parent;
          incr m;
          last := parent
        end
      done;
      let below = t.levels.(level) in
      let above = t.levels.(level + 1) in
      let j = ref 0 in
      while !j + 1 < !m do
        let pa = dst.(!j) and pb = dst.(!j + 1) in
        charge_node t;
        charge_node t;
        Sha256.digest_pair2_into
          below.(2 * pa) (sibling below (2 * pa)) ~dst1:above.(pa) ~dst1_off:0
          below.(2 * pb) (sibling below (2 * pb)) ~dst2:above.(pb) ~dst2_off:0;
        j := !j + 2
      done;
      if !j < !m then begin
        let parent = dst.(!j) in
        charge_node t;
        Sha256.digest_pair_into below.(2 * parent) (sibling below (2 * parent))
          ~dst:above.(parent) ~dst_off:0
      end;
      count := !m
    done
  end

(* Single-frame update: the direct leaf-to-root walk, sharing nothing to
   amortize — bit-identical tree and charges to [update_many t [pfn]]
   without staging the batch pipeline. *)
let update t pfn =
  match Hashtbl.find t.index_of pfn with
  | exception Not_found -> ()
  | idx ->
      charge_leaf t;
      leaf_digest_into t pfn ~dst:t.levels.(0).(idx) ~dst_off:0;
      let i = ref idx in
      for level = 0 to Array.length t.levels - 2 do
        let parent = !i lsr 1 in
        let below = t.levels.(level) in
        charge_node t;
        Sha256.digest_pair_into below.(2 * parent) (sibling below (2 * parent))
          ~dst:t.levels.(level + 1).(parent) ~dst_off:0;
        i := parent
      done

let hashes_performed t = t.hashes
let fetch_hashes_performed t = t.fetch_hashes
