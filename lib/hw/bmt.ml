module Sha256 = Fidelius_crypto.Sha256

(* Cost of one SHA-256 over a page or a pair of digests, as the secure
   processor's hash unit would charge it. *)
let hash_page_cycles = 1600
let hash_node_cycles = 80

type t = {
  machine : Machine.t;
  frames : Addr.pfn array;            (* sorted *)
  index_of : (Addr.pfn, int) Hashtbl.t;
  levels : bytes array array;
      (* levels.(0) = leaf digests, levels.(top) = [| root |] *)
  mutable hashes : int;
}

let leaf_hash t pfn =
  t.hashes <- t.hashes + 1;
  Cost.charge t.machine.Machine.ledger "bmt" hash_page_cycles;
  let header = Bytes.create 8 in
  Bytes.set_int64_be header 0 (Int64.of_int pfn);
  let ctx = Sha256.init () in
  Sha256.feed ctx header;
  Sha256.feed ctx (Physmem.dump t.machine.Machine.mem pfn);
  Sha256.finalize ctx

let node_hash t left right =
  t.hashes <- t.hashes + 1;
  Cost.charge t.machine.Machine.ledger "bmt" hash_node_cycles;
  Sha256.digest (Bytes.cat left right)

(* A missing right sibling is paired with itself (odd level widths). *)
let sibling level i = if i lxor 1 < Array.length level then level.(i lxor 1) else level.(i)

let rebuild_level t below =
  let n = (Array.length below + 1) / 2 in
  Array.init n (fun i ->
      let left = below.(2 * i) in
      let right = if (2 * i) + 1 < Array.length below then below.((2 * i) + 1) else left in
      node_hash t left right)

let create machine ~frames =
  if frames = [] then invalid_arg "Bmt.create: no frames";
  let frames = Array.of_list (List.sort_uniq compare frames) in
  let index_of = Hashtbl.create (Array.length frames) in
  Array.iteri (fun i pfn -> Hashtbl.replace index_of pfn i) frames;
  let t = { machine; frames; index_of; levels = [||]; hashes = 0 } in
  let leaves = Array.map (fun pfn -> leaf_hash t pfn) frames in
  let rec build acc level =
    if Array.length level = 1 then Array.of_list (List.rev (level :: acc))
    else build (level :: acc) (rebuild_level t level)
  in
  { t with levels = build [] leaves }

let root t = Bytes.copy t.levels.(Array.length t.levels - 1).(0)

let covered t pfn = Hashtbl.mem t.index_of pfn

let verify t pfn =
  match Hashtbl.find_opt t.index_of pfn with
  | None -> Error (Printf.sprintf "BMT: frame 0x%x is not integrity-protected" pfn)
  | Some idx ->
      (* Recompute leaf-to-root using stored siblings; compare with the
         stored root. *)
      let digest = ref (leaf_hash t pfn) in
      let i = ref idx in
      for level = 0 to Array.length t.levels - 2 do
        let sib = sibling t.levels.(level) !i in
        digest :=
          (if !i land 1 = 0 then node_hash t !digest sib else node_hash t sib !digest);
        i := !i / 2
      done;
      if Bytes.equal !digest t.levels.(Array.length t.levels - 1).(0) then Ok ()
      else Error (Printf.sprintf "BMT: integrity violation detected on frame 0x%x" pfn)

(* Inline pipeline check of a fetched page: same leaf-to-root walk as
   {!verify}, but over the bytes the memory controller actually fetched
   rather than what DRAM currently stores, and free of charge — the
   engine verifies in parallel with the fill, so the simulator books no
   extra cycles and the explicit verify paths keep their exact costs. *)
let verify_fetched t pfn ~data =
  match Hashtbl.find_opt t.index_of pfn with
  | None -> Error (Printf.sprintf "BMT: frame 0x%x is not integrity-protected" pfn)
  | Some idx ->
      let header = Bytes.create 8 in
      Bytes.set_int64_be header 0 (Int64.of_int pfn);
      let ctx = Sha256.init () in
      Sha256.feed ctx header;
      Sha256.feed ctx data;
      let digest = ref (Sha256.finalize ctx) in
      let i = ref idx in
      for level = 0 to Array.length t.levels - 2 do
        let sib = sibling t.levels.(level) !i in
        digest :=
          (if !i land 1 = 0 then Sha256.digest (Bytes.cat !digest sib)
           else Sha256.digest (Bytes.cat sib !digest));
        i := !i / 2
      done;
      if Bytes.equal !digest t.levels.(Array.length t.levels - 1).(0) then Ok ()
      else
        Error
          (Printf.sprintf "BMT: fetched data for frame 0x%x does not match the tree" pfn)

let verify_all t =
  Array.fold_left
    (fun acc pfn -> Result.bind acc (fun () -> verify t pfn))
    (Ok ()) t.frames

let update t pfn =
  match Hashtbl.find_opt t.index_of pfn with
  | None -> ()
  | Some idx ->
      t.levels.(0).(idx) <- leaf_hash t pfn;
      let i = ref idx in
      for level = 0 to Array.length t.levels - 2 do
        let parent = !i / 2 in
        let left = t.levels.(level).(2 * parent) in
        let right = sibling t.levels.(level) (2 * parent) in
        t.levels.(level + 1).(parent) <- node_hash t left right;
        i := parent
      done

let hashes_performed t = t.hashes
