module Sha256 = Fidelius_crypto.Sha256

(* Cost of one SHA-256 over a page or a pair of digests, as the secure
   processor's hash unit would charge it. *)
let hash_page_cycles = 1600
let hash_node_cycles = 80

type t = {
  machine : Machine.t;
  frames : Addr.pfn array;            (* sorted *)
  index_of : (Addr.pfn, int) Hashtbl.t;
  mutable levels : bytes array array;
      (* levels.(0) = leaf digests, levels.(top) = [| root |] *)
  mutable hashes : int;
  mutable fetch_hashes : int;         (* uncharged inline fetch checks *)
  scratch : Sha256.ctx;               (* per-tree hash unit state *)
  walk : Bytes.t;                     (* 32-byte running digest for walks *)
}

(* Hash of one leaf — pfn header || page contents — into [dst] at
   [dst_off]. Uncharged core; the charged wrappers below book the cost. *)
let leaf_digest_into t pfn ~dst ~dst_off =
  Sha256.reset t.scratch;
  Sha256.feed_u64_be t.scratch (Int64.of_int pfn);
  Sha256.feed t.scratch (Physmem.page t.machine.Machine.mem pfn);
  Sha256.finalize_into t.scratch ~dst ~dst_off

let charge_leaf t =
  t.hashes <- t.hashes + 1;
  Cost.charge t.machine.Machine.ledger "bmt" hash_page_cycles

let charge_node t =
  t.hashes <- t.hashes + 1;
  Cost.charge t.machine.Machine.ledger "bmt" hash_node_cycles

let leaf_hash t pfn =
  charge_leaf t;
  let dst = Bytes.create 32 in
  leaf_digest_into t pfn ~dst ~dst_off:0;
  dst

let node_hash t left right =
  charge_node t;
  Sha256.digest_pair left right

(* A missing right sibling is paired with itself (odd level widths). *)
let sibling level i = if i lxor 1 < Array.length level then level.(i lxor 1) else level.(i)

let rebuild_level t below =
  let n = (Array.length below + 1) / 2 in
  Array.init n (fun i ->
      let left = below.(2 * i) in
      let right = if (2 * i) + 1 < Array.length below then below.((2 * i) + 1) else left in
      node_hash t left right)

let create machine ~frames =
  if frames = [] then invalid_arg "Bmt.create: no frames";
  let frames = Array.of_list (List.sort_uniq compare frames) in
  let index_of = Hashtbl.create (Array.length frames) in
  Array.iteri (fun i pfn -> Hashtbl.replace index_of pfn i) frames;
  let t =
    { machine; frames; index_of; levels = [||]; hashes = 0; fetch_hashes = 0;
      scratch = Sha256.init (); walk = Bytes.create 32 }
  in
  let leaves = Array.map (fun pfn -> leaf_hash t pfn) frames in
  let rec build acc level =
    if Array.length level = 1 then Array.of_list (List.rev (level :: acc))
    else build (level :: acc) (rebuild_level t level)
  in
  t.levels <- build [] leaves;
  t

let root t = Bytes.copy t.levels.(Array.length t.levels - 1).(0)

let covered t pfn = Hashtbl.mem t.index_of pfn

let verify t pfn =
  match Hashtbl.find_opt t.index_of pfn with
  | None -> Error (Printf.sprintf "BMT: frame 0x%x is not integrity-protected" pfn)
  | Some idx ->
      (* Recompute leaf-to-root using stored siblings; compare with the
         stored root. The running digest lives in [t.walk]. *)
      charge_leaf t;
      leaf_digest_into t pfn ~dst:t.walk ~dst_off:0;
      let i = ref idx in
      for level = 0 to Array.length t.levels - 2 do
        let sib = sibling t.levels.(level) !i in
        charge_node t;
        if !i land 1 = 0 then
          Sha256.digest_pair_into t.walk sib ~dst:t.walk ~dst_off:0
        else Sha256.digest_pair_into sib t.walk ~dst:t.walk ~dst_off:0;
        i := !i / 2
      done;
      if Bytes.equal t.walk t.levels.(Array.length t.levels - 1).(0) then Ok ()
      else Error (Printf.sprintf "BMT: integrity violation detected on frame 0x%x" pfn)

(* Inline pipeline check of a fetched page: hash what the bus actually
   delivered and compare against the stored level-0 digest — O(1) hashes
   per fetch, the way real BMT engines check a fill. The interior nodes
   and root are the engine's own on-die state: software and physical
   channels can reach DRAM but never these arrays, so under collision
   resistance "recomputed leaf = stored leaf" is exactly as strong as
   rewalking to the root. Free of charge — the engine verifies in
   parallel with the fill, so the simulator books no extra cycles and the
   explicit verify paths keep their exact costs; counted separately in
   [fetch_hashes]. *)
let verify_fetched t pfn ~data =
  match Hashtbl.find_opt t.index_of pfn with
  | None -> Error (Printf.sprintf "BMT: frame 0x%x is not integrity-protected" pfn)
  | Some idx ->
      t.fetch_hashes <- t.fetch_hashes + 1;
      Sha256.reset t.scratch;
      Sha256.feed_u64_be t.scratch (Int64.of_int pfn);
      Sha256.feed t.scratch data;
      Sha256.finalize_into t.scratch ~dst:t.walk ~dst_off:0;
      if Bytes.equal t.walk t.levels.(0).(idx) then Ok ()
      else
        Error
          (Printf.sprintf "BMT: fetched data for frame 0x%x does not match the tree" pfn)

let verify_all t =
  Array.fold_left
    (fun acc pfn -> Result.bind acc (fun () -> verify t pfn))
    (Ok ()) t.frames

(* Batched update: refresh every dirty leaf, then rebuild each affected
   interior node exactly once per level — shared ancestors of a multi-frame
   write are hashed once, not once per frame. Charges are per hash actually
   recomputed, so a single-frame batch costs exactly what the sequential
   update always did. *)
let update_many t pfns =
  let idxs =
    List.filter_map (fun pfn -> Hashtbl.find_opt t.index_of pfn) pfns
    |> List.sort_uniq compare
  in
  if idxs <> [] then begin
    List.iter
      (fun idx ->
        charge_leaf t;
        leaf_digest_into t t.frames.(idx) ~dst:t.levels.(0).(idx) ~dst_off:0)
      idxs;
    let dirty = ref idxs in
    for level = 0 to Array.length t.levels - 2 do
      let parents = List.sort_uniq compare (List.map (fun i -> i / 2) !dirty) in
      List.iter
        (fun parent ->
          let below = t.levels.(level) in
          let left = below.(2 * parent) in
          let right = sibling below (2 * parent) in
          charge_node t;
          Sha256.digest_pair_into left right
            ~dst:t.levels.(level + 1).(parent)
            ~dst_off:0)
        parents;
      dirty := parents
    done
  end

let update t pfn = update_many t [ pfn ]

let hashes_performed t = t.hashes
let fetch_hashes_performed t = t.fetch_hashes
