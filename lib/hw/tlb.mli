(** Translation lookaside buffer model.

    The simulator does not need a TLB for correctness — translations are
    re-walked on demand — but the *cost* of TLB maintenance is central to the
    paper's gate design: a full flush is what makes the CR3-switch isolation
    approach expensive, and the single-entry flush (128 cycles) dominates the
    type-3 gate (339 cycles total). The TLB therefore tracks cached
    translations and charges the ledger for misses and flushes. *)

type t

val create : Cost.ledger -> t

val lookup : t -> space_id:int -> Addr.vfn -> bool
(** [lookup t ~space_id vfn] returns whether the translation was cached, and
    caches it if not. Charges a walk on miss, a hit cost otherwise. *)

val flush_entry : t -> space_id:int -> Addr.vfn -> unit
(** INVLPG-equivalent; charges {!Cost.table.tlb_flush_entry}. *)

val flush_all : t -> unit
(** Full flush (what a CR3 write costs on the paper's AMD parts); charges
    {!Cost.table.tlb_flush_full}. *)

val entries : t -> int
val flushes : t -> int
(** Count of full flushes, for the gate-design ablation. *)
