type mode =
  | Host
  | Guest of int

type reg =
  | Rax | Rbx | Rcx | Rdx | Rsi | Rdi | Rbp | Rsp
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

let regs =
  [ Rax; Rbx; Rcx; Rdx; Rsi; Rdi; Rbp; Rsp; R8; R9; R10; R11; R12; R13; R14; R15 ]

let reg_index = function
  | Rax -> 0 | Rbx -> 1 | Rcx -> 2 | Rdx -> 3 | Rsi -> 4 | Rdi -> 5 | Rbp -> 6 | Rsp -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11 | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

let reg_to_string = function
  | Rax -> "rax" | Rbx -> "rbx" | Rcx -> "rcx" | Rdx -> "rdx"
  | Rsi -> "rsi" | Rdi -> "rdi" | Rbp -> "rbp" | Rsp -> "rsp"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10" | R11 -> "r11"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"

let reg_of_string s =
  List.find_opt (fun r -> String.equal (reg_to_string r) s) regs

type t = {
  mutable cpu_mode : mode;
  gprs : int64 array;
  mutable cpu_rip : int64;
  mutable cr0_wp : bool;
  mutable cr0_pg : bool;
  mutable cr3_space : int;
  mutable cr4_smep : bool;
  mutable efer_nxe : bool;
  mutable fidelius_ctx : bool;
  mutable irq_enabled : bool;
}

let create () =
  { cpu_mode = Host;
    gprs = Array.make 16 0L;
    cpu_rip = 0L;
    cr0_wp = true;
    cr0_pg = true;
    cr3_space = 0;
    cr4_smep = true;
    efer_nxe = true;
    fidelius_ctx = false;
    irq_enabled = true }

let mode t = t.cpu_mode
let set_mode t m = t.cpu_mode <- m

let get_reg t r = t.gprs.(reg_index r)
let set_reg t r v = t.gprs.(reg_index r) <- v
let nr_regs = 16
let get_reg_i t i = t.gprs.(i)
let set_reg_i t i v = t.gprs.(i) <- v
let unsafe_get_reg_i t i = Array.unsafe_get t.gprs i
let unsafe_set_reg_i t i v = Array.unsafe_set t.gprs i v
let snapshot_regs_into t dst = Array.blit t.gprs 0 dst 0 16
let all_regs t = List.map (fun r -> (r, get_reg t r)) regs
let clear_regs t = Array.fill t.gprs 0 16 0L

let rip t = t.cpu_rip
let set_rip t v = t.cpu_rip <- v

let wp t = t.cr0_wp
let paging t = t.cr0_pg
let smep t = t.cr4_smep
let nxe t = t.efer_nxe
let cr3 t = t.cr3_space

let in_fidelius t = t.fidelius_ctx
let enter_fidelius t = t.fidelius_ctx <- true
let leave_fidelius t = t.fidelius_ctx <- false

let priv_set_wp t v = t.cr0_wp <- v
let priv_set_paging t v = t.cr0_pg <- v
let priv_set_smep t v = t.cr4_smep <- v
let priv_set_nxe t v = t.efer_nxe <- v
let priv_set_cr3 t v = t.cr3_space <- v

let interrupts_enabled t = t.irq_enabled
let priv_set_interrupts t v = t.irq_enabled <- v
