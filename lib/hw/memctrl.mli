(** Memory controller with the AMD SME/SEV on-die AES engine.

    All CPU-originated memory traffic flows through here. Each access names
    an encryption selector: [Plain] bypasses the engine, [Smek] uses the host
    SME key (slot 0), and [Asid n] uses the per-guest VM-encryption key (the
    Kvek installed by the SEV ACTIVATE command). Ciphertext is bound to the
    physical address via an XEX tweak, so splicing ciphertext between frames
    (replay/remap) yields garbage on decryption, as with SME's
    physical-address tweak.

    Keys live only in the controller's slots — software (including the
    hypervisor) has no architectural read path to them, which is why raw
    physical dumps of protected pages are useless to the attacker. *)

type t

type selector =
  | Plain        (** no encryption (C-bit clear, no SME) *)
  | Smek         (** host SME key *)
  | Asid of int  (** guest key slot, installed by ACTIVATE *)

val create : Physmem.t -> Cost.ledger -> Fidelius_crypto.Rng.t -> t
(** A fresh controller with a newly generated SME key (keys are regenerated
    on every platform reset, per the paper's Section 2.1). *)

val install_key : t -> asid:int -> bytes -> unit
(** Install a 16-byte VM encryption key into a slot (ACTIVATE). Replaces any
    previous key in that slot. *)

val uninstall_key : t -> asid:int -> unit
(** DEACTIVATE: drop the slot; subsequent [Asid] traffic with that slot
    raises [Invalid_argument]. *)

val has_key : t -> asid:int -> bool

val read : t -> selector -> Addr.pfn -> off:int -> len:int -> bytes
(** Decrypting read. [off]/[len] may be unaligned; the engine works on the
    containing 16-byte blocks. Charges DRAM plus, for encrypted selectors,
    the engine's added latency. *)

val read_into :
  t -> selector -> Addr.pfn -> off:int -> len:int -> dst:bytes -> dst_off:int -> unit
(** {!read} into a caller-provided buffer — same ledger charges and trace
    events, no result allocation. The MMU's cached-access loop threads its
    per-machine scratch through this. *)

val write : t -> selector -> Addr.pfn -> off:int -> bytes -> unit
(** Encrypting write (read-modify-write of partial blocks). *)

val read_u64 : t -> selector -> Addr.pfn -> off:int -> int64
val write_u64 : t -> selector -> Addr.pfn -> off:int -> int64 -> unit

val reencrypt_page : t -> src:selector -> dst:selector -> Addr.pfn -> unit
(** In-place re-encryption of a whole page from one key domain to another,
    as the firmware does during RECEIVE_UPDATE. *)

val copy_page :
  t -> src_sel:selector -> src:Addr.pfn -> dst_sel:selector -> dst:Addr.pfn -> unit
(** Page copy through the engine (decrypt with [src_sel], re-encrypt with
    [dst_sel]). *)

(** {2 Firmware-orchestrated operations}

    The secure processor drives the engine with raw keys that are not (yet)
    installed in any ASID slot — e.g. encrypting launch pages with a fresh
    Kvek before ACTIVATE. The tweak convention matches slot traffic exactly,
    so pages prepared this way decrypt correctly once the key is
    activated. *)

val fw_encrypt_page : t -> key:bytes -> Addr.pfn -> unit
(** Encrypt a plaintext-resident page in place under a raw 16-byte key. *)

val fw_decrypt_page : t -> key:bytes -> Addr.pfn -> bytes
(** Plaintext of a page encrypted under a raw key (the page itself is left
    untouched). *)

val fw_write_page : t -> key:bytes -> Addr.pfn -> bytes -> unit
(** Store a full plaintext page encrypted under a raw key. *)

(** {2 Inline integrity engine}

    Hook point for the hardware-integrity extension ({!Bmt},
    [Core.Integrity]): when armed, every encrypted CPU read hands the
    ciphertext page it actually fetched — together with the frame number
    the CPU {e requested} — to the check. A mismatch (disturbed row,
    aliased address decode, replay) raises {!Denial.Denied}, so corrupted
    data never reaches software. Disarmed (the default), the cost is one
    option match per read and behaviour is bit-for-bit unchanged. *)

val set_fetch_check : t -> (Addr.pfn -> bytes -> (unit, string) result) option -> unit
(** Install ([Some]) or clear ([None]) the inline check. Installing
    replaces any previous check — compose externally if two protected
    regions must coexist. *)
