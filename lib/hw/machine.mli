(** The simulated platform: DRAM, memory controller, TLB, cache, CPU,
    privileged-instruction registry, frame allocator and IOMMU hook.

    One [Machine.t] is one physical host. Everything above (SEV firmware,
    Xen, Fidelius, guests) shares it and charges cycles to its ledger. *)

type t = {
  mem : Physmem.t;
  ctrl : Memctrl.t;
  tlb : Tlb.t;
  cache : Cache.t;
  ledger : Cost.ledger;
  costs : Cost.table;
  rng : Fidelius_crypto.Rng.t;
  cpu : Cpu.t;
  insns : Insn.registry;
  mutable free_frames : Addr.pfn list;
  mutable next_table_id : int;
  mutable enforce_paging : bool;
      (** Once true (paging enabled by the booted hypervisor), every PTE
          update is permission-checked against the acting address space. *)
  mutable iommu : (Addr.pfn -> bool) option;
      (** DMA filter; [None] models a platform without IOMMU protection. *)
  mmu_span : bytes;
      (** Page-sized scratch owned by the MMU's cached-access span
          assembly. Machine-local, hence job-local under the fleet
          ownership rules; contents never outlive one access. *)
  mmu_line : bytes;
      (** Block-sized scratch for the MMU's write-through line refresh. *)
}

val default_nr_frames : int
(** Frame count [create] defaults to (8192 = 32 MiB). Arena owners size
    their reusable {!Physmem.t} backing with this so it matches what
    [create] expects. *)

val create : ?nr_frames:int -> ?mem:Physmem.t -> seed:int64 -> unit -> t
(** Fresh platform. Default {!default_nr_frames} frames (32 MiB). Frame 0
    is reserved.

    [mem] recycles an existing DRAM backing instead of allocating one —
    the per-worker-arena fast path of the fleet runner: the backing is
    {!Physmem.reset} (zeroed in place), so the resulting machine is
    byte-for-byte indistinguishable from one built on a fresh backing;
    every other component (ledger, RNG, caches, TLB, allocator) is
    always freshly built from [seed]. The caller hands over exclusive
    ownership for the machine's lifetime — reusing a backing while a
    previous machine built on it is still live, or sharing it across
    worker domains, is a data race. Raises [Invalid_argument] if the
    backing's frame count differs from [nr_frames]. *)

val alloc_frame : t -> Addr.pfn
(** Pop a free frame (zeroed). Raises [Failure] when exhausted. *)

val alloc_frames : t -> int -> Addr.pfn list

val free_frame : t -> Addr.pfn -> unit
(** Scrub and return a frame to the allocator. *)

val frames_free : t -> int

val new_table : t -> Pagetable.t
(** Fresh page table backed by this machine's memory and allocator. *)

val dma_write : t -> Addr.pfn -> off:int -> bytes -> (unit, string) result
(** Device-originated write: bypasses the CPU's encryption engine and
    permission checks but is subject to the IOMMU filter. *)

val dma_read : t -> Addr.pfn -> off:int -> len:int -> (bytes, string) result

val set_iommu : t -> (Addr.pfn -> bool) option -> unit
