(* Charge sites, interned once. *)
let c_cache_fill = Cost.intern "cache-fill"
let c_cache_hit = Cost.intern "cache-hit"

type t = {
  lines : (int, bytes) Hashtbl.t;
  order : int Queue.t;
  (* [order] is the FIFO of line keys awaiting eviction. A key appears at
     most once ([queued] tracks membership); [invalidate_page] removes the
     line but leaves the key behind as a ghost, purged lazily when the
     eviction scan pops it. Evictions trigger on the LIVE count, so ghosts
     can no longer shrink the effective capacity. *)
  queued : (int, unit) Hashtbl.t;
  (* Resident-line count per frame, so the MMU can skip the per-block probe
     loop in O(1) for frames with nothing cached (a probe miss has no
     ledger effect, so the skip is cycle- and byte-identical). *)
  per_frame : (int, int) Hashtbl.t;
  nr_lines : int;
  ledger : Cost.ledger;
  costs : Cost.table;
}

(* One tagged int per line: pfn above the block bits. A page holds
   [Addr.blocks_per_page] = 256 blocks, hence 8 block bits. *)
let key pfn block = (pfn lsl 8) lor block
let key_pfn k = k lsr 8

let create ?(nr_lines = 4096) ledger =
  { lines = Hashtbl.create nr_lines;
    order = Queue.create ();
    queued = Hashtbl.create nr_lines;
    per_frame = Hashtbl.create 64;
    nr_lines;
    ledger;
    costs = Cost.default }

(* [find] + exception, not [find_opt]: the option would be the only
   allocation left on an all-hit read. *)
let frame_count t pfn =
  match Hashtbl.find t.per_frame pfn with n -> n | exception Not_found -> 0

let bump t pfn delta =
  let n = frame_count t pfn + delta in
  if n <= 0 then Hashtbl.remove t.per_frame pfn else Hashtbl.replace t.per_frame pfn n

(* Pop FIFO keys until a live victim surfaces; ghosts left by
   [invalidate_page] are discarded on the way. The queue cannot run dry
   here: every live line's key is queued, and the caller only evicts when
   at least [nr_lines] lines are live. *)
let rec evict_one t =
  let victim = Queue.pop t.order in
  Hashtbl.remove t.queued victim;
  if Hashtbl.mem t.lines victim then begin
    Hashtbl.remove t.lines victim;
    bump t (key_pfn victim) (-1)
  end
  else evict_one t

(* Ghosts drain only at eviction, so a workload that invalidates below
   capacity could grow the queue without bound; compact it (preserving
   FIFO order of the live keys) when it overshoots. *)
let compact t =
  if Queue.length t.order > 4 * t.nr_lines then begin
    let live = Queue.create () in
    Queue.iter
      (fun k -> if Hashtbl.mem t.lines k then Queue.push k live else Hashtbl.remove t.queued k)
      t.order;
    Queue.clear t.order;
    Queue.transfer live t.order
  end

let fill_from t pfn ~block src ~src_off =
  let key = key pfn block in
  (match Hashtbl.find t.lines key with
  | line ->
      (* Refill of a resident line reuses its buffer — the steady-state
         path allocates nothing. *)
      Bytes.blit src src_off line 0 Addr.block_size
  | exception Not_found ->
      if Hashtbl.length t.lines >= t.nr_lines then evict_one t;
      compact t;
      Hashtbl.replace t.lines key (Bytes.sub src src_off Addr.block_size);
      if not (Hashtbl.mem t.queued key) then begin
        Hashtbl.replace t.queued key ();
        Queue.push key t.order
      end;
      bump t pfn 1);
  Cost.charge_id t.ledger c_cache_fill t.costs.Cost.cacheline_write

let fill t pfn ~block plain = fill_from t pfn ~block plain ~src_off:0

let frame_resident t pfn = frame_count t pfn > 0

let probe_into t pfn ~block ~dst ~dst_off =
  match Hashtbl.find t.lines (key pfn block) with
  | line ->
      Cost.charge_id t.ledger c_cache_hit t.costs.Cost.cache_hit;
      Bytes.blit line 0 dst dst_off Addr.block_size;
      true
  | exception Not_found -> false

let probe t pfn ~block =
  match Hashtbl.find t.lines (key pfn block) with
  | line ->
      Cost.charge_id t.ledger c_cache_hit t.costs.Cost.cache_hit;
      Some (Bytes.copy line)
  | exception Not_found -> None

let invalidate_page t pfn =
  for block = 0 to Addr.blocks_per_page - 1 do
    let key = key pfn block in
    if Hashtbl.mem t.lines key then begin
      Hashtbl.remove t.lines key;
      bump t pfn (-1)
    end
  done

let resident t = Hashtbl.length t.lines

(* FIFO-order introspection for the invariant tests: number of queued
   keys whose line is live, and the raw queue length (live + ghosts). *)
let order_live t =
  Queue.fold (fun acc k -> if Hashtbl.mem t.lines k then acc + 1 else acc) 0 t.order

let order_length t = Queue.length t.order
