type t = {
  lines : (int * int, bytes) Hashtbl.t;
  order : (int * int) Queue.t;
  nr_lines : int;
  ledger : Cost.ledger;
  costs : Cost.table;
}

let create ?(nr_lines = 4096) ledger =
  { lines = Hashtbl.create nr_lines;
    order = Queue.create ();
    nr_lines;
    ledger;
    costs = Cost.default }

let fill t pfn ~block plain =
  let key = (pfn, block) in
  if not (Hashtbl.mem t.lines key) then begin
    if Queue.length t.order >= t.nr_lines then begin
      let victim = Queue.pop t.order in
      Hashtbl.remove t.lines victim
    end;
    Queue.push key t.order
  end;
  Hashtbl.replace t.lines key (Bytes.copy plain);
  Cost.charge t.ledger "cache-fill" t.costs.Cost.cacheline_write

let probe t pfn ~block =
  match Hashtbl.find_opt t.lines (pfn, block) with
  | Some line ->
      Cost.charge t.ledger "cache-hit" t.costs.Cost.cache_hit;
      Some (Bytes.copy line)
  | None -> None

let invalidate_page t pfn =
  for block = 0 to Addr.blocks_per_page - 1 do
    Hashtbl.remove t.lines (pfn, block)
  done

let resident t = Hashtbl.length t.lines
