type t = {
  lines : (int * int, bytes) Hashtbl.t;
  order : (int * int) Queue.t;
  (* Resident-line count per frame, so the MMU can skip the per-block probe
     loop in O(1) for frames with nothing cached (a probe miss has no
     ledger effect, so the skip is cycle- and byte-identical). *)
  per_frame : (int, int) Hashtbl.t;
  nr_lines : int;
  ledger : Cost.ledger;
  costs : Cost.table;
}

let create ?(nr_lines = 4096) ledger =
  { lines = Hashtbl.create nr_lines;
    order = Queue.create ();
    per_frame = Hashtbl.create 64;
    nr_lines;
    ledger;
    costs = Cost.default }

let frame_count t pfn = Option.value ~default:0 (Hashtbl.find_opt t.per_frame pfn)

let bump t pfn delta =
  let n = frame_count t pfn + delta in
  if n <= 0 then Hashtbl.remove t.per_frame pfn else Hashtbl.replace t.per_frame pfn n

let fill t pfn ~block plain =
  let key = (pfn, block) in
  if not (Hashtbl.mem t.lines key) then begin
    if Queue.length t.order >= t.nr_lines then begin
      let victim = Queue.pop t.order in
      if Hashtbl.mem t.lines victim then bump t (fst victim) (-1);
      Hashtbl.remove t.lines victim
    end;
    Queue.push key t.order;
    bump t pfn 1
  end;
  Hashtbl.replace t.lines key (Bytes.copy plain);
  Cost.charge t.ledger "cache-fill" t.costs.Cost.cacheline_write

let frame_resident t pfn = frame_count t pfn > 0

let probe t pfn ~block =
  match Hashtbl.find_opt t.lines (pfn, block) with
  | Some line ->
      Cost.charge t.ledger "cache-hit" t.costs.Cost.cache_hit;
      Some (Bytes.copy line)
  | None -> None

let invalidate_page t pfn =
  for block = 0 to Addr.blocks_per_page - 1 do
    if Hashtbl.mem t.lines (pfn, block) then begin
      Hashtbl.remove t.lines (pfn, block);
      bump t pfn (-1)
    end
  done

let resident t = Hashtbl.length t.lines
