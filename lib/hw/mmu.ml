module Trace = Fidelius_obs.Trace

(* Charge sites, interned once. *)
let c_pte_write = Cost.intern "pte-write"

type access = Read | Write | Exec

let access_to_string = function Read -> "read" | Write -> "write" | Exec -> "exec"

exception Fault of { space : int; vfn : Addr.vfn; access : access; reason : string }
exception Npt_fault of { domid : int; gfn : Addr.gfn; access : access }

let fault space vfn access reason =
  raise (Fault { space = Pagetable.id space; vfn; access; reason })

(* Packed walk: everything the hot access paths need from one host
   translation, without building the [proto] record or the result tuple
   ([translate] below is the boxing wrapper for external callers). *)
let translate_packed (m : Machine.t) space access addr =
  let vfn = Addr.frame_of addr in
  ignore (Tlb.lookup m.tlb ~space_id:(Pagetable.id space) vfn);
  let p = Pagetable.lookup_packed space vfn in
  if p = Pagetable.packed_absent then fault space vfn access "not present";
  (match access with
  | Read -> ()
  | Write ->
      (* Supervisor writes honour CR0.WP: clear WP and read-only
         mappings become writable — the type-1 gate's lever. *)
      if not (Pagetable.packed_writable p || not (Cpu.wp m.cpu)) then
        fault space vfn access "read-only mapping with CR0.WP set"
  | Exec ->
      if not (Pagetable.packed_executable p || not (Cpu.nxe m.cpu)) then
        fault space vfn access "non-executable mapping with EFER.NXE set");
  p

let translate (m : Machine.t) space access addr =
  let p = translate_packed m space access addr in
  ( Pagetable.packed_frame p,
    { Pagetable.frame = Pagetable.packed_frame p;
      writable = Pagetable.packed_writable p;
      executable = Pagetable.packed_executable p;
      c_bit = Pagetable.packed_c_bit p } )

let exec_ok (m : Machine.t) space vfn =
  let p = Pagetable.lookup_packed space vfn in
  p <> Pagetable.packed_absent
  && (Pagetable.packed_executable p || not (Cpu.nxe m.cpu))

let wx_ok (m : Machine.t) space vfn =
  let p = Pagetable.lookup_packed space vfn in
  p <> Pagetable.packed_absent
  && (Pagetable.packed_writable p || not (Cpu.wp m.cpu))
  && (Pagetable.packed_executable p || not (Cpu.nxe m.cpu))

(* The host paths only ever see C-bit/no-C-bit with no guest ASID in
   play, so both selector values are constants — no allocation when
   picking one per packed entry. *)
let sel_of_packed p = if Pagetable.packed_c_bit p then Memctrl.Smek else Memctrl.Plain

(* Block-granular CPU access through cache + controller, assembled in the
   machine's span scratch and blitted once into [dst]. Consecutive cache
   misses are fetched from the controller as one span (one decryption pass
   per run instead of one per block); per-block charges are linear in the
   block count, so the ledger sees the same cost either way. Encrypted
   traffic deposits plaintext lines; [Cache.fill_from] slices them straight
   out of the span, and a refill of a resident line reuses its buffer — the
   steady-state access allocates nothing. *)
(* One miss run: fetch blocks [run_first..run_last] from the controller into
   the span scratch (one decryption pass for the whole run) and deposit the
   plaintext lines. Module-level rather than a local function so the hot
   read path does not allocate it as a closure per call. *)
let fetch_run (m : Machine.t) sel pfn ~first ~encrypted run_first run_last =
  let span = m.mmu_span in
  let run_len = (run_last - run_first + 1) * Addr.block_size in
  let span_off = (run_first - first) * Addr.block_size in
  Memctrl.read_into m.ctrl sel pfn ~off:(run_first * Addr.block_size) ~len:run_len
    ~dst:span ~dst_off:span_off;
  if encrypted then
    for blk = run_first to run_last do
      Cache.fill_from m.cache pfn ~block:blk span
        ~src_off:((blk - first) * Addr.block_size)
    done

let cached_read_into (m : Machine.t) sel pfn ~off ~len ~dst ~dst_off =
  let encrypted = match sel with Memctrl.Plain -> false | Memctrl.Smek | Memctrl.Asid _ -> true in
  let first = off / Addr.block_size in
  let last = (off + len - 1) / Addr.block_size in
  let span = m.mmu_span in
  if not (Cache.frame_resident m.cache pfn) then
    (* No line of this frame is resident, so every probe would miss and the
       whole range is one fetch run. Probe misses charge nothing, so this
       shortcut is ledger-identical. *)
    fetch_run m sel pfn ~first ~encrypted first last
  else begin
    let pending = ref (-1) in
    (* start of the current miss run, -1 if none *)
    for blk = first to last do
      if
        Cache.probe_into m.cache pfn ~block:blk ~dst:span
          ~dst_off:((blk - first) * Addr.block_size)
      then begin
        if !pending >= 0 then begin
          fetch_run m sel pfn ~first ~encrypted !pending (blk - 1);
          pending := -1
        end
      end
      else if !pending < 0 then pending := blk
    done;
    if !pending >= 0 then fetch_run m sel pfn ~first ~encrypted !pending last
  end;
  Bytes.blit span (off - (first * Addr.block_size)) dst dst_off len

let cached_read (m : Machine.t) sel pfn ~off ~len =
  let out = Bytes.create len in
  cached_read_into m sel pfn ~off ~len ~dst:out ~dst_off:0;
  out

let cached_write (m : Machine.t) sel pfn ~off data =
  let len = Bytes.length data in
  if len > 0 then begin
    let encrypted = match sel with Memctrl.Plain -> false | Memctrl.Smek | Memctrl.Asid _ -> true in
    Memctrl.write m.ctrl sel pfn ~off data;
    (* Write-through: refresh plaintext lines for the fully covered blocks;
       invalidate partially covered ones so stale plaintext cannot linger.
       Plain traffic never fills, so when the frame has no resident lines
       the loop would be all probe misses — skip it (misses charge nothing,
       so the shortcut is ledger-identical). *)
    if encrypted || Cache.frame_resident m.cache pfn then begin
      let line_buf = m.mmu_line in
      let first = off / Addr.block_size in
      let last = (off + len - 1) / Addr.block_size in
      for blk = first to last do
        let blk_start = blk * Addr.block_size in
        if encrypted && blk_start >= off && blk_start + Addr.block_size <= off + len then
          Cache.fill_from m.cache pfn ~block:blk data ~src_off:(blk_start - off)
        else if Cache.probe_into m.cache pfn ~block:blk ~dst:line_buf ~dst_off:0 then begin
          (* Partial overwrite of a resident line: reload it through the
             engine to keep it coherent. *)
          Memctrl.read_into m.ctrl sel pfn ~off:blk_start ~len:Addr.block_size
            ~dst:line_buf ~dst_off:0;
          if encrypted then Cache.fill m.cache pfn ~block:blk line_buf
        end
      done
    end
  end

let read_frame_as (m : Machine.t) ~sel pfn ~off ~len = cached_read m sel pfn ~off ~len

(* Split a byte range into per-page chunks. *)
let iter_pages ~addr ~len f =
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = Addr.offset_of a in
    let chunk = min (len - !pos) (Addr.page_size - off) in
    f ~chunk_addr:a ~chunk_off:!pos ~chunk_len:chunk;
    pos := !pos + chunk
  done

let read m space ~addr ~len =
  let out = Bytes.create len in
  iter_pages ~addr ~len (fun ~chunk_addr ~chunk_off ~chunk_len ->
      let p = translate_packed m space Read chunk_addr in
      cached_read_into m (sel_of_packed p) (Pagetable.packed_frame p)
        ~off:(Addr.offset_of chunk_addr) ~len:chunk_len ~dst:out ~dst_off:chunk_off);
  out

let write m space ~addr data =
  iter_pages ~addr ~len:(Bytes.length data) (fun ~chunk_addr ~chunk_off ~chunk_len ->
      let p = translate_packed m space Write chunk_addr in
      let chunk =
        if chunk_off = 0 && chunk_len = Bytes.length data then data
        else Bytes.sub data chunk_off chunk_len
      in
      cached_write m (sel_of_packed p) (Pagetable.packed_frame p)
        ~off:(Addr.offset_of chunk_addr) chunk)


let check_frame_writable (m : Machine.t) ~space pfn =
  if m.enforce_paging then
    if not (Pagetable.frame_is_mapped space pfn) then
      raise
        (Fault
           { space = Pagetable.id space;
             vfn = pfn;
             access = Write;
             reason = Printf.sprintf "frame 0x%x is not mapped in the acting space" pfn })
    else if Cpu.wp m.cpu && not (Pagetable.frame_mapped_writable space pfn) then
      raise
        (Fault
           { space = Pagetable.id space;
             vfn = pfn;
             access = Write;
             reason =
               Printf.sprintf "frame 0x%x is mapped read-only and CR0.WP is set" pfn })

let set_pte_packed (m : Machine.t) ~space ~table vfn packed =
  (* The PTE store is a memory write to the page-table-page: the acting
     space must hold a writable mapping of that frame (or any mapping with
     CR0.WP clear). *)
  let backing = Pagetable.backing_frame_of table vfn in
  check_frame_writable m ~space backing;
  Cost.charge_id m.ledger c_pte_write m.costs.Cost.cacheline_write;
  if Trace.enabled () then Trace.emit (Trace.Pte_write { vfn });
  Pagetable.hw_set_packed table vfn packed;
  Tlb.flush_entry m.tlb ~space_id:(Pagetable.id table) vfn

let set_pte (m : Machine.t) ~space ~table vfn proto =
  set_pte_packed m ~space ~table vfn
    (match proto with
    | None -> Pagetable.packed_absent
    | Some (p : Pagetable.proto) ->
        Pagetable.packed_make ~frame:p.frame ~writable:p.writable
          ~executable:p.executable ~c_bit:p.c_bit)

(* Packed two-stage walk: the nested frame in the upper bits, the key
   selection in the low two (0 = plain, 1 = host SME key, 2 = guest key).
   The boxing wrapper [guest_translate] and the per-access read/write
   paths below share it; the latter thread a preallocated [Asid _]
   selector through, so a steady-state guest access never allocates one. *)
let guest_translate_code (m : Machine.t) ~domid ~gpt ~npt access addr =
  let gvfn = Addr.frame_of addr in
  ignore (Tlb.lookup m.tlb ~space_id:(Pagetable.id gpt) gvfn);
  let gp = Pagetable.lookup_packed gpt gvfn in
  if gp = Pagetable.packed_absent then
    fault gpt gvfn access "guest page table: not present";
  if access = Write && not (Pagetable.packed_writable gp) then
    fault gpt gvfn access "guest page table: read-only";
  let gfn = Pagetable.packed_frame gp in
  let np = Pagetable.lookup_packed npt gfn in
  if np = Pagetable.packed_absent then raise (Npt_fault { domid; gfn; access });
  if access = Write && not (Pagetable.packed_writable np) then
    raise (Npt_fault { domid; gfn; access });
  (* Guest C-bit selects the guest key and takes priority; the nested
     C-bit alone selects the host SME key. *)
  let code =
    if Pagetable.packed_c_bit gp then 2 else if Pagetable.packed_c_bit np then 1 else 0
  in
  (Pagetable.packed_frame np lsl 2) lor code

let sel_of_code ~asid_sel code =
  match code land 3 with 2 -> asid_sel | 1 -> Memctrl.Smek | _ -> Memctrl.Plain

let guest_translate (m : Machine.t) ~domid ~gpt ~npt ~asid access addr =
  let c = guest_translate_code m ~domid ~gpt ~npt access addr in
  (c lsr 2, sel_of_code ~asid_sel:(Memctrl.Asid asid) c)

let guest_read_chunk m ~domid ~gpt ~npt ~asid_sel ~chunk_addr ~chunk_len ~dst ~dst_off =
  let c = guest_translate_code m ~domid ~gpt ~npt Read chunk_addr in
  cached_read_into m (sel_of_code ~asid_sel c) (c lsr 2)
    ~off:(Addr.offset_of chunk_addr) ~len:chunk_len ~dst ~dst_off

let guest_read_sel m ~domid ~gpt ~npt ~asid_sel ~addr ~len =
  let out = Bytes.create len in
  if Addr.offset_of addr + len <= Addr.page_size then
    (* Single-page access: no chunking closure on the common path. *)
    guest_read_chunk m ~domid ~gpt ~npt ~asid_sel ~chunk_addr:addr ~chunk_len:len
      ~dst:out ~dst_off:0
  else
    iter_pages ~addr ~len (fun ~chunk_addr ~chunk_off ~chunk_len ->
        guest_read_chunk m ~domid ~gpt ~npt ~asid_sel ~chunk_addr ~chunk_len
          ~dst:out ~dst_off:chunk_off);
  out

let guest_read m ~domid ~gpt ~npt ~asid ~addr ~len =
  guest_read_sel m ~domid ~gpt ~npt ~asid_sel:(Memctrl.Asid asid) ~addr ~len

let guest_write_sel m ~domid ~gpt ~npt ~asid_sel ~addr data =
  iter_pages ~addr ~len:(Bytes.length data) (fun ~chunk_addr ~chunk_off ~chunk_len ->
      let c = guest_translate_code m ~domid ~gpt ~npt Write chunk_addr in
      let chunk =
        if chunk_off = 0 && chunk_len = Bytes.length data then data
        else Bytes.sub data chunk_off chunk_len
      in
      cached_write m (sel_of_code ~asid_sel c) (c lsr 2)
        ~off:(Addr.offset_of chunk_addr) chunk)

let guest_write m ~domid ~gpt ~npt ~asid ~addr data =
  guest_write_sel m ~domid ~gpt ~npt ~asid_sel:(Memctrl.Asid asid) ~addr data
